#include "storage/io.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "base/strutil.h"

namespace agis::storage {

AppendFile::~AppendFile() {
  if (file_ != nullptr) std::fclose(file_);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)),
      bytes_written_(other.bytes_written_),
      fault_plan_(other.fault_plan_),
      fault_tripped_(other.fault_tripped_) {}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    bytes_written_ = other.bytes_written_;
    fault_plan_ = other.fault_plan_;
    fault_tripped_ = other.fault_tripped_;
  }
  return *this;
}

agis::Result<AppendFile> AppendFile::Open(const std::string& path,
                                          bool truncate,
                                          FaultPlan fault_plan) {
  std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (f == nullptr) {
    return agis::Status::Internal(agis::StrCat("cannot open '", path,
                                               "': ", std::strerror(errno)));
  }
  AppendFile out;
  out.file_ = f;
  out.path_ = path;
  out.fault_plan_ = fault_plan;
  return out;
}

agis::Status AppendFile::Append(std::string_view bytes) {
  if (file_ == nullptr) {
    return agis::Status::FailedPrecondition("append on closed file");
  }
  if (fault_tripped_) {
    return agis::Status::Internal(
        agis::StrCat("injected fault on '", path_, "' (already tripped)"));
  }
  size_t writable = bytes.size();
  bool trip = false;
  if (fault_plan_.armed() &&
      bytes_written_ + bytes.size() > fault_plan_.fail_after_bytes) {
    trip = true;
    writable = fault_plan_.short_write && fault_plan_.fail_after_bytes >
                                              bytes_written_
                   ? static_cast<size_t>(fault_plan_.fail_after_bytes -
                                         bytes_written_)
                   : 0;
  }
  if (writable > 0) {
    if (std::fwrite(bytes.data(), 1, writable, file_) != writable) {
      return agis::Status::Internal(
          agis::StrCat("write to '", path_, "' failed"));
    }
    bytes_written_ += writable;
  }
  if (trip) {
    fault_tripped_ = true;
    // Make the torn prefix visible on disk, as a real crash would.
    std::fflush(file_);
    return agis::Status::Internal(
        agis::StrCat("injected fault on '", path_, "' after ",
                     bytes_written_, " bytes"));
  }
  return agis::Status::OK();
}

agis::Status AppendFile::Flush() {
  if (file_ == nullptr) {
    return agis::Status::FailedPrecondition("flush on closed file");
  }
  if (fault_tripped_) {
    return agis::Status::Internal(
        agis::StrCat("injected fault on '", path_, "' (already tripped)"));
  }
  if (std::fflush(file_) != 0) {
    return agis::Status::Internal(agis::StrCat("flush of '", path_,
                                               "' failed"));
  }
  return agis::Status::OK();
}

agis::Status AppendFile::Sync() {
  AGIS_RETURN_IF_ERROR(Flush());
  if (fsync(fileno(file_)) != 0) {
    return agis::Status::Internal(
        agis::StrCat("fsync of '", path_, "': ", std::strerror(errno)));
  }
  return agis::Status::OK();
}

agis::Status AppendFile::Close() {
  if (file_ == nullptr) return agis::Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    return agis::Status::Internal(agis::StrCat("close of '", path_,
                                               "' failed"));
  }
  return agis::Status::OK();
}

agis::Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return agis::Status::NotFound(agis::StrCat("cannot open '", path, "'"));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return agis::Status::Internal(agis::StrCat("read of '", path,
                                               "' failed"));
  }
  return out;
}

agis::Status AtomicWriteFile(const std::string& path,
                             std::string_view contents,
                             FaultPlan fault_plan) {
  const std::string tmp = agis::StrCat(path, ".tmp");
  {
    AGIS_ASSIGN_OR_RETURN(AppendFile file,
                          AppendFile::Open(tmp, /*truncate=*/true,
                                           fault_plan));
    AGIS_RETURN_IF_ERROR(file.Append(contents));
    AGIS_RETURN_IF_ERROR(file.Sync());
    AGIS_RETURN_IF_ERROR(file.Close());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return agis::Status::Internal(
        agis::StrCat("rename '", tmp, "' -> '", path,
                     "': ", std::strerror(errno)));
  }
  return agis::Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

agis::Status RemoveFileIfExists(const std::string& path) {
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return agis::Status::Internal(
        agis::StrCat("remove '", path, "': ", std::strerror(errno)));
  }
  return agis::Status::OK();
}

agis::Status EnsureDirectory(const std::string& path) {
  if (path.empty()) {
    return agis::Status::InvalidArgument("empty directory path");
  }
  std::string prefix;
  size_t pos = 0;
  while (pos != std::string::npos) {
    pos = path.find('/', pos + 1);
    prefix = pos == std::string::npos ? path : path.substr(0, pos);
    if (prefix.empty()) continue;
    if (mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return agis::Status::Internal(
          agis::StrCat("mkdir '", prefix, "': ", std::strerror(errno)));
    }
  }
  return agis::Status::OK();
}

}  // namespace agis::storage
