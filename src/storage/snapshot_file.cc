#include "storage/snapshot_file.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "base/strutil.h"
#include "base/task_scheduler.h"
#include "base/thread_pool.h"
#include "storage/format.h"

namespace agis::storage {

namespace {

constexpr std::string_view kSnapMagic = "AGISNAP1";
constexpr std::string_view kSnapMagicPrefix = "AGISNAP";

enum class SectionKind : uint8_t {
  kHeader = 1,
  kSchema = 2,
  kExtentBlock = 3,
  kDirectives = 4,
  kFooter = 5,
  kAttrIndex = 6,
};

agis::Status AppendSection(AppendFile* file, SectionKind kind,
                           const std::string& payload) {
  Encoder frame;
  frame.U8(static_cast<uint8_t>(kind));
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  frame.Raw(payload);
  return file->Append(frame.buffer());
}

/// One parsed section frame: payload view into the file buffer, CRC
/// still unverified (extent blocks verify in parallel).
struct Section {
  SectionKind kind;
  uint32_t crc;
  std::string_view payload;
};

agis::Result<std::vector<Section>> WalkSections(std::string_view bytes,
                                                const std::string& path) {
  std::vector<Section> sections;
  std::string_view rest = bytes;
  while (!rest.empty()) {
    Decoder frame(rest);
    AGIS_ASSIGN_OR_RETURN(uint8_t kind, frame.U8("section kind"));
    if (kind < static_cast<uint8_t>(SectionKind::kHeader) ||
        kind > static_cast<uint8_t>(SectionKind::kAttrIndex)) {
      return agis::Status::ParseError(
          agis::StrCat("snapshot '", path, "': unknown section kind ",
                       kind));
    }
    AGIS_ASSIGN_OR_RETURN(uint32_t len, frame.U32("section length"));
    AGIS_ASSIGN_OR_RETURN(uint32_t crc, frame.U32("section crc"));
    if (frame.remaining() < len) {
      return agis::Status::ParseError(agis::StrCat(
          "snapshot '", path, "': truncated section (need ", len,
          " payload bytes, have ", frame.remaining(), ")"));
    }
    const std::string_view payload = frame.Raw(len, "section payload").value();
    sections.push_back({static_cast<SectionKind>(kind), crc, payload});
    rest.remove_prefix(9 + static_cast<size_t>(len));
  }
  return sections;
}

agis::Status CheckCrc(const Section& section, const std::string& path,
                      const char* what) {
  if (Crc32(section.payload) != section.crc) {
    return agis::Status::ParseError(
        agis::StrCat("snapshot '", path, "': ", what, " CRC mismatch"));
  }
  return agis::Status::OK();
}

struct Header {
  std::string schema_name;
  uint64_t object_count = 0;
  uint64_t block_count = 0;
};

agis::Result<Header> DecodeHeader(std::string_view payload) {
  Decoder dec(payload);
  Header h;
  AGIS_ASSIGN_OR_RETURN(h.schema_name, dec.Str("schema name"));
  AGIS_ASSIGN_OR_RETURN(h.object_count, dec.U64("object count"));
  AGIS_ASSIGN_OR_RETURN(h.block_count, dec.U64("block count"));
  return h;
}

// ---- Attribute-index sections ----------------------------------------------
//
// Payload layout (one section per class × indexed attribute):
//
//   Str class, Str attribute
//   u32 nan_count, nan_count × u64 id        (ascending)
//   u32 key_count, key_count × run
//     run: u8 key class, (F64 number | Str text), u32 id_count,
//          id_count × u64 id                 (ascending)
//
// Keys ascend strictly across runs; AttributeIndex::FromSortedRuns
// re-validates every invariant on load, so a corrupt section becomes
// a parse error rather than a malformed index.

agis::Status AppendAttrIndexSection(AppendFile* file,
                                    const geodb::GeoDatabase& db,
                                    const geodb::Snapshot& snap,
                                    const std::string& class_name,
                                    const std::string& attribute,
                                    const std::vector<geodb::ObjectId>& ids) {
  std::vector<std::pair<geodb::AttrKey, geodb::ObjectId>> rows;
  rows.reserve(ids.size());
  std::vector<geodb::ObjectId> nan_ids;
  for (const geodb::ObjectId id : ids) {
    const geodb::ObjectInstance* obj = db.FindObjectAt(snap, id);
    if (obj == nullptr) {
      return agis::Status::Internal(agis::StrCat(
          "snapshot object ", id, " vanished during index save"));
    }
    const geodb::Value& v = obj->Get(attribute);
    if (v.kind() == geodb::ValueKind::kDouble &&
        std::isnan(v.double_value())) {
      // NaN sits outside the ordered key space (see attr_index.h) and
      // travels as its own run.
      nan_ids.push_back(id);
      continue;
    }
    std::optional<geodb::AttrKey> key = geodb::AttrKey::FromValue(v);
    if (key.has_value()) rows.emplace_back(std::move(*key), id);
  }
  std::sort(nan_ids.begin(), nan_ids.end());
  std::sort(rows.begin(), rows.end(),
            [](const std::pair<geodb::AttrKey, geodb::ObjectId>& a,
               const std::pair<geodb::AttrKey, geodb::ObjectId>& b) {
              if (a.first < b.first) return true;
              if (b.first < a.first) return false;
              return a.second < b.second;
            });

  uint32_t key_count = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i == 0 || rows[i - 1].first < rows[i].first) ++key_count;
  }

  Encoder sec;
  sec.Str(class_name);
  sec.Str(attribute);
  sec.U32(static_cast<uint32_t>(nan_ids.size()));
  for (const geodb::ObjectId id : nan_ids) sec.U64(id);
  sec.U32(key_count);
  for (size_t i = 0; i < rows.size();) {
    size_t end = i + 1;
    while (end < rows.size() && !(rows[i].first < rows[end].first)) ++end;
    const geodb::AttrKey& key = rows[i].first;
    sec.U8(static_cast<uint8_t>(key.cls));
    if (key.cls == geodb::AttrKey::Class::kString) {
      sec.Str(key.text);
    } else {
      sec.F64(key.number);
    }
    sec.U32(static_cast<uint32_t>(end - i));
    for (; i < end; ++i) sec.U64(rows[i].second);
  }
  return AppendSection(file, SectionKind::kAttrIndex, sec.buffer());
}

/// A fully validated kAttrIndex section, decoded before the restore
/// begins so a corrupt section can never leave a half-built database.
struct DecodedAttrIndex {
  std::string class_name;
  std::string attribute;
  geodb::AttributeIndex index;
};

/// Appends `n` u64 ids to `out`. The run is a contiguous
/// little-endian array on the wire, so on LE hosts this is one
/// memcpy instead of n bounds-checked reads — id runs are the bulk
/// of an index section's bytes.
agis::Status ReadIdRun(Decoder* dec, uint32_t n, const char* what,
                       std::vector<geodb::ObjectId>* out) {
  AGIS_ASSIGN_OR_RETURN(std::string_view raw,
                        dec->Raw(static_cast<size_t>(n) * 8, what));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  const size_t base = out->size();
  out->resize(base + n);
  std::memcpy(out->data() + base, raw.data(), static_cast<size_t>(n) * 8);
#else
  Decoder run(raw);
  for (uint32_t i = 0; i < n; ++i) {
    AGIS_ASSIGN_OR_RETURN(uint64_t id, run.U64(what));
    out->push_back(id);
  }
#endif
  return agis::Status::OK();
}

agis::Result<DecodedAttrIndex> DecodeAttrIndexSection(
    std::string_view payload, const std::string& path,
    const geodb::GeoDatabase& db) {
  Decoder dec(payload);
  AGIS_ASSIGN_OR_RETURN(std::string class_name, dec.Str("index class name"));
  AGIS_ASSIGN_OR_RETURN(std::string attribute, dec.Str("index attribute"));
  // The schema section has been applied by the time index sections
  // decode, so an unknown class is file corruption, caught here —
  // before any record is restored. (An unknown *attribute* is not:
  // the writer may simply have indexed more than this reader does.)
  if (db.schema().FindClass(class_name) == nullptr) {
    return agis::Status::ParseError(
        agis::StrCat("snapshot '", path, "': attribute index for unknown "
                     "class '", class_name, "'"));
  }
  AGIS_ASSIGN_OR_RETURN(uint32_t nan_count, dec.Count("index NaN count", 8));
  std::vector<geodb::ObjectId> nan_ids;
  AGIS_RETURN_IF_ERROR(ReadIdRun(&dec, nan_count, "index NaN ids", &nan_ids));
  // Minimum run: class byte + empty string key + count + one id.
  AGIS_ASSIGN_OR_RETURN(uint32_t key_count, dec.Count("index key count", 17));
  std::vector<geodb::AttrKey> keys;
  keys.reserve(key_count);
  std::vector<uint32_t> offsets;
  offsets.reserve(key_count + 1);
  offsets.push_back(0);
  std::vector<geodb::ObjectId> pool;
  for (uint32_t k = 0; k < key_count; ++k) {
    AGIS_ASSIGN_OR_RETURN(uint8_t cls, dec.U8("index key class"));
    if (cls > static_cast<uint8_t>(geodb::AttrKey::Class::kString)) {
      return dec.Error(
          agis::StrCat("unknown attribute key class ", cls));
    }
    geodb::AttrKey key;
    key.cls = static_cast<geodb::AttrKey::Class>(cls);
    if (key.cls == geodb::AttrKey::Class::kString) {
      AGIS_ASSIGN_OR_RETURN(key.text, dec.Str("index key text"));
    } else {
      AGIS_ASSIGN_OR_RETURN(key.number, dec.F64("index key number"));
    }
    keys.push_back(std::move(key));
    AGIS_ASSIGN_OR_RETURN(uint32_t id_count,
                          dec.Count("index posting count", 8));
    // No per-run reserve: exact-fit reserve per key would pin capacity
    // and realloc O(key_count) times; geometric growth is fine.
    AGIS_RETURN_IF_ERROR(
        ReadIdRun(&dec, id_count, "index posting ids", &pool));
    offsets.push_back(static_cast<uint32_t>(pool.size()));
  }
  if (!dec.AtEnd()) {
    return agis::Status::ParseError(agis::StrCat(
        "snapshot '", path, "': trailing bytes after attribute index"));
  }
  AGIS_ASSIGN_OR_RETURN(
      geodb::AttributeIndex index,
      geodb::AttributeIndex::FromSortedRuns(
          std::move(keys), std::move(offsets), std::move(pool),
          std::move(nan_ids)));
  return DecodedAttrIndex{std::move(class_name), std::move(attribute),
                          std::move(index)};
}

}  // namespace

agis::Result<SnapshotWriteInfo> WriteSnapshotFile(
    const geodb::GeoDatabase& db, const geodb::Snapshot& snap,
    const std::string& path, const SnapshotWriteOptions& options) {
  if (!snap.valid() || snap.database() != &db) {
    return agis::Status::InvalidArgument(
        "snapshot is detached or from another database");
  }
  const size_t per_block = std::max<size_t>(options.records_per_block, 1);

  // Pass 1: count objects and blocks per class at the pinned epoch so
  // the header can carry exact totals.
  struct ClassPlan {
    std::string name;
    std::vector<geodb::ObjectId> ids;
  };
  std::vector<ClassPlan> plan;
  uint64_t total_objects = 0;
  uint64_t total_blocks = 0;
  for (const std::string& class_name : db.schema().ClassNames()) {
    auto ids = db.ScanExtentAt(snap, class_name);
    if (!ids.ok()) continue;
    total_objects += ids.value().size();
    total_blocks += (ids.value().size() + per_block - 1) / per_block;
    plan.push_back({class_name, std::move(ids).value()});
  }

  AGIS_ASSIGN_OR_RETURN(
      AppendFile file,
      AppendFile::Open(path, /*truncate=*/true, options.fault_plan));
  AGIS_RETURN_IF_ERROR(file.Append(kSnapMagic));

  {
    Encoder header;
    header.Str(db.schema().name());
    header.U64(total_objects);
    header.U64(total_blocks);
    AGIS_RETURN_IF_ERROR(
        AppendSection(&file, SectionKind::kHeader, header.buffer()));
  }
  {
    Encoder schema;
    const std::vector<std::string> names = db.schema().ClassNames();
    schema.U32(static_cast<uint32_t>(names.size()));
    for (const std::string& name : names) {
      EncodeClassDef(*db.schema().FindClass(name), &schema);
    }
    AGIS_RETURN_IF_ERROR(
        AppendSection(&file, SectionKind::kSchema, schema.buffer()));
  }

  SnapshotWriteInfo info;
  for (const ClassPlan& cls : plan) {
    for (size_t begin = 0; begin < cls.ids.size(); begin += per_block) {
      const size_t end = std::min(begin + per_block, cls.ids.size());
      std::vector<const geodb::ObjectInstance*> objs;
      objs.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        const geodb::ObjectInstance* obj =
            db.FindObjectAt(snap, cls.ids[i]);
        if (obj == nullptr) {
          // ScanExtentAt and FindObjectAt answer at the same pinned
          // epoch; a miss here means the snapshot pin was violated.
          return agis::Status::Internal(
              agis::StrCat("snapshot object ", cls.ids[i],
                           " vanished during save"));
        }
        objs.push_back(obj);
      }
      // Intern the block's attribute names (first-seen order); the
      // views point into pinned records, alive past the encode below.
      std::vector<std::string_view> names;
      std::unordered_map<std::string_view, uint32_t> name_ids;
      for (const geodb::ObjectInstance* obj : objs) {
        for (const auto& [attr, value] : obj->values()) {
          if (name_ids.try_emplace(attr, names.size()).second) {
            names.push_back(attr);
          }
        }
      }
      Encoder block;
      block.Str(cls.name);
      block.U32(static_cast<uint32_t>(names.size()));
      for (const std::string_view name : names) block.Str(name);
      block.U32(static_cast<uint32_t>(objs.size()));
      for (const geodb::ObjectInstance* obj : objs) {
        EncodeObjectRecordTabled(*obj, name_ids, &block);
      }
      AGIS_RETURN_IF_ERROR(
          AppendSection(&file, SectionKind::kExtentBlock, block.buffer()));
      ++info.blocks;
    }
    info.objects_written += cls.ids.size();
    if (options.include_attr_indexes && !cls.ids.empty()) {
      for (const std::string& attr : db.IndexedAttributes(cls.name)) {
        AGIS_RETURN_IF_ERROR(AppendAttrIndexSection(
            &file, db, snap, cls.name, attr, cls.ids));
        ++info.attr_indexes;
      }
    }
  }

  if (!options.directives.empty()) {
    Encoder dir;
    dir.U32(static_cast<uint32_t>(options.directives.size()));
    for (const auto& [name, source] : options.directives) {
      dir.Str(name);
      dir.Str(source);
    }
    AGIS_RETURN_IF_ERROR(
        AppendSection(&file, SectionKind::kDirectives, dir.buffer()));
  }
  {
    Encoder footer;
    footer.U64(info.objects_written);
    AGIS_RETURN_IF_ERROR(
        AppendSection(&file, SectionKind::kFooter, footer.buffer()));
  }
  AGIS_RETURN_IF_ERROR(file.Sync());
  info.bytes_written = file.bytes_written();
  AGIS_RETURN_IF_ERROR(file.Close());
  return info;
}

agis::Result<SnapshotLoadStats> LoadSnapshotFileInto(
    const std::string& path, geodb::GeoDatabase* db,
    agis::TaskScheduler* scheduler) {
  const bool timing = std::getenv("AGIS_RESTORE_TIMING") != nullptr;
  const auto tstart = std::chrono::steady_clock::now();
  AGIS_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  std::string_view view(bytes);
  if (view.size() < kSnapMagic.size() ||
      view.substr(0, kSnapMagicPrefix.size()) != kSnapMagicPrefix) {
    return agis::Status::ParseError(
        agis::StrCat("'", path, "' is not an ActiveGIS snapshot"));
  }
  if (view.substr(0, kSnapMagic.size()) != kSnapMagic) {
    return agis::Status::ParseError(agis::StrCat(
        "'", path, "' has unsupported snapshot version '",
        view[kSnapMagicPrefix.size()], "' (expected '1')"));
  }

  // ---- Phase 1 (serial): frame skeleton + cheap sections -------------------
  AGIS_ASSIGN_OR_RETURN(
      std::vector<Section> sections,
      WalkSections(view.substr(kSnapMagic.size()), path));
  if (sections.empty() || sections.front().kind != SectionKind::kHeader) {
    return agis::Status::ParseError(
        agis::StrCat("snapshot '", path, "': missing header section"));
  }
  if (sections.back().kind != SectionKind::kFooter) {
    // The footer is written last; its absence means the writer died
    // mid-save (or the file was truncated).
    return agis::Status::ParseError(
        agis::StrCat("snapshot '", path,
                     "': missing footer — file is truncated"));
  }
  AGIS_RETURN_IF_ERROR(CheckCrc(sections.front(), path, "header"));
  AGIS_ASSIGN_OR_RETURN(Header header,
                        DecodeHeader(sections.front().payload));
  AGIS_RETURN_IF_ERROR(CheckCrc(sections.back(), path, "footer"));
  {
    Decoder dec(sections.back().payload);
    AGIS_ASSIGN_OR_RETURN(uint64_t footer_count, dec.U64("footer count"));
    if (footer_count != header.object_count) {
      return agis::Status::ParseError(agis::StrCat(
          "snapshot '", path, "': header/footer object count mismatch (",
          header.object_count, " vs ", footer_count, ")"));
    }
  }

  SnapshotLoadStats stats;
  std::vector<std::string_view> blocks;
  std::vector<const Section*> attr_index_sections;
  for (size_t i = 1; i + 1 < sections.size(); ++i) {
    const Section& section = sections[i];
    switch (section.kind) {
      case SectionKind::kSchema: {
        AGIS_RETURN_IF_ERROR(CheckCrc(section, path, "schema"));
        Decoder dec(section.payload);
        AGIS_ASSIGN_OR_RETURN(uint32_t nclasses,
                              dec.Count("class count", 12));
        for (uint32_t c = 0; c < nclasses; ++c) {
          AGIS_ASSIGN_OR_RETURN(geodb::ClassDef cls, DecodeClassDef(&dec));
          AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(cls)));
        }
        break;
      }
      case SectionKind::kExtentBlock:
        blocks.push_back(section.payload);
        break;
      case SectionKind::kDirectives: {
        AGIS_RETURN_IF_ERROR(CheckCrc(section, path, "directives"));
        Decoder dec(section.payload);
        AGIS_ASSIGN_OR_RETURN(uint32_t ndirs,
                              dec.Count("directive count", 8));
        for (uint32_t d = 0; d < ndirs; ++d) {
          AGIS_ASSIGN_OR_RETURN(std::string name, dec.Str("directive name"));
          AGIS_ASSIGN_OR_RETURN(std::string source,
                                dec.Str("directive source"));
          stats.directives.emplace_back(std::move(name), std::move(source));
        }
        break;
      }
      case SectionKind::kAttrIndex:
        // Installed in phase 3, after the records they cover exist.
        attr_index_sections.push_back(&section);
        break;
      case SectionKind::kHeader:
      case SectionKind::kFooter:
        return agis::Status::ParseError(agis::StrCat(
            "snapshot '", path, "': duplicate header/footer section"));
    }
  }
  if (blocks.size() != header.block_count) {
    return agis::Status::ParseError(agis::StrCat(
        "snapshot '", path, "': expected ", header.block_count,
        " extent blocks, found ", blocks.size()));
  }
  // Attribute-index sections validate fully up front (CRC, layout,
  // run invariants) like every other structure; only the install
  // waits for phase 3, when the records they cover exist.
  std::vector<DecodedAttrIndex> attr_indexes;
  attr_indexes.reserve(attr_index_sections.size());
  for (const Section* section : attr_index_sections) {
    AGIS_RETURN_IF_ERROR(CheckCrc(*section, path, "attribute index"));
    AGIS_ASSIGN_OR_RETURN(DecodedAttrIndex decoded_index,
                          DecodeAttrIndexSection(section->payload, path, *db));
    attr_indexes.push_back(std::move(decoded_index));
  }

  // ---- Phase 2 (parallel): CRC + decode every extent block -----------------
  // Section CRCs were captured in phase 1; each task re-hashes its
  // block payload and decodes the records. Nothing touches `db` until
  // every block has decoded cleanly.
  struct DecodedBlock {
    std::vector<geodb::ObjectInstance> objects;
    agis::Status status;
  };
  std::vector<DecodedBlock> decoded(blocks.size());
  const auto decode_block = [&](size_t b) {
    const std::string_view payload = blocks[b];
    // Find this block's frame CRC again from the section list.
    Decoder dec(payload);
    DecodedBlock& out = decoded[b];
    auto class_name = dec.Str("block class name");
    if (!class_name.ok()) {
      out.status = class_name.status();
      return;
    }
    auto name_count = dec.Count("block name count", 4);
    if (!name_count.ok()) {
      out.status = name_count.status();
      return;
    }
    std::vector<std::string> names;
    names.reserve(name_count.value());
    for (uint32_t n = 0; n < name_count.value(); ++n) {
      auto name = dec.Str("block attribute name");
      if (!name.ok()) {
        out.status = name.status();
        return;
      }
      names.push_back(std::move(name).value());
    }
    auto count = dec.Count("block record count", 12);
    if (!count.ok()) {
      out.status = count.status();
      return;
    }
    out.objects.reserve(count.value());
    for (uint32_t r = 0; r < count.value(); ++r) {
      auto obj = DecodeObjectRecordTabled(&dec, class_name.value(), names);
      if (!obj.ok()) {
        out.status = obj.status();
        return;
      }
      out.objects.push_back(std::move(obj).value());
    }
    if (!dec.AtEnd()) {
      out.status =
          agis::Status::ParseError("trailing bytes after extent block");
    }
  };
  // CRC-check serially indexed against sections (cheap relative to
  // decode, but still hashed off-thread when a pool is available).
  std::vector<const Section*> block_sections;
  block_sections.reserve(blocks.size());
  for (const Section& section : sections) {
    if (section.kind == SectionKind::kExtentBlock) {
      block_sections.push_back(&section);
    }
  }
  const auto check_and_decode = [&](size_t b) {
    const agis::Status crc_ok =
        CheckCrc(*block_sections[b], path, "extent block");
    if (!crc_ok.ok()) {
      decoded[b].status = crc_ok;
      return;
    }
    decode_block(b);
  };

  const auto tdecode0 = std::chrono::steady_clock::now();
  if (scheduler != nullptr && blocks.size() > 1) {
    stats.decode_workers = scheduler->num_threads();
    // Scoped group: waits only on these blocks, and the calling thread
    // helps decode instead of blocking (a restore issued from inside a
    // scheduler task cannot deadlock the worker set).
    agis::TaskGroup group(scheduler);
    for (size_t b = 1; b < blocks.size(); ++b) {
      group.Run([&check_and_decode, b] { check_and_decode(b); });
    }
    check_and_decode(0);
    group.Wait();
  } else {
    for (size_t b = 0; b < blocks.size(); ++b) check_and_decode(b);
  }
  for (const DecodedBlock& block : decoded) {
    AGIS_RETURN_IF_ERROR(block.status);
  }
  const auto tdecode1 = std::chrono::steady_clock::now();

  // ---- Phase 3 (serial): bulk-restore into the database --------------------
  db->BeginBulkRestore(header.object_count);
  for (DecodedBlock& block : decoded) {
    stats.objects_loaded += block.objects.size();
    AGIS_RETURN_IF_ERROR(db->RestoreObjects(std::move(block.objects)));
  }
  const auto trestore = std::chrono::steady_clock::now();
  // Install persisted attribute indexes now that every record they
  // reference exists; FinishBulkRestore then skips rebuilding these.
  // Sections for attributes this database does not index are legal
  // (the file may have been written under different index options);
  // install drops them silently, so count only the ones that land.
  for (DecodedAttrIndex& decoded_index : attr_indexes) {
    const std::vector<std::string> indexed =
        db->IndexedAttributes(decoded_index.class_name);
    const bool will_install =
        std::find(indexed.begin(), indexed.end(),
                  decoded_index.attribute) != indexed.end();
    AGIS_RETURN_IF_ERROR(db->InstallAttributeIndex(
        decoded_index.class_name, decoded_index.attribute,
        std::move(decoded_index.index)));
    if (will_install) ++stats.attr_indexes_loaded;
  }
  const auto tindex = std::chrono::steady_clock::now();
  AGIS_RETURN_IF_ERROR(db->FinishBulkRestore());
  if (timing) {
    const auto tend = std::chrono::steady_clock::now();
    const auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    std::fprintf(stderr,
                 "[snap_load] read+walk=%.1fms decode=%.1fms insert=%.1fms "
                 "index=%.1fms finish=%.1fms\n",
                 ms(tstart, tdecode0), ms(tdecode0, tdecode1),
                 ms(tdecode1, trestore), ms(trestore, tindex),
                 ms(tindex, tend));
  }
  if (stats.objects_loaded != header.object_count) {
    return agis::Status::ParseError(agis::StrCat(
        "snapshot '", path, "': restored ", stats.objects_loaded,
        " objects, header promised ", header.object_count));
  }
  stats.blocks = blocks.size();
  return stats;
}

agis::Result<SnapshotLoadStats> LoadSnapshotFileInto(const std::string& path,
                                                     geodb::GeoDatabase* db,
                                                     agis::ThreadPool* pool) {
  return LoadSnapshotFileInto(path, db,
                              pool != nullptr ? pool->scheduler() : nullptr);
}

agis::Result<std::unique_ptr<geodb::GeoDatabase>> LoadSnapshotFile(
    const std::string& path, geodb::DatabaseOptions options,
    agis::TaskScheduler* scheduler) {
  AGIS_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  std::string_view view(bytes);
  // Peek the header for the schema name so the database can be
  // constructed with it (full validation happens in LoadSnapshotFileInto).
  std::string schema_name = "restored";
  if (view.size() > kSnapMagic.size() + 9) {
    Decoder dec(view.substr(kSnapMagic.size() + 9));
    auto name = dec.Str("schema name");
    if (name.ok()) schema_name = name.value();
  }
  auto db = std::make_unique<geodb::GeoDatabase>(schema_name, options);
  AGIS_RETURN_IF_ERROR(
      LoadSnapshotFileInto(path, db.get(), scheduler).status());
  return db;
}

}  // namespace agis::storage
