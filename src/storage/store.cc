#include "storage/store.h"

#include <utility>

#include "base/strutil.h"
#include "base/task_scheduler.h"
#include "base/thread_pool.h"

namespace agis::storage {

namespace {

constexpr std::string_view kManifestHeader = "agis-manifest 1";

/// Directive registration semantics: later registrations of the same
/// name supersede earlier ones, keeping first-registration order.
void UpsertDirective(
    std::vector<std::pair<std::string, std::string>>* directives,
    const std::string& name, const std::string& source) {
  for (auto& [existing_name, existing_source] : *directives) {
    if (existing_name == name) {
      existing_source = source;
      return;
    }
  }
  directives->emplace_back(name, source);
}

agis::Result<uint64_t> ParseManifest(const std::string& contents,
                                     const std::string& path) {
  // "agis-manifest 1\nsnapshot <N>\n"
  const size_t first_newline = contents.find('\n');
  if (first_newline == std::string::npos ||
      contents.substr(0, first_newline) != kManifestHeader) {
    return agis::Status::ParseError(
        agis::StrCat("'", path, "' is not an ActiveGIS storage manifest"));
  }
  std::string_view rest =
      std::string_view(contents).substr(first_newline + 1);
  constexpr std::string_view kKey = "snapshot ";
  if (rest.substr(0, kKey.size()) != kKey) {
    return agis::Status::ParseError(
        agis::StrCat("manifest '", path, "': missing snapshot line"));
  }
  rest.remove_prefix(kKey.size());
  uint64_t generation = 0;
  bool any_digit = false;
  for (char c : rest) {
    if (c == '\n') break;
    if (c < '0' || c > '9') {
      return agis::Status::ParseError(
          agis::StrCat("manifest '", path, "': bad generation number"));
    }
    generation = generation * 10 + static_cast<uint64_t>(c - '0');
    any_digit = true;
  }
  if (!any_digit) {
    return agis::Status::ParseError(
        agis::StrCat("manifest '", path, "': empty generation number"));
  }
  return generation;
}

}  // namespace

std::string DurableStore::ManifestPath(const std::string& dir) {
  return agis::StrCat(dir, "/agis-manifest");
}

std::string DurableStore::WalPath(const std::string& dir,
                                  uint64_t generation) {
  return agis::StrCat(dir, "/wal-", generation, ".log");
}

std::string DurableStore::SnapshotPath(const std::string& dir,
                                       uint64_t generation) {
  return agis::StrCat(dir, "/snapshot-", generation, ".agsnap");
}

DurableStore::DurableStore(std::string dir, geodb::GeoDatabase* db,
                           StoreOptions options,
                           agis::TaskScheduler* scheduler)
    : dir_(std::move(dir)), db_(db), options_(options),
      scheduler_(scheduler) {}

agis::Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir, geodb::GeoDatabase* db, StoreOptions options,
    agis::TaskScheduler* scheduler) {
  if (db == nullptr) {
    return agis::Status::InvalidArgument("DurableStore::Open: null database");
  }
  AGIS_RETURN_IF_ERROR(EnsureDirectory(dir));
  std::unique_ptr<DurableStore> store(
      new DurableStore(dir, db, options, scheduler));
  AGIS_RETURN_IF_ERROR(store->Recover());
  AGIS_RETURN_IF_ERROR(store->OpenWalGeneration(store->generation_));
  store->AttachHooks();
  return store;
}

agis::Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir, geodb::GeoDatabase* db, StoreOptions options,
    agis::ThreadPool* pool) {
  return Open(dir, db, std::move(options),
              pool != nullptr ? pool->scheduler() : nullptr);
}

DurableStore::~DurableStore() { Close().ok(); }

agis::Status DurableStore::Recover() {
  // 1. Manifest names the base generation (0 when never checkpointed).
  uint64_t base = 0;
  {
    auto contents = ReadFileToString(ManifestPath(dir_));
    if (contents.ok()) {
      AGIS_ASSIGN_OR_RETURN(
          base, ParseManifest(contents.value(), ManifestPath(dir_)));
    } else if (!contents.status().IsNotFound()) {
      return contents.status();
    }
  }
  recovery_.base_generation = base;

  // 2. Snapshot: state at the start of the base generation. Absent for
  // a fresh directory or a never-checkpointed store.
  const std::string snapshot_path = SnapshotPath(dir_, base);
  if (FileExists(snapshot_path)) {
    AGIS_ASSIGN_OR_RETURN(SnapshotLoadStats loaded,
                          LoadSnapshotFileInto(snapshot_path, db_, scheduler_));
    recovery_.snapshot_loaded = true;
    recovery_.snapshot_objects = loaded.objects_loaded;
    for (const auto& [name, source] : loaded.directives) {
      UpsertDirective(&recovery_.directives, name, source);
    }
  }

  // 3. Replay WAL generations base..G in order. Generations are
  // contiguous by construction; the chain ends at the first missing
  // file. A torn tail is tolerated on any generation (sync writes
  // whole frames, so torn records were never acknowledged).
  bool found_any_wal = false;
  uint64_t g = base;
  for (; FileExists(WalPath(dir_, g)); ++g) {
    found_any_wal = true;
    AGIS_ASSIGN_OR_RETURN(WalReadResult wal, ReadWalFile(WalPath(dir_, g)));
    recovery_.torn_tail = recovery_.torn_tail || wal.torn_tail;
    ++recovery_.wal_generations_replayed;
    for (const WalRecord& record : wal.records) {
      AGIS_RETURN_IF_ERROR(
          ReplayRecord(record).WithContext(agis::StrCat(
              "replaying '", WalPath(dir_, g), "'")));
      ++recovery_.wal_records_replayed;
    }
  }

  // The live WAL starts a fresh generation: never append to a replayed
  // file (its tail may be torn) and never truncate one (its records
  // are still needed until the next checkpoint).
  generation_ = found_any_wal ? g : base;
  return agis::Status::OK();
}

agis::Status DurableStore::ReplayRecord(const WalRecord& record) {
  switch (record.kind) {
    case WalRecordKind::kRegisterClass:
      // Every generation head carries a catalog dump, so classes
      // recur across generations (and after a snapshot load).
      if (db_->schema().HasClass(record.class_def.name())) {
        ++recovery_.wal_records_skipped;
        return agis::Status::OK();
      }
      return db_->RegisterClass(record.class_def);
    case WalRecordKind::kInsert: {
      // Fuzzy-checkpoint overlap: the snapshot may already hold this
      // object. Idempotent redo skips it.
      agis::Status status = db_->RestoreObject(record.object);
      if (status.IsAlreadyExists()) {
        ++recovery_.wal_records_skipped;
        return agis::Status::OK();
      }
      return status;
    }
    case WalRecordKind::kUpdate: {
      agis::Status status =
          db_->RestoreUpdate(record.id, record.attribute, record.value);
      if (status.IsNotFound()) {
        // The object was deleted later in the log (or the update is
        // already reflected by the snapshot and the object since
        // removed).
        ++recovery_.wal_records_skipped;
        return agis::Status::OK();
      }
      return status;
    }
    case WalRecordKind::kDelete: {
      agis::Status status = db_->RestoreDelete(record.id);
      if (status.IsNotFound()) {
        ++recovery_.wal_records_skipped;
        return agis::Status::OK();
      }
      return status;
    }
    case WalRecordKind::kDirective:
      UpsertDirective(&recovery_.directives, record.directive_name,
                      record.directive_source);
      return agis::Status::OK();
  }
  return agis::Status::Internal("unhandled WAL record kind");
}

agis::Status DurableStore::OpenWalGeneration(uint64_t generation) {
  AGIS_ASSIGN_OR_RETURN(WalWriter wal,
                        WalWriter::Open(WalPath(dir_, generation),
                                        options_.wal));
  // Head of every generation: the current class catalog, so recovery
  // can rebuild the schema even before the first checkpoint exists.
  for (const std::string& name : db_->schema().ClassNames()) {
    WalRecord record;
    record.kind = WalRecordKind::kRegisterClass;
    record.class_def = *db_->schema().FindClass(name);
    AGIS_RETURN_IF_ERROR(wal.Append(record));
  }
  AGIS_RETURN_IF_ERROR(wal.Sync());
  wal_ = std::move(wal);
  wal_open_ = true;
  generation_ = generation;
  return agis::Status::OK();
}

void DurableStore::AttachHooks() {
  db_->AddEventSink(this);
  db_->set_schema_change_hook([this](const geodb::ClassDef& cls) {
    WalRecord record;
    record.kind = WalRecordKind::kRegisterClass;
    record.class_def = cls;
    std::lock_guard lock(mutex_);
    if (!wal_open_) return;
    LatchError(wal_.Append(record));
    // Schema changes are rare and structural: make them durable
    // immediately rather than waiting for the next group commit.
    LatchError(wal_.Sync());
  });
}

void DurableStore::LatchError(const agis::Status& status) {
  if (!status.ok() && latched_error_.ok()) {
    latched_error_ = status;
  }
}

void DurableStore::OnAfterEvent(const geodb::DbEvent& event) {
  WalRecord record;
  switch (event.kind) {
    case geodb::DbEventKind::kAfterInsert: {
      record.kind = WalRecordKind::kInsert;
      if (event.snapshot == nullptr) {
        LatchError(agis::Status::Internal(
            "after-insert event carried no snapshot; write not logged"));
        return;
      }
      const geodb::ObjectInstance* obj =
          db_->FindObjectAt(*event.snapshot, event.object_id);
      if (obj == nullptr) {
        LatchError(agis::Status::Internal(agis::StrCat(
            "inserted object ", event.object_id,
            " not visible in its own post-write snapshot")));
        return;
      }
      record.object = *obj;
      break;
    }
    case geodb::DbEventKind::kAfterUpdate:
      record.kind = WalRecordKind::kUpdate;
      record.id = event.object_id;
      record.attribute = event.attribute;
      record.value = event.new_value;
      break;
    case geodb::DbEventKind::kAfterDelete:
      record.kind = WalRecordKind::kDelete;
      record.id = event.object_id;
      break;
    default:
      return;  // Read events are not logged.
  }
  std::lock_guard lock(mutex_);
  if (!wal_open_) return;
  LatchError(wal_.Append(record));
}

agis::Status DurableStore::Sync() {
  std::lock_guard lock(mutex_);
  AGIS_RETURN_IF_ERROR(latched_error_);
  if (!wal_open_) {
    return agis::Status::FailedPrecondition("store is closed");
  }
  return wal_.Sync();
}

agis::Status DurableStore::LogDirective(const std::string& name,
                                        const std::string& source) {
  WalRecord record;
  record.kind = WalRecordKind::kDirective;
  record.directive_name = name;
  record.directive_source = source;
  std::lock_guard lock(mutex_);
  AGIS_RETURN_IF_ERROR(latched_error_);
  if (!wal_open_) {
    return agis::Status::FailedPrecondition("store is closed");
  }
  ++directives_logged_;
  return wal_.Append(record);
}

agis::Result<SnapshotWriteInfo> DurableStore::Checkpoint(
    std::vector<std::pair<std::string, std::string>> directives) {
  // Phase 1 (under the append mutex): seal the old generation and
  // rotate. Rotation happens BEFORE the snapshot pin, so a write that
  // lands in between is both absent from the old WAL's successor and
  // possibly present in the snapshot — idempotent replay absorbs the
  // overlap. Concurrent writers only block for this short swap, not
  // for the snapshot write itself.
  uint64_t new_generation = 0;
  {
    std::lock_guard lock(mutex_);
    AGIS_RETURN_IF_ERROR(latched_error_);
    if (!wal_open_) {
      return agis::Status::FailedPrecondition("store is closed");
    }
    rotated_records_ += wal_.records_appended();
    rotated_bytes_ += wal_.bytes_appended();
    rotated_syncs_ += wal_.syncs() + 1;  // +1: the Close below syncs.
    AGIS_RETURN_IF_ERROR(wal_.Close());
    wal_open_ = false;
    new_generation = generation_ + 1;
    AGIS_RETURN_IF_ERROR(OpenWalGeneration(new_generation));
  }

  // Phase 2 (no lock): pin and write the snapshot. Failure here is
  // safe — the manifest still names the old base, so recovery replays
  // the old snapshot plus every WAL including the one just opened.
  SnapshotWriteOptions snap_options;
  snap_options.records_per_block = options_.snapshot_records_per_block;
  snap_options.directives = std::move(directives);
  snap_options.fault_plan = options_.snapshot_fault_plan;
  geodb::Snapshot pin = db_->OpenSnapshot();
  AGIS_ASSIGN_OR_RETURN(
      SnapshotWriteInfo info,
      WriteSnapshotFile(*db_, pin, SnapshotPath(dir_, new_generation),
                        snap_options));
  pin.Release();

  // Phase 3: commit the checkpoint by swinging the manifest, then
  // prune superseded generations (walking down from the new base
  // until the chain ends).
  AGIS_RETURN_IF_ERROR(AtomicWriteFile(
      ManifestPath(dir_),
      agis::StrCat(kManifestHeader, "\nsnapshot ", new_generation, "\n"),
      options_.manifest_fault_plan));
  if (options_.prune_on_checkpoint) {
    for (uint64_t g = new_generation; g-- > 0;) {
      const bool had_wal = FileExists(WalPath(dir_, g));
      const bool had_snapshot = FileExists(SnapshotPath(dir_, g));
      if (!had_wal && !had_snapshot) break;
      AGIS_RETURN_IF_ERROR(RemoveFileIfExists(WalPath(dir_, g)));
      AGIS_RETURN_IF_ERROR(RemoveFileIfExists(SnapshotPath(dir_, g)));
    }
  }

  std::lock_guard lock(mutex_);
  ++checkpoints_;
  last_snapshot_objects_ = info.objects_written;
  last_snapshot_bytes_ = info.bytes_written;
  return info;
}

agis::Status DurableStore::Close() {
  agis::Status result;
  {
    std::lock_guard lock(mutex_);
    if (db_ != nullptr) {
      db_->RemoveEventSink(this);
      db_->set_schema_change_hook(nullptr);
      db_ = nullptr;
    }
    if (wal_open_) {
      result = wal_.Close();
      wal_open_ = false;
    }
    if (result.ok() && !latched_error_.ok()) {
      result = latched_error_;
    }
  }
  return result;
}

StorageStats DurableStore::stats() const {
  std::lock_guard lock(mutex_);
  StorageStats stats;
  stats.generation = generation_;
  stats.wal_records_appended = rotated_records_;
  stats.wal_bytes_appended = rotated_bytes_;
  stats.wal_syncs = rotated_syncs_;
  if (wal_open_) {
    stats.wal_records_appended += wal_.records_appended();
    stats.wal_bytes_appended += wal_.bytes_appended();
    stats.wal_syncs += wal_.syncs();
  }
  stats.checkpoints = checkpoints_;
  stats.last_snapshot_objects = last_snapshot_objects_;
  stats.last_snapshot_bytes = last_snapshot_bytes_;
  stats.directives_logged = directives_logged_;
  stats.recovery = recovery_;
  return stats;
}

}  // namespace agis::storage
