#ifndef AGIS_STORAGE_SNAPSHOT_FILE_H_
#define AGIS_STORAGE_SNAPSHOT_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "geodb/database.h"
#include "storage/io.h"

namespace agis {
class TaskScheduler;
class ThreadPool;
}

namespace agis::storage {

/// Binary snapshot format ("AGISNAP1"), the durable image a checkpoint
/// writes. Layout: an 8-byte magic followed by length-prefixed,
/// CRC-32-framed sections —
///
///   [u8 kind][u32 payload_len][u32 payload_crc][payload]
///
///   kHeader       schema name, object count, block geometry
///   kSchema       the class catalog (registration order)
///   kExtentBlock  one class extent slice: class name, the block's
///                 attribute-name table, then N records referencing
///                 names by table index (u8 for tables ≤ 256)
///   kDirectives   stored customization directives (name, source)
///   kFooter       object count again; its presence proves the file
///                 was written to completion
///   kAttrIndex    one attribute index as sorted posting runs, so a
///                 restore installs it directly instead of re-sorting
///                 the extent (the text loader always rebuilds)
///
/// Large extents split into multiple blocks (records_per_block), so a
/// single-class million-object database still load-balances across
/// the shared task scheduler: the reader walks the frame skeleton serially
/// (cheap), then CRC-checks and decodes every block in parallel, and
/// finally bulk-restores into the database where the STR bulk loader
/// absorbs the extent in one pass.
///
/// Method implementations are host code and do not persist — the same
/// contract as the text format (geodb/persist.h).

struct SnapshotWriteOptions {
  /// Records per extent block; the parallel-load unit.
  size_t records_per_block = 4096;
  /// Stored customization directives, written to their own section so
  /// tooling (and recovery) can read them without decoding records.
  std::vector<std::pair<std::string, std::string>> directives;
  /// Persist every attribute index as pre-sorted runs (kAttrIndex
  /// sections). Costs one extra pinned-object walk per indexed
  /// attribute at save time; buys the loader an install instead of a
  /// rebuild. Readers ignore sections for attributes they don't index.
  bool include_attr_indexes = true;
  FaultPlan fault_plan;  // Crash-test hook.
};

struct SnapshotWriteInfo {
  uint64_t objects_written = 0;
  uint64_t bytes_written = 0;
  uint64_t blocks = 0;
  uint64_t attr_indexes = 0;
};

/// Writes the state `snap` pins to `path` (truncating) and fsyncs it.
/// The snapshot pin means writers keep running during the save; the
/// file is a consistent point-in-time image regardless.
agis::Result<SnapshotWriteInfo> WriteSnapshotFile(
    const geodb::GeoDatabase& db, const geodb::Snapshot& snap,
    const std::string& path, const SnapshotWriteOptions& options = {});

struct SnapshotLoadStats {
  uint64_t objects_loaded = 0;
  uint64_t blocks = 0;
  /// kAttrIndex sections installed pre-built (sections naming an
  /// attribute this database does not index are skipped, not counted).
  uint64_t attr_indexes_loaded = 0;
  /// Worker count the block decode fanned out over (1 = serial).
  size_t decode_workers = 1;
  std::vector<std::pair<std::string, std::string>> directives;
};

/// Restores the snapshot at `path` into `db`, which must be freshly
/// constructed (no classes, no objects). All structural validation —
/// frame skeleton, footer, every CRC, full record decode — completes
/// before the first object is restored, so a corrupt file errors out
/// without touching the database. Should a restore step itself fail
/// (e.g. a schema-invalid record), the database must be discarded; a
/// partially-restored instance is never returned as success.
agis::Result<SnapshotLoadStats> LoadSnapshotFileInto(
    const std::string& path, geodb::GeoDatabase* db,
    agis::TaskScheduler* scheduler = nullptr);

/// DEPRECATED ThreadPool overload: forwards to the pool's underlying
/// scheduler slice.
agis::Result<SnapshotLoadStats> LoadSnapshotFileInto(const std::string& path,
                                                     geodb::GeoDatabase* db,
                                                     agis::ThreadPool* pool);

/// Convenience wrapper: builds a new database from the snapshot
/// (mirrors geodb::LoadDatabaseFromFile for the binary format).
agis::Result<std::unique_ptr<geodb::GeoDatabase>> LoadSnapshotFile(
    const std::string& path,
    geodb::DatabaseOptions options = geodb::DatabaseOptions(),
    agis::TaskScheduler* scheduler = nullptr);

}  // namespace agis::storage

#endif  // AGIS_STORAGE_SNAPSHOT_FILE_H_
