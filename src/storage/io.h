#ifndef AGIS_STORAGE_IO_H_
#define AGIS_STORAGE_IO_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "base/status.h"

namespace agis::storage {

/// Crash-point description for fault-injection tests: the owning file
/// fails the write that would push its lifetime byte count past
/// `fail_after_bytes`. With `short_write` the failing write first
/// lands the prefix that fits (a torn record on disk) — exactly what a
/// power cut mid-write produces. Once tripped, every later write and
/// sync on the file fails too, so a "crashed" writer cannot quietly
/// keep going.
struct FaultPlan {
  static constexpr uint64_t kNoFault = UINT64_MAX;
  uint64_t fail_after_bytes = kNoFault;
  bool short_write = true;

  bool armed() const { return fail_after_bytes != kNoFault; }
};

/// Append-only file used by the WAL and snapshot writers. Buffered
/// writes (fwrite) with explicit `Flush` (to the OS) and `Sync`
/// (fsync: survives power loss) barriers. Move-only.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens `path` for appending (`truncate` starts it empty).
  static agis::Result<AppendFile> Open(const std::string& path, bool truncate,
                                       FaultPlan fault_plan = FaultPlan());

  agis::Status Append(std::string_view bytes);
  agis::Status Flush();
  agis::Status Sync();
  agis::Status Close();

  bool is_open() const { return file_ != nullptr; }
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t bytes_written_ = 0;
  FaultPlan fault_plan_;
  bool fault_tripped_ = false;
};

/// Whole-file read; NotFound when the file does not exist.
agis::Result<std::string> ReadFileToString(const std::string& path);

/// Durable whole-file replace: writes `path`.tmp, fsyncs it, and
/// renames over `path` — a crash leaves either the old or the new
/// contents, never a torn mix. `fault_plan` injects write failures for
/// crash tests (the tmp file is left behind; recovery ignores it).
agis::Status AtomicWriteFile(const std::string& path,
                             std::string_view contents,
                             FaultPlan fault_plan = FaultPlan());

bool FileExists(const std::string& path);
agis::Status RemoveFileIfExists(const std::string& path);
/// Creates `path` (and missing parents) as a directory.
agis::Status EnsureDirectory(const std::string& path);

}  // namespace agis::storage

#endif  // AGIS_STORAGE_IO_H_
