#ifndef AGIS_STORAGE_STORE_H_
#define AGIS_STORAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "geodb/database.h"
#include "geodb/events.h"
#include "storage/snapshot_file.h"
#include "storage/wal.h"

namespace agis {
class TaskScheduler;
class ThreadPool;
}

namespace agis::storage {

/// Tuning and fault-injection knobs for a DurableStore.
struct StoreOptions {
  /// Group-commit / auto-sync policy for the live WAL.
  WalWriterOptions wal;
  /// Parallel-load block size for checkpoint snapshots.
  size_t snapshot_records_per_block = 4096;
  /// Remove superseded generations (old WALs and snapshots) after a
  /// successful checkpoint.
  bool prune_on_checkpoint = true;
  /// Crash-test hooks. `wal.fault_plan` arms the WAL opened at attach;
  /// these two arm the checkpoint's snapshot write and manifest swap.
  FaultPlan snapshot_fault_plan;
  FaultPlan manifest_fault_plan;
};

/// What recovery found and replayed when the store opened.
struct RecoveryInfo {
  /// Generation of the snapshot loaded (also the first WAL replayed).
  uint64_t base_generation = 0;
  bool snapshot_loaded = false;
  uint64_t snapshot_objects = 0;
  uint64_t wal_generations_replayed = 0;
  uint64_t wal_records_replayed = 0;
  /// Replayed records that were already reflected by the snapshot
  /// (fuzzy-checkpoint overlap) or undone by later records; skipping
  /// them is what makes redo idempotent.
  uint64_t wal_records_skipped = 0;
  /// True when some WAL ended in a torn record — the signature of a
  /// crash mid-append. The torn record was never acknowledged.
  bool torn_tail = false;
  /// Stored customization directives, registration order, later
  /// registrations of the same name superseding earlier ones. The
  /// core layer re-installs these (the database does not interpret
  /// them).
  std::vector<std::pair<std::string, std::string>> directives;
};

/// Counters surfaced alongside geodb::DatabaseStats.
struct StorageStats {
  uint64_t generation = 0;
  uint64_t wal_records_appended = 0;
  uint64_t wal_bytes_appended = 0;
  uint64_t wal_syncs = 0;
  uint64_t checkpoints = 0;
  uint64_t last_snapshot_objects = 0;
  uint64_t last_snapshot_bytes = 0;
  uint64_t directives_logged = 0;
  RecoveryInfo recovery;
};

/// Durable storage for one GeoDatabase: a directory of generation
/// files plus a manifest.
///
///   agis-manifest       text, names the checkpointed generation S
///   snapshot-<g>.agsnap state at the *start* of generation g
///   wal-<g>.log         writes made *during* generation g
///
/// Opening the store recovers (load snapshot-S, replay wal-S..G in
/// order, tolerate a torn final record), then attaches to the live
/// database: it registers as an event sink so every Insert/Update/
/// Delete appends a WAL record, hooks RegisterClass so schema changes
/// are logged too, and opens a fresh WAL generation headed by a dump
/// of the current class catalog.
///
/// Durability contract: a write is guaranteed to survive a crash once
/// a Sync() (or an automatic sync per WalWriterOptions) has returned
/// OK after it. Checkpoint() rotates the WAL *before* pinning the
/// snapshot, so the snapshot can include writes also present in the
/// new WAL's head — replay is idempotent (insert of an existing id,
/// update/delete of a missing id are skips, not errors) and converges
/// to the same state regardless of where in the checkpoint sequence a
/// crash lands.
///
/// Threading: Append capture (the event sink) is safe under the
/// database's concurrent writers; Sync/Checkpoint/Close serialize on
/// an internal mutex. Because the sink interface cannot return an
/// error, a failed WAL append latches and surfaces at the next
/// Sync()/Checkpoint() — acknowledged durability is never silently
/// weaker than reported.
class DurableStore : public geodb::DbEventSink {
 public:
  /// Recovers `dir` into `db` (which must be freshly constructed:
  /// no classes, no objects) and attaches. `scheduler` parallelizes
  /// snapshot block decode during recovery and checkpoint loads.
  static agis::Result<std::unique_ptr<DurableStore>> Open(
      const std::string& dir, geodb::GeoDatabase* db,
      StoreOptions options = StoreOptions(),
      agis::TaskScheduler* scheduler = nullptr);

  /// DEPRECATED ThreadPool overload: forwards the pool's underlying
  /// scheduler slice.
  static agis::Result<std::unique_ptr<DurableStore>> Open(
      const std::string& dir, geodb::GeoDatabase* db, StoreOptions options,
      agis::ThreadPool* pool);

  ~DurableStore() override;

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// What recovery found when this store opened.
  const RecoveryInfo& recovery() const { return recovery_; }

  /// Durability barrier: group-commit buffer flushed and fsynced.
  /// Returns any latched append error first.
  agis::Status Sync();

  /// Writes a checkpoint: rotates to a new WAL generation, saves a
  /// snapshot of the database (with `directives`, the core layer's
  /// stored customizations), atomically updates the manifest, and
  /// prunes superseded generations. Writers keep running throughout —
  /// the snapshot is taken from a pin, not a stop-the-world copy.
  agis::Result<SnapshotWriteInfo> Checkpoint(
      std::vector<std::pair<std::string, std::string>> directives = {});

  /// Logs a customization-directive registration (durable after the
  /// next sync, like any write).
  agis::Status LogDirective(const std::string& name,
                            const std::string& source);

  /// Detaches from the database and closes the WAL (final sync).
  /// Idempotent; also run by the destructor.
  agis::Status Close();

  bool attached() const { return db_ != nullptr; }
  const std::string& directory() const { return dir_; }
  StorageStats stats() const;

  /// DbEventSink: captures after-write events into the WAL.
  void OnAfterEvent(const geodb::DbEvent& event) override;

  // ---- Path helpers (exposed for tests and tooling) ----------------------
  static std::string ManifestPath(const std::string& dir);
  static std::string WalPath(const std::string& dir, uint64_t generation);
  static std::string SnapshotPath(const std::string& dir,
                                  uint64_t generation);

 private:
  DurableStore(std::string dir, geodb::GeoDatabase* db, StoreOptions options,
               agis::TaskScheduler* scheduler);

  /// Loads the manifest + snapshot + WAL chain into db_. Fills
  /// recovery_.
  agis::Status Recover();
  /// Applies one replayed record to db_ (idempotent redo).
  agis::Status ReplayRecord(const WalRecord& record);
  /// Opens wal-<generation> and writes the schema-catalog dump at its
  /// head.
  agis::Status OpenWalGeneration(uint64_t generation);
  /// Registers the event sink and the schema-change hook.
  void AttachHooks();

  void LatchError(const agis::Status& status);

  std::string dir_;
  geodb::GeoDatabase* db_;
  StoreOptions options_;
  agis::TaskScheduler* scheduler_;

  /// Serializes WAL appends against rotation (Checkpoint) and close.
  mutable std::mutex mutex_;
  WalWriter wal_;
  bool wal_open_ = false;
  uint64_t generation_ = 0;
  agis::Status latched_error_;  // First failed append, surfaced at Sync.

  RecoveryInfo recovery_;
  uint64_t checkpoints_ = 0;
  uint64_t directives_logged_ = 0;
  uint64_t last_snapshot_objects_ = 0;
  uint64_t last_snapshot_bytes_ = 0;
  /// Records/bytes/syncs accumulated from WAL generations already
  /// rotated out (the live writer's counters are added on top).
  uint64_t rotated_records_ = 0;
  uint64_t rotated_bytes_ = 0;
  uint64_t rotated_syncs_ = 0;
};

}  // namespace agis::storage

#endif  // AGIS_STORAGE_STORE_H_
