#ifndef AGIS_STORAGE_CHANGEFEED_H_
#define AGIS_STORAGE_CHANGEFEED_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"
#include "geodb/events.h"
#include "geodb/value.h"

namespace agis::storage {

/// Kind of one changefeed delta.
enum class ChangeKind { kInsert, kUpdate, kDelete, kSchema };

const char* ChangeKindName(ChangeKind kind);

/// One sequence-numbered delta: "write `write_epoch` changed these
/// attributes of this object". The stream carries the same total order
/// the WAL records (both are fed from the after-write event the
/// database emits once per write), so a subscriber that has consumed
/// up to `seq` has seen every write up to that point. kSchema records
/// mark a RegisterClass; consumers that maintain class-shaped derived
/// state treat them as a rebuild boundary.
struct ChangeRecord {
  uint64_t seq = 0;  // Assigned by the feed; contiguous from 1.
  ChangeKind kind = ChangeKind::kInsert;
  std::string class_name;
  geodb::ObjectId object_id = 0;
  /// The database write epoch that produced this delta (0 for kSchema).
  uint64_t write_epoch = 0;
  /// Attribute names the write supplied (all given attributes for an
  /// insert, the single updated attribute for an update, empty for
  /// delete/schema records).
  std::vector<std::string> changed_attributes;

  std::string ToString() const;
};

/// Aggregate counters, for tests, benches, and monitoring.
struct ChangefeedStats {
  uint64_t published = 0;
  /// Records that fell off the ring's tail before every subscriber
  /// consumed them (each one forces lagging subscribers to resync).
  uint64_t dropped = 0;
  /// Poll calls answered with resync=true.
  uint64_t resyncs = 0;
  uint64_t polls = 0;
  size_t subscribers = 0;
  /// Sequence number of the newest record published (0 = none yet).
  uint64_t head_seq = 0;
  /// Oldest sequence number still in the ring (0 = empty ring).
  uint64_t tail_seq = 0;
};

/// Result of one Poll: the records after the subscriber's cursor, in
/// sequence order. `resync=true` means the subscriber fell past the
/// ring's tail — the intervening deltas are gone, records is empty,
/// and the cursor has jumped to the head; the subscriber must rebuild
/// its derived state from the database before consuming deltas again
/// (the drop-to-resync contract that keeps slow consumers from ever
/// blocking writers).
struct ChangefeedPoll {
  std::vector<ChangeRecord> records;
  bool resync = false;
  /// Cursor to pass to Ack once the records are applied (== the last
  /// record's seq; on resync, the head the cursor jumped to).
  uint64_t next_seq = 0;
};

/// Bounded, sequence-numbered delta stream over the database's write
/// events — the subscribable face of the WAL's total order.
///
/// Registered as one more DbEventSink alongside the rule-engine bridge
/// and the durable store's WAL appender: every after-write event
/// publishes one record into a bounded ring. Publishing is O(1) and
/// never waits on consumers — when the ring is full the oldest record
/// is dropped and any subscriber still needing it is flagged for
/// resync at its next Poll. Consumers pull: Subscribe / Poll / Ack
/// cursors, with SubscribeFrom for replay of whatever the ring still
/// holds.
///
/// Thread safety: all operations are safe to call concurrently (one
/// internal mutex; every operation is O(ring section touched), so the
/// critical sections are short). The feed observes events *after* the
/// database released its locks, mirroring the other sinks.
class Changefeed : public geodb::DbEventSink {
 public:
  using SubscriberId = uint64_t;

  /// `capacity` is the ring bound (clamped to at least 1): how far the
  /// slowest subscriber may lag before it is dropped to resync.
  explicit Changefeed(size_t capacity = 4096);

  Changefeed(const Changefeed&) = delete;
  Changefeed& operator=(const Changefeed&) = delete;

  // ---- Producer side -----------------------------------------------------

  /// DbEventSink: maps after-write events (and schema changes) to
  /// records; read events are ignored.
  void OnAfterEvent(const geodb::DbEvent& event) override;

  /// Direct publication (tests; also any producer that is not a
  /// GeoDatabase). `record.seq` is assigned by the feed.
  uint64_t Publish(ChangeRecord record);

  // ---- Consumer side -----------------------------------------------------

  /// New subscriber cursored at the current head: it sees only records
  /// published after this call.
  SubscriberId Subscribe();

  /// New subscriber cursored at `seq`: its first Poll replays the
  /// retained records with sequence > `seq` (resync if the ring no
  /// longer reaches back that far). Subscribe() == SubscribeFrom(head).
  SubscriberId SubscribeFrom(uint64_t seq);

  /// Forgets the subscriber. Safe to call concurrently with Publish /
  /// other subscribers' polls; returns false when unknown.
  bool Unsubscribe(SubscriberId id);

  /// Records after the subscriber's cursor, oldest first, up to
  /// `max_records` (0 = all retained). Does not advance the cursor —
  /// call Ack with the returned next_seq once the batch is applied, so
  /// an aborted consumer re-polls the same records (at-least-once).
  ChangefeedPoll Poll(SubscriberId id, size_t max_records = 0);

  /// Advances the subscriber's cursor to `seq` (no-op when behind the
  /// current cursor; NotFound for unknown subscribers).
  agis::Status Ack(SubscriberId id, uint64_t seq);

  /// How many published records the subscriber has not acked yet.
  uint64_t Lag(SubscriberId id) const;

  uint64_t head_seq() const;
  ChangefeedStats stats() const;

 private:
  struct Subscriber {
    /// Highest sequence number acked; Poll returns (acked, head].
    uint64_t acked = 0;
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<ChangeRecord> ring_;  // Ascending seq; back() is newest.
  uint64_t next_seq_ = 1;
  SubscriberId next_subscriber_ = 1;
  std::map<SubscriberId, Subscriber> subscribers_;
  ChangefeedStats stats_;
};

}  // namespace agis::storage

#endif  // AGIS_STORAGE_CHANGEFEED_H_
