#ifndef AGIS_STORAGE_FORMAT_H_
#define AGIS_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "geodb/object.h"
#include "geodb/schema.h"
#include "geodb/value.h"

namespace agis::storage {

/// CRC-32 (IEEE 802.3, reflected polynomial) over `n` bytes, chainable
/// via `seed`. Every framed payload in the snapshot and WAL formats is
/// covered by one so corruption is detected before decoding.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);
inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

/// Little-endian append-only byte sink for the binary formats. All
/// integers are fixed-width little-endian; strings and byte blobs are
/// length-prefixed with a u32.
class Encoder {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);
  void Str(std::string_view s);  // u32 length + raw bytes
  void Raw(std::string_view bytes) { out_.append(bytes); }

  size_t size() const { return out_.size(); }
  const std::string& buffer() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reader over a byte span. Every read
/// validates the remaining length first, and length prefixes are
/// checked against the bytes actually present before any allocation —
/// a corrupt length can produce an error, never an over-read or an
/// absurd reserve.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  agis::Result<uint8_t> U8(const char* what);
  agis::Result<uint32_t> U32(const char* what);
  agis::Result<uint64_t> U64(const char* what);
  agis::Result<double> F64(const char* what);
  agis::Result<std::string> Str(const char* what);
  /// Consumes `n` raw bytes as a view into the underlying buffer.
  agis::Result<std::string_view> Raw(size_t n, const char* what);
  /// Reads a u32 element count and validates it against the minimum
  /// encoded size of one element (`min_element_bytes`), so corrupt
  /// counts fail instead of driving huge loops/reserves.
  agis::Result<uint32_t> Count(const char* what, size_t min_element_bytes = 1);

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  agis::Status Error(const std::string& message) const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---- Domain codecs ---------------------------------------------------------
//
// Values, object records, and class definitions encode to the same
// byte layout in snapshots and WAL records. Method *implementations*
// are host code and do not persist (the text-format contract).

void EncodeValue(const geodb::Value& value, Encoder* enc);
agis::Result<geodb::Value> DecodeValue(Decoder* dec);

/// Object record: u64 id + u32 attribute count + (name, value) pairs.
/// The class name travels outside the record (block header / WAL
/// record), so per-object overhead stays small.
void EncodeObjectRecord(const geodb::ObjectInstance& obj, Encoder* enc);
agis::Result<geodb::ObjectInstance> DecodeObjectRecord(
    Decoder* dec, const std::string& class_name);

/// Name-tabled record variant (snapshot extent blocks): attribute
/// names are interned once per block and records carry table indexes —
/// u8 when the table has ≤ 256 entries, else u32. At a million
/// records the repeated names dominate the raw encoding's size, so
/// this is a large file-size (and decode-time) win; the WAL keeps the
/// self-contained encoding above, where records travel alone.
void EncodeObjectRecordTabled(
    const geodb::ObjectInstance& obj,
    const std::unordered_map<std::string_view, uint32_t>& name_ids,
    Encoder* enc);
agis::Result<geodb::ObjectInstance> DecodeObjectRecordTabled(
    Decoder* dec, const std::string& class_name,
    const std::vector<std::string>& names);

void EncodeAttributeDef(const geodb::AttributeDef& attr, Encoder* enc);
agis::Result<geodb::AttributeDef> DecodeAttributeDef(Decoder* dec);

void EncodeClassDef(const geodb::ClassDef& cls, Encoder* enc);
agis::Result<geodb::ClassDef> DecodeClassDef(Decoder* dec);

}  // namespace agis::storage

#endif  // AGIS_STORAGE_FORMAT_H_
