#ifndef AGIS_STORAGE_WAL_H_
#define AGIS_STORAGE_WAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"
#include "geodb/object.h"
#include "geodb/schema.h"
#include "geodb/value.h"
#include "storage/io.h"

namespace agis::storage {

/// Operation kinds logged to the write-ahead log. Values are part of
/// the on-disk format; append only.
enum class WalRecordKind : uint8_t {
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
  /// Customization-directive registration (canonical name + source);
  /// replayed by the core layer, not by the database.
  kDirective = 4,
  /// Schema-catalog entry. The attached store dumps the current
  /// catalog at the head of every WAL generation and logs later
  /// RegisterClass calls, so recovery can rebuild the schema even
  /// before the first checkpoint exists.
  kRegisterClass = 5,
};

/// One decoded WAL record. Only the fields of its kind are meaningful.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kInsert;
  geodb::ObjectInstance object;  // kInsert: full object (id + class + values)
  geodb::ObjectId id = 0;        // kUpdate / kDelete
  std::string attribute;         // kUpdate
  geodb::Value value;            // kUpdate
  std::string directive_name;    // kDirective
  std::string directive_source;  // kDirective
  geodb::ClassDef class_def;     // kRegisterClass
};

struct WalWriterOptions {
  /// Group commit: appended records accumulate in memory and are
  /// written out (no fsync) once the batch reaches this size. Sync()
  /// flushes the batch and fsyncs — that is the durability barrier.
  size_t group_commit_bytes = 64 << 10;
  /// If nonzero, every Nth record triggers a full Sync automatically
  /// (strict durability at the cost of fsync frequency).
  size_t sync_every_records = 0;
  FaultPlan fault_plan;  // Crash-test hook, forwarded to the file.
};

/// Appender for one WAL file. Thread-safe: concurrent Append/Sync
/// calls serialize on an internal mutex (group commit batches them).
class WalWriter {
 public:
  /// Creates `path` (truncating) and writes the format header.
  static agis::Result<WalWriter> Open(const std::string& path,
                                      WalWriterOptions options = {});

  /// Constructs a closed writer (Append/Sync fail); assign from Open.
  WalWriter() = default;
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Serializes and buffers one record; flushes the group-commit
  /// buffer when full. The record is durable only after the next
  /// Sync() (or automatic sync per options).
  agis::Status Append(const WalRecord& record);

  /// Writes any buffered records to the OS (still not power-safe).
  agis::Status Flush();

  /// Durability barrier: flush + fsync. Every record appended before
  /// a successful Sync survives a crash.
  agis::Status Sync();

  agis::Status Close();

  uint64_t records_appended() const { return records_appended_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t syncs() const { return syncs_; }

 private:
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
  AppendFile file_;
  WalWriterOptions options_;
  std::string pending_;  // Group-commit buffer of framed records.
  uint64_t records_appended_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t syncs_ = 0;
  uint64_t records_since_sync_ = 0;
};

/// Result of scanning one WAL file.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// True when the file ends in an incomplete or CRC-failing frame —
  /// the signature of a crash mid-append. The intact prefix is
  /// returned; the torn record was never acknowledged (a successful
  /// Sync writes whole frames), so dropping it loses nothing durable.
  bool torn_tail = false;
  /// Bytes of intact frames consumed (excludes any torn tail).
  uint64_t bytes_consumed = 0;
};

/// Reads every intact record of the WAL file at `path`. Errors on a
/// missing/foreign/unsupported-version header; a torn tail is not an
/// error (see WalReadResult::torn_tail).
agis::Result<WalReadResult> ReadWalFile(const std::string& path);

}  // namespace agis::storage

#endif  // AGIS_STORAGE_WAL_H_
