#include "storage/format.h"

#include <cstring>

#include "base/strutil.h"
#include "geom/geometry.h"

namespace agis::storage {

namespace {

/// Lazily-built reflected CRC-32 tables (polynomial 0xEDB88320),
/// slice-by-8: table[0] is the classic byte-at-a-time table, tables
/// 1..7 fold 8 input bytes per step so hashing runs at memory speed
/// instead of one table lookup per byte — snapshot load verifies the
/// whole file, so this is on the restore critical path.
using Crc32TableSet = uint32_t[8][256];

const Crc32TableSet& Crc32Tables() {
  static const Crc32TableSet* tables = [] {
    static Crc32TableSet t;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[slice][i] = c;
      }
    }
    return &t;
  }();
  return *tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const Crc32TableSet& t = Crc32Tables();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    c ^= lo;
    c = t[7][c & 0xFF] ^ t[6][(c >> 8) & 0xFF] ^ t[5][(c >> 16) & 0xFF] ^
        t[4][c >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    c = t[0][(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---- Encoder ---------------------------------------------------------------

void Encoder::U32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(buf, 4);
}

void Encoder::U64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(buf, 8);
}

void Encoder::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Encoder::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

// ---- Decoder ---------------------------------------------------------------

agis::Status Decoder::Error(const std::string& message) const {
  return agis::Status::ParseError(
      agis::StrCat("binary format at byte ", pos_, ": ", message));
}

agis::Result<uint8_t> Decoder::U8(const char* what) {
  if (remaining() < 1) return Error(agis::StrCat("truncated ", what));
  return static_cast<uint8_t>(data_[pos_++]);
}

agis::Result<uint32_t> Decoder::U32(const char* what) {
  if (remaining() < 4) return Error(agis::StrCat("truncated ", what));
  uint32_t v = 0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The wire format is little-endian, so on LE hosts the fixed-width
  // reads are plain loads — these run once per integer of a
  // million-object restore.
  std::memcpy(&v, data_.data() + pos_, 4);
#else
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
#endif
  pos_ += 4;
  return v;
}

agis::Result<uint64_t> Decoder::U64(const char* what) {
  if (remaining() < 8) return Error(agis::StrCat("truncated ", what));
  uint64_t v = 0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  std::memcpy(&v, data_.data() + pos_, 8);
#else
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
#endif
  pos_ += 8;
  return v;
}

agis::Result<double> Decoder::F64(const char* what) {
  AGIS_ASSIGN_OR_RETURN(uint64_t bits, U64(what));
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

agis::Result<std::string> Decoder::Str(const char* what) {
  AGIS_ASSIGN_OR_RETURN(uint32_t len, U32(what));
  if (remaining() < len) {
    return Error(agis::StrCat("string length ", len, " for ", what,
                              " exceeds remaining ", remaining(), " bytes"));
  }
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

agis::Result<std::string_view> Decoder::Raw(size_t n, const char* what) {
  if (remaining() < n) return Error(agis::StrCat("truncated ", what));
  std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

agis::Result<uint32_t> Decoder::Count(const char* what,
                                      size_t min_element_bytes) {
  AGIS_ASSIGN_OR_RETURN(uint32_t count, U32(what));
  const size_t floor = min_element_bytes == 0 ? 1 : min_element_bytes;
  if (static_cast<size_t>(count) > remaining() / floor + 1) {
    return Error(agis::StrCat("count ", count, " for ", what,
                              " exceeds remaining ", remaining(), " bytes"));
  }
  return count;
}

// ---- Geometry --------------------------------------------------------------

namespace {

void EncodePoints(const std::vector<geom::Point>& pts, Encoder* enc) {
  enc->U32(static_cast<uint32_t>(pts.size()));
  for (const geom::Point& p : pts) {
    enc->F64(p.x);
    enc->F64(p.y);
  }
}

agis::Result<std::vector<geom::Point>> DecodePoints(Decoder* dec) {
  AGIS_ASSIGN_OR_RETURN(uint32_t n, dec->Count("point count", 16));
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    geom::Point p;
    AGIS_ASSIGN_OR_RETURN(p.x, dec->F64("point x"));
    AGIS_ASSIGN_OR_RETURN(p.y, dec->F64("point y"));
    pts.push_back(p);
  }
  return pts;
}

void EncodeGeometry(const geom::Geometry& g, Encoder* enc) {
  enc->U8(static_cast<uint8_t>(g.kind()));
  switch (g.kind()) {
    case geom::GeometryKind::kPoint:
      enc->F64(g.point().x);
      enc->F64(g.point().y);
      break;
    case geom::GeometryKind::kLineString:
      EncodePoints(g.linestring().points, enc);
      break;
    case geom::GeometryKind::kPolygon: {
      EncodePoints(g.polygon().outer, enc);
      enc->U32(static_cast<uint32_t>(g.polygon().holes.size()));
      for (const auto& hole : g.polygon().holes) EncodePoints(hole, enc);
      break;
    }
    case geom::GeometryKind::kMultiPoint:
      EncodePoints(g.multipoint(), enc);
      break;
  }
}

agis::Result<geom::Geometry> DecodeGeometry(Decoder* dec) {
  AGIS_ASSIGN_OR_RETURN(uint8_t kind, dec->U8("geometry kind"));
  switch (static_cast<geom::GeometryKind>(kind)) {
    case geom::GeometryKind::kPoint: {
      geom::Point p;
      AGIS_ASSIGN_OR_RETURN(p.x, dec->F64("point x"));
      AGIS_ASSIGN_OR_RETURN(p.y, dec->F64("point y"));
      return geom::Geometry::FromPoint(p);
    }
    case geom::GeometryKind::kLineString: {
      geom::LineString ls;
      AGIS_ASSIGN_OR_RETURN(ls.points, DecodePoints(dec));
      return geom::Geometry::FromLineString(std::move(ls));
    }
    case geom::GeometryKind::kPolygon: {
      geom::Polygon poly;
      AGIS_ASSIGN_OR_RETURN(poly.outer, DecodePoints(dec));
      AGIS_ASSIGN_OR_RETURN(uint32_t nholes, dec->Count("hole count", 4));
      poly.holes.reserve(nholes);
      for (uint32_t i = 0; i < nholes; ++i) {
        AGIS_ASSIGN_OR_RETURN(std::vector<geom::Point> hole,
                              DecodePoints(dec));
        poly.holes.push_back(std::move(hole));
      }
      return geom::Geometry::FromPolygon(std::move(poly));
    }
    case geom::GeometryKind::kMultiPoint: {
      AGIS_ASSIGN_OR_RETURN(std::vector<geom::Point> pts, DecodePoints(dec));
      return geom::Geometry::FromMultiPoint(std::move(pts));
    }
  }
  return dec->Error(agis::StrCat("unknown geometry kind ", kind));
}

}  // namespace

// ---- Value -----------------------------------------------------------------

void EncodeValue(const geodb::Value& value, Encoder* enc) {
  enc->U8(static_cast<uint8_t>(value.kind()));
  switch (value.kind()) {
    case geodb::ValueKind::kNull:
      break;
    case geodb::ValueKind::kBool:
      enc->U8(value.bool_value() ? 1 : 0);
      break;
    case geodb::ValueKind::kInt:
      enc->U64(static_cast<uint64_t>(value.int_value()));
      break;
    case geodb::ValueKind::kDouble:
      enc->F64(value.double_value());
      break;
    case geodb::ValueKind::kString:
      enc->Str(value.string_value());
      break;
    case geodb::ValueKind::kBlob: {
      const geodb::Blob& blob = value.blob_value();
      enc->Str(blob.format);
      enc->Str(std::string_view(
          reinterpret_cast<const char*>(blob.bytes.data()),
          blob.bytes.size()));
      break;
    }
    case geodb::ValueKind::kGeometry:
      EncodeGeometry(value.geometry_value(), enc);
      break;
    case geodb::ValueKind::kTuple: {
      const geodb::Value::Tuple& fields = value.tuple_value();
      enc->U32(static_cast<uint32_t>(fields.size()));
      for (const auto& [name, field] : fields) {
        enc->Str(name);
        EncodeValue(field, enc);
      }
      break;
    }
    case geodb::ValueKind::kList: {
      const geodb::Value::List& items = value.list_value();
      enc->U32(static_cast<uint32_t>(items.size()));
      for (const geodb::Value& item : items) EncodeValue(item, enc);
      break;
    }
    case geodb::ValueKind::kRef:
      enc->U64(value.ref_value().id);
      enc->Str(value.ref_value().class_name);
      break;
  }
}

agis::Result<geodb::Value> DecodeValue(Decoder* dec) {
  AGIS_ASSIGN_OR_RETURN(uint8_t kind, dec->U8("value kind"));
  switch (static_cast<geodb::ValueKind>(kind)) {
    case geodb::ValueKind::kNull:
      return geodb::Value();
    case geodb::ValueKind::kBool: {
      AGIS_ASSIGN_OR_RETURN(uint8_t b, dec->U8("bool value"));
      return geodb::Value::Bool(b != 0);
    }
    case geodb::ValueKind::kInt: {
      AGIS_ASSIGN_OR_RETURN(uint64_t v, dec->U64("int value"));
      return geodb::Value::Int(static_cast<int64_t>(v));
    }
    case geodb::ValueKind::kDouble: {
      AGIS_ASSIGN_OR_RETURN(double v, dec->F64("double value"));
      return geodb::Value::Double(v);
    }
    case geodb::ValueKind::kString: {
      AGIS_ASSIGN_OR_RETURN(std::string s, dec->Str("string value"));
      return geodb::Value::String(std::move(s));
    }
    case geodb::ValueKind::kBlob: {
      geodb::Blob blob;
      AGIS_ASSIGN_OR_RETURN(blob.format, dec->Str("blob format"));
      AGIS_ASSIGN_OR_RETURN(std::string bytes, dec->Str("blob bytes"));
      blob.bytes.assign(bytes.begin(), bytes.end());
      return geodb::Value::MakeBlob(std::move(blob));
    }
    case geodb::ValueKind::kGeometry: {
      AGIS_ASSIGN_OR_RETURN(geom::Geometry g, DecodeGeometry(dec));
      return geodb::Value::MakeGeometry(std::move(g));
    }
    case geodb::ValueKind::kTuple: {
      AGIS_ASSIGN_OR_RETURN(uint32_t n, dec->Count("tuple field count", 5));
      geodb::Value::Tuple fields;
      fields.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        AGIS_ASSIGN_OR_RETURN(std::string name, dec->Str("tuple field name"));
        AGIS_ASSIGN_OR_RETURN(geodb::Value field, DecodeValue(dec));
        fields.emplace_back(std::move(name), std::move(field));
      }
      return geodb::Value::MakeTuple(std::move(fields));
    }
    case geodb::ValueKind::kList: {
      AGIS_ASSIGN_OR_RETURN(uint32_t n, dec->Count("list item count", 1));
      geodb::Value::List items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        AGIS_ASSIGN_OR_RETURN(geodb::Value item, DecodeValue(dec));
        items.push_back(std::move(item));
      }
      return geodb::Value::MakeList(std::move(items));
    }
    case geodb::ValueKind::kRef: {
      AGIS_ASSIGN_OR_RETURN(uint64_t id, dec->U64("ref id"));
      AGIS_ASSIGN_OR_RETURN(std::string cls, dec->Str("ref class"));
      return geodb::Value::Ref(static_cast<geodb::ObjectId>(id),
                               std::move(cls));
    }
  }
  return dec->Error(agis::StrCat("unknown value kind ", kind));
}

// ---- Object record ---------------------------------------------------------

void EncodeObjectRecord(const geodb::ObjectInstance& obj, Encoder* enc) {
  enc->U64(obj.id());
  enc->U32(static_cast<uint32_t>(obj.values().size()));
  for (const auto& [attr, value] : obj.values()) {
    enc->Str(attr);
    EncodeValue(value, enc);
  }
}

agis::Result<geodb::ObjectInstance> DecodeObjectRecord(
    Decoder* dec, const std::string& class_name) {
  AGIS_ASSIGN_OR_RETURN(uint64_t id, dec->U64("object id"));
  AGIS_ASSIGN_OR_RETURN(uint32_t nattrs, dec->Count("attribute count", 5));
  geodb::ObjectInstance obj(static_cast<geodb::ObjectId>(id), class_name);
  obj.ReserveValues(nattrs);
  for (uint32_t i = 0; i < nattrs; ++i) {
    AGIS_ASSIGN_OR_RETURN(std::string attr, dec->Str("attribute name"));
    AGIS_ASSIGN_OR_RETURN(geodb::Value value, DecodeValue(dec));
    // Records are written in values() order (ascending), so this is
    // an O(1) append; out-of-order names still land correctly.
    obj.SetOrdered(std::move(attr), std::move(value));
  }
  return obj;
}

void EncodeObjectRecordTabled(
    const geodb::ObjectInstance& obj,
    const std::unordered_map<std::string_view, uint32_t>& name_ids,
    Encoder* enc) {
  const bool narrow = name_ids.size() <= 256;
  enc->U64(obj.id());
  enc->U32(static_cast<uint32_t>(obj.values().size()));
  for (const auto& [attr, value] : obj.values()) {
    const uint32_t idx = name_ids.at(attr);
    if (narrow) {
      enc->U8(static_cast<uint8_t>(idx));
    } else {
      enc->U32(idx);
    }
    EncodeValue(value, enc);
  }
}

agis::Result<geodb::ObjectInstance> DecodeObjectRecordTabled(
    Decoder* dec, const std::string& class_name,
    const std::vector<std::string>& names) {
  const bool narrow = names.size() <= 256;
  AGIS_ASSIGN_OR_RETURN(uint64_t id, dec->U64("object id"));
  AGIS_ASSIGN_OR_RETURN(uint32_t nattrs, dec->Count("attribute count", 2));
  geodb::ObjectInstance obj(static_cast<geodb::ObjectId>(id), class_name);
  obj.ReserveValues(nattrs);
  for (uint32_t i = 0; i < nattrs; ++i) {
    uint32_t idx;
    if (narrow) {
      AGIS_ASSIGN_OR_RETURN(uint8_t b, dec->U8("attribute name index"));
      idx = b;
    } else {
      AGIS_ASSIGN_OR_RETURN(idx, dec->U32("attribute name index"));
    }
    if (idx >= names.size()) {
      return dec->Error(agis::StrCat("attribute name index ", idx,
                                     " out of range (table has ",
                                     names.size(), ")"));
    }
    AGIS_ASSIGN_OR_RETURN(geodb::Value value, DecodeValue(dec));
    obj.SetOrdered(names[idx], std::move(value));
  }
  return obj;
}

// ---- Schema ----------------------------------------------------------------

void EncodeAttributeDef(const geodb::AttributeDef& attr, Encoder* enc) {
  enc->Str(attr.name);
  enc->U8(static_cast<uint8_t>(attr.type));
  enc->Str(attr.doc);
  enc->U8(attr.required ? 1 : 0);
  enc->Str(attr.ref_class);
  enc->U8(attr.list_element.has_value() ? 1 : 0);
  if (attr.list_element.has_value()) {
    enc->U8(static_cast<uint8_t>(*attr.list_element));
  }
  enc->U32(static_cast<uint32_t>(attr.tuple_fields.size()));
  for (const geodb::AttributeDef& field : attr.tuple_fields) {
    EncodeAttributeDef(field, enc);
  }
}

namespace {

agis::Result<geodb::AttrType> CheckAttrType(uint8_t raw, Decoder* dec) {
  if (raw > static_cast<uint8_t>(geodb::AttrType::kList)) {
    return dec->Error(agis::StrCat("unknown attribute type ", raw));
  }
  return static_cast<geodb::AttrType>(raw);
}

}  // namespace

agis::Result<geodb::AttributeDef> DecodeAttributeDef(Decoder* dec) {
  geodb::AttributeDef attr;
  AGIS_ASSIGN_OR_RETURN(attr.name, dec->Str("attribute name"));
  AGIS_ASSIGN_OR_RETURN(uint8_t type, dec->U8("attribute type"));
  AGIS_ASSIGN_OR_RETURN(attr.type, CheckAttrType(type, dec));
  AGIS_ASSIGN_OR_RETURN(attr.doc, dec->Str("attribute doc"));
  AGIS_ASSIGN_OR_RETURN(uint8_t required, dec->U8("required flag"));
  attr.required = required != 0;
  AGIS_ASSIGN_OR_RETURN(attr.ref_class, dec->Str("ref class"));
  AGIS_ASSIGN_OR_RETURN(uint8_t has_elem, dec->U8("list element flag"));
  if (has_elem != 0) {
    AGIS_ASSIGN_OR_RETURN(uint8_t elem, dec->U8("list element type"));
    AGIS_ASSIGN_OR_RETURN(geodb::AttrType elem_type, CheckAttrType(elem, dec));
    attr.list_element = elem_type;
  }
  AGIS_ASSIGN_OR_RETURN(uint32_t nfields, dec->Count("tuple field count", 8));
  attr.tuple_fields.reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    AGIS_ASSIGN_OR_RETURN(geodb::AttributeDef field, DecodeAttributeDef(dec));
    attr.tuple_fields.push_back(std::move(field));
  }
  return attr;
}

void EncodeClassDef(const geodb::ClassDef& cls, Encoder* enc) {
  enc->Str(cls.name());
  enc->Str(cls.parent());
  enc->Str(cls.doc());
  enc->U32(static_cast<uint32_t>(cls.attributes().size()));
  for (const geodb::AttributeDef& attr : cls.attributes()) {
    EncodeAttributeDef(attr, enc);
  }
}

agis::Result<geodb::ClassDef> DecodeClassDef(Decoder* dec) {
  AGIS_ASSIGN_OR_RETURN(std::string name, dec->Str("class name"));
  AGIS_ASSIGN_OR_RETURN(std::string parent, dec->Str("class parent"));
  AGIS_ASSIGN_OR_RETURN(std::string doc, dec->Str("class doc"));
  geodb::ClassDef cls(std::move(name), std::move(doc));
  if (!parent.empty()) cls.set_parent(std::move(parent));
  AGIS_ASSIGN_OR_RETURN(uint32_t nattrs, dec->Count("attribute count", 8));
  for (uint32_t i = 0; i < nattrs; ++i) {
    AGIS_ASSIGN_OR_RETURN(geodb::AttributeDef attr, DecodeAttributeDef(dec));
    AGIS_RETURN_IF_ERROR(cls.AddAttribute(std::move(attr)));
  }
  return cls;
}

}  // namespace agis::storage
