#include "storage/wal.h"

#include "base/strutil.h"
#include "storage/format.h"

namespace agis::storage {

namespace {

/// 8-byte magic; the trailing digit is the format version.
constexpr std::string_view kWalMagic = "AGISWAL1";
constexpr std::string_view kWalMagicPrefix = "AGISWAL";

void EncodeRecordPayload(const WalRecord& record, Encoder* enc) {
  enc->U8(static_cast<uint8_t>(record.kind));
  switch (record.kind) {
    case WalRecordKind::kInsert:
      enc->Str(record.object.class_name());
      EncodeObjectRecord(record.object, enc);
      break;
    case WalRecordKind::kUpdate:
      enc->U64(record.id);
      enc->Str(record.attribute);
      EncodeValue(record.value, enc);
      break;
    case WalRecordKind::kDelete:
      enc->U64(record.id);
      break;
    case WalRecordKind::kDirective:
      enc->Str(record.directive_name);
      enc->Str(record.directive_source);
      break;
    case WalRecordKind::kRegisterClass:
      EncodeClassDef(record.class_def, enc);
      break;
  }
}

agis::Result<WalRecord> DecodeRecordPayload(std::string_view payload) {
  Decoder dec(payload);
  WalRecord record;
  AGIS_ASSIGN_OR_RETURN(uint8_t kind, dec.U8("record kind"));
  switch (static_cast<WalRecordKind>(kind)) {
    case WalRecordKind::kInsert: {
      record.kind = WalRecordKind::kInsert;
      AGIS_ASSIGN_OR_RETURN(std::string cls, dec.Str("class name"));
      AGIS_ASSIGN_OR_RETURN(record.object, DecodeObjectRecord(&dec, cls));
      break;
    }
    case WalRecordKind::kUpdate: {
      record.kind = WalRecordKind::kUpdate;
      AGIS_ASSIGN_OR_RETURN(uint64_t id, dec.U64("object id"));
      record.id = static_cast<geodb::ObjectId>(id);
      AGIS_ASSIGN_OR_RETURN(record.attribute, dec.Str("attribute"));
      AGIS_ASSIGN_OR_RETURN(record.value, DecodeValue(&dec));
      break;
    }
    case WalRecordKind::kDelete: {
      record.kind = WalRecordKind::kDelete;
      AGIS_ASSIGN_OR_RETURN(uint64_t id, dec.U64("object id"));
      record.id = static_cast<geodb::ObjectId>(id);
      break;
    }
    case WalRecordKind::kDirective: {
      record.kind = WalRecordKind::kDirective;
      AGIS_ASSIGN_OR_RETURN(record.directive_name, dec.Str("directive name"));
      AGIS_ASSIGN_OR_RETURN(record.directive_source,
                            dec.Str("directive source"));
      break;
    }
    case WalRecordKind::kRegisterClass: {
      record.kind = WalRecordKind::kRegisterClass;
      AGIS_ASSIGN_OR_RETURN(record.class_def, DecodeClassDef(&dec));
      break;
    }
    default:
      return dec.Error(agis::StrCat("unknown WAL record kind ", kind));
  }
  if (!dec.AtEnd()) {
    return dec.Error("trailing bytes after WAL record");
  }
  return record;
}

}  // namespace

agis::Result<WalWriter> WalWriter::Open(const std::string& path,
                                        WalWriterOptions options) {
  WalWriter writer;
  writer.options_ = options;
  AGIS_ASSIGN_OR_RETURN(
      writer.file_,
      AppendFile::Open(path, /*truncate=*/true, options.fault_plan));
  AGIS_RETURN_IF_ERROR(writer.file_.Append(kWalMagic));
  // The header must be on disk before any record can be considered
  // durable; a header-less file would make the whole log unreadable.
  AGIS_RETURN_IF_ERROR(writer.file_.Sync());
  return writer;
}

agis::Status WalWriter::Append(const WalRecord& record) {
  Encoder payload_enc;
  EncodeRecordPayload(record, &payload_enc);
  const std::string payload = payload_enc.Take();

  Encoder frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  frame.Raw(payload);

  std::lock_guard lock(*mutex_);
  pending_.append(frame.buffer());
  ++records_appended_;
  bytes_appended_ += frame.size();
  ++records_since_sync_;
  if (options_.sync_every_records != 0 &&
      records_since_sync_ >= options_.sync_every_records) {
    records_since_sync_ = 0;
    AGIS_RETURN_IF_ERROR(file_.Append(pending_));
    pending_.clear();
    AGIS_RETURN_IF_ERROR(file_.Sync());
    ++syncs_;
    return agis::Status::OK();
  }
  if (pending_.size() >= options_.group_commit_bytes) {
    AGIS_RETURN_IF_ERROR(file_.Append(pending_));
    pending_.clear();
    return file_.Flush();
  }
  return agis::Status::OK();
}

agis::Status WalWriter::Flush() {
  std::lock_guard lock(*mutex_);
  if (!pending_.empty()) {
    AGIS_RETURN_IF_ERROR(file_.Append(pending_));
    pending_.clear();
  }
  return file_.Flush();
}

agis::Status WalWriter::Sync() {
  std::lock_guard lock(*mutex_);
  if (!pending_.empty()) {
    AGIS_RETURN_IF_ERROR(file_.Append(pending_));
    pending_.clear();
  }
  AGIS_RETURN_IF_ERROR(file_.Sync());
  ++syncs_;
  records_since_sync_ = 0;
  return agis::Status::OK();
}

agis::Status WalWriter::Close() {
  std::lock_guard lock(*mutex_);
  if (!file_.is_open()) return agis::Status::OK();
  if (!pending_.empty()) {
    AGIS_RETURN_IF_ERROR(file_.Append(pending_));
    pending_.clear();
  }
  AGIS_RETURN_IF_ERROR(file_.Sync());
  ++syncs_;
  return file_.Close();
}

agis::Result<WalReadResult> ReadWalFile(const std::string& path) {
  AGIS_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  if (bytes.size() < kWalMagic.size() ||
      std::string_view(bytes).substr(0, kWalMagicPrefix.size()) !=
          kWalMagicPrefix) {
    return agis::Status::ParseError(
        agis::StrCat("'", path, "' is not an ActiveGIS WAL file"));
  }
  if (std::string_view(bytes).substr(0, kWalMagic.size()) != kWalMagic) {
    return agis::Status::ParseError(agis::StrCat(
        "'", path, "' has unsupported WAL version '",
        bytes[kWalMagicPrefix.size()], "' (expected '1')"));
  }

  WalReadResult result;
  std::string_view rest = std::string_view(bytes).substr(kWalMagic.size());
  uint64_t consumed = kWalMagic.size();
  while (!rest.empty()) {
    // A frame is [u32 len][u32 crc][payload]. Anything that does not
    // parse cleanly from here to the end of the file is a torn tail:
    // frames are only ever appended, so the first bad frame ends the
    // intact prefix.
    if (rest.size() < 8) {
      result.torn_tail = true;
      break;
    }
    Decoder frame(rest);
    const uint32_t len = frame.U32("frame length").value();
    const uint32_t crc = frame.U32("frame crc").value();
    if (frame.remaining() < len) {
      result.torn_tail = true;
      break;
    }
    const std::string_view payload = frame.Raw(len, "frame payload").value();
    if (Crc32(payload) != crc) {
      result.torn_tail = true;
      break;
    }
    auto record = DecodeRecordPayload(payload);
    if (!record.ok()) {
      // CRC passed but the payload is not decodable: structural
      // corruption, not a torn append. Surface it.
      return record.status().WithContext(
          agis::StrCat("WAL '", path, "' record ", result.records.size()));
    }
    result.records.push_back(std::move(record).value());
    rest.remove_prefix(8 + len);
    consumed += 8 + len;
  }
  result.bytes_consumed = consumed;
  return result;
}

}  // namespace agis::storage
