#include "storage/changefeed.h"

#include <algorithm>

#include "base/strutil.h"

namespace agis::storage {

const char* ChangeKindName(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kInsert:
      return "insert";
    case ChangeKind::kUpdate:
      return "update";
    case ChangeKind::kDelete:
      return "delete";
    case ChangeKind::kSchema:
      return "schema";
  }
  return "unknown";
}

std::string ChangeRecord::ToString() const {
  std::string out = agis::StrCat("#", seq, " ", ChangeKindName(kind), " ",
                                 class_name, "/", object_id, " @epoch ",
                                 write_epoch);
  if (!changed_attributes.empty()) {
    out += " [";
    for (size_t i = 0; i < changed_attributes.size(); ++i) {
      if (i > 0) out += ",";
      out += changed_attributes[i];
    }
    out += "]";
  }
  return out;
}

Changefeed::Changefeed(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void Changefeed::OnAfterEvent(const geodb::DbEvent& event) {
  ChangeRecord record;
  switch (event.kind) {
    case geodb::DbEventKind::kAfterInsert:
      record.kind = ChangeKind::kInsert;
      break;
    case geodb::DbEventKind::kAfterUpdate:
      record.kind = ChangeKind::kUpdate;
      break;
    case geodb::DbEventKind::kAfterDelete:
      record.kind = ChangeKind::kDelete;
      break;
    case geodb::DbEventKind::kSchemaChange:
      record.kind = ChangeKind::kSchema;
      break;
    default:
      return;  // Read events carry no delta.
  }
  record.class_name = event.class_name;
  record.object_id = event.object_id;
  record.write_epoch = event.write_epoch;
  record.changed_attributes = event.changed_attributes;
  Publish(std::move(record));
}

uint64_t Changefeed::Publish(ChangeRecord record) {
  std::lock_guard lock(mutex_);
  record.seq = next_seq_++;
  const uint64_t seq = record.seq;
  ring_.push_back(std::move(record));
  // Bounded ring: the writer never waits. A subscriber still cursored
  // before the popped record finds out at its next Poll (resync).
  if (ring_.size() > capacity_) {
    ring_.pop_front();
    ++stats_.dropped;
  }
  ++stats_.published;
  return seq;
}

Changefeed::SubscriberId Changefeed::Subscribe() {
  std::lock_guard lock(mutex_);
  const SubscriberId id = next_subscriber_++;
  subscribers_[id].acked = next_seq_ - 1;
  return id;
}

Changefeed::SubscriberId Changefeed::SubscribeFrom(uint64_t seq) {
  std::lock_guard lock(mutex_);
  const SubscriberId id = next_subscriber_++;
  subscribers_[id].acked = std::min(seq, next_seq_ - 1);
  return id;
}

bool Changefeed::Unsubscribe(SubscriberId id) {
  std::lock_guard lock(mutex_);
  return subscribers_.erase(id) != 0;
}

ChangefeedPoll Changefeed::Poll(SubscriberId id, size_t max_records) {
  ChangefeedPoll out;
  std::lock_guard lock(mutex_);
  ++stats_.polls;
  const auto it = subscribers_.find(id);
  if (it == subscribers_.end()) return out;  // Unknown: empty poll.
  Subscriber& sub = it->second;
  const uint64_t head = next_seq_ - 1;
  out.next_seq = sub.acked;
  if (sub.acked >= head) return out;  // Caught up.
  const uint64_t oldest = ring_.empty() ? next_seq_ : ring_.front().seq;
  if (sub.acked + 1 < oldest) {
    // The records this subscriber still needed fell off the tail:
    // drop to resync. The cursor jumps to the head so the rebuild the
    // consumer now performs is not immediately re-polled as deltas.
    sub.acked = head;
    out.resync = true;
    out.next_seq = head;
    ++stats_.resyncs;
    return out;
  }
  // Ring seqs are contiguous: the subscriber's next record sits at a
  // computable offset.
  const size_t begin = static_cast<size_t>(sub.acked + 1 - oldest);
  size_t count = ring_.size() - begin;
  if (max_records != 0) count = std::min(count, max_records);
  out.records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.records.push_back(ring_[begin + i]);
  }
  if (!out.records.empty()) out.next_seq = out.records.back().seq;
  return out;
}

agis::Status Changefeed::Ack(SubscriberId id, uint64_t seq) {
  std::lock_guard lock(mutex_);
  const auto it = subscribers_.find(id);
  if (it == subscribers_.end()) {
    return agis::Status::NotFound(agis::StrCat("subscriber ", id));
  }
  it->second.acked = std::min(std::max(it->second.acked, seq), next_seq_ - 1);
  return agis::Status::OK();
}

uint64_t Changefeed::Lag(SubscriberId id) const {
  std::lock_guard lock(mutex_);
  const auto it = subscribers_.find(id);
  if (it == subscribers_.end()) return 0;
  const uint64_t head = next_seq_ - 1;
  return head > it->second.acked ? head - it->second.acked : 0;
}

uint64_t Changefeed::head_seq() const {
  std::lock_guard lock(mutex_);
  return next_seq_ - 1;
}

ChangefeedStats Changefeed::stats() const {
  std::lock_guard lock(mutex_);
  ChangefeedStats out = stats_;
  out.subscribers = subscribers_.size();
  out.head_seq = next_seq_ - 1;
  out.tail_seq = ring_.empty() ? 0 : ring_.front().seq;
  return out;
}

}  // namespace agis::storage
