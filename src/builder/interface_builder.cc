#include "builder/interface_builder.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "base/strutil.h"
#include "carto/ascii_renderer.h"
#include "carto/canvas.h"
#include "carto/svg_renderer.h"
#include "geom/algorithms.h"
#include "uilib/widget_props.h"

namespace agis::builder {

namespace {

using uilib::InterfaceObject;
using uilib::MakeWidget;
using uilib::WidgetKind;

/// Window "context" property — the explanation mode reports it
/// verbatim ("user=juliano category= application=pole_manager ...").
std::string FormatContext(const UserContext& ctx) {
  std::string out = agis::StrCat("user=", ctx.user, " category=", ctx.category,
                                 " application=", ctx.application);
  for (const auto& [key, value] : ctx.extras) {
    out += agis::StrCat(" ", key, "=", value);
  }
  return out;
}

bool IsSystemClass(const std::string& name) {
  return name.rfind("__", 0) == 0;
}

bool IsMethodCall(const std::string& source) {
  const size_t paren = source.find('(');
  return paren != std::string::npos && !source.empty() &&
         source.back() == ')';
}

/// Resolves a dotted `from` path ("pole.material") against a tuple
/// value whose fields follow the workload naming convention
/// ("pole_material"): accepts an exact field name, prefix_field, or
/// any field ending in "_field" (mirrors custlang's analyzer).
std::string ResolveTupleSource(const geodb::Value& value,
                               const std::string& source) {
  if (value.kind() != geodb::ValueKind::kTuple) {
    return value.ToDisplayString();
  }
  const size_t dot = source.find('.');
  const std::string prefix = source.substr(0, dot);
  const std::string field = source.substr(dot + 1);
  const std::string underscored = agis::StrCat(prefix, "_", field);
  const std::string suffix = agis::StrCat("_", field);
  for (const auto& [name, field_value] : value.tuple_value()) {
    const bool suffix_match =
        name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
    if (name == field || name == underscored || suffix_match) {
      return field_value.ToDisplayString();
    }
  }
  return "null";
}

}  // namespace

GenericInterfaceBuilder::GenericInterfaceBuilder(
    geodb::GeoDatabase* db, uilib::InterfaceObjectLibrary* library,
    carto::StyleRegistry* styles)
    : db_(db), library_(library), styles_(styles) {}

const geodb::ObjectInstance* GenericInterfaceBuilder::LookupObject(
    const geodb::Snapshot& view, geodb::ObjectId id) const {
  return db_->FindObjectAt(view, id);
}

const geodb::Snapshot* GenericInterfaceBuilder::PinBuildView(
    const BuildOptions& options, geodb::Snapshot* local) const {
  if (options.snapshot != nullptr && options.snapshot->valid()) {
    return options.snapshot;
  }
  *local = db_->OpenSnapshot();
  return local;
}

std::unique_ptr<InterfaceObject> GenericInterfaceBuilder::NewWindow(
    const std::string& name, const char* window_type,
    const UserContext& ctx) const {
  auto window = MakeWidget(WidgetKind::kWindow, name);
  window->SetProperty(uilib::kPropWindowType, window_type);
  window->SetProperty("context", FormatContext(ctx));
  return window;
}

agis::Result<std::unique_ptr<InterfaceObject>>
GenericInterfaceBuilder::BuildSchemaWindow(
    const active::WindowCustomization* customization, const UserContext& ctx,
    const BuildOptions& options) {
  (void)options;
  const geodb::Schema& schema = db_->schema();
  auto window = NewWindow(agis::StrCat("Schema: ", schema.name()),
                          uilib::kWindowSchema, ctx);
  window->SetProperty(uilib::kPropLabel, schema.name());

  const active::SchemaDisplayMode mode =
      customization == nullptr ? active::SchemaDisplayMode::kDefault
                               : customization->schema_mode;
  window->SetProperty("schema_display", active::SchemaDisplayModeName(mode));
  if (mode == active::SchemaDisplayMode::kNull) {
    // `schema ... display as Null`: the window exists (the dispatcher
    // may auto-open classes) but shows nothing.
    window->SetProperty(uilib::kPropHidden, "true");
    return window;
  }

  if (mode == active::SchemaDisplayMode::kHierarchy) {
    auto* hierarchy =
        window->AddChild(MakeWidget(WidgetKind::kTextField, "hierarchy"));
    hierarchy->SetProperty(uilib::kPropValue, schema.ToString());
  }

  std::vector<std::string> classes;
  for (const std::string& name : schema.ClassNames()) {
    if (!IsSystemClass(name)) classes.push_back(name);
  }
  auto* list = window->AddChild(MakeWidget(WidgetKind::kList, "classes"));
  list->SetProperty(uilib::kPropLabel, "Classes");
  uilib::SetListItems(list, classes);
  return window;
}

agis::Result<std::unique_ptr<InterfaceObject>>
GenericInterfaceBuilder::BuildClassSetWindow(
    const std::string& class_name,
    const active::WindowCustomization* customization, const UserContext& ctx,
    const BuildOptions& options) {
  if (!db_->schema().HasClass(class_name)) {
    return agis::Status::NotFound(
        agis::StrCat("class '", class_name, "' is not in the schema"));
  }
  auto window = NewWindow(agis::StrCat("Class set: ", class_name),
                          uilib::kWindowClassSet, ctx);
  window->SetProperty(uilib::kPropClass, class_name);

  // Control area: customized prototype or the default per-class widget.
  const std::string control_proto =
      (customization != nullptr && !customization->control_widget.empty())
          ? customization->control_widget
          : "class_control";
  AGIS_ASSIGN_OR_RETURN(std::unique_ptr<InterfaceObject> control,
                        library_->Instantiate(control_proto));
  control->set_name(agis::StrCat("control_", class_name));
  control->SetProperty("prototype", control_proto);
  control->SetProperty(uilib::kPropClass, class_name);
  window->AddChild(std::move(control));

  AGIS_RETURN_IF_ERROR(AddPresentationArea(window.get(), class_name,
                                           customization, ctx, options));
  return window;
}

agis::Status GenericInterfaceBuilder::AddPresentationArea(
    InterfaceObject* window, const std::string& class_name,
    const active::WindowCustomization* customization, const UserContext& ctx,
    const BuildOptions& options) {
  AGIS_ASSIGN_OR_RETURN(geodb::ClassResult result,
                        db_->GetClass(class_name, options.query, ctx));

  const std::string style_label =
      (customization != nullptr && !customization->presentation_format.empty())
          ? customization->presentation_format
          : "default";
  const std::string feature_style =
      style_label == "default" ? "defaultFormat" : style_label;

  const std::string geometry_attr = db_->GeometryAttributeOf(class_name);
  std::vector<carto::StyledFeature> features;
  std::vector<uint64_t> feature_epochs;
  if (!geometry_attr.empty()) {
    geodb::Snapshot local;
    const geodb::Snapshot* view = PinBuildView(options, &local);
    features.reserve(result.ids.size());
    if (options.generalize) feature_epochs.reserve(result.ids.size());
    for (geodb::ObjectId id : result.ids) {
      const geodb::ObjectInstance* obj = LookupObject(*view, id);
      if (obj == nullptr) continue;
      const geodb::Value& value = obj->Get(geometry_attr);
      if (value.is_null()) continue;
      features.push_back(
          carto::StyledFeature{id, value.geometry_value(), feature_style, ""});
      if (options.generalize) {
        // Version epoch of the geometry just read: the simplify
        // cache's validity stamp.
        feature_epochs.push_back(db_->VersionEpochAt(*view, id));
      }
    }
  }

  carto::MapCanvas canvas(carto::MapCanvas::FitBounds(features),
                          options.map_width, options.map_height);
  size_t points_removed = 0;
  if (options.generalize) {
    // Display-scale generalization: nothing smaller than one raster
    // cell survives projection, so simplify to that tolerance.
    const double tolerance =
        std::max(canvas.UnitsPerCellX(), canvas.UnitsPerCellY());
    for (size_t f = 0; f < features.size(); ++f) {
      carto::StyledFeature& feature = features[f];
      const size_t before = feature.geometry.NumPoints();
      feature.geometry = SimplifyCached(feature.id, feature_epochs[f],
                                        feature.geometry, tolerance);
      points_removed += before - feature.geometry.NumPoints();
    }
  }
  const size_t feature_count = features.size();
  for (carto::StyledFeature& feature : features) {
    canvas.AddFeature(std::move(feature));
  }

  auto* area =
      window->AddChild(MakeWidget(WidgetKind::kDrawingArea, "presentation"));
  area->SetProperty(uilib::kPropStyle, style_label);
  area->SetProperty(uilib::kPropFeatureCount, agis::StrCat(feature_count));
  area->SetProperty("generalized_points_removed",
                    agis::StrCat(points_removed));
  // Build parameters an incremental refresher needs to reconstruct
  // this area's projection without re-deriving the build options.
  area->SetProperty("map_width", agis::StrCat(options.map_width));
  area->SetProperty("map_height", agis::StrCat(options.map_height));
  area->SetProperty("generalized", options.generalize ? "true" : "false");
  std::string ids_csv;
  for (geodb::ObjectId id : result.ids) {
    if (!ids_csv.empty()) ids_csv += ',';
    ids_csv += agis::StrCat(id);
  }
  area->SetProperty("ids", ids_csv);
  area->SetProperty(uilib::kPropContent,
                    carto::AsciiRenderer(styles_).RenderFramed(canvas));
  area->SetProperty(uilib::kPropSvg, carto::SvgRenderer(styles_).Render(canvas));
  return agis::Status::OK();
}

agis::Result<std::string> GenericInterfaceBuilder::ComposeSources(
    const geodb::ObjectInstance& obj,
    const active::AttributeCustomization& cust,
    const std::string& separator) const {
  if (cust.sources.empty()) {
    return obj.Get(cust.attribute).ToDisplayString();
  }
  std::string out;
  for (const std::string& source : cust.sources) {
    std::string part;
    if (IsMethodCall(source)) {
      const std::string method =
          agis::Trim(source.substr(0, source.find('(')));
      AGIS_ASSIGN_OR_RETURN(geodb::Value value,
                            db_->CallMethod(obj.id(), method));
      part = value.ToDisplayString();
    } else if (source.find('.') != std::string::npos) {
      part = ResolveTupleSource(obj.Get(cust.attribute), source);
    } else {
      part = obj.Get(source).ToDisplayString();
    }
    if (!out.empty()) out += separator;
    out += part;
  }
  return out;
}

agis::Result<std::unique_ptr<InterfaceObject>>
GenericInterfaceBuilder::BuildInstanceWindow(
    geodb::ObjectId id, const active::WindowCustomization* customization,
    const UserContext& ctx, const BuildOptions& options) {
  geodb::Snapshot local;
  const geodb::Snapshot* view = PinBuildView(options, &local);
  const geodb::ObjectInstance* obj = LookupObject(*view, id);
  if (obj == nullptr) {
    return agis::Status::NotFound(agis::StrCat("object ", id));
  }
  const std::string& class_name = obj->class_name();
  AGIS_ASSIGN_OR_RETURN(std::vector<geodb::AttributeDef> attrs,
                        db_->schema().AllAttributesOf(class_name));

  auto window = NewWindow(agis::StrCat("Instance: ", class_name, "#", id),
                          uilib::kWindowInstance, ctx);
  window->SetProperty(uilib::kPropClass, class_name);
  window->SetProperty(uilib::kPropObject, agis::StrCat(id));

  auto* rows = window->AddChild(MakeWidget(WidgetKind::kPanel, "attributes"));
  for (const geodb::AttributeDef& attr : attrs) {
    const active::AttributeCustomization* cust =
        customization == nullptr ? nullptr
                                 : customization->FindAttribute(attr.name);
    if (cust != nullptr && cust->hidden) continue;  // `display as Null`.

    if (cust != nullptr && !cust->widget.empty()) {
      AGIS_ASSIGN_OR_RETURN(std::unique_ptr<InterfaceObject> row,
                            library_->Instantiate(cust->widget));
      row->set_name(agis::StrCat("attr_", attr.name));
      row->SetProperty("prototype", cust->widget);
      row->SetProperty(uilib::kPropLabel, attr.name);
      if (!cust->callback.empty()) {
        row->SetProperty("callback", cust->callback);
      }
      const std::string& proto_separator = row->GetProperty("separator");
      AGIS_ASSIGN_OR_RETURN(
          const std::string value,
          ComposeSources(*obj, *cust,
                         proto_separator.empty() ? ", " : proto_separator));
      InterfaceObject* value_field = row->CanContainChildren()
                                         ? row->FindDescendant("attr_value")
                                         : nullptr;
      (value_field != nullptr ? value_field : row.get())
          ->SetProperty(uilib::kPropValue, value);
      rows->AddChild(std::move(row));
      continue;
    }

    AGIS_ASSIGN_OR_RETURN(std::unique_ptr<InterfaceObject> row,
                          library_->Instantiate("attribute_row"));
    row->set_name(agis::StrCat("attr_", attr.name));
    row->SetProperty(uilib::kPropLabel, attr.name);
    if (InterfaceObject* label = row->FindChild("attr_label")) {
      label->SetProperty(uilib::kPropValue, attr.name);
    }
    if (InterfaceObject* value_field = row->FindChild("attr_value")) {
      value_field->SetProperty(uilib::kPropValue,
                               obj->Get(attr.name).ToDisplayString());
    }
    rows->AddChild(std::move(row));
  }
  return window;
}

void GenericInterfaceBuilder::set_simplify_cache_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(simplify_mutex_);
  simplify_capacity_ = capacity;
  while (simplify_cache_.size() > simplify_capacity_) {
    simplify_cache_.erase(simplify_lru_.back());
    simplify_lru_.pop_back();
    ++simplify_stats_.evictions;
  }
}

size_t GenericInterfaceBuilder::simplify_cache_capacity() const {
  std::lock_guard<std::mutex> lock(simplify_mutex_);
  return simplify_capacity_;
}

size_t GenericInterfaceBuilder::simplify_cache_size() const {
  std::lock_guard<std::mutex> lock(simplify_mutex_);
  return simplify_cache_.size();
}

SimplifyCacheStats GenericInterfaceBuilder::simplify_cache_stats() const {
  std::lock_guard<std::mutex> lock(simplify_mutex_);
  return simplify_stats_;
}

geom::Geometry GenericInterfaceBuilder::SimplifyCached(
    geodb::ObjectId id, uint64_t epoch, const geom::Geometry& geometry,
    double tolerance) {
  if (!(tolerance > 0)) return geometry;
  // Quantize down to the bucket's power-of-two representative: every
  // tolerance in [2^b, 2^(b+1)) simplifies at exactly 2^b, so nearby
  // zoom levels share entries and the cached result never drops more
  // vertices than the caller's tolerance allows.
  const int bucket = std::ilogb(tolerance);
  const double bucket_tolerance = std::ldexp(1.0, bucket);
  const std::pair<geodb::ObjectId, int> key{id, bucket};
  bool cacheable = epoch != 0;
  if (cacheable) {
    std::lock_guard<std::mutex> lock(simplify_mutex_);
    if (simplify_capacity_ == 0) {
      cacheable = false;
    } else {
      auto it = simplify_cache_.find(key);
      if (it != simplify_cache_.end()) {
        if (it->second.epoch == epoch) {
          ++simplify_stats_.hits;
          simplify_lru_.splice(simplify_lru_.begin(), simplify_lru_,
                               it->second.lru_it);
          return it->second.geometry;
        }
        // The geometry was rewritten since this entry was computed.
        ++simplify_stats_.invalidated;
        simplify_lru_.erase(it->second.lru_it);
        simplify_cache_.erase(it);
      }
      ++simplify_stats_.misses;
    }
  }
  // Simplify outside the lock — the hot path for concurrent builders.
  // Always simplify at the bucket tolerance, cacheable or not, so
  // output is identical either way.
  geom::Geometry simplified = geom::Simplify(geometry, bucket_tolerance);
  if (cacheable) {
    std::lock_guard<std::mutex> lock(simplify_mutex_);
    auto [it, inserted] = simplify_cache_.try_emplace(key);
    if (inserted) {
      simplify_lru_.push_front(key);
    } else {
      // A concurrent build raced us to the slot; take the newer epoch.
      simplify_lru_.splice(simplify_lru_.begin(), simplify_lru_,
                           it->second.lru_it);
    }
    it->second.epoch = epoch;
    it->second.geometry = simplified;
    it->second.lru_it = simplify_lru_.begin();
    while (simplify_cache_.size() > simplify_capacity_) {
      simplify_cache_.erase(simplify_lru_.back());
      simplify_lru_.pop_back();
      ++simplify_stats_.evictions;
    }
  }
  return simplified;
}

}  // namespace agis::builder
