#ifndef AGIS_BUILDER_INTERFACE_BUILDER_H_
#define AGIS_BUILDER_INTERFACE_BUILDER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "active/customization.h"
#include "base/context.h"
#include "base/status.h"
#include "carto/style.h"
#include "geodb/database.h"
#include "geom/geometry.h"
#include "uilib/library.h"

namespace agis::builder {

/// Counters of the builder's simplified-polyline cache.
struct SimplifyCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Entries dropped because the object's version epoch moved (the
  /// geometry was rewritten since the entry was computed).
  uint64_t invalidated = 0;
};

/// Knobs for one window construction.
struct BuildOptions {
  /// Raster size of the presentation area (text columns/rows for the
  /// ASCII renderer, logical pixels for SVG).
  int map_width = 64;
  int map_height = 20;
  /// Options forwarded to the `Get_Class` primitive feeding the
  /// presentation area (viewport window, predicates, buffer pool use).
  geodb::GetClassOptions query;
  /// Apply display-scale cartographic generalization: simplify
  /// geometries to one raster cell before rendering.
  bool generalize = false;
  /// Borrowed pinned snapshot (must outlive the build call). When set,
  /// every instance the builder reads comes from this snapshot's
  /// version set, so a window rebuild renders one consistent state
  /// even while writers mutate the database; when null, the builder
  /// reads current state (single-threaded sessions).
  const geodb::Snapshot* snapshot = nullptr;
};

/// The generic interface builder of Figure 1: composes the three
/// window levels of the exploratory mode (Schema, Class set, Instance)
/// from (data, presentation) pairs. With a null customization payload
/// it produces the paper's *default* presentation (Figure 4); with a
/// payload selected by the active mechanism it deviates exactly where
/// the payload says (Figure 7), keeping the builder independent of how
/// customizations are stored or selected.
class GenericInterfaceBuilder {
 public:
  /// All pointers are borrowed and must outlive the builder.
  GenericInterfaceBuilder(geodb::GeoDatabase* db,
                          uilib::InterfaceObjectLibrary* library,
                          carto::StyleRegistry* styles);

  /// Level 1: the Schema window — a class catalog (list by default,
  /// textual hierarchy under `display as hierarchy`, suppressed and
  /// marked hidden under `display as Null`). System classes ("__"
  /// prefix) never appear.
  agis::Result<std::unique_ptr<uilib::InterfaceObject>> BuildSchemaWindow(
      const active::WindowCustomization* customization, const UserContext& ctx,
      const BuildOptions& options = BuildOptions());

  /// Level 2: the Class-set window — a control area (library prototype,
  /// default `class_control`) plus a cartographic presentation area
  /// rendering the class extent.
  agis::Result<std::unique_ptr<uilib::InterfaceObject>> BuildClassSetWindow(
      const std::string& class_name,
      const active::WindowCustomization* customization, const UserContext& ctx,
      const BuildOptions& options = BuildOptions());

  /// Level 3: the Instance window — one row per attribute (inherited
  /// ones first), default rows from the `attribute_row` prototype,
  /// customized rows from the payload's widget with composed `from`
  /// sources; `Null` attributes are omitted.
  agis::Result<std::unique_ptr<uilib::InterfaceObject>> BuildInstanceWindow(
      geodb::ObjectId id, const active::WindowCustomization* customization,
      const UserContext& ctx, const BuildOptions& options = BuildOptions());

  /// Maximum number of cached simplified geometries (0 disables the
  /// cache). Shrinking below the current size evicts immediately.
  void set_simplify_cache_capacity(size_t capacity);
  size_t simplify_cache_capacity() const;
  size_t simplify_cache_size() const;
  SimplifyCacheStats simplify_cache_stats() const;

 private:
  /// New top-level window stamped with type/context properties.
  std::unique_ptr<uilib::InterfaceObject> NewWindow(
      const std::string& name, const char* window_type,
      const UserContext& ctx) const;

  /// Builds the map presentation area for `class_name` and adds it to
  /// `window` under the name "presentation".
  agis::Status AddPresentationArea(
      uilib::InterfaceObject* window, const std::string& class_name,
      const active::WindowCustomization* customization, const UserContext& ctx,
      const BuildOptions& options);

  /// Instance lookup against the pinned view a build call reads from
  /// (the caller's BuildOptions::snapshot, or a build-local pin).
  const geodb::ObjectInstance* LookupObject(const geodb::Snapshot& view,
                                            geodb::ObjectId id) const;

  /// The pinned view for one build call: `options.snapshot` when the
  /// caller provided one, otherwise a fresh pin parked in `local`
  /// (which must outlive every pointer read through the view).
  const geodb::Snapshot* PinBuildView(const BuildOptions& options,
                                      geodb::Snapshot* local) const;

  /// Resolves the `from` sources of one customized attribute row into
  /// its display text.
  agis::Result<std::string> ComposeSources(
      const geodb::ObjectInstance& obj,
      const active::AttributeCustomization& cust,
      const std::string& separator) const;

  /// Display-scale generalization with memoization: returns
  /// `geometry` simplified to `tolerance`, served from the cache when
  /// the same object was simplified at the same tolerance bucket and
  /// its version epoch has not moved since. Tolerances are quantized
  /// *down* to a power-of-two bucket representative, so a cached entry
  /// never removes more vertices than the caller asked for (zoom
  /// levels within one octave share entries). `epoch` is the object's
  /// visible version epoch (geodb::GeoDatabase::VersionEpochAt); 0
  /// bypasses the cache.
  geom::Geometry SimplifyCached(geodb::ObjectId id, uint64_t epoch,
                                const geom::Geometry& geometry,
                                double tolerance);

  geodb::GeoDatabase* db_;
  uilib::InterfaceObjectLibrary* library_;
  carto::StyleRegistry* styles_;

  /// (object, tolerance bucket) -> simplified geometry, LRU-bounded,
  /// epoch-validated. Guarded by its own mutex: window construction is
  /// single-threaded, but concurrent builds over one builder are legal.
  struct SimplifyEntry {
    uint64_t epoch = 0;
    geom::Geometry geometry;
    std::list<std::pair<geodb::ObjectId, int>>::iterator lru_it;
  };
  mutable std::mutex simplify_mutex_;
  std::map<std::pair<geodb::ObjectId, int>, SimplifyEntry> simplify_cache_;
  /// Front = most recently used key.
  std::list<std::pair<geodb::ObjectId, int>> simplify_lru_;
  size_t simplify_capacity_ = 4096;
  SimplifyCacheStats simplify_stats_;
};

}  // namespace agis::builder

#endif  // AGIS_BUILDER_INTERFACE_BUILDER_H_
