#include "geom/topology.h"

#include "base/strutil.h"
#include "geom/predicates.h"

namespace agis::geom {

const char* TopoRelationName(TopoRelation r) {
  switch (r) {
    case TopoRelation::kDisjoint:
      return "disjoint";
    case TopoRelation::kTouches:
      return "touches";
    case TopoRelation::kOverlaps:
      return "overlaps";
    case TopoRelation::kCrosses:
      return "crosses";
    case TopoRelation::kContains:
      return "contains";
    case TopoRelation::kInside:
      return "inside";
    case TopoRelation::kEquals:
      return "equals";
    case TopoRelation::kIntersects:
      return "intersects";
  }
  return "unknown";
}

agis::Result<TopoRelation> ParseTopoRelation(const std::string& name) {
  const std::string n = agis::ToLower(agis::Trim(name));
  if (n == "disjoint") return TopoRelation::kDisjoint;
  if (n == "touches" || n == "meets") return TopoRelation::kTouches;
  if (n == "overlaps") return TopoRelation::kOverlaps;
  if (n == "crosses") return TopoRelation::kCrosses;
  if (n == "contains") return TopoRelation::kContains;
  if (n == "inside" || n == "within") return TopoRelation::kInside;
  if (n == "equals" || n == "equal") return TopoRelation::kEquals;
  if (n == "intersects") return TopoRelation::kIntersects;
  return agis::Status::ParseError(
      agis::StrCat("unknown topological relation '", name, "'"));
}

TopoRelation Relate(const Geometry& a, const Geometry& b) {
  if (!Intersects(a, b)) return TopoRelation::kDisjoint;
  if (a == b) return TopoRelation::kEquals;
  if (Contains(a, b)) return TopoRelation::kContains;
  if (Within(a, b)) return TopoRelation::kInside;
  if (Crosses(a, b)) return TopoRelation::kCrosses;
  if (Overlaps(a, b)) return TopoRelation::kOverlaps;
  if (Touches(a, b)) return TopoRelation::kTouches;
  return TopoRelation::kIntersects;
}

bool Satisfies(const Geometry& a, const Geometry& b, TopoRelation r) {
  switch (r) {
    case TopoRelation::kDisjoint:
      return Disjoint(a, b);
    case TopoRelation::kTouches:
      return Touches(a, b);
    case TopoRelation::kOverlaps:
      return Overlaps(a, b);
    case TopoRelation::kCrosses:
      return Crosses(a, b);
    case TopoRelation::kContains:
      return Contains(a, b);
    case TopoRelation::kInside:
      return Within(a, b);
    case TopoRelation::kEquals:
      return a == b;
    case TopoRelation::kIntersects:
      return Intersects(a, b);
  }
  return false;
}

}  // namespace agis::geom
