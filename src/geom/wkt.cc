#include "geom/wkt.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "base/strutil.h"

namespace agis::geom {

namespace {

std::string CoordToString(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

void AppendCoord(std::string* out, const Point& p, int precision) {
  out->append(CoordToString(p.x, precision));
  out->push_back(' ');
  out->append(CoordToString(p.y, precision));
}

void AppendRing(std::string* out, const std::vector<Point>& ring,
                int precision) {
  out->push_back('(');
  for (size_t i = 0; i < ring.size(); ++i) {
    if (i > 0) out->append(", ");
    AppendCoord(out, ring[i], precision);
  }
  out->push_back(')');
}

/// Minimal recursive-descent tokenizer over the WKT input.
class WktScanner {
 public:
  explicit WktScanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  /// Consumes `c` if it is next; returns whether it was consumed.
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  agis::Status Expect(char c) {
    if (!Consume(c)) {
      return agis::Status::ParseError(
          agis::StrCat("expected '", c, "' at offset ", pos_, " in WKT"));
    }
    return agis::Status::OK();
  }

  /// Reads a contiguous alphabetic keyword, upper-cased.
  std::string ReadKeyword() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return agis::ToUpper(text_.substr(start, pos_ - start));
  }

  agis::Result<double> ReadNumber() {
    SkipSpace();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) {
      return agis::Status::ParseError(
          agis::StrCat("expected number at offset ", pos_, " in WKT"));
    }
    pos_ += static_cast<size_t>(end - begin);
    return v;
  }

  agis::Result<Point> ReadCoord() {
    AGIS_ASSIGN_OR_RETURN(double x, ReadNumber());
    AGIS_ASSIGN_OR_RETURN(double y, ReadNumber());
    return Point{x, y};
  }

  /// Parses "(x y, x y, ...)" into a point list.
  agis::Result<std::vector<Point>> ReadCoordList() {
    AGIS_RETURN_IF_ERROR(Expect('('));
    std::vector<Point> pts;
    do {
      AGIS_ASSIGN_OR_RETURN(Point p, ReadCoord());
      pts.push_back(p);
    } while (Consume(','));
    AGIS_RETURN_IF_ERROR(Expect(')'));
    return pts;
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

/// Drops a standard-WKT closing duplicate point from a ring.
std::vector<Point> NormalizeRing(std::vector<Point> ring) {
  if (ring.size() >= 4 && ring.front() == ring.back()) {
    ring.pop_back();
  }
  return ring;
}

}  // namespace

std::string ToWkt(const Geometry& g, int precision) {
  std::string out;
  switch (g.kind()) {
    case GeometryKind::kPoint:
      out = "POINT (";
      AppendCoord(&out, g.point(), precision);
      out.push_back(')');
      break;
    case GeometryKind::kLineString:
      out = "LINESTRING ";
      AppendRing(&out, g.linestring().points, precision);
      break;
    case GeometryKind::kPolygon: {
      out = "POLYGON (";
      AppendRing(&out, g.polygon().outer, precision);
      for (const auto& hole : g.polygon().holes) {
        out.append(", ");
        AppendRing(&out, hole, precision);
      }
      out.push_back(')');
      break;
    }
    case GeometryKind::kMultiPoint: {
      if (g.multipoint().empty()) {
        out = "MULTIPOINT EMPTY";
        break;
      }
      out = "MULTIPOINT ";
      AppendRing(&out, g.multipoint(), precision);
      break;
    }
  }
  return out;
}

agis::Result<Geometry> ParseWkt(std::string_view text) {
  WktScanner scanner(text);
  const std::string keyword = scanner.ReadKeyword();
  if (keyword == "POINT") {
    AGIS_RETURN_IF_ERROR(scanner.Expect('('));
    AGIS_ASSIGN_OR_RETURN(Point p, scanner.ReadCoord());
    AGIS_RETURN_IF_ERROR(scanner.Expect(')'));
    return Geometry::FromPoint(p);
  }
  if (keyword == "LINESTRING") {
    AGIS_ASSIGN_OR_RETURN(std::vector<Point> pts, scanner.ReadCoordList());
    if (pts.size() < 2) {
      return agis::Status::ParseError("LINESTRING needs at least 2 points");
    }
    return Geometry::FromLineString(LineString{std::move(pts)});
  }
  if (keyword == "POLYGON") {
    AGIS_RETURN_IF_ERROR(scanner.Expect('('));
    Polygon poly;
    AGIS_ASSIGN_OR_RETURN(std::vector<Point> outer, scanner.ReadCoordList());
    poly.outer = NormalizeRing(std::move(outer));
    if (poly.outer.size() < 3) {
      return agis::Status::ParseError("POLYGON outer ring needs >= 3 points");
    }
    while (scanner.Consume(',')) {
      AGIS_ASSIGN_OR_RETURN(std::vector<Point> hole, scanner.ReadCoordList());
      poly.holes.push_back(NormalizeRing(std::move(hole)));
    }
    AGIS_RETURN_IF_ERROR(scanner.Expect(')'));
    return Geometry::FromPolygon(std::move(poly));
  }
  if (keyword == "MULTIPOINT") {
    WktScanner probe = scanner;
    if (probe.ReadKeyword() == "EMPTY") {
      return Geometry::FromMultiPoint({});
    }
    AGIS_ASSIGN_OR_RETURN(std::vector<Point> pts, scanner.ReadCoordList());
    return Geometry::FromMultiPoint(std::move(pts));
  }
  return agis::Status::ParseError(
      agis::StrCat("unknown WKT geometry type '", keyword, "'"));
}

}  // namespace agis::geom
