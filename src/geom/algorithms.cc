#include "geom/algorithms.h"

#include <algorithm>
#include <cmath>

#include "geom/predicates.h"

namespace agis::geom {

namespace {

/// Iterative Douglas–Peucker over an explicit interval stack. The
/// recursive form overflows the call stack on degenerate dense inputs
/// (every vertex over tolerance recurses O(n) deep on a sorted split);
/// the explicit stack is bounded by the same O(n) but on the heap, and
/// skips the subinterval push when the worst deviation is already
/// under tolerance.
void DouglasPeucker(const std::vector<Point>& pts, size_t first, size_t last,
                    double tolerance, std::vector<bool>* keep) {
  if (last <= first + 1) return;
  std::vector<std::pair<size_t, size_t>> stack;
  stack.reserve(32);
  stack.emplace_back(first, last);
  while (!stack.empty()) {
    const auto [lo, hi] = stack.back();
    stack.pop_back();
    if (hi <= lo + 1) continue;
    double worst = -1.0;
    size_t worst_index = lo;
    for (size_t i = lo + 1; i < hi; ++i) {
      const double d = DistancePointSegment(pts[i], pts[lo], pts[hi]);
      if (d > worst) {
        worst = d;
        worst_index = i;
      }
    }
    if (worst > tolerance) {
      (*keep)[worst_index] = true;
      stack.emplace_back(lo, worst_index);
      stack.emplace_back(worst_index, hi);
    }
  }
}

std::vector<Point> SimplifyRing(const std::vector<Point>& ring,
                                double tolerance) {
  if (ring.size() <= 4) return ring;
  // Treat the ring as a closed line anchored at index 0 and at the
  // farthest vertex from it, so simplification cannot collapse it.
  size_t anchor = 1;
  double best = -1.0;
  for (size_t i = 1; i < ring.size(); ++i) {
    const double d = Distance(ring[0], ring[i]);
    if (d > best) {
      best = d;
      anchor = i;
    }
  }
  std::vector<bool> keep(ring.size(), false);
  keep[0] = keep[anchor] = true;
  DouglasPeucker(ring, 0, anchor, tolerance, &keep);
  // Second half: wrap around via an extended index space.
  std::vector<Point> extended = ring;
  extended.push_back(ring[0]);
  std::vector<bool> keep2(extended.size(), false);
  keep2[anchor] = keep2[extended.size() - 1] = true;
  DouglasPeucker(extended, anchor, extended.size() - 1, tolerance, &keep2);
  std::vector<Point> out;
  for (size_t i = 0; i < ring.size(); ++i) {
    if (keep[i] || keep2[i]) out.push_back(ring[i]);
  }
  if (out.size() < 3) return ring;  // Refuse to collapse.
  return out;
}

}  // namespace

LineString SimplifyLine(const LineString& line, double tolerance) {
  const auto& pts = line.points;
  if (pts.size() < 3 || tolerance <= 0) return line;
  std::vector<bool> keep(pts.size(), false);
  keep.front() = keep.back() = true;
  DouglasPeucker(pts, 0, pts.size() - 1, tolerance, &keep);
  LineString out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (keep[i]) out.points.push_back(pts[i]);
  }
  return out;
}

Geometry Simplify(const Geometry& g, double tolerance) {
  switch (g.kind()) {
    case GeometryKind::kLineString:
      return Geometry::FromLineString(SimplifyLine(g.linestring(), tolerance));
    case GeometryKind::kPolygon: {
      Polygon out;
      out.outer = SimplifyRing(g.polygon().outer, tolerance);
      for (const auto& hole : g.polygon().holes) {
        std::vector<Point> simplified = SimplifyRing(hole, tolerance);
        if (simplified.size() >= 3) out.holes.push_back(std::move(simplified));
      }
      return Geometry::FromPolygon(std::move(out));
    }
    default:
      return g;
  }
}

agis::Result<Polygon> ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.y < b.y;
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.size() < 3) {
    return agis::Status::InvalidArgument(
        "convex hull needs at least 3 distinct points");
  }
  const size_t n = points.size();
  std::vector<Point> hull(2 * n);
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {  // Lower hull.
    while (k >= 2 && Cross(hull[k - 2], hull[k - 1], points[i]) <= kEpsilon) {
      --k;
    }
    hull[k++] = points[i];
  }
  const size_t lower = k + 1;
  for (size_t i = n - 1; i-- > 0;) {  // Upper hull.
    while (k >= lower &&
           Cross(hull[k - 2], hull[k - 1], points[i]) <= kEpsilon) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // Last point repeats the first.
  if (hull.size() < 3) {
    return agis::Status::InvalidArgument("points are collinear");
  }
  Polygon out;
  out.outer = std::move(hull);
  return out;
}

Polygon BufferPoint(const Point& center, double radius, int segments) {
  segments = std::max(segments, 3);
  Polygon out;
  for (int i = 0; i < segments; ++i) {
    const double angle =
        2.0 * M_PI * static_cast<double>(i) / static_cast<double>(segments);
    out.outer.push_back({center.x + radius * std::cos(angle),
                         center.y + radius * std::sin(angle)});
  }
  return out;
}

agis::Result<Polygon> BufferLine(const LineString& line, double radius,
                                 int segments) {
  if (line.points.empty()) {
    return agis::Status::InvalidArgument("cannot buffer an empty line");
  }
  // Convex approximation: hull of disc samples at every vertex and at
  // midpoints of every segment. Exact for straight lines; an outer
  // convex bound otherwise.
  std::vector<Point> samples;
  auto add_disc = [&samples, radius, segments](const Point& center) {
    const Polygon disc = BufferPoint(center, radius, std::max(segments, 6));
    samples.insert(samples.end(), disc.outer.begin(), disc.outer.end());
  };
  for (const Point& p : line.points) add_disc(p);
  for (size_t i = 0; i + 1 < line.points.size(); ++i) {
    add_disc({(line.points[i].x + line.points[i + 1].x) / 2.0,
              (line.points[i].y + line.points[i + 1].y) / 2.0});
  }
  return ConvexHull(std::move(samples));
}

}  // namespace agis::geom
