#ifndef AGIS_GEOM_BBOX_H_
#define AGIS_GEOM_BBOX_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geom/point.h"

namespace agis::geom {

/// Axis-aligned bounding box. A default-constructed box is *empty*
/// (inverted bounds); expanding an empty box by a point yields the
/// degenerate box containing exactly that point.
struct BoundingBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  BoundingBox() = default;
  BoundingBox(double min_x_in, double min_y_in, double max_x_in,
              double max_y_in)
      : min_x(min_x_in), min_y(min_y_in), max_x(max_x_in), max_y(max_y_in) {}

  bool empty() const { return min_x > max_x || min_y > max_y; }

  double Width() const { return empty() ? 0.0 : max_x - min_x; }
  double Height() const { return empty() ? 0.0 : max_y - min_y; }
  double Area() const { return Width() * Height(); }
  /// Half-perimeter, the classic R-tree enlargement metric.
  double Margin() const { return Width() + Height(); }

  Point Center() const {
    return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  /// Grows this box to cover `p`.
  void Expand(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  /// Grows this box to cover `other` (no-op when `other` is empty).
  void Expand(const BoundingBox& other) {
    if (other.empty()) return;
    min_x = std::min(min_x, other.min_x);
    min_y = std::min(min_y, other.min_y);
    max_x = std::max(max_x, other.max_x);
    max_y = std::max(max_y, other.max_y);
  }

  /// Returns this box inflated by `d` on every side.
  BoundingBox Inflated(double d) const {
    if (empty()) return *this;
    return BoundingBox(min_x - d, min_y - d, max_x + d, max_y + d);
  }

  bool Contains(const Point& p) const {
    return !empty() && p.x >= min_x - kEpsilon && p.x <= max_x + kEpsilon &&
           p.y >= min_y - kEpsilon && p.y <= max_y + kEpsilon;
  }

  bool Contains(const BoundingBox& o) const {
    return !empty() && !o.empty() && o.min_x >= min_x - kEpsilon &&
           o.max_x <= max_x + kEpsilon && o.min_y >= min_y - kEpsilon &&
           o.max_y <= max_y + kEpsilon;
  }

  bool Intersects(const BoundingBox& o) const {
    return !empty() && !o.empty() && min_x <= o.max_x + kEpsilon &&
           o.min_x <= max_x + kEpsilon && min_y <= o.max_y + kEpsilon &&
           o.min_y <= max_y + kEpsilon;
  }

  /// Union of two boxes.
  static BoundingBox Union(const BoundingBox& a, const BoundingBox& b) {
    BoundingBox out = a;
    out.Expand(b);
    return out;
  }

  /// Area of Union(a ∪ {b}) minus area of a; the R-tree insertion cost.
  static double EnlargementArea(const BoundingBox& a, const BoundingBox& b) {
    return Union(a, b).Area() - a.Area();
  }

  std::string ToString() const;

  friend bool operator==(const BoundingBox& a, const BoundingBox& b) {
    if (a.empty() && b.empty()) return true;
    return NearlyEqual(a.min_x, b.min_x) && NearlyEqual(a.min_y, b.min_y) &&
           NearlyEqual(a.max_x, b.max_x) && NearlyEqual(a.max_y, b.max_y);
  }
};

}  // namespace agis::geom

#endif  // AGIS_GEOM_BBOX_H_
