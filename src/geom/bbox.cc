#include "geom/bbox.h"

#include "base/strutil.h"

namespace agis::geom {

std::string BoundingBox::ToString() const {
  if (empty()) return "BBox(empty)";
  return agis::StrCat("BBox(", agis::DoubleToString(min_x), ", ",
                      agis::DoubleToString(min_y), ", ",
                      agis::DoubleToString(max_x), ", ",
                      agis::DoubleToString(max_y), ")");
}

}  // namespace agis::geom
