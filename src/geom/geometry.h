#ifndef AGIS_GEOM_GEOMETRY_H_
#define AGIS_GEOM_GEOMETRY_H_

#include <string>
#include <variant>
#include <vector>

#include "geom/bbox.h"
#include "geom/point.h"

namespace agis::geom {

/// Open or closed polyline. At least two points for a valid instance;
/// validity is checked by `Validate`, not enforced by construction,
/// because the WKT parser and generators build incrementally.
struct LineString {
  std::vector<Point> points;

  /// Sum of segment lengths.
  double Length() const;
  bool IsClosed() const {
    return points.size() >= 3 && points.front() == points.back();
  }
};

/// Simple polygon with optional holes. The outer ring and every hole
/// are stored *without* the closing duplicate point.
struct Polygon {
  std::vector<Point> outer;
  std::vector<std::vector<Point>> holes;

  /// Area of the outer ring minus hole areas (always >= 0 for valid
  /// polygons regardless of ring orientation).
  double Area() const;
  /// Perimeter of the outer ring only.
  double OuterPerimeter() const;
};

enum class GeometryKind { kPoint, kLineString, kPolygon, kMultiPoint };

/// Closed sum type over the shapes the geographic DBMS stores.
///
/// A `Geometry` is a value type: copyable, comparable for approximate
/// equality, and serializable to/from WKT (see geom/wkt.h).
class Geometry {
 public:
  /// Constructs an empty MULTIPOINT (the "no geometry" value).
  Geometry() : repr_(std::vector<Point>{}) {}

  static Geometry FromPoint(Point p) { return Geometry(Repr(p)); }
  static Geometry FromLineString(LineString ls) {
    return Geometry(Repr(std::move(ls)));
  }
  static Geometry FromPolygon(Polygon poly) {
    return Geometry(Repr(std::move(poly)));
  }
  static Geometry FromMultiPoint(std::vector<Point> pts) {
    return Geometry(Repr(std::move(pts)));
  }

  GeometryKind kind() const {
    switch (repr_.index()) {
      case 0:
        return GeometryKind::kPoint;
      case 1:
        return GeometryKind::kLineString;
      case 2:
        return GeometryKind::kPolygon;
      default:
        return GeometryKind::kMultiPoint;
    }
  }

  bool is_point() const { return kind() == GeometryKind::kPoint; }
  bool is_linestring() const { return kind() == GeometryKind::kLineString; }
  bool is_polygon() const { return kind() == GeometryKind::kPolygon; }
  bool is_multipoint() const { return kind() == GeometryKind::kMultiPoint; }

  /// Accessors abort on kind mismatch (programming error).
  const Point& point() const { return std::get<Point>(repr_); }
  const LineString& linestring() const { return std::get<LineString>(repr_); }
  const Polygon& polygon() const { return std::get<Polygon>(repr_); }
  const std::vector<Point>& multipoint() const {
    return std::get<std::vector<Point>>(repr_);
  }

  /// Minimal axis-aligned box covering this geometry; empty box for an
  /// empty multipoint.
  BoundingBox Bounds() const;

  /// Number of coordinates stored (outer ring + holes for polygons).
  size_t NumPoints() const;

  /// Dimension of the shape: 0 for points, 1 for lines, 2 for polygons.
  int Dimension() const;

  /// Approximate equality: same kind, same coordinates within kEpsilon.
  friend bool operator==(const Geometry& a, const Geometry& b);

  std::string KindName() const;

 private:
  using Repr = std::variant<Point, LineString, Polygon, std::vector<Point>>;
  explicit Geometry(Repr r) : repr_(std::move(r)) {}

  Repr repr_;
};

const char* GeometryKindName(GeometryKind kind);

}  // namespace agis::geom

#endif  // AGIS_GEOM_GEOMETRY_H_
