#include "geom/predicates.h"

#include <algorithm>
#include <cmath>

namespace agis::geom {

namespace {

/// Sign of the cross product with an epsilon dead-zone scaled by the
/// magnitudes involved, so large coordinates don't mis-classify.
int OrientationSign(const Point& a, const Point& b, const Point& c) {
  const double v = Cross(a, b, c);
  const double scale =
      std::fabs(b.x - a.x) + std::fabs(b.y - a.y) + std::fabs(c.x - a.x) +
      std::fabs(c.y - a.y) + 1.0;
  if (std::fabs(v) <= kEpsilon * scale) return 0;
  return v > 0 ? 1 : -1;
}

struct Segment {
  Point a;
  Point b;
};

/// All boundary segments of a geometry (line segments; polygon ring
/// edges including holes). Points contribute none.
std::vector<Segment> BoundarySegments(const Geometry& g) {
  std::vector<Segment> segs;
  auto add_ring = [&segs](const std::vector<Point>& ring, bool closed) {
    if (ring.size() < 2) return;
    for (size_t i = 0; i + 1 < ring.size(); ++i) {
      segs.push_back({ring[i], ring[i + 1]});
    }
    if (closed && ring.size() >= 3) segs.push_back({ring.back(), ring.front()});
  };
  switch (g.kind()) {
    case GeometryKind::kLineString:
      add_ring(g.linestring().points, /*closed=*/false);
      break;
    case GeometryKind::kPolygon:
      add_ring(g.polygon().outer, /*closed=*/true);
      for (const auto& hole : g.polygon().holes) add_ring(hole, true);
      break;
    default:
      break;
  }
  return segs;
}

/// All explicit coordinates of a geometry.
std::vector<Point> AllPoints(const Geometry& g) {
  switch (g.kind()) {
    case GeometryKind::kPoint:
      return {g.point()};
    case GeometryKind::kMultiPoint:
      return g.multipoint();
    case GeometryKind::kLineString:
      return g.linestring().points;
    case GeometryKind::kPolygon: {
      std::vector<Point> pts = g.polygon().outer;
      for (const auto& hole : g.polygon().holes) {
        pts.insert(pts.end(), hole.begin(), hole.end());
      }
      return pts;
    }
  }
  return {};
}

/// True when `p` lies in the *interior* of linestring `ls` (on the
/// line but not at a free endpoint; closed lines have no boundary).
bool PointInLineInterior(const Point& p, const LineString& ls) {
  bool on = false;
  for (size_t i = 0; i + 1 < ls.points.size(); ++i) {
    if (PointOnSegment(p, ls.points[i], ls.points[i + 1])) {
      on = true;
      break;
    }
  }
  if (!on) return false;
  if (ls.IsClosed()) return true;
  return !(p == ls.points.front()) && !(p == ls.points.back());
}

bool PointOnGeometryBoundaryOrLine(const Point& p, const Geometry& g) {
  for (const Segment& s : BoundarySegments(g)) {
    if (PointOnSegment(p, s.a, s.b)) return true;
  }
  return false;
}

/// Parameter of `p` along segment [a, b] in [0, 1]; p must be on it.
double ParamOnSegment(const Point& p, const Point& a, const Point& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  if (len2 <= kEpsilon * kEpsilon) return 0.0;
  return ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
}

/// Collects parameters t in [0,1] where segment [a,b] meets segment
/// [c,d] (for collinear overlap, both overlap endpoints are added).
void CollectIntersectionParams(const Point& a, const Point& b, const Point& c,
                               const Point& d, std::vector<double>* ts) {
  const int o1 = OrientationSign(a, b, c);
  const int o2 = OrientationSign(a, b, d);
  const int o3 = OrientationSign(c, d, a);
  const int o4 = OrientationSign(c, d, b);
  if (o1 == 0 && o2 == 0) {
    // Collinear: project c and d onto [a, b] and clamp.
    for (const Point& p : {c, d}) {
      if (PointOnSegment(p, a, b)) ts->push_back(ParamOnSegment(p, a, b));
    }
    for (const Point& p : {a, b}) {
      if (PointOnSegment(p, c, d)) ts->push_back(ParamOnSegment(p, a, b));
    }
    return;
  }
  if (o1 != o2 && o3 != o4) {
    // Regular intersection (possibly at an endpoint). Solve.
    const double denom =
        (b.x - a.x) * (d.y - c.y) - (b.y - a.y) * (d.x - c.x);
    if (std::fabs(denom) < 1e-300) return;
    const double t =
        ((c.x - a.x) * (d.y - c.y) - (c.y - a.y) * (d.x - c.x)) / denom;
    if (t >= -kEpsilon && t <= 1.0 + kEpsilon) {
      ts->push_back(std::clamp(t, 0.0, 1.0));
    }
    return;
  }
  // Touching cases where an endpoint lies on the other segment.
  if (PointOnSegment(c, a, b)) ts->push_back(ParamOnSegment(c, a, b));
  if (PointOnSegment(d, a, b)) ts->push_back(ParamOnSegment(d, a, b));
  if (PointOnSegment(a, c, d)) ts->push_back(0.0);
  if (PointOnSegment(b, c, d)) ts->push_back(1.0);
}

/// Splits segment [a,b] at every crossing with `poly`'s boundary and
/// classifies the midpoints of the resulting sub-intervals.
/// Returns true if any midpoint satisfies `want`.
bool AnySubsegmentMidpoint(const Point& a, const Point& b, const Polygon& poly,
                           RingSide want) {
  std::vector<double> ts = {0.0, 1.0};
  const Geometry pg = Geometry::FromPolygon(poly);
  for (const Segment& e : BoundarySegments(pg)) {
    CollectIntersectionParams(a, b, e.a, e.b, &ts);
  }
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end(),
                       [](double x, double y) { return NearlyEqual(x, y); }),
           ts.end());
  for (size_t i = 0; i + 1 < ts.size(); ++i) {
    const double tm = (ts[i] + ts[i + 1]) / 2.0;
    const Point mid{a.x + tm * (b.x - a.x), a.y + tm * (b.y - a.y)};
    if (ClassifyPointInPolygon(mid, poly) == want) return true;
  }
  // Degenerate segment (a == b): classify the point itself.
  if (ts.size() < 2 && ClassifyPointInPolygon(a, poly) == want) return true;
  return false;
}

/// A point guaranteed to lie strictly inside `poly` (for valid simple
/// polygons). Uses a horizontal scanline through the bbox middle,
/// retrying at perturbed heights if it grazes vertices.
Point PolygonInteriorPoint(const Polygon& poly) {
  const Geometry pg = Geometry::FromPolygon(poly);
  const BoundingBox box = pg.Bounds();
  for (int attempt = 0; attempt < 16; ++attempt) {
    const double frac = 0.5 + 0.031 * attempt;
    const double y =
        box.min_y + box.Height() * (frac - std::floor(frac));
    std::vector<double> xs;
    bool grazes_vertex = false;
    for (const Segment& e : BoundarySegments(pg)) {
      if (NearlyEqual(e.a.y, y) || NearlyEqual(e.b.y, y)) {
        grazes_vertex = true;
        break;
      }
      if ((e.a.y > y) != (e.b.y > y)) {
        xs.push_back(e.a.x + (y - e.a.y) * (e.b.x - e.a.x) / (e.b.y - e.a.y));
      }
    }
    if (grazes_vertex || xs.size() < 2) continue;
    std::sort(xs.begin(), xs.end());
    const Point candidate{(xs[0] + xs[1]) / 2.0, y};
    if (ClassifyPointInPolygon(candidate, poly) == RingSide::kInside) {
      return candidate;
    }
  }
  // Fallback: centroid of the outer ring (may lie on the boundary for
  // pathological shapes; callers treat this as best-effort).
  Point c{0, 0};
  for (const Point& p : poly.outer) {
    c.x += p.x;
    c.y += p.y;
  }
  const double n = static_cast<double>(poly.outer.size());
  return Point{c.x / n, c.y / n};
}

/// True if any pair of boundary segments properly crosses.
bool AnyProperCrossing(const Geometry& a, const Geometry& b) {
  const auto sa = BoundarySegments(a);
  const auto sb = BoundarySegments(b);
  for (const Segment& x : sa) {
    for (const Segment& y : sb) {
      if (SegmentsProperlyCross(x.a, x.b, y.a, y.b)) return true;
    }
  }
  return false;
}

/// True if some pair of boundary segments is collinear with an overlap
/// of positive length.
bool AnyCollinearOverlap(const Geometry& a, const Geometry& b) {
  const auto sa = BoundarySegments(a);
  const auto sb = BoundarySegments(b);
  for (const Segment& x : sa) {
    for (const Segment& y : sb) {
      if (OrientationSign(x.a, x.b, y.a) != 0 ||
          OrientationSign(x.a, x.b, y.b) != 0) {
        continue;
      }
      std::vector<double> ts;
      CollectIntersectionParams(x.a, x.b, y.a, y.b, &ts);
      if (ts.size() < 2) continue;
      const auto [mn, mx] = std::minmax_element(ts.begin(), ts.end());
      const double seg_len = Distance(x.a, x.b);
      if ((*mx - *mn) * seg_len > 10 * kEpsilon) return true;
    }
  }
  return false;
}

bool GeometryHasArea(const Geometry& g) { return g.is_polygon(); }

/// Point-set membership: is `p` anywhere on/in `g`?
bool GeometryCoversPoint(const Geometry& g, const Point& p) {
  switch (g.kind()) {
    case GeometryKind::kPoint:
      return g.point() == p;
    case GeometryKind::kMultiPoint:
      for (const Point& q : g.multipoint()) {
        if (q == p) return true;
      }
      return false;
    case GeometryKind::kLineString:
      return PointOnGeometryBoundaryOrLine(p, g);
    case GeometryKind::kPolygon:
      return ClassifyPointInPolygon(p, g.polygon()) != RingSide::kOutside;
  }
  return false;
}

/// Is `p` in the interior of `g`?
bool GeometryInteriorCoversPoint(const Geometry& g, const Point& p) {
  switch (g.kind()) {
    case GeometryKind::kPoint:
      return g.point() == p;
    case GeometryKind::kMultiPoint:
      for (const Point& q : g.multipoint()) {
        if (q == p) return true;
      }
      return false;
    case GeometryKind::kLineString:
      return PointInLineInterior(p, g.linestring());
    case GeometryKind::kPolygon:
      return ClassifyPointInPolygon(p, g.polygon()) == RingSide::kInside;
  }
  return false;
}

}  // namespace

bool PointOnSegment(const Point& p, const Point& a, const Point& b) {
  if (OrientationSign(a, b, p) != 0) return false;
  const double minx = std::min(a.x, b.x) - kEpsilon;
  const double maxx = std::max(a.x, b.x) + kEpsilon;
  const double miny = std::min(a.y, b.y) - kEpsilon;
  const double maxy = std::max(a.y, b.y) + kEpsilon;
  return p.x >= minx && p.x <= maxx && p.y >= miny && p.y <= maxy;
}

bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2) {
  const int o1 = OrientationSign(a1, a2, b1);
  const int o2 = OrientationSign(a1, a2, b2);
  const int o3 = OrientationSign(b1, b2, a1);
  const int o4 = OrientationSign(b1, b2, a2);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && PointOnSegment(b1, a1, a2)) return true;
  if (o2 == 0 && PointOnSegment(b2, a1, a2)) return true;
  if (o3 == 0 && PointOnSegment(a1, b1, b2)) return true;
  if (o4 == 0 && PointOnSegment(a2, b1, b2)) return true;
  return false;
}

bool SegmentsProperlyCross(const Point& a1, const Point& a2, const Point& b1,
                           const Point& b2) {
  const int o1 = OrientationSign(a1, a2, b1);
  const int o2 = OrientationSign(a1, a2, b2);
  const int o3 = OrientationSign(b1, b2, a1);
  const int o4 = OrientationSign(b1, b2, a2);
  return o1 * o2 < 0 && o3 * o4 < 0;
}

RingSide ClassifyPointInRing(const Point& p, const std::vector<Point>& ring) {
  const size_t n = ring.size();
  if (n < 3) return RingSide::kOutside;
  for (size_t i = 0; i < n; ++i) {
    if (PointOnSegment(p, ring[i], ring[(i + 1) % n])) {
      return RingSide::kBoundary;
    }
  }
  bool inside = false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring[i];
    const Point& b = ring[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_int = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (p.x < x_int) inside = !inside;
    }
  }
  return inside ? RingSide::kInside : RingSide::kOutside;
}

RingSide ClassifyPointInPolygon(const Point& p, const Polygon& poly) {
  const RingSide outer = ClassifyPointInRing(p, poly.outer);
  if (outer != RingSide::kInside) return outer;
  for (const auto& hole : poly.holes) {
    const RingSide side = ClassifyPointInRing(p, hole);
    if (side == RingSide::kBoundary) return RingSide::kBoundary;
    if (side == RingSide::kInside) return RingSide::kOutside;
  }
  return RingSide::kInside;
}

double DistancePointSegment(const Point& p, const Point& a, const Point& b) {
  const double t = std::clamp(ParamOnSegment(p, a, b), 0.0, 1.0);
  const Point proj{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
  return Distance(p, proj);
}

double DistanceSegmentSegment(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2) {
  if (SegmentsIntersect(a1, a2, b1, b2)) return 0.0;
  return std::min(std::min(DistancePointSegment(a1, b1, b2),
                           DistancePointSegment(a2, b1, b2)),
                  std::min(DistancePointSegment(b1, a1, a2),
                           DistancePointSegment(b2, a1, a2)));
}

double Distance(const Geometry& a, const Geometry& b) {
  if (Intersects(a, b)) return 0.0;
  const auto pa = AllPoints(a);
  const auto pb = AllPoints(b);
  const auto sa = BoundarySegments(a);
  const auto sb = BoundarySegments(b);
  double best = std::numeric_limits<double>::infinity();
  if (sa.empty() && sb.empty()) {
    for (const Point& x : pa) {
      for (const Point& y : pb) best = std::min(best, geom::Distance(x, y));
    }
    return best;
  }
  for (const Point& x : pa) {
    for (const Segment& s : sb) {
      best = std::min(best, DistancePointSegment(x, s.a, s.b));
    }
  }
  for (const Point& y : pb) {
    for (const Segment& s : sa) {
      best = std::min(best, DistancePointSegment(y, s.a, s.b));
    }
  }
  for (const Segment& x : sa) {
    for (const Segment& y : sb) {
      best = std::min(best, DistanceSegmentSegment(x.a, x.b, y.a, y.b));
    }
  }
  if (pb.empty() && !pa.empty() && sb.empty()) return best;
  return best;
}

bool Intersects(const Geometry& a, const Geometry& b) {
  if (!a.Bounds().Intersects(b.Bounds())) return false;
  // Point-kind against anything: membership test.
  if (a.Dimension() == 0) {
    for (const Point& p : AllPoints(a)) {
      if (GeometryCoversPoint(b, p)) return true;
    }
    return false;
  }
  if (b.Dimension() == 0) return Intersects(b, a);
  // Any vertex of one on/in the other (covers containment).
  for (const Point& p : AllPoints(a)) {
    if (GeometryCoversPoint(b, p)) return true;
  }
  for (const Point& p : AllPoints(b)) {
    if (GeometryCoversPoint(a, p)) return true;
  }
  // Any boundary segments intersecting.
  const auto sa = BoundarySegments(a);
  const auto sb = BoundarySegments(b);
  for (const Segment& x : sa) {
    for (const Segment& y : sb) {
      if (SegmentsIntersect(x.a, x.b, y.a, y.b)) return true;
    }
  }
  return false;
}

bool Disjoint(const Geometry& a, const Geometry& b) {
  return !Intersects(a, b);
}

bool InteriorsIntersect(const Geometry& a, const Geometry& b) {
  if (!a.Bounds().Intersects(b.Bounds())) return false;
  if (a.Dimension() == 0) {
    for (const Point& p : AllPoints(a)) {
      if (GeometryInteriorCoversPoint(b, p)) return true;
    }
    return false;
  }
  if (b.Dimension() == 0) return InteriorsIntersect(b, a);

  if (a.is_linestring() && b.is_linestring()) {
    if (AnyProperCrossing(a, b)) return true;
    if (AnyCollinearOverlap(a, b)) return true;
    // Touch points: endpoints of either lying on the other.
    for (const Point& p : AllPoints(a)) {
      if (PointInLineInterior(p, a.linestring()) &&
          GeometryInteriorCoversPoint(b, p)) {
        return true;
      }
    }
    for (const Point& p : AllPoints(b)) {
      if (PointInLineInterior(p, b.linestring()) &&
          GeometryInteriorCoversPoint(a, p)) {
        return true;
      }
    }
    return false;
  }

  if (a.is_linestring() && b.is_polygon()) {
    const auto& pts = a.linestring().points;
    for (size_t i = 0; i + 1 < pts.size(); ++i) {
      if (AnySubsegmentMidpoint(pts[i], pts[i + 1], b.polygon(),
                                RingSide::kInside)) {
        return true;
      }
    }
    return false;
  }
  if (a.is_polygon() && b.is_linestring()) return InteriorsIntersect(b, a);

  if (a.is_polygon() && b.is_polygon()) {
    if (AnyProperCrossing(a, b)) return true;
    for (const Point& p : AllPoints(a)) {
      if (ClassifyPointInPolygon(p, b.polygon()) == RingSide::kInside) {
        return true;
      }
    }
    for (const Point& p : AllPoints(b)) {
      if (ClassifyPointInPolygon(p, a.polygon()) == RingSide::kInside) {
        return true;
      }
    }
    // Containment / equality without strict vertex penetration.
    const Point ia = PolygonInteriorPoint(a.polygon());
    if (ClassifyPointInPolygon(ia, b.polygon()) == RingSide::kInside &&
        ClassifyPointInPolygon(ia, a.polygon()) == RingSide::kInside) {
      return true;
    }
    const Point ib = PolygonInteriorPoint(b.polygon());
    if (ClassifyPointInPolygon(ib, a.polygon()) == RingSide::kInside &&
        ClassifyPointInPolygon(ib, b.polygon()) == RingSide::kInside) {
      return true;
    }
    return false;
  }
  return false;
}

bool Contains(const Geometry& a, const Geometry& b) {
  if (!InteriorsIntersect(a, b)) return false;
  // Every point of b must lie on/in a.
  if (b.Dimension() == 0) {
    for (const Point& p : AllPoints(b)) {
      if (!GeometryCoversPoint(a, p)) return false;
    }
    return true;
  }
  if (a.Dimension() < b.Dimension()) return false;

  if (a.is_polygon()) {
    // All of b's vertices must not be outside.
    for (const Point& p : AllPoints(b)) {
      if (ClassifyPointInPolygon(p, a.polygon()) == RingSide::kOutside) {
        return false;
      }
    }
    // No part of b's boundary segments may pass outside a.
    for (const Segment& s : BoundarySegments(b)) {
      if (AnySubsegmentMidpoint(s.a, s.b, a.polygon(), RingSide::kOutside)) {
        return false;
      }
    }
    if (b.is_polygon()) {
      // b's interior must not poke out: a's boundary may not properly
      // cross b's, and b's interior sample must be inside a.
      if (AnyProperCrossing(a, b)) return false;
      const Point ib = PolygonInteriorPoint(b.polygon());
      if (ClassifyPointInPolygon(ib, a.polygon()) != RingSide::kInside) {
        return false;
      }
      // A hole of `a` inside `b` would carve out interior points of b.
      for (const auto& hole : a.polygon().holes) {
        if (hole.empty()) continue;
        Polygon hole_poly{hole, {}};
        const Point hp = PolygonInteriorPoint(hole_poly);
        if (ClassifyPointInPolygon(hp, b.polygon()) == RingSide::kInside) {
          return false;
        }
      }
    }
    return true;
  }

  if (a.is_linestring() && b.is_linestring()) {
    // Sampling containment: all of b's vertices and segment midpoints
    // must lie on a.
    for (const Point& p : AllPoints(b)) {
      if (!GeometryCoversPoint(a, p)) return false;
    }
    for (const Segment& s : BoundarySegments(b)) {
      const Point mid{(s.a.x + s.b.x) / 2.0, (s.a.y + s.b.y) / 2.0};
      if (!GeometryCoversPoint(a, mid)) return false;
    }
    return true;
  }
  return false;
}

bool Within(const Geometry& a, const Geometry& b) { return Contains(b, a); }

bool Touches(const Geometry& a, const Geometry& b) {
  return Intersects(a, b) && !InteriorsIntersect(a, b);
}

bool Crosses(const Geometry& a, const Geometry& b) {
  if (a.Dimension() > b.Dimension()) return Crosses(b, a);
  if (a.Dimension() == 0 && b.Dimension() == 0) return false;
  if (!InteriorsIntersect(a, b)) return false;

  if (a.Dimension() == 0) {
    // Multipoint crosses a line/area when some points are interior and
    // some are fully outside.
    bool some_in = false;
    bool some_out = false;
    for (const Point& p : AllPoints(a)) {
      if (GeometryInteriorCoversPoint(b, p)) {
        some_in = true;
      } else if (!GeometryCoversPoint(b, p)) {
        some_out = true;
      }
    }
    return some_in && some_out;
  }

  if (a.is_linestring() && b.is_linestring()) {
    // Intersection must be zero-dimensional: proper crossing without
    // collinear overlap, and neither contains the other.
    if (AnyCollinearOverlap(a, b)) return false;
    if (Contains(a, b) || Contains(b, a)) return false;
    return true;
  }

  if (a.is_linestring() && GeometryHasArea(b)) {
    // The line must pass both strictly inside and strictly outside.
    const auto& pts = a.linestring().points;
    bool some_in = false;
    bool some_out = false;
    for (size_t i = 0; i + 1 < pts.size(); ++i) {
      if (AnySubsegmentMidpoint(pts[i], pts[i + 1], b.polygon(),
                                RingSide::kInside)) {
        some_in = true;
      }
      if (AnySubsegmentMidpoint(pts[i], pts[i + 1], b.polygon(),
                                RingSide::kOutside)) {
        some_out = true;
      }
    }
    return some_in && some_out;
  }
  return false;  // Crosses is undefined for area/area.
}

bool Overlaps(const Geometry& a, const Geometry& b) {
  if (a.Dimension() != b.Dimension()) return false;
  if (!InteriorsIntersect(a, b)) return false;
  if (Contains(a, b) || Contains(b, a)) return false;
  if (a.is_linestring() && b.is_linestring()) {
    // Line overlap requires a shared 1-dimensional piece.
    return AnyCollinearOverlap(a, b);
  }
  return true;
}

}  // namespace agis::geom
