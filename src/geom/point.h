#ifndef AGIS_GEOM_POINT_H_
#define AGIS_GEOM_POINT_H_

#include <cmath>

namespace agis::geom {

/// Tolerance used by all geometric comparisons in this library.
/// Coordinates are map units (meters in the synthetic workloads), so
/// 1e-9 is far below any feature dimension while absorbing FP noise.
inline constexpr double kEpsilon = 1e-9;

/// Returns true when `a` and `b` differ by at most `kEpsilon`.
inline bool NearlyEqual(double a, double b) {
  return std::fabs(a - b) <= kEpsilon;
}

/// A 2-D coordinate in map units.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return NearlyEqual(a.x, b.x) && NearlyEqual(a.y, b.y);
  }
};

/// Euclidean distance between `a` and `b`.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Twice the signed area of triangle (a, b, c); > 0 when c lies to the
/// left of the directed line a->b.
inline double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

}  // namespace agis::geom

#endif  // AGIS_GEOM_POINT_H_
