#ifndef AGIS_GEOM_TOPOLOGY_H_
#define AGIS_GEOM_TOPOLOGY_H_

#include <string>

#include "base/status.h"
#include "geom/geometry.h"

namespace agis::geom {

/// Named binary topological relations, the vocabulary of the
/// topological-constraint rule family (Medeiros & Cilia [11] maintain
/// binary topological constraints through active database rules; this
/// enum is the constraint language those rules check).
enum class TopoRelation {
  kDisjoint,
  kTouches,
  kOverlaps,
  kCrosses,
  kContains,
  kInside,   // Within: a inside b.
  kEquals,
  kIntersects,  // Generic: any shared point (used as a constraint
                // target, never returned by Relate).
};

const char* TopoRelationName(TopoRelation r);

/// Parses a relation name (case-insensitive: "disjoint", "touches",
/// "overlaps", "crosses", "contains", "inside"/"within", "equals",
/// "intersects").
agis::Result<TopoRelation> ParseTopoRelation(const std::string& name);

/// Classifies the pair (a, b) into the single most specific relation:
/// Equals > Contains/Inside > Crosses > Overlaps > Touches >
/// Intersects-fallback > Disjoint. The result is deterministic and
/// total over the shape kinds this library stores.
TopoRelation Relate(const Geometry& a, const Geometry& b);

/// True when the pair (a, b) satisfies relation `r` (for `r ==
/// kIntersects`, any non-disjoint pair qualifies).
bool Satisfies(const Geometry& a, const Geometry& b, TopoRelation r);

}  // namespace agis::geom

#endif  // AGIS_GEOM_TOPOLOGY_H_
