#ifndef AGIS_GEOM_PREDICATES_H_
#define AGIS_GEOM_PREDICATES_H_

#include <vector>

#include "geom/geometry.h"
#include "geom/point.h"

namespace agis::geom {

/// Position of a point relative to a closed ring (no closing duplicate).
enum class RingSide { kOutside, kBoundary, kInside };

/// True if `p` lies on segment [a, b] within kEpsilon.
bool PointOnSegment(const Point& p, const Point& a, const Point& b);

/// True if segments [a1,a2] and [b1,b2] share at least one point
/// (touching endpoints count).
bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2);

/// True if the segments cross at a single interior point of both
/// (proper crossing; shared endpoints and collinear overlap excluded).
bool SegmentsProperlyCross(const Point& a1, const Point& a2, const Point& b1,
                           const Point& b2);

/// Ray-casting classification of `p` against `ring`.
RingSide ClassifyPointInRing(const Point& p, const std::vector<Point>& ring);

/// Classification of `p` against `poly` (holes respected: a point
/// strictly inside a hole is outside; on a hole edge it is boundary).
RingSide ClassifyPointInPolygon(const Point& p, const Polygon& poly);

/// Shortest distance from `p` to segment [a, b].
double DistancePointSegment(const Point& p, const Point& a, const Point& b);

/// Shortest distance between two segments (0 when they intersect).
double DistanceSegmentSegment(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2);

/// Shortest distance between two geometries; 0 when they intersect.
double Distance(const Geometry& a, const Geometry& b);

/// Named binary predicates over geometries. Semantics follow the
/// usual GIS definitions (simplified to the shape kinds we store):
///
///  - Intersects: share at least one point.
///  - Disjoint:   !Intersects.
///  - Contains:   every point of `b` lies in `a`, and the interiors
///                intersect (boundary-only contact is Touches).
///  - Within:     Contains with the arguments swapped.
///  - Touches:    share boundary points but no interior points.
///  - Crosses:    interiors intersect and each geometry has points the
///                other does not (for line/line: a proper crossing;
///                for line/area: the line passes in and out).
///  - Overlaps:   same-dimension geometries whose interiors intersect
///                without either containing the other.
bool Intersects(const Geometry& a, const Geometry& b);
bool Disjoint(const Geometry& a, const Geometry& b);
bool Contains(const Geometry& a, const Geometry& b);
bool Within(const Geometry& a, const Geometry& b);
bool Touches(const Geometry& a, const Geometry& b);
bool Crosses(const Geometry& a, const Geometry& b);
bool Overlaps(const Geometry& a, const Geometry& b);

/// True when the interiors of `a` and `b` share at least one point.
/// Building block for Touches/Overlaps/Contains.
bool InteriorsIntersect(const Geometry& a, const Geometry& b);

}  // namespace agis::geom

#endif  // AGIS_GEOM_PREDICATES_H_
