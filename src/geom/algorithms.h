#ifndef AGIS_GEOM_ALGORITHMS_H_
#define AGIS_GEOM_ALGORITHMS_H_

#include <vector>

#include "base/status.h"
#include "geom/geometry.h"

namespace agis::geom {

/// Douglas–Peucker polyline simplification: removes vertices whose
/// perpendicular distance to the local chord is below `tolerance`.
/// Endpoints are always kept; a line with < 3 points is returned
/// unchanged. This is the basic cartographic-generalization primitive
/// the presentation area applies at small display scales.
LineString SimplifyLine(const LineString& line, double tolerance);

/// Simplifies lines and polygon rings (rings keep at least 4 anchor
/// points so areas never collapse); points and multipoints pass
/// through unchanged.
Geometry Simplify(const Geometry& g, double tolerance);

/// Convex hull (Andrew's monotone chain), counter-clockwise outer
/// ring. Errors when fewer than 3 distinct non-collinear points.
agis::Result<Polygon> ConvexHull(std::vector<Point> points);

/// Regular-polygon approximation of a disc of `radius` around
/// `center` (`segments` >= 3 vertices, counter-clockwise).
Polygon BufferPoint(const Point& center, double radius, int segments = 16);

/// Buffers a polyline into a polygon corridor of half-width `radius`
/// (union approximated by the convex hull of per-vertex discs when the
/// line is short, else per-segment quads merged via hull — adequate
/// for clearance visualization, not boolean-exact).
agis::Result<Polygon> BufferLine(const LineString& line, double radius,
                                 int segments = 8);

}  // namespace agis::geom

#endif  // AGIS_GEOM_ALGORITHMS_H_
