#include "geom/geometry.h"

#include <cmath>

namespace agis::geom {

namespace {

double RingSignedArea(const std::vector<Point>& ring) {
  if (ring.size() < 3) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < ring.size(); ++i) {
    const Point& a = ring[i];
    const Point& b = ring[(i + 1) % ring.size()];
    sum += a.x * b.y - b.x * a.y;
  }
  return sum / 2.0;
}

double RingPerimeter(const std::vector<Point>& ring) {
  if (ring.size() < 2) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < ring.size(); ++i) {
    sum += Distance(ring[i], ring[(i + 1) % ring.size()]);
  }
  return sum;
}

bool PointsNearlyEqual(const std::vector<Point>& a,
                       const std::vector<Point>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

double LineString::Length() const {
  double sum = 0.0;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    sum += Distance(points[i], points[i + 1]);
  }
  return sum;
}

double Polygon::Area() const {
  double area = std::fabs(RingSignedArea(outer));
  for (const auto& hole : holes) area -= std::fabs(RingSignedArea(hole));
  return std::fmax(area, 0.0);
}

double Polygon::OuterPerimeter() const { return RingPerimeter(outer); }

BoundingBox Geometry::Bounds() const {
  BoundingBox box;
  switch (kind()) {
    case GeometryKind::kPoint:
      box.Expand(point());
      break;
    case GeometryKind::kLineString:
      for (const Point& p : linestring().points) box.Expand(p);
      break;
    case GeometryKind::kPolygon:
      for (const Point& p : polygon().outer) box.Expand(p);
      break;
    case GeometryKind::kMultiPoint:
      for (const Point& p : multipoint()) box.Expand(p);
      break;
  }
  return box;
}

size_t Geometry::NumPoints() const {
  switch (kind()) {
    case GeometryKind::kPoint:
      return 1;
    case GeometryKind::kLineString:
      return linestring().points.size();
    case GeometryKind::kPolygon: {
      size_t n = polygon().outer.size();
      for (const auto& hole : polygon().holes) n += hole.size();
      return n;
    }
    case GeometryKind::kMultiPoint:
      return multipoint().size();
  }
  return 0;
}

int Geometry::Dimension() const {
  switch (kind()) {
    case GeometryKind::kPoint:
    case GeometryKind::kMultiPoint:
      return 0;
    case GeometryKind::kLineString:
      return 1;
    case GeometryKind::kPolygon:
      return 2;
  }
  return 0;
}

bool operator==(const Geometry& a, const Geometry& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case GeometryKind::kPoint:
      return a.point() == b.point();
    case GeometryKind::kLineString:
      return PointsNearlyEqual(a.linestring().points, b.linestring().points);
    case GeometryKind::kPolygon: {
      if (!PointsNearlyEqual(a.polygon().outer, b.polygon().outer)) {
        return false;
      }
      if (a.polygon().holes.size() != b.polygon().holes.size()) return false;
      for (size_t i = 0; i < a.polygon().holes.size(); ++i) {
        if (!PointsNearlyEqual(a.polygon().holes[i], b.polygon().holes[i])) {
          return false;
        }
      }
      return true;
    }
    case GeometryKind::kMultiPoint:
      return PointsNearlyEqual(a.multipoint(), b.multipoint());
  }
  return false;
}

std::string Geometry::KindName() const { return GeometryKindName(kind()); }

const char* GeometryKindName(GeometryKind kind) {
  switch (kind) {
    case GeometryKind::kPoint:
      return "POINT";
    case GeometryKind::kLineString:
      return "LINESTRING";
    case GeometryKind::kPolygon:
      return "POLYGON";
    case GeometryKind::kMultiPoint:
      return "MULTIPOINT";
  }
  return "UNKNOWN";
}

}  // namespace agis::geom
