#ifndef AGIS_GEOM_WKT_H_
#define AGIS_GEOM_WKT_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "geom/geometry.h"

namespace agis::geom {

/// Serializes `g` as Well-Known Text, e.g. "POINT (3 4)",
/// "LINESTRING (0 0, 1 1)", "POLYGON ((0 0, 4 0, 4 4, 0 4), (1 1, 2 1, 2 2))",
/// "MULTIPOINT (1 2, 3 4)". Polygon rings are emitted without the
/// closing duplicate point, matching the in-memory representation.
///
/// `precision` is the significant-digit count: 6 (default) reads well
/// in displays; 17 round-trips doubles exactly (what geodb/persist
/// uses).
std::string ToWkt(const Geometry& g, int precision = 6);

/// Parses the WKT dialect produced by `ToWkt`. Accepts optional closing
/// duplicate points on polygon rings (standard WKT) and arbitrary
/// whitespace. Returns ParseError with position information on bad input.
agis::Result<Geometry> ParseWkt(std::string_view text);

}  // namespace agis::geom

#endif  // AGIS_GEOM_WKT_H_
