#ifndef AGIS_UILIB_INTERFACE_OBJECT_H_
#define AGIS_UILIB_INTERFACE_OBJECT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "uilib/ui_event.h"

namespace agis::uilib {

/// The kernel classes of Figure 2.
enum class WidgetKind {
  kWindow,
  kPanel,
  kTextField,
  kDrawingArea,
  kList,
  kButton,
  kMenu,
  kMenuItem,
};

const char* WidgetKindName(WidgetKind kind);

/// Base class of every interface object in the library.
///
/// Interface objects are *either atomic* (button, text field) *or
/// complex* (window, panel) via the recursive composition the paper's
/// Figure 2 shows on Panel. Every object carries:
///  - a name (unique among siblings),
///  - a string property bag (label, tooltip, format, value, ...),
///  - event→callback bindings ("callback functions triggered by
///    events on interface objects"),
///  - children (owned).
///
/// `Clone` deep-copies the subtree including property bags and
/// callback bindings — the library instantiates prototypes by cloning.
class InterfaceObject {
 public:
  using Callback = std::function<void(InterfaceObject&, const UiEvent&)>;

  InterfaceObject(WidgetKind kind, std::string name);
  virtual ~InterfaceObject();

  InterfaceObject(const InterfaceObject&) = delete;
  InterfaceObject& operator=(const InterfaceObject&) = delete;

  WidgetKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // ---- Properties --------------------------------------------------------

  void SetProperty(const std::string& key, std::string value);
  /// Empty string when unset.
  const std::string& GetProperty(const std::string& key) const;
  bool HasProperty(const std::string& key) const;
  const std::map<std::string, std::string>& properties() const {
    return properties_;
  }

  // ---- Composition -------------------------------------------------------

  /// Adds `child` (taking ownership) and returns a raw pointer to it.
  /// Aborts when this object's kind cannot hold children (see
  /// CanContainChildren); the builder validates before adding.
  InterfaceObject* AddChild(std::unique_ptr<InterfaceObject> child);

  /// Removes and destroys the first child named `name`.
  agis::Status RemoveChild(const std::string& name);

  const std::vector<std::unique_ptr<InterfaceObject>>& children() const {
    return children_;
  }
  InterfaceObject* parent() const { return parent_; }

  /// First child with `name`; nullptr when absent.
  InterfaceObject* FindChild(const std::string& name) const;

  /// Depth-first search of the whole subtree (excluding this node).
  InterfaceObject* FindDescendant(const std::string& name) const;

  /// Nodes in this subtree, including this one.
  size_t SubtreeSize() const;

  /// Depth of this subtree (a lone node has depth 1).
  size_t SubtreeDepth() const;

  /// Whether this kind may own children (windows, panels, menus).
  bool CanContainChildren() const;

  // ---- Events ------------------------------------------------------------

  /// Binds `callback` (registered under `callback_name` for
  /// introspection) to `event_name`. Multiple callbacks per event run
  /// in binding order. Binding the same callback_name again replaces
  /// the previous binding (customization overrides default behavior).
  void Bind(const std::string& event_name, std::string callback_name,
            Callback callback);

  /// Removes the named binding; false when absent.
  bool Unbind(const std::string& event_name,
              const std::string& callback_name);

  /// Fires `event` on this object, invoking its bound callbacks.
  /// Returns the number of callbacks run.
  size_t Fire(const UiEvent& event);

  /// Names of callbacks bound to `event_name` (binding order).
  std::vector<std::string> BoundCallbacks(const std::string& event_name) const;

  /// All (event name, callback name) bindings in binding order; used
  /// by the definition serializer.
  std::vector<std::pair<std::string, std::string>> AllBindings() const;

  // ---- Cloning & inspection ----------------------------------------------

  /// Deep copy of the subtree: kinds, names, properties, bindings.
  std::unique_ptr<InterfaceObject> Clone() const;

  /// Structural validation: menus contain only menu items, menu items
  /// are inside menus, only container kinds have children.
  agis::Status Validate() const;

  /// Indented structural dump, e.g.
  ///   Window "Class set: Pole"
  ///     Panel "control"
  ///       Button "show"
  std::string ToTreeString(int indent = 0) const;

 private:
  struct Binding {
    std::string event_name;
    std::string callback_name;
    Callback callback;
  };

  WidgetKind kind_;
  std::string name_;
  std::map<std::string, std::string> properties_;
  std::vector<std::unique_ptr<InterfaceObject>> children_;
  InterfaceObject* parent_ = nullptr;
  std::vector<Binding> bindings_;
};

/// Creates an object of `kind` with `name` (factory used by the
/// library's kernel prototypes).
std::unique_ptr<InterfaceObject> MakeWidget(WidgetKind kind, std::string name);

}  // namespace agis::uilib

#endif  // AGIS_UILIB_INTERFACE_OBJECT_H_
