#include "uilib/widget_props.h"

#include <algorithm>

#include "base/strutil.h"

namespace agis::uilib {

void SetListItems(InterfaceObject* list,
                  const std::vector<std::string>& items) {
  std::vector<std::string> cleaned = items;
  for (std::string& item : cleaned) {
    std::replace(item.begin(), item.end(), '\n', ' ');
  }
  list->SetProperty(kPropItems, agis::Join(cleaned, "\n"));
  list->SetProperty("item_count", agis::StrCat(cleaned.size()));
}

std::vector<std::string> GetListItems(const InterfaceObject& list) {
  const std::string& raw = list.GetProperty(kPropItems);
  if (raw.empty()) return {};
  return agis::Split(raw, '\n');
}

void SelectListItem(InterfaceObject* list, size_t index) {
  const std::vector<std::string> items = GetListItems(*list);
  if (items.empty()) return;
  index = std::min(index, items.size() - 1);
  list->SetProperty(kPropSelected, agis::StrCat(index));
  UiEvent event;
  event.name = kUiSelect;
  event.args["index"] = agis::StrCat(index);
  event.args["item"] = items[index];
  list->Fire(event);
}

std::string SelectedListItem(const InterfaceObject& list) {
  const std::string& sel = list.GetProperty(kPropSelected);
  if (sel.empty()) return "";
  const std::vector<std::string> items = GetListItems(list);
  const size_t index = static_cast<size_t>(std::stoul(sel));
  return index < items.size() ? items[index] : "";
}

}  // namespace agis::uilib
