#ifndef AGIS_UILIB_LIBRARY_H_
#define AGIS_UILIB_LIBRARY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "uilib/interface_object.h"

namespace agis::uilib {

/// The interface objects library of Figure 1: a database of named
/// widget prototypes, atomic and complex, that the generic interface
/// builder instantiates at run time.
///
/// Extensibility works exactly as Section 3.2 describes: new complex
/// objects (a whole map-selection panel) can be registered and then
/// reused as components of yet more complex objects; existing
/// prototypes can be *specialized* (cloned, mutated, re-registered
/// under a new name).
class InterfaceObjectLibrary {
 public:
  InterfaceObjectLibrary() = default;

  InterfaceObjectLibrary(const InterfaceObjectLibrary&) = delete;
  InterfaceObjectLibrary& operator=(const InterfaceObjectLibrary&) = delete;

  /// Registers `prototype` under its object name. Fails on duplicates
  /// unless `allow_replace`; fails on invalid structures.
  agis::Status RegisterPrototype(std::unique_ptr<InterfaceObject> prototype,
                                 std::string doc = "",
                                 bool allow_replace = false);

  /// Instantiates a prototype: a deep clone the caller owns.
  agis::Result<std::unique_ptr<InterfaceObject>> Instantiate(
      const std::string& name) const;

  /// Clones `base_name`, applies `mutate`, registers under `new_name`.
  agis::Status Specialize(
      const std::string& base_name, const std::string& new_name,
      const std::function<void(InterfaceObject&)>& mutate,
      std::string doc = "");

  agis::Status RemovePrototype(const std::string& name);

  bool Has(const std::string& name) const {
    return prototypes_.count(name) != 0;
  }

  /// Read-only view of a prototype (no clone); nullptr when absent.
  const InterfaceObject* Peek(const std::string& name) const;

  const std::string& DocOf(const std::string& name) const;

  /// Registered names, insertion order.
  std::vector<std::string> Names() const { return order_; }
  size_t NumPrototypes() const { return prototypes_.size(); }

  /// Registers one atomic prototype per kernel class of Figure 2
  /// ("window", "panel", "text_field", "drawing_area", "list",
  /// "button", "menu", "menu_item").
  agis::Status RegisterKernelPrototypes();

 private:
  struct Stored {
    std::unique_ptr<InterfaceObject> prototype;
    std::string doc;
  };

  std::map<std::string, Stored> prototypes_;
  std::vector<std::string> order_;
};

/// Registers the GIS-standard complex prototypes the paper's example
/// uses on top of the kernel:
///  - "poleWidget": slider-based class-control panel (Figure 6 line 4),
///  - "composed_text": text field that composes several source values
///    (line 7), with a "notify" callback,
///  - "map_selection_panel": the Section 3.2 reuse example — lists,
///    region text field and operation buttons composed into one panel,
///  - "class_control": default per-class control widget (checkbox-like
///    toggle used in Class-set control areas),
///  - "attribute_row": default Instance-window attribute panel.
agis::Status RegisterStandardGisPrototypes(InterfaceObjectLibrary* library);

}  // namespace agis::uilib

#endif  // AGIS_UILIB_LIBRARY_H_
