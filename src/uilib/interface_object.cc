#include "uilib/interface_object.h"

#include <algorithm>

#include "base/logging.h"
#include "base/strutil.h"

namespace agis::uilib {

const char* WidgetKindName(WidgetKind kind) {
  switch (kind) {
    case WidgetKind::kWindow:
      return "Window";
    case WidgetKind::kPanel:
      return "Panel";
    case WidgetKind::kTextField:
      return "TextField";
    case WidgetKind::kDrawingArea:
      return "DrawingArea";
    case WidgetKind::kList:
      return "List";
    case WidgetKind::kButton:
      return "Button";
    case WidgetKind::kMenu:
      return "Menu";
    case WidgetKind::kMenuItem:
      return "MenuItem";
  }
  return "Unknown";
}

InterfaceObject::InterfaceObject(WidgetKind kind, std::string name)
    : kind_(kind), name_(std::move(name)) {}

InterfaceObject::~InterfaceObject() = default;

void InterfaceObject::SetProperty(const std::string& key, std::string value) {
  properties_[key] = std::move(value);
}

const std::string& InterfaceObject::GetProperty(const std::string& key) const {
  static const std::string* kEmpty = new std::string();
  auto it = properties_.find(key);
  return it == properties_.end() ? *kEmpty : it->second;
}

bool InterfaceObject::HasProperty(const std::string& key) const {
  return properties_.count(key) != 0;
}

bool InterfaceObject::CanContainChildren() const {
  switch (kind_) {
    case WidgetKind::kWindow:
    case WidgetKind::kPanel:
    case WidgetKind::kMenu:
      return true;
    default:
      return false;
  }
}

InterfaceObject* InterfaceObject::AddChild(
    std::unique_ptr<InterfaceObject> child) {
  AGIS_CHECK(CanContainChildren())
      << WidgetKindName(kind_) << " '" << name_ << "' cannot hold children";
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

agis::Status InterfaceObject::RemoveChild(const std::string& name) {
  for (auto it = children_.begin(); it != children_.end(); ++it) {
    if ((*it)->name() == name) {
      children_.erase(it);
      return agis::Status::OK();
    }
  }
  return agis::Status::NotFound(
      agis::StrCat("child '", name, "' of '", name_, "'"));
}

InterfaceObject* InterfaceObject::FindChild(const std::string& name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

InterfaceObject* InterfaceObject::FindDescendant(
    const std::string& name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
    InterfaceObject* found = child->FindDescendant(name);
    if (found != nullptr) return found;
  }
  return nullptr;
}

size_t InterfaceObject::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children_) n += child->SubtreeSize();
  return n;
}

size_t InterfaceObject::SubtreeDepth() const {
  size_t deepest = 0;
  for (const auto& child : children_) {
    deepest = std::max(deepest, child->SubtreeDepth());
  }
  return deepest + 1;
}

void InterfaceObject::Bind(const std::string& event_name,
                           std::string callback_name, Callback callback) {
  for (Binding& b : bindings_) {
    if (b.event_name == event_name && b.callback_name == callback_name) {
      b.callback = std::move(callback);
      return;
    }
  }
  bindings_.push_back(
      Binding{event_name, std::move(callback_name), std::move(callback)});
}

bool InterfaceObject::Unbind(const std::string& event_name,
                             const std::string& callback_name) {
  for (auto it = bindings_.begin(); it != bindings_.end(); ++it) {
    if (it->event_name == event_name && it->callback_name == callback_name) {
      bindings_.erase(it);
      return true;
    }
  }
  return false;
}

size_t InterfaceObject::Fire(const UiEvent& event) {
  size_t fired = 0;
  // Index-based loop: a callback may add further bindings.
  for (size_t i = 0; i < bindings_.size(); ++i) {
    if (bindings_[i].event_name == event.name) {
      bindings_[i].callback(*this, event);
      ++fired;
    }
  }
  return fired;
}

std::vector<std::string> InterfaceObject::BoundCallbacks(
    const std::string& event_name) const {
  std::vector<std::string> out;
  for (const Binding& b : bindings_) {
    if (b.event_name == event_name) out.push_back(b.callback_name);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>>
InterfaceObject::AllBindings() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const Binding& b : bindings_) {
    out.emplace_back(b.event_name, b.callback_name);
  }
  return out;
}

std::unique_ptr<InterfaceObject> InterfaceObject::Clone() const {
  auto copy = std::make_unique<InterfaceObject>(kind_, name_);
  copy->properties_ = properties_;
  copy->bindings_ = bindings_;
  for (const auto& child : children_) {
    copy->AddChild(child->Clone());
  }
  return copy;
}

agis::Status InterfaceObject::Validate() const {
  if (!children_.empty() && !CanContainChildren()) {
    return agis::Status::FailedPrecondition(
        agis::StrCat(WidgetKindName(kind_), " '", name_,
                     "' has children but is atomic"));
  }
  for (const auto& child : children_) {
    if (kind_ == WidgetKind::kMenu &&
        child->kind() != WidgetKind::kMenuItem &&
        child->kind() != WidgetKind::kMenu) {
      return agis::Status::FailedPrecondition(
          agis::StrCat("menu '", name_, "' contains non-item '",
                       child->name(), "'"));
    }
    if (child->kind() == WidgetKind::kMenuItem &&
        kind_ != WidgetKind::kMenu) {
      return agis::Status::FailedPrecondition(
          agis::StrCat("menu item '", child->name(), "' outside a menu"));
    }
    AGIS_RETURN_IF_ERROR(child->Validate());
  }
  return agis::Status::OK();
}

std::string InterfaceObject::ToTreeString(int indent) const {
  std::string out = agis::Repeat("  ", static_cast<size_t>(indent));
  out += agis::StrCat(WidgetKindName(kind_), " \"", name_, "\"");
  const std::string& label = GetProperty("label");
  if (!label.empty() && label != name_) {
    out += agis::StrCat(" [", label, "]");
  }
  out += "\n";
  for (const auto& child : children_) {
    out += child->ToTreeString(indent + 1);
  }
  return out;
}

std::unique_ptr<InterfaceObject> MakeWidget(WidgetKind kind,
                                            std::string name) {
  return std::make_unique<InterfaceObject>(kind, std::move(name));
}

}  // namespace agis::uilib
