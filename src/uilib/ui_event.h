#ifndef AGIS_UILIB_UI_EVENT_H_
#define AGIS_UILIB_UI_EVENT_H_

#include <map>
#include <string>

namespace agis::uilib {

/// An interface event (`IE` in Section 3.3): a user gesture on one
/// interface object — click, select, text change. The dispatcher
/// splits a user interaction into such an interface event (handled by
/// widget callbacks) and a database event (handled by the active
/// mechanism).
struct UiEvent {
  std::string name;  // "click", "select", "change", "open", "close".
  std::map<std::string, std::string> args;

  const std::string& Arg(const std::string& key) const {
    static const std::string* kEmpty = new std::string();
    auto it = args.find(key);
    return it == args.end() ? *kEmpty : it->second;
  }
};

/// Canonical interface-event names.
inline constexpr const char* kUiClick = "click";
inline constexpr const char* kUiSelect = "select";
inline constexpr const char* kUiChange = "change";
inline constexpr const char* kUiOpen = "open";
inline constexpr const char* kUiClose = "close";

}  // namespace agis::uilib

#endif  // AGIS_UILIB_UI_EVENT_H_
