#ifndef AGIS_UILIB_WIDGET_PROPS_H_
#define AGIS_UILIB_WIDGET_PROPS_H_

#include <string>
#include <vector>

#include "uilib/interface_object.h"

namespace agis::uilib {

/// Common property keys used across the builder and the dispatcher.
inline constexpr const char* kPropLabel = "label";
inline constexpr const char* kPropValue = "value";
inline constexpr const char* kPropItems = "items";          // List contents.
inline constexpr const char* kPropSelected = "selected";    // List selection.
inline constexpr const char* kPropWindowType = "window_type";
inline constexpr const char* kPropHidden = "hidden";
inline constexpr const char* kPropClass = "class";
inline constexpr const char* kPropObject = "object";
inline constexpr const char* kPropContent = "content";      // ASCII raster.
inline constexpr const char* kPropSvg = "svg";              // SVG document.
inline constexpr const char* kPropFeatureCount = "feature_count";
inline constexpr const char* kPropStyle = "style";

/// Window-type values.
inline constexpr const char* kWindowSchema = "Schema";
inline constexpr const char* kWindowClassSet = "ClassSet";
inline constexpr const char* kWindowInstance = "Instance";

/// Stores `items` on a List widget (newline-joined; items must not
/// contain newlines — enforced by replacing them with spaces).
void SetListItems(InterfaceObject* list, const std::vector<std::string>& items);

/// Reads back the items stored by SetListItems.
std::vector<std::string> GetListItems(const InterfaceObject& list);

/// Selects item `index` (clamped); fires a "select" event.
void SelectListItem(InterfaceObject* list, size_t index);

/// The currently selected item text; empty when nothing is selected.
std::string SelectedListItem(const InterfaceObject& list);

}  // namespace agis::uilib

#endif  // AGIS_UILIB_WIDGET_PROPS_H_
