#include "uilib/serialize.h"

#include <cctype>

#include "base/strutil.h"

namespace agis::uilib {

namespace {

agis::Result<WidgetKind> KindFromName(const std::string& name) {
  static const std::pair<const char*, WidgetKind> kKinds[] = {
      {"Window", WidgetKind::kWindow},
      {"Panel", WidgetKind::kPanel},
      {"TextField", WidgetKind::kTextField},
      {"DrawingArea", WidgetKind::kDrawingArea},
      {"List", WidgetKind::kList},
      {"Button", WidgetKind::kButton},
      {"Menu", WidgetKind::kMenu},
      {"MenuItem", WidgetKind::kMenuItem},
  };
  for (const auto& [kind_name, kind] : kKinds) {
    if (name == kind_name) return kind;
  }
  return agis::Status::ParseError(
      agis::StrCat("unknown widget kind '", name, "'"));
}

void AppendNode(const InterfaceObject& node, int indent, std::string* out) {
  const std::string pad = agis::Repeat("  ", static_cast<size_t>(indent));
  out->append(pad);
  out->append(WidgetKindName(node.kind()));
  out->append(" \"");
  out->append(EscapeDefinitionString(node.name()));
  out->append("\" {\n");
  for (const auto& [key, value] : node.properties()) {
    out->append(pad);
    out->append("  @");
    out->append(key);
    out->append(" \"");
    out->append(EscapeDefinitionString(value));
    out->append("\"\n");
  }
  for (const auto& [event, callback] : node.AllBindings()) {
    out->append(pad);
    out->append("  !");
    out->append(event);
    out->append(" \"");
    out->append(EscapeDefinitionString(callback));
    out->append("\"\n");
  }
  for (const auto& child : node.children()) {
    AppendNode(*child, indent + 1, out);
  }
  out->append(pad);
  out->append("}\n");
}

/// Token scanner for the definition format.
class DefScanner {
 public:
  explicit DefScanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '#') {  // Comment to end of line.
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        if (c == '\n') ++line_;
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char PeekChar() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    if (PeekChar() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  agis::Status Expect(char c) {
    if (!Consume(c)) {
      return Error(agis::StrCat("expected '", c, "'"));
    }
    return agis::Status::OK();
  }

  agis::Result<std::string> ReadWord() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  agis::Result<std::string> ReadQuotedString() {
    AGIS_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          default:
            return Error(agis::StrCat("bad escape '\\", esc, "'"));
        }
      } else if (c == '\n') {
        return Error("unterminated string literal");
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return Error("unterminated string literal");
    ++pos_;  // Closing quote.
    return out;
  }

  agis::Status Error(const std::string& message) const {
    return agis::Status::ParseError(
        agis::StrCat("definition line ", line_, ": ", message));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

agis::Result<std::unique_ptr<InterfaceObject>> ParseNode(DefScanner* scanner) {
  AGIS_ASSIGN_OR_RETURN(std::string kind_name, scanner->ReadWord());
  AGIS_ASSIGN_OR_RETURN(WidgetKind kind, KindFromName(kind_name));
  AGIS_ASSIGN_OR_RETURN(std::string name, scanner->ReadQuotedString());
  auto node = MakeWidget(kind, std::move(name));
  AGIS_RETURN_IF_ERROR(scanner->Expect('{'));
  while (!scanner->AtEnd() && scanner->PeekChar() != '}') {
    if (scanner->Consume('@')) {
      AGIS_ASSIGN_OR_RETURN(std::string key, scanner->ReadWord());
      AGIS_ASSIGN_OR_RETURN(std::string value, scanner->ReadQuotedString());
      node->SetProperty(key, std::move(value));
      continue;
    }
    if (scanner->Consume('!')) {
      AGIS_ASSIGN_OR_RETURN(std::string event, scanner->ReadWord());
      AGIS_ASSIGN_OR_RETURN(std::string callback,
                            scanner->ReadQuotedString());
      // Behavior is resolved locally by the receiving interface; the
      // placeholder makes firing observable.
      const std::string marker = agis::StrCat("fired_", callback);
      node->Bind(event, callback,
                 [marker](InterfaceObject& self, const UiEvent&) {
                   self.SetProperty(marker, "true");
                 });
      continue;
    }
    AGIS_ASSIGN_OR_RETURN(std::unique_ptr<InterfaceObject> child,
                          ParseNode(scanner));
    if (!node->CanContainChildren()) {
      return scanner->Error(
          agis::StrCat("widget kind ", WidgetKindName(node->kind()),
                       " cannot hold children"));
    }
    node->AddChild(std::move(child));
  }
  AGIS_RETURN_IF_ERROR(scanner->Expect('}'));
  return node;
}

}  // namespace

std::string EscapeDefinitionString(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string SerializeDefinition(const InterfaceObject& root) {
  std::string out;
  AppendNode(root, 0, &out);
  return out;
}

agis::Result<std::unique_ptr<InterfaceObject>> ParseDefinition(
    std::string_view text) {
  DefScanner scanner(text);
  AGIS_ASSIGN_OR_RETURN(std::unique_ptr<InterfaceObject> root,
                        ParseNode(&scanner));
  if (!scanner.AtEnd()) {
    return scanner.Error("trailing content after root widget");
  }
  return root;
}

}  // namespace agis::uilib
