#include "uilib/library.h"

#include <algorithm>

#include "base/strutil.h"

namespace agis::uilib {

agis::Status InterfaceObjectLibrary::RegisterPrototype(
    std::unique_ptr<InterfaceObject> prototype, std::string doc,
    bool allow_replace) {
  if (prototype == nullptr || prototype->name().empty()) {
    return agis::Status::InvalidArgument("prototype needs a name");
  }
  AGIS_RETURN_IF_ERROR(prototype->Validate());
  const std::string name = prototype->name();
  auto it = prototypes_.find(name);
  if (it != prototypes_.end()) {
    if (!allow_replace) {
      return agis::Status::AlreadyExists(
          agis::StrCat("prototype '", name, "'"));
    }
    it->second = Stored{std::move(prototype), std::move(doc)};
    return agis::Status::OK();
  }
  order_.push_back(name);
  prototypes_.emplace(name, Stored{std::move(prototype), std::move(doc)});
  return agis::Status::OK();
}

agis::Result<std::unique_ptr<InterfaceObject>>
InterfaceObjectLibrary::Instantiate(const std::string& name) const {
  auto it = prototypes_.find(name);
  if (it == prototypes_.end()) {
    return agis::Status::NotFound(
        agis::StrCat("prototype '", name, "' is not in the library"));
  }
  return it->second.prototype->Clone();
}

agis::Status InterfaceObjectLibrary::Specialize(
    const std::string& base_name, const std::string& new_name,
    const std::function<void(InterfaceObject&)>& mutate, std::string doc) {
  AGIS_ASSIGN_OR_RETURN(std::unique_ptr<InterfaceObject> clone,
                        Instantiate(base_name));
  clone->set_name(new_name);
  if (mutate) mutate(*clone);
  return RegisterPrototype(std::move(clone), std::move(doc));
}

agis::Status InterfaceObjectLibrary::RemovePrototype(const std::string& name) {
  auto it = prototypes_.find(name);
  if (it == prototypes_.end()) {
    return agis::Status::NotFound(agis::StrCat("prototype '", name, "'"));
  }
  prototypes_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), name), order_.end());
  return agis::Status::OK();
}

const InterfaceObject* InterfaceObjectLibrary::Peek(
    const std::string& name) const {
  auto it = prototypes_.find(name);
  return it == prototypes_.end() ? nullptr : it->second.prototype.get();
}

const std::string& InterfaceObjectLibrary::DocOf(
    const std::string& name) const {
  static const std::string* kEmpty = new std::string();
  auto it = prototypes_.find(name);
  return it == prototypes_.end() ? *kEmpty : it->second.doc;
}

agis::Status InterfaceObjectLibrary::RegisterKernelPrototypes() {
  struct KernelEntry {
    WidgetKind kind;
    const char* name;
    const char* doc;
  };
  const KernelEntry kKernel[] = {
      {WidgetKind::kWindow, "window", "root interaction container"},
      {WidgetKind::kPanel, "panel", "recursive control grouping"},
      {WidgetKind::kTextField, "text_field", "single text value"},
      {WidgetKind::kDrawingArea, "drawing_area",
       "cartographic presentation surface"},
      {WidgetKind::kList, "list", "scrolling choice list"},
      {WidgetKind::kButton, "button", "push button"},
      {WidgetKind::kMenu, "menu", "menu of items"},
      {WidgetKind::kMenuItem, "menu_item", "one menu entry"},
  };
  for (const KernelEntry& entry : kKernel) {
    AGIS_RETURN_IF_ERROR(
        RegisterPrototype(MakeWidget(entry.kind, entry.name), entry.doc));
  }
  return agis::Status::OK();
}

agis::Status RegisterStandardGisPrototypes(InterfaceObjectLibrary* library) {
  // poleWidget: the paper defines it as "a predefined composed widget
  // (defined as a slider)" for the Pole class control area.
  {
    auto pole = MakeWidget(WidgetKind::kPanel, "poleWidget");
    pole->SetProperty("label", "Poles");
    pole->SetProperty("style", "slider");
    auto* slider = pole->AddChild(
        MakeWidget(WidgetKind::kTextField, "pole_density_slider"));
    slider->SetProperty("role", "slider");
    slider->SetProperty("min", "0");
    slider->SetProperty("max", "100");
    slider->SetProperty("value", "100");
    auto* toggle = pole->AddChild(MakeWidget(WidgetKind::kButton, "show"));
    toggle->SetProperty("label", "Show");
    AGIS_RETURN_IF_ERROR(library->RegisterPrototype(
        std::move(pole), "slider-based class control (Figure 6, line 4)"));
  }

  // composed_text: one text field rendering several composed source
  // values; carries the notify() callback of Figure 6 line 9.
  {
    auto composed = MakeWidget(WidgetKind::kTextField, "composed_text");
    composed->SetProperty("role", "composed");
    composed->SetProperty("separator", " / ");
    composed->Bind(kUiChange, "composed_text.notify",
                   [](InterfaceObject& self, const UiEvent&) {
                     self.SetProperty("notified", "true");
                   });
    AGIS_RETURN_IF_ERROR(library->RegisterPrototype(
        std::move(composed),
        "text field composing several sources (Figure 6, line 7)"));
  }

  // map_selection_panel: Section 3.2's reuse example — a complex
  // component with lists for visualization/choice, a region text
  // field, and operation buttons.
  {
    auto panel = MakeWidget(WidgetKind::kPanel, "map_selection_panel");
    panel->SetProperty("label", "Map selection");
    panel->AddChild(MakeWidget(WidgetKind::kList, "available_maps"));
    panel->AddChild(MakeWidget(WidgetKind::kList, "chosen_maps"));
    auto* region =
        panel->AddChild(MakeWidget(WidgetKind::kTextField, "region_name"));
    region->SetProperty("label", "Region");
    auto* buttons = panel->AddChild(MakeWidget(WidgetKind::kPanel, "ops"));
    buttons->AddChild(MakeWidget(WidgetKind::kButton, "add"))
        ->SetProperty("label", "Add");
    buttons->AddChild(MakeWidget(WidgetKind::kButton, "remove"))
        ->SetProperty("label", "Remove");
    buttons->AddChild(MakeWidget(WidgetKind::kButton, "open"))
        ->SetProperty("label", "Open");
    AGIS_RETURN_IF_ERROR(library->RegisterPrototype(
        std::move(panel), "complex reusable map-selection component"));
  }

  // class_control: default control-area widget per class.
  {
    auto control = MakeWidget(WidgetKind::kPanel, "class_control");
    auto* toggle = control->AddChild(
        MakeWidget(WidgetKind::kButton, "visible_toggle"));
    toggle->SetProperty("label", "Visible");
    toggle->SetProperty("state", "on");
    AGIS_RETURN_IF_ERROR(library->RegisterPrototype(
        std::move(control), "default per-class control widget"));
  }

  // attribute_row: default Instance-window row (label + value field).
  {
    auto row = MakeWidget(WidgetKind::kPanel, "attribute_row");
    row->AddChild(MakeWidget(WidgetKind::kTextField, "attr_label"))
        ->SetProperty("role", "label");
    row->AddChild(MakeWidget(WidgetKind::kTextField, "attr_value"))
        ->SetProperty("role", "value");
    AGIS_RETURN_IF_ERROR(library->RegisterPrototype(
        std::move(row), "default attribute display row"));
  }
  return agis::Status::OK();
}

}  // namespace agis::uilib
