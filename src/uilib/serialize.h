#ifndef AGIS_UILIB_SERIALIZE_H_
#define AGIS_UILIB_SERIALIZE_H_

#include <memory>
#include <string>
#include <string_view>

#include "base/status.h"
#include "uilib/interface_object.h"

namespace agis::uilib {

/// The *interface definition* wire format of Figure 1: the generic
/// interface builder "generates a definition of a customized
/// interface [which] is sent back to the interface, to dynamically
/// generate the output screen objects". Under weak integration that
/// definition must be a concrete, parseable message — this is it.
///
/// Format (text, whitespace-insensitive between tokens):
///
///   Window "Class set: Pole" {
///     @window_type "ClassSet"
///     Panel "control" {
///       Button "show" { @label "Show" !click "toggle_visibility" }
///     }
///   }
///
/// `@key "value"` entries are properties; `!event "callback"` entries
/// are callback-binding declarations. String literals escape `\\`,
/// `\"`, `\n`, `\t`. Property maps serialize in sorted key order, so
/// serialization is deterministic.
std::string SerializeDefinition(const InterfaceObject& root);

/// Parses a definition back into a widget tree.
///
/// Callback *behavior* cannot travel in a textual message; bindings
/// are re-attached as named placeholders that set the property
/// "fired_<callback>" when triggered. A receiving interface resolves
/// real behavior by name against its own library (exactly the weak
/// integration contract: names shared, code local).
agis::Result<std::unique_ptr<InterfaceObject>> ParseDefinition(
    std::string_view text);

/// Escapes a string for embedding in a definition literal.
std::string EscapeDefinitionString(std::string_view raw);

}  // namespace agis::uilib

#endif  // AGIS_UILIB_SERIALIZE_H_
