#include "core/active_interface_system.h"

#include <algorithm>
#include <thread>

#include "base/logging.h"
#include "base/strutil.h"
#include "custlang/compiler.h"
#include "custlang/parser.h"

namespace agis::core {

ActiveInterfaceSystem::ActiveInterfaceSystem(std::string schema_name,
                                             SystemOptions options)
    : options_(options), compile_cache_(options.compile_cache_capacity) {
  db_ = std::make_unique<geodb::GeoDatabase>(std::move(schema_name),
                                             options.db);
  // One process-wide work-stealing scheduler shared by the rule
  // engine, the query path, and storage decode (0 = hardware default).
  scheduler_ = std::make_unique<agis::TaskScheduler>(options.ui_threads);
  ui_pool_ = std::make_unique<agis::ThreadPool>(scheduler_.get());
  db_->set_task_scheduler(scheduler_.get());
  engine_ = std::make_unique<active::RuleEngine>(options.conflict_policy);
  engine_->set_cache_capacity(options.customization_cache_capacity);
  engine_->set_task_scheduler(scheduler_.get());
  bridge_ = std::make_unique<active::DbEventBridge>(engine_.get());
  db_->AddEventSink(bridge_.get());
  if (options.changefeed_capacity > 0) {
    changefeed_ =
        std::make_unique<storage::Changefeed>(options.changefeed_capacity);
    db_->AddEventSink(changefeed_.get());
  }

  library_ = std::make_unique<uilib::InterfaceObjectLibrary>();
  styles_ = std::make_unique<carto::StyleRegistry>();
  if (options.register_standard_library) {
    AGIS_CHECK_OK(library_->RegisterKernelPrototypes());
    AGIS_CHECK_OK(uilib::RegisterStandardGisPrototypes(library_.get()));
    AGIS_CHECK_OK(styles_->RegisterStandardFormats());
  }

  builder_ = std::make_unique<builder::GenericInterfaceBuilder>(
      db_.get(), library_.get(), styles_.get());
  dispatcher_ = std::make_unique<ui::Dispatcher>(db_.get(), engine_.get(),
                                                 builder_.get());
  dispatcher_->set_scheduler(scheduler_.get());
  protocol_ = std::make_unique<ui::DbProtocol>(db_.get());
  topology_ =
      std::make_unique<active::TopologyGuard>(db_.get(), engine_.get());
}

ActiveInterfaceSystem::~ActiveInterfaceSystem() {
  (void)CloseStorage();
  if (changefeed_ != nullptr) db_->RemoveEventSink(changefeed_.get());
  db_->RemoveEventSink(bridge_.get());
}

agis::Result<std::vector<active::RuleId>>
ActiveInterfaceSystem::InstallCustomization(std::string_view directive_source) {
  custlang::Directive directive;
  bool parsed = false;
  if (const custlang::CompileCache::Entry* hit =
          compile_cache_.Find(directive_source)) {
    directive = hit->directive;  // Copy: a Put below may evict the entry.
  } else {
    AGIS_ASSIGN_OR_RETURN(directive,
                          custlang::ParseDirective(directive_source));
    parsed = true;
  }
  AGIS_ASSIGN_OR_RETURN(
      std::vector<active::RuleId> ids,
      InstallDirectiveInternal(directive, options_.persist_directives));
  if (parsed) {
    // Alias the verbatim text to the canonical entry so re-registering
    // the identical source skips the parse as well as the compile.
    const std::string canonical_source = directive.ToSource();
    if (canonical_source != directive_source) {
      if (const custlang::CompileCache::Entry* entry =
              compile_cache_.Peek(canonical_source)) {
        compile_cache_.Put(directive_source, entry->directive, entry->rules);
      }
    }
  }
  return ids;
}

agis::Result<std::vector<active::RuleId>>
ActiveInterfaceSystem::InstallDirective(const custlang::Directive& directive) {
  return InstallDirectiveInternal(directive, options_.persist_directives);
}

agis::Result<std::vector<active::RuleId>>
ActiveInterfaceSystem::InstallDirectiveInternal(
    const custlang::Directive& directive, bool persist) {
  // Analysis always runs: it validates against the live schema,
  // library, and access rights, which may have changed since a cached
  // compile.
  AGIS_RETURN_IF_ERROR(custlang::AnalyzeDirective(
      directive, db_->schema(), *library_, *styles_, access_checker_));
  const std::string source = directive.ToSource();
  std::vector<active::EcaRule> rules;
  if (const custlang::CompileCache::Entry* hit = compile_cache_.Find(source)) {
    rules = hit->rules;  // Compiled rules are pure data; reuse a copy.
  } else {
    rules = custlang::CompileDirective(directive);
    compile_cache_.Put(source, directive, rules);
  }
  std::vector<active::RuleId> ids;
  ids.reserve(rules.size());
  for (active::EcaRule& rule : rules) {
    AGIS_ASSIGN_OR_RETURN(active::RuleId id,
                          engine_->AddRule(std::move(rule)));
    ids.push_back(id);
  }
  if (persist) {
    AGIS_RETURN_IF_ERROR(PersistDirective(directive));
  }
  return ids;
}

agis::Status ActiveInterfaceSystem::EnsureDirectiveClass() {
  if (db_->schema().HasClass(kDirectiveClassName)) return agis::Status::OK();
  geodb::ClassDef cls(kDirectiveClassName,
                      "system storage for installed customization "
                      "directives");
  geodb::AttributeDef name = geodb::AttributeDef::String("directive_name");
  name.required = true;
  AGIS_RETURN_IF_ERROR(cls.AddAttribute(std::move(name)));
  AGIS_RETURN_IF_ERROR(
      cls.AddAttribute(geodb::AttributeDef::Text("directive_source")));
  return db_->RegisterClass(std::move(cls));
}

agis::Status ActiveInterfaceSystem::PersistDirective(
    const custlang::Directive& directive) {
  AGIS_RETURN_IF_ERROR(EnsureDirectiveClass());
  const std::string canonical = directive.CanonicalName();
  // Replace any previous copy under the same canonical name.
  geodb::Snapshot snap = db_->OpenSnapshot();
  AGIS_ASSIGN_OR_RETURN(std::vector<geodb::ObjectId> stored,
                        db_->ScanExtentAt(snap, kDirectiveClassName));
  for (geodb::ObjectId id : stored) {
    const geodb::ObjectInstance* obj = db_->FindObjectAt(snap, id);
    if (obj != nullptr &&
        obj->Get("directive_name").ToDisplayString() == canonical) {
      AGIS_RETURN_IF_ERROR(db_->Delete(id));
      break;
    }
  }
  snap.Release();
  const std::string source = directive.ToSource();
  AGIS_RETURN_IF_ERROR(
      db_->Insert(kDirectiveClassName,
                  {{"directive_name", geodb::Value::String(canonical)},
                   {"directive_source", geodb::Value::String(source)}})
          .status());
  if (store_ != nullptr) {
    AGIS_RETURN_IF_ERROR(store_->LogDirective(canonical, source));
  }
  return agis::Status::OK();
}

size_t ActiveInterfaceSystem::UninstallCustomization(
    const std::string& canonical_name) {
  const size_t removed = engine_->RemoveRulesByProvenance(canonical_name);
  if (db_->schema().HasClass(kDirectiveClassName)) {
    geodb::Snapshot snap = db_->OpenSnapshot();
    auto stored = db_->ScanExtentAt(snap, kDirectiveClassName);
    if (stored.ok()) {
      for (geodb::ObjectId id : stored.value()) {
        const geodb::ObjectInstance* obj = db_->FindObjectAt(snap, id);
        if (obj != nullptr &&
            obj->Get("directive_name").ToDisplayString() == canonical_name) {
          (void)db_->Delete(id);
          break;
        }
      }
    }
  }
  return removed;
}

std::vector<std::pair<std::string, std::string>>
ActiveInterfaceSystem::StoredDirectives() {
  std::vector<std::pair<std::string, std::string>> out;
  if (!db_->schema().HasClass(kDirectiveClassName)) return out;
  geodb::Snapshot snap = db_->OpenSnapshot();
  auto stored = db_->ScanExtentAt(snap, kDirectiveClassName);
  if (!stored.ok()) return out;
  for (geodb::ObjectId id : stored.value()) {
    const geodb::ObjectInstance* obj = db_->FindObjectAt(snap, id);
    if (obj == nullptr) continue;
    out.emplace_back(obj->Get("directive_name").ToDisplayString(),
                     obj->Get("directive_source").ToDisplayString());
  }
  return out;
}

agis::Status ActiveInterfaceSystem::OpenStorage(const std::string& dir,
                                                storage::StoreOptions options) {
  if (store_ != nullptr) {
    return agis::Status::FailedPrecondition(
        agis::StrCat("storage already open at '", store_->directory(), "'"));
  }
  AGIS_ASSIGN_OR_RETURN(store_,
                        storage::DurableStore::Open(dir, db_.get(), options,
                                                    scheduler_.get()));
  const agis::Status replayed = ReplayRecoveredDirectives();
  if (!replayed.ok()) {
    (void)CloseStorage();
    return replayed.WithContext("replaying recovered directives");
  }
  return agis::Status::OK();
}

agis::Status ActiveInterfaceSystem::ReplayRecoveredDirectives() {
  for (const auto& [canonical, source] : store_->recovery().directives) {
    if (engine_->CountRulesByProvenance(canonical) > 0) continue;
    custlang::Directive directive;
    if (const custlang::CompileCache::Entry* hit =
            compile_cache_.Find(source)) {
      directive = hit->directive;
    } else {
      AGIS_ASSIGN_OR_RETURN(directive, custlang::ParseDirective(source));
    }
    const agis::Status installed =
        InstallDirectiveInternal(directive, /*persist=*/false).status();
    if (installed.IsFailedPrecondition()) {
      // Analysis ran against a runtime environment the application has
      // not rebuilt yet — methods are host code and must be
      // re-registered after recovery (same contract as the text
      // import path). The directive stays stored as data;
      // ReloadCustomizations() installs it once the environment is
      // back.
      continue;
    }
    AGIS_RETURN_IF_ERROR(installed);
  }
  return agis::Status::OK();
}

agis::Status ActiveInterfaceSystem::SyncStorage() {
  if (store_ == nullptr) {
    return agis::Status::FailedPrecondition("storage is not open");
  }
  return store_->Sync();
}

agis::Status ActiveInterfaceSystem::CheckpointStorage() {
  if (store_ == nullptr) {
    return agis::Status::FailedPrecondition("storage is not open");
  }
  return store_->Checkpoint(StoredDirectives()).status();
}

agis::Status ActiveInterfaceSystem::CloseStorage() {
  if (store_ == nullptr) return agis::Status::OK();
  const agis::Status status = store_->Close();
  store_.reset();
  return status;
}

agis::Result<size_t> ActiveInterfaceSystem::ReloadCustomizations() {
  size_t reloaded = 0;
  for (const auto& [canonical, source] : StoredDirectives()) {
    if (engine_->CountRulesByProvenance(canonical) > 0) continue;
    custlang::Directive directive;
    if (const custlang::CompileCache::Entry* hit =
            compile_cache_.Find(source)) {
      directive = hit->directive;  // Stored sources are canonical.
    } else {
      AGIS_ASSIGN_OR_RETURN(directive, custlang::ParseDirective(source));
    }
    AGIS_RETURN_IF_ERROR(
        InstallDirectiveInternal(directive, /*persist=*/false).status());
    ++reloaded;
  }
  return reloaded;
}

}  // namespace agis::core
