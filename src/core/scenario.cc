#include "core/scenario.h"

#include "base/strutil.h"
#include "carto/ascii_renderer.h"
#include "carto/canvas.h"

namespace agis::core {

using geodb::ObjectId;
using geodb::ObjectInstance;
using geodb::Value;

ScenarioSandbox::ScenarioSandbox(geodb::GeoDatabase* db,
                                 active::TopologyGuard* guard)
    : db_(db), guard_(guard) {}

agis::Result<ObjectId> ScenarioSandbox::HypotheticalInsert(
    const std::string& class_name,
    std::vector<std::pair<std::string, Value>> values) {
  const geodb::ClassDef* cls = db_->schema().FindClass(class_name);
  if (cls == nullptr) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  // Type-check each value against the schema before recording.
  for (const auto& [attr, value] : values) {
    const geodb::AttributeDef* def =
        db_->schema().FindAttributeOf(class_name, attr);
    if (def == nullptr) {
      return agis::Status::NotFound(
          agis::StrCat("class '", class_name, "' has no attribute '", attr,
                       "'"));
    }
    AGIS_RETURN_IF_ERROR(CheckValueType(db_->schema(), *def, value));
  }
  const ObjectId id = next_provisional_++;
  ObjectInstance instance(id, class_name);
  for (const auto& [attr, value] : values) instance.Set(attr, value);
  provisional_.emplace(id, std::move(instance));
  Op op;
  op.kind = OpKind::kInsert;
  op.id = id;
  op.class_name = class_name;
  op.values = std::move(values);
  ops_.push_back(std::move(op));
  return id;
}

agis::Status ScenarioSandbox::HypotheticalUpdate(ObjectId id,
                                                 const std::string& attribute,
                                                 Value value) {
  if (deleted_.count(id) != 0) {
    return agis::Status::FailedPrecondition(
        agis::StrCat("object ", id, " is hypothetically deleted"));
  }
  std::string class_name;
  if (IsProvisional(id)) {
    auto it = provisional_.find(id);
    if (it == provisional_.end()) {
      return agis::Status::NotFound(agis::StrCat("provisional object ", id));
    }
    class_name = it->second.class_name();
  } else {
    const geodb::Snapshot snap = db_->OpenSnapshot();
    const ObjectInstance* base = db_->FindObjectAt(snap, id);
    if (base == nullptr) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    class_name = base->class_name();
  }
  const geodb::AttributeDef* def =
      db_->schema().FindAttributeOf(class_name, attribute);
  if (def == nullptr) {
    return agis::Status::NotFound(
        agis::StrCat("class '", class_name, "' has no attribute '",
                     attribute, "'"));
  }
  AGIS_RETURN_IF_ERROR(CheckValueType(db_->schema(), *def, value));

  if (IsProvisional(id)) {
    provisional_.at(id).Set(attribute, value);
  } else {
    overlays_[id][attribute] = value;
  }
  Op op;
  op.kind = OpKind::kUpdate;
  op.id = id;
  op.class_name = class_name;
  op.attribute = attribute;
  op.value = std::move(value);
  ops_.push_back(std::move(op));
  return agis::Status::OK();
}

agis::Status ScenarioSandbox::HypotheticalDelete(ObjectId id) {
  std::string class_name;
  if (IsProvisional(id)) {
    auto it = provisional_.find(id);
    if (it == provisional_.end()) {
      return agis::Status::NotFound(agis::StrCat("provisional object ", id));
    }
    class_name = it->second.class_name();
  } else {
    const geodb::Snapshot snap = db_->OpenSnapshot();
    const ObjectInstance* base = db_->FindObjectAt(snap, id);
    if (base == nullptr) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    class_name = base->class_name();
  }
  deleted_.insert(id);
  Op op;
  op.kind = OpKind::kDelete;
  op.id = id;
  op.class_name = class_name;
  ops_.push_back(std::move(op));
  return agis::Status::OK();
}

std::optional<ObjectInstance> ScenarioSandbox::EffectiveObject(
    ObjectId id) const {
  if (deleted_.count(id) != 0) return std::nullopt;
  if (IsProvisional(id)) {
    auto it = provisional_.find(id);
    if (it == provisional_.end()) return std::nullopt;
    return it->second;
  }
  const geodb::Snapshot snap = db_->OpenSnapshot();
  const ObjectInstance* base = db_->FindObjectAt(snap, id);
  if (base == nullptr) return std::nullopt;
  ObjectInstance effective = *base;
  auto overlay = overlays_.find(id);
  if (overlay != overlays_.end()) {
    for (const auto& [attr, value] : overlay->second) {
      effective.Set(attr, value);
    }
  }
  return effective;
}

agis::Result<std::vector<ObjectId>> ScenarioSandbox::EffectiveExtent(
    const std::string& class_name) const {
  AGIS_ASSIGN_OR_RETURN(std::vector<ObjectId> ids,
                        db_->ScanExtent(class_name));
  ids.erase(std::remove_if(ids.begin(), ids.end(),
                           [this](ObjectId id) {
                             return deleted_.count(id) != 0;
                           }),
            ids.end());
  for (const auto& [id, instance] : provisional_) {
    if (instance.class_name() == class_name && deleted_.count(id) == 0) {
      ids.push_back(id);
    }
  }
  return ids;
}

agis::Result<std::string> ScenarioSandbox::RenderWhatIf(
    const std::string& class_name, const carto::StyleRegistry& styles,
    int width, int height) const {
  const std::string geom_attr = db_->GeometryAttributeOf(class_name);
  if (geom_attr.empty()) {
    return agis::Status::FailedPrecondition(
        agis::StrCat("class '", class_name, "' has no geometry"));
  }
  AGIS_ASSIGN_OR_RETURN(std::vector<ObjectId> ids,
                        EffectiveExtent(class_name));
  std::vector<carto::StyledFeature> features;
  for (ObjectId id : ids) {
    const auto instance = EffectiveObject(id);
    if (!instance.has_value()) continue;
    const Value& gv = instance->Get(geom_attr);
    if (gv.is_null()) continue;
    carto::StyledFeature feature;
    feature.id = id;
    feature.geometry = gv.geometry_value();
    const bool hypothetical =
        IsProvisional(id) ||
        (overlays_.count(id) != 0 &&
         overlays_.at(id).count(geom_attr) != 0);
    feature.style = hypothetical ? "highlightFormat" : "defaultFormat";
    features.push_back(std::move(feature));
  }
  const geom::BoundingBox viewport = carto::MapCanvas::FitBounds(features);
  carto::MapCanvas canvas(viewport, width, height);
  for (carto::StyledFeature& f : features) canvas.AddFeature(std::move(f));
  const carto::AsciiRenderer renderer(&styles);
  return renderer.RenderFramed(canvas);
}

std::vector<std::pair<ObjectId, agis::Status>>
ScenarioSandbox::CheckConstraints() const {
  std::vector<std::pair<ObjectId, agis::Status>> out;
  if (guard_ == nullptr) return out;
  // Check the final effective geometry of every touched object.
  std::set<ObjectId> touched;
  for (const Op& op : ops_) {
    if (op.kind != OpKind::kDelete) touched.insert(op.id);
  }
  for (ObjectId id : touched) {
    const auto instance = EffectiveObject(id);
    if (!instance.has_value()) continue;  // Deleted later in the scenario.
    const std::string geom_attr =
        db_->GeometryAttributeOf(instance->class_name());
    if (geom_attr.empty()) continue;
    const Value& gv = instance->Get(geom_attr);
    if (gv.is_null()) continue;
    const agis::Status status = guard_->CheckHypothetical(
        instance->class_name(), gv.geometry_value(),
        IsProvisional(id) ? 0 : id);
    if (!status.ok()) out.emplace_back(id, status);
  }
  return out;
}

agis::Result<ScenarioSandbox::CommitOutcome> ScenarioSandbox::Commit(
    const UserContext& ctx) {
  CommitOutcome outcome;
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kInsert: {
        auto inserted = db_->Insert(op.class_name, op.values, ctx);
        if (inserted.ok()) {
          outcome.id_mapping[op.id] = inserted.value();
          ++outcome.applied;
        } else {
          outcome.rejected.emplace_back(
              agis::StrCat("insert ", op.class_name), inserted.status());
        }
        break;
      }
      case OpKind::kUpdate: {
        // Provisional targets resolve through the id mapping; if the
        // insert was rejected, the update is skipped as rejected too.
        ObjectId target = op.id;
        if (IsProvisional(target)) {
          auto mapped = outcome.id_mapping.find(target);
          if (mapped == outcome.id_mapping.end()) {
            outcome.rejected.emplace_back(
                agis::StrCat("update of unapplied insert ", op.id),
                agis::Status::FailedPrecondition("insert was rejected"));
            break;
          }
          target = mapped->second;
        }
        const agis::Status status =
            db_->Update(target, op.attribute, op.value, ctx);
        if (status.ok()) {
          ++outcome.applied;
        } else {
          outcome.rejected.emplace_back(
              agis::StrCat("update ", op.class_name, "#", target, ".",
                           op.attribute),
              status);
        }
        break;
      }
      case OpKind::kDelete: {
        ObjectId target = op.id;
        if (IsProvisional(target)) {
          auto mapped = outcome.id_mapping.find(target);
          if (mapped == outcome.id_mapping.end()) {
            break;  // Deleting a rejected insert: nothing to do.
          }
          target = mapped->second;
        }
        const agis::Status status = db_->Delete(target, ctx);
        if (status.ok()) {
          ++outcome.applied;
        } else {
          outcome.rejected.emplace_back(
              agis::StrCat("delete ", op.class_name, "#", target), status);
        }
        break;
      }
    }
  }
  Discard();
  return outcome;
}

void ScenarioSandbox::Discard() {
  ops_.clear();
  provisional_.clear();
  overlays_.clear();
  deleted_.clear();
}

}  // namespace agis::core
