#ifndef AGIS_CORE_ACTIVE_INTERFACE_SYSTEM_H_
#define AGIS_CORE_ACTIVE_INTERFACE_SYSTEM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "active/db_bridge.h"
#include "active/engine.h"
#include "active/topology_guard.h"
#include "base/status.h"
#include "base/task_scheduler.h"
#include "base/thread_pool.h"
#include "builder/interface_builder.h"
#include "carto/style.h"
#include "custlang/analyzer.h"
#include "custlang/ast.h"
#include "custlang/compile_cache.h"
#include "geodb/database.h"
#include "storage/changefeed.h"
#include "storage/store.h"
#include "ui/dispatcher.h"
#include "ui/protocol.h"
#include "uilib/library.h"

namespace agis::core {

/// Configuration of a complete system instance.
struct SystemOptions {
  geodb::DatabaseOptions db;
  active::ConflictPolicy conflict_policy =
      active::ConflictPolicy::kMostSpecific;
  /// Register the kernel + standard GIS prototypes and the standard
  /// presentation formats (on by default; benches that measure bare
  /// library population turn this off).
  bool register_standard_library = true;
  /// Store installed directives as database objects (the paper:
  /// "customization rules stored in the database are derived from
  /// assertives written in this language"), enabling
  /// ReloadCustomizations after a rule-engine reset.
  bool persist_directives = true;
  /// Capacity of the engine's memoized-customization cache (0
  /// disables memoization).
  size_t customization_cache_capacity = 1024;
  /// Workers in the process-wide task scheduler shared by batched
  /// customization resolution, parallel Get_Class scans, and snapshot
  /// block decode. 0 picks a default from the hardware; 1 still
  /// creates a scheduler (serialized fan-out). Kept under its
  /// historical name — it used to size a UI-only dispatch pool.
  size_t ui_threads = 0;
  /// Capacity of the directive compile cache: re-registering an
  /// identical directive (same text) skips the parse and compile
  /// phases. 0 disables the cache.
  size_t compile_cache_capacity = 128;
  /// Ring capacity of the write changefeed (delta stream consumed by
  /// incremental view maintenance; see storage::Changefeed). 0 skips
  /// creating the feed entirely.
  size_t changefeed_capacity = 4096;
};

/// Name of the system class holding persisted directives. Classes
/// with the "__" prefix are system-internal and hidden from Schema
/// windows.
inline constexpr const char* kDirectiveClassName = "__CustomizationDirective";

/// The paper's full architecture (Figure 1) assembled: a geographic
/// database, the active mechanism bridged to its event stream, the
/// interface objects library with its style registry, the generic
/// interface builder, and the dispatcher-based GIS interface on top.
///
/// Typical use:
///
///   core::ActiveInterfaceSystem sys("phone_net");
///   // ... register classes, insert data ...
///   sys.InstallCustomization(directive_source);       // Section 3.4
///   sys.dispatcher().set_context({.user = "juliano",
///                                 .application = "pole_manager"});
///   sys.dispatcher().OpenSchemaWindow();              // Section 4 flow
class ActiveInterfaceSystem {
 public:
  explicit ActiveInterfaceSystem(std::string schema_name,
                                 SystemOptions options = SystemOptions());
  ~ActiveInterfaceSystem();

  ActiveInterfaceSystem(const ActiveInterfaceSystem&) = delete;
  ActiveInterfaceSystem& operator=(const ActiveInterfaceSystem&) = delete;

  geodb::GeoDatabase& db() { return *db_; }
  active::RuleEngine& engine() { return *engine_; }
  uilib::InterfaceObjectLibrary& library() { return *library_; }
  carto::StyleRegistry& styles() { return *styles_; }
  builder::GenericInterfaceBuilder& builder() { return *builder_; }
  ui::Dispatcher& dispatcher() { return *dispatcher_; }
  ui::DbProtocol& protocol() { return *protocol_; }
  active::TopologyGuard& topology() { return *topology_; }
  /// The process-wide work-stealing scheduler every parallel path
  /// shares: rule-batch dispatch, parallel Get_Class residual scans,
  /// and snapshot block decode.
  agis::TaskScheduler& scheduler() { return *scheduler_; }
  /// DEPRECATED adapter over scheduler() kept for callers that still
  /// pass a ThreadPool; it owns no threads of its own.
  agis::ThreadPool& ui_pool() { return *ui_pool_; }

  /// Parses, analyzes, compiles, and installs a customization
  /// directive. Returns the installed rule ids. The directive's
  /// CanonicalName() keys later uninstallation.
  agis::Result<std::vector<active::RuleId>> InstallCustomization(
      std::string_view directive_source);

  /// Installs an already-parsed directive (still analyzed first).
  agis::Result<std::vector<active::RuleId>> InstallDirective(
      const custlang::Directive& directive);

  /// Removes every rule compiled from the named directive (and its
  /// persisted copy); returns the number of rules removed.
  size_t UninstallCustomization(const std::string& canonical_name);

  /// Directives persisted in the database, as (canonical name, source).
  std::vector<std::pair<std::string, std::string>> StoredDirectives();

  /// Re-compiles and re-installs every persisted directive whose rules
  /// are not currently loaded (e.g. after a rule-engine reset).
  /// Returns the number of directives (re)installed.
  agis::Result<size_t> ReloadCustomizations();

  /// Sets the access-rights hook consulted during directive analysis.
  void set_access_checker(custlang::AccessChecker checker) {
    access_checker_ = std::move(checker);
  }

  // ---- Durable storage (binary snapshots + write-ahead log) --------------

  /// Opens durable storage rooted at `dir`: recovers the latest valid
  /// snapshot plus the WAL tail into the database, re-installs the
  /// recovered customization directives, and attaches so every
  /// subsequent write (and directive registration) is WAL-logged.
  ///
  /// Directives whose analysis needs runtime state the application has
  /// not rebuilt yet (methods are host callbacks, never persisted) are
  /// left stored but not installed; re-register the methods and call
  /// ReloadCustomizations(), exactly as after a text import.
  ///
  /// Call before inserting data. Schema registered so far is captured
  /// (the new WAL generation opens with a catalog dump); objects
  /// inserted before the store attached are not. The text `agisdb`
  /// format (ui::DbProtocol Save/Load) remains available as an
  /// import/export path — it does not participate in durability.
  agis::Status OpenStorage(const std::string& dir,
                           storage::StoreOptions options = {});

  /// Durability barrier: all acknowledged writes survive a crash once
  /// this returns OK.
  agis::Status SyncStorage();

  /// Writes a binary snapshot checkpoint (including the persisted
  /// directives) without blocking writers, then prunes superseded
  /// generations.
  agis::Status CheckpointStorage();

  /// Final sync and detach. Idempotent; also run by the destructor.
  agis::Status CloseStorage();

  bool storage_open() const { return store_ != nullptr; }
  storage::DurableStore* storage() { return store_.get(); }

  /// The write changefeed, fed by the same event stream that feeds the
  /// WAL; null when SystemOptions::changefeed_capacity is 0.
  /// Subscribers (ui::ViewRefresher::AttachChangefeed) consume its
  /// deltas to patch windows incrementally.
  storage::Changefeed* changefeed() { return changefeed_.get(); }

  /// Changefeed counters (zeroed when the feed is disabled).
  storage::ChangefeedStats changefeed_stats() const {
    return changefeed_ != nullptr ? changefeed_->stats()
                                  : storage::ChangefeedStats{};
  }

  /// Storage counters (zeroed when no store is open), surfaced
  /// alongside db().stats().
  storage::StorageStats storage_stats() const {
    return store_ != nullptr ? store_->stats() : storage::StorageStats{};
  }

  /// Directive compile-cache counters (hits = parse+compile skipped).
  custlang::CompileCache::Stats compile_cache_stats() const {
    return compile_cache_.stats();
  }

 private:
  /// Registers the system directive class on first use.
  agis::Status EnsureDirectiveClass();
  agis::Status PersistDirective(const custlang::Directive& directive);
  agis::Result<std::vector<active::RuleId>> InstallDirectiveInternal(
      const custlang::Directive& directive, bool persist);
  /// Re-installs directives recovered from durable storage
  /// (persist=false: their stored copies were recovered with the data).
  agis::Status ReplayRecoveredDirectives();

  SystemOptions options_;
  std::unique_ptr<geodb::GeoDatabase> db_;
  /// Declared right after db_: destroyed after every component that
  /// submits to it (the drain may still touch db_), before db_ itself.
  std::unique_ptr<agis::TaskScheduler> scheduler_;
  std::unique_ptr<agis::ThreadPool> ui_pool_;
  std::unique_ptr<active::RuleEngine> engine_;
  std::unique_ptr<active::DbEventBridge> bridge_;
  std::unique_ptr<storage::Changefeed> changefeed_;
  std::unique_ptr<uilib::InterfaceObjectLibrary> library_;
  std::unique_ptr<carto::StyleRegistry> styles_;
  std::unique_ptr<builder::GenericInterfaceBuilder> builder_;
  std::unique_ptr<ui::Dispatcher> dispatcher_;
  std::unique_ptr<ui::DbProtocol> protocol_;
  std::unique_ptr<active::TopologyGuard> topology_;
  custlang::AccessChecker access_checker_;
  custlang::CompileCache compile_cache_;
  /// Declared last: the store detaches from db_ before anything else
  /// is torn down.
  std::unique_ptr<storage::DurableStore> store_;
};

}  // namespace agis::core

#endif  // AGIS_CORE_ACTIVE_INTERFACE_SYSTEM_H_
