#ifndef AGIS_CORE_SCENARIO_H_
#define AGIS_CORE_SCENARIO_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "active/topology_guard.h"
#include "base/status.h"
#include "carto/style.h"
#include "geodb/database.h"

namespace agis::core {

/// The *simulation* interaction mode ("users build scenarios to test
/// their hypotheses", Section 2.2): a set of hypothetical edits layered
/// over the base database.
///
/// Hypothetical inserts/updates/deletes are recorded locally — the
/// base database never sees them until `Commit`. The sandbox can
///  - materialize the *effective* extent of a class (base ∪ inserts ∖
///    deletes, with updates applied),
///  - render a what-if map where hypothetical features stand out in
///    `highlightFormat`,
///  - pre-check hypothetical geometries against the installed topology
///    constraints (each hypothesis vs. committed data; interactions
///    *between* hypotheses surface at commit time, when earlier ops
///    have been applied),
///  - `Commit` all ops in order through the normal write path (events
///    fire, constraint rules may still veto individual ops) or
///    `Discard` everything.
///
/// Provisional object ids for hypothetical inserts live far above any
/// real id (>= kProvisionalBase) so they never collide.
class ScenarioSandbox {
 public:
  static constexpr geodb::ObjectId kProvisionalBase = 1ULL << 62;

  /// `db` must outlive the sandbox; `guard` is optional (nullptr =
  /// no constraint pre-checks).
  explicit ScenarioSandbox(geodb::GeoDatabase* db,
                           active::TopologyGuard* guard = nullptr);

  ScenarioSandbox(const ScenarioSandbox&) = delete;
  ScenarioSandbox& operator=(const ScenarioSandbox&) = delete;

  // ---- Hypothetical edits -------------------------------------------------

  /// Validates against the schema and records the insert; returns the
  /// provisional id.
  agis::Result<geodb::ObjectId> HypotheticalInsert(
      const std::string& class_name,
      std::vector<std::pair<std::string, geodb::Value>> values);

  /// Updates a base object or a provisional one.
  agis::Status HypotheticalUpdate(geodb::ObjectId id,
                                  const std::string& attribute,
                                  geodb::Value value);

  agis::Status HypotheticalDelete(geodb::ObjectId id);

  size_t PendingOps() const { return ops_.size(); }

  // ---- Effective state ----------------------------------------------------

  /// The effective instance (base + overlay); nullopt when deleted or
  /// unknown. Returned by value because it may be synthesized.
  std::optional<geodb::ObjectInstance> EffectiveObject(
      geodb::ObjectId id) const;

  /// Effective extent ids of `class_name` (base order, then
  /// provisional inserts).
  agis::Result<std::vector<geodb::ObjectId>> EffectiveExtent(
      const std::string& class_name) const;

  /// ASCII what-if map of `class_name`: committed features in their
  /// default format, hypothetical (inserted or geometry-updated) ones
  /// in highlightFormat, deleted ones gone.
  agis::Result<std::string> RenderWhatIf(const std::string& class_name,
                                         const carto::StyleRegistry& styles,
                                         int width = 60,
                                         int height = 20) const;

  // ---- Analysis & lifecycle -----------------------------------------------

  /// Pre-checks every hypothetical geometry against the topology
  /// constraints; one entry per violating pending op.
  std::vector<std::pair<geodb::ObjectId, agis::Status>> CheckConstraints()
      const;

  struct CommitOutcome {
    size_t applied = 0;
    /// (description, status) for ops the write path rejected.
    std::vector<std::pair<std::string, agis::Status>> rejected;
    /// Provisional id -> real id for committed inserts.
    std::map<geodb::ObjectId, geodb::ObjectId> id_mapping;
  };

  /// Applies all pending ops in order through the normal (rule-guarded)
  /// write path and clears the scenario. Rejected ops are reported,
  /// not retried.
  agis::Result<CommitOutcome> Commit(const UserContext& ctx = UserContext());

  void Discard();

 private:
  enum class OpKind { kInsert, kUpdate, kDelete };
  struct Op {
    OpKind kind;
    geodb::ObjectId id = 0;  // Provisional for inserts.
    std::string class_name;
    std::string attribute;   // kUpdate.
    geodb::Value value;      // kUpdate.
    std::vector<std::pair<std::string, geodb::Value>> values;  // kInsert.
  };

  bool IsProvisional(geodb::ObjectId id) const {
    return id >= kProvisionalBase;
  }

  geodb::GeoDatabase* db_;
  active::TopologyGuard* guard_;
  std::vector<Op> ops_;
  /// Materialized provisional instances.
  std::map<geodb::ObjectId, geodb::ObjectInstance> provisional_;
  /// Attribute overlays for base objects.
  std::map<geodb::ObjectId, std::map<std::string, geodb::Value>> overlays_;
  std::set<geodb::ObjectId> deleted_;
  geodb::ObjectId next_provisional_ = kProvisionalBase;
};

}  // namespace agis::core

#endif  // AGIS_CORE_SCENARIO_H_
