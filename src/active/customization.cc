#include "active/customization.h"

#include "base/strutil.h"

namespace agis::active {

const char* SchemaDisplayModeName(SchemaDisplayMode mode) {
  switch (mode) {
    case SchemaDisplayMode::kDefault:
      return "default";
    case SchemaDisplayMode::kHierarchy:
      return "hierarchy";
    case SchemaDisplayMode::kUserDefined:
      return "user-defined";
    case SchemaDisplayMode::kNull:
      return "Null";
  }
  return "?";
}

std::string AttributeCustomization::ToString() const {
  std::string out = agis::StrCat("display attribute ", attribute, " as ",
                                 hidden ? "Null" : widget);
  if (!sources.empty()) {
    out += agis::StrCat(" from ", agis::Join(sources, " "));
  }
  if (!callback.empty()) out += agis::StrCat(" using ", callback);
  return out;
}

const AttributeCustomization* WindowCustomization::FindAttribute(
    const std::string& attribute) const {
  for (const AttributeCustomization& a : attributes) {
    if (a.attribute == attribute) return &a;
  }
  return nullptr;
}

std::string WindowCustomization::ToString() const {
  std::string out;
  if (!target_class.empty()) {
    out += agis::StrCat("class ", target_class, " ");
  }
  out += agis::StrCat("schema_mode=", SchemaDisplayModeName(schema_mode));
  if (!auto_open_classes.empty()) {
    out += agis::StrCat(" auto_open=[", agis::Join(auto_open_classes, ","),
                        "]");
  }
  if (!control_widget.empty()) out += agis::StrCat(" control=", control_widget);
  if (!presentation_format.empty()) {
    out += agis::StrCat(" presentation=", presentation_format);
  }
  for (const AttributeCustomization& a : attributes) {
    out += agis::StrCat("; ", a.ToString());
  }
  return out;
}

}  // namespace agis::active
