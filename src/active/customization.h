#ifndef AGIS_ACTIVE_CUSTOMIZATION_H_
#define AGIS_ACTIVE_CUSTOMIZATION_H_

#include <string>
#include <vector>

namespace agis::active {

/// How a Schema window presents the class catalog (Figure 3's
/// `schema ... display as default|hierarchy|user-defined|Null`).
enum class SchemaDisplayMode { kDefault, kHierarchy, kUserDefined, kNull };

const char* SchemaDisplayModeName(SchemaDisplayMode mode);

/// Per-attribute customization inside an Instance window (Figure 3's
/// `display attribute <name> as <widget> [from ...] [using ...]`).
struct AttributeCustomization {
  std::string attribute;
  /// Interface-library prototype to render with; empty = default.
  std::string widget;
  /// `display attribute ... as Null`: the attribute panel is omitted.
  bool hidden = false;
  /// `from` clause: value sources composed into the widget — either
  /// dotted tuple-field paths ("pole.material") or a method call
  /// ("get_supplier_name(pole_supplier)").
  std::vector<std::string> sources;
  /// `using` clause: callback bound to the widget ("composed_text.notify()").
  std::string callback;

  std::string ToString() const;
};

/// The Action payload of one interface-customization rule: everything
/// the generic interface builder needs to deviate from the default
/// presentation of one window. This is deliberately *pure data* — the
/// active mechanism stores and selects it, the builder interprets it,
/// keeping the two sides independent (the paper's claim (3)).
struct WindowCustomization {
  /// Class this customization concerns ("" for Schema windows).
  std::string target_class;

  // ---- Schema-window directives ----
  SchemaDisplayMode schema_mode = SchemaDisplayMode::kDefault;
  /// Classes to open automatically when the Schema window is
  /// suppressed (`display as Null` + class clauses; Section 4's R1
  /// issues Get_Class(Pole) straight away).
  std::vector<std::string> auto_open_classes;

  // ---- Class-set-window directives ----
  /// `control as <widget>`: library prototype for the control area.
  std::string control_widget;
  /// `presentation as <format>`: symbolization for the map area.
  std::string presentation_format;

  // ---- Instance-window directives ----
  std::vector<AttributeCustomization> attributes;

  /// Finds the customization for `attribute`; nullptr when the
  /// attribute keeps its default presentation.
  const AttributeCustomization* FindAttribute(
      const std::string& attribute) const;

  std::string ToString() const;
};

}  // namespace agis::active

#endif  // AGIS_ACTIVE_CUSTOMIZATION_H_
