#ifndef AGIS_ACTIVE_ENGINE_H_
#define AGIS_ACTIVE_ENGINE_H_

#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "active/rule.h"
#include "base/status.h"
#include "base/task_scheduler.h"
#include "base/thread_pool.h"

namespace agis::active {

/// How competing customization rules are resolved.
enum class ConflictPolicy {
  /// The paper's execution model: only the single most specific
  /// matching rule runs (Section 3.3).
  kMostSpecific,
  /// Ablation for bench C2: run every matching rule in ascending
  /// specificity, merging payloads (later, more specific ones
  /// override).
  kExecuteAllMerge,
};

/// Engine statistics. Counter updates are internally synchronized and
/// stats() returns a copy taken under the counters' lock; values are
/// exact once the engine is quiescent.
struct EngineStats {
  uint64_t events_processed = 0;
  uint64_t customization_rules_fired = 0;
  uint64_t general_rules_fired = 0;
  /// Events that matched more than one customization rule and needed
  /// conflict resolution.
  uint64_t conflicts_resolved = 0;
  /// Customization memo: lookups served from the cache, lookups that
  /// had to resolve (including stale generations), and entries pushed
  /// out by the LRU capacity bound.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  /// Stale-generation entries dropped by the capacity sweep instead
  /// of being counted against live entries (they could never be
  /// served again; see EvictToCapacityLocked).
  uint64_t cache_stale_swept = 0;
  /// Counters of the attached shared TaskScheduler (zeroed when none
  /// is attached). The scheduler is shared with the query path and
  /// storage decode, so these reflect whole-process fan-out, not just
  /// engine batches.
  SchedulerStats scheduler;
};

/// The active mechanism: rule registration, event-driven selection,
/// and family-specific execution semantics.
///
/// Customization rules follow the paper's model — among all matching
/// rules, the one with the most restrictive context wins; ties are
/// broken by explicit priority boost, then by latest registration
/// (later rules refine earlier ones). General rules (constraint
/// maintenance, logging) all fire; the first failing action vetoes
/// the triggering operation. A depth guard bounds rule cascades.
///
/// Selection is indexed: every per-event candidate list is kept
/// sorted by effective priority at mutation time, and each event
/// bucket discriminates on its dominant `param_filters` key (for
/// `Get_Class` rules that is "class"), so a lookup touches only the
/// rules that could plausibly trigger. Resolved customizations are
/// memoized in a generation-stamped LRU cache keyed by
/// (event name, params, context); any rule mutation bumps the
/// generation and lazily invalidates. Customization actions are
/// therefore required to be deterministic for a given event — the
/// compiler-produced payload closures are.
///
/// Thread safety: rule lookup and customization resolution take a
/// shared lock and may run concurrently from many threads (see
/// GetCustomizationBatch); AddRule/RemoveRule/RemoveRulesByProvenance
/// take the exclusive lock. Rule actions execute with no engine lock
/// held, so actions may re-enter the engine (cascades, view refresh).
class RuleEngine {
 public:
  explicit RuleEngine(ConflictPolicy policy = ConflictPolicy::kMostSpecific);

  RuleEngine(const RuleEngine&) = delete;
  RuleEngine& operator=(const RuleEngine&) = delete;

  /// Registers a rule. Fails when the rule's action is missing or
  /// does not match its family.
  agis::Result<RuleId> AddRule(EcaRule rule);

  agis::Status RemoveRule(RuleId id);

  /// Removes every rule whose provenance equals `provenance`
  /// (uninstalling a compiled customization directive). Returns the
  /// number removed.
  size_t RemoveRulesByProvenance(const std::string& provenance);

  /// Number of installed rules carrying `provenance`.
  size_t CountRulesByProvenance(const std::string& provenance) const;

  size_t NumRules() const;
  const EcaRule* FindRule(RuleId id) const;

  /// All rules triggered by `event`, highest effective priority first
  /// (ties: later registration first). The returned pointers are valid
  /// until the next rule mutation.
  std::vector<const EcaRule*> MatchingRules(const Event& event) const;

  /// The customization rule that would win for `event`, or nullptr.
  const EcaRule* SelectCustomizationRule(const Event& event) const;

  /// Executes the customization family for `event` under the engine's
  /// conflict policy. nullopt = no matching rule (caller uses the
  /// generic default presentation).
  agis::Result<std::optional<WindowCustomization>> GetCustomization(
      const Event& event);

  /// Resolves a batch of events — one result per event, same order.
  /// With a scheduler, events resolve concurrently as scheduler tasks
  /// scoped by a TaskGroup (the read path is shared-lock safe, and
  /// the calling thread helps execute the batch instead of blocking);
  /// without one (and with no scheduler attached), sequentially.
  /// Passing nullptr uses the attached scheduler (set_task_scheduler).
  std::vector<agis::Result<std::optional<WindowCustomization>>>
  GetCustomizationBatch(const std::vector<Event>& events,
                        agis::TaskScheduler* scheduler = nullptr);

  /// DEPRECATED ThreadPool overload: forwards to the pool's
  /// underlying scheduler. Prefer the TaskScheduler form.
  std::vector<agis::Result<std::optional<WindowCustomization>>>
  GetCustomizationBatch(const std::vector<Event>& events,
                        agis::ThreadPool* pool) {
    return GetCustomizationBatch(events,
                                 pool != nullptr ? pool->scheduler() : nullptr);
  }

  /// Attaches the process-wide scheduler used when
  /// GetCustomizationBatch is called without one (non-owning; nullptr
  /// detaches). Setup-phase API: install before going concurrent.
  void set_task_scheduler(agis::TaskScheduler* scheduler) {
    scheduler_ = scheduler;
  }
  agis::TaskScheduler* task_scheduler() const { return scheduler_; }

  /// Executes every matching general rule; the first non-OK action
  /// status is returned (used as a write veto). Reentrant firing is
  /// depth-guarded (per thread).
  agis::Status FireGeneralRules(const Event& event);

  /// Pairs (shadowed, shadowing) of customization rules where the
  /// first can never be selected: same event selector, identical
  /// condition and boost, later registration wins ties. Diagnostic
  /// for application designers. Pairs are ordered by id.
  std::vector<std::pair<RuleId, RuleId>> FindShadowedRules() const;

  /// A consistent copy of the counters, taken under their lock (safe
  /// to call while other threads drive the engine). Scheduler
  /// counters are snapshotted from the attached scheduler.
  EngineStats stats() const {
    EngineStats out;
    {
      std::lock_guard<std::mutex> memo(memo_mutex_);
      out = stats_;
    }
    if (scheduler_ != nullptr) out.scheduler = scheduler_->stats();
    return out;
  }
  void ResetStats();
  ConflictPolicy policy() const { return policy_; }

  /// Maximum number of memoized customizations (0 disables the
  /// cache). Shrinking below the current size evicts immediately.
  void set_cache_capacity(size_t capacity);
  size_t cache_capacity() const;
  /// Entries currently resident (stale ones included until touched).
  size_t cache_size() const;

 private:
  /// One (priority, id) candidate; vectors of these are kept sorted
  /// descending, which is exactly "highest effective priority first,
  /// ties to the later registration".
  using Candidate = std::pair<int, RuleId>;

  /// Per-event-name index bucket. Candidates are partitioned on the
  /// bucket's dominant param_filters key: rules filtering on it live
  /// in `by_value[filter value]`, everything else in `rest`. A lookup
  /// merges `by_value[event param]` with `rest`, skipping the rules
  /// whose filter value cannot match.
  struct Bucket {
    std::string discriminator;  // Empty: no rule filters on params.
    std::map<std::string, std::vector<Candidate>> by_value;
    std::vector<Candidate> rest;
    /// How many rules filter on each param key (discriminator =
    /// argmax, ties to the lexicographically smallest key).
    std::map<std::string, size_t> key_counts;
    size_t customization_rules = 0;
    size_t total = 0;
  };

  /// Merges `overlay` (more specific) over `base` for the
  /// execute-all-merge ablation policy.
  static void MergeCustomization(const WindowCustomization& overlay,
                                 WindowCustomization* base);

  /// Unambiguous memo key over (event name, params, context).
  static std::string CacheKey(const Event& event);

  /// Walks the bucket's plausible candidates for `event` in priority
  /// order, invoking `fn(rule)`; `fn` returns false to stop early.
  template <typename Fn>
  void ForEachCandidate(const Bucket& bucket, const Event& event,
                        Fn&& fn) const;

  /// The dominant filter key for `bucket` under its current counts.
  static std::string PickDiscriminator(const Bucket& bucket);
  /// Which partition vector of `bucket` holds `rule`'s candidates.
  std::vector<Candidate>* PartitionOf(Bucket* bucket, const EcaRule& rule);
  /// Re-partitions `bucket` after its discriminator changed.
  void RepartitionBucket(Bucket* bucket);
  void IndexRule(Bucket* bucket, RuleId id, const EcaRule& rule);
  void UnindexRule(Bucket* bucket, RuleId id, const EcaRule& rule);
  /// Requires the exclusive lock: removes one rule from every index.
  void RemoveRuleLocked(std::map<RuleId, EcaRule>::iterator it);

  /// Requires memo_mutex_. Records a mutation: bumps the memo
  /// generation (lazy cache invalidation).
  void BumpGenerationLocked() { ++generation_; }
  /// Requires memo_mutex_. Brings the cache down to capacity: first
  /// sweeps out resident stale-generation entries (they can never be
  /// served again but still occupy slots), then LRU-evicts whatever
  /// live entries are still over the bound — so a generation bump
  /// cannot push the entire live working set out of the cache.
  void EvictToCapacityLocked();

  const ConflictPolicy policy_;

  /// Guards rules_, by_event_, by_provenance_, next_id_. Shared for
  /// lookup, exclusive for mutation.
  mutable std::shared_mutex mutex_;
  /// Rules keyed by id; map order == registration order.
  std::map<RuleId, EcaRule> rules_;
  std::map<std::string, Bucket> by_event_;
  std::map<std::string, std::vector<RuleId>> by_provenance_;
  RuleId next_id_ = 1;

  /// Shared scheduler for batch resolution (borrowed; may be null).
  agis::TaskScheduler* scheduler_ = nullptr;

  /// Guards stats_ and the customization memo (cache_, lru_,
  /// generation_, cache_capacity_).
  mutable std::mutex memo_mutex_;
  EngineStats stats_;
  struct CacheEntry {
    uint64_t generation;
    std::optional<WindowCustomization> payload;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, CacheEntry> cache_;
  std::list<std::string> lru_;  // Front = most recently used key.
  uint64_t generation_ = 0;
  /// Generation the last capacity sweep ran against; the sweep is
  /// O(cache size), so it runs at most once per generation.
  uint64_t last_swept_generation_ = 0;
  size_t cache_capacity_ = 1024;
};

}  // namespace agis::active

#endif  // AGIS_ACTIVE_ENGINE_H_
