#ifndef AGIS_ACTIVE_ENGINE_H_
#define AGIS_ACTIVE_ENGINE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "active/rule.h"
#include "base/status.h"

namespace agis::active {

/// How competing customization rules are resolved.
enum class ConflictPolicy {
  /// The paper's execution model: only the single most specific
  /// matching rule runs (Section 3.3).
  kMostSpecific,
  /// Ablation for bench C2: run every matching rule in ascending
  /// specificity, merging payloads (later, more specific ones
  /// override).
  kExecuteAllMerge,
};

/// Engine statistics.
struct EngineStats {
  uint64_t events_processed = 0;
  uint64_t customization_rules_fired = 0;
  uint64_t general_rules_fired = 0;
  /// Events that matched more than one customization rule and needed
  /// conflict resolution.
  uint64_t conflicts_resolved = 0;
};

/// The active mechanism: rule registration, event-driven selection,
/// and family-specific execution semantics.
///
/// Customization rules follow the paper's model — among all matching
/// rules, the one with the most restrictive context wins; ties are
/// broken by explicit priority boost, then by latest registration
/// (later rules refine earlier ones). General rules (constraint
/// maintenance, logging) all fire; the first failing action vetoes
/// the triggering operation. A depth guard bounds rule cascades.
class RuleEngine {
 public:
  explicit RuleEngine(ConflictPolicy policy = ConflictPolicy::kMostSpecific);

  RuleEngine(const RuleEngine&) = delete;
  RuleEngine& operator=(const RuleEngine&) = delete;

  /// Registers a rule. Fails when the rule's action is missing or
  /// does not match its family.
  agis::Result<RuleId> AddRule(EcaRule rule);

  agis::Status RemoveRule(RuleId id);

  /// Removes every rule whose provenance equals `provenance`
  /// (uninstalling a compiled customization directive). Returns the
  /// number removed.
  size_t RemoveRulesByProvenance(const std::string& provenance);

  /// Number of installed rules carrying `provenance`.
  size_t CountRulesByProvenance(const std::string& provenance) const;

  size_t NumRules() const { return rules_.size(); }
  const EcaRule* FindRule(RuleId id) const;

  /// All rules triggered by `event`, highest effective priority first
  /// (ties: later registration first).
  std::vector<const EcaRule*> MatchingRules(const Event& event) const;

  /// The customization rule that would win for `event`, or nullptr.
  const EcaRule* SelectCustomizationRule(const Event& event) const;

  /// Executes the customization family for `event` under the engine's
  /// conflict policy. nullopt = no matching rule (caller uses the
  /// generic default presentation).
  agis::Result<std::optional<WindowCustomization>> GetCustomization(
      const Event& event);

  /// Executes every matching general rule; the first non-OK action
  /// status is returned (used as a write veto). Reentrant firing is
  /// depth-guarded.
  agis::Status FireGeneralRules(const Event& event);

  /// Pairs (shadowed, shadowing) of customization rules where the
  /// first can never be selected: same event selector, identical
  /// condition and boost, later registration wins ties. Diagnostic
  /// for application designers.
  std::vector<std::pair<RuleId, RuleId>> FindShadowedRules() const;

  const EngineStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EngineStats(); }
  ConflictPolicy policy() const { return policy_; }

 private:
  /// Merges `overlay` (more specific) over `base` for the
  /// execute-all-merge ablation policy.
  static void MergeCustomization(const WindowCustomization& overlay,
                                 WindowCustomization* base);

  ConflictPolicy policy_;
  /// Rules keyed by id; map order == registration order.
  std::map<RuleId, EcaRule> rules_;
  /// Index: event name -> rule ids (ascending).
  std::map<std::string, std::vector<RuleId>> by_event_;
  RuleId next_id_ = 1;
  int cascade_depth_ = 0;
  EngineStats stats_;
};

}  // namespace agis::active

#endif  // AGIS_ACTIVE_ENGINE_H_
