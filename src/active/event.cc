#include "active/event.h"

#include "base/strutil.h"
#include "geom/wkt.h"

namespace agis::active {

const std::string& Event::Param(const std::string& key) const {
  static const std::string* kEmpty = new std::string();
  auto it = params.find(key);
  return it == params.end() ? *kEmpty : it->second;
}

std::string Event::ToString() const {
  std::string out = agis::StrCat(name, " ", context.ToString());
  for (const auto& [k, v] : params) {
    out += agis::StrCat(" ", k, "=", v);
  }
  return out;
}

Event FromDbEvent(const geodb::DbEvent& db_event) {
  Event e;
  e.name = geodb::DbEventKindName(db_event.kind);
  e.context = db_event.context;
  if (!db_event.schema_name.empty()) e.params["schema"] = db_event.schema_name;
  if (!db_event.class_name.empty()) e.params["class"] = db_event.class_name;
  if (db_event.object_id != 0) {
    e.params["object"] = agis::StrCat(db_event.object_id);
  }
  if (!db_event.attribute.empty()) e.params["attribute"] = db_event.attribute;
  if (!db_event.changed_attributes.empty()) {
    // Comma-joined changed-attribute names: rule conditions can test
    // which attributes a write touched without a second lookup.
    std::string changed;
    for (const std::string& attr : db_event.changed_attributes) {
      if (!changed.empty()) changed += ',';
      changed += attr;
    }
    e.params["changed"] = std::move(changed);
  }
  e.snapshot = db_event.snapshot;
  // Geometry payloads travel as WKT so constraint-rule actions can
  // validate writes without reaching back into the (still unmodified)
  // store for the incoming value.
  if (db_event.new_value.kind() == geodb::ValueKind::kGeometry) {
    e.params["new_wkt"] = geom::ToWkt(db_event.new_value.geometry_value());
  }
  if (db_event.old_value.kind() == geodb::ValueKind::kGeometry) {
    e.params["old_wkt"] = geom::ToWkt(db_event.old_value.geometry_value());
  }
  return e;
}

}  // namespace agis::active
