#include "active/rule.h"

#include "base/strutil.h"

namespace agis::active {

bool EcaRule::Triggers(const Event& event) const {
  if (event_name != event.name) return false;
  for (const auto& [key, want] : param_filters) {
    if (event.Param(key) != want) return false;
  }
  return condition.Matches(event.context);
}

std::string EcaRule::ToString() const {
  std::string out = agis::StrCat("rule ", name, ": On ", event_name);
  for (const auto& [key, want] : param_filters) {
    out += agis::StrCat("[", key, "=", want, "]");
  }
  out += agis::StrCat(" If ", condition.ToString(), " Then ");
  out += family == RuleFamily::kCustomization ? "<customize>" : "<action>";
  if (priority_boost != 0) {
    out += agis::StrCat(" (boost ", priority_boost, ")");
  }
  return out;
}

}  // namespace agis::active
