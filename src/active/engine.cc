#include "active/engine.h"

#include <algorithm>

#include "base/strutil.h"

namespace agis::active {

namespace {
/// Bound on reentrant general-rule cascades; deep recursion means a
/// rule set triggers itself, which the paper's customization family
/// rules out by construction but general rules could.
constexpr int kMaxCascadeDepth = 8;
}  // namespace

RuleEngine::RuleEngine(ConflictPolicy policy) : policy_(policy) {}

agis::Result<RuleId> RuleEngine::AddRule(EcaRule rule) {
  if (rule.event_name.empty()) {
    return agis::Status::InvalidArgument("rule needs an event name");
  }
  if (rule.family == RuleFamily::kCustomization &&
      !rule.customization_action) {
    return agis::Status::InvalidArgument(
        agis::StrCat("customization rule '", rule.name,
                     "' has no customization action"));
  }
  if (rule.family == RuleFamily::kGeneral && !rule.general_action) {
    return agis::Status::InvalidArgument(
        agis::StrCat("general rule '", rule.name, "' has no action"));
  }
  const RuleId id = next_id_++;
  by_event_[rule.event_name].push_back(id);
  rules_.emplace(id, std::move(rule));
  return id;
}

agis::Status RuleEngine::RemoveRule(RuleId id) {
  auto it = rules_.find(id);
  if (it == rules_.end()) {
    return agis::Status::NotFound(agis::StrCat("rule ", id));
  }
  auto& ids = by_event_[it->second.event_name];
  ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
  rules_.erase(it);
  return agis::Status::OK();
}

size_t RuleEngine::RemoveRulesByProvenance(const std::string& provenance) {
  std::vector<RuleId> victims;
  for (const auto& [id, rule] : rules_) {
    if (rule.provenance == provenance) victims.push_back(id);
  }
  for (RuleId id : victims) {
    (void)RemoveRule(id);
  }
  return victims.size();
}

size_t RuleEngine::CountRulesByProvenance(
    const std::string& provenance) const {
  size_t count = 0;
  for (const auto& [id, rule] : rules_) {
    if (rule.provenance == provenance) ++count;
  }
  return count;
}

const EcaRule* RuleEngine::FindRule(RuleId id) const {
  auto it = rules_.find(id);
  return it == rules_.end() ? nullptr : &it->second;
}

std::vector<const EcaRule*> RuleEngine::MatchingRules(
    const Event& event) const {
  std::vector<std::pair<RuleId, const EcaRule*>> hits;
  auto idx = by_event_.find(event.name);
  if (idx == by_event_.end()) return {};
  for (RuleId id : idx->second) {
    const EcaRule& rule = rules_.at(id);
    if (rule.Triggers(event)) hits.emplace_back(id, &rule);
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const auto& a, const auto& b) {
                     const int pa = a.second->EffectivePriority();
                     const int pb = b.second->EffectivePriority();
                     if (pa != pb) return pa > pb;
                     return a.first > b.first;  // Later registration wins.
                   });
  std::vector<const EcaRule*> out;
  out.reserve(hits.size());
  for (const auto& [id, rule] : hits) out.push_back(rule);
  return out;
}

const EcaRule* RuleEngine::SelectCustomizationRule(const Event& event) const {
  for (const EcaRule* rule : MatchingRules(event)) {
    if (rule->family == RuleFamily::kCustomization) return rule;
  }
  return nullptr;
}

agis::Result<std::optional<WindowCustomization>> RuleEngine::GetCustomization(
    const Event& event) {
  ++stats_.events_processed;
  std::vector<const EcaRule*> matching;
  for (const EcaRule* rule : MatchingRules(event)) {
    if (rule->family == RuleFamily::kCustomization) matching.push_back(rule);
  }
  if (matching.empty()) return std::optional<WindowCustomization>();
  if (matching.size() > 1) ++stats_.conflicts_resolved;

  if (policy_ == ConflictPolicy::kMostSpecific) {
    ++stats_.customization_rules_fired;
    AGIS_ASSIGN_OR_RETURN(WindowCustomization cust,
                          matching.front()->customization_action(event));
    return std::optional<WindowCustomization>(std::move(cust));
  }

  // kExecuteAllMerge: apply from most general to most specific.
  WindowCustomization merged;
  for (auto it = matching.rbegin(); it != matching.rend(); ++it) {
    ++stats_.customization_rules_fired;
    AGIS_ASSIGN_OR_RETURN(WindowCustomization layer,
                          (*it)->customization_action(event));
    MergeCustomization(layer, &merged);
  }
  return std::optional<WindowCustomization>(std::move(merged));
}

agis::Status RuleEngine::FireGeneralRules(const Event& event) {
  ++stats_.events_processed;
  if (cascade_depth_ >= kMaxCascadeDepth) {
    return agis::Status::FailedPrecondition(
        agis::StrCat("rule cascade exceeded depth ", kMaxCascadeDepth,
                     " at event ", event.name));
  }
  ++cascade_depth_;
  agis::Status status = agis::Status::OK();
  for (const EcaRule* rule : MatchingRules(event)) {
    if (rule->family != RuleFamily::kGeneral) continue;
    ++stats_.general_rules_fired;
    status = rule->general_action(event);
    if (!status.ok()) break;
  }
  --cascade_depth_;
  return status;
}

std::vector<std::pair<RuleId, RuleId>> RuleEngine::FindShadowedRules() const {
  std::vector<std::pair<RuleId, RuleId>> out;
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->second.family != RuleFamily::kCustomization) continue;
    for (auto jt = std::next(it); jt != rules_.end(); ++jt) {
      if (jt->second.family != RuleFamily::kCustomization) continue;
      const EcaRule& a = it->second;
      const EcaRule& b = jt->second;
      if (a.event_name == b.event_name && a.param_filters == b.param_filters &&
          a.condition == b.condition &&
          a.priority_boost == b.priority_boost) {
        out.emplace_back(it->first, jt->first);
      }
    }
  }
  return out;
}

void RuleEngine::MergeCustomization(const WindowCustomization& overlay,
                                    WindowCustomization* base) {
  if (!overlay.target_class.empty()) base->target_class = overlay.target_class;
  if (overlay.schema_mode != SchemaDisplayMode::kDefault) {
    base->schema_mode = overlay.schema_mode;
  }
  for (const std::string& cls : overlay.auto_open_classes) {
    if (std::find(base->auto_open_classes.begin(),
                  base->auto_open_classes.end(),
                  cls) == base->auto_open_classes.end()) {
      base->auto_open_classes.push_back(cls);
    }
  }
  if (!overlay.control_widget.empty()) {
    base->control_widget = overlay.control_widget;
  }
  if (!overlay.presentation_format.empty()) {
    base->presentation_format = overlay.presentation_format;
  }
  for (const AttributeCustomization& attr : overlay.attributes) {
    bool replaced = false;
    for (AttributeCustomization& existing : base->attributes) {
      if (existing.attribute == attr.attribute) {
        existing = attr;
        replaced = true;
        break;
      }
    }
    if (!replaced) base->attributes.push_back(attr);
  }
}

}  // namespace agis::active
