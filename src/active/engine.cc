#include "active/engine.h"

#include <algorithm>
#include <condition_variable>
#include <functional>

#include "base/strutil.h"

namespace agis::active {

namespace {
/// Bound on reentrant general-rule cascades; deep recursion means a
/// rule set triggers itself, which the paper's customization family
/// rules out by construction but general rules could. Per thread:
/// actions execute without engine locks, so concurrent threads each
/// carry their own cascade chain.
constexpr int kMaxCascadeDepth = 8;
thread_local int t_cascade_depth = 0;

using CustomizationAction =
    std::function<agis::Result<WindowCustomization>(const Event&)>;
using GeneralAction = std::function<agis::Status(const Event&)>;
}  // namespace

RuleEngine::RuleEngine(ConflictPolicy policy) : policy_(policy) {}

// ---- Selection index maintenance (exclusive lock held) -------------------

std::string RuleEngine::PickDiscriminator(const Bucket& bucket) {
  std::string best;
  size_t best_count = 0;
  for (const auto& [key, count] : bucket.key_counts) {
    if (count > best_count) {  // Ties keep the smallest key (map order).
      best = key;
      best_count = count;
    }
  }
  return best;
}

std::vector<RuleEngine::Candidate>* RuleEngine::PartitionOf(
    Bucket* bucket, const EcaRule& rule) {
  if (!bucket->discriminator.empty()) {
    auto it = rule.param_filters.find(bucket->discriminator);
    if (it != rule.param_filters.end()) return &bucket->by_value[it->second];
  }
  return &bucket->rest;
}

namespace {
void InsertSorted(std::vector<std::pair<int, RuleId>>* vec,
                  std::pair<int, RuleId> candidate) {
  vec->insert(std::lower_bound(vec->begin(), vec->end(), candidate,
                               std::greater<std::pair<int, RuleId>>()),
              candidate);
}
}  // namespace

void RuleEngine::RepartitionBucket(Bucket* bucket) {
  std::vector<Candidate> all;
  all.reserve(bucket->total);
  for (const auto& [value, vec] : bucket->by_value) {
    all.insert(all.end(), vec.begin(), vec.end());
  }
  all.insert(all.end(), bucket->rest.begin(), bucket->rest.end());
  bucket->by_value.clear();
  bucket->rest.clear();
  for (const Candidate& candidate : all) {
    InsertSorted(PartitionOf(bucket, rules_.at(candidate.second)), candidate);
  }
}

void RuleEngine::IndexRule(Bucket* bucket, RuleId id, const EcaRule& rule) {
  ++bucket->total;
  if (rule.family == RuleFamily::kCustomization) ++bucket->customization_rules;
  for (const auto& [key, value] : rule.param_filters) {
    ++bucket->key_counts[key];
  }
  const std::string discriminator = PickDiscriminator(*bucket);
  if (discriminator != bucket->discriminator) {
    bucket->discriminator = discriminator;
    RepartitionBucket(bucket);
  }
  InsertSorted(PartitionOf(bucket, rule), {rule.EffectivePriority(), id});
}

void RuleEngine::UnindexRule(Bucket* bucket, RuleId id, const EcaRule& rule) {
  std::vector<Candidate>* part = PartitionOf(bucket, rule);
  const Candidate candidate{rule.EffectivePriority(), id};
  part->erase(std::find(part->begin(), part->end(), candidate));
  if (part != &bucket->rest && part->empty()) {
    bucket->by_value.erase(rule.param_filters.at(bucket->discriminator));
  }
  --bucket->total;
  if (rule.family == RuleFamily::kCustomization) --bucket->customization_rules;
  for (const auto& [key, value] : rule.param_filters) {
    auto it = bucket->key_counts.find(key);
    if (--it->second == 0) bucket->key_counts.erase(it);
  }
  const std::string discriminator = PickDiscriminator(*bucket);
  if (discriminator != bucket->discriminator) {
    bucket->discriminator = discriminator;
    RepartitionBucket(bucket);
  }
}

template <typename Fn>
void RuleEngine::ForEachCandidate(const Bucket& bucket, const Event& event,
                                  Fn&& fn) const {
  const std::vector<Candidate>* filtered = nullptr;
  if (!bucket.discriminator.empty()) {
    auto it = bucket.by_value.find(event.Param(bucket.discriminator));
    if (it != bucket.by_value.end()) filtered = &it->second;
  }
  // Merge the two pre-sorted partitions; descending (priority, id)
  // order is exactly the engine's selection order.
  size_t i = 0, j = 0;
  const size_t ni = filtered == nullptr ? 0 : filtered->size();
  const size_t nj = bucket.rest.size();
  while (i < ni || j < nj) {
    const Candidate& next =
        (i < ni && (j >= nj || (*filtered)[i] > bucket.rest[j]))
            ? (*filtered)[i++]
            : bucket.rest[j++];
    if (!fn(rules_.at(next.second))) return;
  }
}

// ---- Rule registration ---------------------------------------------------

agis::Result<RuleId> RuleEngine::AddRule(EcaRule rule) {
  if (rule.event_name.empty()) {
    return agis::Status::InvalidArgument("rule needs an event name");
  }
  if (rule.family == RuleFamily::kCustomization &&
      !rule.customization_action) {
    return agis::Status::InvalidArgument(
        agis::StrCat("customization rule '", rule.name,
                     "' has no customization action"));
  }
  if (rule.family == RuleFamily::kGeneral && !rule.general_action) {
    return agis::Status::InvalidArgument(
        agis::StrCat("general rule '", rule.name, "' has no action"));
  }
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    const RuleId id = next_id_++;
    auto [it, inserted] = rules_.emplace(id, std::move(rule));
    IndexRule(&by_event_[it->second.event_name], id, it->second);
    by_provenance_[it->second.provenance].push_back(id);
    {
      std::lock_guard<std::mutex> memo(memo_mutex_);
      BumpGenerationLocked();
    }
    return id;
  }
}

agis::Status RuleEngine::RemoveRule(RuleId id) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = rules_.find(id);
  if (it == rules_.end()) {
    return agis::Status::NotFound(agis::StrCat("rule ", id));
  }
  RemoveRuleLocked(it);
  std::lock_guard<std::mutex> memo(memo_mutex_);
  BumpGenerationLocked();
  return agis::Status::OK();
}

void RuleEngine::RemoveRuleLocked(std::map<RuleId, EcaRule>::iterator it) {
  const RuleId id = it->first;
  const EcaRule& rule = it->second;
  auto bucket_it = by_event_.find(rule.event_name);
  UnindexRule(&bucket_it->second, id, rule);
  if (bucket_it->second.total == 0) by_event_.erase(bucket_it);
  auto prov_it = by_provenance_.find(rule.provenance);
  auto& ids = prov_it->second;
  ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
  if (ids.empty()) by_provenance_.erase(prov_it);
  rules_.erase(it);
}

size_t RuleEngine::RemoveRulesByProvenance(const std::string& provenance) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto prov_it = by_provenance_.find(provenance);
  if (prov_it == by_provenance_.end()) return 0;
  const std::vector<RuleId> victims = prov_it->second;
  for (RuleId id : victims) {
    RemoveRuleLocked(rules_.find(id));
  }
  std::lock_guard<std::mutex> memo(memo_mutex_);
  BumpGenerationLocked();
  return victims.size();
}

size_t RuleEngine::CountRulesByProvenance(
    const std::string& provenance) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = by_provenance_.find(provenance);
  return it == by_provenance_.end() ? 0 : it->second.size();
}

size_t RuleEngine::NumRules() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return rules_.size();
}

const EcaRule* RuleEngine::FindRule(RuleId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = rules_.find(id);
  return it == rules_.end() ? nullptr : &it->second;
}

// ---- Selection -----------------------------------------------------------

std::vector<const EcaRule*> RuleEngine::MatchingRules(
    const Event& event) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = by_event_.find(event.name);
  if (it == by_event_.end()) return {};
  std::vector<const EcaRule*> out;
  ForEachCandidate(it->second, event, [&](const EcaRule& rule) {
    if (rule.Triggers(event)) out.push_back(&rule);
    return true;
  });
  return out;
}

const EcaRule* RuleEngine::SelectCustomizationRule(const Event& event) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = by_event_.find(event.name);
  if (it == by_event_.end() || it->second.customization_rules == 0) {
    return nullptr;
  }
  const EcaRule* winner = nullptr;
  ForEachCandidate(it->second, event, [&](const EcaRule& rule) {
    if (rule.family == RuleFamily::kCustomization && rule.Triggers(event)) {
      winner = &rule;
      return false;
    }
    return true;
  });
  return winner;
}

std::string RuleEngine::CacheKey(const Event& event) {
  std::string key;
  key.reserve(64);
  const auto append = [&key](const std::string& s) {
    key += std::to_string(s.size());
    key += ':';
    key += s;
  };
  append(event.name);
  for (const auto& [k, v] : event.params) {
    append(k);
    append(v);
  }
  key += '|';
  append(event.context.user);
  append(event.context.category);
  append(event.context.application);
  for (const auto& [k, v] : event.context.extras) {
    append(k);
    append(v);
  }
  return key;
}

void RuleEngine::EvictToCapacityLocked() {
  if (cache_.size() > cache_capacity_ &&
      last_swept_generation_ != generation_) {
    // Over capacity with a generation bump since the last sweep:
    // stale entries are sitting in slots a live entry would otherwise
    // be evicted for. Drop them first.
    for (auto it = lru_.begin(); it != lru_.end();) {
      const auto cache_it = cache_.find(*it);
      if (cache_it != cache_.end() &&
          cache_it->second.generation != generation_) {
        cache_.erase(cache_it);
        it = lru_.erase(it);
        ++stats_.cache_stale_swept;
      } else {
        ++it;
      }
    }
    last_swept_generation_ = generation_;
  }
  while (cache_.size() > cache_capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

agis::Result<std::optional<WindowCustomization>> RuleEngine::GetCustomization(
    const Event& event) {
  // Fast path: no customization rule listens on this event at all.
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = by_event_.find(event.name);
    if (it == by_event_.end() || it->second.customization_rules == 0) {
      std::lock_guard<std::mutex> memo(memo_mutex_);
      ++stats_.events_processed;
      return std::optional<WindowCustomization>();
    }
  }

  // Memo probe. The generation stamp makes invalidation lazy: a rule
  // mutation only bumps generation_, and stale entries die on touch.
  const std::string key = CacheKey(event);
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> memo(memo_mutex_);
    ++stats_.events_processed;
    generation = generation_;
    if (cache_capacity_ > 0) {
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        if (it->second.generation == generation_) {
          ++stats_.cache_hits;
          lru_.splice(lru_.begin(), lru_, it->second.lru_it);
          return it->second.payload;
        }
        lru_.erase(it->second.lru_it);
        cache_.erase(it);
      }
      ++stats_.cache_misses;
    }
  }

  // Resolve: copy the matching actions out under the shared lock, then
  // execute them lock-free (actions may re-enter the engine).
  CustomizationAction winner;
  std::vector<CustomizationAction> layers;
  size_t match_count = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = by_event_.find(event.name);
    if (it != by_event_.end()) {
      ForEachCandidate(it->second, event, [&](const EcaRule& rule) {
        if (rule.family != RuleFamily::kCustomization ||
            !rule.Triggers(event)) {
          return true;
        }
        ++match_count;
        if (policy_ == ConflictPolicy::kMostSpecific) {
          if (!winner) winner = rule.customization_action;
        } else {
          layers.push_back(rule.customization_action);
        }
        return true;
      });
    }
  }

  std::optional<WindowCustomization> resolved;
  uint64_t fired = 0;
  if (match_count > 0) {
    if (policy_ == ConflictPolicy::kMostSpecific) {
      ++fired;
      agis::Result<WindowCustomization> result = winner(event);
      if (!result.ok()) {
        std::lock_guard<std::mutex> memo(memo_mutex_);
        if (match_count > 1) ++stats_.conflicts_resolved;
        stats_.customization_rules_fired += fired;
        return result.status();
      }
      resolved = std::move(result).value();
    } else {
      // kExecuteAllMerge: apply from most general to most specific.
      WindowCustomization merged;
      for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
        ++fired;
        agis::Result<WindowCustomization> layer = (*it)(event);
        if (!layer.ok()) {
          std::lock_guard<std::mutex> memo(memo_mutex_);
          if (match_count > 1) ++stats_.conflicts_resolved;
          stats_.customization_rules_fired += fired;
          return layer.status();
        }
        MergeCustomization(layer.value(), &merged);
      }
      resolved = std::move(merged);
    }
  }

  std::lock_guard<std::mutex> memo(memo_mutex_);
  if (match_count > 1) ++stats_.conflicts_resolved;
  stats_.customization_rules_fired += fired;
  if (cache_capacity_ > 0) {
    // Stamp with the generation read before resolving: if a mutation
    // raced past us the entry arrives already stale, never wrong.
    auto [it, inserted] = cache_.try_emplace(key);
    if (!inserted) lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second = CacheEntry{generation, resolved, lru_.begin()};
    EvictToCapacityLocked();
  }
  return resolved;
}

std::vector<agis::Result<std::optional<WindowCustomization>>>
RuleEngine::GetCustomizationBatch(const std::vector<Event>& events,
                                  agis::TaskScheduler* scheduler) {
  std::vector<agis::Result<std::optional<WindowCustomization>>> out(
      events.size(),
      agis::Result<std::optional<WindowCustomization>>(
          agis::Status::Internal("unresolved batch slot")));
  if (scheduler == nullptr) scheduler = scheduler_;
  if (scheduler == nullptr || events.size() <= 1) {
    for (size_t i = 0; i < events.size(); ++i) {
      out[i] = GetCustomization(events[i]);
    }
    return out;
  }
  // Scoped completion: the group waits only on this batch, and the
  // calling thread resolves events itself while waiting — a batch
  // issued from inside a scheduler task (nested parallelism) makes
  // progress even with every worker busy. Events are chunked rather
  // than submitted one-by-one: resolving an indexed event costs
  // microseconds, so per-event tasks would be mostly queue overhead.
  const size_t chunks =
      std::min(events.size(), 2 * scheduler->num_threads());
  agis::TaskGroup group(scheduler);
  for (size_t c = 1; c < chunks; ++c) {
    const size_t begin = c * events.size() / chunks;
    const size_t end = (c + 1) * events.size() / chunks;
    group.Run([this, &events, &out, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        out[i] = GetCustomization(events[i]);
      }
    });
  }
  for (size_t i = 0; i < events.size() / chunks; ++i) {
    out[i] = GetCustomization(events[i]);
  }
  group.Wait();
  return out;
}

agis::Status RuleEngine::FireGeneralRules(const Event& event) {
  {
    std::lock_guard<std::mutex> memo(memo_mutex_);
    ++stats_.events_processed;
  }
  if (t_cascade_depth >= kMaxCascadeDepth) {
    return agis::Status::FailedPrecondition(
        agis::StrCat("rule cascade exceeded depth ", kMaxCascadeDepth,
                     " at event ", event.name));
  }
  std::vector<GeneralAction> actions;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = by_event_.find(event.name);
    if (it != by_event_.end()) {
      ForEachCandidate(it->second, event, [&](const EcaRule& rule) {
        if (rule.family == RuleFamily::kGeneral && rule.Triggers(event)) {
          actions.push_back(rule.general_action);
        }
        return true;
      });
    }
  }
  ++t_cascade_depth;
  agis::Status status = agis::Status::OK();
  uint64_t fired = 0;
  for (const GeneralAction& action : actions) {
    ++fired;
    status = action(event);
    if (!status.ok()) break;
  }
  --t_cascade_depth;
  std::lock_guard<std::mutex> memo(memo_mutex_);
  stats_.general_rules_fired += fired;
  return status;
}

std::vector<std::pair<RuleId, RuleId>> RuleEngine::FindShadowedRules() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::pair<RuleId, RuleId>> out;
  // Shadowing requires equal (event, filters, condition, boost): equal
  // filters put both rules in the same partition of the same bucket,
  // and equal (condition, boost) gives equal effective priority — so
  // only equal-priority runs inside each partition need comparing.
  const auto scan = [&](const std::vector<Candidate>& vec) {
    size_t run_start = 0;
    while (run_start < vec.size()) {
      size_t run_end = run_start + 1;
      while (run_end < vec.size() &&
             vec[run_end].first == vec[run_start].first) {
        ++run_end;
      }
      for (size_t i = run_start; i < run_end; ++i) {
        const EcaRule& later = rules_.at(vec[i].second);
        if (later.family != RuleFamily::kCustomization) continue;
        for (size_t j = i + 1; j < run_end; ++j) {
          // Descending id order within a run: vec[j] registered first.
          const EcaRule& earlier = rules_.at(vec[j].second);
          if (earlier.family != RuleFamily::kCustomization) continue;
          if (earlier.param_filters == later.param_filters &&
              earlier.condition == later.condition &&
              earlier.priority_boost == later.priority_boost) {
            out.emplace_back(vec[j].second, vec[i].second);
          }
        }
      }
      run_start = run_end;
    }
  };
  for (const auto& [event_name, bucket] : by_event_) {
    for (const auto& [value, vec] : bucket.by_value) scan(vec);
    scan(bucket.rest);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RuleEngine::ResetStats() {
  std::lock_guard<std::mutex> memo(memo_mutex_);
  stats_ = EngineStats();
}

void RuleEngine::set_cache_capacity(size_t capacity) {
  std::lock_guard<std::mutex> memo(memo_mutex_);
  cache_capacity_ = capacity;
  EvictToCapacityLocked();
}

size_t RuleEngine::cache_capacity() const {
  std::lock_guard<std::mutex> memo(memo_mutex_);
  return cache_capacity_;
}

size_t RuleEngine::cache_size() const {
  std::lock_guard<std::mutex> memo(memo_mutex_);
  return cache_.size();
}

void RuleEngine::MergeCustomization(const WindowCustomization& overlay,
                                    WindowCustomization* base) {
  if (!overlay.target_class.empty()) base->target_class = overlay.target_class;
  if (overlay.schema_mode != SchemaDisplayMode::kDefault) {
    base->schema_mode = overlay.schema_mode;
  }
  for (const std::string& cls : overlay.auto_open_classes) {
    if (std::find(base->auto_open_classes.begin(),
                  base->auto_open_classes.end(),
                  cls) == base->auto_open_classes.end()) {
      base->auto_open_classes.push_back(cls);
    }
  }
  if (!overlay.control_widget.empty()) {
    base->control_widget = overlay.control_widget;
  }
  if (!overlay.presentation_format.empty()) {
    base->presentation_format = overlay.presentation_format;
  }
  for (const AttributeCustomization& attr : overlay.attributes) {
    bool replaced = false;
    for (AttributeCustomization& existing : base->attributes) {
      if (existing.attribute == attr.attribute) {
        existing = attr;
        replaced = true;
        break;
      }
    }
    if (!replaced) base->attributes.push_back(attr);
  }
}

}  // namespace agis::active
