#include "active/topology_guard.h"

#include "base/logging.h"
#include "base/strutil.h"
#include "geom/predicates.h"
#include "geom/wkt.h"

namespace agis::active {

std::string TopologyConstraint::ToString() const {
  std::string out =
      agis::StrCat(name, ": ", subject_class, " ",
                   quantifier == Quantifier::kForAll ? "forall " : "exists ",
                   geom::TopoRelationName(relation), " ", object_class);
  if (min_distance > 0) {
    out += agis::StrCat(" (min_distance ", agis::DoubleToString(min_distance),
                        ")");
  }
  out += on_violation == OnViolation::kReject ? " [reject]" : " [warn]";
  return out;
}

std::string TopologyViolation::ToString() const {
  if (counterpart == 0) {
    return agis::StrCat(constraint, ": object ", subject,
                        " has no qualifying counterpart");
  }
  return agis::StrCat(constraint, ": object ", subject, " vs ", counterpart);
}

TopologyGuard::TopologyGuard(geodb::GeoDatabase* db, RuleEngine* engine)
    : db_(db), engine_(engine) {}

agis::Status TopologyGuard::CheckConstraint(
    const TopologyConstraint& c, const geom::Geometry& subject_geometry,
    geodb::ObjectId subject_id, const geodb::Snapshot* snapshot) const {
  const std::string object_geom_attr =
      db_->GeometryAttributeOf(c.object_class);
  if (object_geom_attr.empty()) {
    return agis::Status::FailedPrecondition(
        agis::StrCat("class '", c.object_class, "' has no geometry"));
  }
  // Always check against a pinned view: the caller's snapshot when
  // provided, otherwise a local pin of the current state (so the scan
  // and the per-object reads see one consistent version set).
  geodb::Snapshot local;
  const geodb::Snapshot* view = snapshot;
  if (view == nullptr || !view->valid()) {
    local = db_->OpenSnapshot();
    view = &local;
  }

  // Narrow the counterpart scan when only nearby objects can decide
  // the outcome (disjointness / clearance checks).
  std::optional<geom::BoundingBox> window;
  if (c.relation == geom::TopoRelation::kDisjoint &&
      c.quantifier == TopologyConstraint::Quantifier::kForAll) {
    window = subject_geometry.Bounds().Inflated(c.min_distance + 1.0);
  }
  auto candidates = db_->ScanExtentAt(*view, c.object_class, window);
  AGIS_RETURN_IF_ERROR(candidates.status());

  bool exists_satisfied = false;
  for (geodb::ObjectId other_id : candidates.value()) {
    if (other_id == subject_id) continue;
    const geodb::ObjectInstance* other = db_->FindObjectAt(*view, other_id);
    if (other == nullptr) continue;
    const geodb::Value& gv = other->Get(object_geom_attr);
    if (gv.is_null()) continue;
    const geom::Geometry& other_geom = gv.geometry_value();

    bool ok = geom::Satisfies(subject_geometry, other_geom, c.relation);
    if (ok && c.min_distance > 0 &&
        c.relation == geom::TopoRelation::kDisjoint) {
      ok = geom::Distance(subject_geometry, other_geom) >= c.min_distance;
    }
    if (c.quantifier == TopologyConstraint::Quantifier::kForAll) {
      if (!ok) {
        return agis::Status::ConstraintViolation(
            agis::StrCat(c.name, ": violates against object ", other_id));
      }
    } else if (ok) {
      exists_satisfied = true;
      break;
    }
  }
  if (c.quantifier == TopologyConstraint::Quantifier::kExists &&
      !exists_satisfied) {
    return agis::Status::ConstraintViolation(
        agis::StrCat(c.name, ": no instance of ", c.object_class,
                     " satisfies ", geom::TopoRelationName(c.relation)));
  }
  return agis::Status::OK();
}

agis::Result<std::vector<RuleId>> TopologyGuard::AddConstraint(
    TopologyConstraint c) {
  if (!db_->schema().HasClass(c.subject_class)) {
    return agis::Status::NotFound(
        agis::StrCat("subject class '", c.subject_class, "'"));
  }
  if (!db_->schema().HasClass(c.object_class)) {
    return agis::Status::NotFound(
        agis::StrCat("object class '", c.object_class, "'"));
  }
  const std::string subject_attr = db_->GeometryAttributeOf(c.subject_class);
  if (subject_attr.empty()) {
    return agis::Status::FailedPrecondition(
        agis::StrCat("class '", c.subject_class, "' has no geometry"));
  }
  if (db_->GeometryAttributeOf(c.object_class).empty()) {
    return agis::Status::FailedPrecondition(
        agis::StrCat("class '", c.object_class, "' has no geometry"));
  }

  const TopologyConstraint constraint = c;
  const std::string provenance = agis::StrCat("topology:", c.name);
  std::vector<RuleId> ids;
  for (const char* event_name : {"Before_Insert", "Before_Update"}) {
    EcaRule rule;
    rule.name = agis::StrCat(c.name, "@", event_name);
    rule.family = RuleFamily::kGeneral;
    rule.event_name = event_name;
    rule.param_filters["class"] = c.subject_class;
    rule.provenance = provenance;
    rule.general_action = [this, constraint](const Event& event) {
      const std::string& wkt = event.Param("new_wkt");
      if (wkt.empty()) return agis::Status::OK();  // Non-geometry write.
      auto parsed = geom::ParseWkt(wkt);
      AGIS_RETURN_IF_ERROR(parsed.status());
      geodb::ObjectId subject_id = 0;
      const std::string& id_str = event.Param("object");
      if (!id_str.empty()) subject_id = std::stoull(id_str);
      // Validate against the pre-write snapshot the event carries:
      // the rule's verdict then cannot be skewed by writes racing in
      // while the check scans counterparts.
      const agis::Status check = CheckConstraint(
          constraint, parsed.value(), subject_id, event.snapshot.get());
      if (check.ok()) return check;
      ++violations_detected_;
      if (constraint.on_violation ==
          TopologyConstraint::OnViolation::kWarn) {
        ++warnings_issued_;
        AGIS_LOG(Warning) << "topology warning: " << check.message();
        return agis::Status::OK();
      }
      return check;
    };
    auto added = engine_->AddRule(std::move(rule));
    AGIS_RETURN_IF_ERROR(added.status());
    ids.push_back(added.value());
  }
  constraints_.push_back(std::move(c));
  return ids;
}

size_t TopologyGuard::RemoveConstraint(const std::string& name) {
  const size_t removed =
      engine_->RemoveRulesByProvenance(agis::StrCat("topology:", name));
  for (auto it = constraints_.begin(); it != constraints_.end(); ++it) {
    if (it->name == name) {
      constraints_.erase(it);
      break;
    }
  }
  return removed;
}

agis::Status TopologyGuard::CheckHypothetical(
    const std::string& subject_class, const geom::Geometry& geometry,
    geodb::ObjectId exclude_id) const {
  const geodb::Snapshot snap = db_->OpenSnapshot();
  for (const TopologyConstraint& c : constraints_) {
    if (c.subject_class != subject_class) continue;
    AGIS_RETURN_IF_ERROR(CheckConstraint(c, geometry, exclude_id, &snap));
  }
  return agis::Status::OK();
}

std::vector<TopologyViolation> TopologyGuard::CheckAll() const {
  std::vector<TopologyViolation> out;
  // One snapshot for the whole audit: every constraint judges the
  // same consistent version set even while writers keep going.
  const geodb::Snapshot snap = db_->OpenSnapshot();
  for (const TopologyConstraint& c : constraints_) {
    const std::string subject_attr = db_->GeometryAttributeOf(c.subject_class);
    auto subjects = db_->ScanExtentAt(snap, c.subject_class);
    if (!subjects.ok()) continue;
    for (geodb::ObjectId id : subjects.value()) {
      const geodb::ObjectInstance* obj = db_->FindObjectAt(snap, id);
      if (obj == nullptr) continue;
      const geodb::Value& gv = obj->Get(subject_attr);
      if (gv.is_null()) continue;
      const agis::Status check =
          CheckConstraint(c, gv.geometry_value(), id, &snap);
      if (!check.ok()) {
        TopologyViolation v;
        v.constraint = c.name;
        v.subject = id;
        out.push_back(v);
      }
    }
  }
  return out;
}

}  // namespace agis::active
