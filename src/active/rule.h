#ifndef AGIS_ACTIVE_RULE_H_
#define AGIS_ACTIVE_RULE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "active/context_match.h"
#include "active/customization.h"
#include "active/event.h"
#include "base/status.h"

namespace agis::active {

using RuleId = uint64_t;

/// Which family a rule belongs to. The paper partitions the rule set
/// into "rules for interface customization, and other rules"; the
/// families have different conflict-resolution semantics (see
/// RuleEngine).
enum class RuleFamily {
  /// On Event If <context> Then apply customization: exactly one —
  /// the most specific matching — executes per event.
  kCustomization,
  /// Constraint-maintenance / general rules: all matching execute.
  kGeneral,
};

/// One E-C-A rule.
///
///   On   `event_name`  (+ optional event parameter filters)
///   If   `condition` matches the event's context
///   Then run the family-specific action.
struct EcaRule {
  std::string name;
  RuleFamily family = RuleFamily::kCustomization;

  // ---- Event part ----
  std::string event_name;
  /// Additional exact-match filters on event params, e.g.
  /// {"class", "Pole"} so a Get_Class rule fires only for Pole.
  std::map<std::string, std::string> param_filters;

  // ---- Condition part ----
  ContextPattern condition;

  /// Explicit priority added on top of context specificity; lets an
  /// application designer pin a winner among equally specific rules.
  int priority_boost = 0;

  // ---- Action part ----
  /// For kCustomization rules: produces the customization payload.
  std::function<agis::Result<WindowCustomization>(const Event&)>
      customization_action;
  /// For kGeneral rules: arbitrary reaction; a non-OK status vetoes
  /// the triggering operation when fired from a before-write hook.
  std::function<agis::Status(const Event&)> general_action;

  /// Provenance, e.g. the customization-language directive this rule
  /// was compiled from.
  std::string provenance;

  /// True when the rule's event selector and condition accept `event`.
  bool Triggers(const Event& event) const;

  /// Total priority: boost first, then context specificity.
  /// Deterministic tie-breaking uses registration ids (see engine).
  int EffectivePriority() const {
    return priority_boost * 1024 + condition.Specificity();
  }

  std::string ToString() const;
};

}  // namespace agis::active

#endif  // AGIS_ACTIVE_RULE_H_
