#ifndef AGIS_ACTIVE_CONTEXT_MATCH_H_
#define AGIS_ACTIVE_CONTEXT_MATCH_H_

#include <map>
#include <string>

#include "base/context.h"

namespace agis::active {

/// The Condition part of a customization rule: a pattern over the
/// user's working environment. Empty fields are wildcards.
///
/// The paper restricts conditions to `<user class, application
/// domain>` partitions plus "conceivable extensions" (scale, time);
/// `extras` carries those extensions as exact-match key/value pairs.
struct ContextPattern {
  std::string user;
  std::string category;
  std::string application;
  std::map<std::string, std::string> extras;

  /// True when every bound field equals the context's value.
  bool Matches(const UserContext& ctx) const;

  /// Restrictiveness score implementing the paper's priority order:
  /// "a rule for generic users, for a particular category of users,
  /// and for a particular user within the category" are progressively
  /// more specific. User binding dominates category, category
  /// dominates application, each extra adds one step below
  /// application. Higher = more specific.
  int Specificity() const;

  /// True when this pattern matches a strict superset of the contexts
  /// `other` matches (used to detect shadowed rules).
  bool IsStrictlyMoreGeneralThan(const ContextPattern& other) const;

  std::string ToString() const;

  friend bool operator==(const ContextPattern& a, const ContextPattern& b) {
    return a.user == b.user && a.category == b.category &&
           a.application == b.application && a.extras == b.extras;
  }
};

}  // namespace agis::active

#endif  // AGIS_ACTIVE_CONTEXT_MATCH_H_
