#ifndef AGIS_ACTIVE_TOPOLOGY_GUARD_H_
#define AGIS_ACTIVE_TOPOLOGY_GUARD_H_

#include <string>
#include <vector>

#include "active/engine.h"
#include "base/status.h"
#include "geodb/database.h"
#include "geom/topology.h"

namespace agis::active {

/// A binary topological integrity constraint (the rule family of
/// Medeiros & Cilia [11]): instances of `subject_class` must stand in
/// `relation` to instances of `object_class`.
struct TopologyConstraint {
  std::string name;
  std::string subject_class;
  geom::TopoRelation relation = geom::TopoRelation::kDisjoint;
  std::string object_class;

  /// kForAll: the relation must hold against *every* counterpart
  /// (e.g. "ducts disjoint from buildings"). kExists: against at
  /// least one (e.g. "every pole inside some service region").
  enum class Quantifier { kForAll, kExists };
  Quantifier quantifier = Quantifier::kForAll;

  /// With kDisjoint + kForAll: additionally require this clearance
  /// distance (e.g. poles at least 15 m apart).
  double min_distance = 0.0;

  /// kReject vetoes the violating write; kWarn lets it through and
  /// counts it.
  enum class OnViolation { kReject, kWarn };
  OnViolation on_violation = OnViolation::kReject;

  std::string ToString() const;
};

/// A violation found by `CheckAll`.
struct TopologyViolation {
  std::string constraint;
  geodb::ObjectId subject = 0;
  /// Violating counterpart for kForAll; 0 for unmet kExists.
  geodb::ObjectId counterpart = 0;

  std::string ToString() const;
};

/// Compiles topology constraints into general ECA rules on the
/// Before_Insert / Before_Update events of the subject class and
/// installs them into a rule engine wired to the database via
/// DbEventBridge. This demonstrates the paper's point that the same
/// active mechanism serves both customization and constraint
/// maintenance — only the rule/event types differ.
class TopologyGuard {
 public:
  /// `db` and `engine` must outlive the guard. The guard does not
  /// register the bridge; callers wire `DbEventBridge` themselves (or
  /// call events through the engine directly in tests).
  TopologyGuard(geodb::GeoDatabase* db, RuleEngine* engine);

  /// Validates the constraint (classes exist and carry geometry) and
  /// installs its rules. Returns the installed rule ids.
  agis::Result<std::vector<RuleId>> AddConstraint(TopologyConstraint c);

  /// Uninstalls every rule belonging to the named constraint.
  size_t RemoveConstraint(const std::string& name);

  /// Audits the whole database against every installed constraint.
  std::vector<TopologyViolation> CheckAll() const;

  /// What-if check used by the simulation mode: would an instance of
  /// `subject_class` with `geometry` (replacing object `exclude_id`,
  /// or 0 for a new one) satisfy every installed constraint against
  /// the *committed* data? Returns the first violation.
  agis::Status CheckHypothetical(const std::string& subject_class,
                                 const geom::Geometry& geometry,
                                 geodb::ObjectId exclude_id = 0) const;

  const std::vector<TopologyConstraint>& constraints() const {
    return constraints_;
  }

  uint64_t violations_detected() const { return violations_detected_; }
  uint64_t warnings_issued() const { return warnings_issued_; }

 private:
  /// Checks `subject_geometry` (for subject id, possibly 0 at insert
  /// time) against `c`; OK when satisfied. With `snapshot` set, all
  /// counterpart reads go through it — rule actions pass the
  /// triggering event's snapshot so the state they validate cannot
  /// shift under a concurrent writer; nullptr reads current state.
  agis::Status CheckConstraint(const TopologyConstraint& c,
                               const geom::Geometry& subject_geometry,
                               geodb::ObjectId subject_id,
                               const geodb::Snapshot* snapshot) const;

  geodb::GeoDatabase* db_;
  RuleEngine* engine_;
  std::vector<TopologyConstraint> constraints_;
  mutable uint64_t violations_detected_ = 0;
  mutable uint64_t warnings_issued_ = 0;
};

}  // namespace agis::active

#endif  // AGIS_ACTIVE_TOPOLOGY_GUARD_H_
