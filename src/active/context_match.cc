#include "active/context_match.h"

namespace agis::active {

bool ContextPattern::Matches(const UserContext& ctx) const {
  if (!user.empty() && user != ctx.user) return false;
  if (!category.empty() && category != ctx.category) return false;
  if (!application.empty() && application != ctx.application) return false;
  for (const auto& [key, want] : extras) {
    auto it = ctx.extras.find(key);
    if (it == ctx.extras.end() || it->second != want) return false;
  }
  return true;
}

int ContextPattern::Specificity() const {
  // Weights keep the lexicographic order user > category > application
  // > extras for any realistic number of extras (< 8).
  int score = 0;
  if (!user.empty()) score += 64;
  if (!category.empty()) score += 16;
  if (!application.empty()) score += 8;
  score += static_cast<int>(extras.size());
  return score;
}

bool ContextPattern::IsStrictlyMoreGeneralThan(
    const ContextPattern& other) const {
  auto field_covers = [](const std::string& general,
                         const std::string& specific) {
    return general.empty() || general == specific;
  };
  if (!field_covers(user, other.user)) return false;
  if (!field_covers(category, other.category)) return false;
  if (!field_covers(application, other.application)) return false;
  for (const auto& [key, want] : extras) {
    auto it = other.extras.find(key);
    if (it == other.extras.end() || it->second != want) return false;
  }
  return !(*this == other);
}

std::string ContextPattern::ToString() const {
  UserContext as_ctx;
  as_ctx.user = user;
  as_ctx.category = category;
  as_ctx.application = application;
  as_ctx.extras = extras;
  return as_ctx.ToString();
}

}  // namespace agis::active
