#ifndef AGIS_ACTIVE_DB_BRIDGE_H_
#define AGIS_ACTIVE_DB_BRIDGE_H_

#include "active/engine.h"
#include "geodb/events.h"

namespace agis::active {

/// Connects a GeoDatabase's event stream to a RuleEngine: before-write
/// events run the general rule family synchronously (a failing rule
/// vetoes the write); after events run it for side effects. This is
/// the "DB Events -> Active Mechanism" arrow of Figure 1.
///
/// Write events arrive carrying a pinned database snapshot (pre-write
/// for before-events, post-write for after-events); FromDbEvent
/// forwards it on the active::Event, so rule actions that read back
/// into the database (topology constraints, view refresh) evaluate
/// against the state the event describes rather than whatever a
/// concurrent writer has made of it since.
///
/// Register with `db.AddEventSink(&bridge)`; deregister before the
/// engine dies.
class DbEventBridge : public geodb::DbEventSink {
 public:
  explicit DbEventBridge(RuleEngine* engine) : engine_(engine) {}

  agis::Status OnBeforeEvent(const geodb::DbEvent& event) override {
    return engine_->FireGeneralRules(FromDbEvent(event));
  }

  void OnAfterEvent(const geodb::DbEvent& event) override {
    // After-hooks must not veto; a failing general rule here is a rule
    // bug, surfaced via the engine's status but not propagated.
    (void)engine_->FireGeneralRules(FromDbEvent(event));
  }

 private:
  RuleEngine* engine_;
};

}  // namespace agis::active

#endif  // AGIS_ACTIVE_DB_BRIDGE_H_
