#ifndef AGIS_ACTIVE_EVENT_H_
#define AGIS_ACTIVE_EVENT_H_

#include <map>
#include <memory>
#include <string>

#include "base/context.h"
#include "geodb/events.h"
#include "geodb/snapshot.h"

namespace agis::active {

/// A signal the active mechanism reacts to. Events are *named*, not a
/// closed enum: the paper's point is that interface customization only
/// adds "a new type of rules and events" to a general active engine,
/// so the engine stays agnostic of where events come from.
///
/// Conventions used by this system:
///  - database events carry the `Get_Schema` / `Get_Class` /
///    `Get_Value` / `Before_Update` / ... names of geodb::DbEventKind;
///  - interface events use an "ui." prefix ("ui.click", "ui.select");
///  - external events use an "ext." prefix.
struct Event {
  std::string name;
  UserContext context;
  /// Free-form parameters: "schema", "class", "object", "attribute"...
  std::map<std::string, std::string> params;
  /// For database write events: pinned view of the database as of the
  /// event (pre-write for Before_*, post-write for After_*). Rule
  /// actions that read back into the database should go through it
  /// (FindObjectAt / ScanExtentAt) so a concurrent writer cannot
  /// shift the state they are validating. May be null (non-database
  /// events, query events).
  std::shared_ptr<const geodb::Snapshot> snapshot;

  /// Parameter accessor; empty string when absent.
  const std::string& Param(const std::string& key) const;

  std::string ToString() const;
};

/// Adapts a database event to the active mechanism's vocabulary.
Event FromDbEvent(const geodb::DbEvent& db_event);

/// Canonical event names for the exploratory primitives.
inline constexpr const char* kEventGetSchema = "Get_Schema";
inline constexpr const char* kEventGetClass = "Get_Class";
inline constexpr const char* kEventGetValue = "Get_Value";

}  // namespace agis::active

#endif  // AGIS_ACTIVE_EVENT_H_
