#include "custlang/access_control.h"

namespace agis::custlang {

void AccessControl::Allow(const std::string& principal,
                          const std::string& class_name) {
  allow_[principal].insert(class_name);
}

void AccessControl::Deny(const std::string& principal,
                         const std::string& class_name) {
  deny_[principal].insert(class_name);
}

bool AccessControl::MayCustomize(const std::string& principal,
                                 const std::string& class_name) const {
  auto denied = deny_.find(principal);
  if (denied != deny_.end() && denied->second.count(class_name) != 0) {
    return false;
  }
  auto allowed = allow_.find(principal);
  if (allowed != allow_.end()) {
    return allowed->second.count(class_name) != 0;
  }
  return true;  // No whitelist registered: default-allow.
}

bool AccessControl::Admits(const Directive& directive,
                           const std::string& class_name) const {
  if (!directive.user.empty()) {
    return MayCustomize(directive.user, class_name);
  }
  if (!directive.category.empty()) {
    return MayCustomize(directive.category, class_name);
  }
  if (!directive.application.empty()) {
    return MayCustomize(directive.application, class_name);
  }
  return true;
}

AccessChecker AccessControl::AsChecker() const {
  return [this](const Directive& directive, const std::string& class_name) {
    return Admits(directive, class_name);
  };
}

}  // namespace agis::custlang
