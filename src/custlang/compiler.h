#ifndef AGIS_CUSTLANG_COMPILER_H_
#define AGIS_CUSTLANG_COMPILER_H_

#include <vector>

#include "active/rule.h"
#include "base/status.h"
#include "custlang/ast.h"

namespace agis::custlang {

/// Compiles an analyzed directive into its customization ECA rules —
/// the mapping of Section 3.4:
///
///   schema clause          -> rule on Get_Schema  (Schema window)
///   class clause           -> rule on Get_Class   (Class set window)
///   instances clauses      -> rule on Get_Value   (Instance window)
///
/// Section 4's example compiles to exactly R1 and R2 plus the
/// Get_Value rule for lines (7)-(12). All produced rules share the
/// directive's context condition ("This condition is the same for all
/// rules derived from a given customization directive") and carry its
/// CanonicalName() as provenance so they can be uninstalled together.
///
/// The compiler assumes `AnalyzeDirective` has passed; it performs no
/// further validation. Widget names are canonicalized here.
std::vector<active::EcaRule> CompileDirective(const Directive& directive);

/// Human-readable listing of the rules a directive compiles to, in the
/// paper's "On ... If ... Then ..." notation (used by examples/tests).
std::string ExplainCompilation(const Directive& directive);

}  // namespace agis::custlang

#endif  // AGIS_CUSTLANG_COMPILER_H_
