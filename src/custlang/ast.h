#ifndef AGIS_CUSTLANG_AST_H_
#define AGIS_CUSTLANG_AST_H_

#include <map>
#include <string>
#include <vector>

#include "active/customization.h"

namespace agis::custlang {

/// `display attribute <name> as <widget|Null> [from <source>...]
/// [using <callback>]` (Figure 3 / Figure 6 lines 6-12).
struct InstanceAttrClause {
  std::string attribute;
  std::string widget;        // Library prototype name; "" when null_display.
  bool null_display = false; // `as Null`.
  std::vector<std::string> sources;  // `from` clause.
  std::string callback;              // `using` clause.
  int line = 0;

  std::string ToString() const;
};

/// `class <name> display [control as <w>] [presentation as <f>]
/// [instances ...]`.
struct ClassClause {
  std::string class_name;
  std::string control;        // Control-area widget prototype.
  std::string presentation;   // Presentation format.
  std::vector<InstanceAttrClause> attributes;
  int line = 0;

  std::string ToString() const;
};

/// A complete customization directive — one `For ...` block. A single
/// directive "may spawn several customization rules" (Section 3.4).
struct Directive {
  // For clause (the rule Condition; empty = wildcard).
  std::string user;
  std::string category;
  std::string application;
  /// Extended context dimensions (`when <key> <value>` clauses) — the
  /// paper's "conceivable extensions to other contextual data (e.g.,
  /// geographic scale, time framework)".
  std::map<std::string, std::string> extras;

  // Schema clause.
  bool has_schema_clause = false;
  std::string schema_name;
  active::SchemaDisplayMode schema_mode = active::SchemaDisplayMode::kDefault;

  std::vector<ClassClause> classes;

  /// Canonical identity used as rule provenance, e.g.
  /// "For user=juliano application=pole_manager schema=phone_net".
  std::string CanonicalName() const;

  /// Regenerates canonical directive source (parse(ToSource(d)) == d).
  std::string ToSource() const;
};

}  // namespace agis::custlang

#endif  // AGIS_CUSTLANG_AST_H_
