#ifndef AGIS_CUSTLANG_PARSER_H_
#define AGIS_CUSTLANG_PARSER_H_

#include <string_view>
#include <vector>

#include "base/status.h"
#include "custlang/ast.h"

namespace agis::custlang {

/// Parses a single `For ...` directive (Figure 3 grammar). Errors are
/// ParseError statuses with line numbers.
///
/// Lexical rules: tokens are whitespace-separated words; `#` starts a
/// comment to end of line; structural keywords (For, user, category,
/// application, schema, class, display, as, control, presentation,
/// instances, attribute, from, using, Null and the display modes) are
/// case-insensitive and reserved — identifiers must not collide with
/// them. Sources may be dotted paths ("pole.material") or method
/// calls ("get_supplier_name(pole_supplier)"); callbacks are
/// "name.event()" words.
agis::Result<Directive> ParseDirective(std::string_view source);

/// Parses a file of several directives (each starting with `For`).
agis::Result<std::vector<Directive>> ParseDirectives(std::string_view source);

}  // namespace agis::custlang

#endif  // AGIS_CUSTLANG_PARSER_H_
