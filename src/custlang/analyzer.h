#ifndef AGIS_CUSTLANG_ANALYZER_H_
#define AGIS_CUSTLANG_ANALYZER_H_

#include <string>

#include "base/status.h"
#include "carto/style.h"
#include "custlang/ast.h"
#include "geodb/schema.h"
#include "uilib/library.h"

namespace agis::custlang {

/// Optional access-rights hook: the language's "target user ... has
/// knowledge about the database schema and user access rights"
/// (Section 3.4). Returning false rejects the directive for that
/// user/class pair.
using AccessChecker =
    std::function<bool(const Directive&, const std::string& class_name)>;

/// Widget-name aliasing applied before library lookup ("text" is the
/// kernel "text_field", etc.). Returns the canonical prototype name.
std::string CanonicalWidgetName(const std::string& name);

/// Static checks a directive must pass before compilation:
///  - the schema clause names this database's schema;
///  - every class clause names a registered class;
///  - every control widget and instance widget exists in the
///    interface objects library (after aliasing);
///  - every presentation format exists in the style registry;
///  - every customized attribute exists on its class;
///  - `from` sources resolve statically: dotted paths require the
///    customized attribute to be a tuple with a matching field;
///    method calls require the method on the class; plain names
///    require the attribute;
///  - callbacks are `name.event()`-shaped;
///  - the optional access checker admits each class clause.
///
/// Returns the first violation with directive line information.
agis::Status AnalyzeDirective(const Directive& directive,
                              const geodb::Schema& schema,
                              const uilib::InterfaceObjectLibrary& library,
                              const carto::StyleRegistry& styles,
                              const AccessChecker& access_checker = nullptr);

}  // namespace agis::custlang

#endif  // AGIS_CUSTLANG_ANALYZER_H_
