#ifndef AGIS_CUSTLANG_COMPILE_CACHE_H_
#define AGIS_CUSTLANG_COMPILE_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "active/rule.h"
#include "custlang/ast.h"

namespace agis::custlang {

/// Content-hash memo for directive compilation.
///
/// Installing a customization costs a parse, a semantic analysis, and
/// a compile. Sessions re-register the same directive set routinely —
/// ReloadCustomizations after a rule-engine reset, recovery replaying
/// stored directives, every UI session re-asserting its user's
/// customizations. The parse and compile depend only on the directive
/// *text*, so this cache keys on a content hash of the source and
/// stores the parsed Directive plus the compiled rule set; a hit skips
/// both phases. Analysis is deliberately NOT skipped by callers — it
/// validates against the live schema/library, which may have changed
/// since the entry was cached.
///
/// Hash collisions are handled, not assumed away: the entry stores the
/// exact source and a lookup that hashes equal but compares unequal is
/// a miss. Eviction is LRU. Not thread-safe (confine to the session
/// thread, like the rule engine's setup phase).
class CompileCache {
 public:
  struct Entry {
    std::string source;                  // Exact text, collision check.
    Directive directive;                 // Parsed form.
    std::vector<active::EcaRule> rules;  // Compiled form (copyable).
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  explicit CompileCache(size_t capacity = 256) : capacity_(capacity) {}

  /// FNV-1a 64-bit content hash (stable across runs).
  static uint64_t HashSource(std::string_view source);

  /// Cached entry for `source`, or nullptr (also on capacity 0 or a
  /// hash collision). The pointer is valid until the next Put.
  const Entry* Find(std::string_view source);

  /// Find without touching the LRU order or the hit/miss counters —
  /// for internal plumbing (e.g. aliasing a second key to an entry)
  /// that should not masquerade as cache traffic.
  const Entry* Peek(std::string_view source) const;

  /// Caches the parse+compile result for `source` (no-op at capacity
  /// 0; replaces an existing entry for the same text).
  void Put(std::string_view source, Directive directive,
           std::vector<active::EcaRule> rules);

  void Clear();

  Stats stats() const {
    Stats s = stats_;
    s.entries = entries_.size();
    return s;
  }

 private:
  size_t capacity_;
  /// LRU order, most recent first; the map indexes into it by hash.
  std::list<Entry> lru_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> entries_;
  Stats stats_;
};

}  // namespace agis::custlang

#endif  // AGIS_CUSTLANG_COMPILE_CACHE_H_
