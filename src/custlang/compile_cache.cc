#include "custlang/compile_cache.h"

#include <utility>

namespace agis::custlang {

uint64_t CompileCache::HashSource(std::string_view source) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis.
  for (unsigned char c : source) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime.
  }
  return h;
}

const CompileCache::Entry* CompileCache::Find(std::string_view source) {
  if (capacity_ == 0) return nullptr;
  const auto it = entries_.find(HashSource(source));
  if (it == entries_.end() || it->second->source != source) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // Touch.
  ++stats_.hits;
  return &*it->second;
}

const CompileCache::Entry* CompileCache::Peek(std::string_view source) const {
  if (capacity_ == 0) return nullptr;
  const auto it = entries_.find(HashSource(source));
  if (it == entries_.end() || it->second->source != source) return nullptr;
  return &*it->second;
}

void CompileCache::Put(std::string_view source, Directive directive,
                       std::vector<active::EcaRule> rules) {
  if (capacity_ == 0) return;
  const uint64_t hash = HashSource(source);
  const auto it = entries_.find(hash);
  if (it != entries_.end()) {
    // Same text refreshed, or a colliding entry displaced — either
    // way the newest result wins.
    lru_.erase(it->second);
    entries_.erase(it);
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(HashSource(lru_.back().source));
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{std::string(source), std::move(directive),
                        std::move(rules)});
  entries_.emplace(hash, lru_.begin());
}

void CompileCache::Clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace agis::custlang
