#include "custlang/analyzer.h"

#include "base/strutil.h"

namespace agis::custlang {

std::string CanonicalWidgetName(const std::string& name) {
  if (name == "text") return "text_field";
  if (name == "drawing") return "drawing_area";
  if (name == "textfield") return "text_field";
  return name;
}

namespace {

agis::Status LineError(int line, const std::string& message) {
  return agis::Status::FailedPrecondition(
      agis::StrCat("line ", line, ": ", message));
}

/// True when `source` looks like "method(arg)".
bool IsMethodCall(const std::string& source) {
  const size_t paren = source.find('(');
  return paren != std::string::npos && source.back() == ')';
}

agis::Status CheckSource(const geodb::Schema& schema,
                         const std::string& class_name,
                         const geodb::AttributeDef& attr,
                         const std::string& source, int line) {
  if (IsMethodCall(source)) {
    const std::string method =
        agis::Trim(source.substr(0, source.find('(')));
    if (schema.FindMethodOf(class_name, method) == nullptr) {
      return LineError(line, agis::StrCat("class '", class_name,
                                          "' has no method '", method, "'"));
    }
    return agis::Status::OK();
  }
  const size_t dot = source.find('.');
  if (dot != std::string::npos) {
    if (attr.type != geodb::AttrType::kTuple) {
      return LineError(
          line, agis::StrCat("source '", source, "' uses a field path but '",
                             attr.name, "' is not a tuple"));
    }
    const std::string prefix = source.substr(0, dot);
    const std::string field = source.substr(dot + 1);
    const std::string underscored = agis::StrCat(prefix, "_", field);
    const std::string suffix = agis::StrCat("_", field);
    for (const geodb::AttributeDef& f : attr.tuple_fields) {
      if (f.name == field || f.name == underscored ||
          (f.name.size() > suffix.size() &&
           f.name.compare(f.name.size() - suffix.size(), suffix.size(),
                          suffix) == 0)) {
        return agis::Status::OK();
      }
    }
    return LineError(line, agis::StrCat("tuple attribute '", attr.name,
                                        "' has no field matching '", source,
                                        "'"));
  }
  if (schema.FindAttributeOf(class_name, source) == nullptr) {
    return LineError(line, agis::StrCat("class '", class_name,
                                        "' has no attribute '", source, "'"));
  }
  return agis::Status::OK();
}

}  // namespace

agis::Status AnalyzeDirective(const Directive& directive,
                              const geodb::Schema& schema,
                              const uilib::InterfaceObjectLibrary& library,
                              const carto::StyleRegistry& styles,
                              const AccessChecker& access_checker) {
  if (directive.has_schema_clause &&
      directive.schema_name != schema.name()) {
    return agis::Status::NotFound(
        agis::StrCat("directive targets schema '", directive.schema_name,
                     "' but the database schema is '", schema.name(), "'"));
  }

  for (const ClassClause& cls : directive.classes) {
    if (!schema.HasClass(cls.class_name)) {
      return LineError(cls.line, agis::StrCat("unknown class '",
                                              cls.class_name, "'"));
    }
    if (access_checker && !access_checker(directive, cls.class_name)) {
      return agis::Status::PermissionDenied(
          agis::StrCat("user '", directive.user,
                       "' may not customize class '", cls.class_name, "'"));
    }
    if (!cls.control.empty() &&
        !library.Has(CanonicalWidgetName(cls.control))) {
      return LineError(cls.line,
                       agis::StrCat("control widget '", cls.control,
                                    "' is not in the interface library"));
    }
    if (!cls.presentation.empty() && !styles.Has(cls.presentation)) {
      return LineError(cls.line,
                       agis::StrCat("presentation format '", cls.presentation,
                                    "' is not registered"));
    }
    for (const InstanceAttrClause& attr : cls.attributes) {
      const geodb::AttributeDef* def =
          schema.FindAttributeOf(cls.class_name, attr.attribute);
      if (def == nullptr) {
        return LineError(attr.line,
                         agis::StrCat("class '", cls.class_name,
                                      "' has no attribute '", attr.attribute,
                                      "'"));
      }
      if (!attr.null_display &&
          !library.Has(CanonicalWidgetName(attr.widget))) {
        return LineError(attr.line,
                         agis::StrCat("widget '", attr.widget,
                                      "' is not in the interface library"));
      }
      for (const std::string& source : attr.sources) {
        AGIS_RETURN_IF_ERROR(
            CheckSource(schema, cls.class_name, *def, source, attr.line));
      }
      if (!attr.callback.empty()) {
        const std::string& cb = attr.callback;
        const bool shaped = cb.size() > 2 &&
                            cb.compare(cb.size() - 2, 2, "()") == 0 &&
                            cb.find('.') != std::string::npos;
        if (!shaped) {
          return LineError(attr.line,
                           agis::StrCat("callback '", cb,
                                        "' must look like name.event()"));
        }
      }
    }
  }
  return agis::Status::OK();
}

}  // namespace agis::custlang
