#include "custlang/parser.h"

#include <cctype>

#include "base/strutil.h"

namespace agis::custlang {

namespace {

struct Token {
  std::string text;
  int line = 0;
};

/// Whitespace-splitting lexer with `#` comments and line tracking.
std::vector<Token> Lex(std::string_view source) {
  std::vector<Token> out;
  int line = 1;
  size_t i = 0;
  while (i < source.size()) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    while (i < source.size() &&
           !std::isspace(static_cast<unsigned char>(source[i])) &&
           source[i] != '#') {
      ++i;
    }
    out.push_back(Token{std::string(source.substr(start, i - start)), line});
  }
  return out;
}

bool IsKeyword(const std::string& token, const char* keyword) {
  return agis::EqualsIgnoreCase(token, keyword);
}

/// Words that terminate a free-form list (sources).
bool IsStructuralKeyword(const std::string& token) {
  static const char* kKeywords[] = {
      "for",     "user",        "category", "application", "schema",
      "class",   "display",     "as",       "control",     "presentation",
      "instances", "attribute", "from",     "using",       "when",
  };
  for (const char* kw : kKeywords) {
    if (IsKeyword(token, kw)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(Lex(source)) {}

  bool AtEnd() const { return pos_ >= tokens_.size(); }

  const Token& Peek() const {
    static const Token* kEof = new Token{"", -1};
    return AtEnd() ? *kEof : tokens_[pos_];
  }

  Token Take() {
    Token t = Peek();
    if (!AtEnd()) ++pos_;
    return t;
  }

  bool ConsumeKeyword(const char* keyword) {
    if (!AtEnd() && IsKeyword(Peek().text, keyword)) {
      ++pos_;
      return true;
    }
    return false;
  }

  agis::Status ExpectKeyword(const char* keyword) {
    if (ConsumeKeyword(keyword)) return agis::Status::OK();
    return Error(agis::StrCat("expected '", keyword, "', got '", Peek().text,
                              "'"));
  }

  agis::Result<std::string> ExpectIdentifier(const char* what) {
    if (AtEnd()) {
      return Error(agis::StrCat("expected ", what, ", got end of input"));
    }
    if (IsStructuralKeyword(Peek().text)) {
      return Error(agis::StrCat("expected ", what, ", got keyword '",
                                Peek().text, "'"));
    }
    return Take().text;
  }

  agis::Status Error(const std::string& message) const {
    const int line = AtEnd() ? (tokens_.empty() ? 1 : tokens_.back().line)
                             : Peek().line;
    return agis::Status::ParseError(
        agis::StrCat("line ", line, ": ", message));
  }

  agis::Result<Directive> ParseOne() {
    Directive d;
    AGIS_RETURN_IF_ERROR(ExpectKeyword("for"));
    // For clause fields in any order, each at most once.
    while (!AtEnd()) {
      if (IsKeyword(Peek().text, "user")) {
        Take();
        AGIS_ASSIGN_OR_RETURN(d.user, ExpectIdentifier("user name"));
      } else if (IsKeyword(Peek().text, "category")) {
        Take();
        AGIS_ASSIGN_OR_RETURN(d.category, ExpectIdentifier("category name"));
      } else if (IsKeyword(Peek().text, "application")) {
        Take();
        AGIS_ASSIGN_OR_RETURN(d.application,
                              ExpectIdentifier("application name"));
      } else if (IsKeyword(Peek().text, "when")) {
        // Extended context dimension: `when <key> <value>`.
        Take();
        AGIS_ASSIGN_OR_RETURN(std::string key,
                              ExpectIdentifier("context dimension"));
        AGIS_ASSIGN_OR_RETURN(std::string value,
                              ExpectIdentifier("context value"));
        d.extras[key] = value;
      } else {
        break;
      }
    }
    if (d.user.empty() && d.category.empty() && d.application.empty() &&
        d.extras.empty()) {
      return Error("For clause needs at least one of user/category/application");
    }

    if (ConsumeKeyword("schema")) {
      d.has_schema_clause = true;
      AGIS_ASSIGN_OR_RETURN(d.schema_name, ExpectIdentifier("schema name"));
      AGIS_RETURN_IF_ERROR(ExpectKeyword("display"));
      AGIS_RETURN_IF_ERROR(ExpectKeyword("as"));
      const Token mode = Take();
      if (IsKeyword(mode.text, "default")) {
        d.schema_mode = active::SchemaDisplayMode::kDefault;
      } else if (IsKeyword(mode.text, "hierarchy")) {
        d.schema_mode = active::SchemaDisplayMode::kHierarchy;
      } else if (IsKeyword(mode.text, "user-defined")) {
        d.schema_mode = active::SchemaDisplayMode::kUserDefined;
      } else if (IsKeyword(mode.text, "null")) {
        d.schema_mode = active::SchemaDisplayMode::kNull;
      } else {
        return Error(agis::StrCat("unknown schema display mode '", mode.text,
                                  "'"));
      }
    }

    while (!AtEnd() && IsKeyword(Peek().text, "class")) {
      AGIS_ASSIGN_OR_RETURN(ClassClause clause, ParseClassClause());
      d.classes.push_back(std::move(clause));
    }

    if (!d.has_schema_clause && d.classes.empty()) {
      return Error("directive has neither a schema nor a class clause");
    }
    return d;
  }

 private:
  agis::Result<ClassClause> ParseClassClause() {
    ClassClause clause;
    clause.line = Peek().line;
    AGIS_RETURN_IF_ERROR(ExpectKeyword("class"));
    AGIS_ASSIGN_OR_RETURN(clause.class_name, ExpectIdentifier("class name"));
    AGIS_RETURN_IF_ERROR(ExpectKeyword("display"));
    while (!AtEnd()) {
      if (IsKeyword(Peek().text, "control")) {
        Take();
        AGIS_RETURN_IF_ERROR(ExpectKeyword("as"));
        AGIS_ASSIGN_OR_RETURN(clause.control,
                              ExpectIdentifier("control widget name"));
      } else if (IsKeyword(Peek().text, "presentation")) {
        Take();
        AGIS_RETURN_IF_ERROR(ExpectKeyword("as"));
        AGIS_ASSIGN_OR_RETURN(clause.presentation,
                              ExpectIdentifier("presentation format name"));
      } else if (IsKeyword(Peek().text, "instances")) {
        Take();
        while (!AtEnd() && IsKeyword(Peek().text, "display")) {
          AGIS_ASSIGN_OR_RETURN(InstanceAttrClause attr, ParseAttrClause());
          clause.attributes.push_back(std::move(attr));
        }
      } else {
        break;
      }
    }
    return clause;
  }

  agis::Result<InstanceAttrClause> ParseAttrClause() {
    InstanceAttrClause attr;
    attr.line = Peek().line;
    AGIS_RETURN_IF_ERROR(ExpectKeyword("display"));
    AGIS_RETURN_IF_ERROR(ExpectKeyword("attribute"));
    AGIS_ASSIGN_OR_RETURN(attr.attribute, ExpectIdentifier("attribute name"));
    AGIS_RETURN_IF_ERROR(ExpectKeyword("as"));
    if (AtEnd()) return Error("expected widget name or Null");
    if (IsKeyword(Peek().text, "null")) {
      Take();
      attr.null_display = true;
    } else {
      AGIS_ASSIGN_OR_RETURN(attr.widget, ExpectIdentifier("widget name"));
    }
    if (ConsumeKeyword("from")) {
      while (!AtEnd() && !IsStructuralKeyword(Peek().text)) {
        attr.sources.push_back(Take().text);
      }
      if (attr.sources.empty()) {
        return Error("'from' clause needs at least one source");
      }
    }
    if (ConsumeKeyword("using")) {
      AGIS_ASSIGN_OR_RETURN(attr.callback, ExpectIdentifier("callback name"));
    }
    return attr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;

 public:
  size_t position() const { return pos_; }
};

}  // namespace

agis::Result<Directive> ParseDirective(std::string_view source) {
  Parser parser(source);
  AGIS_ASSIGN_OR_RETURN(Directive d, parser.ParseOne());
  if (!parser.AtEnd()) {
    return parser.Error(
        agis::StrCat("unexpected trailing token '", parser.Peek().text, "'"));
  }
  return d;
}

agis::Result<std::vector<Directive>> ParseDirectives(std::string_view source) {
  Parser parser(source);
  std::vector<Directive> out;
  while (!parser.AtEnd()) {
    AGIS_ASSIGN_OR_RETURN(Directive d, parser.ParseOne());
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace agis::custlang
