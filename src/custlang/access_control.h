#ifndef AGIS_CUSTLANG_ACCESS_CONTROL_H_
#define AGIS_CUSTLANG_ACCESS_CONTROL_H_

#include <map>
#include <set>
#include <string>

#include "custlang/analyzer.h"

namespace agis::custlang {

/// Access-rights model behind the customization language: "the target
/// user of this language is the application designer, who has
/// knowledge about the database schema and user access rights"
/// (Section 3.4). A small per-principal class ACL:
///
///  - a *principal* is a user name or a category name (users are
///    checked first, then the directive's category);
///  - by default every principal may customize every class;
///  - once a principal has any Allow entries, it is whitelisted to
///    exactly those classes;
///  - Deny entries override everything.
class AccessControl {
 public:
  AccessControl() = default;

  /// Whitelists `class_name` for `principal` (switches the principal
  /// to whitelist mode).
  void Allow(const std::string& principal, const std::string& class_name);

  /// Blacklists `class_name` for `principal`.
  void Deny(const std::string& principal, const std::string& class_name);

  /// True when `principal` may customize `class_name`.
  bool MayCustomize(const std::string& principal,
                    const std::string& class_name) const;

  /// Evaluates a directive's For-clause principals: the user if bound,
  /// else the category, else the application; unbound directives
  /// ("generic") are always admitted.
  bool Admits(const Directive& directive, const std::string& class_name) const;

  /// Adapts this ACL to the analyzer's hook type.
  AccessChecker AsChecker() const;

 private:
  std::map<std::string, std::set<std::string>> allow_;
  std::map<std::string, std::set<std::string>> deny_;
};

}  // namespace agis::custlang

#endif  // AGIS_CUSTLANG_ACCESS_CONTROL_H_
