#include "custlang/ast.h"

#include "base/strutil.h"

namespace agis::custlang {

std::string InstanceAttrClause::ToString() const {
  std::string out = agis::StrCat("display attribute ", attribute, " as ",
                                 null_display ? "Null" : widget);
  if (!sources.empty()) {
    out += agis::StrCat(" from ", agis::Join(sources, " "));
  }
  if (!callback.empty()) out += agis::StrCat(" using ", callback);
  return out;
}

std::string ClassClause::ToString() const {
  std::string out = agis::StrCat("class ", class_name, " display");
  if (!control.empty()) out += agis::StrCat("\n  control as ", control);
  if (!presentation.empty()) {
    out += agis::StrCat("\n  presentation as ", presentation);
  }
  if (!attributes.empty()) {
    out += "\n  instances";
    for (const InstanceAttrClause& a : attributes) {
      out += agis::StrCat("\n    ", a.ToString());
    }
  }
  return out;
}

std::string Directive::CanonicalName() const {
  std::string out = "For";
  if (!user.empty()) out += agis::StrCat(" user=", user);
  if (!category.empty()) out += agis::StrCat(" category=", category);
  if (!application.empty()) out += agis::StrCat(" application=", application);
  for (const auto& [key, value] : extras) {
    out += agis::StrCat(" ", key, "=", value);
  }
  if (has_schema_clause) out += agis::StrCat(" schema=", schema_name);
  return out;
}

std::string Directive::ToSource() const {
  std::string out = "For";
  if (!user.empty()) out += agis::StrCat(" user ", user);
  if (!category.empty()) out += agis::StrCat(" category ", category);
  if (!application.empty()) out += agis::StrCat(" application ", application);
  for (const auto& [key, value] : extras) {
    out += agis::StrCat(" when ", key, " ", value);
  }
  out += "\n";
  if (has_schema_clause) {
    out += agis::StrCat("schema ", schema_name, " display as ",
                        active::SchemaDisplayModeName(schema_mode), "\n");
  }
  for (const ClassClause& c : classes) {
    out += c.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace agis::custlang
