#include "custlang/compiler.h"

#include "base/strutil.h"
#include "custlang/analyzer.h"

namespace agis::custlang {

namespace {

active::ContextPattern ConditionOf(const Directive& d) {
  active::ContextPattern pattern;
  pattern.user = d.user;
  pattern.category = d.category;
  pattern.application = d.application;
  pattern.extras = d.extras;
  return pattern;
}

active::WindowCustomization SchemaPayload(const Directive& d) {
  active::WindowCustomization cust;
  cust.schema_mode = d.schema_mode;
  for (const ClassClause& cls : d.classes) {
    cust.auto_open_classes.push_back(cls.class_name);
  }
  return cust;
}

active::WindowCustomization ClassPayload(const Directive& d,
                                         const ClassClause& cls) {
  active::WindowCustomization cust;
  cust.schema_mode = d.schema_mode;
  cust.target_class = cls.class_name;
  cust.control_widget = CanonicalWidgetName(cls.control);
  if (cls.control.empty()) cust.control_widget.clear();
  cust.presentation_format = cls.presentation;
  return cust;
}

active::WindowCustomization InstancePayload(const ClassClause& cls) {
  active::WindowCustomization cust;
  cust.target_class = cls.class_name;
  for (const InstanceAttrClause& attr : cls.attributes) {
    active::AttributeCustomization out;
    out.attribute = attr.attribute;
    out.hidden = attr.null_display;
    out.widget = attr.null_display ? "" : CanonicalWidgetName(attr.widget);
    out.sources = attr.sources;
    out.callback = attr.callback;
    cust.attributes.push_back(std::move(out));
  }
  return cust;
}

}  // namespace

std::vector<active::EcaRule> CompileDirective(const Directive& directive) {
  std::vector<active::EcaRule> rules;
  const active::ContextPattern condition = ConditionOf(directive);
  const std::string provenance = directive.CanonicalName();

  if (directive.has_schema_clause) {
    active::EcaRule rule;
    rule.name = agis::StrCat(provenance, "/schema");
    rule.family = active::RuleFamily::kCustomization;
    rule.event_name = active::kEventGetSchema;
    rule.param_filters["schema"] = directive.schema_name;
    rule.condition = condition;
    rule.provenance = provenance;
    const active::WindowCustomization payload = SchemaPayload(directive);
    rule.customization_action =
        [payload](const active::Event&)
        -> agis::Result<active::WindowCustomization> { return payload; };
    rules.push_back(std::move(rule));
  }

  for (const ClassClause& cls : directive.classes) {
    {
      active::EcaRule rule;
      rule.name = agis::StrCat(provenance, "/class/", cls.class_name);
      rule.family = active::RuleFamily::kCustomization;
      rule.event_name = active::kEventGetClass;
      rule.param_filters["class"] = cls.class_name;
      rule.condition = condition;
      rule.provenance = provenance;
      const active::WindowCustomization payload =
          ClassPayload(directive, cls);
      rule.customization_action =
          [payload](const active::Event&)
          -> agis::Result<active::WindowCustomization> { return payload; };
      rules.push_back(std::move(rule));
    }
    if (!cls.attributes.empty()) {
      active::EcaRule rule;
      rule.name = agis::StrCat(provenance, "/instances/", cls.class_name);
      rule.family = active::RuleFamily::kCustomization;
      rule.event_name = active::kEventGetValue;
      rule.param_filters["class"] = cls.class_name;
      rule.condition = condition;
      rule.provenance = provenance;
      const active::WindowCustomization payload = InstancePayload(cls);
      rule.customization_action =
          [payload](const active::Event&)
          -> agis::Result<active::WindowCustomization> { return payload; };
      rules.push_back(std::move(rule));
    }
  }
  return rules;
}

std::string ExplainCompilation(const Directive& directive) {
  const std::vector<active::EcaRule> rules = CompileDirective(directive);
  std::string out = agis::StrCat("directive ", directive.CanonicalName(),
                                 " compiles to ", rules.size(), " rule(s):\n");
  int index = 1;
  for (const active::EcaRule& rule : rules) {
    out += agis::StrCat("R", index++, ": On ", rule.event_name);
    for (const auto& [key, value] : rule.param_filters) {
      out += agis::StrCat("(", key, "=", value, ")");
    }
    out += agis::StrCat("\n    If ", rule.condition.ToString(), "\n    Then ");
    const active::Event probe{rule.event_name, UserContext{}, {}};
    auto payload = rule.customization_action(probe);
    out += payload.ok() ? payload.value().ToString() : payload.status().ToString();
    out += "\n";
  }
  return out;
}

}  // namespace agis::custlang
