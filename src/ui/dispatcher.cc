#include "ui/dispatcher.h"

#include <algorithm>

#include "base/strutil.h"
#include "geodb/query_parser.h"
#include "geom/predicates.h"
#include "uilib/widget_props.h"

namespace agis::ui {

Dispatcher::Dispatcher(geodb::GeoDatabase* db, active::RuleEngine* engine,
                       builder::GenericInterfaceBuilder* builder)
    : db_(db), engine_(engine), builder_(builder) {}

active::Event Dispatcher::MakeEvent(
    const std::string& event_name,
    std::map<std::string, std::string> params) const {
  active::Event event;
  event.name = event_name;
  event.context = context_;
  event.params = std::move(params);
  return event;
}

Dispatcher::CustomizationDecision Dispatcher::DecisionFor(
    const active::Event& event,
    std::optional<active::WindowCustomization> payload) const {
  CustomizationDecision decision;
  decision.payload = std::move(payload);
  if (decision.payload.has_value()) {
    const active::EcaRule* winner = engine_->SelectCustomizationRule(event);
    if (winner != nullptr) {
      decision.rule_name = winner->name;
      decision.provenance = winner->provenance;
    }
  }
  return decision;
}

agis::Result<Dispatcher::CustomizationDecision> Dispatcher::Customize(
    const std::string& event_name,
    std::map<std::string, std::string> params) {
  const active::Event event = MakeEvent(event_name, std::move(params));
  AGIS_ASSIGN_OR_RETURN(std::optional<active::WindowCustomization> payload,
                        engine_->GetCustomization(event));
  return DecisionFor(event, std::move(payload));
}

void Dispatcher::AnnotateWindow(uilib::InterfaceObject* window,
                                const std::string& event_name,
                                const CustomizationDecision& decision) {
  window->SetProperty("built_from_event", event_name);
  if (decision.payload.has_value()) {
    window->SetProperty("customized_by", decision.rule_name);
    if (!decision.provenance.empty()) {
      window->SetProperty("customization_directive", decision.provenance);
    }
  }
}

std::string Dispatcher::ExplainWindow(
    const uilib::InterfaceObject& window) const {
  std::string out = agis::StrCat(
      "window \"", window.name(), "\" was built for context ",
      window.GetProperty("context"), " by event ",
      window.GetProperty("built_from_event"), ". ");
  const std::string& rule = window.GetProperty("customized_by");
  if (rule.empty()) {
    out += "No customization rule matched; the generic default "
           "presentation was used.";
  } else {
    out += agis::StrCat("Customization rule '", rule,
                        "' (most specific match) applied");
    const std::string& directive =
        window.GetProperty("customization_directive");
    if (!directive.empty()) {
      out += agis::StrCat(", compiled from directive [", directive, "]");
    }
    out += ".";
  }
  return out;
}

uilib::InterfaceObject* Dispatcher::Install(
    std::unique_ptr<uilib::InterfaceObject> window) {
  // Maintain the class->window presence index the write path probes.
  if (window->GetProperty(uilib::kPropWindowType) == uilib::kWindowClassSet &&
      window->GetProperty("query").empty()) {
    open_class_windows_.insert(window->GetProperty(uilib::kPropClass));
  }
  // Re-opening a window replaces the previous instance (refresh).
  for (auto& existing : windows_) {
    if (existing->name() == window->name()) {
      existing = std::move(window);
      return existing.get();
    }
  }
  windows_.push_back(std::move(window));
  return windows_.back().get();
}

agis::Result<uilib::InterfaceObject*> Dispatcher::OpenSchemaWindow() {
  // Database event first (Figure 1: interface -> DB events), then the
  // customization decision, then the build.
  AGIS_RETURN_IF_ERROR(db_->GetSchema(context_).status());
  AGIS_ASSIGN_OR_RETURN(
      CustomizationDecision decision,
      Customize(active::kEventGetSchema, {{"schema", db_->schema().name()}}));

  const active::WindowCustomization* cust_ptr =
      decision.payload.has_value() ? &decision.payload.value() : nullptr;
  AGIS_ASSIGN_OR_RETURN(
      std::unique_ptr<uilib::InterfaceObject> window,
      builder_->BuildSchemaWindow(cust_ptr, context_, build_options_));
  AnnotateWindow(window.get(), active::kEventGetSchema, decision);
  log_.push_back(agis::StrCat("open_schema -> Get_Schema(",
                              db_->schema().name(), ")",
                              cust_ptr ? " [customized]" : " [default]"));
  uilib::InterfaceObject* installed = Install(std::move(window));

  // R1 behaviour: a suppressed Schema window opens its classes itself
  // — a multi-window refresh, so resolve the batch concurrently.
  if (cust_ptr != nullptr &&
      cust_ptr->schema_mode == active::SchemaDisplayMode::kNull) {
    AGIS_RETURN_IF_ERROR(OpenClassWindows(cust_ptr->auto_open_classes));
  }
  return installed;
}

agis::Result<uilib::InterfaceObject*> Dispatcher::OpenClassWindowResolved(
    const std::string& class_name, const CustomizationDecision& decision,
    const builder::BuildOptions& options) {
  const active::WindowCustomization* cust_ptr =
      decision.payload.has_value() ? &decision.payload.value() : nullptr;
  AGIS_ASSIGN_OR_RETURN(
      std::unique_ptr<uilib::InterfaceObject> window,
      builder_->BuildClassSetWindow(class_name, cust_ptr, context_, options));
  AnnotateWindow(window.get(), active::kEventGetClass, decision);
  log_.push_back(agis::StrCat("open_class -> Get_Class(", class_name, ")",
                              cust_ptr ? " [customized]" : " [default]"));
  return Install(std::move(window));
}

agis::Result<uilib::InterfaceObject*> Dispatcher::OpenClassWindow(
    const std::string& class_name) {
  AGIS_ASSIGN_OR_RETURN(
      CustomizationDecision decision,
      Customize(active::kEventGetClass, {{"class", class_name}}));
  // Pin the state the window will render; writes racing with the
  // build can no longer tear the presentation area.
  const geodb::Snapshot snap = db_->OpenSnapshot();
  builder::BuildOptions options = build_options_;
  options.snapshot = &snap;
  return OpenClassWindowResolved(class_name, decision, options);
}

agis::Status Dispatcher::OpenClassWindows(
    const std::vector<std::string>& class_names) {
  const geodb::Snapshot snap = db_->OpenSnapshot();
  return OpenClassWindows(class_names, &snap);
}

agis::Status Dispatcher::OpenClassWindows(
    const std::vector<std::string>& class_names,
    const geodb::Snapshot* snapshot) {
  std::vector<active::Event> events;
  events.reserve(class_names.size());
  for (const std::string& cls : class_names) {
    events.push_back(MakeEvent(active::kEventGetClass, {{"class", cls}}));
  }
  const auto payloads = engine_->GetCustomizationBatch(events, scheduler_);
  builder::BuildOptions options = build_options_;
  options.snapshot = snapshot;
  for (size_t i = 0; i < class_names.size(); ++i) {
    AGIS_RETURN_IF_ERROR(payloads[i].status());
    const CustomizationDecision decision =
        DecisionFor(events[i], payloads[i].value());
    AGIS_RETURN_IF_ERROR(
        OpenClassWindowResolved(class_names[i], decision, options).status());
  }
  return agis::Status::OK();
}

agis::Result<uilib::InterfaceObject*> Dispatcher::OpenInstanceWindow(
    geodb::ObjectId id) {
  // Pin first, then read through the snapshot: the instance the
  // window shows stays valid across concurrent writes (and deletes)
  // for the whole build.
  const geodb::Snapshot snap = db_->OpenSnapshot();
  // The Get_Value event runs inside the DBMS.
  AGIS_ASSIGN_OR_RETURN(const geodb::ObjectInstance* obj,
                        db_->GetValueAt(snap, id, context_));
  AGIS_ASSIGN_OR_RETURN(
      CustomizationDecision decision,
      Customize(active::kEventGetValue,
                {{"class", obj->class_name()},
                 {"object", agis::StrCat(id)}}));
  const active::WindowCustomization* cust_ptr =
      decision.payload.has_value() ? &decision.payload.value() : nullptr;
  builder::BuildOptions options = build_options_;
  options.snapshot = &snap;
  AGIS_ASSIGN_OR_RETURN(
      std::unique_ptr<uilib::InterfaceObject> window,
      builder_->BuildInstanceWindow(id, cust_ptr, context_, options));
  AnnotateWindow(window.get(), active::kEventGetValue, decision);
  log_.push_back(agis::StrCat("open_instance -> Get_Value(",
                              obj->class_name(), "#", id, ")",
                              cust_ptr ? " [customized]" : " [default]"));
  return Install(std::move(window));
}

agis::Result<uilib::InterfaceObject*> Dispatcher::OpenQueryWindow(
    const std::string& query_text) {
  AGIS_ASSIGN_OR_RETURN(geodb::ParsedQuery parsed,
                        geodb::ParseQuery(query_text, db_->schema()));
  AGIS_ASSIGN_OR_RETURN(
      CustomizationDecision decision,
      Customize(active::kEventGetClass, {{"class", parsed.class_name}}));
  const active::WindowCustomization* cust_ptr =
      decision.payload.has_value() ? &decision.payload.value() : nullptr;
  const geodb::Snapshot snap = db_->OpenSnapshot();
  builder::BuildOptions options = build_options_;
  options.query = parsed.options;
  options.snapshot = &snap;
  AGIS_ASSIGN_OR_RETURN(
      std::unique_ptr<uilib::InterfaceObject> window,
      builder_->BuildClassSetWindow(parsed.class_name, cust_ptr, context_,
                                    options));
  window->set_name(agis::StrCat("Query: ", query_text));
  window->SetProperty("query", query_text);
  AnnotateWindow(window.get(), active::kEventGetClass, decision);
  log_.push_back(agis::StrCat("query -> Get_Class(", parsed.class_name,
                              ") [", query_text, "]"));
  return Install(std::move(window));
}

agis::Result<uilib::InterfaceObject*> Dispatcher::SelectClassInSchema(
    size_t index) {
  uilib::InterfaceObject* schema_window = nullptr;
  for (auto& w : windows_) {
    if (w->GetProperty(uilib::kPropWindowType) == uilib::kWindowSchema) {
      schema_window = w.get();
      break;
    }
  }
  if (schema_window == nullptr) {
    return agis::Status::FailedPrecondition("no Schema window is open");
  }
  uilib::InterfaceObject* list = schema_window->FindDescendant("classes");
  if (list == nullptr) {
    return agis::Status::FailedPrecondition(
        "Schema window has no class list (display mode hides it)");
  }
  // Interface event: the click/selection on the list widget.
  uilib::SelectListItem(list, index);
  const std::string selected = uilib::SelectedListItem(*list);
  if (selected.empty()) {
    return agis::Status::OutOfRange(agis::StrCat("no class at index ", index));
  }
  log_.push_back(
      agis::StrCat("ui.select classes[", index, "] = ", selected));
  // Database event + window build.
  return OpenClassWindow(selected);
}

agis::Result<uilib::InterfaceObject*> Dispatcher::SelectInstanceAt(
    const std::string& class_name, const geom::Point& p, double tolerance) {
  const uilib::InterfaceObject* window =
      FindWindow(agis::StrCat("Class set: ", class_name));
  if (window == nullptr) {
    return agis::Status::FailedPrecondition(
        agis::StrCat("no Class set window open for '", class_name, "'"));
  }
  const uilib::InterfaceObject* area = window->FindDescendant("presentation");
  if (area == nullptr) {
    return agis::Status::Internal("class window has no presentation area");
  }
  const std::string& ids_csv = area->GetProperty("ids");
  if (ids_csv.empty()) {
    return agis::Status::NotFound("presentation area shows no features");
  }
  const std::string geom_attr = db_->GeometryAttributeOf(class_name);
  geodb::ObjectId best = 0;
  double best_dist = tolerance;
  const geom::Geometry probe = geom::Geometry::FromPoint(p);
  // One snapshot for the whole hit-test: the distances are computed
  // against a single consistent state, and pointers stay valid even
  // if a writer deletes features mid-loop.
  const geodb::Snapshot snap = db_->OpenSnapshot();
  for (const std::string& id_str : agis::Split(ids_csv, ',')) {
    const geodb::ObjectId id = std::stoull(id_str);
    const geodb::ObjectInstance* obj = db_->FindObjectAt(snap, id);
    if (obj == nullptr) continue;
    const geodb::Value& gv = obj->Get(geom_attr);
    if (gv.is_null()) continue;
    const double d = geom::Distance(probe, gv.geometry_value());
    if (d <= best_dist) {
      best_dist = d;
      best = id;
    }
  }
  if (best == 0) {
    return agis::Status::NotFound(
        agis::StrCat("no feature within ", agis::DoubleToString(tolerance),
                     " of (", agis::DoubleToString(p.x), ", ",
                     agis::DoubleToString(p.y), ")"));
  }
  log_.push_back(agis::StrCat("ui.click map(", agis::DoubleToString(p.x),
                              ",", agis::DoubleToString(p.y), ") -> object ",
                              best));
  return OpenInstanceWindow(best);
}

agis::Status Dispatcher::CloseWindow(const std::string& window_name) {
  for (auto it = windows_.begin(); it != windows_.end(); ++it) {
    if ((*it)->name() == window_name) {
      log_.push_back(agis::StrCat("close ", window_name));
      if ((*it)->GetProperty(uilib::kPropWindowType) ==
              uilib::kWindowClassSet &&
          (*it)->GetProperty("query").empty()) {
        open_class_windows_.erase((*it)->GetProperty(uilib::kPropClass));
      }
      windows_.erase(it);
      return agis::Status::OK();
    }
  }
  return agis::Status::NotFound(agis::StrCat("window '", window_name, "'"));
}

std::vector<const uilib::InterfaceObject*> Dispatcher::windows() const {
  std::vector<const uilib::InterfaceObject*> out;
  out.reserve(windows_.size());
  for (const auto& w : windows_) out.push_back(w.get());
  return out;
}

const uilib::InterfaceObject* Dispatcher::FindWindow(
    const std::string& name) const {
  for (const auto& w : windows_) {
    if (w->name() == name) return w.get();
  }
  return nullptr;
}

uilib::InterfaceObject* Dispatcher::FindWindowMutable(
    const std::string& name) {
  for (const auto& w : windows_) {
    if (w->name() == name) return w.get();
  }
  return nullptr;
}

std::vector<const uilib::InterfaceObject*> Dispatcher::visible_windows()
    const {
  std::vector<const uilib::InterfaceObject*> out;
  for (const auto& w : windows_) {
    if (w->GetProperty(uilib::kPropHidden) != "true") out.push_back(w.get());
  }
  return out;
}

}  // namespace agis::ui
