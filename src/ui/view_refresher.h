#ifndef AGIS_UI_VIEW_REFRESHER_H_
#define AGIS_UI_VIEW_REFRESHER_H_

#include <cstdint>

#include "active/engine.h"
#include "base/status.h"
#include "ui/dispatcher.h"

namespace agis::ui {

/// Dynamic display maintenance through the same active mechanism —
/// the capability of Diaz et al. [3] the paper contrasts itself with
/// ("their emphasis is on dynamically reflecting database state
/// changes in the interface, akin to a view refresh"). Implemented
/// here as one more *general* rule family to demonstrate that the
/// engine serves both customization and view maintenance.
///
/// Installs general rules on After_Insert / After_Update /
/// After_Delete. When a write touches a class whose Class-set window
/// is open, the window is either flagged stale (kMarkStale — the
/// window gets a "stale"="true" property a real toolkit would render
/// as a refresh affordance) or rebuilt in place (kAutoRefresh).
/// Only plain Class-set windows are tracked; ad-hoc query windows
/// ("Query: ...") represent a moment-in-time answer and stay as built.
class ViewRefresher {
 public:
  enum class Mode { kMarkStale, kAutoRefresh };

  /// `dispatcher` and `engine` must outlive this object.
  ViewRefresher(Dispatcher* dispatcher, active::RuleEngine* engine,
                Mode mode = Mode::kMarkStale);

  ViewRefresher(const ViewRefresher&) = delete;
  ViewRefresher& operator=(const ViewRefresher&) = delete;

  ~ViewRefresher();

  /// Installs the three rules; idempotent.
  agis::Status Install();

  /// Removes the rules; returns how many were removed.
  size_t Uninstall();

  /// Rebuilds every Class-set window currently flagged stale (the
  /// kMarkStale mode's deferred half): customizations for the whole
  /// batch resolve in one GetCustomizationBatch call — concurrently
  /// when the dispatcher has a thread pool. Returns how many windows
  /// were rebuilt.
  agis::Result<size_t> RefreshStale();

  Mode mode() const { return mode_; }
  uint64_t windows_marked_stale() const { return marked_; }
  uint64_t windows_refreshed() const { return refreshed_; }

 private:
  agis::Status OnWrite(const active::Event& event);

  Dispatcher* dispatcher_;
  active::RuleEngine* engine_;
  Mode mode_;
  bool installed_ = false;
  uint64_t marked_ = 0;
  uint64_t refreshed_ = 0;
};

}  // namespace agis::ui

#endif  // AGIS_UI_VIEW_REFRESHER_H_
