#ifndef AGIS_UI_VIEW_REFRESHER_H_
#define AGIS_UI_VIEW_REFRESHER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "active/engine.h"
#include "base/status.h"
#include "carto/incremental.h"
#include "carto/style.h"
#include "storage/changefeed.h"
#include "ui/dispatcher.h"

namespace agis::ui {

/// Dynamic display maintenance through the same active mechanism —
/// the capability of Diaz et al. [3] the paper contrasts itself with
/// ("their emphasis is on dynamically reflecting database state
/// changes in the interface, akin to a view refresh"). Implemented
/// here as one more *general* rule family to demonstrate that the
/// engine serves both customization and view maintenance.
///
/// Installs general rules on After_Insert / After_Update /
/// After_Delete. When a write touches a class whose Class-set window
/// is open, the window is either flagged stale (kMarkStale — the
/// window gets a "stale"="true" property a real toolkit would render
/// as a refresh affordance) or rebuilt in place (kAutoRefresh).
/// Only plain Class-set windows are tracked; ad-hoc query windows
/// ("Query: ...") represent a moment-in-time answer and stay as built.
///
/// ---- Incremental maintenance (changefeed consumer) ---------------------
///
/// With AttachChangefeed, RefreshStale stops rebuilding stale windows
/// from scratch: it polls the feed's deltas, accumulates the dirty
/// object ids per class, and patches only the affected rows/symbols of
/// each stale window through a retained carto::IncrementalView —
/// re-reading just the dirty objects from one pinned snapshot. The
/// full rebuild path remains as the fallback, taken per window when
/// its retained state cannot be trusted or built: on a feed resync
/// (the subscriber lagged past the ring's tail), on schema-shaped
/// deltas, for generalized presentations, and when the dispatcher's
/// build options carry a non-default query. A patched window keeps its
/// viewport (the map does not re-zoom under the user); a full rebuild
/// re-fits it.
class ViewRefresher {
 public:
  enum class Mode { kMarkStale, kAutoRefresh };

  /// `dispatcher` and `engine` must outlive this object.
  ViewRefresher(Dispatcher* dispatcher, active::RuleEngine* engine,
                Mode mode = Mode::kMarkStale);

  ViewRefresher(const ViewRefresher&) = delete;
  ViewRefresher& operator=(const ViewRefresher&) = delete;

  ~ViewRefresher();

  /// Installs the three rules; idempotent.
  agis::Status Install();

  /// Removes the rules; returns how many were removed.
  size_t Uninstall();

  /// Subscribes to `feed` and switches RefreshStale to incremental
  /// patching. `styles` renders patched symbols (pass the registry the
  /// windows were built with). Both must outlive this object (or a
  /// DetachChangefeed call). Idempotent per feed: re-attaching
  /// replaces the subscription.
  void AttachChangefeed(storage::Changefeed* feed,
                        const carto::StyleRegistry* styles);

  /// Unsubscribes and drops all retained window state; RefreshStale
  /// reverts to full rebuilds.
  void DetachChangefeed();

  bool changefeed_attached() const { return feed_ != nullptr; }

  /// Brings every Class-set window currently flagged stale current
  /// (the kMarkStale mode's deferred half): by per-delta patching when
  /// a changefeed is attached, otherwise by rebuilding each window
  /// (customizations for the batch resolve in one GetCustomizationBatch
  /// call — concurrently when the dispatcher has a thread pool).
  /// Returns how many windows were refreshed (patched + rebuilt).
  agis::Result<size_t> RefreshStale();

  Mode mode() const { return mode_; }
  uint64_t windows_marked_stale() const { return marked_; }
  uint64_t windows_refreshed() const { return refreshed_; }
  /// Stale windows brought current by delta patching.
  uint64_t windows_patched() const { return patched_; }
  /// Stale windows that took the full-rebuild fallback.
  uint64_t full_rebuilds() const { return rebuilds_; }
  /// Times the feed dropped this consumer to resync.
  uint64_t resyncs() const { return resyncs_; }

 private:
  /// Retained incremental state of one Class-set window.
  struct WindowView {
    std::string class_name;
    std::string geometry_attr;
    std::string feature_style;
    /// All extent members shown in the "ids" property (features with
    /// null geometry are members without symbols).
    std::set<geodb::ObjectId> member_ids;
    std::unique_ptr<carto::IncrementalView> view;
    /// Matches the window's "ivm_seed" property; a rebuilt window
    /// loses the property, which invalidates this state.
    std::string seed_token;
  };

  agis::Status OnWrite(const active::Event& event);

  /// Whether the dispatcher's build options allow patching at all
  /// (default query shape, no generalization).
  bool PatchableBuildOptions() const;

  /// Builds (or revalidates) the retained view of `window` from its
  /// presentation area and `snap`. False when the window's shape rules
  /// patching out (missing area, generalized, no seed possible).
  bool EnsureSeeded(uilib::InterfaceObject* window, WindowView* state,
                    const geodb::Snapshot& snap);

  /// Applies the dirty ids of the window's class and rewrites the
  /// presentation-area properties.
  agis::Status PatchWindow(uilib::InterfaceObject* window, WindowView* state,
                           const std::set<geodb::ObjectId>& dirty,
                           const geodb::Snapshot& snap);

  Dispatcher* dispatcher_;
  active::RuleEngine* engine_;
  Mode mode_;
  bool installed_ = false;
  uint64_t marked_ = 0;
  uint64_t refreshed_ = 0;
  uint64_t patched_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t resyncs_ = 0;

  storage::Changefeed* feed_ = nullptr;
  storage::Changefeed::SubscriberId subscriber_ = 0;
  const carto::StyleRegistry* styles_ = nullptr;
  /// Retained views keyed by window name.
  std::map<std::string, WindowView> views_;
  uint64_t next_seed_token_ = 1;
};

}  // namespace agis::ui

#endif  // AGIS_UI_VIEW_REFRESHER_H_
