#include "ui/view_refresher.h"

#include "base/strutil.h"
#include "uilib/widget_props.h"

namespace agis::ui {

namespace {
constexpr const char* kProvenance = "view_refresh";
}  // namespace

ViewRefresher::ViewRefresher(Dispatcher* dispatcher,
                             active::RuleEngine* engine, Mode mode)
    : dispatcher_(dispatcher), engine_(engine), mode_(mode) {}

ViewRefresher::~ViewRefresher() {
  if (installed_) Uninstall();
}

agis::Status ViewRefresher::OnWrite(const active::Event& event) {
  const std::string& class_name = event.Param("class");
  if (class_name.empty()) return agis::Status::OK();
  const std::string window_name = agis::StrCat("Class set: ", class_name);
  const uilib::InterfaceObject* window = dispatcher_->FindWindow(window_name);
  if (window == nullptr) return agis::Status::OK();
  if (mode_ == Mode::kMarkStale) {
    // The dispatcher owns the window; the const view is its public
    // face. Staleness is a UI annotation, not a structural change.
    const_cast<uilib::InterfaceObject*>(window)->SetProperty("stale", "true");
    ++marked_;
    return agis::Status::OK();
  }
  ++refreshed_;
  return dispatcher_->OpenClassWindow(class_name).status();
}

agis::Status ViewRefresher::Install() {
  if (installed_) return agis::Status::OK();
  for (const char* event_name :
       {"After_Insert", "After_Update", "After_Delete"}) {
    active::EcaRule rule;
    rule.name = agis::StrCat(kProvenance, "@", event_name);
    rule.family = active::RuleFamily::kGeneral;
    rule.event_name = event_name;
    rule.provenance = kProvenance;
    rule.general_action = [this](const active::Event& event) {
      return OnWrite(event);
    };
    AGIS_RETURN_IF_ERROR(engine_->AddRule(std::move(rule)).status());
  }
  installed_ = true;
  return agis::Status::OK();
}

size_t ViewRefresher::Uninstall() {
  installed_ = false;
  return engine_->RemoveRulesByProvenance(kProvenance);
}

agis::Result<size_t> ViewRefresher::RefreshStale() {
  // One pinned snapshot for the whole pass: the stale set is decided
  // and every window rebuilt against the same database state, so two
  // windows refreshed together can never show each other's past.
  const geodb::Snapshot snap = dispatcher_->database()->OpenSnapshot();
  std::vector<std::string> stale_classes;
  for (const uilib::InterfaceObject* window : dispatcher_->windows()) {
    if (window->GetProperty("stale") == "true" &&
        window->GetProperty(uilib::kPropWindowType) == uilib::kWindowClassSet &&
        window->GetProperty("query").empty()) {
      stale_classes.push_back(window->GetProperty(uilib::kPropClass));
    }
  }
  if (stale_classes.empty()) return static_cast<size_t>(0);
  AGIS_RETURN_IF_ERROR(dispatcher_->OpenClassWindows(stale_classes, &snap));
  refreshed_ += stale_classes.size();
  return stale_classes.size();
}

}  // namespace agis::ui
