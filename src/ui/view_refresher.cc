#include "ui/view_refresher.h"

#include <cstdlib>
#include <utility>
#include <vector>

#include "base/strutil.h"
#include "uilib/widget_props.h"

namespace agis::ui {

namespace {
constexpr const char* kProvenance = "view_refresh";
constexpr const char* kSeedProp = "ivm_seed";

std::string WindowNameFor(const std::string& class_name) {
  return agis::StrCat("Class set: ", class_name);
}
}  // namespace

ViewRefresher::ViewRefresher(Dispatcher* dispatcher,
                             active::RuleEngine* engine, Mode mode)
    : dispatcher_(dispatcher), engine_(engine), mode_(mode) {}

ViewRefresher::~ViewRefresher() {
  DetachChangefeed();
  if (installed_) Uninstall();
}

agis::Status ViewRefresher::OnWrite(const active::Event& event) {
  const std::string& class_name = event.Param("class");
  if (class_name.empty()) return agis::Status::OK();
  // Presence check before any allocation: most writes touch classes
  // with no open window, and this hook runs on every one of them.
  if (!dispatcher_->HasOpenClassWindow(class_name)) return agis::Status::OK();
  const std::string window_name = WindowNameFor(class_name);
  const uilib::InterfaceObject* window = dispatcher_->FindWindow(window_name);
  if (window == nullptr) return agis::Status::OK();
  if (mode_ == Mode::kMarkStale) {
    // The dispatcher owns the window; the const view is its public
    // face. Staleness is a UI annotation, not a structural change.
    const_cast<uilib::InterfaceObject*>(window)->SetProperty("stale", "true");
    ++marked_;
    return agis::Status::OK();
  }
  ++refreshed_;
  ++rebuilds_;
  return dispatcher_->OpenClassWindow(class_name).status();
}

agis::Status ViewRefresher::Install() {
  if (installed_) return agis::Status::OK();
  for (const char* event_name :
       {"After_Insert", "After_Update", "After_Delete"}) {
    active::EcaRule rule;
    rule.name = agis::StrCat(kProvenance, "@", event_name);
    rule.family = active::RuleFamily::kGeneral;
    rule.event_name = event_name;
    rule.provenance = kProvenance;
    rule.general_action = [this](const active::Event& event) {
      return OnWrite(event);
    };
    AGIS_RETURN_IF_ERROR(engine_->AddRule(std::move(rule)).status());
  }
  installed_ = true;
  return agis::Status::OK();
}

size_t ViewRefresher::Uninstall() {
  installed_ = false;
  return engine_->RemoveRulesByProvenance(kProvenance);
}

void ViewRefresher::AttachChangefeed(storage::Changefeed* feed,
                                     const carto::StyleRegistry* styles) {
  DetachChangefeed();
  feed_ = feed;
  styles_ = styles;
  if (feed_ != nullptr) subscriber_ = feed_->Subscribe();
}

void ViewRefresher::DetachChangefeed() {
  if (feed_ != nullptr) feed_->Unsubscribe(subscriber_);
  feed_ = nullptr;
  subscriber_ = 0;
  styles_ = nullptr;
  views_.clear();
}

bool ViewRefresher::PatchableBuildOptions() const {
  const builder::BuildOptions& options = dispatcher_->build_options();
  if (options.generalize) return false;
  // Patchable windows render the plain class extent; any query shape
  // (viewport, predicates, subclasses, truncation) would make the
  // window's membership depend on more than the per-object deltas.
  const geodb::GetClassOptions& query = options.query;
  return !query.include_subclasses && !query.window.has_value() &&
         !query.spatial.has_value() && query.predicates.empty() &&
         query.limit == 0;
}

bool ViewRefresher::EnsureSeeded(uilib::InterfaceObject* window,
                                 WindowView* state,
                                 const geodb::Snapshot& snap) {
  if (state->view != nullptr && !state->seed_token.empty() &&
      window->GetProperty(kSeedProp) == state->seed_token) {
    return true;  // Retained state still matches this window build.
  }
  uilib::InterfaceObject* area = window->FindChild("presentation");
  if (area == nullptr) return false;
  if (area->GetProperty("generalized") == "true") return false;
  const int width = std::atoi(area->GetProperty("map_width").c_str());
  const int height = std::atoi(area->GetProperty("map_height").c_str());
  if (width <= 0 || height <= 0) return false;

  const std::string style_label = area->GetProperty(uilib::kPropStyle);
  state->feature_style =
      (style_label.empty() || style_label == "default") ? "defaultFormat"
                                                        : style_label;
  geodb::GeoDatabase* db = dispatcher_->database();
  state->geometry_attr = db->GeometryAttributeOf(state->class_name);

  // Seed membership from the window's own ids (current as of its last
  // build) and geometry from the live snapshot: unacked deltas between
  // the two re-apply idempotently in PatchWindow, since application
  // always re-reads the snapshot.
  state->member_ids.clear();
  std::vector<carto::StyledFeature> features;
  for (const std::string& token : agis::Split(area->GetProperty("ids"), ',')) {
    if (token.empty()) continue;
    const geodb::ObjectId id =
        static_cast<geodb::ObjectId>(std::strtoull(token.c_str(), nullptr, 10));
    if (id == 0) continue;
    const geodb::ObjectInstance* obj = db->FindObjectAt(snap, id);
    if (obj == nullptr || obj->class_name() != state->class_name) continue;
    state->member_ids.insert(id);
    if (state->geometry_attr.empty()) continue;
    const geodb::Value& value = obj->Get(state->geometry_attr);
    if (value.is_null()) continue;
    features.push_back(carto::StyledFeature{id, value.geometry_value(),
                                            state->feature_style, ""});
  }

  state->view = std::make_unique<carto::IncrementalView>(
      styles_, carto::MapCanvas::FitBounds(features), width, height);
  for (const carto::StyledFeature& feature : features) {
    state->view->Upsert(feature);
  }
  state->seed_token = agis::StrCat("seed-", next_seed_token_++);
  window->SetProperty(kSeedProp, state->seed_token);
  return true;
}

agis::Status ViewRefresher::PatchWindow(uilib::InterfaceObject* window,
                                        WindowView* state,
                                        const std::set<geodb::ObjectId>& dirty,
                                        const geodb::Snapshot& snap) {
  geodb::GeoDatabase* db = dispatcher_->database();
  for (geodb::ObjectId id : dirty) {
    const geodb::ObjectInstance* obj = db->FindObjectAt(snap, id);
    if (obj == nullptr || obj->class_name() != state->class_name) {
      state->member_ids.erase(id);
      state->view->Remove(id);
      continue;
    }
    state->member_ids.insert(id);
    if (state->geometry_attr.empty()) continue;
    const geodb::Value& value = obj->Get(state->geometry_attr);
    if (value.is_null()) {
      state->view->Remove(id);
    } else {
      state->view->Upsert(carto::StyledFeature{id, value.geometry_value(),
                                               state->feature_style, ""});
    }
  }

  uilib::InterfaceObject* area = window->FindChild("presentation");
  if (area == nullptr) {
    return agis::Status::Internal("patched window lost presentation area");
  }
  std::string ids_csv;
  for (geodb::ObjectId id : state->member_ids) {
    if (!ids_csv.empty()) ids_csv += ',';
    ids_csv += agis::StrCat(id);
  }
  area->SetProperty("ids", ids_csv);
  area->SetProperty(uilib::kPropFeatureCount,
                    agis::StrCat(state->view->feature_count()));
  area->SetProperty(uilib::kPropContent, state->view->RenderFramedAscii());
  area->SetProperty(uilib::kPropSvg, state->view->RenderSvg());
  window->SetProperty("stale", "false");
  return agis::Status::OK();
}

agis::Result<size_t> ViewRefresher::RefreshStale() {
  // One pinned snapshot for the whole pass: the stale set is decided
  // and every window patched or rebuilt against the same database
  // state, so two windows refreshed together can never show each
  // other's past.
  const geodb::Snapshot snap = dispatcher_->database()->OpenSnapshot();

  // Drain the feed first (even when nothing is stale — acking bounds
  // this subscriber's lag so an idle session is never dropped).
  bool patchable = feed_ != nullptr;
  std::map<std::string, std::set<geodb::ObjectId>> dirty_by_class;
  uint64_t ack_seq = 0;
  if (feed_ != nullptr) {
    const storage::ChangefeedPoll poll = feed_->Poll(subscriber_);
    ack_seq = poll.next_seq;
    if (poll.resync) {
      // We fell past the ring's tail: the deltas between our cursor
      // and the tail are gone, so retained state cannot be trusted.
      ++resyncs_;
      patchable = false;
      views_.clear();
    }
    for (const storage::ChangeRecord& record : poll.records) {
      if (record.kind == storage::ChangeKind::kSchema) {
        // Schema-shaped deltas (new classes, hierarchy changes) can
        // alter window membership wholesale; fall back to rebuilds.
        patchable = false;
        views_.clear();
        break;
      }
      dirty_by_class[record.class_name].insert(record.object_id);
    }
  }
  patchable = patchable && PatchableBuildOptions();

  std::vector<uilib::InterfaceObject*> stale_windows;
  for (const uilib::InterfaceObject* window : dispatcher_->windows()) {
    if (window->GetProperty("stale") == "true" &&
        window->GetProperty(uilib::kPropWindowType) == uilib::kWindowClassSet &&
        window->GetProperty("query").empty()) {
      stale_windows.push_back(dispatcher_->FindWindowMutable(window->name()));
    }
  }
  if (stale_windows.empty()) {
    if (feed_ != nullptr && ack_seq != 0) {
      AGIS_RETURN_IF_ERROR(feed_->Ack(subscriber_, ack_seq));
    }
    return static_cast<size_t>(0);
  }

  std::vector<std::string> rebuild_classes;
  size_t patched_here = 0;
  for (uilib::InterfaceObject* window : stale_windows) {
    const std::string class_name = window->GetProperty(uilib::kPropClass);
    bool patched = false;
    if (patchable) {
      WindowView* state = &views_[window->name()];
      state->class_name = class_name;
      if (EnsureSeeded(window, state, snap)) {
        static const std::set<geodb::ObjectId> kNoDirty;
        auto it = dirty_by_class.find(class_name);
        const std::set<geodb::ObjectId>& dirty =
            it != dirty_by_class.end() ? it->second : kNoDirty;
        AGIS_RETURN_IF_ERROR(PatchWindow(window, state, dirty, snap));
        patched = true;
      } else {
        views_.erase(window->name());
      }
    }
    if (patched) {
      ++patched_here;
      ++patched_;
    } else {
      rebuild_classes.push_back(class_name);
    }
  }

  if (!rebuild_classes.empty()) {
    AGIS_RETURN_IF_ERROR(dispatcher_->OpenClassWindows(rebuild_classes, &snap));
    rebuilds_ += rebuild_classes.size();
    // The rebuild replaced those InterfaceObjects; retained views
    // seeded against the old builds are dead weight (the seed-token
    // check would catch them lazily, but drop the painted-cell state
    // now).
    for (const std::string& class_name : rebuild_classes) {
      views_.erase(WindowNameFor(class_name));
    }
  }

  // Ack only after every stale window incorporated the drained deltas;
  // a failure above leaves the cursor put, and the next pass re-polls
  // the same records (delta application is idempotent).
  if (feed_ != nullptr && ack_seq != 0) {
    AGIS_RETURN_IF_ERROR(feed_->Ack(subscriber_, ack_seq));
  }

  const size_t total = patched_here + rebuild_classes.size();
  refreshed_ += total;
  return total;
}

}  // namespace agis::ui
