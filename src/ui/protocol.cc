#include "ui/protocol.h"

namespace agis::ui {

agis::Result<DbResponse> DbProtocol::Execute(const DbRequest& request) {
  DbResponse response;
  response.kind = request.kind;
  switch (request.kind) {
    case DbRequest::Kind::kGetSchema: {
      AGIS_ASSIGN_OR_RETURN(const geodb::Schema* schema,
                            db_->GetSchema(request.context));
      response.schema_name = schema->name();
      response.class_names = schema->ClassNames();
      break;
    }
    case DbRequest::Kind::kGetClass: {
      AGIS_ASSIGN_OR_RETURN(
          response.class_result,
          db_->GetClass(request.class_name, request.class_options,
                        request.context));
      break;
    }
    case DbRequest::Kind::kGetValue: {
      // Pin while the response is serialized: the instance cannot be
      // freed by a concurrent write mid-copy.
      const geodb::Snapshot snap = db_->OpenSnapshot();
      AGIS_ASSIGN_OR_RETURN(
          const geodb::ObjectInstance* obj,
          db_->GetValueAt(snap, request.object_id, request.context));
      response.instance_class = obj->class_name();
      response.instance_id = obj->id();
      AGIS_ASSIGN_OR_RETURN(
          std::vector<geodb::AttributeDef> attrs,
          db_->schema().AllAttributesOf(obj->class_name()));
      for (const geodb::AttributeDef& attr : attrs) {
        response.attribute_values.emplace_back(
            attr.name, obj->Get(attr.name).ToDisplayString());
      }
      break;
    }
  }
  ++requests_served_;
  return response;
}

}  // namespace agis::ui
