#ifndef AGIS_UI_DISPATCHER_H_
#define AGIS_UI_DISPATCHER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "active/engine.h"
#include "base/context.h"
#include "base/status.h"
#include "base/task_scheduler.h"
#include "base/thread_pool.h"
#include "builder/interface_builder.h"
#include "geodb/database.h"
#include "geom/point.h"
#include "uilib/interface_object.h"

namespace agis::ui {

/// The generic interface control module (Section 3.5): creates and
/// maintains the (Schema, Class set, Instance) window hierarchy,
/// splits user interactions into interface events (widget callbacks)
/// and database events, and lets the active mechanism customize every
/// window transparently — the dispatcher's code path is identical
/// with and without customization.
///
/// A Dispatcher models one interactive session: it holds the current
/// user context and the open windows.
class Dispatcher {
 public:
  /// All pointers are borrowed.
  Dispatcher(geodb::GeoDatabase* db, active::RuleEngine* engine,
             builder::GenericInterfaceBuilder* builder);

  void set_context(UserContext ctx) { context_ = std::move(ctx); }
  const UserContext& context() const { return context_; }

  void set_build_options(builder::BuildOptions options) {
    build_options_ = std::move(options);
  }
  const builder::BuildOptions& build_options() const { return build_options_; }

  /// Shared task scheduler (borrowed, may be null) used to resolve
  /// the customizations of multi-window operations concurrently via
  /// RuleEngine::GetCustomizationBatch. Window *construction* stays on
  /// the calling thread — the builder and database are not reentrant.
  void set_scheduler(agis::TaskScheduler* scheduler) {
    scheduler_ = scheduler;
  }
  agis::TaskScheduler* scheduler() const { return scheduler_; }

  /// DEPRECATED ThreadPool form of set_scheduler: attaches the pool's
  /// underlying scheduler slice.
  void set_thread_pool(agis::ThreadPool* pool) {
    scheduler_ = pool != nullptr ? pool->scheduler() : nullptr;
  }
  /// DEPRECATED alias for scheduler().
  agis::TaskScheduler* thread_pool() const { return scheduler_; }

  geodb::GeoDatabase* database() const { return db_; }

  // ---- Window hierarchy (all windows owned by the dispatcher) -----------

  /// Level 1: activates the generic interface on the database schema.
  /// Emits Get_Schema, consults the active mechanism, builds the
  /// Schema window, and honours auto-open classes (a `schema ...
  /// display as Null` customization opens its class windows directly,
  /// like rule R1 in Section 4).
  agis::Result<uilib::InterfaceObject*> OpenSchemaWindow();

  /// Level 2: opens (or refreshes) the Class-set window for a class.
  agis::Result<uilib::InterfaceObject*> OpenClassWindow(
      const std::string& class_name);

  /// Batched level 2: opens (or refreshes) one Class-set window per
  /// entry. The Get_Class customizations are resolved in one
  /// GetCustomizationBatch call — concurrently when a thread pool is
  /// set — and the windows are then built in order. Stops at the
  /// first failing build. The whole batch renders one pinned snapshot,
  /// so windows rebuilt together show a mutually consistent state.
  agis::Status OpenClassWindows(const std::vector<std::string>& class_names);

  /// Same, rendering `snapshot` instead of opening one internally —
  /// callers that already hold a view (ViewRefresher) pass it so a
  /// refresh pass renders the state it was triggered by. `snapshot`
  /// must stay pinned for the duration of the call; nullptr behaves
  /// like the overload above.
  agis::Status OpenClassWindows(const std::vector<std::string>& class_names,
                                const geodb::Snapshot* snapshot);

  /// Level 3: opens (or refreshes) an Instance window.
  agis::Result<uilib::InterfaceObject*> OpenInstanceWindow(
      geodb::ObjectId id);

  /// Analysis mode: runs a textual query ("select Pole where pole_type
  /// >= 2 inside POLYGON ((...))") and opens a Class-set window whose
  /// presentation area shows only the matching instances. The window
  /// is named "Query: <text>" and records the query in its "query"
  /// property. Customization rules apply exactly as for plain class
  /// windows (same Get_Class event).
  agis::Result<uilib::InterfaceObject*> OpenQueryWindow(
      const std::string& query_text);

  // ---- User interactions (IE + DBE split) --------------------------------

  /// Clicks the class list in the Schema window at `index`, firing the
  /// list's select callback and opening the class window.
  agis::Result<uilib::InterfaceObject*> SelectClassInSchema(size_t index);

  /// Clicks the presentation area of `class_name`'s window at map
  /// position `p`; the nearest feature within `tolerance` map units is
  /// selected and its Instance window opened.
  agis::Result<uilib::InterfaceObject*> SelectInstanceAt(
      const std::string& class_name, const geom::Point& p, double tolerance);

  agis::Status CloseWindow(const std::string& window_name);

  // ---- Introspection ------------------------------------------------------

  /// Open windows in opening order (hidden ones included).
  std::vector<const uilib::InterfaceObject*> windows() const;

  const uilib::InterfaceObject* FindWindow(const std::string& name) const;

  /// Mutable window lookup for in-place maintenance (the view
  /// refresher patches presentation areas without rebuilding the
  /// window). Same linear scan as FindWindow.
  uilib::InterfaceObject* FindWindowMutable(const std::string& name);

  /// Whether a plain Class-set window (not a query window) is
  /// currently open for `class_name`. O(log #open class windows) via
  /// an index maintained by Install/CloseWindow — cheap enough to call
  /// on every database write, which is exactly what the view
  /// refresher's rules do.
  bool HasOpenClassWindow(const std::string& class_name) const {
    return open_class_windows_.count(class_name) != 0;
  }

  /// Visible windows only (skips `hidden` Schema windows).
  std::vector<const uilib::InterfaceObject*> visible_windows() const;

  /// Chronological log of interactions and the events they generated,
  /// e.g. "ui.select classes[0] -> Get_Class(Pole)".
  const std::vector<std::string>& interaction_log() const { return log_; }

  /// The paper's *explanation* interaction mode, scoped to what this
  /// system can answer: why does this window look the way it does?
  /// Reports the context, the triggering event, and — when customized —
  /// the winning rule and the directive it was compiled from.
  std::string ExplainWindow(const uilib::InterfaceObject& window) const;

 private:
  struct CustomizationDecision {
    std::optional<active::WindowCustomization> payload;
    std::string rule_name;    // Winning rule; empty when generic.
    std::string provenance;   // Directive the rule came from.
  };

  /// The event `event_name` would emit under the current context.
  active::Event MakeEvent(const std::string& event_name,
                          std::map<std::string, std::string> params) const;

  /// Asks the active mechanism for the customization governing
  /// `event_name` with the given params under the current context.
  agis::Result<CustomizationDecision> Customize(
      const std::string& event_name,
      std::map<std::string, std::string> params);

  /// Names the winning rule for `event` on an already-resolved payload
  /// (explanation metadata for AnnotateWindow).
  CustomizationDecision DecisionFor(
      const active::Event& event,
      std::optional<active::WindowCustomization> payload) const;

  /// Builds and installs one Class-set window from a pre-resolved
  /// customization decision, reading through `options` (which carries
  /// the snapshot the window should render).
  agis::Result<uilib::InterfaceObject*> OpenClassWindowResolved(
      const std::string& class_name, const CustomizationDecision& decision,
      const builder::BuildOptions& options);

  /// Stamps explanation properties onto a freshly built window.
  static void AnnotateWindow(uilib::InterfaceObject* window,
                             const std::string& event_name,
                             const CustomizationDecision& decision);

  uilib::InterfaceObject* Install(std::unique_ptr<uilib::InterfaceObject> w);

  geodb::GeoDatabase* db_;
  active::RuleEngine* engine_;
  builder::GenericInterfaceBuilder* builder_;
  agis::TaskScheduler* scheduler_ = nullptr;
  UserContext context_;
  builder::BuildOptions build_options_;
  std::vector<std::unique_ptr<uilib::InterfaceObject>> windows_;
  /// Classes with an open plain Class-set window (the write-path
  /// presence check; see HasOpenClassWindow).
  std::set<std::string> open_class_windows_;
  std::vector<std::string> log_;
};

}  // namespace agis::ui

#endif  // AGIS_UI_DISPATCHER_H_
