#ifndef AGIS_UI_PROTOCOL_H_
#define AGIS_UI_PROTOCOL_H_

#include <string>
#include <utility>
#include <vector>

#include "base/context.h"
#include "base/status.h"
#include "geodb/database.h"

namespace agis::ui {

/// A request the interface sends the geographic database. This is the
/// *weak integration* boundary of Section 3.5: the interface never
/// touches DBMS internals, only this message protocol, so the same
/// interface could front a different GIS by swapping the protocol
/// implementation.
struct DbRequest {
  enum class Kind { kGetSchema, kGetClass, kGetValue };
  Kind kind = Kind::kGetSchema;
  UserContext context;
  std::string class_name;                // kGetClass.
  geodb::ObjectId object_id = 0;         // kGetValue.
  geodb::GetClassOptions class_options;  // kGetClass.
};

/// The converted response: database values are already flattened to
/// interface-consumable strings (the protocol's data-conversion half).
struct DbResponse {
  DbRequest::Kind kind = DbRequest::Kind::kGetSchema;

  // kGetSchema.
  std::string schema_name;
  std::vector<std::string> class_names;

  // kGetClass.
  geodb::ClassResult class_result;

  // kGetValue.
  std::string instance_class;
  geodb::ObjectId instance_id = 0;
  /// (attribute, display string) in schema order.
  std::vector<std::pair<std::string, std::string>> attribute_values;
};

/// Executes protocol requests against a GeoDatabase. Each Execute call
/// triggers the corresponding database event (Get_Schema / Get_Class /
/// Get_Value) inside the DBMS, which is what the active mechanism
/// listens to.
class DbProtocol {
 public:
  explicit DbProtocol(geodb::GeoDatabase* db) : db_(db) {}

  agis::Result<DbResponse> Execute(const DbRequest& request);

  uint64_t requests_served() const { return requests_served_; }

 private:
  geodb::GeoDatabase* db_;
  uint64_t requests_served_ = 0;
};

}  // namespace agis::ui

#endif  // AGIS_UI_PROTOCOL_H_
