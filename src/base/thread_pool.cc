#include "base/thread_pool.h"

#include <algorithm>
#include <utility>

namespace agis {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && active_workers_ == 0; });
}

uint64_t ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // Shutdown with a drained queue.
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_workers_;
    lock.unlock();
    task();
    lock.lock();
    --active_workers_;
    ++completed_;
    if (queue_.empty() && active_workers_ == 0) all_idle_.notify_all();
  }
}

}  // namespace agis
