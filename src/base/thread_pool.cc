#include "base/thread_pool.h"

#include <algorithm>
#include <utility>

namespace agis {

ThreadPool::ThreadPool(size_t num_threads)
    : owned_(std::make_unique<TaskScheduler>(std::max<size_t>(1, num_threads))),
      scheduler_(owned_.get()) {}

ThreadPool::ThreadPool(TaskScheduler* scheduler) : scheduler_(scheduler) {}

ThreadPool::~ThreadPool() {
  // Tasks in flight capture `this` (the counters); they must finish
  // before the members go away — and before an owned scheduler joins.
  Wait();
}

void ThreadPool::Submit(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  TaskScheduler* scheduler = scheduler_;
  scheduler_->Submit(
      [this, scheduler, task = std::move(task)] {
        task();
        completed_.fetch_add(1, std::memory_order_relaxed);
        // No member reads after this decrement: once pending_ hits
        // zero, Wait() may return and the pool be destroyed. seq_cst:
        // the scheduler's NotifyWaiters elides its signal when no
        // sleeper is declared, which requires the decrement and the
        // waiter's predicate loads to be totally ordered against that
        // bookkeeping.
        if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
          scheduler->NotifyWaiters();
        }
      },
      /*tag=*/this);
}

void ThreadPool::Wait() {
  if (pending_.load(std::memory_order_seq_cst) == 0) return;
  scheduler_->HelpUntil(
      [this] { return pending_.load(std::memory_order_seq_cst) == 0; },
      /*affinity=*/this);
}

}  // namespace agis
