#include "base/logging.h"

#include <atomic>
#include <cstdio>

namespace agis {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal), enabled_(fatal || level >= GetLogLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace agis
