#ifndef AGIS_BASE_STRUTIL_H_
#define AGIS_BASE_STRUTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace agis {

/// Splits `s` on `sep`, keeping empty pieces ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any run of ASCII whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view s);

/// ASCII upper-casing (locale-independent).
std::string ToUpper(std::string_view s);

/// True if `s` and `t` match ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view t);

/// Repeats `s` `n` times.
std::string Repeat(std::string_view s, size_t n);

/// Pads `s` with spaces on the right to width `w` (returns `s`
/// unchanged when already at least `w` wide).
std::string PadRight(std::string_view s, size_t w);

/// Formats `v` with `%g`-style shortest representation that still
/// round-trips reasonably for display (6 significant digits).
std::string DoubleToString(double v);

namespace internal_strutil {
inline void StrCatAppend(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrCatAppend(std::ostringstream& os, const T& head,
                  const Rest&... rest) {
  os << head;
  StrCatAppend(os, rest...);
}
}  // namespace internal_strutil

/// Concatenates the stream representations of all arguments.
/// Lightweight stand-in for absl::StrCat / std::format (libstdc++ 12
/// lacks <format>).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal_strutil::StrCatAppend(os, args...);
  return os.str();
}

}  // namespace agis

#endif  // AGIS_BASE_STRUTIL_H_
