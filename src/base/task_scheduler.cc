#include "base/task_scheduler.h"

#include <algorithm>
#include <utility>

namespace agis {

namespace {

/// Identifies the worker loop (or helper) a thread belongs to, so
/// Submit can route to the thread's own deque. One scheduler per
/// thread at a time is enough: a worker never runs inside another
/// scheduler's worker.
struct WorkerIdentity {
  TaskScheduler* scheduler = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity t_worker;

}  // namespace

TaskScheduler::TaskScheduler(size_t num_threads) {
  size_t n = num_threads;
  if (n == 0) {
    n = std::clamp<size_t>(std::thread::hardware_concurrency(), 2, 16);
  }
  n = std::max<size_t>(1, n);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    shutdown_ = true;
    ++epoch_;
  }
  sleep_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void TaskScheduler::Submit(std::function<void()> task, const void* tag) {
  if (t_worker.scheduler == this) {
    Worker& self = *workers_[t_worker.index];
    std::lock_guard<std::mutex> lock(self.mutex);
    self.deque.push_back(Entry{std::move(task), tag});
    self.max_depth = std::max<uint64_t>(self.max_depth, self.deque.size());
  } else {
    injector_submits_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(injector_mutex_);
    injector_.push_back(Entry{std::move(task), tag});
    injector_max_depth_ =
        std::max<uint64_t>(injector_max_depth_, injector_.size());
  }
  // Wake a sleeper only if there is one: the seq_cst load is ordered
  // after the enqueue above, and sleepers increment sleepers_ before
  // their final re-scan, so reading 0 here proves whoever sleeps next
  // will still find this task. Under saturation (no sleepers) Submit
  // never touches the global sleep_mutex_.
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      ++epoch_;
    }
    sleep_cv_.notify_one();
  }
}

std::function<void()> TaskScheduler::FindTask(size_t index,
                                              const void* affinity) {
  // 1. Own deque, newest first: depth-first execution of nested
  // submissions keeps the working set hot and bounds queue growth.
  if (index != kNotAWorker) {
    Worker& self = *workers_[index];
    std::lock_guard<std::mutex> lock(self.mutex);
    if (!self.deque.empty()) {
      std::function<void()> task = std::move(self.deque.back().fn);
      self.deque.pop_back();
      return task;
    }
  }
  // 2. Injector queue. A helping waiter (affinity set) takes its own
  // group's oldest task first — the work it is waiting for must not
  // queue behind unrelated submissions; everyone else (and the
  // fallback) is plain FIFO.
  {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    if (affinity != nullptr) {
      for (auto it = injector_.begin(); it != injector_.end(); ++it) {
        if (it->tag == affinity) {
          std::function<void()> task = std::move(it->fn);
          injector_.erase(it);
          injector_pops_.fetch_add(1, std::memory_order_relaxed);
          return task;
        }
      }
    }
    if (!injector_.empty()) {
      std::function<void()> task = std::move(injector_.front().fn);
      injector_.pop_front();
      injector_pops_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  // 3. Steal, oldest first, victims rotating. The rotor spreads
  // concurrent thieves across victims instead of convoying on 0.
  const size_t n = workers_.size();
  const size_t start = steal_rotor_.fetch_add(1, std::memory_order_relaxed);
  for (size_t k = 0; k < n; ++k) {
    const size_t victim = (start + k) % n;
    if (victim == index) continue;
    Worker& other = *workers_[victim];
    std::lock_guard<std::mutex> lock(other.mutex);
    if (!other.deque.empty()) {
      std::function<void()> task = std::move(other.deque.front().fn);
      other.deque.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void TaskScheduler::WorkerLoop(size_t index) {
  t_worker = {this, index};
  for (;;) {
    if (std::function<void()> task = FindTask(index)) {
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      task();
      continue;
    }
    // Eventcount sleep: declare the sleep (sleepers_++), record the
    // epoch, re-scan once (a Submit may have landed between the
    // failed scan above and here), and only then sleep until the
    // epoch moves. Submits that observe the sleeper bump the epoch
    // under sleep_mutex_, so a wakeup can never be lost; submits that
    // ran entirely before the sleepers_ increment left their task
    // visible to the re-scan.
    uint64_t seen;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      if (shutdown_) {
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        break;
      }
      seen = epoch_;
    }
    if (std::function<void()> task = FindTask(index)) {
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock,
                   [this, seen] { return shutdown_ || epoch_ != seen; });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (shutdown_) {
      // Drain: exit only once a full scan finds nothing. Tasks spawned
      // later by still-running workers are executed by those workers.
      lock.unlock();
      while (std::function<void()> task = FindTask(index)) {
        tasks_executed_.fetch_add(1, std::memory_order_relaxed);
        task();
      }
      break;
    }
  }
  t_worker = {};
}

void TaskScheduler::HelpUntil(const std::function<bool()>& done,
                              const void* affinity) {
  // A worker helping from inside a task keeps its own index (its
  // deque holds the subtasks it just submitted — LIFO pops them
  // first); any other thread helps as an outsider.
  const size_t index =
      t_worker.scheduler == this ? t_worker.index : kNotAWorker;
  while (!done()) {
    if (std::function<void()> task = FindTask(index, affinity)) {
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      help_executed_.fetch_add(1, std::memory_order_relaxed);
      task();
      continue;
    }
    // Nothing runnable and not done: the awaited tasks are executing
    // on other threads. Declare the sleep (sleepers_++) before the
    // final done()/queue re-check, then sleep until something changes
    // — a new task (epoch bump) or the completion signal
    // (NotifyWaiters).
    uint64_t seen;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      seen = epoch_;
    }
    if (done()) {
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      return;
    }
    if (std::function<void()> task = FindTask(index, affinity)) {
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      help_executed_.fetch_add(1, std::memory_order_relaxed);
      task();
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      sleep_cv_.wait(lock, [this, seen] { return epoch_ != seen; });
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void TaskScheduler::NotifyWaiters() {
  // The caller published its completion (e.g. the group's pending
  // count hit zero, seq_cst) before this load; a waiter increments
  // sleepers_ before re-checking its predicate. Reading 0 therefore
  // proves every current waiter will see the completion without a
  // signal.
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++epoch_;
  }
  sleep_cv_.notify_all();
}

SchedulerStats TaskScheduler::stats() const {
  SchedulerStats stats;
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.injector_submits = injector_submits_.load(std::memory_order_relaxed);
  stats.injector_pops = injector_pops_.load(std::memory_order_relaxed);
  stats.help_executed = help_executed_.load(std::memory_order_relaxed);
  stats.num_threads = workers_.size();
  uint64_t depth = 0;
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    depth = std::max(depth, worker->max_depth);
  }
  {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    depth = std::max(depth, injector_max_depth_);
  }
  stats.max_queue_depth = depth;
  return stats;
}

void TaskGroup::Run(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  // The scheduler pointer is captured by value: once the final
  // fetch_sub publishes zero, Wait() may return and the group be
  // destroyed, so the lambda must not read group members after it.
  TaskScheduler* scheduler = scheduler_;
  // seq_cst on the final decrement (and on Wait's predicate loads):
  // NotifyWaiters elides its signal when no thread has declared a
  // sleep, which is only sound if the decrement and the waiter's
  // re-check are totally ordered against the sleeper bookkeeping.
  scheduler_->Submit(
      [this, scheduler, task = std::move(task)] {
        task();
        if (pending_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
          scheduler->NotifyWaiters();
        }
      },
      /*tag=*/this);
}

void TaskGroup::Wait() {
  if (pending_.load(std::memory_order_seq_cst) == 0) return;
  // Affinity == this group: the waiting thread drains its own tasks
  // ahead of unrelated injector entries.
  scheduler_->HelpUntil(
      [this] { return pending_.load(std::memory_order_seq_cst) == 0; },
      /*affinity=*/this);
}

}  // namespace agis
