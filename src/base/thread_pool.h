#ifndef AGIS_BASE_THREAD_POOL_H_
#define AGIS_BASE_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "base/task_scheduler.h"

namespace agis {

/// DEPRECATED compatibility adapter over a TaskScheduler slice.
///
/// Historically this was a standalone fixed-size worker pool, and
/// every fan-out subsystem (rule-engine batch dispatch, query-path
/// residual scans, storage block decode) owned one — oversubscribing
/// the machine whenever they fanned out together. The pool API now
/// forwards to a `TaskScheduler`: constructed with a thread count it
/// owns a private scheduler of that size (legacy behaviour for
/// out-of-tree callers); constructed with a borrowed scheduler it is
/// a zero-thread facade over that shared scheduler.
///
/// New code should use TaskScheduler + TaskGroup directly.
///
/// All methods are thread-safe. Tasks must not throw.
class ThreadPool {
 public:
  /// Legacy constructor: owns a private TaskScheduler with
  /// `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Adapter constructor: forwards to `scheduler` (borrowed, must
  /// outlive the pool) and spawns no threads of its own.
  explicit ThreadPool(TaskScheduler* scheduler);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Waits for every task submitted through this pool, then (for the
  /// legacy constructor) tears the private scheduler down.
  ~ThreadPool();

  /// Enqueues `task` on the underlying scheduler.
  void Submit(std::function<void()> task);

  /// DEPRECATED: blocks until every task submitted through this pool
  /// object has finished — *including tasks enqueued by other
  /// threads*, which is the footgun: two independent callers sharing
  /// a pool wait on each other's work, and a worker calling Wait()
  /// on its own pool used to deadlock. Kept for compatibility; the
  /// wait now at least helps execute pending scheduler tasks instead
  /// of sleeping. New code should scope completion with a TaskGroup,
  /// which waits only on its own tasks.
  void Wait();

  /// Worker count of the underlying scheduler.
  size_t num_threads() const { return scheduler_->num_threads(); }

  /// Tasks submitted through this pool that have finished executing.
  uint64_t tasks_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// The scheduler this pool forwards to (owned or borrowed). Lets
  /// pool-taking legacy call sites hand the underlying scheduler to
  /// migrated APIs.
  TaskScheduler* scheduler() const { return scheduler_; }

 private:
  std::unique_ptr<TaskScheduler> owned_;  // Null in adapter mode.
  TaskScheduler* scheduler_;
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> completed_{0};
};

}  // namespace agis

#endif  // AGIS_BASE_THREAD_POOL_H_
