#ifndef AGIS_BASE_THREAD_POOL_H_
#define AGIS_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace agis {

/// A small fixed-size worker pool for fan-out work (batched
/// customization resolution, multi-window refresh). Deliberately
/// minimal: FIFO queue, no futures — callers that need completion
/// signalling layer their own latch on top (see
/// RuleEngine::GetCustomizationBatch).
///
/// All methods are thread-safe. Tasks must not throw.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. Note
  /// this waits for *all* submitted tasks, including tasks enqueued by
  /// other threads.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks that have finished executing since construction.
  uint64_t tasks_completed() const;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t active_workers_ = 0;
  uint64_t completed_ = 0;
  bool shutdown_ = false;
};

}  // namespace agis

#endif  // AGIS_BASE_THREAD_POOL_H_
