#include "base/strutil.h"

#include <cctype>
#include <cstdio>

namespace agis {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view s, std::string_view t) {
  if (s.size() != t.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(t[i]))) {
      return false;
    }
  }
  return true;
}

std::string Repeat(std::string_view s, size_t n) {
  std::string out;
  out.reserve(s.size() * n);
  for (size_t i = 0; i < n; ++i) out.append(s);
  return out;
}

std::string PadRight(std::string_view s, size_t w) {
  std::string out(s);
  if (out.size() < w) out.append(w - out.size(), ' ');
  return out;
}

std::string DoubleToString(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace agis
