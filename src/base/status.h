#ifndef AGIS_BASE_STATUS_H_
#define AGIS_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace agis {

/// Error category for a `Status`. Values mirror the common
/// Arrow/RocksDB-style taxonomy; `kParseError`, `kConstraintViolation`
/// and `kPermissionDenied` are domain additions used by the
/// customization-language compiler, the topology rule family, and the
/// access-rights checks respectively.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kConstraintViolation,
  kPermissionDenied,
};

/// Returns a stable human-readable name ("NotFound", ...) for `code`.
const char* StatusCodeToString(StatusCode code);

/// Operation outcome carried across every public API boundary in this
/// codebase; exceptions are never thrown across module boundaries.
///
/// A `Status` is cheap to copy in the OK case (no allocation) and
/// carries a message otherwise. Use the factory functions
/// (`Status::NotFound(...)`) rather than the code constructor directly.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsConstraintViolation() const {
    return code_ == StatusCode::kConstraintViolation;
  }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns this status with `context + ": "` prepended to the message;
  /// OK statuses pass through unchanged.
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Value-or-error, the return type for every fallible producer.
///
/// `Result<T>` holds either a `T` or a non-OK `Status`. Accessing the
/// value of an errored result aborts (programming error), so callers
/// must check `ok()` first or use `ValueOr`.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_t;` in functions
  /// returning Result<T>.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::NotFound(...)`.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    // An OK status without a value would make the Result unusable.
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if errored.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  void AbortIfError() const {
    if (!ok()) {
      // Deliberate hard stop: accessing the value of an errored Result
      // is a bug in the caller, not a runtime condition.
      fprintf(stderr, "Fatal: Result::value() on error: %s\n",
              std::get<Status>(repr_).ToString().c_str());
      abort();
    }
  }

  std::variant<T, Status> repr_;
};

/// Propagates a non-OK `Status` to the caller.
#define AGIS_RETURN_IF_ERROR(expr)                    \
  do {                                                \
    ::agis::Status _agis_status = (expr);             \
    if (!_agis_status.ok()) return _agis_status;      \
  } while (false)

/// Evaluates a Result-returning `expr`; on error returns its status,
/// otherwise assigns the value to `lhs`.
#define AGIS_ASSIGN_OR_RETURN(lhs, expr)              \
  AGIS_ASSIGN_OR_RETURN_IMPL_(                        \
      AGIS_STATUS_CONCAT_(_agis_result, __LINE__), lhs, expr)

#define AGIS_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#define AGIS_STATUS_CONCAT_INNER_(a, b) a##b
#define AGIS_STATUS_CONCAT_(a, b) AGIS_STATUS_CONCAT_INNER_(a, b)

}  // namespace agis

#endif  // AGIS_BASE_STATUS_H_
