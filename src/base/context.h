#ifndef AGIS_BASE_CONTEXT_H_
#define AGIS_BASE_CONTEXT_H_

#include <map>
#include <string>

namespace agis {

/// The working environment a user interaction happens in — the tuple
/// `<user class, application domain>` of the paper (Section 3.3),
/// carried on every event so customization-rule conditions can check
/// it. `extras` holds the paper's "conceivable extensions" (geographic
/// scale, time framework) as free-form dimensions.
///
/// Empty fields mean "unspecified"; a rule condition with an empty
/// field matches any value of that field (see active/context_match.h).
struct UserContext {
  std::string user;         // e.g. "juliano"
  std::string category;     // user class, e.g. "network_planner"
  std::string application;  // application domain, e.g. "pole_manager"
  std::map<std::string, std::string> extras;  // e.g. {"scale", "1:10000"}

  friend bool operator==(const UserContext& a, const UserContext& b) {
    return a.user == b.user && a.category == b.category &&
           a.application == b.application && a.extras == b.extras;
  }

  std::string ToString() const {
    std::string out = "<";
    out += user.empty() ? "*" : user;
    out += ", ";
    out += category.empty() ? "*" : category;
    out += ", ";
    out += application.empty() ? "*" : application;
    for (const auto& [k, v] : extras) {
      out += ", ";
      out += k;
      out += "=";
      out += v;
    }
    out += ">";
    return out;
  }
};

}  // namespace agis

#endif  // AGIS_BASE_CONTEXT_H_
