#ifndef AGIS_BASE_LOGGING_H_
#define AGIS_BASE_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace agis {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
/// Defaults to kWarning so tests and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style single-message emitter; flushes to stderr on
/// destruction. `fatal` additionally aborts the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace agis

#define AGIS_LOG(level)                                              \
  ::agis::internal_logging::LogMessage(::agis::LogLevel::k##level, \
                                       __FILE__, __LINE__)

/// Hard invariant check: logs and aborts when `cond` is false.
/// Used for programming errors only, never for runtime conditions.
#define AGIS_CHECK(cond)                                                  \
  if (!(cond))                                                            \
  ::agis::internal_logging::LogMessage(::agis::LogLevel::kError,          \
                                       __FILE__, __LINE__, /*fatal=*/true) \
      << "Check failed: " #cond " "

#define AGIS_CHECK_OK(expr)                                               \
  do {                                                                    \
    const ::agis::Status _agis_check_status = (expr);                     \
    AGIS_CHECK(_agis_check_status.ok()) << _agis_check_status.ToString(); \
  } while (false)

#endif  // AGIS_BASE_LOGGING_H_
