#ifndef AGIS_BASE_TASK_SCHEDULER_H_
#define AGIS_BASE_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace agis {

/// Counters exported through DatabaseStats / EngineStats so benches
/// can attribute wins to the shared scheduler. Aggregated across all
/// workers; exact once the scheduler is quiescent.
struct SchedulerStats {
  /// Tasks executed to completion (on workers and inside helping
  /// waiters alike).
  uint64_t tasks_executed = 0;
  /// Tasks a worker took from another worker's deque.
  uint64_t steals = 0;
  /// Tasks submitted through the global injector queue (submitter was
  /// not a worker of this scheduler).
  uint64_t injector_submits = 0;
  /// Tasks popped from the injector queue ("injector hits").
  uint64_t injector_pops = 0;
  /// Tasks executed by threads blocked in TaskGroup::Wait (the
  /// help-while-waiting rule) rather than by a worker loop.
  uint64_t help_executed = 0;
  /// High-water mark of any single worker deque (injector included).
  uint64_t max_queue_depth = 0;
  size_t num_threads = 0;
};

/// A process-wide work-stealing task scheduler shared by every
/// fan-out consumer (rule-engine batch dispatch, parallel Get_Class
/// residual scans, storage block decode). One scheduler sized to the
/// hardware replaces the per-subsystem `ThreadPool`s whose combined
/// worker counts oversubscribed the machine under mixed load.
///
/// Layout (Chase–Lev-style discipline):
///  * one deque per worker — the owner pushes and pops at the bottom
///    (LIFO, cache-hot), thieves steal from the top (FIFO, oldest
///    first, so stolen tasks are the largest remaining subtrees);
///  * a global injector queue for external submitters (threads that
///    are not workers of this scheduler);
///  * an eventcount (generation-stamped condvar) so idle workers
///    sleep instead of spinning.
/// Each deque is guarded by its own small mutex rather than lock-free
/// atomics: contention is confined to steals (rare by design) and the
/// implementation stays portable and trivially ThreadSanitizer-clean.
///
/// Waiting never wastes a thread: `TaskGroup::Wait()` (and the
/// deprecated `ThreadPool::Wait()`) run pending tasks while the
/// awaited set drains — see HelpUntil. Nested parallelism (a task
/// that submits subtasks and waits on them) therefore cannot
/// deadlock: the waiter executes work, including its own subtasks,
/// instead of sleeping while occupying a worker.
///
/// All methods are thread-safe. Tasks must not throw. Destruction
/// drains every queued task, then joins the workers.
class TaskScheduler {
 public:
  /// Spawns `num_threads` workers; 0 sizes to the hardware
  /// (hardware_concurrency clamped to [2, 16] — at least 2 so
  /// single-core machines still overlap blocking waits, bounded so a
  /// many-core box is not flooded by default).
  explicit TaskScheduler(size_t num_threads = 0);

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Drains all queues (tasks spawned by draining tasks included),
  /// then joins. Safe while external submitters have stopped; tasks
  /// in flight finish normally.
  ~TaskScheduler();

  /// Enqueues `task`. Called from a worker of this scheduler, the
  /// task goes to that worker's own deque (LIFO — it will typically
  /// run next, while thieves take the oldest entries); from any other
  /// thread it goes through the injector queue. `tag` is an opaque
  /// affinity label (typically the owning TaskGroup) that HelpUntil
  /// uses to prefer a waiter's own tasks; nullptr means untagged.
  void Submit(std::function<void()> task, const void* tag = nullptr);

  /// Runs queued tasks until `done()` returns true, sleeping on the
  /// eventcount when no task is runnable. This is the
  /// help-while-waiting primitive behind TaskGroup::Wait: the caller
  /// lends its thread to the scheduler instead of blocking it.
  /// When `affinity` is non-null, injector tasks submitted with that
  /// tag are taken first — a waiter drains the work it is actually
  /// waiting for instead of queueing it behind unrelated submissions
  /// (and only helps foreign work when none of its own is queued).
  /// Whoever makes `done()` true must call NotifyWaiters().
  void HelpUntil(const std::function<bool()>& done,
                 const void* affinity = nullptr);

  /// Wakes every sleeping worker and helper so their predicates are
  /// re-checked. Called by completion signals external to the queues
  /// (TaskGroup hitting zero, ThreadPool::Wait draining).
  void NotifyWaiters();

  size_t num_threads() const { return workers_.size(); }

  /// A consistent aggregate of the counters.
  SchedulerStats stats() const;

 private:
  /// A queued task plus its affinity tag (see Submit).
  struct Entry {
    std::function<void()> fn;
    const void* tag = nullptr;
  };

  struct Worker {
    std::mutex mutex;
    std::deque<Entry> deque;  // Owner: back. Thieves: front.
    uint64_t max_depth = 0;   // Guarded by `mutex`.
  };

  void WorkerLoop(size_t index);

  /// One task from: own deque (back), affinity-tagged injector
  /// entries (oldest first, when `affinity` != nullptr), injector
  /// (front), then steals (front of each other deque, rotating
  /// start). `index` == npos for non-worker helpers (skips the "own
  /// deque" step). Returns an empty function when every queue is
  /// empty.
  std::function<void()> FindTask(size_t index,
                                 const void* affinity = nullptr);

  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  mutable std::mutex injector_mutex_;
  std::deque<Entry> injector_;
  uint64_t injector_max_depth_ = 0;  // Guarded by injector_mutex_.

  /// Eventcount: epoch_ bumps on every Submit and NotifyWaiters that
  /// observes a sleeper; sleepers re-scan when it moves.
  mutable std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;

  /// Threads committed to (or inside) an eventcount sleep. Submit and
  /// NotifyWaiters skip the epoch bump and the condvar signal when
  /// this is zero — the saturated-load fast path touches only the
  /// destination queue's mutex. Safety relies on ordering: a sleeper
  /// increments this seq_cst *before* its final queue re-scan /
  /// predicate check, and publishers enqueue (or publish completion)
  /// *before* the seq_cst load, so "no sleeper seen" proves the
  /// sleeper's re-scan will observe the publication.
  std::atomic<int> sleepers_{0};

  /// Steal-scan starting offset, advanced per steal attempt so
  /// victims rotate instead of worker 0 being hammered.
  std::atomic<uint32_t> steal_rotor_{0};

  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> injector_submits_{0};
  std::atomic<uint64_t> injector_pops_{0};
  std::atomic<uint64_t> help_executed_{0};
};

/// Completion tracking for one batch of related tasks — the
/// replacement for the pool-wide `ThreadPool::Wait()` footgun. A
/// group waits only on tasks submitted through *it*, and a thread
/// blocked in Wait() executes pending scheduler tasks (its own
/// subtasks first, by LIFO) instead of sleeping. Groups nest freely:
/// a task may create its own TaskGroup over the same scheduler.
///
/// Run() and Wait() may race from multiple threads, but the caller
/// must guarantee no Run() starts after the final Wait() returns.
/// The destructor waits for any still-pending tasks.
class TaskGroup {
 public:
  /// `scheduler` must outlive the group.
  explicit TaskGroup(TaskScheduler* scheduler) : scheduler_(scheduler) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  ~TaskGroup() { Wait(); }

  /// Submits `task` to the scheduler, tracked by this group.
  void Run(std::function<void()> task);

  /// Returns once every task Run() through this group has finished.
  /// Helps execute pending tasks while waiting; reentrant-safe (a
  /// helped task may itself Run()/Wait() on a nested group).
  void Wait();

  /// Tasks submitted and not yet finished.
  size_t pending() const { return pending_.load(std::memory_order_acquire); }

 private:
  TaskScheduler* scheduler_;
  std::atomic<size_t> pending_{0};
};

}  // namespace agis

#endif  // AGIS_BASE_TASK_SCHEDULER_H_
