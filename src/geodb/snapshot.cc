#include "geodb/snapshot.h"

#include <utility>

#include "geodb/database.h"

namespace agis::geodb {

Snapshot::Snapshot(Snapshot&& other) noexcept
    : db_(std::exchange(other.db_, nullptr)),
      epoch_(std::exchange(other.epoch_, 0)) {}

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    Release();
    db_ = std::exchange(other.db_, nullptr);
    epoch_ = std::exchange(other.epoch_, 0);
  }
  return *this;
}

Snapshot::~Snapshot() { Release(); }

void Snapshot::Release() {
  if (db_ != nullptr) {
    db_->UnpinSnapshot(epoch_);
    db_ = nullptr;
    epoch_ = 0;
  }
}

}  // namespace agis::geodb
