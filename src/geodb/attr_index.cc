#include "geodb/attr_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/strutil.h"

namespace agis::geodb {

std::optional<AttrKey> AttrKey::FromValue(const Value& v) {
  AttrKey key;
  switch (v.kind()) {
    case ValueKind::kBool:
      key.cls = Class::kBool;
      key.number = v.bool_value() ? 1 : 0;
      return key;
    case ValueKind::kInt:
      key.cls = Class::kNumber;
      key.number = static_cast<double>(v.int_value());
      return key;
    case ValueKind::kDouble:
      if (std::isnan(v.double_value())) return std::nullopt;
      key.cls = Class::kNumber;
      key.number = v.double_value();
      return key;
    case ValueKind::kString:
      key.cls = Class::kString;
      key.text = v.string_value();
      return key;
    default:
      return std::nullopt;
  }
}

namespace {

bool IsNanValue(const Value& v) {
  return v.kind() == ValueKind::kDouble && std::isnan(v.double_value());
}

}  // namespace

void AttributeIndex::Insert(ObjectId id, const Value& value) {
  if (IsNanValue(value)) {
    nan_ids_.insert(std::upper_bound(nan_ids_.begin(), nan_ids_.end(), id),
                    id);
    ++entry_count_;
    return;
  }
  const std::optional<AttrKey> key = AttrKey::FromValue(value);
  if (!key.has_value()) return;
  const auto [hash_it, created] = hash_.try_emplace(*key);
  Posting& posting = hash_it->second;
  posting.insert(std::upper_bound(posting.begin(), posting.end(), id), id);
  if (created) ordered_.emplace(hash_it->first, &posting);
  ++entry_count_;
}

void AttributeIndex::BulkLoad(
    std::vector<std::pair<ObjectId, const Value*>> entries) {
  if (entry_count_ != 0) {
    // Composing with existing contents: the incremental path already
    // handles interleaved postings; bulk construction assumes a blank
    // slate.
    for (const auto& [id, value] : entries) Insert(id, *value);
    return;
  }
  // Normalize every entry into one contiguous row array and sort it by
  // (key, id); runs of equal keys then pack straight into the base
  // arrays. The sort touches sequential memory and the build allocates
  // four vectors total, instead of a hash node + posting + map node
  // per distinct key.
  std::vector<std::pair<AttrKey, ObjectId>> rows;
  rows.reserve(entries.size());
  for (const auto& [id, value] : entries) {
    if (IsNanValue(*value)) {
      nan_ids_.push_back(id);
      ++entry_count_;
      continue;
    }
    std::optional<AttrKey> key = AttrKey::FromValue(*value);
    if (!key.has_value()) continue;
    rows.emplace_back(std::move(*key), id);
    ++entry_count_;
  }
  std::sort(nan_ids_.begin(), nan_ids_.end());
  std::sort(rows.begin(), rows.end(),
            [](const std::pair<AttrKey, ObjectId>& a,
               const std::pair<AttrKey, ObjectId>& b) {
              if (a.first < b.first) return true;
              if (b.first < a.first) return false;
              return a.second < b.second;
            });
  base_pool_.reserve(rows.size());
  size_t run_begin = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    base_pool_.push_back(rows[i].second);
    const bool last_of_run =
        i + 1 == rows.size() || rows[run_begin].first < rows[i + 1].first;
    if (last_of_run) {
      base_keys_.push_back(std::move(rows[run_begin].first));
      base_offsets_.push_back(static_cast<uint32_t>(run_begin));
      base_live_.push_back(static_cast<uint32_t>(i + 1 - run_begin));
      run_begin = i + 1;
    }
  }
  base_offsets_.push_back(static_cast<uint32_t>(base_pool_.size()));
  base_distinct_ = base_keys_.size();
}

agis::Result<AttributeIndex> AttributeIndex::FromSortedRuns(
    std::vector<AttrKey> keys, std::vector<uint32_t> offsets,
    std::vector<ObjectId> pool, std::vector<ObjectId> nan_ids) {
  if (offsets.size() != keys.size() + 1 || offsets.front() != 0 ||
      offsets.back() != pool.size()) {
    return agis::Status::ParseError(
        "attribute index runs: offsets do not delimit the id pool");
  }
  for (size_t k = 0; k < keys.size(); ++k) {
    if (k + 1 < keys.size() && !(keys[k] < keys[k + 1])) {
      return agis::Status::ParseError(
          "attribute index runs: keys not strictly ascending");
    }
    if (offsets[k] >= offsets[k + 1]) {
      return agis::Status::ParseError(
          "attribute index runs: empty key slice");
    }
    for (uint32_t i = offsets[k]; i < offsets[k + 1]; ++i) {
      if (pool[i] == 0 || (i > offsets[k] && pool[i - 1] >= pool[i])) {
        return agis::Status::ParseError(
            "attribute index runs: slice ids not ascending non-zero");
      }
    }
  }
  for (size_t i = 0; i < nan_ids.size(); ++i) {
    if (nan_ids[i] == 0 || (i > 0 && nan_ids[i - 1] >= nan_ids[i])) {
      return agis::Status::ParseError(
          "attribute index runs: NaN ids not ascending non-zero");
    }
  }
  AttributeIndex index;
  index.entry_count_ = pool.size() + nan_ids.size();
  index.base_distinct_ = keys.size();
  index.base_live_.reserve(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    index.base_live_.push_back(offsets[k + 1] - offsets[k]);
  }
  index.base_keys_ = std::move(keys);
  index.base_offsets_ = std::move(offsets);
  index.base_pool_ = std::move(pool);
  index.nan_ids_ = std::move(nan_ids);
  return index;
}

void AttributeIndex::Remove(ObjectId id, const Value& value) {
  if (IsNanValue(value)) {
    const auto pos = std::lower_bound(nan_ids_.begin(), nan_ids_.end(), id);
    if (pos != nan_ids_.end() && *pos == id) {
      nan_ids_.erase(pos);
      --entry_count_;
    }
    return;
  }
  const std::optional<AttrKey> key = AttrKey::FromValue(value);
  if (!key.has_value()) return;
  // Delta first: a post-bulk insert lands there even when the key also
  // exists in the base.
  const auto hash_it = hash_.find(*key);
  if (hash_it != hash_.end()) {
    Posting& posting = hash_it->second;
    const auto pos = std::lower_bound(posting.begin(), posting.end(), id);
    if (pos != posting.end() && *pos == id) {
      posting.erase(pos);
      if (posting.empty()) {
        // The ordered view references the hash node's key and posting;
        // drop it before the node dies.
        ordered_.erase(hash_it->first);
        hash_.erase(hash_it);
      }
      --entry_count_;
      return;
    }
  }
  const size_t k = BaseFind(*key);
  if (k == base_keys_.size()) return;
  ObjectId* slice = base_pool_.data() + base_offsets_[k];
  ObjectId* live_end = slice + base_live_[k];
  ObjectId* pos = std::lower_bound(slice, live_end, id);
  if (pos == live_end || *pos != id) return;
  // Keep the live prefix sorted: shift the tail left one slot and
  // zero-fill the vacated cell (0 is never a valid object id).
  std::move(pos + 1, live_end, pos);
  *(live_end - 1) = 0;
  if (--base_live_[k] == 0) --base_distinct_;
  --entry_count_;
}

size_t AttributeIndex::BaseBandBegin(AttrKey::Class cls) const {
  const auto it = std::partition_point(
      base_keys_.begin(), base_keys_.end(),
      [cls](const AttrKey& k) { return k.cls < cls; });
  return static_cast<size_t>(it - base_keys_.begin());
}

size_t AttributeIndex::BaseBandEnd(AttrKey::Class cls) const {
  const auto it = std::partition_point(
      base_keys_.begin(), base_keys_.end(),
      [cls](const AttrKey& k) { return k.cls <= cls; });
  return static_cast<size_t>(it - base_keys_.begin());
}

size_t AttributeIndex::BaseLowerBound(const AttrKey& key) const {
  const auto it = std::lower_bound(base_keys_.begin(), base_keys_.end(), key);
  return static_cast<size_t>(it - base_keys_.begin());
}

size_t AttributeIndex::BaseUpperBound(const AttrKey& key) const {
  const auto it = std::upper_bound(base_keys_.begin(), base_keys_.end(), key);
  return static_cast<size_t>(it - base_keys_.begin());
}

size_t AttributeIndex::BaseFind(const AttrKey& key) const {
  const size_t k = BaseLowerBound(key);
  if (k < base_keys_.size() && base_keys_[k] == key) return k;
  return base_keys_.size();
}

template <typename Fn>
void AttributeIndex::ForEachMatchingPosting(CompareOp op, const AttrKey& key,
                                            Fn&& fn) const {
  const auto emit_delta = [&](const Posting& p) { fn(p.data(), p.size()); };
  const auto emit_base = [&](size_t k) {
    if (base_live_[k] != 0) {
      fn(base_pool_.data() + base_offsets_[k],
         static_cast<size_t>(base_live_[k]));
    }
  };
  // Keys of a different class are incomparable under CompareValues, so
  // every operator is restricted to the operand's class band. Both the
  // ordered delta map and the base key array are ordered by
  // (class, value), making each band contiguous.
  auto in_band = [&](const AttrKey& k) { return k.cls == key.cls; };
  auto delta_band_begin = [&] {
    AttrKey band_lo;
    band_lo.cls = key.cls;
    band_lo.number = -std::numeric_limits<double>::infinity();
    band_lo.text.clear();
    return ordered_.lower_bound(band_lo);
  };

  switch (op) {
    // Equality and its complement are answered by direct probes;
    // posting order does not matter because callers sort.
    case CompareOp::kEq: {
      const auto it = hash_.find(key);
      if (it != hash_.end()) emit_delta(it->second);
      const size_t k = BaseFind(key);
      if (k != base_keys_.size()) emit_base(k);
      return;
    }
    case CompareOp::kNe: {
      for (const auto& [k, posting] : hash_) {
        if (k.cls == key.cls && !(k == key)) emit_delta(posting);
      }
      const size_t band_end = BaseBandEnd(key.cls);
      for (size_t k = BaseBandBegin(key.cls); k < band_end; ++k) {
        if (!(base_keys_[k] == key)) emit_base(k);
      }
      return;
    }
    case CompareOp::kLt:
    case CompareOp::kLe: {
      for (auto it = delta_band_begin();
           it != ordered_.end() && in_band(it->first); ++it) {
        if (key < it->first) break;
        if (op == CompareOp::kLt && it->first == key) break;
        emit_delta(*it->second);
      }
      const size_t bound =
          op == CompareOp::kLt ? BaseLowerBound(key) : BaseUpperBound(key);
      for (size_t k = BaseBandBegin(key.cls); k < bound; ++k) emit_base(k);
      return;
    }
    case CompareOp::kGt:
    case CompareOp::kGe: {
      auto it = op == CompareOp::kGe ? ordered_.lower_bound(key)
                                     : ordered_.upper_bound(key);
      for (; it != ordered_.end() && in_band(it->first); ++it) {
        emit_delta(*it->second);
      }
      const size_t band_end = BaseBandEnd(key.cls);
      const size_t start =
          op == CompareOp::kGe ? BaseLowerBound(key) : BaseUpperBound(key);
      for (size_t k = start; k < band_end; ++k) emit_base(k);
      return;
    }
    case CompareOp::kContains:
      return;  // Not indexable; guarded by SupportsOp.
  }
}

bool AttributeIndex::NansMatch(CompareOp op, const AttrKey& key) {
  // CompareValues(NaN, numeric) == 0, so stored NaNs satisfy the
  // "compares equal" operators against any numeric operand.
  return key.cls == AttrKey::Class::kNumber &&
         (op == CompareOp::kEq || op == CompareOp::kLe ||
          op == CompareOp::kGe);
}

std::optional<size_t> AttributeIndex::EstimateCount(
    CompareOp op, const Value& operand) const {
  if (!SupportsOp(op)) return std::nullopt;
  // Null matches null and NaN compares equal to everything numeric;
  // both would need a key outside the ordered space — leave those
  // degenerate operands to the residual path.
  if (operand.is_null() || IsNanValue(operand)) return std::nullopt;
  const std::optional<AttrKey> key = AttrKey::FromValue(operand);
  // A non-scalar operand compares as an error against every stored
  // value, i.e. matches nothing; that is an exact (and free) answer.
  if (!key.has_value()) return 0;
  size_t count = NansMatch(op, *key) ? nan_ids_.size() : 0;
  ForEachMatchingPosting(op, *key,
                         [&](const ObjectId*, size_t n) { count += n; });
  return count;
}

std::optional<std::vector<ObjectId>> AttributeIndex::Eval(
    CompareOp op, const Value& operand) const {
  if (!SupportsOp(op)) return std::nullopt;
  if (operand.is_null() || IsNanValue(operand)) return std::nullopt;
  const std::optional<AttrKey> key = AttrKey::FromValue(operand);
  if (!key.has_value()) return std::vector<ObjectId>();
  std::vector<std::pair<const ObjectId*, size_t>> postings;
  size_t total = 0;
  if (NansMatch(op, *key) && !nan_ids_.empty()) {
    postings.emplace_back(nan_ids_.data(), nan_ids_.size());
    total += nan_ids_.size();
  }
  ForEachMatchingPosting(op, *key, [&](const ObjectId* ids, size_t n) {
    postings.emplace_back(ids, n);
    total += n;
  });
  std::vector<ObjectId> out;
  out.reserve(total);
  for (const auto& [ids, n] : postings) out.insert(out.end(), ids, ids + n);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace agis::geodb
