#include "geodb/attr_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace agis::geodb {

std::optional<AttrKey> AttrKey::FromValue(const Value& v) {
  AttrKey key;
  switch (v.kind()) {
    case ValueKind::kBool:
      key.cls = Class::kBool;
      key.number = v.bool_value() ? 1 : 0;
      return key;
    case ValueKind::kInt:
      key.cls = Class::kNumber;
      key.number = static_cast<double>(v.int_value());
      return key;
    case ValueKind::kDouble:
      if (std::isnan(v.double_value())) return std::nullopt;
      key.cls = Class::kNumber;
      key.number = v.double_value();
      return key;
    case ValueKind::kString:
      key.cls = Class::kString;
      key.text = v.string_value();
      return key;
    default:
      return std::nullopt;
  }
}

namespace {

bool IsNanValue(const Value& v) {
  return v.kind() == ValueKind::kDouble && std::isnan(v.double_value());
}

}  // namespace

void AttributeIndex::Insert(ObjectId id, const Value& value) {
  if (IsNanValue(value)) {
    nan_ids_.insert(std::upper_bound(nan_ids_.begin(), nan_ids_.end(), id),
                    id);
    ++entry_count_;
    return;
  }
  const std::optional<AttrKey> key = AttrKey::FromValue(value);
  if (!key.has_value()) return;
  Posting& hash_posting = hash_[*key];
  hash_posting.insert(
      std::upper_bound(hash_posting.begin(), hash_posting.end(), id), id);
  Posting& ordered_posting = ordered_[*key];
  ordered_posting.insert(
      std::upper_bound(ordered_posting.begin(), ordered_posting.end(), id),
      id);
  ++entry_count_;
}

void AttributeIndex::Remove(ObjectId id, const Value& value) {
  if (IsNanValue(value)) {
    const auto pos = std::lower_bound(nan_ids_.begin(), nan_ids_.end(), id);
    if (pos != nan_ids_.end() && *pos == id) {
      nan_ids_.erase(pos);
      --entry_count_;
    }
    return;
  }
  const std::optional<AttrKey> key = AttrKey::FromValue(value);
  if (!key.has_value()) return;
  const auto hash_it = hash_.find(*key);
  if (hash_it == hash_.end()) return;
  Posting& hash_posting = hash_it->second;
  const auto pos =
      std::lower_bound(hash_posting.begin(), hash_posting.end(), id);
  if (pos == hash_posting.end() || *pos != id) return;
  hash_posting.erase(pos);
  if (hash_posting.empty()) hash_.erase(hash_it);

  const auto ordered_it = ordered_.find(*key);
  Posting& ordered_posting = ordered_it->second;
  ordered_posting.erase(std::lower_bound(ordered_posting.begin(),
                                         ordered_posting.end(), id));
  if (ordered_posting.empty()) ordered_.erase(ordered_it);
  --entry_count_;
}

template <typename Fn>
void AttributeIndex::ForEachMatchingBucket(CompareOp op, const AttrKey& key,
                                           Fn&& fn) const {
  // Keys of a different class are incomparable under CompareValues, so
  // every operator is restricted to the operand's class band. The map
  // is ordered by (class, value), making each band contiguous.
  auto in_band = [&](const AttrKey& k) { return k.cls == key.cls; };
  auto band_begin = [&] {
    AttrKey band_lo;
    band_lo.cls = key.cls;
    band_lo.number = -std::numeric_limits<double>::infinity();
    return ordered_.lower_bound(band_lo);
  };

  switch (op) {
    // Equality and its complement are answered from the hash index;
    // bucket iteration order does not matter because callers sort.
    case CompareOp::kEq: {
      const auto it = hash_.find(key);
      if (it != hash_.end()) fn(it->second);
      return;
    }
    case CompareOp::kNe:
      for (const auto& [k, posting] : hash_) {
        if (k.cls == key.cls && !(k == key)) fn(posting);
      }
      return;
    case CompareOp::kLt:
    case CompareOp::kLe:
      for (auto it = band_begin(); it != ordered_.end() && in_band(it->first);
           ++it) {
        if (key < it->first) break;
        if (op == CompareOp::kLt && it->first == key) break;
        fn(it->second);
      }
      return;
    case CompareOp::kGt:
    case CompareOp::kGe: {
      auto it = op == CompareOp::kGe ? ordered_.lower_bound(key)
                                     : ordered_.upper_bound(key);
      for (; it != ordered_.end() && in_band(it->first); ++it) {
        fn(it->second);
      }
      return;
    }
    case CompareOp::kContains:
      return;  // Not indexable; guarded by SupportsOp.
  }
}

bool AttributeIndex::NansMatch(CompareOp op, const AttrKey& key) {
  // CompareValues(NaN, numeric) == 0, so stored NaNs satisfy the
  // "compares equal" operators against any numeric operand.
  return key.cls == AttrKey::Class::kNumber &&
         (op == CompareOp::kEq || op == CompareOp::kLe ||
          op == CompareOp::kGe);
}

std::optional<size_t> AttributeIndex::EstimateCount(
    CompareOp op, const Value& operand) const {
  if (!SupportsOp(op)) return std::nullopt;
  // Null matches null and NaN compares equal to everything numeric;
  // both would need a key outside the ordered space — leave those
  // degenerate operands to the residual path.
  if (operand.is_null() || IsNanValue(operand)) return std::nullopt;
  const std::optional<AttrKey> key = AttrKey::FromValue(operand);
  // A non-scalar operand compares as an error against every stored
  // value, i.e. matches nothing; that is an exact (and free) answer.
  if (!key.has_value()) return 0;
  size_t count = NansMatch(op, *key) ? nan_ids_.size() : 0;
  ForEachMatchingBucket(op, *key,
                        [&](const Posting& p) { count += p.size(); });
  return count;
}

std::optional<std::vector<ObjectId>> AttributeIndex::Eval(
    CompareOp op, const Value& operand) const {
  if (!SupportsOp(op)) return std::nullopt;
  if (operand.is_null() || IsNanValue(operand)) return std::nullopt;
  const std::optional<AttrKey> key = AttrKey::FromValue(operand);
  if (!key.has_value()) return std::vector<ObjectId>();
  std::vector<const Posting*> postings;
  size_t total = 0;
  if (NansMatch(op, *key) && !nan_ids_.empty()) {
    postings.push_back(&nan_ids_);
    total += nan_ids_.size();
  }
  ForEachMatchingBucket(op, *key, [&](const Posting& p) {
    postings.push_back(&p);
    total += p.size();
  });
  std::vector<ObjectId> out;
  out.reserve(total);
  for (const Posting* p : postings) out.insert(out.end(), p->begin(), p->end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace agis::geodb
