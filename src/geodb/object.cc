#include "geodb/object.h"

namespace agis::geodb {

namespace {
const Value& NullValue() {
  static const Value* kNull = new Value();
  return *kNull;
}

size_t ValueSizeBytes(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
    case ValueKind::kBool:
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return 16;
    case ValueKind::kString:
      return 32 + v.string_value().size();
    case ValueKind::kBlob:
      return 48 + v.blob_value().bytes.size();
    case ValueKind::kGeometry:
      return 48 + v.geometry_value().NumPoints() * sizeof(geom::Point);
    case ValueKind::kTuple: {
      size_t n = 32;
      for (const auto& [name, value] : v.tuple_value()) {
        n += name.size() + ValueSizeBytes(value);
      }
      return n;
    }
    case ValueKind::kList: {
      size_t n = 32;
      for (const Value& item : v.list_value()) n += ValueSizeBytes(item);
      return n;
    }
    case ValueKind::kRef:
      return 48 + v.ref_value().class_name.size();
  }
  return 16;
}
}  // namespace

const Value& ObjectInstance::Get(const std::string& attr) const {
  auto it = values_.find(attr);
  return it == values_.end() ? NullValue() : it->second;
}

size_t ObjectInstance::ApproxSizeBytes() const {
  size_t n = 64 + class_name_.size();
  for (const auto& [attr, value] : values_) {
    n += attr.size() + ValueSizeBytes(value);
  }
  return n;
}

}  // namespace agis::geodb
