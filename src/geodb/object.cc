#include "geodb/object.h"

#include <algorithm>

namespace agis::geodb {

namespace {
const Value& NullValue() {
  static const Value* kNull = new Value();
  return *kNull;
}

size_t ValueSizeBytes(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
    case ValueKind::kBool:
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return 16;
    case ValueKind::kString:
      return 32 + v.string_value().size();
    case ValueKind::kBlob:
      return 48 + v.blob_value().bytes.size();
    case ValueKind::kGeometry:
      return 48 + v.geometry_value().NumPoints() * sizeof(geom::Point);
    case ValueKind::kTuple: {
      size_t n = 32;
      for (const auto& [name, value] : v.tuple_value()) {
        n += name.size() + ValueSizeBytes(value);
      }
      return n;
    }
    case ValueKind::kList: {
      size_t n = 32;
      for (const Value& item : v.list_value()) n += ValueSizeBytes(item);
      return n;
    }
    case ValueKind::kRef:
      return 48 + v.ref_value().class_name.size();
  }
  return 16;
}
}  // namespace

std::vector<std::pair<std::string, Value>>::const_iterator
ObjectInstance::LowerBound(const std::string& attr) const {
  return std::lower_bound(
      values_.begin(), values_.end(), attr,
      [](const std::pair<std::string, Value>& entry, const std::string& name) {
        return entry.first < name;
      });
}

const Value& ObjectInstance::Get(const std::string& attr) const {
  const auto it = LowerBound(attr);
  return it == values_.end() || it->first != attr ? NullValue() : it->second;
}

void ObjectInstance::Set(const std::string& attr, Value value) {
  const auto it = LowerBound(attr);
  if (it != values_.end() && it->first == attr) {
    // const_iterator -> iterator via index; the vector is ours.
    values_[static_cast<size_t>(it - values_.begin())].second =
        std::move(value);
    return;
  }
  values_.emplace(it, attr, std::move(value));
}

void ObjectInstance::SetOrdered(std::string attr, Value value) {
  if (values_.empty() || values_.back().first < attr) {
    values_.emplace_back(std::move(attr), std::move(value));
    return;
  }
  Set(attr, std::move(value));
}

bool ObjectInstance::Has(const std::string& attr) const {
  const auto it = LowerBound(attr);
  return it != values_.end() && it->first == attr;
}

size_t ObjectInstance::ApproxSizeBytes() const {
  size_t n = 64 + class_name_.size();
  for (const auto& [attr, value] : values_) {
    n += attr.size() + ValueSizeBytes(value);
  }
  return n;
}

}  // namespace agis::geodb
