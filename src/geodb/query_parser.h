#ifndef AGIS_GEODB_QUERY_PARSER_H_
#define AGIS_GEODB_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "geodb/query.h"
#include "geodb/schema.h"

namespace agis::geodb {

/// A parsed analysis-mode query.
struct ParsedQuery {
  std::string class_name;
  GetClassOptions options;
};

/// Parses the small textual query language behind the *analysis*
/// interaction mode ("evaluate conditions, usually via query
/// predicates"):
///
///   select <Class>
///     [with subclasses]
///     [where <attr> <op> <value> [and <attr> <op> <value>]*]
///     [<relation> <WKT>]            e.g. inside POLYGON ((...))
///     [window <x0> <y0> <x1> <y1>]
///     [limit <n>]
///
/// Operators: = == != < <= > >= contains. Values: integers, decimals,
/// true/false, 'quoted strings' or bare words. Relations: any
/// geom::TopoRelation name (inside, intersects, touches, ...).
///
/// The parse is schema-checked: the class must exist and every
/// predicate attribute must exist on it (so analysis queries fail
/// fast in the control area instead of silently matching nothing).
agis::Result<ParsedQuery> ParseQuery(std::string_view text,
                                     const Schema& schema);

}  // namespace agis::geodb

#endif  // AGIS_GEODB_QUERY_PARSER_H_
