#include "geodb/buffer_pool.h"

#include <algorithm>

namespace agis::geodb {

bool BufferSlice::Contains(ObjectId id) const {
  return std::binary_search(ids.begin(), ids.end(), id);
}

BufferPool::BufferPool(size_t capacity_bytes, size_t num_shards)
    : capacity_bytes_(capacity_bytes) {
  const size_t count = std::max<size_t>(num_shards, 1);
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = capacity_bytes / count;
    shards_.push_back(std::move(shard));
  }
}

size_t BufferPool::ShardOf(const std::string& key) const {
  return shards_.size() == 1 ? 0
                             : std::hash<std::string>()(key) % shards_.size();
}

std::shared_ptr<const BufferSlice> BufferPool::Get(const std::string& key) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->slice;
}

void BufferPool::EvictUntilFits(Shard* shard, size_t incoming) {
  while (!shard->lru.empty() &&
         shard->used + incoming > shard->capacity) {
    const Node& victim = shard->lru.back();
    shard->used -= victim.slice->charge_bytes;
    shard->map.erase(victim.key);
    shard->lru.pop_back();
    ++shard->stats.evictions;
  }
}

void BufferPool::Put(const std::string& key, BufferSlice slice) {
  Shard& shard = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  // Release the replaced entry's charge first so accounting stays
  // exact — the old and new slice never count against the budget at
  // the same time.
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.used -= it->second->slice->charge_bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  const size_t charge = slice.charge_bytes;
  if (charge > shard.capacity) return;  // Never cacheable; skip.
  EvictUntilFits(&shard, charge);
  shard.lru.push_front(
      Node{key, std::make_shared<const BufferSlice>(std::move(slice))});
  shard.map[key] = shard.lru.begin();
  shard.used += charge;
  shard.stats.inserted_bytes += charge;
}

size_t BufferPool::InvalidatePrefix(const std::string& prefix) {
  return InvalidateMatching(prefix,
                            [](const BufferSlice&) { return true; });
}

size_t BufferPool::InvalidateMatching(
    const std::string& prefix,
    const std::function<bool(const BufferSlice&)>& drop) {
  size_t removed = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    // The ordered map makes the prefix a contiguous range: start at
    // lower_bound(prefix) and stop at the first key that no longer
    // begins with it.
    auto it = shard.map.lower_bound(prefix);
    while (it != shard.map.end() &&
           it->first.compare(0, prefix.size(), prefix) == 0) {
      if (drop(*it->second->slice)) {
        shard.used -= it->second->slice->charge_bytes;
        shard.lru.erase(it->second);
        it = shard.map.erase(it);
        ++removed;
        ++shard.stats.invalidated;
      } else {
        ++shard.stats.invalidation_survivals;
        ++it;
      }
    }
  }
  return removed;
}

void BufferPool::Clear() {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.map.clear();
    shard.used = 0;
  }
}

size_t BufferPool::used_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->used;
  }
  return total;
}

size_t BufferPool::entry_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.inserted_bytes += shard->stats.inserted_bytes;
    total.invalidated += shard->stats.invalidated;
    total.invalidation_survivals += shard->stats.invalidation_survivals;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->stats = BufferPoolStats();
  }
}

}  // namespace agis::geodb
