#include "geodb/buffer_pool.h"

namespace agis::geodb {

BufferPool::BufferPool(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

std::shared_ptr<const BufferSlice> BufferPool::Get(const std::string& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->slice;
}

void BufferPool::EvictUntilFits(size_t incoming) {
  while (!lru_.empty() && used_bytes_ + incoming > capacity_bytes_) {
    const Node& victim = lru_.back();
    used_bytes_ -= victim.slice->charge_bytes;
    map_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void BufferPool::Put(const std::string& key, BufferSlice slice) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    used_bytes_ -= it->second->slice->charge_bytes;
    lru_.erase(it->second);
    map_.erase(it);
  }
  const size_t charge = slice.charge_bytes;
  if (charge > capacity_bytes_) return;  // Never cacheable; skip.
  EvictUntilFits(charge);
  lru_.push_front(
      Node{key, std::make_shared<const BufferSlice>(std::move(slice))});
  map_[key] = lru_.begin();
  used_bytes_ += charge;
  stats_.inserted_bytes += charge;
}

size_t BufferPool::InvalidatePrefix(const std::string& prefix) {
  size_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      used_bytes_ -= it->slice->charge_bytes;
      map_.erase(it->key);
      it = lru_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void BufferPool::Clear() {
  lru_.clear();
  map_.clear();
  used_bytes_ = 0;
}

}  // namespace agis::geodb
