#include "geodb/events.h"

#include "base/strutil.h"

namespace agis::geodb {

const char* DbEventKindName(DbEventKind kind) {
  switch (kind) {
    case DbEventKind::kGetSchema:
      return "Get_Schema";
    case DbEventKind::kGetClass:
      return "Get_Class";
    case DbEventKind::kGetValue:
      return "Get_Value";
    case DbEventKind::kBeforeInsert:
      return "Before_Insert";
    case DbEventKind::kAfterInsert:
      return "After_Insert";
    case DbEventKind::kBeforeUpdate:
      return "Before_Update";
    case DbEventKind::kAfterUpdate:
      return "After_Update";
    case DbEventKind::kBeforeDelete:
      return "Before_Delete";
    case DbEventKind::kAfterDelete:
      return "After_Delete";
    case DbEventKind::kSchemaChange:
      return "Schema_Change";
  }
  return "Unknown";
}

std::string DbEvent::ToString() const {
  std::string out =
      agis::StrCat(DbEventKindName(kind), " ", context.ToString());
  if (!schema_name.empty()) out += agis::StrCat(" schema=", schema_name);
  if (!class_name.empty()) out += agis::StrCat(" class=", class_name);
  if (object_id != 0) out += agis::StrCat(" object=", object_id);
  if (!attribute.empty()) out += agis::StrCat(" attr=", attribute);
  return out;
}

}  // namespace agis::geodb
