#ifndef AGIS_GEODB_SCHEMA_H_
#define AGIS_GEODB_SCHEMA_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "geodb/value.h"

namespace agis::geodb {

class GeoDatabase;
class ObjectInstance;

/// Static type of an attribute in a class definition.
enum class AttrType {
  kBool,
  kInt,
  kDouble,
  kString,   // Short text (names, codes).
  kText,     // Long text (the paper's `pole_historic: text`).
  kBlob,     // Bitmap/binary (`pole_picture: bitmap`).
  kGeometry, // Spatial (`pole_location: Geometry`).
  kTuple,    // Composite (`pole_composition: tuple(...)`).
  kRef,      // Reference to another class (`pole_supplier: Supplier`).
  kList,     // Sequence of a single element type.
};

const char* AttrTypeName(AttrType type);

/// One attribute of a class. Tuples carry nested field definitions;
/// refs carry the target class name; lists carry the element type.
struct AttributeDef {
  std::string name;
  AttrType type = AttrType::kString;
  std::string doc;

  std::vector<AttributeDef> tuple_fields;          // When type == kTuple.
  std::string ref_class;                           // When type == kRef.
  std::optional<AttrType> list_element;            // When type == kList.
  bool required = false;

  /// Convenience factories keep workload/schema-building code terse.
  static AttributeDef Bool(std::string name) {
    return {std::move(name), AttrType::kBool, "", {}, "", std::nullopt, false};
  }
  static AttributeDef Int(std::string name) {
    return {std::move(name), AttrType::kInt, "", {}, "", std::nullopt, false};
  }
  static AttributeDef Double(std::string name) {
    return {std::move(name), AttrType::kDouble, "", {}, "", std::nullopt,
            false};
  }
  static AttributeDef String(std::string name) {
    return {std::move(name), AttrType::kString, "", {}, "", std::nullopt,
            false};
  }
  static AttributeDef Text(std::string name) {
    return {std::move(name), AttrType::kText, "", {}, "", std::nullopt, false};
  }
  static AttributeDef Blob(std::string name) {
    return {std::move(name), AttrType::kBlob, "", {}, "", std::nullopt, false};
  }
  static AttributeDef Geometry(std::string name) {
    return {std::move(name), AttrType::kGeometry, "", {}, "", std::nullopt,
            false};
  }
  static AttributeDef Tuple(std::string name,
                            std::vector<AttributeDef> fields) {
    return {std::move(name), AttrType::kTuple, "", std::move(fields), "",
            std::nullopt, false};
  }
  static AttributeDef Ref(std::string name, std::string target_class) {
    return {std::move(name), AttrType::kRef, "", {},
            std::move(target_class), std::nullopt, false};
  }
  static AttributeDef List(std::string name, AttrType element) {
    return {std::move(name), AttrType::kList, "", {}, "", element, false};
  }

  /// Human-readable type: "tuple(material: string, diameter: double)".
  std::string TypeString() const;
};

/// A method attached to a class (Figure 5's
/// `get_supplier_name(Supplier)`), implemented as a host callback that
/// may read the database (e.g. dereference a supplier).
struct MethodDef {
  using Impl = std::function<agis::Result<Value>(const GeoDatabase&,
                                                 const ObjectInstance&)>;
  std::string name;
  std::string doc;
  Impl impl;
};

/// One class of the geographic schema. Single inheritance via
/// `parent`; attribute and method lookup walk the parent chain.
class ClassDef {
 public:
  ClassDef() = default;
  ClassDef(std::string name, std::string doc)
      : name_(std::move(name)), doc_(std::move(doc)) {}

  const std::string& name() const { return name_; }
  const std::string& doc() const { return doc_; }
  const std::string& parent() const { return parent_; }
  void set_parent(std::string parent) { parent_ = std::move(parent); }

  /// Attributes declared directly on this class (inherited ones live
  /// on ancestors; see Schema::AllAttributesOf).
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  const std::vector<MethodDef>& methods() const { return methods_; }

  agis::Status AddAttribute(AttributeDef attr);
  agis::Status AddMethod(MethodDef method);

  /// Direct (non-inherited) lookup; nullptr when absent.
  const AttributeDef* FindAttribute(const std::string& name) const;
  const MethodDef* FindMethod(const std::string& name) const;

 private:
  std::string name_;
  std::string doc_;
  std::string parent_;
  std::vector<AttributeDef> attributes_;
  std::vector<MethodDef> methods_;
};

/// The schema catalog: a named collection of class definitions, the
/// object the `Get_Schema` primitive describes.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Registers `cls`. Fails on duplicates, unknown parents, and refs
  /// to classes that are neither registered nor `cls` itself
  /// (self-references are allowed).
  agis::Status AddClass(ClassDef cls);

  const ClassDef* FindClass(const std::string& name) const;
  bool HasClass(const std::string& name) const {
    return FindClass(name) != nullptr;
  }

  /// All class names in registration order.
  std::vector<std::string> ClassNames() const;

  /// Direct children of `name` (registration order).
  std::vector<std::string> SubclassesOf(const std::string& name) const;

  /// True when `cls` equals `ancestor` or derives from it.
  bool IsSubclassOf(const std::string& cls, const std::string& ancestor) const;

  /// Attributes of `cls` including inherited ones, ancestors first.
  /// Errors when the class is unknown.
  agis::Result<std::vector<AttributeDef>> AllAttributesOf(
      const std::string& cls) const;

  /// Attribute lookup walking the inheritance chain; nullptr if absent.
  const AttributeDef* FindAttributeOf(const std::string& cls,
                                      const std::string& attr) const;

  /// Method lookup walking the inheritance chain; nullptr if absent.
  const MethodDef* FindMethodOf(const std::string& cls,
                                const std::string& method) const;

  size_t NumClasses() const { return order_.size(); }

  /// Multi-line textual rendering used by the Schema window's
  /// "hierarchy" display mode and by tests.
  std::string ToString() const;

 private:
  std::string name_;
  std::map<std::string, ClassDef> classes_;
  std::vector<std::string> order_;
};

/// Checks that `value` is assignable to an attribute of type `attr`
/// (null is allowed for non-required attributes; Int widens to Double;
/// tuple fields check recursively; refs must target the declared class
/// or a subclass — the schema resolves subclassing).
agis::Status CheckValueType(const Schema& schema, const AttributeDef& attr,
                            const Value& value);

}  // namespace agis::geodb

#endif  // AGIS_GEODB_SCHEMA_H_
