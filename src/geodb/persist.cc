#include "geodb/persist.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/strutil.h"
#include "geom/wkt.h"

namespace agis::geodb {

namespace {

// ---- Writing ---------------------------------------------------------------

std::string Quoted(std::string_view raw) {
  std::string out = "\"";
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string HexEncode(const std::vector<uint8_t>& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

/// Exact round-trip double formatting.
std::string DoubleExact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendAttrDef(const AttributeDef& attr, int indent, std::string* out) {
  const std::string pad = agis::Repeat("  ", static_cast<size_t>(indent));
  out->append(pad);
  out->append("attr ");
  out->append(Quoted(attr.name));
  out->push_back(' ');
  switch (attr.type) {
    case AttrType::kRef:
      out->append("ref ");
      out->append(Quoted(attr.ref_class));
      break;
    case AttrType::kList:
      out->append("list ");
      out->append(attr.list_element ? AttrTypeName(*attr.list_element)
                                    : "string");
      break;
    case AttrType::kTuple:
      out->append("tuple");
      break;
    default:
      out->append(AttrTypeName(attr.type));
      break;
  }
  if (attr.required) out->append(" required");
  out->push_back('\n');
  if (attr.type == AttrType::kTuple) {
    for (const AttributeDef& field : attr.tuple_fields) {
      AppendAttrDef(field, indent + 1, out);
    }
    out->append(pad);
    out->append("end\n");
  }
}

void AppendValue(const Value& v, int indent, std::string* out) {
  const std::string pad = agis::Repeat("  ", static_cast<size_t>(indent));
  switch (v.kind()) {
    case ValueKind::kNull:
      out->append("null");
      break;
    case ValueKind::kBool:
      out->append(v.bool_value() ? "bool true" : "bool false");
      break;
    case ValueKind::kInt:
      out->append(agis::StrCat("int ", v.int_value()));
      break;
    case ValueKind::kDouble:
      out->append(agis::StrCat("double ", DoubleExact(v.double_value())));
      break;
    case ValueKind::kString:
      out->append("string ");
      out->append(Quoted(v.string_value()));
      break;
    case ValueKind::kBlob:
      out->append("blob ");
      out->append(Quoted(v.blob_value().format));
      out->push_back(' ');
      out->append(Quoted(HexEncode(v.blob_value().bytes)));
      break;
    case ValueKind::kGeometry:
      out->append("geometry ");
      out->append(Quoted(geom::ToWkt(v.geometry_value(), /*precision=*/17)));
      break;
    case ValueKind::kRef:
      out->append(agis::StrCat("ref ", v.ref_value().id, " ",
                               Quoted(v.ref_value().class_name)));
      break;
    case ValueKind::kTuple: {
      out->append("tuple\n");
      for (const auto& [name, field] : v.tuple_value()) {
        out->append(pad);
        out->append("  ");
        out->append(Quoted(name));
        out->push_back(' ');
        AppendValue(field, indent + 1, out);
        out->push_back('\n');
      }
      out->append(pad);
      out->append("end");
      break;
    }
    case ValueKind::kList: {
      out->append("list\n");
      for (const Value& item : v.list_value()) {
        out->append(pad);
        out->append("  ");
        AppendValue(item, indent + 1, out);
        out->push_back('\n');
      }
      out->append(pad);
      out->append("end");
      break;
    }
  }
}

// ---- Reading ---------------------------------------------------------------

class PersistScanner {
 public:
  explicit PersistScanner(std::string_view text) : text_(text) {}

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  agis::Result<std::string> Word(const char* what) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Error(agis::StrCat("expected ", what, ", got end of input"));
    }
    if (text_[pos_] == '"') return Error(agis::StrCat("expected ", what));
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
           text_[pos_] != '"') {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Peeks the next word without consuming (empty if next is a quote
  /// or end).
  std::string PeekWord() {
    const size_t saved_pos = pos_;
    const int saved_line = line_;
    auto word = Word("word");
    pos_ = saved_pos;
    line_ = saved_line;
    return word.ok() ? word.value() : "";
  }

  agis::Result<std::string> QuotedString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected quoted string");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          default:
            return Error(agis::StrCat("bad escape \\", esc));
        }
      } else if (c == '\n') {
        return Error("unterminated string");
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;
    return out;
  }

  agis::Result<int64_t> Integer(const char* what) {
    AGIS_ASSIGN_OR_RETURN(std::string word, Word(what));
    char* end = nullptr;
    const long long v = std::strtoll(word.c_str(), &end, 10);
    if (end == word.c_str() || *end != '\0') {
      return Error(agis::StrCat("bad integer '", word, "'"));
    }
    return static_cast<int64_t>(v);
  }

  agis::Result<double> Double(const char* what) {
    AGIS_ASSIGN_OR_RETURN(std::string word, Word(what));
    char* end = nullptr;
    const double v = std::strtod(word.c_str(), &end);
    if (end == word.c_str() || *end != '\0') {
      return Error(agis::StrCat("bad number '", word, "'"));
    }
    return v;
  }

  agis::Status Error(const std::string& message) const {
    return agis::Status::ParseError(
        agis::StrCat("agisdb line ", line_, ": ", message));
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        if (c == '\n') ++line_;
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

agis::Result<AttrType> AttrTypeFromName(const std::string& name,
                                        PersistScanner* scanner) {
  for (AttrType type :
       {AttrType::kBool, AttrType::kInt, AttrType::kDouble, AttrType::kString,
        AttrType::kText, AttrType::kBlob, AttrType::kGeometry,
        AttrType::kTuple, AttrType::kRef, AttrType::kList}) {
    if (name == AttrTypeName(type)) return type;
  }
  return scanner->Error(agis::StrCat("unknown attribute type '", name, "'"));
}

agis::Result<std::vector<uint8_t>> HexDecode(const std::string& hex,
                                             PersistScanner* scanner) {
  if (hex.size() % 2 != 0) return scanner->Error("odd hex length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<uint8_t> out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return scanner->Error("bad hex digit");
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

agis::Result<AttributeDef> ParseAttrDef(PersistScanner* scanner) {
  AttributeDef attr;
  AGIS_ASSIGN_OR_RETURN(attr.name, scanner->QuotedString());
  AGIS_ASSIGN_OR_RETURN(std::string type_name,
                        scanner->Word("attribute type"));
  if (type_name == "ref") {
    attr.type = AttrType::kRef;
    AGIS_ASSIGN_OR_RETURN(attr.ref_class, scanner->QuotedString());
  } else if (type_name == "list") {
    attr.type = AttrType::kList;
    AGIS_ASSIGN_OR_RETURN(std::string elem, scanner->Word("element type"));
    AGIS_ASSIGN_OR_RETURN(AttrType elem_type,
                          AttrTypeFromName(elem, scanner));
    attr.list_element = elem_type;
  } else {
    AGIS_ASSIGN_OR_RETURN(attr.type, AttrTypeFromName(type_name, scanner));
  }
  if (scanner->PeekWord() == "required") {
    (void)scanner->Word("required");
    attr.required = true;
  }
  if (attr.type == AttrType::kTuple) {
    while (true) {
      const std::string next = scanner->PeekWord();
      if (next == "end") {
        (void)scanner->Word("end");
        break;
      }
      if (next != "attr") return scanner->Error("expected attr or end");
      (void)scanner->Word("attr");
      AGIS_ASSIGN_OR_RETURN(AttributeDef field, ParseAttrDef(scanner));
      attr.tuple_fields.push_back(std::move(field));
    }
  }
  return attr;
}

agis::Result<Value> ParseValue(PersistScanner* scanner) {
  AGIS_ASSIGN_OR_RETURN(std::string kind, scanner->Word("value kind"));
  if (kind == "null") return Value();
  if (kind == "bool") {
    AGIS_ASSIGN_OR_RETURN(std::string b, scanner->Word("bool"));
    return Value::Bool(b == "true");
  }
  if (kind == "int") {
    AGIS_ASSIGN_OR_RETURN(int64_t v, scanner->Integer("int value"));
    return Value::Int(v);
  }
  if (kind == "double") {
    AGIS_ASSIGN_OR_RETURN(double v, scanner->Double("double value"));
    return Value::Double(v);
  }
  if (kind == "string") {
    AGIS_ASSIGN_OR_RETURN(std::string s, scanner->QuotedString());
    return Value::String(std::move(s));
  }
  if (kind == "blob") {
    Blob blob;
    AGIS_ASSIGN_OR_RETURN(blob.format, scanner->QuotedString());
    AGIS_ASSIGN_OR_RETURN(std::string hex, scanner->QuotedString());
    AGIS_ASSIGN_OR_RETURN(blob.bytes, HexDecode(hex, scanner));
    return Value::MakeBlob(std::move(blob));
  }
  if (kind == "geometry") {
    AGIS_ASSIGN_OR_RETURN(std::string wkt, scanner->QuotedString());
    AGIS_ASSIGN_OR_RETURN(geom::Geometry g, geom::ParseWkt(wkt));
    return Value::MakeGeometry(std::move(g));
  }
  if (kind == "ref") {
    AGIS_ASSIGN_OR_RETURN(int64_t id, scanner->Integer("ref id"));
    AGIS_ASSIGN_OR_RETURN(std::string cls, scanner->QuotedString());
    return Value::Ref(static_cast<ObjectId>(id), std::move(cls));
  }
  if (kind == "tuple") {
    Value::Tuple fields;
    while (scanner->PeekWord() != "end") {
      AGIS_ASSIGN_OR_RETURN(std::string name, scanner->QuotedString());
      AGIS_ASSIGN_OR_RETURN(Value field, ParseValue(scanner));
      fields.emplace_back(std::move(name), std::move(field));
    }
    (void)scanner->Word("end");
    return Value::MakeTuple(std::move(fields));
  }
  if (kind == "list") {
    Value::List items;
    while (scanner->PeekWord() != "end") {
      AGIS_ASSIGN_OR_RETURN(Value item, ParseValue(scanner));
      items.push_back(std::move(item));
    }
    (void)scanner->Word("end");
    return Value::MakeList(std::move(items));
  }
  return scanner->Error(agis::StrCat("unknown value kind '", kind, "'"));
}

}  // namespace

std::string SaveDatabaseToString(const GeoDatabase& db) {
  std::string out = "agisdb 1\n";
  out += agis::StrCat("schema ", Quoted(db.schema().name()), "\n");
  for (const std::string& class_name : db.schema().ClassNames()) {
    const ClassDef* cls = db.schema().FindClass(class_name);
    out += agis::StrCat("class ", Quoted(class_name), " parent ",
                        Quoted(cls->parent()), " doc ", Quoted(cls->doc()),
                        "\n");
    for (const AttributeDef& attr : cls->attributes()) {
      AppendAttrDef(attr, 1, &out);
    }
    out += "end\n";
  }
  // Serialize one pinned snapshot: the saved file is a consistent
  // point-in-time image even if writers keep going during the save.
  const Snapshot snap = db.OpenSnapshot();
  for (const std::string& class_name : db.schema().ClassNames()) {
    auto ids = db.ScanExtentAt(snap, class_name);
    if (!ids.ok()) continue;
    for (ObjectId id : ids.value()) {
      const ObjectInstance* obj = db.FindObjectAt(snap, id);
      if (obj == nullptr) continue;
      out += agis::StrCat("object ", id, " ", Quoted(class_name), "\n");
      for (const auto& [attr, value] : obj->values()) {
        out += agis::StrCat("  ", Quoted(attr), " ");
        AppendValue(value, 1, &out);
        out += "\n";
      }
      out += "end\n";
    }
  }
  return out;
}

agis::Status SaveDatabaseToFile(const GeoDatabase& db,
                                const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return agis::Status::Internal(
        agis::StrCat("cannot open '", path, "' for writing"));
  }
  out << SaveDatabaseToString(db);
  out.close();
  if (!out) {
    return agis::Status::Internal(agis::StrCat("write to '", path,
                                               "' failed"));
  }
  return agis::Status::OK();
}

agis::Result<std::unique_ptr<GeoDatabase>> LoadDatabaseFromString(
    std::string_view text, DatabaseOptions options) {
  PersistScanner scanner(text);
  AGIS_ASSIGN_OR_RETURN(std::string magic, scanner.Word("'agisdb'"));
  if (magic != "agisdb") {
    return scanner.Error("not an agisdb file");
  }
  AGIS_ASSIGN_OR_RETURN(int64_t version, scanner.Integer("format version"));
  if (version != 1) {
    return scanner.Error(agis::StrCat("unsupported version ", version));
  }
  AGIS_ASSIGN_OR_RETURN(std::string keyword, scanner.Word("'schema'"));
  if (keyword != "schema") return scanner.Error("expected schema");
  AGIS_ASSIGN_OR_RETURN(std::string schema_name, scanner.QuotedString());
  auto db = std::make_unique<GeoDatabase>(schema_name, options);
  // Defer per-object index maintenance: indexes are bulk-built once at
  // the end, which gives the spatial indexes an STR-packed layout.
  db->BeginBulkRestore();

  while (!scanner.AtEnd()) {
    AGIS_ASSIGN_OR_RETURN(std::string section, scanner.Word("section"));
    if (section == "class") {
      AGIS_ASSIGN_OR_RETURN(std::string name, scanner.QuotedString());
      AGIS_ASSIGN_OR_RETURN(std::string parent_kw, scanner.Word("'parent'"));
      if (parent_kw != "parent") return scanner.Error("expected parent");
      AGIS_ASSIGN_OR_RETURN(std::string parent, scanner.QuotedString());
      AGIS_ASSIGN_OR_RETURN(std::string doc_kw, scanner.Word("'doc'"));
      if (doc_kw != "doc") return scanner.Error("expected doc");
      AGIS_ASSIGN_OR_RETURN(std::string doc, scanner.QuotedString());
      ClassDef cls(name, doc);
      if (!parent.empty()) cls.set_parent(parent);
      while (scanner.PeekWord() != "end") {
        AGIS_ASSIGN_OR_RETURN(std::string attr_kw, scanner.Word("'attr'"));
        if (attr_kw != "attr") return scanner.Error("expected attr or end");
        AGIS_ASSIGN_OR_RETURN(AttributeDef attr, ParseAttrDef(&scanner));
        AGIS_RETURN_IF_ERROR(cls.AddAttribute(std::move(attr)));
      }
      (void)scanner.Word("end");
      AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(cls)));
      continue;
    }
    if (section == "object") {
      AGIS_ASSIGN_OR_RETURN(int64_t id, scanner.Integer("object id"));
      AGIS_ASSIGN_OR_RETURN(std::string class_name, scanner.QuotedString());
      ObjectInstance obj(static_cast<ObjectId>(id), class_name);
      while (scanner.PeekWord() != "end") {
        AGIS_ASSIGN_OR_RETURN(std::string attr, scanner.QuotedString());
        AGIS_ASSIGN_OR_RETURN(Value value, ParseValue(&scanner));
        obj.Set(attr, std::move(value));
      }
      (void)scanner.Word("end");
      AGIS_RETURN_IF_ERROR(db->RestoreObject(std::move(obj)));
      continue;
    }
    return scanner.Error(agis::StrCat("unknown section '", section, "'"));
  }
  AGIS_RETURN_IF_ERROR(db->FinishBulkRestore());
  return db;
}

agis::Result<std::unique_ptr<GeoDatabase>> LoadDatabaseFromFile(
    const std::string& path, DatabaseOptions options) {
  std::ifstream in(path);
  if (!in) {
    return agis::Status::NotFound(agis::StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadDatabaseFromString(buffer.str(), options);
}

}  // namespace agis::geodb
