#ifndef AGIS_GEODB_EVENTS_H_
#define AGIS_GEODB_EVENTS_H_

#include <memory>
#include <string>
#include <vector>

#include "base/context.h"
#include "base/status.h"
#include "geodb/snapshot.h"
#include "geodb/value.h"

namespace agis::geodb {

/// Kinds of database events the engine emits. The first three are the
/// exploratory-mode primitives the interface dispatcher generates
/// (Section 3.3); the write events feed the integrity/topology rule
/// family.
enum class DbEventKind {
  kGetSchema,
  kGetClass,
  kGetValue,
  kBeforeInsert,
  kAfterInsert,
  kBeforeUpdate,
  kAfterUpdate,
  kBeforeDelete,
  kAfterDelete,
  /// Emitted after a successful RegisterClass (after the schema change
  /// hook). Carries only `class_name`; consumers that maintain
  /// class-shaped derived state (the changefeed, and through it the
  /// incremental view refresher) treat it as a resync boundary.
  kSchemaChange,
};

const char* DbEventKindName(DbEventKind kind);

/// One database event. Not every field is meaningful for every kind:
/// `class_name` for GetClass/writes, `object_id` for GetValue/writes,
/// `attribute`+`old_value`/`new_value` for updates.
struct DbEvent {
  DbEventKind kind;
  UserContext context;       // Who/where the triggering interaction ran.
  std::string schema_name;
  std::string class_name;
  ObjectId object_id = 0;
  std::string attribute;
  Value old_value;
  Value new_value;
  /// For kAfter* write events: the epoch the write stamped on the
  /// version it installed (0 for non-write events). Totally orders
  /// deltas the same way the WAL does.
  uint64_t write_epoch = 0;
  /// For kAfter* write events: the attribute names the write supplied
  /// (all given attributes for an insert, the single updated attribute
  /// for an update, empty for a delete). Changefeed subscribers use
  /// this to decide whether a cached slice or a rendered symbol is
  /// affected without diffing values.
  std::vector<std::string> changed_attributes;
  /// For write events with sinks registered: a snapshot of the
  /// database as of this event (pre-write state for kBefore*,
  /// post-write for kAfter*). Sink code that reads back into the
  /// database should use it (FindObjectAt / ScanExtentAt) so the
  /// state it validates or reacts to cannot shift underneath it.
  /// Shared because events fan out to several sinks; released when
  /// the last holder drops it.
  std::shared_ptr<const Snapshot> snapshot;

  std::string ToString() const;
};

/// Observer registered with a GeoDatabase. `OnBeforeEvent` runs for
/// kBefore* events and may veto the write by returning a non-OK
/// status (this is how topology-constraint rules reject updates);
/// `OnAfterEvent` runs for all other kinds, after the operation.
class DbEventSink {
 public:
  virtual ~DbEventSink() = default;
  virtual agis::Status OnBeforeEvent(const DbEvent& event) {
    (void)event;
    return agis::Status::OK();
  }
  virtual void OnAfterEvent(const DbEvent& event) { (void)event; }
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_EVENTS_H_
