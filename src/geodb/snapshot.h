#ifndef AGIS_GEODB_SNAPSHOT_H_
#define AGIS_GEODB_SNAPSHOT_H_

#include <cstdint>

namespace agis::geodb {

class GeoDatabase;

/// A pinned, consistent read view over a GeoDatabase.
///
/// Opening a snapshot (GeoDatabase::OpenSnapshot) records the write
/// epoch current at that moment and pins it: every object version
/// visible at that epoch is kept alive — writes copy-on-write new
/// versions instead of mutating in place, and epoch-based reclamation
/// never frees a version some open snapshot can still see. The
/// snapshot-taking read APIs (GetValueAt / FindObjectAt / ScanExtentAt)
/// then answer exactly as the database stood at open time, no matter
/// how many writes have landed since.
///
/// Pointers obtained through a snapshot stay valid until the snapshot
/// is released (destroyed or Release()d) — this is the guarantee that
/// retires the old "valid only until the next write" pointer contract
/// for long-lived renderers and rule actions.
///
/// A Snapshot is a move-only RAII handle; releasing it unpins the
/// epoch. Snapshots are cheap to open (no data is copied) and cheap to
/// hold, but holding one retains every version superseded since it was
/// opened, so long-lived snapshots cost memory proportional to the
/// write churn underneath them. Thread-safe to open/release from any
/// thread; a single Snapshot instance may be shared across reader
/// threads (its state is immutable after construction).
class Snapshot {
 public:
  /// Detached handle; valid() is false and reads through it fail.
  Snapshot() = default;

  Snapshot(Snapshot&& other) noexcept;
  Snapshot& operator=(Snapshot&& other) noexcept;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  ~Snapshot();

  /// Unpins the epoch; the handle becomes detached. Idempotent.
  /// Versions retained for this snapshot are reclaimed by the next
  /// write (or GeoDatabase::ReclaimVersions).
  void Release();

  bool valid() const { return db_ != nullptr; }

  /// The write epoch this snapshot observes (0 for detached handles).
  uint64_t epoch() const { return epoch_; }

  /// The database this snapshot reads (nullptr for detached handles).
  const GeoDatabase* database() const { return db_; }

 private:
  friend class GeoDatabase;
  Snapshot(const GeoDatabase* db, uint64_t epoch) : db_(db), epoch_(epoch) {}

  const GeoDatabase* db_ = nullptr;
  uint64_t epoch_ = 0;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_SNAPSHOT_H_
