#ifndef AGIS_GEODB_OBJECT_H_
#define AGIS_GEODB_OBJECT_H_

#include <string>
#include <utility>
#include <vector>

#include "geodb/value.h"

namespace agis::geodb {

/// A stored instance: identity, class membership, and attribute
/// values. Unset attributes read as null.
///
/// Values live in a flat vector sorted by attribute name: instances
/// carry a handful of attributes, where binary search beats a
/// node-based map on every lookup, the pairs stay contiguous for
/// scans, and a whole instance costs one allocation instead of one
/// per attribute — the difference between a bulk restore that walks
/// the heap and one that streams.
class ObjectInstance {
 public:
  ObjectInstance() = default;
  ObjectInstance(ObjectId id, std::string class_name)
      : id_(id), class_name_(std::move(class_name)) {}

  ObjectId id() const { return id_; }
  const std::string& class_name() const { return class_name_; }

  /// Null when the attribute has never been set.
  const Value& Get(const std::string& attr) const;

  /// Sets or replaces `attr`.
  void Set(const std::string& attr, Value value);

  /// Set for loaders that stream attributes in ascending name order
  /// (the persist codecs write values() order): O(1) append on the
  /// expected path, falling back to Set when called out of order.
  void SetOrdered(std::string attr, Value value);

  bool Has(const std::string& attr) const;

  /// Grows the value storage ahead of `n` Set/SetOrdered calls.
  void ReserveValues(size_t n) { values_.reserve(n); }

  /// Attribute/value pairs, ascending by attribute name.
  const std::vector<std::pair<std::string, Value>>& values() const {
    return values_;
  }

  /// Rough memory footprint in bytes, used by the buffer manager to
  /// charge cached result sets.
  size_t ApproxSizeBytes() const;

 private:
  /// Position of `attr` (or of the first greater name when absent).
  std::vector<std::pair<std::string, Value>>::const_iterator LowerBound(
      const std::string& attr) const;

  ObjectId id_ = 0;
  std::string class_name_;
  std::vector<std::pair<std::string, Value>> values_;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_OBJECT_H_
