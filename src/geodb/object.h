#ifndef AGIS_GEODB_OBJECT_H_
#define AGIS_GEODB_OBJECT_H_

#include <map>
#include <string>

#include "geodb/value.h"

namespace agis::geodb {

/// A stored instance: identity, class membership, and attribute
/// values. Unset attributes read as null.
class ObjectInstance {
 public:
  ObjectInstance() = default;
  ObjectInstance(ObjectId id, std::string class_name)
      : id_(id), class_name_(std::move(class_name)) {}

  ObjectId id() const { return id_; }
  const std::string& class_name() const { return class_name_; }

  /// Null when the attribute has never been set.
  const Value& Get(const std::string& attr) const;

  void Set(const std::string& attr, Value value) {
    values_[attr] = std::move(value);
  }

  bool Has(const std::string& attr) const {
    return values_.count(attr) != 0;
  }

  const std::map<std::string, Value>& values() const { return values_; }

  /// Rough memory footprint in bytes, used by the buffer manager to
  /// charge cached result sets.
  size_t ApproxSizeBytes() const;

 private:
  ObjectId id_ = 0;
  std::string class_name_;
  std::map<std::string, Value> values_;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_OBJECT_H_
