#ifndef AGIS_GEODB_VALUE_H_
#define AGIS_GEODB_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "base/status.h"
#include "geom/geometry.h"

namespace agis::geodb {

/// Identity of a stored object; 0 is never assigned.
using ObjectId = uint64_t;

/// Opaque binary attribute payload (the paper's `bitmap` attribute
/// kind, e.g. `pole_picture`).
struct Blob {
  std::vector<uint8_t> bytes;
  std::string format;  // e.g. "pbm", "png"; informational.

  friend bool operator==(const Blob& a, const Blob& b) {
    return a.format == b.format && a.bytes == b.bytes;
  }
};

/// Reference attribute value: points at another stored object
/// (`pole_supplier: Supplier` in Figure 5).
struct ObjectRef {
  ObjectId id = 0;
  std::string class_name;

  friend bool operator==(const ObjectRef& a, const ObjectRef& b) {
    return a.id == b.id && a.class_name == b.class_name;
  }
};

enum class ValueKind {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kBlob,
  kGeometry,
  kTuple,
  kList,
  kRef,
};

const char* ValueKindName(ValueKind kind);

/// Dynamically-typed attribute value stored by the geographic DBMS and
/// shuttled to the interface through the weak-integration protocol.
///
/// Tuples are ordered field lists (the paper's `pole_composition:
/// tuple(material, diameter, height)`); lists hold homogeneous element
/// sequences.
class Value {
 public:
  using TupleField = std::pair<std::string, Value>;
  using Tuple = std::vector<TupleField>;
  using List = std::vector<Value>;

  /// Null value.
  Value() : repr_(std::monostate{}) {}

  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value MakeBlob(Blob b) { return Value(Repr(std::move(b))); }
  static Value MakeGeometry(geom::Geometry g) {
    return Value(Repr(std::move(g)));
  }
  static Value MakeTuple(Tuple fields) { return Value(Repr(std::move(fields))); }
  static Value MakeList(List items) { return Value(Repr(std::move(items))); }
  static Value Ref(ObjectId id, std::string class_name) {
    return Value(Repr(ObjectRef{id, std::move(class_name)}));
  }

  ValueKind kind() const { return static_cast<ValueKind>(repr_.index()); }
  bool is_null() const { return kind() == ValueKind::kNull; }

  /// Typed accessors; abort on kind mismatch (programming error). Use
  /// `kind()` or the As* helpers for data-dependent access.
  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }
  const Blob& blob_value() const { return std::get<Blob>(repr_); }
  const geom::Geometry& geometry_value() const {
    return std::get<geom::Geometry>(repr_);
  }
  const Tuple& tuple_value() const { return std::get<Tuple>(repr_); }
  const List& list_value() const { return std::get<List>(repr_); }
  const ObjectRef& ref_value() const { return std::get<ObjectRef>(repr_); }

  /// Numeric coercion: int and double values convert; everything else
  /// errors.
  agis::Result<double> AsDouble() const;

  /// Finds a tuple field by name; errors on non-tuples and absent names.
  agis::Result<Value> TupleField_(const std::string& name) const;

  /// Display representation used by default widget rendering:
  /// "null", "true", "42", "3.5", raw strings, "<blob pbm 12B>",
  /// WKT for geometries, "(material: wood, diameter: 0.3)" for tuples,
  /// "[1, 2]" for lists, "Supplier#7" for refs.
  std::string ToDisplayString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double,
                            std::string, Blob, geom::Geometry, Tuple, List,
                            ObjectRef>;
  explicit Value(Repr r) : repr_(std::move(r)) {}

  Repr repr_;
};

/// Three-way comparison used by attribute predicates: returns <0, 0,
/// >0, or an error for incomparable kinds. Numeric kinds compare
/// cross-kind (Int 2 == Double 2.0); strings compare lexicographically.
agis::Result<int> CompareValues(const Value& a, const Value& b);

}  // namespace agis::geodb

#endif  // AGIS_GEODB_VALUE_H_
