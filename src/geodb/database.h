#ifndef AGIS_GEODB_DATABASE_H_
#define AGIS_GEODB_DATABASE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/context.h"
#include "base/status.h"
#include "geodb/attr_index.h"
#include "geodb/buffer_pool.h"
#include "geodb/events.h"
#include "geodb/object.h"
#include "geodb/query.h"
#include "geodb/schema.h"
#include "geodb/value.h"
#include "spatial/spatial_index.h"

namespace agis {
class ThreadPool;
}

namespace agis::geodb {

/// Spatial index implementation backing class extents.
enum class IndexKind { kRTree, kGrid, kLinearScan };

/// Tuning and substrate selection for a database instance.
struct DatabaseOptions {
  IndexKind index_kind = IndexKind::kRTree;
  /// World extent; required by the grid index, ignored otherwise.
  geom::BoundingBox world = geom::BoundingBox(0, 0, 10000, 10000);
  size_t grid_cells_per_side = 64;
  size_t rtree_max_entries = 8;
  size_t buffer_pool_bytes = 8 << 20;
  /// Shards of the display buffer pool; >1 lets concurrent readers
  /// hit the cache without serializing on one lock.
  size_t buffer_pool_shards = 8;
  /// Maintain secondary attribute indexes (hash + ordered) for every
  /// scalar attribute of every class; the Get_Class planner uses them
  /// for predicate access paths. Costs O(#scalar attrs) per write.
  bool auto_attribute_indexes = true;
  /// Minimum candidates per partition when a residual extent scan is
  /// spread across the query thread pool (see set_query_pool); scans
  /// smaller than two partitions stay on the calling thread.
  size_t parallel_scan_partition = 4096;
};

/// Cumulative operation counters, for tests and benches. Counter
/// updates are internally synchronized; read the struct while the
/// database is quiescent (no concurrent calls) for exact values.
struct DatabaseStats {
  uint64_t get_schema_calls = 0;
  uint64_t get_class_calls = 0;
  uint64_t get_value_calls = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t vetoed_writes = 0;

  // ---- Read-path planner counters ----------------------------------------
  /// Get_Class evaluations that used at least one attribute-index
  /// access path.
  uint64_t attr_index_queries = 0;
  /// Get_Class evaluations that probed a spatial index.
  uint64_t spatial_index_queries = 0;
  /// Get_Class evaluations with no index path at all (full extent
  /// candidates).
  uint64_t full_extent_scans = 0;
  /// Residual scans partitioned across the query thread pool.
  uint64_t parallel_scans = 0;
  /// STR bulk (re)builds of spatial indexes.
  uint64_t bulk_index_builds = 0;
  /// Spatial-index quality per class, refreshed by FinishBulkRestore /
  /// RebuildSpatialIndexes (height, node count, average node fill).
  std::map<std::string, spatial::IndexQuality> index_quality;
};

/// In-memory object-oriented geographic DBMS.
///
/// This is the substrate the paper assumes: an OO schema with spatial
/// attributes, class extents with spatial indexes, the three
/// exploratory query primitives (`GetSchema`, `GetClass`, `GetValue`)
/// plus write operations, a display buffer pool, and event emission
/// hooks that the active mechanism subscribes to.
///
/// ---- Thread-safety contract --------------------------------------------
///
/// The read path is concurrent: any number of threads may issue
/// GetSchema / GetClass / GetValue / GetAttributeValue / ScanExtent /
/// FindObject / ExtentSize / CallMethod simultaneously (they take a
/// shared lock, mirroring the PR-1 RuleEngine locking model). Write
/// operations (Insert / Update / Delete / RestoreObject) take the
/// exclusive lock for the mutation itself and serialize against each
/// other and against readers.
///
/// Three deliberate carve-outs, matching the paper's single-session
/// write model:
///  * Event sinks run with NO database lock held (before-write sinks
///    routinely re-enter the database, e.g. topology constraints
///    calling ScanExtent). Consequently a write is not atomic with
///    its sink invocations: under concurrent writers, a before-sink
///    may observe state that changes before the mutation lands, and
///    the provisional object id carried by a before-insert event may
///    differ from the final id. Single-writer callers (the paper's
///    model) never observe either.
///  * Schema registration (RegisterClass / RegisterMethod) and sink
///    registration (Add/RemoveEventSink) are a setup phase: run them
///    before going concurrent.
///  * Pointers returned by GetValue / FindObject / GetSchema remain
///    valid only until the next write that touches them.
class GeoDatabase {
 public:
  explicit GeoDatabase(std::string schema_name,
                       DatabaseOptions options = DatabaseOptions());

  GeoDatabase(const GeoDatabase&) = delete;
  GeoDatabase& operator=(const GeoDatabase&) = delete;

  // ---- Schema management -------------------------------------------------

  /// Registers a class and creates its (empty) extent. With
  /// `auto_attribute_indexes`, every scalar attribute (bool / int /
  /// double / string / text, including inherited ones) gets a
  /// secondary index maintained from then on.
  agis::Status RegisterClass(ClassDef cls);

  const Schema& schema() const { return schema_; }

  /// Attaches a method implementation to a registered class.
  agis::Status RegisterMethod(const std::string& class_name, MethodDef method);

  /// Creates a secondary index over one scalar attribute of
  /// `class_name` (for databases running with auto_attribute_indexes
  /// off). Existing instances are indexed immediately. Idempotent.
  agis::Status CreateAttributeIndex(const std::string& class_name,
                                    const std::string& attribute);

  /// Whether `class_name` maintains an index over `attribute`.
  bool HasAttributeIndex(const std::string& class_name,
                         const std::string& attribute) const;

  // ---- Event sinks -------------------------------------------------------

  /// Sinks observe all events; before-write sinks may veto. Sinks are
  /// not owned; callers must keep them alive and deregister first.
  /// Registration is not synchronized against in-flight operations.
  void AddEventSink(DbEventSink* sink);
  void RemoveEventSink(DbEventSink* sink);

  // ---- Write operations --------------------------------------------------

  /// Validates `values` against the class definition, runs before-
  /// insert sinks (veto aborts), stores, indexes, and emits
  /// after-insert.
  agis::Result<ObjectId> Insert(
      const std::string& class_name,
      std::vector<std::pair<std::string, Value>> values,
      const UserContext& ctx = UserContext());

  /// Single-attribute update with veto support.
  agis::Status Update(ObjectId id, const std::string& attribute, Value value,
                      const UserContext& ctx = UserContext());

  agis::Status Delete(ObjectId id, const UserContext& ctx = UserContext());

  // ---- Query primitives (each emits its database event) -------------------

  /// `Get_Schema`: describes the schema. The returned pointer stays
  /// valid for the database's lifetime.
  agis::Result<const Schema*> GetSchema(const UserContext& ctx = UserContext());

  /// `Get_Class`: instances of `class_name` matching `options`.
  ///
  /// Evaluation is planned per class: the planner gathers an id set
  /// from every usable access path — the spatial index for window /
  /// relation filters, the attribute indexes for indexable predicates
  /// — intersects them (most selective first), and only then runs the
  /// residual predicates over the surviving candidates. Large
  /// residual scans are partitioned across the query thread pool when
  /// one is attached (set_query_pool) with a deterministic in-order
  /// merge, so results are identical with and without the pool.
  agis::Result<ClassResult> GetClass(const std::string& class_name,
                                     const GetClassOptions& options = {},
                                     const UserContext& ctx = UserContext());

  /// `Get_Value`: one full instance.
  agis::Result<const ObjectInstance*> GetValue(
      ObjectId id, const UserContext& ctx = UserContext());

  /// `Get_Value` narrowed to one attribute.
  agis::Result<Value> GetAttributeValue(ObjectId id,
                                        const std::string& attribute,
                                        const UserContext& ctx = UserContext());

  /// Invokes a registered method on an instance.
  agis::Result<Value> CallMethod(ObjectId id, const std::string& method) const;

  /// Bulk-load path used by geodb/persist: restores an instance with
  /// its original id. Validates against the schema and indexes
  /// geometry but bypasses event sinks and buffer invalidation
  /// (databases are restored before rules and sessions attach).
  /// Between BeginBulkRestore and FinishBulkRestore, per-object index
  /// maintenance is skipped entirely and indexes are rebuilt in one
  /// STR pass at the end.
  agis::Status RestoreObject(ObjectInstance obj);

  /// Enters bulk-restore mode: RestoreObject defers all indexing.
  void BeginBulkRestore();

  /// Leaves bulk-restore mode: rebuilds every extent's spatial index
  /// with one STR bulk load and repopulates attribute indexes.
  agis::Status FinishBulkRestore();

  /// Rebuilds every extent's spatial index from current contents via
  /// STR bulk loading (also refreshes DatabaseStats::index_quality).
  /// Useful after heavy churn degraded the incrementally-built tree.
  void RebuildSpatialIndexes();

  // ---- Non-event accessors (internal plumbing, no event emission) --------

  /// Object lookup without emitting Get_Value (used by renderers that
  /// already hold a ClassResult).
  const ObjectInstance* FindObject(ObjectId id) const;

  /// Extent scan without event emission or caching; `window` narrows
  /// via the spatial index when the class has a geometry attribute.
  /// Used by constraint rules, which must not recursively generate
  /// query events while validating a write.
  agis::Result<std::vector<ObjectId>> ScanExtent(
      const std::string& class_name,
      const std::optional<geom::BoundingBox>& window = std::nullopt) const;

  /// Number of live instances of `class_name` (excluding subclasses).
  size_t ExtentSize(const std::string& class_name) const;

  size_t NumObjects() const;

  /// The attribute GetClass windows/spatial filters index for
  /// `class_name` (first geometry attribute, possibly inherited);
  /// empty when the class has none.
  std::string GeometryAttributeOf(const std::string& class_name) const;

  /// Attaches a worker pool used to partition large residual extent
  /// scans (non-owning; pass nullptr to detach). The pool must not be
  /// one whose workers themselves call into this database's GetClass,
  /// or a saturated pool can deadlock waiting on its own queue.
  void set_query_pool(agis::ThreadPool* pool) { query_pool_ = pool; }

  BufferPool& buffer_pool() { return buffer_pool_; }
  const DatabaseStats& stats() const { return stats_; }
  const DatabaseOptions& options() const { return options_; }

 private:
  struct Extent {
    std::vector<ObjectId> ids;
    std::unique_ptr<spatial::SpatialIndex> index;
    std::string geometry_attr;
    /// Secondary indexes keyed by attribute name.
    std::map<std::string, AttributeIndex> attr_indexes;
  };

  std::unique_ptr<spatial::SpatialIndex> MakeIndex() const;
  agis::Status RunBeforeSinks(const DbEvent& event);
  void RunAfterSinks(const DbEvent& event);
  agis::Status ValidateAgainstSchema(
      const std::string& class_name,
      const std::vector<std::pair<std::string, Value>>& values) const;
  void IndexGeometry(Extent* extent, ObjectId id, const Value& geometry_value);
  /// Adds/removes `id` in every attribute index of `extent`.
  void IndexAttributes(Extent* extent, const ObjectInstance& obj);
  void UnindexAttributes(Extent* extent, const ObjectInstance& obj);
  void InvalidateClassBuffers(const std::string& class_name);
  /// Requires the exclusive lock. Rebuilds one extent's spatial index
  /// via STR and refreshes its quality stats.
  void RebuildExtentSpatialIndexLocked(const std::string& class_name,
                                       Extent* extent);

  /// Extent evaluation shared by cached and uncached paths. The
  /// caller must hold the shared (or exclusive) data lock.
  agis::Result<std::vector<ObjectId>> EvaluateGetClass(
      const std::string& class_name, const GetClassOptions& options) const;

  /// Residual predicate/geometry evaluation over
  /// `candidates[begin, end)`; `applied` flags predicates already
  /// answered exactly by an index. Caller holds the data lock.
  std::vector<ObjectId> EvaluateResidual(const Extent& extent,
                                         const GetClassOptions& options,
                                         const std::vector<bool>& applied,
                                         const std::vector<ObjectId>& candidates,
                                         size_t begin, size_t end) const;

  Schema schema_;
  DatabaseOptions options_;

  /// Guards objects_, extents_ (structure and contents), and
  /// next_id_. Shared for queries, exclusive for writes. Sinks always
  /// run with this lock released (they re-enter the database).
  mutable std::shared_mutex data_mutex_;
  std::unordered_map<ObjectId, ObjectInstance> objects_;
  std::map<std::string, Extent> extents_;
  ObjectId next_id_ = 1;
  bool bulk_restore_ = false;

  std::vector<DbEventSink*> sinks_;
  BufferPool buffer_pool_;
  agis::ThreadPool* query_pool_ = nullptr;

  /// Guards stats_. Mutable so const read paths can count their work.
  mutable std::mutex stats_mutex_;
  mutable DatabaseStats stats_;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_DATABASE_H_
