#ifndef AGIS_GEODB_DATABASE_H_
#define AGIS_GEODB_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/context.h"
#include "base/status.h"
#include "base/task_scheduler.h"
#include "base/thread_pool.h"
#include "geodb/attr_index.h"
#include "geodb/buffer_pool.h"
#include "geodb/events.h"
#include "geodb/object.h"
#include "geodb/query.h"
#include "geodb/schema.h"
#include "geodb/snapshot.h"
#include "geodb/value.h"
#include "spatial/spatial_index.h"

namespace agis::geodb {

/// Spatial index implementation backing class extents.
enum class IndexKind { kRTree, kGrid, kLinearScan };

/// Tuning and substrate selection for a database instance.
struct DatabaseOptions {
  IndexKind index_kind = IndexKind::kRTree;
  /// World extent; required by the grid index, ignored otherwise.
  geom::BoundingBox world = geom::BoundingBox(0, 0, 10000, 10000);
  size_t grid_cells_per_side = 64;
  size_t rtree_max_entries = 8;
  size_t buffer_pool_bytes = 8 << 20;
  /// Shards of the display buffer pool; >1 lets concurrent readers
  /// hit the cache without serializing on one lock.
  size_t buffer_pool_shards = 8;
  /// Maintain secondary attribute indexes (hash + ordered) for every
  /// scalar attribute of every class; the Get_Class planner uses them
  /// for predicate access paths. Costs O(#scalar attrs) per write.
  bool auto_attribute_indexes = true;
  /// Minimum candidates per partition when a residual extent scan is
  /// spread across the task scheduler (see set_task_scheduler); scans
  /// smaller than two partitions stay on the calling thread.
  size_t parallel_scan_partition = 4096;
  /// Get_Class planner: an attribute-index access path whose estimated
  /// match count (AttributeIndex::EstimateCount) exceeds this fraction
  /// of the extent is not materialized — intersecting a near-complete
  /// id list costs more than letting the residual filter handle the
  /// predicate. Paths are estimated and ordered most-selective-first
  /// before any id set is built. 1.0 restores the old always-
  /// materialize behavior.
  double index_path_selectivity_cutoff = 0.5;
  /// Restore the pre-changefeed invalidation behavior: every write to
  /// a class drops that class's whole "class/<name>/" buffer-pool
  /// prefix. Off by default — writes now invalidate per object, using
  /// each cached slice's query-shape metadata to keep slices the write
  /// cannot affect (a hot viewport survives writes elsewhere). Kept as
  /// an option so the C11 bench can A/B the two schemes.
  bool legacy_class_prefix_invalidation = false;
};

/// Cumulative operation counters, for tests and benches. Counter
/// updates are internally synchronized and stats() returns a copy
/// taken under the counters' lock, so reading while other threads
/// operate is safe; values are exact once the database is quiescent.
struct DatabaseStats {
  uint64_t get_schema_calls = 0;
  uint64_t get_class_calls = 0;
  uint64_t get_value_calls = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t vetoed_writes = 0;

  // ---- Read-path planner counters ----------------------------------------
  /// Get_Class evaluations that used at least one attribute-index
  /// access path.
  uint64_t attr_index_queries = 0;
  /// Get_Class evaluations that probed a spatial index.
  uint64_t spatial_index_queries = 0;
  /// Get_Class evaluations with no index path at all (full extent
  /// candidates).
  uint64_t full_extent_scans = 0;
  /// Residual scans partitioned across the task scheduler.
  uint64_t parallel_scans = 0;
  /// Attribute-index access paths the planner declined to materialize
  /// because their estimated selectivity exceeded the cutoff (the
  /// predicate ran in the residual instead).
  uint64_t index_paths_skipped = 0;
  /// STR bulk (re)builds of spatial indexes.
  uint64_t bulk_index_builds = 0;

  // ---- Versioned read path -----------------------------------------------
  /// Snapshots opened via OpenSnapshot (internal Get_Class pins
  /// excluded).
  uint64_t snapshots_opened = 0;
  /// Superseded object versions (and tombstones) freed by epoch-based
  /// reclamation.
  uint64_t versions_reclaimed = 0;

  /// Spatial-index quality per class, refreshed by FinishBulkRestore /
  /// RebuildSpatialIndexes (height, node count, average node fill).
  std::map<std::string, spatial::IndexQuality> index_quality;

  /// Counters of the attached shared TaskScheduler (zeroed when none
  /// is attached). The scheduler is shared with the rule engine and
  /// storage decode, so these reflect whole-process fan-out, not just
  /// parallel residual scans.
  SchedulerStats scheduler;
};

/// In-memory object-oriented geographic DBMS.
///
/// This is the substrate the paper assumes: an OO schema with spatial
/// attributes, class extents with spatial indexes, the three
/// exploratory query primitives (`GetSchema`, `GetClass`, `GetValue`)
/// plus write operations, a display buffer pool, and event emission
/// hooks that the active mechanism subscribes to.
///
/// ---- Thread-safety contract --------------------------------------------
///
/// The read path is concurrent: any number of threads may issue
/// GetSchema / GetClass / GetValue / GetAttributeValue / ScanExtent /
/// FindObject / ExtentSize / CallMethod — and the snapshot variants
/// OpenSnapshot / GetValueAt / FindObjectAt / ScanExtentAt —
/// simultaneously (they take a shared lock, mirroring the PR-1
/// RuleEngine locking model). Write operations (Insert / Update /
/// Delete / RestoreObject) take the exclusive lock for the mutation
/// itself and serialize against each other and against readers.
///
/// ---- Versioned reads (MVCC-lite) ---------------------------------------
///
/// Object storage is copy-on-write: a write never mutates an
/// ObjectInstance in place — it installs a new immutable version
/// stamped with the write's epoch, and a delete installs a tombstone.
/// `OpenSnapshot()` pins the epoch current at that moment; the
/// snapshot-taking reads answer from the version set visible at that
/// epoch:
///
///  * `FindObjectAt` / `GetValueAt` return the instance version the
///    snapshot sees. The returned pointer stays valid for the
///    *lifetime of the snapshot* — across any number of concurrent or
///    subsequent writes, including deletes of the object.
///  * `ScanExtentAt` returns the ids (ascending) that were members of
///    the class extent at the snapshot's epoch, resurrecting ids
///    deleted since and hiding ids inserted since.
///
/// Superseded versions are retained while any snapshot that can see
/// them is open, and reclaimed by an epoch-based sweep that runs at
/// the tail of each write (or explicitly via ReclaimVersions) once no
/// open snapshot pins them. Releasing a snapshot is cheap (unpin
/// only); the memory it retained is freed by the next write.
///
/// DEPRECATED pointer rule: the pre-snapshot contract — "pointers
/// returned by GetValue / FindObject remain valid only until the next
/// write that touches them" — still governs those two legacy calls,
/// and copy-on-write makes it *stricter* in practice: an Update used
/// to keep the pointer alive (mutating under it); now it retires the
/// pointed-at version, which is freed as soon as no snapshot pins it.
/// Holding an instance across writes requires a snapshot; new code
/// should use FindObjectAt / GetValueAt. GetSchema's pointer remains
/// valid for the database's lifetime.
///
/// Display-buffer invalidation runs after the mutation, outside the
/// data lock: a write drops only the cached slices it can affect —
/// per object id and per cached query shape (viewport / predicate
/// metadata on each BufferSlice) — instead of the class's whole key
/// prefix. Under concurrent writers this is the same fence as before
/// (a racing GetClass may re-cache a slice computed just before the
/// write; the next write to that object drops it), and single-writer
/// sessions observe exact invalidation.
///
/// Two deliberate carve-outs, matching the paper's single-session
/// write model:
///  * Event sinks run with NO database lock held (before-write sinks
///    routinely re-enter the database, e.g. topology constraints
///    calling ScanExtent). Consequently a write is not atomic with
///    its sink invocations: under concurrent writers, a before-sink
///    may observe state that changes before the mutation lands, and
///    the provisional object id carried by a before-insert event may
///    differ from the final id. Single-writer callers (the paper's
///    model) never observe either. Write events do carry a snapshot
///    of the pre-write (before-sinks) or post-write (after-sinks)
///    state, so sink code that reads back into the database can do so
///    consistently.
///  * Schema registration (RegisterClass / RegisterMethod) and sink
///    registration (Add/RemoveEventSink) are a setup phase: run them
///    before going concurrent.
class GeoDatabase {
 public:
  explicit GeoDatabase(std::string schema_name,
                       DatabaseOptions options = DatabaseOptions());

  GeoDatabase(const GeoDatabase&) = delete;
  GeoDatabase& operator=(const GeoDatabase&) = delete;

  // ---- Schema management -------------------------------------------------

  /// Registers a class and creates its (empty) extent. With
  /// `auto_attribute_indexes`, every scalar attribute (bool / int /
  /// double / string / text, including inherited ones) gets a
  /// secondary index maintained from then on.
  agis::Status RegisterClass(ClassDef cls);

  const Schema& schema() const { return schema_; }

  /// Attaches a method implementation to a registered class.
  agis::Status RegisterMethod(const std::string& class_name, MethodDef method);

  /// Creates a secondary index over one scalar attribute of
  /// `class_name` (for databases running with auto_attribute_indexes
  /// off). Existing instances are indexed immediately. Idempotent.
  agis::Status CreateAttributeIndex(const std::string& class_name,
                                    const std::string& attribute);

  /// Whether `class_name` maintains an index over `attribute`.
  bool HasAttributeIndex(const std::string& class_name,
                         const std::string& attribute) const;

  // ---- Event sinks -------------------------------------------------------

  /// Sinks observe all events; before-write sinks may veto. Sinks are
  /// not owned; callers must keep them alive and deregister first.
  /// Registration is not synchronized against in-flight operations.
  void AddEventSink(DbEventSink* sink);
  void RemoveEventSink(DbEventSink* sink);

  // ---- Write operations --------------------------------------------------

  /// Validates `values` against the class definition, runs before-
  /// insert sinks (veto aborts), stores, indexes, and emits
  /// after-insert.
  agis::Result<ObjectId> Insert(
      const std::string& class_name,
      std::vector<std::pair<std::string, Value>> values,
      const UserContext& ctx = UserContext());

  /// Single-attribute update with veto support. Copy-on-write: the
  /// previously current version is retired, not mutated.
  agis::Status Update(ObjectId id, const std::string& attribute, Value value,
                      const UserContext& ctx = UserContext());

  agis::Status Delete(ObjectId id, const UserContext& ctx = UserContext());

  // ---- Snapshots ---------------------------------------------------------

  /// Pins the version set visible right now and returns the RAII
  /// handle that keeps it readable. Cheap: no data is copied.
  Snapshot OpenSnapshot() const;

  /// Frees retained versions no open snapshot can see. Reclamation
  /// also runs automatically at the tail of every write; this exists
  /// for read-mostly callers that released a long-lived snapshot and
  /// want the memory back before the next write.
  void ReclaimVersions();

  /// Number of currently pinned snapshots.
  size_t PinnedSnapshotCount() const;

  /// Total resident object versions, tombstones included (== live
  /// objects when no history is retained). For tests and monitoring.
  size_t TotalVersionCount() const;

  // ---- Query primitives (each emits its database event) -------------------

  /// `Get_Schema`: describes the schema. The returned pointer stays
  /// valid for the database's lifetime.
  agis::Result<const Schema*> GetSchema(const UserContext& ctx = UserContext());

  /// `Get_Class`: instances of `class_name` matching `options`.
  ///
  /// Evaluation is planned per class: the planner gathers an id set
  /// from every usable access path — the spatial index for window /
  /// relation filters, the attribute indexes for indexable predicates
  /// — intersects them (most selective first), and only then runs the
  /// residual predicates over the surviving candidates. The residual
  /// runs over an internally pinned snapshot with the data lock
  /// released, so writers are not blocked by long scans and a
  /// partitioned parallel scan (query thread pool, set_query_pool)
  /// can never observe a torn write; chunks merge deterministically
  /// in order, so results are identical with and without the pool.
  agis::Result<ClassResult> GetClass(const std::string& class_name,
                                     const GetClassOptions& options = {},
                                     const UserContext& ctx = UserContext());

  /// `Get_Value`: one full instance. DEPRECATED pointer contract (see
  /// class comment): valid only until the next write touching `id`.
  /// Prefer GetValueAt.
  [[deprecated(
      "raw-pointer contract (valid only until the next write); "
      "open a snapshot and use GetValueAt")]]
  agis::Result<const ObjectInstance*> GetValue(
      ObjectId id, const UserContext& ctx = UserContext());

  /// `Get_Value` against `snapshot`'s version set. The returned
  /// pointer stays valid until the snapshot is released.
  agis::Result<const ObjectInstance*> GetValueAt(
      const Snapshot& snapshot, ObjectId id,
      const UserContext& ctx = UserContext());

  /// `Get_Value` narrowed to one attribute.
  agis::Result<Value> GetAttributeValue(ObjectId id,
                                        const std::string& attribute,
                                        const UserContext& ctx = UserContext());

  /// Invokes a registered method on an instance.
  agis::Result<Value> CallMethod(ObjectId id, const std::string& method) const;

  /// Bulk-load path used by geodb/persist: restores an instance with
  /// its original id. Validates against the schema and indexes
  /// geometry but bypasses event sinks and buffer invalidation
  /// (databases are restored before rules and sessions attach).
  /// Between BeginBulkRestore and FinishBulkRestore, per-object index
  /// maintenance is skipped entirely and indexes are rebuilt in one
  /// STR pass at the end.
  agis::Status RestoreObject(ObjectInstance obj);

  /// Batch form of RestoreObject: one lock acquisition for the whole
  /// block (the unit a parallel snapshot loader hands over), with the
  /// schema resolved once per run of same-class records instead of
  /// per object.
  agis::Status RestoreObjects(std::vector<ObjectInstance> objects);

  /// WAL-replay form of Update: same copy-on-write mutation and index
  /// maintenance, but no event sinks, no veto, and no buffer
  /// invalidation (recovery runs before sessions attach). NotFound
  /// when the object does not exist — replayers treat that as an
  /// idempotent-redo skip.
  agis::Status RestoreUpdate(ObjectId id, const std::string& attribute,
                             Value value);

  /// WAL-replay form of Delete: tombstones without events. NotFound
  /// when already absent (idempotent-redo skip).
  agis::Status RestoreDelete(ObjectId id);

  /// Enters bulk-restore mode: RestoreObject defers all indexing
  /// (spatial entries are still collected as objects arrive, so the
  /// closing STR build does not re-walk the extents). A loader that
  /// knows its object count passes it to pre-size the version store.
  void BeginBulkRestore(size_t expected_objects = 0);

  /// Hands a pre-built attribute index over during bulk restore (the
  /// snapshot loader decodes persisted index runs instead of
  /// re-deriving them from records). Only valid between
  /// BeginBulkRestore and FinishBulkRestore, and only after every
  /// record the index covers has been restored — the loader's section
  /// order guarantees this. The install is dropped (OK, not an error)
  /// when `attribute` is not indexed on this database, so index
  /// sections written under different index options load cleanly.
  /// Installed indexes are maintained incrementally by RestoreUpdate /
  /// RestoreDelete and skipped by FinishBulkRestore's rebuild.
  agis::Status InstallAttributeIndex(const std::string& class_name,
                                     const std::string& attribute,
                                     AttributeIndex index);

  /// Names of the attributes of `class_name` carrying a secondary
  /// index (the checkpoint writer persists exactly these).
  std::vector<std::string> IndexedAttributes(
      const std::string& class_name) const;

  /// Leaves bulk-restore mode: builds every extent's spatial index
  /// with one STR bulk load (from the entries collected during the
  /// restore when possible) and sort-builds the attribute indexes
  /// that were not installed pre-built.
  agis::Status FinishBulkRestore();

  /// Rebuilds every extent's spatial index from current contents via
  /// STR bulk loading (also refreshes DatabaseStats::index_quality).
  /// Useful after heavy churn degraded the incrementally-built tree.
  void RebuildSpatialIndexes();

  // ---- Non-event accessors (internal plumbing, no event emission) --------

  /// Object lookup without emitting Get_Value (used by renderers that
  /// already hold a ClassResult). DEPRECATED pointer contract: valid
  /// only until the next write touching `id`. Prefer FindObjectAt.
  [[deprecated(
      "raw-pointer contract (valid only until the next write); "
      "open a snapshot and use FindObjectAt")]]
  const ObjectInstance* FindObject(ObjectId id) const;

  /// Object lookup against `snapshot`'s version set; nullptr when the
  /// object did not exist (or `snapshot` is detached / foreign). The
  /// returned pointer stays valid until the snapshot is released.
  const ObjectInstance* FindObjectAt(const Snapshot& snapshot,
                                     ObjectId id) const;

  /// Epoch of the write that installed the version of `id` visible in
  /// `snapshot`; 0 when no version is visible there. Versions are
  /// immutable, so (id, version epoch) uniquely names one object
  /// state — derived caches (e.g. the builder's simplified-polyline
  /// cache) validate entries against it instead of copying geometry.
  uint64_t VersionEpochAt(const Snapshot& snapshot, ObjectId id) const;

  /// Extent scan without event emission or caching; `window` narrows
  /// via the spatial index when the class has a geometry attribute.
  /// Used by constraint rules, which must not recursively generate
  /// query events while validating a write.
  agis::Result<std::vector<ObjectId>> ScanExtent(
      const std::string& class_name,
      const std::optional<geom::BoundingBox>& window = std::nullopt) const;

  /// Extent scan against `snapshot`'s version set: the ids (ascending)
  /// that belonged to the extent at the snapshot's epoch. `window`
  /// filters on the *snapshot versions'* geometry bounds, so an object
  /// moved out of the window since the snapshot opened is still found
  /// at its old location.
  agis::Result<std::vector<ObjectId>> ScanExtentAt(
      const Snapshot& snapshot, const std::string& class_name,
      const std::optional<geom::BoundingBox>& window = std::nullopt) const;

  /// Number of live instances of `class_name` (excluding subclasses).
  size_t ExtentSize(const std::string& class_name) const;

  size_t NumObjects() const;

  /// The attribute GetClass windows/spatial filters index for
  /// `class_name` (first geometry attribute, possibly inherited);
  /// empty when the class has none.
  std::string GeometryAttributeOf(const std::string& class_name) const;

  /// Attaches the shared task scheduler used to partition large
  /// residual extent scans (non-owning; pass nullptr to detach).
  /// Chunk completion is scoped by a TaskGroup whose waiter helps
  /// execute pending tasks, so — unlike the old dedicated query pool
  /// — a GetClass issued from inside a scheduler task (e.g. a rule
  /// action or a storage decode task) cannot deadlock a saturated
  /// scheduler. Setup-phase API: install before going concurrent.
  void set_task_scheduler(agis::TaskScheduler* scheduler) {
    scheduler_ = scheduler;
  }
  agis::TaskScheduler* task_scheduler() const { return scheduler_; }

  /// DEPRECATED ThreadPool form of set_task_scheduler: attaches the
  /// pool's underlying scheduler slice.
  void set_query_pool(agis::ThreadPool* pool) {
    scheduler_ = pool != nullptr ? pool->scheduler() : nullptr;
  }

  /// Observer invoked after every successful RegisterClass (schema
  /// changes carry no DbEvent; durable storage logs them through
  /// this). Setup-phase API like AddEventSink: install before going
  /// concurrent. Pass nullptr to detach.
  void set_schema_change_hook(std::function<void(const ClassDef&)> hook) {
    schema_change_hook_ = std::move(hook);
  }

  BufferPool& buffer_pool() { return buffer_pool_; }
  /// A consistent copy of the counters, taken under their lock (safe
  /// to call while other threads operate on the database). Scheduler
  /// counters are snapshotted from the attached scheduler.
  DatabaseStats stats() const {
    DatabaseStats out;
    {
      std::lock_guard stats_lock(stats_mutex_);
      out = stats_;
    }
    if (scheduler_ != nullptr) out.scheduler = scheduler_->stats();
    return out;
  }
  const DatabaseOptions& options() const { return options_; }

 private:
  friend class Snapshot;

  /// One immutable copy-on-write object state. `data == nullptr` is a
  /// tombstone: the object was deleted at `epoch`.
  struct Version {
    uint64_t epoch;  // First write epoch at which this version is current.
    std::shared_ptr<const ObjectInstance> data;
  };

  /// Version history of one object id, ascending by epoch; back() is
  /// the current state. Size is 1 except while snapshots retain
  /// history (or reclamation has not caught up yet).
  struct VersionChain {
    std::vector<Version> versions;
    /// Whether the id is queued on retired_ for reclamation.
    bool retired_listed = false;
  };

  struct Extent {
    std::vector<ObjectId> ids;
    std::unique_ptr<spatial::SpatialIndex> index;
    std::string geometry_attr;
    /// Secondary indexes keyed by attribute name.
    std::map<std::string, AttributeIndex> attr_indexes;
    /// Ids removed from the extent and the epoch of their removal,
    /// ascending; ScanExtentAt resurrects these for older snapshots.
    /// Pruned by reclamation once no snapshot predates the removal.
    std::vector<std::pair<uint64_t, ObjectId>> dead;
    /// Bulk-restore collection: spatial entries gathered as objects
    /// arrive, consumed by FinishBulkRestore's STR build. `bulk_exact`
    /// means they mirror the extent exactly (the extent was empty when
    /// bulk mode began and saw only inserts since); otherwise the
    /// finish pass falls back to re-walking the extent.
    std::vector<spatial::IndexEntry> bulk_entries;
    bool bulk_exact = false;
    /// Attribute names whose index arrived pre-built via
    /// InstallAttributeIndex during the current bulk restore;
    /// FinishBulkRestore leaves these alone and clears the set.
    std::set<std::string> bulk_installed;
  };

  std::unique_ptr<spatial::SpatialIndex> MakeIndex() const;
  agis::Status RunBeforeSinks(const DbEvent& event);
  void RunAfterSinks(const DbEvent& event);
  /// Attaches a pre/post-state snapshot to a write event when sinks
  /// are registered (rule actions read the database through it).
  void AttachEventSnapshot(DbEvent* event) const;
  agis::Status ValidateAgainstSchema(
      const std::string& class_name,
      const std::vector<std::pair<std::string, Value>>& values) const;
  /// RestoreObject's validation against a pre-resolved attribute set:
  /// same checks as ValidateAgainstSchema, but by reference over the
  /// instance's own values (no copies, no per-object schema walk).
  agis::Status ValidateRestored(const std::vector<AttributeDef>& attrs,
                                const ObjectInstance& obj) const;
  /// Requires the exclusive lock. The shared tail of RestoreObject /
  /// RestoreObjects: validates `obj` against `attrs`, installs it in
  /// `extent`, and maintains (or defers) index state.
  agis::Status RestoreOneLocked(ObjectInstance obj,
                                const std::vector<AttributeDef>& attrs,
                                Extent* extent);
  void IndexGeometry(Extent* extent, ObjectId id, const Value& geometry_value);
  /// Adds/removes `id` in every attribute index of `extent`.
  void IndexAttributes(Extent* extent, const ObjectInstance& obj);
  void UnindexAttributes(Extent* extent, const ObjectInstance& obj);
  /// Legacy blanket invalidation: drops the class's whole buffer-pool
  /// prefix (used only under legacy_class_prefix_invalidation).
  void InvalidateClassBuffers(const std::string& class_name);
  /// Per-object invalidation. Walks the buffer-pool prefixes of
  /// `class_name` and its ancestors and drops only the slices the
  /// described write can affect: slices listing `id`, slices whose
  /// predicates mention a changed attribute, and — for geometry
  /// writes / inserts — slices whose viewport the written geometry
  /// intersects (no-viewport slices drop conservatively). Ancestor
  /// slices cached without include_subclasses always survive.
  /// `new_bounds` is the written geometry's bounds when the write
  /// supplied one; `membership_grows` marks writes that can add the
  /// object to result sets it is not in yet (inserts).
  void InvalidateBuffersForWrite(
      const std::string& class_name, ObjectId id,
      const std::vector<std::string>& changed_attributes,
      const std::optional<geom::BoundingBox>& new_bounds,
      bool membership_grows);
  /// Requires the exclusive lock. Rebuilds one extent's spatial index
  /// via STR and refreshes its quality stats.
  void RebuildExtentSpatialIndexLocked(const std::string& class_name,
                                       Extent* extent);

  // ---- Version-store internals -------------------------------------------

  /// Requires the data lock (shared suffices). Current instance of
  /// `id`, nullptr when absent or tombstoned.
  const ObjectInstance* CurrentLocked(ObjectId id) const;
  /// Requires the data lock (shared suffices). The version of `chain`
  /// visible at `epoch`, nullptr when none is (not yet inserted, or
  /// tombstoned at or before `epoch`).
  static const ObjectInstance* VisibleLocked(const VersionChain& chain,
                                             uint64_t epoch);
  /// Requires the exclusive lock. Appends a version (or tombstone) to
  /// `id`'s chain and queues the chain for reclamation if it now
  /// carries history.
  void PushVersionLocked(ObjectId id, uint64_t epoch,
                         std::shared_ptr<const ObjectInstance> data);
  /// Pins the current epoch. Requires the data lock (shared
  /// suffices) so the epoch cannot advance mid-pin.
  Snapshot PinSnapshotLocked() const;
  void UnpinSnapshot(uint64_t epoch) const;
  /// Requires the exclusive lock. Frees versions, tombstoned chains
  /// and extent dead-lists no open snapshot can see.
  void ReclaimVersionsLocked();

  /// Extent evaluation shared by cached and uncached paths. Locks
  /// internally: plans and pins candidates under the shared lock,
  /// then evaluates residuals with the lock released (the pinned
  /// snapshot keeps candidate versions alive).
  agis::Result<std::vector<ObjectId>> EvaluateGetClass(
      const std::string& class_name, const GetClassOptions& options) const;

  /// Residual predicate/geometry evaluation over
  /// `candidates[begin, end)` — pinned instance versions; `applied`
  /// flags predicates already answered exactly by an index. Runs
  /// without the data lock (candidates are immutable versions kept
  /// alive by the caller's snapshot pin).
  std::vector<ObjectId> EvaluateResidual(
      const std::string& geometry_attr, const GetClassOptions& options,
      const std::vector<bool>& applied,
      const std::vector<const ObjectInstance*>& candidates, size_t begin,
      size_t end) const;

  Schema schema_;
  DatabaseOptions options_;

  /// Guards objects_, extents_ (structure and contents), next_id_,
  /// current_epoch_, live_objects_ and retired_. Shared for queries,
  /// exclusive for writes. Sinks always run with this lock released
  /// (they re-enter the database).
  mutable std::shared_mutex data_mutex_;
  std::unordered_map<ObjectId, VersionChain> objects_;
  std::map<std::string, Extent> extents_;
  ObjectId next_id_ = 1;
  /// Monotonic write clock; every successful write advances it and
  /// stamps the versions it installs.
  uint64_t current_epoch_ = 0;
  /// Live (non-tombstoned) objects; objects_.size() additionally
  /// counts tombstoned chains awaiting reclamation.
  size_t live_objects_ = 0;
  /// Ids whose chains carry history (length > 1 or a tombstone);
  /// the reclamation sweep walks only these.
  std::vector<ObjectId> retired_;
  /// Total entries across all extents' dead lists (skip flag for the
  /// reclamation sweep).
  size_t dead_entries_ = 0;
  bool bulk_restore_ = false;

  /// Guards pinned_epochs_. Ordered after data_mutex_ (a thread
  /// holding data_mutex_ may take it; never the reverse).
  mutable std::mutex snapshot_mutex_;
  /// Epochs pinned by open snapshots (multiset: snapshots at the same
  /// epoch pin independently). min() is the reclamation floor.
  mutable std::multiset<uint64_t> pinned_epochs_;

  std::vector<DbEventSink*> sinks_;
  std::function<void(const ClassDef&)> schema_change_hook_;
  BufferPool buffer_pool_;
  /// Shared scheduler for parallel residual scans (borrowed; null =
  /// sequential scans).
  agis::TaskScheduler* scheduler_ = nullptr;

  /// Guards stats_. Mutable so const read paths can count their work.
  mutable std::mutex stats_mutex_;
  mutable DatabaseStats stats_;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_DATABASE_H_
