#ifndef AGIS_GEODB_DATABASE_H_
#define AGIS_GEODB_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/context.h"
#include "base/status.h"
#include "geodb/buffer_pool.h"
#include "geodb/events.h"
#include "geodb/object.h"
#include "geodb/query.h"
#include "geodb/schema.h"
#include "geodb/value.h"
#include "spatial/spatial_index.h"

namespace agis::geodb {

/// Spatial index implementation backing class extents.
enum class IndexKind { kRTree, kGrid, kLinearScan };

/// Tuning and substrate selection for a database instance.
struct DatabaseOptions {
  IndexKind index_kind = IndexKind::kRTree;
  /// World extent; required by the grid index, ignored otherwise.
  geom::BoundingBox world = geom::BoundingBox(0, 0, 10000, 10000);
  size_t grid_cells_per_side = 64;
  size_t rtree_max_entries = 8;
  size_t buffer_pool_bytes = 8 << 20;
};

/// Cumulative operation counters, for tests and benches.
struct DatabaseStats {
  uint64_t get_schema_calls = 0;
  uint64_t get_class_calls = 0;
  uint64_t get_value_calls = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t vetoed_writes = 0;
};

/// In-memory object-oriented geographic DBMS.
///
/// This is the substrate the paper assumes: an OO schema with spatial
/// attributes, class extents with spatial indexes, the three
/// exploratory query primitives (`GetSchema`, `GetClass`, `GetValue`)
/// plus write operations, a display buffer pool, and event emission
/// hooks that the active mechanism subscribes to. Not thread-safe by
/// design (the paper's interaction model is a single user session).
class GeoDatabase {
 public:
  explicit GeoDatabase(std::string schema_name,
                       DatabaseOptions options = DatabaseOptions());

  GeoDatabase(const GeoDatabase&) = delete;
  GeoDatabase& operator=(const GeoDatabase&) = delete;

  // ---- Schema management -------------------------------------------------

  /// Registers a class and creates its (empty) extent.
  agis::Status RegisterClass(ClassDef cls);

  const Schema& schema() const { return schema_; }

  /// Attaches a method implementation to a registered class.
  agis::Status RegisterMethod(const std::string& class_name, MethodDef method);

  // ---- Event sinks -------------------------------------------------------

  /// Sinks observe all events; before-write sinks may veto. Sinks are
  /// not owned; callers must keep them alive and deregister first.
  void AddEventSink(DbEventSink* sink);
  void RemoveEventSink(DbEventSink* sink);

  // ---- Write operations --------------------------------------------------

  /// Validates `values` against the class definition, runs before-
  /// insert sinks (veto aborts), stores, indexes, and emits
  /// after-insert.
  agis::Result<ObjectId> Insert(
      const std::string& class_name,
      std::vector<std::pair<std::string, Value>> values,
      const UserContext& ctx = UserContext());

  /// Single-attribute update with veto support.
  agis::Status Update(ObjectId id, const std::string& attribute, Value value,
                      const UserContext& ctx = UserContext());

  agis::Status Delete(ObjectId id, const UserContext& ctx = UserContext());

  // ---- Query primitives (each emits its database event) -------------------

  /// `Get_Schema`: describes the schema. The returned pointer stays
  /// valid for the database's lifetime.
  agis::Result<const Schema*> GetSchema(const UserContext& ctx = UserContext());

  /// `Get_Class`: instances of `class_name` matching `options`.
  agis::Result<ClassResult> GetClass(const std::string& class_name,
                                     const GetClassOptions& options = {},
                                     const UserContext& ctx = UserContext());

  /// `Get_Value`: one full instance.
  agis::Result<const ObjectInstance*> GetValue(
      ObjectId id, const UserContext& ctx = UserContext());

  /// `Get_Value` narrowed to one attribute.
  agis::Result<Value> GetAttributeValue(ObjectId id,
                                        const std::string& attribute,
                                        const UserContext& ctx = UserContext());

  /// Invokes a registered method on an instance.
  agis::Result<Value> CallMethod(ObjectId id, const std::string& method) const;

  /// Bulk-load path used by geodb/persist: restores an instance with
  /// its original id. Validates against the schema and indexes
  /// geometry but bypasses event sinks and buffer invalidation
  /// (databases are restored before rules and sessions attach).
  agis::Status RestoreObject(ObjectInstance obj);

  // ---- Non-event accessors (internal plumbing, no event emission) --------

  /// Object lookup without emitting Get_Value (used by renderers that
  /// already hold a ClassResult).
  const ObjectInstance* FindObject(ObjectId id) const;

  /// Extent scan without event emission or caching; `window` narrows
  /// via the spatial index when the class has a geometry attribute.
  /// Used by constraint rules, which must not recursively generate
  /// query events while validating a write.
  agis::Result<std::vector<ObjectId>> ScanExtent(
      const std::string& class_name,
      const std::optional<geom::BoundingBox>& window = std::nullopt) const;

  /// Number of live instances of `class_name` (excluding subclasses).
  size_t ExtentSize(const std::string& class_name) const;

  size_t NumObjects() const { return objects_.size(); }

  /// The attribute GetClass windows/spatial filters index for
  /// `class_name` (first geometry attribute, possibly inherited);
  /// empty when the class has none.
  std::string GeometryAttributeOf(const std::string& class_name) const;

  BufferPool& buffer_pool() { return buffer_pool_; }
  const DatabaseStats& stats() const { return stats_; }
  const DatabaseOptions& options() const { return options_; }

 private:
  struct Extent {
    std::vector<ObjectId> ids;
    std::unique_ptr<spatial::SpatialIndex> index;
    std::string geometry_attr;
  };

  std::unique_ptr<spatial::SpatialIndex> MakeIndex() const;
  agis::Status RunBeforeSinks(const DbEvent& event);
  void RunAfterSinks(const DbEvent& event);
  agis::Status ValidateAgainstSchema(
      const std::string& class_name,
      const std::vector<std::pair<std::string, Value>>& values) const;
  void IndexGeometry(Extent* extent, ObjectId id, const Value& geometry_value);
  void InvalidateClassBuffers(const std::string& class_name);

  /// Extent evaluation shared by cached and uncached paths.
  agis::Result<std::vector<ObjectId>> EvaluateGetClass(
      const std::string& class_name, const GetClassOptions& options) const;

  Schema schema_;
  DatabaseOptions options_;
  std::unordered_map<ObjectId, ObjectInstance> objects_;
  std::map<std::string, Extent> extents_;
  std::vector<DbEventSink*> sinks_;
  BufferPool buffer_pool_;
  DatabaseStats stats_;
  ObjectId next_id_ = 1;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_DATABASE_H_
