#include "geodb/schema.h"

#include "base/strutil.h"

namespace agis::geodb {

const char* AttrTypeName(AttrType type) {
  switch (type) {
    case AttrType::kBool:
      return "bool";
    case AttrType::kInt:
      return "int";
    case AttrType::kDouble:
      return "double";
    case AttrType::kString:
      return "string";
    case AttrType::kText:
      return "text";
    case AttrType::kBlob:
      return "bitmap";
    case AttrType::kGeometry:
      return "geometry";
    case AttrType::kTuple:
      return "tuple";
    case AttrType::kRef:
      return "ref";
    case AttrType::kList:
      return "list";
  }
  return "unknown";
}

std::string AttributeDef::TypeString() const {
  switch (type) {
    case AttrType::kTuple: {
      std::string out = "tuple(";
      for (size_t i = 0; i < tuple_fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += tuple_fields[i].name;
        out += ": ";
        out += tuple_fields[i].TypeString();
      }
      out += ")";
      return out;
    }
    case AttrType::kRef:
      return ref_class;
    case AttrType::kList:
      return agis::StrCat("list<",
                          list_element ? AttrTypeName(*list_element) : "?",
                          ">");
    default:
      return AttrTypeName(type);
  }
}

agis::Status ClassDef::AddAttribute(AttributeDef attr) {
  if (attr.name.empty()) {
    return agis::Status::InvalidArgument("attribute name must not be empty");
  }
  if (FindAttribute(attr.name) != nullptr) {
    return agis::Status::AlreadyExists(
        agis::StrCat("attribute '", attr.name, "' in class '", name_, "'"));
  }
  attributes_.push_back(std::move(attr));
  return agis::Status::OK();
}

agis::Status ClassDef::AddMethod(MethodDef method) {
  if (method.name.empty()) {
    return agis::Status::InvalidArgument("method name must not be empty");
  }
  if (FindMethod(method.name) != nullptr) {
    return agis::Status::AlreadyExists(
        agis::StrCat("method '", method.name, "' in class '", name_, "'"));
  }
  methods_.push_back(std::move(method));
  return agis::Status::OK();
}

const AttributeDef* ClassDef::FindAttribute(const std::string& name) const {
  for (const AttributeDef& a : attributes_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const MethodDef* ClassDef::FindMethod(const std::string& name) const {
  for (const MethodDef& m : methods_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

agis::Status Schema::AddClass(ClassDef cls) {
  if (cls.name().empty()) {
    return agis::Status::InvalidArgument("class name must not be empty");
  }
  if (HasClass(cls.name())) {
    return agis::Status::AlreadyExists(
        agis::StrCat("class '", cls.name(), "'"));
  }
  if (!cls.parent().empty() && !HasClass(cls.parent())) {
    return agis::Status::NotFound(
        agis::StrCat("parent class '", cls.parent(), "' of '", cls.name(),
                     "' is not registered"));
  }
  for (const AttributeDef& a : cls.attributes()) {
    if (a.type == AttrType::kRef && a.ref_class != cls.name() &&
        !HasClass(a.ref_class)) {
      return agis::Status::NotFound(
          agis::StrCat("reference target class '", a.ref_class,
                       "' of attribute '", a.name, "' is not registered"));
    }
  }
  order_.push_back(cls.name());
  classes_.emplace(cls.name(), std::move(cls));
  return agis::Status::OK();
}

const ClassDef* Schema::FindClass(const std::string& name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : &it->second;
}

std::vector<std::string> Schema::ClassNames() const { return order_; }

std::vector<std::string> Schema::SubclassesOf(const std::string& name) const {
  std::vector<std::string> out;
  for (const std::string& cls : order_) {
    if (classes_.at(cls).parent() == name) out.push_back(cls);
  }
  return out;
}

bool Schema::IsSubclassOf(const std::string& cls,
                          const std::string& ancestor) const {
  const ClassDef* def = FindClass(cls);
  while (def != nullptr) {
    if (def->name() == ancestor) return true;
    if (def->parent().empty()) return false;
    def = FindClass(def->parent());
  }
  return false;
}

agis::Result<std::vector<AttributeDef>> Schema::AllAttributesOf(
    const std::string& cls) const {
  const ClassDef* def = FindClass(cls);
  if (def == nullptr) {
    return agis::Status::NotFound(agis::StrCat("class '", cls, "'"));
  }
  // Collect the ancestor chain root-first.
  std::vector<const ClassDef*> chain;
  while (def != nullptr) {
    chain.push_back(def);
    def = def->parent().empty() ? nullptr : FindClass(def->parent());
  }
  std::vector<AttributeDef> out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const AttributeDef& a : (*it)->attributes()) out.push_back(a);
  }
  return out;
}

const AttributeDef* Schema::FindAttributeOf(const std::string& cls,
                                            const std::string& attr) const {
  const ClassDef* def = FindClass(cls);
  while (def != nullptr) {
    const AttributeDef* a = def->FindAttribute(attr);
    if (a != nullptr) return a;
    def = def->parent().empty() ? nullptr : FindClass(def->parent());
  }
  return nullptr;
}

const MethodDef* Schema::FindMethodOf(const std::string& cls,
                                      const std::string& method) const {
  const ClassDef* def = FindClass(cls);
  while (def != nullptr) {
    const MethodDef* m = def->FindMethod(method);
    if (m != nullptr) return m;
    def = def->parent().empty() ? nullptr : FindClass(def->parent());
  }
  return nullptr;
}

std::string Schema::ToString() const {
  std::string out = agis::StrCat("schema ", name_, "\n");
  for (const std::string& name : order_) {
    const ClassDef& cls = classes_.at(name);
    out += agis::StrCat("  class ", name);
    if (!cls.parent().empty()) out += agis::StrCat(" : ", cls.parent());
    out += " {\n";
    for (const AttributeDef& a : cls.attributes()) {
      out += agis::StrCat("    ", a.name, ": ", a.TypeString(), ";\n");
    }
    for (const MethodDef& m : cls.methods()) {
      out += agis::StrCat("    method ", m.name, "();\n");
    }
    out += "  }\n";
  }
  return out;
}

agis::Status CheckValueType(const Schema& schema, const AttributeDef& attr,
                            const Value& value) {
  if (value.is_null()) {
    if (attr.required) {
      return agis::Status::InvalidArgument(
          agis::StrCat("attribute '", attr.name, "' is required"));
    }
    return agis::Status::OK();
  }
  auto type_error = [&attr, &value]() {
    return agis::Status::InvalidArgument(
        agis::StrCat("attribute '", attr.name, "' expects ",
                     attr.TypeString(), ", got ",
                     ValueKindName(value.kind())));
  };
  switch (attr.type) {
    case AttrType::kBool:
      if (value.kind() != ValueKind::kBool) return type_error();
      return agis::Status::OK();
    case AttrType::kInt:
      if (value.kind() != ValueKind::kInt) return type_error();
      return agis::Status::OK();
    case AttrType::kDouble:
      if (value.kind() != ValueKind::kDouble &&
          value.kind() != ValueKind::kInt) {
        return type_error();
      }
      return agis::Status::OK();
    case AttrType::kString:
    case AttrType::kText:
      if (value.kind() != ValueKind::kString) return type_error();
      return agis::Status::OK();
    case AttrType::kBlob:
      if (value.kind() != ValueKind::kBlob) return type_error();
      return agis::Status::OK();
    case AttrType::kGeometry:
      if (value.kind() != ValueKind::kGeometry) return type_error();
      return agis::Status::OK();
    case AttrType::kTuple: {
      if (value.kind() != ValueKind::kTuple) return type_error();
      // Every provided field must exist and type-check; missing
      // fields are treated as null.
      for (const auto& [field_name, field_value] : value.tuple_value()) {
        const AttributeDef* field_def = nullptr;
        for (const AttributeDef& f : attr.tuple_fields) {
          if (f.name == field_name) {
            field_def = &f;
            break;
          }
        }
        if (field_def == nullptr) {
          return agis::Status::InvalidArgument(
              agis::StrCat("tuple attribute '", attr.name,
                           "' has no field '", field_name, "'"));
        }
        AGIS_RETURN_IF_ERROR(CheckValueType(schema, *field_def, field_value));
      }
      return agis::Status::OK();
    }
    case AttrType::kRef: {
      if (value.kind() != ValueKind::kRef) return type_error();
      const std::string& target = value.ref_value().class_name;
      if (!schema.IsSubclassOf(target, attr.ref_class)) {
        return agis::Status::InvalidArgument(
            agis::StrCat("attribute '", attr.name, "' must reference ",
                         attr.ref_class, ", got ", target));
      }
      return agis::Status::OK();
    }
    case AttrType::kList: {
      if (value.kind() != ValueKind::kList) return type_error();
      if (attr.list_element.has_value()) {
        AttributeDef elem;
        elem.name = attr.name + "[]";
        elem.type = *attr.list_element;
        for (const Value& v : value.list_value()) {
          AGIS_RETURN_IF_ERROR(CheckValueType(schema, elem, v));
        }
      }
      return agis::Status::OK();
    }
  }
  return agis::Status::Internal("unhandled attribute type");
}

}  // namespace agis::geodb
