#include "geodb/value.h"

#include "base/strutil.h"
#include "geom/wkt.h"

namespace agis::geodb {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kBlob:
      return "blob";
    case ValueKind::kGeometry:
      return "geometry";
    case ValueKind::kTuple:
      return "tuple";
    case ValueKind::kList:
      return "list";
    case ValueKind::kRef:
      return "ref";
  }
  return "unknown";
}

agis::Result<double> Value::AsDouble() const {
  switch (kind()) {
    case ValueKind::kInt:
      return static_cast<double>(int_value());
    case ValueKind::kDouble:
      return double_value();
    default:
      return agis::Status::InvalidArgument(
          agis::StrCat("cannot convert ", ValueKindName(kind()),
                       " value to double"));
  }
}

agis::Result<Value> Value::TupleField_(const std::string& name) const {
  if (kind() != ValueKind::kTuple) {
    return agis::Status::InvalidArgument(
        agis::StrCat("value of kind ", ValueKindName(kind()),
                     " has no tuple fields"));
  }
  for (const auto& [field_name, field_value] : tuple_value()) {
    if (field_name == name) return field_value;
  }
  return agis::Status::NotFound(agis::StrCat("tuple field '", name, "'"));
}

std::string Value::ToDisplayString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return bool_value() ? "true" : "false";
    case ValueKind::kInt:
      return agis::StrCat(int_value());
    case ValueKind::kDouble:
      return agis::DoubleToString(double_value());
    case ValueKind::kString:
      return string_value();
    case ValueKind::kBlob:
      return agis::StrCat("<blob ", blob_value().format, " ",
                          blob_value().bytes.size(), "B>");
    case ValueKind::kGeometry:
      return geom::ToWkt(geometry_value());
    case ValueKind::kTuple: {
      std::string out = "(";
      bool first = true;
      for (const auto& [name, value] : tuple_value()) {
        if (!first) out += ", ";
        first = false;
        out += name;
        out += ": ";
        out += value.ToDisplayString();
      }
      out += ")";
      return out;
    }
    case ValueKind::kList: {
      std::string out = "[";
      for (size_t i = 0; i < list_value().size(); ++i) {
        if (i > 0) out += ", ";
        out += list_value()[i].ToDisplayString();
      }
      out += "]";
      return out;
    }
    case ValueKind::kRef:
      return agis::StrCat(ref_value().class_name, "#", ref_value().id);
  }
  return "?";
}

agis::Result<int> CompareValues(const Value& a, const Value& b) {
  const bool a_num =
      a.kind() == ValueKind::kInt || a.kind() == ValueKind::kDouble;
  const bool b_num =
      b.kind() == ValueKind::kInt || b.kind() == ValueKind::kDouble;
  if (a_num && b_num) {
    const double x = a.AsDouble().value();
    const double y = b.AsDouble().value();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.kind() != b.kind()) {
    return agis::Status::InvalidArgument(
        agis::StrCat("cannot compare ", ValueKindName(a.kind()), " with ",
                     ValueKindName(b.kind())));
  }
  switch (a.kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return static_cast<int>(a.bool_value()) -
             static_cast<int>(b.bool_value());
    case ValueKind::kString: {
      const int c = a.string_value().compare(b.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return agis::Status::InvalidArgument(
          agis::StrCat(ValueKindName(a.kind()), " values are not ordered"));
  }
}

}  // namespace agis::geodb
