#include "geodb/query.h"

#include "base/strutil.h"
#include "geom/wkt.h"

namespace agis::geodb {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "contains";
  }
  return "?";
}

std::string AttrPredicate::ToString() const {
  return agis::StrCat(attribute, " ", CompareOpName(op), " ",
                      operand.ToDisplayString());
}

std::string SpatialFilter::ToString() const {
  return agis::StrCat(geom::TopoRelationName(relation), " ",
                      geom::ToWkt(target));
}

std::string GetClassOptions::CacheKeySuffix() const {
  std::string out = agis::StrCat("sub=", include_subclasses ? 1 : 0);
  if (window.has_value()) out += agis::StrCat("/win=", window->ToString());
  if (spatial.has_value()) out += agis::StrCat("/sp=", spatial->ToString());
  for (const AttrPredicate& p : predicates) {
    out += agis::StrCat("/p=", p.ToString());
  }
  if (limit != 0) out += agis::StrCat("/lim=", limit);
  return out;
}

}  // namespace agis::geodb
