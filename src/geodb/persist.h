#ifndef AGIS_GEODB_PERSIST_H_
#define AGIS_GEODB_PERSIST_H_

#include <memory>
#include <string>
#include <string_view>

#include "base/status.h"
#include "geodb/database.h"

namespace agis::geodb {

/// Serializes the whole database — schema catalog and every instance —
/// to a line-oriented text format ("agisdb 1"). Geometries travel as
/// WKT, blobs as hex, strings with `\n`/`\"`/`\\`/`\t` escapes.
///
/// Method *implementations* are host code and do not persist; callers
/// re-register them after loading (the same contract as callback
/// bindings in uilib/serialize.h).
std::string SaveDatabaseToString(const GeoDatabase& db);

agis::Status SaveDatabaseToFile(const GeoDatabase& db,
                                const std::string& path);

/// Rebuilds a database from `SaveDatabaseToString` output. Object ids
/// are preserved (references stay valid); `options` picks the index
/// substrate of the new instance.
agis::Result<std::unique_ptr<GeoDatabase>> LoadDatabaseFromString(
    std::string_view text, DatabaseOptions options = DatabaseOptions());

agis::Result<std::unique_ptr<GeoDatabase>> LoadDatabaseFromFile(
    const std::string& path, DatabaseOptions options = DatabaseOptions());

}  // namespace agis::geodb

#endif  // AGIS_GEODB_PERSIST_H_
