#ifndef AGIS_GEODB_ATTR_INDEX_H_
#define AGIS_GEODB_ATTR_INDEX_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "geodb/query.h"
#include "geodb/value.h"

namespace agis::geodb {

/// Normalized index key for a scalar attribute value. Numeric kinds
/// collapse to one key class so that `Int 2` and `Double 2.0` index
/// (and probe) identically — exactly the cross-kind semantics of
/// `CompareValues`. Non-scalar kinds (geometry, blob, tuple, list,
/// ref) and nulls are not indexable; predicates over them always
/// evaluate to "no match", which the index reproduces by simply not
/// holding such entries.
struct AttrKey {
  enum class Class : uint8_t { kBool = 0, kNumber = 1, kString = 2 };

  Class cls = Class::kNumber;
  double number = 0;   // kBool stores 0/1 here too (its order).
  std::string text;    // Only for kString.

  /// Normalizes `v`; nullopt when `v` is not an indexable scalar.
  static std::optional<AttrKey> FromValue(const Value& v);

  friend bool operator==(const AttrKey& a, const AttrKey& b) {
    return a.cls == b.cls && a.number == b.number && a.text == b.text;
  }
  friend bool operator<(const AttrKey& a, const AttrKey& b) {
    if (a.cls != b.cls) return a.cls < b.cls;
    if (a.cls == Class::kString) return a.text < b.text;
    return a.number < b.number;
  }
};

struct AttrKeyHash {
  size_t operator()(const AttrKey& k) const {
    const size_t h = k.cls == AttrKey::Class::kString
                         ? std::hash<std::string>()(k.text)
                         : std::hash<double>()(k.number);
    return h ^ (static_cast<size_t>(k.cls) << 29);
  }
};

/// Secondary index over one attribute of one class extent.
///
/// Storage is split into a bulk-built *base* and an incremental
/// *delta*. The base holds the postings of a BulkLoad (or a snapshot
/// restore via FromSortedRuns) as three flat arrays — ascending keys,
/// slice offsets, and one packed id pool — so building it is two
/// contiguous sorts with no per-key node allocations, range scans walk
/// sequential memory, and tearing it down is three frees. The delta is
/// the node-based pair of a hash index (O(1) equality buckets) and an
/// ordered map (range iteration) fed by post-load Inserts. Every query
/// merges both sides; Remove edits whichever side holds the pair.
/// Postings on both sides are sorted id runs, so planner-side
/// intersection stays a linear merge.
///
/// Results are exact for `kEq`/`kNe`/`kLt`/`kLe`/`kGt`/`kGe` — matching
/// residual evaluation bit for bit, including the "comparison error
/// means no match" rule — so an index-answered predicate never needs
/// re-checking. `kContains` is not indexable.
///
/// Not internally synchronized; the owning GeoDatabase serializes
/// writers and shares readers (see database.h).
class AttributeIndex {
 public:
  /// Adds `id` under `value`; non-indexable values are ignored.
  void Insert(ObjectId id, const Value& value);

  /// Removes `id` from the posting of `value`; ignores absent pairs.
  void Remove(ObjectId id, const Value& value);

  /// One-shot equivalent of `Insert(id, *value)` over every pair,
  /// built into the flat base: entries are key-normalized into one
  /// contiguous row array, sorted once, and packed — no per-key
  /// allocations. The pointed-to values only need to stay alive for
  /// the duration of the call. On a non-empty index this composes
  /// through the incremental path (callers reset the index first for
  /// a full rebuild).
  void BulkLoad(std::vector<std::pair<ObjectId, const Value*>> entries);

  /// Builds an index directly from pre-sorted runs (the snapshot
  /// restore path): `keys` strictly ascending, `offsets` of size
  /// `keys.size() + 1` delimiting each key's id slice in `pool`, every
  /// slice non-empty with strictly ascending non-zero ids, and
  /// `nan_ids` strictly ascending. Invariants are validated — a
  /// corrupt file produces an error, never a malformed index.
  static agis::Result<AttributeIndex> FromSortedRuns(
      std::vector<AttrKey> keys, std::vector<uint32_t> offsets,
      std::vector<ObjectId> pool, std::vector<ObjectId> nan_ids);

  /// Whether `op` can be answered from this index at all.
  static bool SupportsOp(CompareOp op) { return op != CompareOp::kContains; }

  /// Cheap upper bound on the result size of `attribute <op> operand`;
  /// nullopt when the predicate cannot be answered here (the planner
  /// then treats it as residual). kNe and ranges cost one walk over
  /// bucket *counts*, never over ids.
  std::optional<size_t> EstimateCount(CompareOp op, const Value& operand) const;

  /// Exact result ids (sorted ascending) of `attribute <op> operand`.
  /// nullopt in the same cases as EstimateCount.
  std::optional<std::vector<ObjectId>> Eval(CompareOp op,
                                            const Value& operand) const;

  size_t entry_count() const { return entry_count_; }
  /// Distinct non-NaN keys. A key inserted after a bulk load that
  /// duplicates a base key counts once per side (the delta never
  /// checks the base), so this can overcount by the overlap; it is a
  /// stats signal, not an exact cardinality.
  size_t distinct_keys() const { return ordered_.size() + base_distinct_; }

 private:
  using Posting = std::vector<ObjectId>;

  /// Invokes `fn(ids, count)` for every posting (delta bucket or live
  /// base-slice prefix) matching `op` against `key`, restricted to
  /// `key.cls` (cross-class keys are incomparable and never match a
  /// range or inequality).
  template <typename Fn>
  void ForEachMatchingPosting(CompareOp op, const AttrKey& key, Fn&& fn) const;

  /// Whether stored NaN values satisfy `op` against `key`'s class.
  static bool NansMatch(CompareOp op, const AttrKey& key);

  // [begin, end) index range of `cls`'s band in base_keys_.
  size_t BaseBandBegin(AttrKey::Class cls) const;
  size_t BaseBandEnd(AttrKey::Class cls) const;
  size_t BaseLowerBound(const AttrKey& key) const;
  size_t BaseUpperBound(const AttrKey& key) const;
  /// Index of `key` in base_keys_, or base_keys_.size() when absent.
  size_t BaseFind(const AttrKey& key) const;

  // ---- Delta: post-bulk incremental inserts ------------------------------
  /// The hash index owns the postings (node-based, so posting
  /// references stay valid across rehash); the ordered index points
  /// at them. One posting per distinct key, shared by both views.
  std::unordered_map<AttrKey, Posting, AttrKeyHash> hash_;
  std::map<AttrKey, Posting*> ordered_;

  // ---- Base: flat bulk-loaded storage ------------------------------------
  /// base_keys_ ascending; key k's ids sit in base_pool_[
  /// base_offsets_[k], base_offsets_[k+1]) of which the first
  /// base_live_[k] are live (Remove compacts the slice prefix and
  /// zero-fills the tail). base_offsets_ has keys+1 entries.
  std::vector<AttrKey> base_keys_;
  std::vector<uint32_t> base_offsets_;
  std::vector<uint32_t> base_live_;
  std::vector<ObjectId> base_pool_;
  size_t base_distinct_ = 0;  // Keys with a non-empty live prefix.

  /// NaN doubles sit outside the ordered key space (they would break
  /// the map's strict weak ordering) but CompareValues(NaN, x) == 0
  /// for every numeric x, so they match kEq/kLe/kGe against any
  /// numeric operand. Kept aside and merged into those answers.
  Posting nan_ids_;
  size_t entry_count_ = 0;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_ATTR_INDEX_H_
