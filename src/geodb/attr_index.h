#ifndef AGIS_GEODB_ATTR_INDEX_H_
#define AGIS_GEODB_ATTR_INDEX_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geodb/query.h"
#include "geodb/value.h"

namespace agis::geodb {

/// Normalized index key for a scalar attribute value. Numeric kinds
/// collapse to one key class so that `Int 2` and `Double 2.0` index
/// (and probe) identically — exactly the cross-kind semantics of
/// `CompareValues`. Non-scalar kinds (geometry, blob, tuple, list,
/// ref) and nulls are not indexable; predicates over them always
/// evaluate to "no match", which the index reproduces by simply not
/// holding such entries.
struct AttrKey {
  enum class Class : uint8_t { kBool = 0, kNumber = 1, kString = 2 };

  Class cls = Class::kNumber;
  double number = 0;   // kBool stores 0/1 here too (its order).
  std::string text;    // Only for kString.

  /// Normalizes `v`; nullopt when `v` is not an indexable scalar.
  static std::optional<AttrKey> FromValue(const Value& v);

  friend bool operator==(const AttrKey& a, const AttrKey& b) {
    return a.cls == b.cls && a.number == b.number && a.text == b.text;
  }
  friend bool operator<(const AttrKey& a, const AttrKey& b) {
    if (a.cls != b.cls) return a.cls < b.cls;
    if (a.cls == Class::kString) return a.text < b.text;
    return a.number < b.number;
  }
};

struct AttrKeyHash {
  size_t operator()(const AttrKey& k) const {
    const size_t h = k.cls == AttrKey::Class::kString
                         ? std::hash<std::string>()(k.text)
                         : std::hash<double>()(k.number);
    return h ^ (static_cast<size_t>(k.cls) << 29);
  }
};

/// Secondary index over one attribute of one class extent.
///
/// Two structures are maintained side by side: a hash index serving
/// equality (and its complement) in O(1) bucket lookups, and an
/// ordered index serving range operators via in-order iteration.
/// Postings are sorted id vectors, so planner-side intersection is a
/// linear merge. Results are exact for `kEq`/`kNe`/`kLt`/`kLe`/`kGt`/
/// `kGe` — matching residual evaluation bit for bit, including the
/// "comparison error means no match" rule — so an index-answered
/// predicate never needs re-checking. `kContains` is not indexable.
///
/// Not internally synchronized; the owning GeoDatabase serializes
/// writers and shares readers (see database.h).
class AttributeIndex {
 public:
  /// Adds `id` under `value`; non-indexable values are ignored.
  void Insert(ObjectId id, const Value& value);

  /// Removes `id` from the posting of `value`; ignores absent pairs.
  void Remove(ObjectId id, const Value& value);

  /// Whether `op` can be answered from this index at all.
  static bool SupportsOp(CompareOp op) { return op != CompareOp::kContains; }

  /// Cheap upper bound on the result size of `attribute <op> operand`;
  /// nullopt when the predicate cannot be answered here (the planner
  /// then treats it as residual). kNe and ranges cost one ordered-map
  /// walk over bucket *counts*, never over ids.
  std::optional<size_t> EstimateCount(CompareOp op, const Value& operand) const;

  /// Exact result ids (sorted ascending) of `attribute <op> operand`.
  /// nullopt in the same cases as EstimateCount.
  std::optional<std::vector<ObjectId>> Eval(CompareOp op,
                                            const Value& operand) const;

  size_t entry_count() const { return entry_count_; }
  size_t distinct_keys() const { return ordered_.size(); }

 private:
  using Posting = std::vector<ObjectId>;

  /// [first, last) ordered-map range matching `op` against `key`,
  /// restricted to `key.cls` (cross-class keys are incomparable and
  /// never match a range or inequality).
  template <typename Fn>
  void ForEachMatchingBucket(CompareOp op, const AttrKey& key, Fn&& fn) const;

  /// Whether stored NaN values satisfy `op` against `key`'s class.
  static bool NansMatch(CompareOp op, const AttrKey& key);

  std::unordered_map<AttrKey, Posting, AttrKeyHash> hash_;
  std::map<AttrKey, Posting> ordered_;
  /// NaN doubles sit outside the ordered key space (they would break
  /// the map's strict weak ordering) but CompareValues(NaN, x) == 0
  /// for every numeric x, so they match kEq/kLe/kGe against any
  /// numeric operand. Kept aside and merged into those answers.
  Posting nan_ids_;
  size_t entry_count_ = 0;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_ATTR_INDEX_H_
