#include "geodb/database.h"

#include <algorithm>

#include "base/strutil.h"
#include "geom/predicates.h"
#include "spatial/grid_index.h"
#include "spatial/rtree.h"

namespace agis::geodb {

GeoDatabase::GeoDatabase(std::string schema_name, DatabaseOptions options)
    : schema_(std::move(schema_name)),
      options_(options),
      buffer_pool_(options.buffer_pool_bytes) {}

std::unique_ptr<spatial::SpatialIndex> GeoDatabase::MakeIndex() const {
  switch (options_.index_kind) {
    case IndexKind::kRTree:
      return std::make_unique<spatial::RTree>(options_.rtree_max_entries);
    case IndexKind::kGrid:
      return std::make_unique<spatial::GridIndex>(
          options_.world, options_.grid_cells_per_side);
    case IndexKind::kLinearScan:
      return std::make_unique<spatial::LinearScanIndex>();
  }
  return std::make_unique<spatial::LinearScanIndex>();
}

agis::Status GeoDatabase::RegisterClass(ClassDef cls) {
  const std::string name = cls.name();
  AGIS_RETURN_IF_ERROR(schema_.AddClass(std::move(cls)));
  Extent extent;
  extent.index = MakeIndex();
  // Resolve the first geometry attribute (including inherited).
  auto attrs = schema_.AllAttributesOf(name);
  for (const AttributeDef& a : attrs.value()) {
    if (a.type == AttrType::kGeometry) {
      extent.geometry_attr = a.name;
      break;
    }
  }
  extents_.emplace(name, std::move(extent));
  return agis::Status::OK();
}

agis::Status GeoDatabase::RegisterMethod(const std::string& class_name,
                                         MethodDef method) {
  // Schema stores classes by value; re-fetch mutably via the map the
  // Schema owns. Schema has no mutable accessor by design, so methods
  // are registered through this database-level path.
  const ClassDef* cls = schema_.FindClass(class_name);
  if (cls == nullptr) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  // const_cast is confined here: GeoDatabase owns schema_ and controls
  // every mutation path.
  return const_cast<ClassDef*>(cls)->AddMethod(std::move(method));
}

void GeoDatabase::AddEventSink(DbEventSink* sink) { sinks_.push_back(sink); }

void GeoDatabase::RemoveEventSink(DbEventSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

agis::Status GeoDatabase::RunBeforeSinks(const DbEvent& event) {
  for (DbEventSink* sink : sinks_) {
    AGIS_RETURN_IF_ERROR(sink->OnBeforeEvent(event));
  }
  return agis::Status::OK();
}

void GeoDatabase::RunAfterSinks(const DbEvent& event) {
  for (DbEventSink* sink : sinks_) sink->OnAfterEvent(event);
}

agis::Status GeoDatabase::ValidateAgainstSchema(
    const std::string& class_name,
    const std::vector<std::pair<std::string, Value>>& values) const {
  AGIS_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                        schema_.AllAttributesOf(class_name));
  for (const auto& [attr_name, value] : values) {
    const AttributeDef* def = nullptr;
    for (const AttributeDef& a : attrs) {
      if (a.name == attr_name) {
        def = &a;
        break;
      }
    }
    if (def == nullptr) {
      return agis::Status::NotFound(
          agis::StrCat("class '", class_name, "' has no attribute '",
                       attr_name, "'"));
    }
    AGIS_RETURN_IF_ERROR(
        CheckValueType(schema_, *def, value).WithContext(class_name));
  }
  // Required attributes must be supplied and non-null.
  for (const AttributeDef& a : attrs) {
    if (!a.required) continue;
    bool found = false;
    for (const auto& [attr_name, value] : values) {
      if (attr_name == a.name && !value.is_null()) {
        found = true;
        break;
      }
    }
    if (!found) {
      return agis::Status::InvalidArgument(
          agis::StrCat("required attribute '", a.name, "' of class '",
                       class_name, "' missing"));
    }
  }
  return agis::Status::OK();
}

void GeoDatabase::IndexGeometry(Extent* extent, ObjectId id,
                                const Value& geometry_value) {
  if (extent->geometry_attr.empty() || geometry_value.is_null()) return;
  extent->index->Insert(id, geometry_value.geometry_value().Bounds());
}

void GeoDatabase::InvalidateClassBuffers(const std::string& class_name) {
  buffer_pool_.InvalidatePrefix(agis::StrCat("class/", class_name, "/"));
}

agis::Result<ObjectId> GeoDatabase::Insert(
    const std::string& class_name,
    std::vector<std::pair<std::string, Value>> values,
    const UserContext& ctx) {
  if (!schema_.HasClass(class_name)) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  AGIS_RETURN_IF_ERROR(ValidateAgainstSchema(class_name, values));

  ObjectInstance obj(next_id_, class_name);
  for (auto& [attr_name, value] : values) {
    obj.Set(attr_name, std::move(value));
  }

  DbEvent event;
  event.kind = DbEventKind::kBeforeInsert;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.class_name = class_name;
  event.object_id = obj.id();
  Extent& extent = extents_.at(class_name);
  if (!extent.geometry_attr.empty()) {
    event.attribute = extent.geometry_attr;
    event.new_value = obj.Get(extent.geometry_attr);
  }
  const agis::Status veto = RunBeforeSinks(event);
  if (!veto.ok()) {
    ++stats_.vetoed_writes;
    return veto;
  }

  const ObjectId id = next_id_++;
  IndexGeometry(&extent, id, obj.Get(extent.geometry_attr));
  extent.ids.push_back(id);
  objects_.emplace(id, std::move(obj));
  InvalidateClassBuffers(class_name);
  ++stats_.inserts;

  event.kind = DbEventKind::kAfterInsert;
  RunAfterSinks(event);
  return id;
}

agis::Status GeoDatabase::Update(ObjectId id, const std::string& attribute,
                                 Value value, const UserContext& ctx) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return agis::Status::NotFound(agis::StrCat("object ", id));
  }
  ObjectInstance& obj = it->second;
  const AttributeDef* def =
      schema_.FindAttributeOf(obj.class_name(), attribute);
  if (def == nullptr) {
    return agis::Status::NotFound(
        agis::StrCat("class '", obj.class_name(), "' has no attribute '",
                     attribute, "'"));
  }
  AGIS_RETURN_IF_ERROR(CheckValueType(schema_, *def, value));

  DbEvent event;
  event.kind = DbEventKind::kBeforeUpdate;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.class_name = obj.class_name();
  event.object_id = id;
  event.attribute = attribute;
  event.old_value = obj.Get(attribute);
  event.new_value = value;
  const agis::Status veto = RunBeforeSinks(event);
  if (!veto.ok()) {
    ++stats_.vetoed_writes;
    return veto;
  }

  Extent& extent = extents_.at(obj.class_name());
  if (attribute == extent.geometry_attr) {
    extent.index->Remove(id);
  }
  obj.Set(attribute, std::move(value));
  if (attribute == extent.geometry_attr) {
    IndexGeometry(&extent, id, obj.Get(attribute));
  }
  InvalidateClassBuffers(obj.class_name());
  ++stats_.updates;

  event.kind = DbEventKind::kAfterUpdate;
  RunAfterSinks(event);
  return agis::Status::OK();
}

agis::Status GeoDatabase::Delete(ObjectId id, const UserContext& ctx) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return agis::Status::NotFound(agis::StrCat("object ", id));
  }
  const std::string class_name = it->second.class_name();

  DbEvent event;
  event.kind = DbEventKind::kBeforeDelete;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.class_name = class_name;
  event.object_id = id;
  const agis::Status veto = RunBeforeSinks(event);
  if (!veto.ok()) {
    ++stats_.vetoed_writes;
    return veto;
  }

  Extent& extent = extents_.at(class_name);
  extent.index->Remove(id);
  extent.ids.erase(std::remove(extent.ids.begin(), extent.ids.end(), id),
                   extent.ids.end());
  objects_.erase(it);
  InvalidateClassBuffers(class_name);
  ++stats_.deletes;

  event.kind = DbEventKind::kAfterDelete;
  RunAfterSinks(event);
  return agis::Status::OK();
}

agis::Result<const Schema*> GeoDatabase::GetSchema(const UserContext& ctx) {
  DbEvent event;
  event.kind = DbEventKind::kGetSchema;
  event.context = ctx;
  event.schema_name = schema_.name();
  ++stats_.get_schema_calls;
  RunAfterSinks(event);
  return &schema_;
}

agis::Result<std::vector<ObjectId>> GeoDatabase::EvaluateGetClass(
    const std::string& class_name, const GetClassOptions& options) const {
  std::vector<std::string> classes = {class_name};
  if (options.include_subclasses) {
    // Breadth-first over the subclass tree.
    for (size_t i = 0; i < classes.size(); ++i) {
      for (const std::string& sub : schema_.SubclassesOf(classes[i])) {
        classes.push_back(sub);
      }
    }
  }

  std::vector<ObjectId> out;
  for (const std::string& cls : classes) {
    const Extent& extent = extents_.at(cls);
    std::vector<ObjectId> candidates;
    const bool spatially_filtered =
        options.window.has_value() || options.spatial.has_value();
    if (spatially_filtered && !extent.geometry_attr.empty()) {
      // Probe the index with the tighter of window and spatial-target
      // box; exact filters below refine the candidates.
      geom::BoundingBox probe;
      if (options.window.has_value()) probe = *options.window;
      if (options.spatial.has_value()) {
        const geom::BoundingBox target_box = options.spatial->target.Bounds();
        if (!options.window.has_value() || target_box.Area() < probe.Area()) {
          probe = target_box;
        }
      }
      candidates = extent.index->Query(probe);
      std::sort(candidates.begin(), candidates.end());
    } else {
      candidates = extent.ids;
    }

    for (ObjectId id : candidates) {
      const ObjectInstance& obj = objects_.at(id);
      bool keep = true;

      if (spatially_filtered && !extent.geometry_attr.empty()) {
        const Value& gv = obj.Get(extent.geometry_attr);
        if (gv.is_null()) {
          keep = false;
        } else {
          const geom::Geometry& g = gv.geometry_value();
          if (options.window.has_value() &&
              !g.Bounds().Intersects(*options.window)) {
            keep = false;
          }
          if (keep && options.spatial.has_value() &&
              !geom::Satisfies(g, options.spatial->target,
                               options.spatial->relation)) {
            keep = false;
          }
        }
      } else if (spatially_filtered && extent.geometry_attr.empty()) {
        keep = false;  // Spatial filter over a non-spatial class.
      }

      for (const AttrPredicate& pred : options.predicates) {
        if (!keep) break;
        const Value& v = obj.Get(pred.attribute);
        if (pred.op == CompareOp::kContains) {
          keep = v.kind() == ValueKind::kString &&
                 pred.operand.kind() == ValueKind::kString &&
                 v.string_value().find(pred.operand.string_value()) !=
                     std::string::npos;
          continue;
        }
        auto cmp = CompareValues(v, pred.operand);
        if (!cmp.ok()) {
          keep = false;
          continue;
        }
        const int c = cmp.value();
        switch (pred.op) {
          case CompareOp::kEq:
            keep = c == 0;
            break;
          case CompareOp::kNe:
            keep = c != 0;
            break;
          case CompareOp::kLt:
            keep = c < 0;
            break;
          case CompareOp::kLe:
            keep = c <= 0;
            break;
          case CompareOp::kGt:
            keep = c > 0;
            break;
          case CompareOp::kGe:
            keep = c >= 0;
            break;
          case CompareOp::kContains:
            break;  // Handled above.
        }
      }

      if (keep) {
        out.push_back(id);
        if (options.limit != 0 && out.size() >= options.limit) return out;
      }
    }
  }
  return out;
}

agis::Result<ClassResult> GeoDatabase::GetClass(const std::string& class_name,
                                                const GetClassOptions& options,
                                                const UserContext& ctx) {
  if (!schema_.HasClass(class_name)) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  ++stats_.get_class_calls;

  DbEvent event;
  event.kind = DbEventKind::kGetClass;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.class_name = class_name;
  RunAfterSinks(event);

  ClassResult result;
  result.class_name = class_name;

  const std::string cache_key =
      agis::StrCat("class/", class_name, "/", options.CacheKeySuffix());
  if (options.use_buffer_pool) {
    if (auto slice = buffer_pool_.Get(cache_key)) {
      result.ids = slice->ids;
      result.from_cache = true;
      return result;
    }
  }

  AGIS_ASSIGN_OR_RETURN(result.ids, EvaluateGetClass(class_name, options));

  if (options.use_buffer_pool) {
    BufferSlice slice;
    slice.ids = result.ids;
    slice.charge_bytes = 64 + slice.ids.size() * sizeof(ObjectId);
    // Charge the objects a renderer would pin alongside the id list.
    for (ObjectId id : slice.ids) {
      slice.charge_bytes += objects_.at(id).ApproxSizeBytes();
    }
    buffer_pool_.Put(cache_key, std::move(slice));
  }
  return result;
}

agis::Result<const ObjectInstance*> GeoDatabase::GetValue(
    ObjectId id, const UserContext& ctx) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return agis::Status::NotFound(agis::StrCat("object ", id));
  }
  ++stats_.get_value_calls;

  DbEvent event;
  event.kind = DbEventKind::kGetValue;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.class_name = it->second.class_name();
  event.object_id = id;
  RunAfterSinks(event);
  return &it->second;
}

agis::Result<Value> GeoDatabase::GetAttributeValue(ObjectId id,
                                                   const std::string& attribute,
                                                   const UserContext& ctx) {
  AGIS_ASSIGN_OR_RETURN(const ObjectInstance* obj, GetValue(id, ctx));
  if (schema_.FindAttributeOf(obj->class_name(), attribute) == nullptr) {
    return agis::Status::NotFound(
        agis::StrCat("class '", obj->class_name(), "' has no attribute '",
                     attribute, "'"));
  }
  return obj->Get(attribute);
}

agis::Status GeoDatabase::RestoreObject(ObjectInstance obj) {
  if (obj.id() == 0) {
    return agis::Status::InvalidArgument("restored object needs an id");
  }
  if (objects_.count(obj.id()) != 0) {
    return agis::Status::AlreadyExists(
        agis::StrCat("object ", obj.id(), " already exists"));
  }
  auto extent_it = extents_.find(obj.class_name());
  if (extent_it == extents_.end()) {
    return agis::Status::NotFound(
        agis::StrCat("class '", obj.class_name(), "'"));
  }
  std::vector<std::pair<std::string, Value>> values(obj.values().begin(),
                                                    obj.values().end());
  AGIS_RETURN_IF_ERROR(ValidateAgainstSchema(obj.class_name(), values));
  Extent& extent = extent_it->second;
  const ObjectId id = obj.id();
  IndexGeometry(&extent, id, obj.Get(extent.geometry_attr));
  extent.ids.push_back(id);
  objects_.emplace(id, std::move(obj));
  if (id >= next_id_) next_id_ = id + 1;
  return agis::Status::OK();
}

agis::Result<Value> GeoDatabase::CallMethod(ObjectId id,
                                            const std::string& method) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return agis::Status::NotFound(agis::StrCat("object ", id));
  }
  const MethodDef* def =
      schema_.FindMethodOf(it->second.class_name(), method);
  if (def == nullptr || !def->impl) {
    return agis::Status::NotFound(
        agis::StrCat("method '", method, "' on class '",
                     it->second.class_name(), "'"));
  }
  return def->impl(*this, it->second);
}

agis::Result<std::vector<ObjectId>> GeoDatabase::ScanExtent(
    const std::string& class_name,
    const std::optional<geom::BoundingBox>& window) const {
  auto it = extents_.find(class_name);
  if (it == extents_.end()) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  const Extent& extent = it->second;
  if (window.has_value() && !extent.geometry_attr.empty()) {
    std::vector<ObjectId> ids = extent.index->Query(*window);
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  return extent.ids;
}

const ObjectInstance* GeoDatabase::FindObject(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

size_t GeoDatabase::ExtentSize(const std::string& class_name) const {
  auto it = extents_.find(class_name);
  return it == extents_.end() ? 0 : it->second.ids.size();
}

std::string GeoDatabase::GeometryAttributeOf(
    const std::string& class_name) const {
  auto it = extents_.find(class_name);
  return it == extents_.end() ? "" : it->second.geometry_attr;
}

}  // namespace agis::geodb
