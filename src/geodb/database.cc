#include "geodb/database.h"

#include <algorithm>
#include <condition_variable>

#include "base/strutil.h"
#include "base/thread_pool.h"
#include "geom/predicates.h"
#include "spatial/grid_index.h"
#include "spatial/rtree.h"

namespace agis::geodb {

namespace {

/// Attribute types the secondary indexes can hold.
bool IsIndexableAttrType(AttrType type) {
  switch (type) {
    case AttrType::kBool:
    case AttrType::kInt:
    case AttrType::kDouble:
    case AttrType::kString:
    case AttrType::kText:
      return true;
    default:
      return false;
  }
}

/// In-place intersection of sorted id vectors, smallest first.
std::vector<ObjectId> IntersectSorted(std::vector<std::vector<ObjectId>> sets) {
  std::sort(sets.begin(), sets.end(), [](const auto& a, const auto& b) {
    return a.size() < b.size();
  });
  std::vector<ObjectId> out = std::move(sets.front());
  for (size_t i = 1; i < sets.size() && !out.empty(); ++i) {
    std::vector<ObjectId> next;
    next.reserve(std::min(out.size(), sets[i].size()));
    std::set_intersection(out.begin(), out.end(), sets[i].begin(),
                          sets[i].end(), std::back_inserter(next));
    out = std::move(next);
  }
  return out;
}

}  // namespace

GeoDatabase::GeoDatabase(std::string schema_name, DatabaseOptions options)
    : schema_(std::move(schema_name)),
      options_(options),
      buffer_pool_(options.buffer_pool_bytes, options.buffer_pool_shards) {}

std::unique_ptr<spatial::SpatialIndex> GeoDatabase::MakeIndex() const {
  switch (options_.index_kind) {
    case IndexKind::kRTree:
      return std::make_unique<spatial::RTree>(options_.rtree_max_entries);
    case IndexKind::kGrid:
      return std::make_unique<spatial::GridIndex>(
          options_.world, options_.grid_cells_per_side);
    case IndexKind::kLinearScan:
      return std::make_unique<spatial::LinearScanIndex>();
  }
  return std::make_unique<spatial::LinearScanIndex>();
}

agis::Status GeoDatabase::RegisterClass(ClassDef cls) {
  const std::string name = cls.name();
  AGIS_RETURN_IF_ERROR(schema_.AddClass(std::move(cls)));
  Extent extent;
  extent.index = MakeIndex();
  // Resolve the first geometry attribute (including inherited) and
  // set up secondary indexes for the scalar attributes.
  auto attrs = schema_.AllAttributesOf(name);
  for (const AttributeDef& a : attrs.value()) {
    if (a.type == AttrType::kGeometry && extent.geometry_attr.empty()) {
      extent.geometry_attr = a.name;
    }
    if (options_.auto_attribute_indexes && IsIndexableAttrType(a.type)) {
      extent.attr_indexes.emplace(a.name, AttributeIndex());
    }
  }
  std::unique_lock lock(data_mutex_);
  extents_.emplace(name, std::move(extent));
  return agis::Status::OK();
}

agis::Status GeoDatabase::RegisterMethod(const std::string& class_name,
                                         MethodDef method) {
  // Schema stores classes by value; re-fetch mutably via the map the
  // Schema owns. Schema has no mutable accessor by design, so methods
  // are registered through this database-level path.
  const ClassDef* cls = schema_.FindClass(class_name);
  if (cls == nullptr) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  // const_cast is confined here: GeoDatabase owns schema_ and controls
  // every mutation path.
  return const_cast<ClassDef*>(cls)->AddMethod(std::move(method));
}

agis::Status GeoDatabase::CreateAttributeIndex(const std::string& class_name,
                                               const std::string& attribute) {
  const AttributeDef* def = schema_.FindAttributeOf(class_name, attribute);
  if (def == nullptr) {
    return agis::Status::NotFound(
        agis::StrCat("class '", class_name, "' has no attribute '", attribute,
                     "'"));
  }
  if (!IsIndexableAttrType(def->type)) {
    return agis::Status::InvalidArgument(
        agis::StrCat("attribute '", attribute, "' of type ",
                     AttrTypeName(def->type), " is not indexable"));
  }
  std::unique_lock lock(data_mutex_);
  Extent& extent = extents_.at(class_name);
  const auto [it, created] = extent.attr_indexes.emplace(attribute,
                                                         AttributeIndex());
  if (!created) return agis::Status::OK();
  for (ObjectId id : extent.ids) {
    it->second.Insert(id, objects_.at(id).Get(attribute));
  }
  return agis::Status::OK();
}

bool GeoDatabase::HasAttributeIndex(const std::string& class_name,
                                    const std::string& attribute) const {
  std::shared_lock lock(data_mutex_);
  const auto it = extents_.find(class_name);
  return it != extents_.end() &&
         it->second.attr_indexes.count(attribute) != 0;
}

void GeoDatabase::AddEventSink(DbEventSink* sink) { sinks_.push_back(sink); }

void GeoDatabase::RemoveEventSink(DbEventSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

agis::Status GeoDatabase::RunBeforeSinks(const DbEvent& event) {
  for (DbEventSink* sink : sinks_) {
    AGIS_RETURN_IF_ERROR(sink->OnBeforeEvent(event));
  }
  return agis::Status::OK();
}

void GeoDatabase::RunAfterSinks(const DbEvent& event) {
  for (DbEventSink* sink : sinks_) sink->OnAfterEvent(event);
}

agis::Status GeoDatabase::ValidateAgainstSchema(
    const std::string& class_name,
    const std::vector<std::pair<std::string, Value>>& values) const {
  AGIS_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                        schema_.AllAttributesOf(class_name));
  for (const auto& [attr_name, value] : values) {
    const AttributeDef* def = nullptr;
    for (const AttributeDef& a : attrs) {
      if (a.name == attr_name) {
        def = &a;
        break;
      }
    }
    if (def == nullptr) {
      return agis::Status::NotFound(
          agis::StrCat("class '", class_name, "' has no attribute '",
                       attr_name, "'"));
    }
    AGIS_RETURN_IF_ERROR(
        CheckValueType(schema_, *def, value).WithContext(class_name));
  }
  // Required attributes must be supplied and non-null.
  for (const AttributeDef& a : attrs) {
    if (!a.required) continue;
    bool found = false;
    for (const auto& [attr_name, value] : values) {
      if (attr_name == a.name && !value.is_null()) {
        found = true;
        break;
      }
    }
    if (!found) {
      return agis::Status::InvalidArgument(
          agis::StrCat("required attribute '", a.name, "' of class '",
                       class_name, "' missing"));
    }
  }
  return agis::Status::OK();
}

void GeoDatabase::IndexGeometry(Extent* extent, ObjectId id,
                                const Value& geometry_value) {
  if (extent->geometry_attr.empty() || geometry_value.is_null()) return;
  extent->index->Insert(id, geometry_value.geometry_value().Bounds());
}

void GeoDatabase::IndexAttributes(Extent* extent, const ObjectInstance& obj) {
  for (auto& [attr, index] : extent->attr_indexes) {
    index.Insert(obj.id(), obj.Get(attr));
  }
}

void GeoDatabase::UnindexAttributes(Extent* extent,
                                    const ObjectInstance& obj) {
  for (auto& [attr, index] : extent->attr_indexes) {
    index.Remove(obj.id(), obj.Get(attr));
  }
}

void GeoDatabase::InvalidateClassBuffers(const std::string& class_name) {
  buffer_pool_.InvalidatePrefix(agis::StrCat("class/", class_name, "/"));
}

agis::Result<ObjectId> GeoDatabase::Insert(
    const std::string& class_name,
    std::vector<std::pair<std::string, Value>> values,
    const UserContext& ctx) {
  if (!schema_.HasClass(class_name)) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  AGIS_RETURN_IF_ERROR(ValidateAgainstSchema(class_name, values));

  DbEvent event;
  event.kind = DbEventKind::kBeforeInsert;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.class_name = class_name;
  {
    std::shared_lock lock(data_mutex_);
    // Provisional id; final under concurrent writers only after the
    // exclusive section below (see the thread-safety contract).
    event.object_id = next_id_;
    const Extent& extent = extents_.at(class_name);
    if (!extent.geometry_attr.empty()) {
      event.attribute = extent.geometry_attr;
      // Last write wins, matching ObjectInstance::Set below.
      for (const auto& [attr_name, value] : values) {
        if (attr_name == extent.geometry_attr) event.new_value = value;
      }
    }
  }
  const agis::Status veto = RunBeforeSinks(event);
  if (!veto.ok()) {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.vetoed_writes;
    return veto;
  }

  ObjectId id = 0;
  {
    std::unique_lock lock(data_mutex_);
    id = next_id_++;
    ObjectInstance obj(id, class_name);
    for (auto& [attr_name, value] : values) {
      obj.Set(attr_name, std::move(value));
    }
    Extent& extent = extents_.at(class_name);
    IndexGeometry(&extent, id, obj.Get(extent.geometry_attr));
    IndexAttributes(&extent, obj);
    extent.ids.push_back(id);
    objects_.emplace(id, std::move(obj));
  }
  InvalidateClassBuffers(class_name);
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.inserts;
  }

  event.kind = DbEventKind::kAfterInsert;
  event.object_id = id;
  RunAfterSinks(event);
  return id;
}

agis::Status GeoDatabase::Update(ObjectId id, const std::string& attribute,
                                 Value value, const UserContext& ctx) {
  DbEvent event;
  event.kind = DbEventKind::kBeforeUpdate;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.object_id = id;
  event.attribute = attribute;
  event.new_value = value;
  {
    std::shared_lock lock(data_mutex_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    const ObjectInstance& obj = it->second;
    const AttributeDef* def =
        schema_.FindAttributeOf(obj.class_name(), attribute);
    if (def == nullptr) {
      return agis::Status::NotFound(
          agis::StrCat("class '", obj.class_name(), "' has no attribute '",
                       attribute, "'"));
    }
    AGIS_RETURN_IF_ERROR(CheckValueType(schema_, *def, value));
    event.class_name = obj.class_name();
    event.old_value = obj.Get(attribute);
  }
  const agis::Status veto = RunBeforeSinks(event);
  if (!veto.ok()) {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.vetoed_writes;
    return veto;
  }

  {
    std::unique_lock lock(data_mutex_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    ObjectInstance& obj = it->second;
    Extent& extent = extents_.at(obj.class_name());
    // Re-read the stored value under the exclusive lock so index
    // maintenance matches what is actually replaced.
    const Value& stored = obj.Get(attribute);
    if (attribute == extent.geometry_attr) {
      extent.index->Remove(id);
    }
    const auto attr_index_it = extent.attr_indexes.find(attribute);
    if (attr_index_it != extent.attr_indexes.end()) {
      attr_index_it->second.Remove(id, stored);
    }
    obj.Set(attribute, std::move(value));
    if (attribute == extent.geometry_attr) {
      IndexGeometry(&extent, id, obj.Get(attribute));
    }
    if (attr_index_it != extent.attr_indexes.end()) {
      attr_index_it->second.Insert(id, obj.Get(attribute));
    }
  }
  InvalidateClassBuffers(event.class_name);
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.updates;
  }

  event.kind = DbEventKind::kAfterUpdate;
  RunAfterSinks(event);
  return agis::Status::OK();
}

agis::Status GeoDatabase::Delete(ObjectId id, const UserContext& ctx) {
  DbEvent event;
  event.kind = DbEventKind::kBeforeDelete;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.object_id = id;
  {
    std::shared_lock lock(data_mutex_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    event.class_name = it->second.class_name();
  }
  const agis::Status veto = RunBeforeSinks(event);
  if (!veto.ok()) {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.vetoed_writes;
    return veto;
  }

  {
    std::unique_lock lock(data_mutex_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    Extent& extent = extents_.at(it->second.class_name());
    extent.index->Remove(id);
    UnindexAttributes(&extent, it->second);
    extent.ids.erase(std::remove(extent.ids.begin(), extent.ids.end(), id),
                     extent.ids.end());
    objects_.erase(it);
  }
  InvalidateClassBuffers(event.class_name);
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.deletes;
  }

  event.kind = DbEventKind::kAfterDelete;
  RunAfterSinks(event);
  return agis::Status::OK();
}

agis::Result<const Schema*> GeoDatabase::GetSchema(const UserContext& ctx) {
  DbEvent event;
  event.kind = DbEventKind::kGetSchema;
  event.context = ctx;
  event.schema_name = schema_.name();
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.get_schema_calls;
  }
  RunAfterSinks(event);
  return &schema_;
}

std::vector<ObjectId> GeoDatabase::EvaluateResidual(
    const Extent& extent, const GetClassOptions& options,
    const std::vector<bool>& applied, const std::vector<ObjectId>& candidates,
    size_t begin, size_t end) const {
  const bool spatially_filtered =
      options.window.has_value() || options.spatial.has_value();
  std::vector<ObjectId> out;
  for (size_t i = begin; i < end; ++i) {
    const ObjectId id = candidates[i];
    const ObjectInstance& obj = objects_.at(id);
    bool keep = true;

    if (spatially_filtered && !extent.geometry_attr.empty()) {
      const Value& gv = obj.Get(extent.geometry_attr);
      if (gv.is_null()) {
        keep = false;
      } else {
        const geom::Geometry& g = gv.geometry_value();
        if (options.window.has_value() &&
            !g.Bounds().Intersects(*options.window)) {
          keep = false;
        }
        if (keep && options.spatial.has_value() &&
            !geom::Satisfies(g, options.spatial->target,
                             options.spatial->relation)) {
          keep = false;
        }
      }
    } else if (spatially_filtered && extent.geometry_attr.empty()) {
      keep = false;  // Spatial filter over a non-spatial class.
    }

    for (size_t p = 0; p < options.predicates.size(); ++p) {
      if (!keep) break;
      if (applied[p]) continue;  // Answered exactly by an index.
      const AttrPredicate& pred = options.predicates[p];
      const Value& v = obj.Get(pred.attribute);
      if (pred.op == CompareOp::kContains) {
        keep = v.kind() == ValueKind::kString &&
               pred.operand.kind() == ValueKind::kString &&
               v.string_value().find(pred.operand.string_value()) !=
                   std::string::npos;
        continue;
      }
      auto cmp = CompareValues(v, pred.operand);
      if (!cmp.ok()) {
        keep = false;
        continue;
      }
      const int c = cmp.value();
      switch (pred.op) {
        case CompareOp::kEq:
          keep = c == 0;
          break;
        case CompareOp::kNe:
          keep = c != 0;
          break;
        case CompareOp::kLt:
          keep = c < 0;
          break;
        case CompareOp::kLe:
          keep = c <= 0;
          break;
        case CompareOp::kGt:
          keep = c > 0;
          break;
        case CompareOp::kGe:
          keep = c >= 0;
          break;
        case CompareOp::kContains:
          break;  // Handled above.
      }
    }

    if (keep) out.push_back(id);
  }
  return out;
}

agis::Result<std::vector<ObjectId>> GeoDatabase::EvaluateGetClass(
    const std::string& class_name, const GetClassOptions& options) const {
  std::vector<std::string> classes = {class_name};
  if (options.include_subclasses) {
    // Breadth-first over the subclass tree.
    for (size_t i = 0; i < classes.size(); ++i) {
      for (const std::string& sub : schema_.SubclassesOf(classes[i])) {
        classes.push_back(sub);
      }
    }
  }

  bool used_attr_index = false;
  bool used_spatial_index = false;
  bool used_full_scan = false;
  bool used_parallel_scan = false;

  std::vector<ObjectId> out;
  for (const std::string& cls : classes) {
    const Extent& extent = extents_.at(cls);
    const bool spatially_filtered =
        options.window.has_value() || options.spatial.has_value();
    if (spatially_filtered && extent.geometry_attr.empty()) {
      continue;  // Spatial filter over a non-spatial class: no matches.
    }

    // ---- Plan: collect an id set from every usable access path ----------
    std::vector<std::vector<ObjectId>> paths;
    std::vector<bool> applied(options.predicates.size(), false);

    if (spatially_filtered) {
      // Probe the index with the tighter of window and spatial-target
      // box; exact filters in the residual refine the candidates.
      geom::BoundingBox probe;
      if (options.window.has_value()) probe = *options.window;
      if (options.spatial.has_value()) {
        const geom::BoundingBox target_box = options.spatial->target.Bounds();
        if (!options.window.has_value() || target_box.Area() < probe.Area()) {
          probe = target_box;
        }
      }
      std::vector<ObjectId> ids = extent.index->Query(probe);
      std::sort(ids.begin(), ids.end());
      paths.push_back(std::move(ids));
      used_spatial_index = true;
    }

    for (size_t p = 0; p < options.predicates.size(); ++p) {
      const AttrPredicate& pred = options.predicates[p];
      const auto it = extent.attr_indexes.find(pred.attribute);
      if (it == extent.attr_indexes.end()) continue;
      auto ids = it->second.Eval(pred.op, pred.operand);
      if (!ids.has_value()) continue;  // Degenerate operand: residual.
      applied[p] = true;
      used_attr_index = true;
      paths.push_back(std::move(*ids));
    }

    // ---- Choose candidates: intersect paths, else the whole extent ------
    std::vector<ObjectId> candidates;
    if (paths.empty()) {
      candidates = extent.ids;
      used_full_scan = true;
    } else {
      candidates = IntersectSorted(std::move(paths));
    }

    // ---- Residual evaluation over the surviving candidates --------------
    const size_t partition = std::max<size_t>(options_.parallel_scan_partition,
                                              1);
    if (options.limit != 0) {
      // Evaluate in blocks so a satisfied limit stops early.
      const size_t block = 1024;
      for (size_t b = 0; b < candidates.size() && out.size() < options.limit;
           b += block) {
        std::vector<ObjectId> kept = EvaluateResidual(
            extent, options, applied, candidates, b,
            std::min(b + block, candidates.size()));
        for (ObjectId id : kept) {
          out.push_back(id);
          if (out.size() >= options.limit) break;
        }
      }
      if (out.size() >= options.limit) break;
    } else if (query_pool_ != nullptr && candidates.size() >= 2 * partition) {
      // Partition the residual scan across the pool; chunk results
      // merge in chunk order, so the outcome is identical to the
      // sequential path.
      const size_t nchunks = (candidates.size() + partition - 1) / partition;
      std::vector<std::vector<ObjectId>> chunk_results(nchunks);
      std::mutex merge_mutex;
      std::condition_variable done_cv;
      size_t pending = nchunks - 1;
      for (size_t c = 1; c < nchunks; ++c) {
        query_pool_->Submit([&, c] {
          chunk_results[c] = EvaluateResidual(
              extent, options, applied, candidates, c * partition,
              std::min((c + 1) * partition, candidates.size()));
          std::lock_guard<std::mutex> lock(merge_mutex);
          if (--pending == 0) done_cv.notify_one();
        });
      }
      chunk_results[0] =
          EvaluateResidual(extent, options, applied, candidates, 0, partition);
      {
        std::unique_lock<std::mutex> lock(merge_mutex);
        done_cv.wait(lock, [&] { return pending == 0; });
      }
      for (std::vector<ObjectId>& chunk : chunk_results) {
        out.insert(out.end(), chunk.begin(), chunk.end());
      }
      used_parallel_scan = true;
    } else {
      std::vector<ObjectId> kept = EvaluateResidual(
          extent, options, applied, candidates, 0, candidates.size());
      out.insert(out.end(), kept.begin(), kept.end());
    }
  }

  {
    std::lock_guard stats_lock(stats_mutex_);
    if (used_attr_index) ++stats_.attr_index_queries;
    if (used_spatial_index) ++stats_.spatial_index_queries;
    if (used_full_scan) ++stats_.full_extent_scans;
    if (used_parallel_scan) ++stats_.parallel_scans;
  }
  return out;
}

agis::Result<ClassResult> GeoDatabase::GetClass(const std::string& class_name,
                                                const GetClassOptions& options,
                                                const UserContext& ctx) {
  if (!schema_.HasClass(class_name)) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.get_class_calls;
  }

  DbEvent event;
  event.kind = DbEventKind::kGetClass;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.class_name = class_name;
  RunAfterSinks(event);

  ClassResult result;
  result.class_name = class_name;

  const std::string cache_key =
      agis::StrCat("class/", class_name, "/", options.CacheKeySuffix());
  if (options.use_buffer_pool) {
    if (auto slice = buffer_pool_.Get(cache_key)) {
      result.ids = slice->ids;
      result.from_cache = true;
      return result;
    }
  }

  BufferSlice slice;
  {
    std::shared_lock lock(data_mutex_);
    AGIS_ASSIGN_OR_RETURN(result.ids, EvaluateGetClass(class_name, options));
    if (options.use_buffer_pool) {
      slice.ids = result.ids;
      slice.charge_bytes = 64 + slice.ids.size() * sizeof(ObjectId);
      // Charge the objects a renderer would pin alongside the id list.
      for (ObjectId id : slice.ids) {
        slice.charge_bytes += objects_.at(id).ApproxSizeBytes();
      }
    }
  }
  if (options.use_buffer_pool) {
    buffer_pool_.Put(cache_key, std::move(slice));
  }
  return result;
}

agis::Result<const ObjectInstance*> GeoDatabase::GetValue(
    ObjectId id, const UserContext& ctx) {
  DbEvent event;
  const ObjectInstance* found = nullptr;
  {
    std::shared_lock lock(data_mutex_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    found = &it->second;
    event.class_name = it->second.class_name();
  }
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.get_value_calls;
  }

  event.kind = DbEventKind::kGetValue;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.object_id = id;
  RunAfterSinks(event);
  return found;
}

agis::Result<Value> GeoDatabase::GetAttributeValue(ObjectId id,
                                                   const std::string& attribute,
                                                   const UserContext& ctx) {
  AGIS_ASSIGN_OR_RETURN(const ObjectInstance* obj, GetValue(id, ctx));
  if (schema_.FindAttributeOf(obj->class_name(), attribute) == nullptr) {
    return agis::Status::NotFound(
        agis::StrCat("class '", obj->class_name(), "' has no attribute '",
                     attribute, "'"));
  }
  return obj->Get(attribute);
}

agis::Status GeoDatabase::RestoreObject(ObjectInstance obj) {
  if (obj.id() == 0) {
    return agis::Status::InvalidArgument("restored object needs an id");
  }
  std::vector<std::pair<std::string, Value>> values(obj.values().begin(),
                                                    obj.values().end());
  AGIS_RETURN_IF_ERROR(ValidateAgainstSchema(obj.class_name(), values));
  std::unique_lock lock(data_mutex_);
  if (objects_.count(obj.id()) != 0) {
    return agis::Status::AlreadyExists(
        agis::StrCat("object ", obj.id(), " already exists"));
  }
  auto extent_it = extents_.find(obj.class_name());
  if (extent_it == extents_.end()) {
    return agis::Status::NotFound(
        agis::StrCat("class '", obj.class_name(), "'"));
  }
  Extent& extent = extent_it->second;
  const ObjectId id = obj.id();
  if (!bulk_restore_) {
    IndexGeometry(&extent, id, obj.Get(extent.geometry_attr));
    IndexAttributes(&extent, obj);
  }
  extent.ids.push_back(id);
  objects_.emplace(id, std::move(obj));
  if (id >= next_id_) next_id_ = id + 1;
  return agis::Status::OK();
}

void GeoDatabase::BeginBulkRestore() {
  std::unique_lock lock(data_mutex_);
  bulk_restore_ = true;
}

agis::Status GeoDatabase::FinishBulkRestore() {
  std::unique_lock lock(data_mutex_);
  if (!bulk_restore_) return agis::Status::OK();
  bulk_restore_ = false;
  for (auto& [class_name, extent] : extents_) {
    RebuildExtentSpatialIndexLocked(class_name, &extent);
    for (auto& [attr, index] : extent.attr_indexes) {
      index = AttributeIndex();
      for (ObjectId id : extent.ids) {
        index.Insert(id, objects_.at(id).Get(attr));
      }
    }
  }
  return agis::Status::OK();
}

void GeoDatabase::RebuildSpatialIndexes() {
  std::unique_lock lock(data_mutex_);
  for (auto& [class_name, extent] : extents_) {
    RebuildExtentSpatialIndexLocked(class_name, &extent);
  }
}

void GeoDatabase::RebuildExtentSpatialIndexLocked(
    const std::string& class_name, Extent* extent) {
  if (extent->geometry_attr.empty()) return;
  std::vector<spatial::IndexEntry> entries;
  entries.reserve(extent->ids.size());
  for (ObjectId id : extent->ids) {
    const Value& gv = objects_.at(id).Get(extent->geometry_attr);
    if (gv.is_null()) continue;
    entries.push_back({id, gv.geometry_value().Bounds()});
  }
  extent->index = MakeIndex();
  extent->index->BulkLoad(std::move(entries));
  std::lock_guard stats_lock(stats_mutex_);
  ++stats_.bulk_index_builds;
  stats_.index_quality[class_name] = extent->index->Quality();
}

agis::Result<Value> GeoDatabase::CallMethod(ObjectId id,
                                            const std::string& method) const {
  const ObjectInstance* obj = nullptr;
  const MethodDef* def = nullptr;
  {
    std::shared_lock lock(data_mutex_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    obj = &it->second;
    def = schema_.FindMethodOf(it->second.class_name(), method);
    if (def == nullptr || !def->impl) {
      return agis::Status::NotFound(
          agis::StrCat("method '", method, "' on class '",
                       it->second.class_name(), "'"));
    }
  }
  // Invoked unlocked: method impls read the database (and would
  // self-deadlock against a queued writer otherwise).
  return def->impl(*this, *obj);
}

agis::Result<std::vector<ObjectId>> GeoDatabase::ScanExtent(
    const std::string& class_name,
    const std::optional<geom::BoundingBox>& window) const {
  std::shared_lock lock(data_mutex_);
  auto it = extents_.find(class_name);
  if (it == extents_.end()) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  const Extent& extent = it->second;
  if (window.has_value() && !extent.geometry_attr.empty()) {
    std::vector<ObjectId> ids = extent.index->Query(*window);
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  return extent.ids;
}

const ObjectInstance* GeoDatabase::FindObject(ObjectId id) const {
  std::shared_lock lock(data_mutex_);
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

size_t GeoDatabase::ExtentSize(const std::string& class_name) const {
  std::shared_lock lock(data_mutex_);
  auto it = extents_.find(class_name);
  return it == extents_.end() ? 0 : it->second.ids.size();
}

size_t GeoDatabase::NumObjects() const {
  std::shared_lock lock(data_mutex_);
  return objects_.size();
}

std::string GeoDatabase::GeometryAttributeOf(
    const std::string& class_name) const {
  std::shared_lock lock(data_mutex_);
  auto it = extents_.find(class_name);
  return it == extents_.end() ? "" : it->second.geometry_attr;
}

}  // namespace agis::geodb
