#include "geodb/database.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "base/strutil.h"
#include "geom/predicates.h"
#include "spatial/grid_index.h"
#include "spatial/rtree.h"

namespace agis::geodb {

namespace {

/// Attribute types the secondary indexes can hold.
bool IsIndexableAttrType(AttrType type) {
  switch (type) {
    case AttrType::kBool:
    case AttrType::kInt:
    case AttrType::kDouble:
    case AttrType::kString:
    case AttrType::kText:
      return true;
    default:
      return false;
  }
}

/// In-place intersection of sorted id vectors, smallest first.
std::vector<ObjectId> IntersectSorted(std::vector<std::vector<ObjectId>> sets) {
  std::sort(sets.begin(), sets.end(), [](const auto& a, const auto& b) {
    return a.size() < b.size();
  });
  std::vector<ObjectId> out = std::move(sets.front());
  for (size_t i = 1; i < sets.size() && !out.empty(); ++i) {
    std::vector<ObjectId> next;
    next.reserve(std::min(out.size(), sets[i].size()));
    std::set_intersection(out.begin(), out.end(), sets[i].begin(),
                          sets[i].end(), std::back_inserter(next));
    out = std::move(next);
  }
  return out;
}

}  // namespace

GeoDatabase::GeoDatabase(std::string schema_name, DatabaseOptions options)
    : schema_(std::move(schema_name)),
      options_(options),
      buffer_pool_(options.buffer_pool_bytes, options.buffer_pool_shards) {}

std::unique_ptr<spatial::SpatialIndex> GeoDatabase::MakeIndex() const {
  switch (options_.index_kind) {
    case IndexKind::kRTree:
      return std::make_unique<spatial::RTree>(options_.rtree_max_entries);
    case IndexKind::kGrid:
      return std::make_unique<spatial::GridIndex>(
          options_.world, options_.grid_cells_per_side);
    case IndexKind::kLinearScan:
      return std::make_unique<spatial::LinearScanIndex>();
  }
  return std::make_unique<spatial::LinearScanIndex>();
}

agis::Status GeoDatabase::RegisterClass(ClassDef cls) {
  const std::string name = cls.name();
  AGIS_RETURN_IF_ERROR(schema_.AddClass(std::move(cls)));
  Extent extent;
  extent.index = MakeIndex();
  // Resolve the first geometry attribute (including inherited) and
  // set up secondary indexes for the scalar attributes.
  auto attrs = schema_.AllAttributesOf(name);
  for (const AttributeDef& a : attrs.value()) {
    if (a.type == AttrType::kGeometry && extent.geometry_attr.empty()) {
      extent.geometry_attr = a.name;
    }
    if (options_.auto_attribute_indexes && IsIndexableAttrType(a.type)) {
      extent.attr_indexes.emplace(a.name, AttributeIndex());
    }
  }
  {
    std::unique_lock lock(data_mutex_);
    // A class registered mid-bulk-restore starts empty, so its
    // collected spatial entries are exact by construction.
    extent.bulk_exact = bulk_restore_;
    extents_.emplace(name, std::move(extent));
  }
  if (schema_change_hook_) {
    schema_change_hook_(*schema_.FindClass(name));
  }
  // Schema-shaped delta for event sinks (the durable store logs the
  // change through the hook above; the changefeed and other sinks get
  // it here). No snapshot: the event describes structure, not data.
  if (!sinks_.empty()) {
    DbEvent event;
    event.kind = DbEventKind::kSchemaChange;
    event.schema_name = schema_.name();
    event.class_name = name;
    RunAfterSinks(event);
  }
  return agis::Status::OK();
}

agis::Status GeoDatabase::RegisterMethod(const std::string& class_name,
                                         MethodDef method) {
  // Schema stores classes by value; re-fetch mutably via the map the
  // Schema owns. Schema has no mutable accessor by design, so methods
  // are registered through this database-level path.
  const ClassDef* cls = schema_.FindClass(class_name);
  if (cls == nullptr) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  // const_cast is confined here: GeoDatabase owns schema_ and controls
  // every mutation path.
  return const_cast<ClassDef*>(cls)->AddMethod(std::move(method));
}

agis::Status GeoDatabase::CreateAttributeIndex(const std::string& class_name,
                                               const std::string& attribute) {
  const AttributeDef* def = schema_.FindAttributeOf(class_name, attribute);
  if (def == nullptr) {
    return agis::Status::NotFound(
        agis::StrCat("class '", class_name, "' has no attribute '", attribute,
                     "'"));
  }
  if (!IsIndexableAttrType(def->type)) {
    return agis::Status::InvalidArgument(
        agis::StrCat("attribute '", attribute, "' of type ",
                     AttrTypeName(def->type), " is not indexable"));
  }
  std::unique_lock lock(data_mutex_);
  Extent& extent = extents_.at(class_name);
  const auto [it, created] = extent.attr_indexes.emplace(attribute,
                                                         AttributeIndex());
  if (!created) return agis::Status::OK();
  for (ObjectId id : extent.ids) {
    it->second.Insert(id, CurrentLocked(id)->Get(attribute));
  }
  return agis::Status::OK();
}

bool GeoDatabase::HasAttributeIndex(const std::string& class_name,
                                    const std::string& attribute) const {
  std::shared_lock lock(data_mutex_);
  const auto it = extents_.find(class_name);
  return it != extents_.end() &&
         it->second.attr_indexes.count(attribute) != 0;
}

void GeoDatabase::AddEventSink(DbEventSink* sink) { sinks_.push_back(sink); }

void GeoDatabase::RemoveEventSink(DbEventSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

agis::Status GeoDatabase::RunBeforeSinks(const DbEvent& event) {
  for (DbEventSink* sink : sinks_) {
    AGIS_RETURN_IF_ERROR(sink->OnBeforeEvent(event));
  }
  return agis::Status::OK();
}

void GeoDatabase::RunAfterSinks(const DbEvent& event) {
  for (DbEventSink* sink : sinks_) sink->OnAfterEvent(event);
}

void GeoDatabase::AttachEventSnapshot(DbEvent* event) const {
  if (sinks_.empty()) return;
  event->snapshot = std::make_shared<Snapshot>(OpenSnapshot());
}

agis::Status GeoDatabase::ValidateAgainstSchema(
    const std::string& class_name,
    const std::vector<std::pair<std::string, Value>>& values) const {
  AGIS_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                        schema_.AllAttributesOf(class_name));
  for (const auto& [attr_name, value] : values) {
    const AttributeDef* def = nullptr;
    for (const AttributeDef& a : attrs) {
      if (a.name == attr_name) {
        def = &a;
        break;
      }
    }
    if (def == nullptr) {
      return agis::Status::NotFound(
          agis::StrCat("class '", class_name, "' has no attribute '",
                       attr_name, "'"));
    }
    AGIS_RETURN_IF_ERROR(
        CheckValueType(schema_, *def, value).WithContext(class_name));
  }
  // Required attributes must be supplied and non-null.
  for (const AttributeDef& a : attrs) {
    if (!a.required) continue;
    bool found = false;
    for (const auto& [attr_name, value] : values) {
      if (attr_name == a.name && !value.is_null()) {
        found = true;
        break;
      }
    }
    if (!found) {
      return agis::Status::InvalidArgument(
          agis::StrCat("required attribute '", a.name, "' of class '",
                       class_name, "' missing"));
    }
  }
  return agis::Status::OK();
}

void GeoDatabase::IndexGeometry(Extent* extent, ObjectId id,
                                const Value& geometry_value) {
  if (extent->geometry_attr.empty() || geometry_value.is_null()) return;
  extent->index->Insert(id, geometry_value.geometry_value().Bounds());
}

void GeoDatabase::IndexAttributes(Extent* extent, const ObjectInstance& obj) {
  for (auto& [attr, index] : extent->attr_indexes) {
    index.Insert(obj.id(), obj.Get(attr));
  }
}

void GeoDatabase::UnindexAttributes(Extent* extent,
                                    const ObjectInstance& obj) {
  for (auto& [attr, index] : extent->attr_indexes) {
    index.Remove(obj.id(), obj.Get(attr));
  }
}

void GeoDatabase::InvalidateClassBuffers(const std::string& class_name) {
  buffer_pool_.InvalidatePrefix(agis::StrCat("class/", class_name, "/"));
}

void GeoDatabase::InvalidateBuffersForWrite(
    const std::string& class_name, ObjectId id,
    const std::vector<std::string>& changed_attributes,
    const std::optional<geom::BoundingBox>& new_bounds,
    bool membership_grows) {
  if (options_.legacy_class_prefix_invalidation) {
    InvalidateClassBuffers(class_name);
    return;
  }
  const std::string geometry_attr = GeometryAttributeOf(class_name);
  const bool geometry_changed =
      !geometry_attr.empty() &&
      std::find(changed_attributes.begin(), changed_attributes.end(),
                geometry_attr) != changed_attributes.end();
  // Self first, then ancestors: a write to C can only affect slices
  // cached under C or under an ancestor queried with subclasses.
  for (const ClassDef* cls = schema_.FindClass(class_name); cls != nullptr;
       cls = cls->parent().empty() ? nullptr
                                   : schema_.FindClass(cls->parent())) {
    const bool is_self = cls->name() == class_name;
    buffer_pool_.InvalidateMatching(
        agis::StrCat("class/", cls->name(), "/"),
        [&](const BufferSlice& slice) {
          if (!is_self && !slice.include_subclasses) return false;
          if (slice.Contains(id)) return true;
          if (membership_grows) {
            // A brand-new object joins every slice its geometry can
            // reach; only a viewport that excludes it — or that it
            // cannot enter, having no geometry — proves the slice
            // unaffected.
            return !(slice.window.has_value() &&
                     (!new_bounds.has_value() ||
                      !slice.window->Intersects(*new_bounds)));
          }
          // The object is not in the slice: only a write that can add
          // it matters — a changed attribute one of the slice's
          // predicates names, or a geometry move into its viewport /
          // spatial filter.
          for (const std::string& attr : changed_attributes) {
            if (std::find(slice.predicate_attrs.begin(),
                          slice.predicate_attrs.end(),
                          attr) != slice.predicate_attrs.end()) {
              return true;
            }
          }
          if (geometry_changed) {
            if (slice.has_spatial) return true;
            if (slice.window.has_value() && new_bounds.has_value() &&
                slice.window->Intersects(*new_bounds)) {
              return true;
            }
          }
          return false;
        });
  }
}

// ---- Version-store internals ----------------------------------------------

const ObjectInstance* GeoDatabase::CurrentLocked(ObjectId id) const {
  const auto it = objects_.find(id);
  if (it == objects_.end() || it->second.versions.empty()) return nullptr;
  return it->second.versions.back().data.get();
}

const ObjectInstance* GeoDatabase::VisibleLocked(const VersionChain& chain,
                                                 uint64_t epoch) {
  const auto& v = chain.versions;
  for (size_t i = v.size(); i-- > 0;) {
    if (v[i].epoch <= epoch) return v[i].data.get();
  }
  return nullptr;
}

void GeoDatabase::PushVersionLocked(
    ObjectId id, uint64_t epoch, std::shared_ptr<const ObjectInstance> data) {
  VersionChain& chain = objects_[id];
  chain.versions.push_back(Version{epoch, std::move(data)});
  const bool has_history =
      chain.versions.size() > 1 || chain.versions.back().data == nullptr;
  if (has_history && !chain.retired_listed) {
    chain.retired_listed = true;
    retired_.push_back(id);
  }
}

Snapshot GeoDatabase::PinSnapshotLocked() const {
  std::lock_guard pin_lock(snapshot_mutex_);
  pinned_epochs_.insert(current_epoch_);
  return Snapshot(this, current_epoch_);
}

Snapshot GeoDatabase::OpenSnapshot() const {
  Snapshot snap = [&] {
    std::shared_lock lock(data_mutex_);
    return PinSnapshotLocked();
  }();
  std::lock_guard stats_lock(stats_mutex_);
  ++stats_.snapshots_opened;
  return snap;
}

void GeoDatabase::UnpinSnapshot(uint64_t epoch) const {
  std::lock_guard pin_lock(snapshot_mutex_);
  const auto it = pinned_epochs_.find(epoch);
  if (it != pinned_epochs_.end()) pinned_epochs_.erase(it);
}

size_t GeoDatabase::PinnedSnapshotCount() const {
  std::lock_guard pin_lock(snapshot_mutex_);
  return pinned_epochs_.size();
}

size_t GeoDatabase::TotalVersionCount() const {
  std::shared_lock lock(data_mutex_);
  size_t total = 0;
  for (const auto& [id, chain] : objects_) total += chain.versions.size();
  return total;
}

void GeoDatabase::ReclaimVersions() {
  std::unique_lock lock(data_mutex_);
  ReclaimVersionsLocked();
}

void GeoDatabase::ReclaimVersionsLocked() {
  if (retired_.empty() && dead_entries_ == 0) return;
  uint64_t floor;
  {
    std::lock_guard pin_lock(snapshot_mutex_);
    floor = pinned_epochs_.empty() ? current_epoch_ : *pinned_epochs_.begin();
  }

  uint64_t reclaimed = 0;
  std::vector<ObjectId> still_retired;
  for (ObjectId id : retired_) {
    const auto it = objects_.find(id);
    if (it == objects_.end()) continue;
    VersionChain& chain = it->second;
    std::vector<Version>& v = chain.versions;
    // A version is dead once its successor is visible to every open
    // snapshot (successor epoch <= floor).
    size_t keep_from = 0;
    while (keep_from + 1 < v.size() && v[keep_from + 1].epoch <= floor) {
      ++keep_from;
    }
    if (keep_from > 0) {
      reclaimed += keep_from;
      v.erase(v.begin(), v.begin() + keep_from);
    }
    if (v.size() == 1 && v.front().data == nullptr &&
        v.front().epoch <= floor) {
      // Sole tombstone every snapshot postdates: the id is fully gone.
      ++reclaimed;
      objects_.erase(it);
      continue;
    }
    if (v.size() > 1 || v.back().data == nullptr) {
      still_retired.push_back(id);
    } else {
      chain.retired_listed = false;
    }
  }
  retired_ = std::move(still_retired);

  if (dead_entries_ != 0) {
    for (auto& [class_name, extent] : extents_) {
      if (extent.dead.empty()) continue;
      // Ascending by epoch: drop the prefix no snapshot predates.
      const auto cut = std::find_if(
          extent.dead.begin(), extent.dead.end(),
          [floor](const std::pair<uint64_t, ObjectId>& e) {
            return e.first > floor;
          });
      dead_entries_ -= static_cast<size_t>(cut - extent.dead.begin());
      extent.dead.erase(extent.dead.begin(), cut);
    }
  }

  if (reclaimed != 0) {
    std::lock_guard stats_lock(stats_mutex_);
    stats_.versions_reclaimed += reclaimed;
  }
}

// ---- Write operations ------------------------------------------------------

agis::Result<ObjectId> GeoDatabase::Insert(
    const std::string& class_name,
    std::vector<std::pair<std::string, Value>> values,
    const UserContext& ctx) {
  if (!schema_.HasClass(class_name)) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  AGIS_RETURN_IF_ERROR(ValidateAgainstSchema(class_name, values));

  DbEvent event;
  event.kind = DbEventKind::kBeforeInsert;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.class_name = class_name;
  {
    std::shared_lock lock(data_mutex_);
    // Provisional id; final under concurrent writers only after the
    // exclusive section below (see the thread-safety contract).
    event.object_id = next_id_;
    const Extent& extent = extents_.at(class_name);
    if (!extent.geometry_attr.empty()) {
      event.attribute = extent.geometry_attr;
      // Last write wins, matching ObjectInstance::Set below.
      for (const auto& [attr_name, value] : values) {
        if (attr_name == extent.geometry_attr) event.new_value = value;
      }
    }
  }
  AttachEventSnapshot(&event);  // Pre-write state for before-sinks.
  const agis::Status veto = RunBeforeSinks(event);
  if (!veto.ok()) {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.vetoed_writes;
    return veto;
  }

  for (const auto& [attr_name, value] : values) {
    event.changed_attributes.push_back(attr_name);
  }
  ObjectId id = 0;
  {
    std::unique_lock lock(data_mutex_);
    id = next_id_++;
    const uint64_t write_epoch = ++current_epoch_;
    event.write_epoch = write_epoch;
    auto obj = std::make_shared<ObjectInstance>(id, class_name);
    for (auto& [attr_name, value] : values) {
      obj->Set(attr_name, std::move(value));
    }
    Extent& extent = extents_.at(class_name);
    IndexGeometry(&extent, id, obj->Get(extent.geometry_attr));
    IndexAttributes(&extent, *obj);
    extent.ids.push_back(id);
    PushVersionLocked(id, write_epoch, std::move(obj));
    ++live_objects_;
    ReclaimVersionsLocked();
  }
  std::optional<geom::BoundingBox> new_bounds;
  if (event.new_value.kind() == ValueKind::kGeometry) {
    new_bounds = event.new_value.geometry_value().Bounds();
  }
  InvalidateBuffersForWrite(class_name, id, event.changed_attributes,
                            new_bounds, /*membership_grows=*/true);
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.inserts;
  }

  event.kind = DbEventKind::kAfterInsert;
  event.object_id = id;
  AttachEventSnapshot(&event);  // Post-write state for after-sinks.
  RunAfterSinks(event);
  return id;
}

agis::Status GeoDatabase::Update(ObjectId id, const std::string& attribute,
                                 Value value, const UserContext& ctx) {
  DbEvent event;
  event.kind = DbEventKind::kBeforeUpdate;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.object_id = id;
  event.attribute = attribute;
  event.new_value = value;
  {
    std::shared_lock lock(data_mutex_);
    const ObjectInstance* obj = CurrentLocked(id);
    if (obj == nullptr) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    const AttributeDef* def =
        schema_.FindAttributeOf(obj->class_name(), attribute);
    if (def == nullptr) {
      return agis::Status::NotFound(
          agis::StrCat("class '", obj->class_name(), "' has no attribute '",
                       attribute, "'"));
    }
    AGIS_RETURN_IF_ERROR(CheckValueType(schema_, *def, value));
    event.class_name = obj->class_name();
    event.old_value = obj->Get(attribute);
  }
  AttachEventSnapshot(&event);  // Pre-write state for before-sinks.
  const agis::Status veto = RunBeforeSinks(event);
  if (!veto.ok()) {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.vetoed_writes;
    return veto;
  }

  event.changed_attributes.push_back(attribute);
  {
    std::unique_lock lock(data_mutex_);
    const ObjectInstance* current = CurrentLocked(id);
    if (current == nullptr) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    const uint64_t write_epoch = ++current_epoch_;
    event.write_epoch = write_epoch;
    Extent& extent = extents_.at(current->class_name());
    // Copy-on-write: build the successor version; the current one
    // stays untouched for snapshot readers.
    auto next = std::make_shared<ObjectInstance>(*current);
    // Re-read the stored value under the exclusive lock so index
    // maintenance matches what is actually replaced.
    const Value& stored = current->Get(attribute);
    if (attribute == extent.geometry_attr) {
      extent.index->Remove(id);
    }
    const auto attr_index_it = extent.attr_indexes.find(attribute);
    if (attr_index_it != extent.attr_indexes.end()) {
      attr_index_it->second.Remove(id, stored);
    }
    next->Set(attribute, std::move(value));
    if (attribute == extent.geometry_attr) {
      IndexGeometry(&extent, id, next->Get(attribute));
    }
    if (attr_index_it != extent.attr_indexes.end()) {
      attr_index_it->second.Insert(id, next->Get(attribute));
    }
    PushVersionLocked(id, write_epoch, std::move(next));
    ReclaimVersionsLocked();
  }
  std::optional<geom::BoundingBox> new_bounds;
  if (event.new_value.kind() == ValueKind::kGeometry) {
    new_bounds = event.new_value.geometry_value().Bounds();
  }
  InvalidateBuffersForWrite(event.class_name, id, event.changed_attributes,
                            new_bounds, /*membership_grows=*/false);
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.updates;
  }

  event.kind = DbEventKind::kAfterUpdate;
  AttachEventSnapshot(&event);  // Post-write state for after-sinks.
  RunAfterSinks(event);
  return agis::Status::OK();
}

agis::Status GeoDatabase::Delete(ObjectId id, const UserContext& ctx) {
  DbEvent event;
  event.kind = DbEventKind::kBeforeDelete;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.object_id = id;
  {
    std::shared_lock lock(data_mutex_);
    const ObjectInstance* obj = CurrentLocked(id);
    if (obj == nullptr) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    event.class_name = obj->class_name();
  }
  AttachEventSnapshot(&event);  // Pre-write state for before-sinks.
  const agis::Status veto = RunBeforeSinks(event);
  if (!veto.ok()) {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.vetoed_writes;
    return veto;
  }

  {
    std::unique_lock lock(data_mutex_);
    const ObjectInstance* current = CurrentLocked(id);
    if (current == nullptr) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    const uint64_t write_epoch = ++current_epoch_;
    event.write_epoch = write_epoch;
    Extent& extent = extents_.at(current->class_name());
    extent.index->Remove(id);
    UnindexAttributes(&extent, *current);
    extent.ids.erase(std::remove(extent.ids.begin(), extent.ids.end(), id),
                     extent.ids.end());
    extent.dead.emplace_back(write_epoch, id);
    ++dead_entries_;
    PushVersionLocked(id, write_epoch, nullptr);  // Tombstone.
    --live_objects_;
    ReclaimVersionsLocked();
  }
  // A delete can only shrink result sets: exactly the slices listing
  // the object are stale.
  InvalidateBuffersForWrite(event.class_name, id, {}, std::nullopt,
                            /*membership_grows=*/false);
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.deletes;
  }

  event.kind = DbEventKind::kAfterDelete;
  AttachEventSnapshot(&event);  // Post-write state for after-sinks.
  RunAfterSinks(event);
  return agis::Status::OK();
}

agis::Result<const Schema*> GeoDatabase::GetSchema(const UserContext& ctx) {
  DbEvent event;
  event.kind = DbEventKind::kGetSchema;
  event.context = ctx;
  event.schema_name = schema_.name();
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.get_schema_calls;
  }
  RunAfterSinks(event);
  return &schema_;
}

std::vector<ObjectId> GeoDatabase::EvaluateResidual(
    const std::string& geometry_attr, const GetClassOptions& options,
    const std::vector<bool>& applied,
    const std::vector<const ObjectInstance*>& candidates, size_t begin,
    size_t end) const {
  const bool spatially_filtered =
      options.window.has_value() || options.spatial.has_value();
  std::vector<ObjectId> out;
  for (size_t i = begin; i < end; ++i) {
    const ObjectInstance& obj = *candidates[i];
    bool keep = true;

    if (spatially_filtered && !geometry_attr.empty()) {
      const Value& gv = obj.Get(geometry_attr);
      if (gv.is_null()) {
        keep = false;
      } else {
        const geom::Geometry& g = gv.geometry_value();
        if (options.window.has_value() &&
            !g.Bounds().Intersects(*options.window)) {
          keep = false;
        }
        if (keep && options.spatial.has_value() &&
            !geom::Satisfies(g, options.spatial->target,
                             options.spatial->relation)) {
          keep = false;
        }
      }
    } else if (spatially_filtered && geometry_attr.empty()) {
      keep = false;  // Spatial filter over a non-spatial class.
    }

    for (size_t p = 0; p < options.predicates.size(); ++p) {
      if (!keep) break;
      if (applied[p]) continue;  // Answered exactly by an index.
      const AttrPredicate& pred = options.predicates[p];
      const Value& v = obj.Get(pred.attribute);
      if (pred.op == CompareOp::kContains) {
        keep = v.kind() == ValueKind::kString &&
               pred.operand.kind() == ValueKind::kString &&
               v.string_value().find(pred.operand.string_value()) !=
                   std::string::npos;
        continue;
      }
      auto cmp = CompareValues(v, pred.operand);
      if (!cmp.ok()) {
        keep = false;
        continue;
      }
      const int c = cmp.value();
      switch (pred.op) {
        case CompareOp::kEq:
          keep = c == 0;
          break;
        case CompareOp::kNe:
          keep = c != 0;
          break;
        case CompareOp::kLt:
          keep = c < 0;
          break;
        case CompareOp::kLe:
          keep = c <= 0;
          break;
        case CompareOp::kGt:
          keep = c > 0;
          break;
        case CompareOp::kGe:
          keep = c >= 0;
          break;
        case CompareOp::kContains:
          break;  // Handled above.
      }
    }

    if (keep) out.push_back(obj.id());
  }
  return out;
}

agis::Result<std::vector<ObjectId>> GeoDatabase::EvaluateGetClass(
    const std::string& class_name, const GetClassOptions& options) const {
  bool used_attr_index = false;
  bool used_spatial_index = false;
  bool used_full_scan = false;
  bool used_parallel_scan = false;
  size_t paths_skipped = 0;

  /// Per-class residual work, carrying pinned version pointers so the
  /// scan can run with the data lock released.
  struct ClassWork {
    std::string geometry_attr;
    std::vector<bool> applied;
    std::vector<const ObjectInstance*> candidates;
  };
  std::vector<ClassWork> work;
  Snapshot pin;

  // ---- Phase 1 (shared lock): plan access paths, materialize the
  // candidate versions, and pin them before releasing the lock.
  {
    std::shared_lock lock(data_mutex_);
    std::vector<std::string> classes = {class_name};
    if (options.include_subclasses) {
      // Breadth-first over the subclass tree.
      for (size_t i = 0; i < classes.size(); ++i) {
        for (const std::string& sub : schema_.SubclassesOf(classes[i])) {
          classes.push_back(sub);
        }
      }
    }

    for (const std::string& cls : classes) {
      const Extent& extent = extents_.at(cls);
      const bool spatially_filtered =
          options.window.has_value() || options.spatial.has_value();
      if (spatially_filtered && extent.geometry_attr.empty()) {
        continue;  // Spatial filter over a non-spatial class: no matches.
      }

      // ---- Plan: collect an id set from every usable access path --------
      std::vector<std::vector<ObjectId>> paths;
      std::vector<bool> applied(options.predicates.size(), false);

      if (spatially_filtered) {
        // Probe the index with the tighter of window and spatial-target
        // box; exact filters in the residual refine the candidates.
        geom::BoundingBox probe;
        if (options.window.has_value()) probe = *options.window;
        if (options.spatial.has_value()) {
          const geom::BoundingBox target_box =
              options.spatial->target.Bounds();
          if (!options.window.has_value() ||
              target_box.Area() < probe.Area()) {
            probe = target_box;
          }
        }
        std::vector<ObjectId> ids = extent.index->Query(probe);
        std::sort(ids.begin(), ids.end());
        paths.push_back(std::move(ids));
        used_spatial_index = true;
      }

      // Estimate every indexable predicate first and order the access
      // paths most-selective-first, so id sets materialize (and the
      // intersection narrows) cheapest-first. Paths whose estimate
      // exceeds the selectivity cutoff are not materialized at all —
      // intersecting a near-complete id list costs more than letting
      // the residual filter the few candidates that survive the
      // selective paths.
      struct PlannedPath {
        size_t predicate;
        size_t estimate;
        const AttributeIndex* index;
      };
      std::vector<PlannedPath> planned;
      for (size_t p = 0; p < options.predicates.size(); ++p) {
        const AttrPredicate& pred = options.predicates[p];
        const auto it = extent.attr_indexes.find(pred.attribute);
        if (it == extent.attr_indexes.end()) continue;
        const auto estimate = it->second.EstimateCount(pred.op, pred.operand);
        if (!estimate.has_value()) continue;  // Degenerate operand: residual.
        planned.push_back({p, *estimate, &it->second});
      }
      std::sort(planned.begin(), planned.end(),
                [](const PlannedPath& a, const PlannedPath& b) {
                  return a.estimate < b.estimate;
                });
      const size_t cutoff_count = static_cast<size_t>(
          static_cast<double>(extent.ids.size()) *
          options_.index_path_selectivity_cutoff);
      for (const PlannedPath& path : planned) {
        // Above the cutoff a path is only worth materializing when it
        // would be the sole access path (it still beats a full extent
        // scan, barely).
        if (path.estimate > cutoff_count && !paths.empty()) {
          ++paths_skipped;
          continue;
        }
        auto ids = path.index->Eval(options.predicates[path.predicate].op,
                                    options.predicates[path.predicate].operand);
        if (!ids.has_value()) continue;
        applied[path.predicate] = true;
        used_attr_index = true;
        const bool empty = ids->empty();
        paths.push_back(std::move(*ids));
        // The most selective path came up empty: the intersection is
        // empty no matter what, so skip materializing the rest.
        if (empty) break;
      }

      // ---- Choose candidates: intersect paths, else the whole extent ----
      std::vector<ObjectId> candidate_ids;
      if (paths.empty()) {
        candidate_ids = extent.ids;
        used_full_scan = true;
      } else {
        candidate_ids = IntersectSorted(std::move(paths));
      }

      ClassWork w;
      w.geometry_attr = extent.geometry_attr;
      w.applied = std::move(applied);
      w.candidates.reserve(candidate_ids.size());
      for (ObjectId id : candidate_ids) {
        const ObjectInstance* obj = CurrentLocked(id);
        if (obj != nullptr) w.candidates.push_back(obj);
      }
      work.push_back(std::move(w));
    }
    // Pin before unlocking: reclamation cannot free the candidate
    // versions while this scan runs, and no later write mutates them
    // (copy-on-write) — so the residual below can never observe a
    // torn or recycled instance, parallel or not.
    pin = PinSnapshotLocked();
  }

  // ---- Phase 2 (no lock): residual evaluation over pinned versions.
  std::vector<ObjectId> out;
  for (const ClassWork& w : work) {
    const size_t partition =
        std::max<size_t>(options_.parallel_scan_partition, 1);
    if (options.limit != 0) {
      // Evaluate in blocks so a satisfied limit stops early.
      const size_t block = 1024;
      for (size_t b = 0; b < w.candidates.size() && out.size() < options.limit;
           b += block) {
        std::vector<ObjectId> kept = EvaluateResidual(
            w.geometry_attr, options, w.applied, w.candidates, b,
            std::min(b + block, w.candidates.size()));
        for (ObjectId id : kept) {
          out.push_back(id);
          if (out.size() >= options.limit) break;
        }
      }
      if (out.size() >= options.limit) break;
    } else if (scheduler_ != nullptr &&
               w.candidates.size() >= 2 * partition) {
      // Partition the residual scan across the shared scheduler;
      // chunk results merge in chunk order, so the outcome is
      // identical to the sequential path. TaskGroup::Wait helps
      // execute pending tasks (its own chunks first), so this scan
      // is safe even when issued from inside a scheduler task.
      const size_t nchunks = (w.candidates.size() + partition - 1) / partition;
      std::vector<std::vector<ObjectId>> chunk_results(nchunks);
      agis::TaskGroup group(scheduler_);
      for (size_t c = 1; c < nchunks; ++c) {
        group.Run([&, c] {
          chunk_results[c] = EvaluateResidual(
              w.geometry_attr, options, w.applied, w.candidates,
              c * partition,
              std::min((c + 1) * partition, w.candidates.size()));
        });
      }
      chunk_results[0] = EvaluateResidual(w.geometry_attr, options, w.applied,
                                          w.candidates, 0, partition);
      group.Wait();
      for (std::vector<ObjectId>& chunk : chunk_results) {
        out.insert(out.end(), chunk.begin(), chunk.end());
      }
      used_parallel_scan = true;
    } else {
      std::vector<ObjectId> kept =
          EvaluateResidual(w.geometry_attr, options, w.applied, w.candidates,
                           0, w.candidates.size());
      out.insert(out.end(), kept.begin(), kept.end());
    }
  }

  {
    std::lock_guard stats_lock(stats_mutex_);
    if (used_attr_index) ++stats_.attr_index_queries;
    if (used_spatial_index) ++stats_.spatial_index_queries;
    if (used_full_scan) ++stats_.full_extent_scans;
    if (used_parallel_scan) ++stats_.parallel_scans;
    stats_.index_paths_skipped += paths_skipped;
  }
  return out;
}

agis::Result<ClassResult> GeoDatabase::GetClass(const std::string& class_name,
                                                const GetClassOptions& options,
                                                const UserContext& ctx) {
  if (!schema_.HasClass(class_name)) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.get_class_calls;
  }

  DbEvent event;
  event.kind = DbEventKind::kGetClass;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.class_name = class_name;
  RunAfterSinks(event);

  ClassResult result;
  result.class_name = class_name;

  const std::string cache_key =
      agis::StrCat("class/", class_name, "/", options.CacheKeySuffix());
  if (options.use_buffer_pool) {
    if (auto slice = buffer_pool_.Get(cache_key)) {
      result.ids = slice->ids;
      result.from_cache = true;
      return result;
    }
  }

  // EvaluateGetClass locks (and pins) internally.
  AGIS_ASSIGN_OR_RETURN(result.ids, EvaluateGetClass(class_name, options));
  if (options.use_buffer_pool) {
    BufferSlice slice;
    slice.ids = result.ids;
    slice.charge_bytes = 64 + slice.ids.size() * sizeof(ObjectId);
    // Query-shape metadata: what per-object invalidation consults to
    // decide whether a later write can change this slice's membership.
    slice.window = options.window;
    slice.has_spatial = options.spatial.has_value();
    slice.include_subclasses = options.include_subclasses;
    slice.predicate_attrs.reserve(options.predicates.size());
    for (const AttrPredicate& p : options.predicates) {
      slice.predicate_attrs.push_back(p.attribute);
    }
    {
      std::shared_lock lock(data_mutex_);
      // Charge the objects a renderer would pin alongside the id list;
      // ids deleted since evaluation simply drop out of the charge.
      for (ObjectId id : slice.ids) {
        const ObjectInstance* obj = CurrentLocked(id);
        if (obj != nullptr) slice.charge_bytes += obj->ApproxSizeBytes();
      }
    }
    buffer_pool_.Put(cache_key, std::move(slice));
  }
  return result;
}

agis::Result<const ObjectInstance*> GeoDatabase::GetValue(
    ObjectId id, const UserContext& ctx) {
  DbEvent event;
  const ObjectInstance* found = nullptr;
  {
    std::shared_lock lock(data_mutex_);
    found = CurrentLocked(id);
    if (found == nullptr) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    event.class_name = found->class_name();
  }
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.get_value_calls;
  }

  event.kind = DbEventKind::kGetValue;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.object_id = id;
  RunAfterSinks(event);
  return found;
}

agis::Result<const ObjectInstance*> GeoDatabase::GetValueAt(
    const Snapshot& snapshot, ObjectId id, const UserContext& ctx) {
  if (!snapshot.valid() || snapshot.database() != this) {
    return agis::Status::InvalidArgument(
        "snapshot is detached or from another database");
  }
  DbEvent event;
  const ObjectInstance* found = nullptr;
  {
    std::shared_lock lock(data_mutex_);
    const auto it = objects_.find(id);
    if (it != objects_.end()) {
      found = VisibleLocked(it->second, snapshot.epoch());
    }
  }
  if (found == nullptr) {
    return agis::Status::NotFound(agis::StrCat("object ", id));
  }
  {
    std::lock_guard stats_lock(stats_mutex_);
    ++stats_.get_value_calls;
  }

  event.kind = DbEventKind::kGetValue;
  event.context = ctx;
  event.schema_name = schema_.name();
  event.class_name = found->class_name();
  event.object_id = id;
  RunAfterSinks(event);
  return found;
}

agis::Result<Value> GeoDatabase::GetAttributeValue(ObjectId id,
                                                   const std::string& attribute,
                                                   const UserContext& ctx) {
  // The legacy call is safe here: the pointer is consumed before
  // returning, while no write can retire it under this caller.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  AGIS_ASSIGN_OR_RETURN(const ObjectInstance* obj, GetValue(id, ctx));
#pragma GCC diagnostic pop
  if (schema_.FindAttributeOf(obj->class_name(), attribute) == nullptr) {
    return agis::Status::NotFound(
        agis::StrCat("class '", obj->class_name(), "' has no attribute '",
                     attribute, "'"));
  }
  return obj->Get(attribute);
}

agis::Status GeoDatabase::ValidateRestored(
    const std::vector<AttributeDef>& attrs, const ObjectInstance& obj) const {
  for (const auto& [attr_name, value] : obj.values()) {
    const AttributeDef* def = nullptr;
    for (const AttributeDef& a : attrs) {
      if (a.name == attr_name) {
        def = &a;
        break;
      }
    }
    if (def == nullptr) {
      return agis::Status::NotFound(
          agis::StrCat("class '", obj.class_name(), "' has no attribute '",
                       attr_name, "'"));
    }
    AGIS_RETURN_IF_ERROR(
        CheckValueType(schema_, *def, value).WithContext(obj.class_name()));
  }
  for (const AttributeDef& a : attrs) {
    if (!a.required) continue;
    if (obj.Get(a.name).is_null()) {
      return agis::Status::InvalidArgument(
          agis::StrCat("required attribute '", a.name, "' of class '",
                       obj.class_name(), "' missing"));
    }
  }
  return agis::Status::OK();
}

agis::Status GeoDatabase::RestoreOneLocked(
    ObjectInstance obj, const std::vector<AttributeDef>& attrs,
    Extent* extent) {
  if (obj.id() == 0) {
    return agis::Status::InvalidArgument("restored object needs an id");
  }
  AGIS_RETURN_IF_ERROR(ValidateRestored(attrs, obj));
  // A tombstoned chain may linger while snapshots pin it; restoring
  // the same id then pushes a live version onto the existing chain.
  if (CurrentLocked(obj.id()) != nullptr) {
    return agis::Status::AlreadyExists(
        agis::StrCat("object ", obj.id(), " already exists"));
  }
  const ObjectId id = obj.id();
  const uint64_t write_epoch = ++current_epoch_;
  if (bulk_restore_) {
    if (extent->bulk_exact && !extent->geometry_attr.empty()) {
      const Value& gv = obj.Get(extent->geometry_attr);
      if (!gv.is_null()) {
        extent->bulk_entries.push_back({id, gv.geometry_value().Bounds()});
      }
    }
  } else {
    IndexGeometry(extent, id, obj.Get(extent->geometry_attr));
    IndexAttributes(extent, obj);
  }
  extent->ids.push_back(id);
  PushVersionLocked(id, write_epoch,
                    std::make_shared<const ObjectInstance>(std::move(obj)));
  ++live_objects_;
  if (id >= next_id_) next_id_ = id + 1;
  if (!bulk_restore_) ReclaimVersionsLocked();
  return agis::Status::OK();
}

agis::Status GeoDatabase::RestoreObject(ObjectInstance obj) {
  if (obj.id() == 0) {
    return agis::Status::InvalidArgument("restored object needs an id");
  }
  std::vector<AttributeDef> attrs;
  AGIS_ASSIGN_OR_RETURN(attrs, schema_.AllAttributesOf(obj.class_name()));
  std::unique_lock lock(data_mutex_);
  const auto extent_it = extents_.find(obj.class_name());
  if (extent_it == extents_.end()) {
    return agis::Status::NotFound(
        agis::StrCat("class '", obj.class_name(), "'"));
  }
  return RestoreOneLocked(std::move(obj), attrs, &extent_it->second);
}

agis::Status GeoDatabase::RestoreObjects(std::vector<ObjectInstance> objects) {
  if (objects.empty()) return agis::Status::OK();
  std::unique_lock lock(data_mutex_);
  // Snapshot blocks arrive grouped by class; resolve the schema and
  // extent once per run of same-class records. No per-run reserve
  // calls here: a reserve sized to "current + this block" pins the
  // capacity to exactly that, so the next block reallocates the whole
  // vector (or rehashes the whole table) again — quadratic across a
  // blocked restore. Geometric push_back growth is amortized O(1),
  // and BeginBulkRestore reserves the full expected totals up front.
  std::string run_class;
  std::vector<AttributeDef> attrs;
  Extent* extent = nullptr;
  for (ObjectInstance& obj : objects) {
    if (extent == nullptr || obj.class_name() != run_class) {
      run_class = obj.class_name();
      AGIS_ASSIGN_OR_RETURN(attrs, schema_.AllAttributesOf(run_class));
      const auto extent_it = extents_.find(run_class);
      if (extent_it == extents_.end()) {
        return agis::Status::NotFound(agis::StrCat("class '", run_class, "'"));
      }
      extent = &extent_it->second;
    }
    AGIS_RETURN_IF_ERROR(RestoreOneLocked(std::move(obj), attrs, extent));
  }
  return agis::Status::OK();
}

agis::Status GeoDatabase::RestoreUpdate(ObjectId id,
                                        const std::string& attribute,
                                        Value value) {
  std::unique_lock lock(data_mutex_);
  const ObjectInstance* current = CurrentLocked(id);
  if (current == nullptr) {
    return agis::Status::NotFound(agis::StrCat("object ", id));
  }
  const AttributeDef* def =
      schema_.FindAttributeOf(current->class_name(), attribute);
  if (def == nullptr) {
    return agis::Status::NotFound(
        agis::StrCat("class '", current->class_name(),
                     "' has no attribute '", attribute, "'"));
  }
  AGIS_RETURN_IF_ERROR(CheckValueType(schema_, *def, value));
  const uint64_t write_epoch = ++current_epoch_;
  Extent& extent = extents_.at(current->class_name());
  if (bulk_restore_) {
    // Mid-bulk mutation: the collected entries no longer mirror the
    // extent; FinishBulkRestore falls back to a full re-walk.
    extent.bulk_exact = false;
    extent.bulk_entries = {};
  }
  auto next = std::make_shared<ObjectInstance>(*current);
  const Value& stored = current->Get(attribute);
  if (attribute == extent.geometry_attr) {
    extent.index->Remove(id);
  }
  const auto attr_index_it = extent.attr_indexes.find(attribute);
  if (attr_index_it != extent.attr_indexes.end()) {
    attr_index_it->second.Remove(id, stored);
  }
  next->Set(attribute, std::move(value));
  if (attribute == extent.geometry_attr) {
    IndexGeometry(&extent, id, next->Get(attribute));
  }
  if (attr_index_it != extent.attr_indexes.end()) {
    attr_index_it->second.Insert(id, next->Get(attribute));
  }
  PushVersionLocked(id, write_epoch, std::move(next));
  ReclaimVersionsLocked();
  return agis::Status::OK();
}

agis::Status GeoDatabase::RestoreDelete(ObjectId id) {
  std::unique_lock lock(data_mutex_);
  const ObjectInstance* current = CurrentLocked(id);
  if (current == nullptr) {
    return agis::Status::NotFound(agis::StrCat("object ", id));
  }
  const uint64_t write_epoch = ++current_epoch_;
  Extent& extent = extents_.at(current->class_name());
  if (bulk_restore_) {
    extent.bulk_exact = false;
    extent.bulk_entries = {};
  }
  extent.index->Remove(id);
  UnindexAttributes(&extent, *current);
  extent.ids.erase(std::remove(extent.ids.begin(), extent.ids.end(), id),
                   extent.ids.end());
  extent.dead.emplace_back(write_epoch, id);
  ++dead_entries_;
  PushVersionLocked(id, write_epoch, nullptr);  // Tombstone.
  --live_objects_;
  ReclaimVersionsLocked();
  return agis::Status::OK();
}

void GeoDatabase::BeginBulkRestore(size_t expected_objects) {
  std::unique_lock lock(data_mutex_);
  bulk_restore_ = true;
  if (expected_objects > 0) {
    objects_.reserve(objects_.size() + expected_objects);
  }
  for (auto& [name, extent] : extents_) {
    // Only an extent that is empty now can promise its collected
    // entries mirror it exactly at finish time.
    extent.bulk_exact = extent.ids.empty();
    extent.bulk_entries.clear();
    extent.bulk_installed.clear();
  }
}

agis::Status GeoDatabase::InstallAttributeIndex(const std::string& class_name,
                                                const std::string& attribute,
                                                AttributeIndex index) {
  std::unique_lock lock(data_mutex_);
  if (!bulk_restore_) {
    return agis::Status::InvalidArgument(
        "attribute indexes can only be installed during a bulk restore");
  }
  const auto extent_it = extents_.find(class_name);
  if (extent_it == extents_.end()) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  Extent& extent = extent_it->second;
  const auto index_it = extent.attr_indexes.find(attribute);
  if (index_it == extent.attr_indexes.end()) {
    // This database does not index the attribute; drop the payload.
    return agis::Status::OK();
  }
  // Every indexed id must name a restored object; the index never
  // holds more entries than the extent has instances.
  if (index.entry_count() > extent.ids.size()) {
    return agis::Status::ParseError(agis::StrCat(
        "attribute index '", class_name, ".", attribute, "' holds ",
        index.entry_count(), " entries for an extent of ",
        extent.ids.size(), " objects"));
  }
  index_it->second = std::move(index);
  extent.bulk_installed.insert(attribute);
  return agis::Status::OK();
}

std::vector<std::string> GeoDatabase::IndexedAttributes(
    const std::string& class_name) const {
  std::shared_lock lock(data_mutex_);
  std::vector<std::string> names;
  const auto it = extents_.find(class_name);
  if (it == extents_.end()) return names;
  names.reserve(it->second.attr_indexes.size());
  for (const auto& [attr, index] : it->second.attr_indexes) {
    names.push_back(attr);
  }
  return names;
}

agis::Status GeoDatabase::FinishBulkRestore() {
  std::unique_lock lock(data_mutex_);
  if (!bulk_restore_) return agis::Status::OK();
  bulk_restore_ = false;
  const bool timing = std::getenv("AGIS_RESTORE_TIMING") != nullptr;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& [class_name, extent] : extents_) {
    if (extent.bulk_exact && !extent.geometry_attr.empty()) {
      // Entries were collected as the objects arrived; hand them
      // straight to the STR bulk loader instead of re-walking the
      // extent through the version store.
      extent.index = MakeIndex();
      extent.index->BulkLoad(std::move(extent.bulk_entries));
      std::lock_guard stats_lock(stats_mutex_);
      ++stats_.bulk_index_builds;
      stats_.index_quality[class_name] = extent.index->Quality();
    } else if (!extent.bulk_exact) {
      RebuildExtentSpatialIndexLocked(class_name, &extent);
    }
    extent.bulk_entries = {};
    extent.bulk_exact = false;
  }
  const auto t1 = std::chrono::steady_clock::now();
  for (auto& [class_name, extent] : extents_) {
    // Indexes installed pre-built (snapshot index sections) were
    // maintained incrementally through any mid-bulk mutations; only
    // the rest need a rebuild from the version store.
    std::vector<AttributeIndex*> rebuild;
    std::vector<const std::string*> rebuild_attrs;
    for (auto& [attr, index] : extent.attr_indexes) {
      if (extent.bulk_installed.count(attr) == 0) {
        rebuild.push_back(&index);
        rebuild_attrs.push_back(&attr);
      }
    }
    extent.bulk_installed.clear();
    if (rebuild.empty() || extent.ids.empty()) continue;
    // One version-store probe per object feeds every attribute
    // column, and each index is built with one sort instead of
    // per-entry tree inserts.
    std::vector<std::vector<std::pair<ObjectId, const Value*>>> columns(
        rebuild.size());
    for (auto& column : columns) column.reserve(extent.ids.size());
    for (ObjectId id : extent.ids) {
      const ObjectInstance* obj = CurrentLocked(id);
      for (size_t column = 0; column < rebuild.size(); ++column) {
        columns[column].emplace_back(id, &obj->Get(*rebuild_attrs[column]));
      }
    }
    for (size_t column = 0; column < rebuild.size(); ++column) {
      *rebuild[column] = AttributeIndex();
      rebuild[column]->BulkLoad(std::move(columns[column]));
    }
  }
  const auto t2 = std::chrono::steady_clock::now();
  if (timing) {
    std::fprintf(stderr, "[finish_bulk] spatial=%.1fms attr=%.1fms\n",
                 std::chrono::duration<double, std::milli>(t1 - t0).count(),
                 std::chrono::duration<double, std::milli>(t2 - t1).count());
  }
  ReclaimVersionsLocked();
  return agis::Status::OK();
}

void GeoDatabase::RebuildSpatialIndexes() {
  std::unique_lock lock(data_mutex_);
  for (auto& [class_name, extent] : extents_) {
    RebuildExtentSpatialIndexLocked(class_name, &extent);
  }
}

void GeoDatabase::RebuildExtentSpatialIndexLocked(
    const std::string& class_name, Extent* extent) {
  if (extent->geometry_attr.empty()) return;
  std::vector<spatial::IndexEntry> entries;
  entries.reserve(extent->ids.size());
  for (ObjectId id : extent->ids) {
    const Value& gv = CurrentLocked(id)->Get(extent->geometry_attr);
    if (gv.is_null()) continue;
    entries.push_back({id, gv.geometry_value().Bounds()});
  }
  extent->index = MakeIndex();
  extent->index->BulkLoad(std::move(entries));
  std::lock_guard stats_lock(stats_mutex_);
  ++stats_.bulk_index_builds;
  stats_.index_quality[class_name] = extent->index->Quality();
}

agis::Result<Value> GeoDatabase::CallMethod(ObjectId id,
                                            const std::string& method) const {
  std::shared_ptr<const ObjectInstance> obj;
  const MethodDef* def = nullptr;
  {
    std::shared_lock lock(data_mutex_);
    const auto it = objects_.find(id);
    if (it == objects_.end() || it->second.versions.empty() ||
        it->second.versions.back().data == nullptr) {
      return agis::Status::NotFound(agis::StrCat("object ", id));
    }
    // Share ownership of the version: the impl runs unlocked below,
    // and a concurrent write must not free the instance under it.
    obj = it->second.versions.back().data;
    def = schema_.FindMethodOf(obj->class_name(), method);
    if (def == nullptr || !def->impl) {
      return agis::Status::NotFound(
          agis::StrCat("method '", method, "' on class '", obj->class_name(),
                       "'"));
    }
  }
  // Invoked unlocked: method impls read the database (and would
  // self-deadlock against a queued writer otherwise).
  return def->impl(*this, *obj);
}

agis::Result<std::vector<ObjectId>> GeoDatabase::ScanExtent(
    const std::string& class_name,
    const std::optional<geom::BoundingBox>& window) const {
  std::shared_lock lock(data_mutex_);
  auto it = extents_.find(class_name);
  if (it == extents_.end()) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  const Extent& extent = it->second;
  if (window.has_value() && !extent.geometry_attr.empty()) {
    std::vector<ObjectId> ids = extent.index->Query(*window);
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  return extent.ids;
}

agis::Result<std::vector<ObjectId>> GeoDatabase::ScanExtentAt(
    const Snapshot& snapshot, const std::string& class_name,
    const std::optional<geom::BoundingBox>& window) const {
  if (!snapshot.valid() || snapshot.database() != this) {
    return agis::Status::InvalidArgument(
        "snapshot is detached or from another database");
  }
  const uint64_t epoch = snapshot.epoch();
  std::shared_lock lock(data_mutex_);
  auto it = extents_.find(class_name);
  if (it == extents_.end()) {
    return agis::Status::NotFound(agis::StrCat("class '", class_name, "'"));
  }
  const Extent& extent = it->second;

  if (epoch == current_epoch_) {
    // Nothing written since the snapshot opened: the live extent IS
    // the snapshot's view, so the index fast path applies.
    std::vector<ObjectId> ids;
    if (window.has_value() && !extent.geometry_attr.empty()) {
      ids = extent.index->Query(*window);
    } else {
      ids = extent.ids;
    }
    // Insert-only extents are already ascending; don't pay the sort
    // unless deletes/restores perturbed the order.
    if (!std::is_sorted(ids.begin(), ids.end())) {
      std::sort(ids.begin(), ids.end());
    }
    return ids;
  }

  // Writes landed since the snapshot opened: membership is decided by
  // version visibility. Candidates are the live members plus the ids
  // deleted after the snapshot's epoch (resurrected for this view);
  // spatial filtering uses the *snapshot version's* geometry, not the
  // live index, so moved objects are found at their old location.
  std::vector<ObjectId> out;
  out.reserve(extent.ids.size());
  auto visit = [&](ObjectId id) {
    const auto chain_it = objects_.find(id);
    if (chain_it == objects_.end()) return;
    const ObjectInstance* obj = VisibleLocked(chain_it->second, epoch);
    if (obj == nullptr) return;
    if (window.has_value() && !extent.geometry_attr.empty()) {
      const Value& gv = obj->Get(extent.geometry_attr);
      if (gv.is_null() ||
          !gv.geometry_value().Bounds().Intersects(*window)) {
        return;
      }
    }
    out.push_back(id);
  };
  for (ObjectId id : extent.ids) visit(id);
  for (const auto& [dead_epoch, id] : extent.dead) {
    if (dead_epoch > epoch) visit(id);
  }
  std::sort(out.begin(), out.end());
  // Deduplicate: an id deleted and later restored appears both live
  // and on the dead list.
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const ObjectInstance* GeoDatabase::FindObject(ObjectId id) const {
  std::shared_lock lock(data_mutex_);
  return CurrentLocked(id);
}

const ObjectInstance* GeoDatabase::FindObjectAt(const Snapshot& snapshot,
                                                ObjectId id) const {
  if (!snapshot.valid() || snapshot.database() != this) return nullptr;
  std::shared_lock lock(data_mutex_);
  const auto it = objects_.find(id);
  if (it == objects_.end()) return nullptr;
  return VisibleLocked(it->second, snapshot.epoch());
}

uint64_t GeoDatabase::VersionEpochAt(const Snapshot& snapshot,
                                     ObjectId id) const {
  if (!snapshot.valid() || snapshot.database() != this) return 0;
  std::shared_lock lock(data_mutex_);
  const auto it = objects_.find(id);
  if (it == objects_.end()) return 0;
  const auto& v = it->second.versions;
  for (size_t i = v.size(); i-- > 0;) {
    if (v[i].epoch <= snapshot.epoch()) {
      return v[i].data != nullptr ? v[i].epoch : 0;  // 0 for tombstones.
    }
  }
  return 0;
}

size_t GeoDatabase::ExtentSize(const std::string& class_name) const {
  std::shared_lock lock(data_mutex_);
  auto it = extents_.find(class_name);
  return it == extents_.end() ? 0 : it->second.ids.size();
}

size_t GeoDatabase::NumObjects() const {
  std::shared_lock lock(data_mutex_);
  return live_objects_;
}

std::string GeoDatabase::GeometryAttributeOf(
    const std::string& class_name) const {
  std::shared_lock lock(data_mutex_);
  auto it = extents_.find(class_name);
  return it == extents_.end() ? "" : it->second.geometry_attr;
}

}  // namespace agis::geodb
