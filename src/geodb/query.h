#ifndef AGIS_GEODB_QUERY_H_
#define AGIS_GEODB_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "geodb/value.h"
#include "geom/bbox.h"
#include "geom/topology.h"

namespace agis::geodb {

/// Comparison operators for attribute predicates (the analysis-mode
/// building block; the exploratory mode uses them for control-area
/// filters).
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

const char* CompareOpName(CompareOp op);

/// A filter on one attribute: `attribute <op> operand`. `kContains`
/// means substring match on string attributes.
struct AttrPredicate {
  std::string attribute;
  CompareOp op = CompareOp::kEq;
  Value operand;

  std::string ToString() const;
};

/// A spatial filter: instance geometry must satisfy `relation`
/// against `target` (e.g. inside a service region).
struct SpatialFilter {
  geom::Geometry target;
  geom::TopoRelation relation = geom::TopoRelation::kIntersects;

  std::string ToString() const;
};

/// Options for the `Get_Class` primitive.
struct GetClassOptions {
  /// Also return instances of subclasses.
  bool include_subclasses = false;
  /// Restrict to instances whose geometry bbox intersects the window
  /// (the map viewport).
  std::optional<geom::BoundingBox> window;
  /// Exact spatial relation filter (refined after the index pass).
  std::optional<SpatialFilter> spatial;
  /// Attribute predicates, all of which must hold.
  std::vector<AttrPredicate> predicates;
  /// Serve repeated identical requests from the display buffer pool.
  bool use_buffer_pool = true;
  /// Truncate the result to this many instances; 0 = unlimited.
  size_t limit = 0;

  /// Deterministic cache signature of these options.
  std::string CacheKeySuffix() const;
};

/// Result of `Get_Class`.
struct ClassResult {
  std::string class_name;
  std::vector<ObjectId> ids;
  bool from_cache = false;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_QUERY_H_
