#include "geodb/query_parser.h"

#include <cctype>
#include <cstdlib>

#include "base/strutil.h"
#include "geom/wkt.h"

namespace agis::geodb {

namespace {

/// Word-level scanner; quoted strings ('...') are single tokens.
class QueryScanner {
 public:
  explicit QueryScanner(std::string_view text) : text_(text) {}

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  agis::Result<std::string> Next(const char* what) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return agis::Status::ParseError(
          agis::StrCat("expected ", what, ", got end of query"));
    }
    if (text_[pos_] == '\'') {
      ++pos_;
      const size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
      if (pos_ >= text_.size()) {
        return agis::Status::ParseError("unterminated string literal");
      }
      std::string out(text_.substr(start, pos_ - start));
      ++pos_;
      return out;
    }
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Peeks the next bare word (lower-cased) without consuming.
  std::string PeekWord() {
    const size_t saved = pos_;
    auto word = Next("word");
    pos_ = saved;
    return word.ok() ? agis::ToLower(word.value()) : "";
  }

  /// The rest of the input verbatim (for WKT payloads up to a
  /// terminating keyword).
  std::string TakeUntilKeyword(const std::vector<std::string>& stops) {
    SkipSpace();
    size_t best_end = text_.size();
    // Find the earliest occurrence of any stop keyword at a word
    // boundary.
    const std::string lowered = agis::ToLower(std::string(text_));
    for (const std::string& stop : stops) {
      size_t search = pos_;
      while (true) {
        const size_t hit = lowered.find(stop, search);
        if (hit == std::string::npos) break;
        const bool start_ok =
            hit == 0 ||
            std::isspace(static_cast<unsigned char>(lowered[hit - 1]));
        const size_t after = hit + stop.size();
        const bool end_ok =
            after >= lowered.size() ||
            std::isspace(static_cast<unsigned char>(lowered[after]));
        if (start_ok && end_ok) {
          best_end = std::min(best_end, hit);
          break;
        }
        search = hit + 1;
      }
    }
    std::string out(text_.substr(pos_, best_end - pos_));
    pos_ = best_end;
    return agis::Trim(out);
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

agis::Result<CompareOp> ParseOp(const std::string& token) {
  if (token == "=" || token == "==") return CompareOp::kEq;
  if (token == "!=" || token == "<>") return CompareOp::kNe;
  if (token == "<") return CompareOp::kLt;
  if (token == "<=") return CompareOp::kLe;
  if (token == ">") return CompareOp::kGt;
  if (token == ">=") return CompareOp::kGe;
  if (agis::EqualsIgnoreCase(token, "contains")) return CompareOp::kContains;
  return agis::Status::ParseError(
      agis::StrCat("unknown comparison operator '", token, "'"));
}

/// Literal typing: int, double, bool, else string.
Value ParseLiteral(const std::string& token, bool quoted) {
  if (!quoted) {
    if (agis::EqualsIgnoreCase(token, "true")) return Value::Bool(true);
    if (agis::EqualsIgnoreCase(token, "false")) return Value::Bool(false);
    char* end = nullptr;
    const long long as_int = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() && *end == '\0') {
      return Value::Int(as_int);
    }
    const double as_double = std::strtod(token.c_str(), &end);
    if (end != token.c_str() && *end == '\0') {
      return Value::Double(as_double);
    }
  }
  return Value::String(token);
}

bool IsQuoted(std::string_view raw_query, const std::string& token) {
  // Heuristic is unnecessary: the scanner strips quotes, so re-detect
  // by checking the raw text contains the quoted form.
  return raw_query.find("'" + token + "'") != std::string_view::npos;
}

}  // namespace

agis::Result<ParsedQuery> ParseQuery(std::string_view text,
                                     const Schema& schema) {
  QueryScanner scanner(text);
  AGIS_ASSIGN_OR_RETURN(std::string keyword, scanner.Next("'select'"));
  if (!agis::EqualsIgnoreCase(keyword, "select")) {
    return agis::Status::ParseError("query must start with 'select'");
  }
  ParsedQuery query;
  AGIS_ASSIGN_OR_RETURN(query.class_name, scanner.Next("class name"));
  const ClassDef* cls = schema.FindClass(query.class_name);
  if (cls == nullptr) {
    return agis::Status::NotFound(
        agis::StrCat("class '", query.class_name, "'"));
  }
  query.options.use_buffer_pool = false;  // Analysis queries are ad hoc.

  while (!scanner.AtEnd()) {
    AGIS_ASSIGN_OR_RETURN(std::string clause, scanner.Next("clause"));
    const std::string lowered = agis::ToLower(clause);

    if (lowered == "with") {
      AGIS_ASSIGN_OR_RETURN(std::string what, scanner.Next("'subclasses'"));
      if (!agis::EqualsIgnoreCase(what, "subclasses")) {
        return agis::Status::ParseError(
            agis::StrCat("expected 'subclasses' after 'with', got '", what,
                         "'"));
      }
      query.options.include_subclasses = true;
      continue;
    }

    if (lowered == "where" || lowered == "and") {
      AGIS_ASSIGN_OR_RETURN(std::string attr, scanner.Next("attribute"));
      if (schema.FindAttributeOf(query.class_name, attr) == nullptr) {
        return agis::Status::NotFound(
            agis::StrCat("class '", query.class_name,
                         "' has no attribute '", attr, "'"));
      }
      AGIS_ASSIGN_OR_RETURN(std::string op_token, scanner.Next("operator"));
      AGIS_ASSIGN_OR_RETURN(CompareOp op, ParseOp(op_token));
      AGIS_ASSIGN_OR_RETURN(std::string value_token, scanner.Next("value"));
      AttrPredicate predicate;
      predicate.attribute = std::move(attr);
      predicate.op = op;
      predicate.operand =
          ParseLiteral(value_token, IsQuoted(text, value_token));
      query.options.predicates.push_back(std::move(predicate));
      continue;
    }

    if (lowered == "window") {
      double coords[4];
      for (double& coord : coords) {
        AGIS_ASSIGN_OR_RETURN(std::string token,
                              scanner.Next("window coordinate"));
        char* end = nullptr;
        coord = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0') {
          return agis::Status::ParseError(
              agis::StrCat("bad window coordinate '", token, "'"));
        }
      }
      query.options.window =
          geom::BoundingBox(coords[0], coords[1], coords[2], coords[3]);
      continue;
    }

    if (lowered == "limit") {
      AGIS_ASSIGN_OR_RETURN(std::string token, scanner.Next("limit count"));
      char* end = nullptr;
      const long long n = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() || *end != '\0' || n < 0) {
        return agis::Status::ParseError(
            agis::StrCat("bad limit '", token, "'"));
      }
      query.options.limit = static_cast<size_t>(n);
      continue;
    }

    // Otherwise the clause must be a topological relation followed by
    // WKT running up to the next clause keyword.
    auto relation = geom::ParseTopoRelation(clause);
    if (relation.ok()) {
      const std::string wkt = scanner.TakeUntilKeyword(
          {"where", "and", "window", "limit", "with"});
      if (wkt.empty()) {
        return agis::Status::ParseError(
            agis::StrCat("expected WKT after '", clause, "'"));
      }
      AGIS_ASSIGN_OR_RETURN(geom::Geometry target, geom::ParseWkt(wkt));
      query.options.spatial =
          SpatialFilter{std::move(target), relation.value()};
      continue;
    }
    return agis::Status::ParseError(
        agis::StrCat("unknown clause '", clause, "'"));
  }
  return query;
}

}  // namespace agis::geodb
