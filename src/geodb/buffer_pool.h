#ifndef AGIS_GEODB_BUFFER_POOL_H_
#define AGIS_GEODB_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "geodb/value.h"

namespace agis::geodb {

/// A cached query result: the object ids a display request produced,
/// with the byte charge the pool accounts for.
struct BufferSlice {
  std::vector<ObjectId> ids;
  size_t charge_bytes = 0;
};

/// Cumulative statistics; readable at any time, reset on demand.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t inserted_bytes = 0;

  double HitRatio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// LRU display-buffer manager.
///
/// The paper singles out buffer management as a DBMS-style problem the
/// GIS interface must solve: query results feeding map/list displays
/// are large and users revisit the same regions while browsing. This
/// pool caches `BufferSlice`s keyed by a query signature under a byte
/// budget with least-recently-used eviction (experiment C4).
class BufferPool {
 public:
  explicit BufferPool(size_t capacity_bytes);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the cached slice for `key`, or nullptr on miss. A hit
  /// refreshes recency.
  std::shared_ptr<const BufferSlice> Get(const std::string& key);

  /// Inserts (or replaces) the slice under `key`, evicting LRU entries
  /// until the budget holds. Slices larger than the whole budget are
  /// not cached.
  void Put(const std::string& key, BufferSlice slice);

  /// Removes every cached slice whose key begins with `prefix`;
  /// returns the number removed. The database invalidates
  /// "class/<name>/..." prefixes on writes to that class.
  size_t InvalidatePrefix(const std::string& prefix);

  void Clear();

  size_t used_bytes() const { return used_bytes_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t entry_count() const { return map_.size(); }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

 private:
  struct Node {
    std::string key;
    std::shared_ptr<const BufferSlice> slice;
  };

  void EvictUntilFits(size_t incoming);

  size_t capacity_bytes_;
  size_t used_bytes_ = 0;
  std::list<Node> lru_;  // Front = most recent.
  std::unordered_map<std::string, std::list<Node>::iterator> map_;
  BufferPoolStats stats_;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_BUFFER_POOL_H_
