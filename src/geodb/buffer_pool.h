#ifndef AGIS_GEODB_BUFFER_POOL_H_
#define AGIS_GEODB_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "geodb/value.h"
#include "geom/bbox.h"

namespace agis::geodb {

/// A cached query result: the object ids a display request produced,
/// with the byte charge the pool accounts for, plus the query shape
/// the result was computed under. The shape fields let the database's
/// per-object invalidation decide whether a *write it knows about*
/// can change this slice's membership without re-running the query:
/// a slice whose viewport excludes the written object's geometry, or
/// whose predicates don't mention the written attribute, survives.
struct BufferSlice {
  std::vector<ObjectId> ids;  // Ascending (GetClass result order).
  size_t charge_bytes = 0;

  // ---- Query-shape metadata (filled by GetClass) -------------------------
  /// Viewport window of the query, when it had one.
  std::optional<geom::BoundingBox> window;
  /// Attributes named by the query's predicates (empty = no predicates).
  std::vector<std::string> predicate_attrs;
  /// Whether the query had an exact spatial-relation filter (its target
  /// is not retained, so geometry writes conservatively drop the slice).
  bool has_spatial = false;
  /// Whether subclass instances were included (ancestor-class slices
  /// without this flag are immune to subclass writes).
  bool include_subclasses = false;

  /// Whether the slice's id list contains `id` (binary search; ids are
  /// ascending).
  bool Contains(ObjectId id) const;
};

/// Cumulative statistics; aggregated over shards on read.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t inserted_bytes = 0;
  /// Entries removed by InvalidatePrefix / InvalidateMatching.
  uint64_t invalidated = 0;
  /// Entries a metadata predicate examined and kept (the savings the
  /// per-object invalidation scheme is after).
  uint64_t invalidation_survivals = 0;

  double HitRatio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Sharded LRU display-buffer manager.
///
/// The paper singles out buffer management as a DBMS-style problem the
/// GIS interface must solve: query results feeding map/list displays
/// are large and users revisit the same regions while browsing. This
/// pool caches `BufferSlice`s keyed by a query signature under a byte
/// budget with least-recently-used eviction (experiment C4).
///
/// Thread safety: every operation is safe to call concurrently. The
/// key space is hash-partitioned into `num_shards` independent LRUs,
/// each behind its own mutex, so concurrent Get/Put on different keys
/// rarely contend — this is what lets the GetCustomizationBatch /
/// parallel-scan thread pools hit the cache from many workers. The
/// byte budget is split evenly across shards; eviction is LRU *per
/// shard* (global recency order is only exact with one shard, which
/// is the default for direct construction and what the model-based
/// property test pins down).
///
/// Key lookup is a per-shard ordered map, so prefix invalidation walks
/// only the contiguous key range `[prefix, prefix+1)` of each shard —
/// O(log n + matches) per shard — instead of scanning the whole pool.
class BufferPool {
 public:
  /// `num_shards` is clamped to at least 1. Each shard owns
  /// `capacity_bytes / num_shards` of the budget; slices larger than
  /// one shard's budget are never cached.
  explicit BufferPool(size_t capacity_bytes, size_t num_shards = 1);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the cached slice for `key`, or nullptr on miss. A hit
  /// refreshes recency within the key's shard.
  std::shared_ptr<const BufferSlice> Get(const std::string& key);

  /// Inserts (or replaces) the slice under `key`, evicting LRU entries
  /// of its shard until the budget holds. Replacement accounts bytes
  /// exactly: the old entry's charge is released before the new one is
  /// added. Slices larger than the shard budget are not cached (a
  /// replaced entry stays dropped).
  void Put(const std::string& key, BufferSlice slice);

  /// Removes every cached slice whose key begins with `prefix`;
  /// returns the number removed. Touches only keys in the prefix's
  /// range of each shard. Concurrent Put of a matching key that starts
  /// after the walk passed its shard may survive (callers that need a
  /// fence must serialize writes, which the database's writer lock
  /// does).
  size_t InvalidatePrefix(const std::string& prefix);

  /// Selective form: removes the slices under `prefix` for which
  /// `drop` returns true (the database passes a predicate built from
  /// the write it is applying, so unaffected slices survive). The
  /// predicate runs under the shard lock — keep it cheap and
  /// non-reentrant.
  size_t InvalidateMatching(const std::string& prefix,
                            const std::function<bool(const BufferSlice&)>& drop);

  void Clear();

  size_t used_bytes() const;
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t entry_count() const;
  size_t num_shards() const { return shards_.size(); }
  /// Which shard `key` lives in; exposed so tests can model per-shard
  /// LRU behavior exactly.
  size_t ShardOf(const std::string& key) const;

  BufferPoolStats stats() const;
  void ResetStats();

 private:
  struct Node {
    std::string key;
    std::shared_ptr<const BufferSlice> slice;
  };

  struct Shard {
    mutable std::mutex mutex;
    size_t capacity = 0;
    size_t used = 0;
    std::list<Node> lru;  // Front = most recent.
    /// Ordered by key so a prefix names a contiguous range.
    std::map<std::string, std::list<Node>::iterator> map;
    BufferPoolStats stats;
  };

  /// Requires `shard->mutex`.
  static void EvictUntilFits(Shard* shard, size_t incoming);

  size_t capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_BUFFER_POOL_H_
