#ifndef AGIS_GEODB_BUFFER_POOL_H_
#define AGIS_GEODB_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "geodb/value.h"

namespace agis::geodb {

/// A cached query result: the object ids a display request produced,
/// with the byte charge the pool accounts for.
struct BufferSlice {
  std::vector<ObjectId> ids;
  size_t charge_bytes = 0;
};

/// Cumulative statistics; aggregated over shards on read.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t inserted_bytes = 0;

  double HitRatio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Sharded LRU display-buffer manager.
///
/// The paper singles out buffer management as a DBMS-style problem the
/// GIS interface must solve: query results feeding map/list displays
/// are large and users revisit the same regions while browsing. This
/// pool caches `BufferSlice`s keyed by a query signature under a byte
/// budget with least-recently-used eviction (experiment C4).
///
/// Thread safety: every operation is safe to call concurrently. The
/// key space is hash-partitioned into `num_shards` independent LRUs,
/// each behind its own mutex, so concurrent Get/Put on different keys
/// rarely contend — this is what lets the GetCustomizationBatch /
/// parallel-scan thread pools hit the cache from many workers. The
/// byte budget is split evenly across shards; eviction is LRU *per
/// shard* (global recency order is only exact with one shard, which
/// is the default for direct construction and what the model-based
/// property test pins down).
class BufferPool {
 public:
  /// `num_shards` is clamped to at least 1. Each shard owns
  /// `capacity_bytes / num_shards` of the budget; slices larger than
  /// one shard's budget are never cached.
  explicit BufferPool(size_t capacity_bytes, size_t num_shards = 1);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the cached slice for `key`, or nullptr on miss. A hit
  /// refreshes recency within the key's shard.
  std::shared_ptr<const BufferSlice> Get(const std::string& key);

  /// Inserts (or replaces) the slice under `key`, evicting LRU entries
  /// of its shard until the budget holds. Replacement accounts bytes
  /// exactly: the old entry's charge is released before the new one is
  /// added. Slices larger than the shard budget are not cached (a
  /// replaced entry stays dropped).
  void Put(const std::string& key, BufferSlice slice);

  /// Removes every cached slice whose key begins with `prefix`;
  /// returns the number removed. The database invalidates
  /// "class/<name>/..." prefixes on writes to that class. Walks every
  /// shard; concurrent Put of a matching key that starts after the
  /// walk passed its shard may survive (callers that need a fence must
  /// serialize writes, which the database's writer lock does).
  size_t InvalidatePrefix(const std::string& prefix);

  void Clear();

  size_t used_bytes() const;
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t entry_count() const;
  size_t num_shards() const { return shards_.size(); }
  /// Which shard `key` lives in; exposed so tests can model per-shard
  /// LRU behavior exactly.
  size_t ShardOf(const std::string& key) const;

  BufferPoolStats stats() const;
  void ResetStats();

 private:
  struct Node {
    std::string key;
    std::shared_ptr<const BufferSlice> slice;
  };

  struct Shard {
    mutable std::mutex mutex;
    size_t capacity = 0;
    size_t used = 0;
    std::list<Node> lru;  // Front = most recent.
    std::unordered_map<std::string, std::list<Node>::iterator> map;
    BufferPoolStats stats;
  };

  /// Requires `shard->mutex`.
  static void EvictUntilFits(Shard* shard, size_t incoming);

  size_t capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace agis::geodb

#endif  // AGIS_GEODB_BUFFER_POOL_H_
