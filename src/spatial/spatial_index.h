#ifndef AGIS_SPATIAL_SPATIAL_INDEX_H_
#define AGIS_SPATIAL_SPATIAL_INDEX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "geom/bbox.h"
#include "geom/point.h"

namespace agis::spatial {

/// Opaque handle an index associates with a bounding box. The geodb
/// uses object ids.
using EntryId = uint64_t;

/// One (id, box) pair for bulk construction.
struct IndexEntry {
  EntryId id;
  geom::BoundingBox box;
};

/// Structural quality of an index after (bulk) construction; the
/// geodb surfaces these per class extent in DatabaseStats. Flat
/// structures (grid, linear scan) report height 1 and full fill.
struct IndexQuality {
  size_t height = 1;
  size_t nodes = 1;
  /// Mean entries-per-node over capacity, in [0, 1]; 1 when the
  /// structure has no per-node capacity.
  double avg_fill = 1.0;
};

/// Abstract rectangle index used by class extents for the spatial
/// selections behind Class-set presentation areas.
///
/// Implementations: `LinearScanIndex` (baseline), `RTree`, `GridIndex`.
/// All return candidate sets based on bounding boxes; exact geometry
/// filtering is the caller's job (standard filter/refine split).
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Adds an entry. Duplicate ids are allowed by the interface but the
  /// geodb never inserts one twice.
  virtual void Insert(EntryId id, const geom::BoundingBox& box) = 0;

  /// Loads `entries` into the index in one pass. Must only be called
  /// on an empty index. The base implementation inserts one entry at
  /// a time; implementations with a cheaper construction path (the
  /// R-tree's sort-tile-recursive packing) override it.
  virtual void BulkLoad(std::vector<IndexEntry> entries);

  /// Structural quality of the current tree/structure.
  virtual IndexQuality Quality() const { return IndexQuality(); }

  /// Removes the entry with `id`; returns false when absent.
  virtual bool Remove(EntryId id) = 0;

  /// Ids whose boxes intersect `range` (unordered).
  virtual std::vector<EntryId> Query(const geom::BoundingBox& range) const = 0;

  /// Ids whose boxes contain `p` (unordered).
  virtual std::vector<EntryId> QueryPoint(const geom::Point& p) const = 0;

  /// The `k` entries with smallest box distance to `p`, nearest first.
  virtual std::vector<EntryId> Nearest(const geom::Point& p,
                                       size_t k) const = 0;

  virtual size_t size() const = 0;
  virtual std::string Name() const = 0;
};

/// Shortest distance from `p` to `box` (0 when inside).
double BoxDistance(const geom::Point& p, const geom::BoundingBox& box);

/// Baseline index: a flat vector scanned on every query. Correct by
/// construction; the reference implementation the property tests
/// compare R-tree and grid results against, and the "no index"
/// baseline in bench C7.
class LinearScanIndex : public SpatialIndex {
 public:
  void Insert(EntryId id, const geom::BoundingBox& box) override;
  bool Remove(EntryId id) override;
  std::vector<EntryId> Query(const geom::BoundingBox& range) const override;
  std::vector<EntryId> QueryPoint(const geom::Point& p) const override;
  std::vector<EntryId> Nearest(const geom::Point& p, size_t k) const override;
  size_t size() const override { return entries_.size(); }
  std::string Name() const override { return "linear_scan"; }

 private:
  std::vector<std::pair<EntryId, geom::BoundingBox>> entries_;
};

}  // namespace agis::spatial

#endif  // AGIS_SPATIAL_SPATIAL_INDEX_H_
