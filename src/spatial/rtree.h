#ifndef AGIS_SPATIAL_RTREE_H_
#define AGIS_SPATIAL_RTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "spatial/spatial_index.h"

namespace agis::spatial {

/// Guttman R-tree with quadratic split.
///
/// Deletion uses the classic condense-tree strategy: underflowing
/// nodes are dissolved and their surviving entries reinserted. Fanout
/// is configurable for the ablation bench (C7).
class RTree : public SpatialIndex {
 public:
  /// `max_entries` must be >= 4; `min_entries` defaults to 40% fill.
  explicit RTree(size_t max_entries = 8);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  ~RTree() override;

  void Insert(EntryId id, const geom::BoundingBox& box) override;

  /// Sort-tile-recursive (STR) bulk construction: entries are sorted
  /// into vertical slices by x-center, each slice sorted by y-center
  /// and packed into full leaves; upper levels pack the same way until
  /// one node remains. Produces a tree with ~100% node fill and far
  /// better box clustering than repeated Insert, in O(n log n). The
  /// tail of each packing level is rebalanced so every node respects
  /// the minimum fill (CheckInvariants holds afterwards). Must only be
  /// called on an empty tree.
  void BulkLoad(std::vector<IndexEntry> entries) override;

  IndexQuality Quality() const override;

  bool Remove(EntryId id) override;
  std::vector<EntryId> Query(const geom::BoundingBox& range) const override;
  std::vector<EntryId> QueryPoint(const geom::Point& p) const override;
  std::vector<EntryId> Nearest(const geom::Point& p, size_t k) const override;
  size_t size() const override { return size_; }
  std::string Name() const override { return "rtree"; }

  /// Tree height (1 for a single leaf); exposed for tests.
  size_t Height() const;

  /// Validates structural invariants (bbox coverage, fill factors,
  /// uniform leaf depth). Returns a failed status describing the first
  /// violation. Used by property tests.
  agis::Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry;

  /// Packs `nodes` (all of one level) into parent nodes with STR
  /// tiling; returns the parent level.
  std::vector<std::unique_ptr<Node>> PackLevel(
      std::vector<std::unique_ptr<Node>> nodes);

  Node* ChooseLeaf(Node* node, const geom::BoundingBox& box) const;
  void SplitNode(Node* node, std::unique_ptr<Node>* new_node_out);
  void AdjustTreeAfterInsert(Node* node);
  Node* FindLeaf(Node* node, EntryId id, const geom::BoundingBox& box) const;
  void CondenseTree(Node* leaf);
  void RecomputeBox(Node* node);
  void ReinsertSubtree(Node* node);

  size_t max_entries_;
  size_t min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace agis::spatial

#endif  // AGIS_SPATIAL_RTREE_H_
