#ifndef AGIS_SPATIAL_GRID_INDEX_H_
#define AGIS_SPATIAL_GRID_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "spatial/spatial_index.h"

namespace agis::spatial {

/// Uniform grid over a fixed world extent. Each entry is registered in
/// every cell its box overlaps; queries collect candidate cells and
/// de-duplicate. Boxes outside the world extent are clamped to the
/// border cells, so correctness does not depend on the extent guess.
class GridIndex : public SpatialIndex {
 public:
  /// `world` must be non-empty; `cells_per_side` >= 1.
  GridIndex(const geom::BoundingBox& world, size_t cells_per_side);

  void Insert(EntryId id, const geom::BoundingBox& box) override;
  bool Remove(EntryId id) override;
  std::vector<EntryId> Query(const geom::BoundingBox& range) const override;
  std::vector<EntryId> QueryPoint(const geom::Point& p) const override;
  std::vector<EntryId> Nearest(const geom::Point& p, size_t k) const override;
  size_t size() const override { return boxes_.size(); }
  std::string Name() const override { return "grid"; }

 private:
  struct CellRange {
    size_t x0, x1, y0, y1;  // Inclusive cell coordinates.
  };

  CellRange CellsFor(const geom::BoundingBox& box) const;
  size_t CellIndex(size_t cx, size_t cy) const { return cy * side_ + cx; }

  geom::BoundingBox world_;
  size_t side_;
  double cell_w_;
  double cell_h_;
  std::vector<std::vector<EntryId>> cells_;
  std::unordered_map<EntryId, geom::BoundingBox> boxes_;
};

}  // namespace agis::spatial

#endif  // AGIS_SPATIAL_GRID_INDEX_H_
