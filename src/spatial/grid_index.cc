#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"

namespace agis::spatial {

GridIndex::GridIndex(const geom::BoundingBox& world, size_t cells_per_side)
    : world_(world), side_(std::max<size_t>(cells_per_side, 1)) {
  AGIS_CHECK(!world.empty()) << "GridIndex needs a non-empty world extent";
  cell_w_ = world_.Width() / static_cast<double>(side_);
  cell_h_ = world_.Height() / static_cast<double>(side_);
  if (cell_w_ <= 0) cell_w_ = 1.0;
  if (cell_h_ <= 0) cell_h_ = 1.0;
  cells_.resize(side_ * side_);
}

GridIndex::CellRange GridIndex::CellsFor(const geom::BoundingBox& box) const {
  auto clamp_cell = [this](double v, double origin, double cell) {
    const double idx = std::floor((v - origin) / cell);
    return static_cast<size_t>(
        std::clamp(idx, 0.0, static_cast<double>(side_ - 1)));
  };
  return CellRange{
      clamp_cell(box.min_x, world_.min_x, cell_w_),
      clamp_cell(box.max_x, world_.min_x, cell_w_),
      clamp_cell(box.min_y, world_.min_y, cell_h_),
      clamp_cell(box.max_y, world_.min_y, cell_h_),
  };
}

void GridIndex::Insert(EntryId id, const geom::BoundingBox& box) {
  boxes_[id] = box;
  const CellRange r = CellsFor(box);
  for (size_t cy = r.y0; cy <= r.y1; ++cy) {
    for (size_t cx = r.x0; cx <= r.x1; ++cx) {
      cells_[CellIndex(cx, cy)].push_back(id);
    }
  }
}

bool GridIndex::Remove(EntryId id) {
  auto it = boxes_.find(id);
  if (it == boxes_.end()) return false;
  const CellRange r = CellsFor(it->second);
  for (size_t cy = r.y0; cy <= r.y1; ++cy) {
    for (size_t cx = r.x0; cx <= r.x1; ++cx) {
      auto& cell = cells_[CellIndex(cx, cy)];
      cell.erase(std::remove(cell.begin(), cell.end(), id), cell.end());
    }
  }
  boxes_.erase(it);
  return true;
}

std::vector<EntryId> GridIndex::Query(const geom::BoundingBox& range) const {
  std::vector<EntryId> out;
  const CellRange r = CellsFor(range);
  for (size_t cy = r.y0; cy <= r.y1; ++cy) {
    for (size_t cx = r.x0; cx <= r.x1; ++cx) {
      for (EntryId id : cells_[CellIndex(cx, cy)]) {
        if (boxes_.at(id).Intersects(range)) out.push_back(id);
      }
    }
  }
  // Entries spanning several candidate cells appear once per cell.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<EntryId> GridIndex::QueryPoint(const geom::Point& p) const {
  geom::BoundingBox pt_box(p.x, p.y, p.x, p.y);
  std::vector<EntryId> out;
  const CellRange r = CellsFor(pt_box);
  for (size_t cy = r.y0; cy <= r.y1; ++cy) {
    for (size_t cx = r.x0; cx <= r.x1; ++cx) {
      for (EntryId id : cells_[CellIndex(cx, cy)]) {
        if (boxes_.at(id).Contains(p)) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<EntryId> GridIndex::Nearest(const geom::Point& p, size_t k) const {
  // Grid nearest-neighbor via expanding ring search would complicate
  // the code for little benefit here; fall back to scoring all boxes
  // (the map already holds them).
  std::vector<std::pair<double, EntryId>> scored;
  scored.reserve(boxes_.size());
  for (const auto& [id, box] : boxes_) {
    scored.emplace_back(BoxDistance(p, box), id);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<EntryId> out;
  for (size_t i = 0; i < scored.size() && i < k; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace agis::spatial
