#include "spatial/spatial_index.h"

#include <algorithm>
#include <cmath>

namespace agis::spatial {

void SpatialIndex::BulkLoad(std::vector<IndexEntry> entries) {
  for (const IndexEntry& e : entries) Insert(e.id, e.box);
}

double BoxDistance(const geom::Point& p, const geom::BoundingBox& box) {
  if (box.empty()) return std::numeric_limits<double>::infinity();
  const double dx =
      std::max({box.min_x - p.x, 0.0, p.x - box.max_x});
  const double dy =
      std::max({box.min_y - p.y, 0.0, p.y - box.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

void LinearScanIndex::Insert(EntryId id, const geom::BoundingBox& box) {
  entries_.emplace_back(id, box);
}

bool LinearScanIndex::Remove(EntryId id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == id) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<EntryId> LinearScanIndex::Query(
    const geom::BoundingBox& range) const {
  std::vector<EntryId> out;
  for (const auto& [id, box] : entries_) {
    if (box.Intersects(range)) out.push_back(id);
  }
  return out;
}

std::vector<EntryId> LinearScanIndex::QueryPoint(const geom::Point& p) const {
  std::vector<EntryId> out;
  for (const auto& [id, box] : entries_) {
    if (box.Contains(p)) out.push_back(id);
  }
  return out;
}

std::vector<EntryId> LinearScanIndex::Nearest(const geom::Point& p,
                                              size_t k) const {
  std::vector<std::pair<double, EntryId>> scored;
  scored.reserve(entries_.size());
  for (const auto& [id, box] : entries_) {
    scored.emplace_back(BoxDistance(p, box), id);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<EntryId> out;
  for (size_t i = 0; i < scored.size() && i < k; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace agis::spatial
