#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "base/strutil.h"

namespace agis::spatial {

struct RTree::Entry {
  EntryId id;
  geom::BoundingBox box;
};

struct RTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}

  bool is_leaf;
  geom::BoundingBox box;
  Node* parent = nullptr;
  std::vector<Entry> entries;                    // Populated when leaf.
  std::vector<std::unique_ptr<Node>> children;   // Populated when internal.

  size_t Count() const { return is_leaf ? entries.size() : children.size(); }
};

namespace {

/// Quadratic-split seed selection over a list of boxes: the pair that
/// wastes the most area when grouped together.
std::pair<size_t, size_t> PickSeeds(const std::vector<geom::BoundingBox>& boxes) {
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < boxes.size(); ++i) {
    for (size_t j = i + 1; j < boxes.size(); ++j) {
      const double dead = geom::BoundingBox::Union(boxes[i], boxes[j]).Area() -
                          boxes[i].Area() - boxes[j].Area();
      if (dead > worst) {
        worst = dead;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  return {seed_a, seed_b};
}

/// Assigns each box index to group 0 or 1 using Guttman's quadratic
/// PickNext, honoring the minimum fill `min_fill`.
std::vector<int> QuadraticPartition(const std::vector<geom::BoundingBox>& boxes,
                                    size_t min_fill) {
  const size_t n = boxes.size();
  std::vector<int> group(n, -1);
  auto [sa, sb] = PickSeeds(boxes);
  group[sa] = 0;
  group[sb] = 1;
  geom::BoundingBox cover[2] = {boxes[sa], boxes[sb]};
  size_t count[2] = {1, 1};
  size_t assigned = 2;
  while (assigned < n) {
    // Force-assign when a group must take all remaining to reach fill.
    const size_t remaining = n - assigned;
    for (int g = 0; g < 2; ++g) {
      if (count[g] + remaining == min_fill) {
        for (size_t i = 0; i < n; ++i) {
          if (group[i] < 0) {
            group[i] = g;
            cover[g].Expand(boxes[i]);
            ++count[g];
            ++assigned;
          }
        }
        return group;
      }
    }
    // PickNext: the box with the greatest preference difference.
    size_t best = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (group[i] >= 0) continue;
      const double d0 = geom::BoundingBox::EnlargementArea(cover[0], boxes[i]);
      const double d1 = geom::BoundingBox::EnlargementArea(cover[1], boxes[i]);
      const double diff = std::fabs(d0 - d1);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    const double d0 = geom::BoundingBox::EnlargementArea(cover[0], boxes[best]);
    const double d1 = geom::BoundingBox::EnlargementArea(cover[1], boxes[best]);
    int g;
    if (d0 < d1) {
      g = 0;
    } else if (d1 < d0) {
      g = 1;
    } else {
      g = cover[0].Area() <= cover[1].Area() ? 0 : 1;
    }
    group[best] = g;
    cover[g].Expand(boxes[best]);
    ++count[g];
    ++assigned;
  }
  return group;
}

}  // namespace

RTree::RTree(size_t max_entries)
    : max_entries_(std::max<size_t>(max_entries, 4)),
      min_entries_(std::max<size_t>(max_entries_ * 2 / 5, 2)),
      root_(std::make_unique<Node>(/*leaf=*/true)) {}

RTree::~RTree() = default;

RTree::Node* RTree::ChooseLeaf(Node* node, const geom::BoundingBox& box) const {
  while (!node->is_leaf) {
    Node* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (const auto& child : node->children) {
      const double enlargement =
          geom::BoundingBox::EnlargementArea(child->box, box);
      const double area = child->box.Area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best_enlargement = enlargement;
        best_area = area;
        best = child.get();
      }
    }
    node = best;
  }
  return node;
}

void RTree::RecomputeBox(Node* node) {
  node->box = geom::BoundingBox();
  if (node->is_leaf) {
    for (const Entry& e : node->entries) node->box.Expand(e.box);
  } else {
    for (const auto& c : node->children) node->box.Expand(c->box);
  }
}

void RTree::SplitNode(Node* node, std::unique_ptr<Node>* new_node_out) {
  auto sibling = std::make_unique<Node>(node->is_leaf);
  std::vector<geom::BoundingBox> boxes;
  if (node->is_leaf) {
    for (const Entry& e : node->entries) boxes.push_back(e.box);
    const std::vector<int> group = QuadraticPartition(boxes, min_entries_);
    std::vector<Entry> keep;
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (group[i] == 0) {
        keep.push_back(node->entries[i]);
      } else {
        sibling->entries.push_back(node->entries[i]);
      }
    }
    node->entries = std::move(keep);
  } else {
    for (const auto& c : node->children) boxes.push_back(c->box);
    const std::vector<int> group = QuadraticPartition(boxes, min_entries_);
    std::vector<std::unique_ptr<Node>> keep;
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (group[i] == 0) {
        keep.push_back(std::move(node->children[i]));
      } else {
        node->children[i]->parent = sibling.get();
        sibling->children.push_back(std::move(node->children[i]));
      }
    }
    node->children = std::move(keep);
  }
  RecomputeBox(node);
  RecomputeBox(sibling.get());
  *new_node_out = std::move(sibling);
}

void RTree::Insert(EntryId id, const geom::BoundingBox& box) {
  Node* leaf = ChooseLeaf(root_.get(), box);
  leaf->entries.push_back(Entry{id, box});
  // Grow covering boxes along the path.
  for (Node* n = leaf; n != nullptr; n = n->parent) n->box.Expand(box);
  // Handle overflow, propagating splits upward.
  Node* node = leaf;
  while (node != nullptr && node->Count() > max_entries_) {
    std::unique_ptr<Node> sibling;
    SplitNode(node, &sibling);
    if (node == root_.get()) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      sibling->parent = new_root.get();
      root_->parent = new_root.get();
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(sibling));
      RecomputeBox(new_root.get());
      root_ = std::move(new_root);
      break;
    }
    Node* parent = node->parent;
    sibling->parent = parent;
    parent->children.push_back(std::move(sibling));
    RecomputeBox(parent);
    node = parent;
  }
  ++size_;
}

namespace {

double CenterX(const geom::BoundingBox& b) { return (b.min_x + b.max_x) / 2; }
double CenterY(const geom::BoundingBox& b) { return (b.min_y + b.max_y) / 2; }

/// Number of vertical slices STR uses for `count` items at `fanout`.
size_t StrSliceWidth(size_t count, size_t fanout) {
  const size_t pages = (count + fanout - 1) / fanout;
  const size_t slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(pages))));
  return slices * fanout;  // Items per slice.
}

}  // namespace

std::vector<std::unique_ptr<RTree::Node>> RTree::PackLevel(
    std::vector<std::unique_ptr<Node>> nodes) {
  const size_t slice_width = StrSliceWidth(nodes.size(), max_entries_);
  std::sort(nodes.begin(), nodes.end(), [](const auto& a, const auto& b) {
    return CenterX(a->box) < CenterX(b->box);
  });
  std::vector<std::unique_ptr<Node>> parents;
  for (size_t s = 0; s < nodes.size(); s += slice_width) {
    const size_t slice_end = std::min(s + slice_width, nodes.size());
    std::sort(nodes.begin() + s, nodes.begin() + slice_end,
              [](const auto& a, const auto& b) {
                return CenterY(a->box) < CenterY(b->box);
              });
    for (size_t g = s; g < slice_end; g += max_entries_) {
      const size_t group_end = std::min(g + max_entries_, slice_end);
      auto parent = std::make_unique<Node>(/*leaf=*/false);
      for (size_t i = g; i < group_end; ++i) {
        nodes[i]->parent = parent.get();
        parent->children.push_back(std::move(nodes[i]));
      }
      RecomputeBox(parent.get());
      parents.push_back(std::move(parent));
    }
  }
  // The final parent may underflow the minimum fill; rebalance with
  // its (full) predecessor so both respect it.
  if (parents.size() >= 2) {
    Node* last = parents.back().get();
    Node* prev = parents[parents.size() - 2].get();
    while (last->children.size() < min_entries_) {
      std::unique_ptr<Node> moved = std::move(prev->children.back());
      prev->children.pop_back();
      moved->parent = last;
      last->children.push_back(std::move(moved));
    }
    RecomputeBox(prev);
    RecomputeBox(last);
  }
  return parents;
}

void RTree::BulkLoad(std::vector<IndexEntry> entries) {
  // BulkLoad requires an empty tree; degrade gracefully otherwise.
  if (size_ != 0) {
    for (const IndexEntry& e : entries) Insert(e.id, e.box);
    return;
  }
  const size_t n = entries.size();
  if (n <= max_entries_) {
    for (const IndexEntry& e : entries) {
      root_->entries.push_back(Entry{e.id, e.box});
    }
    RecomputeBox(root_.get());
    size_ = n;
    return;
  }

  // Tile entries into full leaves.
  const size_t slice_width = StrSliceWidth(n, max_entries_);
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return CenterX(a.box) < CenterX(b.box);
            });
  std::vector<std::unique_ptr<Node>> leaves;
  for (size_t s = 0; s < n; s += slice_width) {
    const size_t slice_end = std::min(s + slice_width, n);
    std::sort(entries.begin() + s, entries.begin() + slice_end,
              [](const IndexEntry& a, const IndexEntry& b) {
                return CenterY(a.box) < CenterY(b.box);
              });
    for (size_t g = s; g < slice_end; g += max_entries_) {
      const size_t group_end = std::min(g + max_entries_, slice_end);
      auto leaf = std::make_unique<Node>(/*leaf=*/true);
      for (size_t i = g; i < group_end; ++i) {
        leaf->entries.push_back(Entry{entries[i].id, entries[i].box});
      }
      RecomputeBox(leaf.get());
      leaves.push_back(std::move(leaf));
    }
  }
  if (leaves.size() >= 2) {
    Node* last = leaves.back().get();
    Node* prev = leaves[leaves.size() - 2].get();
    while (last->entries.size() < min_entries_) {
      last->entries.push_back(prev->entries.back());
      prev->entries.pop_back();
    }
    RecomputeBox(prev);
    RecomputeBox(last);
  }

  // Pack upward until one level fits under a single root.
  std::vector<std::unique_ptr<Node>> level = std::move(leaves);
  while (level.size() > max_entries_) {
    level = PackLevel(std::move(level));
  }
  if (level.size() == 1) {
    root_ = std::move(level.front());
    root_->parent = nullptr;
  } else {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    for (auto& child : level) {
      child->parent = new_root.get();
      new_root->children.push_back(std::move(child));
    }
    RecomputeBox(new_root.get());
    root_ = std::move(new_root);
  }
  size_ = n;
}

IndexQuality RTree::Quality() const {
  IndexQuality q;
  q.height = Height();
  q.nodes = 0;
  size_t slots = 0;
  size_t filled = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++q.nodes;
    slots += max_entries_;
    filled += node->Count();
    if (!node->is_leaf) {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  q.avg_fill = slots == 0 ? 0.0
                          : static_cast<double>(filled) /
                                static_cast<double>(slots);
  return q;
}

RTree::Node* RTree::FindLeaf(Node* node, EntryId id,
                             const geom::BoundingBox& box) const {
  if (node->is_leaf) {
    for (const Entry& e : node->entries) {
      if (e.id == id) return node;
    }
    return nullptr;
  }
  for (const auto& child : node->children) {
    if (child->box.Intersects(box)) {
      Node* found = FindLeaf(child.get(), id, box);
      if (found != nullptr) return found;
    }
  }
  return nullptr;
}

void RTree::ReinsertSubtree(Node* node) {
  if (node->is_leaf) {
    for (const Entry& e : node->entries) {
      Insert(e.id, e.box);
      --size_;  // Insert counted it again; net size is unchanged.
    }
    return;
  }
  for (const auto& child : node->children) ReinsertSubtree(child.get());
}

void RTree::CondenseTree(Node* leaf) {
  std::vector<std::unique_ptr<Node>> orphans;
  Node* node = leaf;
  while (node != root_.get()) {
    Node* parent = node->parent;
    if (node->Count() < min_entries_) {
      // Detach this node; its surviving entries get reinserted.
      auto& siblings = parent->children;
      for (auto it = siblings.begin(); it != siblings.end(); ++it) {
        if (it->get() == node) {
          orphans.push_back(std::move(*it));
          siblings.erase(it);
          break;
        }
      }
    } else {
      RecomputeBox(node);
    }
    node = parent;
  }
  RecomputeBox(root_.get());
  for (const auto& orphan : orphans) ReinsertSubtree(orphan.get());
  // Shrink the root when it became a unary internal node.
  while (!root_->is_leaf && root_->children.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->children.front());
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (!root_->is_leaf && root_->children.empty()) {
    root_ = std::make_unique<Node>(/*leaf=*/true);
  }
}

bool RTree::Remove(EntryId id) {
  // The caller doesn't pass the box, so locate by id with a full
  // search fallback; typical callers delete existing entries, so the
  // box-guided search (via stored entry boxes) happens inside FindLeaf.
  Node* leaf = FindLeaf(root_.get(), id, root_->box);
  if (leaf == nullptr) return false;
  auto& entries = leaf->entries;
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->id == id) {
      entries.erase(it);
      break;
    }
  }
  --size_;
  CondenseTree(leaf);
  return true;
}

std::vector<EntryId> RTree::Query(const geom::BoundingBox& range) const {
  std::vector<EntryId> out;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->box.Intersects(range)) continue;
    if (node->is_leaf) {
      for (const Entry& e : node->entries) {
        if (e.box.Intersects(range)) out.push_back(e.id);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return out;
}

std::vector<EntryId> RTree::QueryPoint(const geom::Point& p) const {
  std::vector<EntryId> out;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->box.Contains(p)) continue;
    if (node->is_leaf) {
      for (const Entry& e : node->entries) {
        if (e.box.Contains(p)) out.push_back(e.id);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return out;
}

std::vector<EntryId> RTree::Nearest(const geom::Point& p, size_t k) const {
  // Best-first search over nodes and entries keyed by box distance.
  struct QueueItem {
    double dist;
    const Node* node;   // nullptr when this is an entry.
    EntryId id;
    bool operator>(const QueueItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push({BoxDistance(p, root_->box), root_.get(), 0});
  std::vector<EntryId> out;
  while (!pq.empty() && out.size() < k) {
    const QueueItem item = pq.top();
    pq.pop();
    if (item.node == nullptr) {
      out.push_back(item.id);
      continue;
    }
    if (item.node->is_leaf) {
      for (const Entry& e : item.node->entries) {
        pq.push({BoxDistance(p, e.box), nullptr, e.id});
      }
    } else {
      for (const auto& child : item.node->children) {
        pq.push({BoxDistance(p, child->box), child.get(), 0});
      }
    }
  }
  return out;
}

size_t RTree::Height() const {
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++h;
    node = node->children.front().get();
  }
  return h;
}

agis::Status RTree::CheckInvariants() const {
  // Every leaf at the same depth; every node's box covers its content;
  // fill factors respected except at the root.
  struct Frame {
    const Node* node;
    size_t depth;
  };
  size_t leaf_depth = 0;
  bool leaf_depth_set = false;
  std::vector<Frame> stack = {{root_.get(), 0}};
  size_t counted = 0;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node* n = f.node;
    if (n != root_.get()) {
      if (n->Count() < min_entries_) {
        return agis::Status::Internal(
            agis::StrCat("node underflow: ", n->Count()));
      }
    }
    if (n->Count() > max_entries_) {
      return agis::Status::Internal(
          agis::StrCat("node overflow: ", n->Count()));
    }
    geom::BoundingBox cover;
    if (n->is_leaf) {
      if (!leaf_depth_set) {
        leaf_depth = f.depth;
        leaf_depth_set = true;
      } else if (leaf_depth != f.depth) {
        return agis::Status::Internal("leaves at different depths");
      }
      counted += n->entries.size();
      for (const Entry& e : n->entries) cover.Expand(e.box);
    } else {
      for (const auto& c : n->children) {
        if (c->parent != n) {
          return agis::Status::Internal("broken parent pointer");
        }
        cover.Expand(c->box);
        stack.push_back({c.get(), f.depth + 1});
      }
    }
    if (!(cover == n->box)) {
      return agis::Status::Internal("node box does not match content");
    }
  }
  if (counted != size_) {
    return agis::Status::Internal(
        agis::StrCat("size mismatch: counted ", counted, " vs ", size_));
  }
  return agis::Status::OK();
}

}  // namespace agis::spatial
