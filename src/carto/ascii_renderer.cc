#include "carto/ascii_renderer.h"

#include <cmath>
#include <cstdlib>

#include "geom/predicates.h"

namespace agis::carto {

namespace {
const SymbolStyle& FallbackStyle() {
  static const SymbolStyle* kStyle = new SymbolStyle();
  return *kStyle;
}
}  // namespace

void AsciiRenderer::DrawSegment(const MapCanvas& canvas, const geom::Point& a,
                                const geom::Point& b, char glyph,
                                const PlotFn& plot) {
  const PixelPoint pa = canvas.ToPixel(a);
  const PixelPoint pb = canvas.ToPixel(b);
  // Bresenham.
  int x0 = pa.x, y0 = pa.y;
  const int x1 = pb.x, y1 = pb.y;
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    plot(PixelPoint{x0, y0}, glyph);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void AsciiRenderer::PaintFeature(const MapCanvas& canvas,
                                 const StyledFeature& feature,
                                 const PlotFn& plot) const {
  const SymbolStyle* style = styles_->Find(feature.style);
  if (style == nullptr) style = &FallbackStyle();
  const char glyph = style->ascii_char;
  const geom::Geometry& g = feature.geometry;
  switch (g.kind()) {
    case geom::GeometryKind::kPoint:
      plot(canvas.ToPixel(g.point()), glyph);
      break;
    case geom::GeometryKind::kMultiPoint:
      for (const geom::Point& p : g.multipoint()) {
        plot(canvas.ToPixel(p), glyph);
      }
      break;
    case geom::GeometryKind::kLineString: {
      const auto& pts = g.linestring().points;
      for (size_t i = 0; i + 1 < pts.size(); ++i) {
        DrawSegment(canvas, pts[i], pts[i + 1], glyph, plot);
      }
      break;
    }
    case geom::GeometryKind::kPolygon: {
      const geom::Polygon& poly = g.polygon();
      if (style->fill) {
        // Cell-center containment scan over the polygon's pixel bbox.
        const PixelPoint lo = canvas.ToPixel(
            geom::Point{g.Bounds().min_x, g.Bounds().max_y});
        const PixelPoint hi = canvas.ToPixel(
            geom::Point{g.Bounds().max_x, g.Bounds().min_y});
        for (int y = lo.y; y <= hi.y; ++y) {
          for (int x = lo.x; x <= hi.x; ++x) {
            const geom::Point center = canvas.ToMap(PixelPoint{x, y});
            if (geom::ClassifyPointInPolygon(center, poly) ==
                geom::RingSide::kInside) {
              plot(PixelPoint{x, y}, glyph);
            }
          }
        }
      }
      // Outline always drawn (over the fill), using a lighter glyph
      // for filled styles so edges read distinctly.
      const char edge = style->fill ? '%' : glyph;
      auto draw_ring = [&](const std::vector<geom::Point>& ring) {
        for (size_t i = 0; i < ring.size(); ++i) {
          DrawSegment(canvas, ring[i], ring[(i + 1) % ring.size()], edge,
                      plot);
        }
      };
      draw_ring(poly.outer);
      for (const auto& hole : poly.holes) draw_ring(hole);
      break;
    }
  }
}

void AsciiRenderer::DrawFeature(const MapCanvas& canvas,
                                const StyledFeature& feature,
                                std::vector<std::string>* grid) const {
  PaintFeature(canvas, feature, [grid](const PixelPoint& px, char glyph) {
    if (px.y < 0 || px.y >= static_cast<int>(grid->size())) return;
    std::string& row = (*grid)[static_cast<size_t>(px.y)];
    if (px.x < 0 || px.x >= static_cast<int>(row.size())) return;
    row[static_cast<size_t>(px.x)] = glyph;
  });
}

std::vector<std::string> AsciiRenderer::RenderRows(
    const MapCanvas& canvas) const {
  std::vector<std::string> grid(
      static_cast<size_t>(canvas.height()),
      std::string(static_cast<size_t>(canvas.width()), ' '));
  for (const StyledFeature& f : canvas.features()) {
    DrawFeature(canvas, f, &grid);
  }
  return grid;
}

std::string AsciiRenderer::FrameRows(const std::vector<std::string>& rows,
                                     int width) {
  std::string out;
  const std::string bar(static_cast<size_t>(width) + 2, '-');
  out += "+" + std::string(bar.begin() + 1, bar.end() - 1) + "+\n";
  for (const std::string& row : rows) {
    out += "|" + row + "|\n";
  }
  out += "+" + std::string(bar.begin() + 1, bar.end() - 1) + "+\n";
  return out;
}

std::string AsciiRenderer::RenderFramed(const MapCanvas& canvas) const {
  return FrameRows(RenderRows(canvas), canvas.width());
}

}  // namespace agis::carto
