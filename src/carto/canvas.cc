#include "carto/canvas.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "geom/predicates.h"

namespace agis::carto {

MapCanvas::MapCanvas(const geom::BoundingBox& viewport, int width, int height)
    : viewport_(viewport), width_(std::max(width, 1)),
      height_(std::max(height, 1)) {
  AGIS_CHECK(!viewport.empty()) << "canvas viewport must be non-empty";
}

void MapCanvas::AddFeature(StyledFeature feature) {
  features_.push_back(std::move(feature));
}

double MapCanvas::UnitsPerCellX() const {
  return viewport_.Width() / static_cast<double>(width_);
}

double MapCanvas::UnitsPerCellY() const {
  return viewport_.Height() / static_cast<double>(height_);
}

PixelPoint MapCanvas::ToPixel(const geom::Point& p) const {
  const double fx = (p.x - viewport_.min_x) / viewport_.Width();
  const double fy = (p.y - viewport_.min_y) / viewport_.Height();
  PixelPoint out;
  out.x = static_cast<int>(std::floor(fx * width_));
  out.y = static_cast<int>(std::floor((1.0 - fy) * height_));
  out.x = std::clamp(out.x, 0, width_ - 1);
  out.y = std::clamp(out.y, 0, height_ - 1);
  return out;
}

geom::Point MapCanvas::ToMap(const PixelPoint& px) const {
  const double fx = (static_cast<double>(px.x) + 0.5) / width_;
  const double fy = 1.0 - (static_cast<double>(px.y) + 0.5) / height_;
  return geom::Point{viewport_.min_x + fx * viewport_.Width(),
                     viewport_.min_y + fy * viewport_.Height()};
}

geodb::ObjectId MapCanvas::HitTest(const geom::Point& p,
                                   double tolerance) const {
  geodb::ObjectId best = 0;
  double best_dist = tolerance;
  const geom::Geometry probe = geom::Geometry::FromPoint(p);
  for (const StyledFeature& f : features_) {
    const double d = geom::Distance(probe, f.geometry);
    if (d <= best_dist) {
      best_dist = d;
      best = f.id;
    }
  }
  return best;
}

geom::BoundingBox MapCanvas::FitBounds(
    const std::vector<StyledFeature>& features, double margin_frac) {
  geom::BoundingBox box;
  for (const StyledFeature& f : features) box.Expand(f.geometry.Bounds());
  if (box.empty()) return geom::BoundingBox(0, 0, 1, 1);
  double margin =
      std::max(box.Width(), box.Height()) * std::max(margin_frac, 0.0);
  if (margin <= 0) margin = 1.0;  // Degenerate single-point extent.
  return box.Inflated(margin);
}

}  // namespace agis::carto
