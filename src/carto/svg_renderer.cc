#include "carto/svg_renderer.h"

#include "base/strutil.h"

namespace agis::carto {

namespace {

const SymbolStyle& FallbackStyle() {
  static const SymbolStyle* kStyle = new SymbolStyle();
  return *kStyle;
}

std::string PixelPair(const MapCanvas& canvas, const geom::Point& p) {
  const PixelPoint px = canvas.ToPixel(p);
  return agis::StrCat(px.x, ",", px.y);
}

std::string RingPath(const MapCanvas& canvas,
                     const std::vector<geom::Point>& ring) {
  std::string d;
  for (size_t i = 0; i < ring.size(); ++i) {
    d += (i == 0 ? "M" : "L");
    d += PixelPair(canvas, ring[i]);
  }
  d += "Z";
  return d;
}

void AppendMarker(const MapCanvas& canvas, const geom::Point& p,
                  const SymbolStyle& style, geodb::ObjectId id,
                  std::string* out) {
  const PixelPoint px = canvas.ToPixel(p);
  const double r = style.point_radius;
  const std::string common = agis::StrCat(
      " stroke=\"", style.stroke_color, "\" stroke-width=\"",
      agis::DoubleToString(style.stroke_width), "\" data-oid=\"", id, "\"");
  switch (style.marker) {
    case MarkerShape::kDot:
      *out += agis::StrCat("  <circle cx=\"", px.x, "\" cy=\"", px.y,
                           "\" r=\"", agis::DoubleToString(r), "\" fill=\"",
                           style.stroke_color, "\"", common, "/>\n");
      break;
    case MarkerShape::kCircle:
      *out += agis::StrCat("  <circle cx=\"", px.x, "\" cy=\"", px.y,
                           "\" r=\"", agis::DoubleToString(r),
                           "\" fill=\"none\"", common, "/>\n");
      break;
    case MarkerShape::kSquare:
      *out += agis::StrCat("  <rect x=\"", px.x - r, "\" y=\"", px.y - r,
                           "\" width=\"", 2 * r, "\" height=\"", 2 * r,
                           "\" fill=\"", style.stroke_color, "\"", common,
                           "/>\n");
      break;
    case MarkerShape::kCross:
      *out += agis::StrCat("  <path d=\"M", px.x - r, ",", px.y, "L",
                           px.x + r, ",", px.y, "M", px.x, ",", px.y - r, "L",
                           px.x, ",", px.y + r, "\" fill=\"none\"", common,
                           "/>\n");
      break;
    case MarkerShape::kTriangle:
      *out += agis::StrCat("  <path d=\"M", px.x, ",", px.y - r, "L",
                           px.x + r, ",", px.y + r, "L", px.x - r, ",",
                           px.y + r, "Z\" fill=\"", style.stroke_color, "\"",
                           common, "/>\n");
      break;
  }
}

}  // namespace

void SvgRenderer::AppendFeature(const MapCanvas& canvas,
                                const StyledFeature& feature,
                                std::string* out) const {
  const SymbolStyle* style = styles_->Find(feature.style);
  if (style == nullptr) style = &FallbackStyle();
  const geom::Geometry& g = feature.geometry;
  switch (g.kind()) {
    case geom::GeometryKind::kPoint:
      AppendMarker(canvas, g.point(), *style, feature.id, out);
      break;
    case geom::GeometryKind::kMultiPoint:
      for (const geom::Point& p : g.multipoint()) {
        AppendMarker(canvas, p, *style, feature.id, out);
      }
      break;
    case geom::GeometryKind::kLineString: {
      std::string pts;
      for (size_t i = 0; i < g.linestring().points.size(); ++i) {
        if (i > 0) pts += " ";
        pts += PixelPair(canvas, g.linestring().points[i]);
      }
      *out += agis::StrCat("  <polyline points=\"", pts,
                           "\" fill=\"none\" stroke=\"", style->stroke_color,
                           "\" stroke-width=\"",
                           agis::DoubleToString(style->stroke_width),
                           "\" data-oid=\"", feature.id, "\"/>\n");
      break;
    }
    case geom::GeometryKind::kPolygon: {
      std::string d = RingPath(canvas, g.polygon().outer);
      for (const auto& hole : g.polygon().holes) {
        d += RingPath(canvas, hole);
      }
      *out += agis::StrCat(
          "  <path d=\"", d, "\" fill-rule=\"evenodd\" fill=\"",
          style->fill ? style->fill_color : std::string("none"),
          "\" stroke=\"", style->stroke_color, "\" stroke-width=\"",
          agis::DoubleToString(style->stroke_width), "\" data-oid=\"",
          feature.id, "\"/>\n");
      break;
    }
  }
}

std::string SvgRenderer::DocumentHeader(int width, int height) {
  std::string out = agis::StrCat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"", width,
      "\" height=\"", height, "\" viewBox=\"0 0 ", width, " ", height,
      "\">\n");
  out += agis::StrCat("  <rect width=\"", width, "\" height=\"", height,
                      "\" fill=\"#fbfaf7\"/>\n");
  return out;
}

std::string SvgRenderer::Render(const MapCanvas& canvas) const {
  std::string out = DocumentHeader(canvas.width(), canvas.height());
  for (const StyledFeature& f : canvas.features()) {
    AppendFeature(canvas, f, &out);
  }
  out += DocumentFooter();
  return out;
}

}  // namespace agis::carto
