#include "carto/incremental.h"

#include <algorithm>

namespace agis::carto {

IncrementalView::IncrementalView(const StyleRegistry* styles,
                                 const geom::BoundingBox& viewport, int width,
                                 int height)
    : canvas_(viewport, width, height),
      ascii_(styles),
      svg_(styles),
      cells_(static_cast<size_t>(canvas_.width()) *
             static_cast<size_t>(canvas_.height())) {}

void IncrementalView::Upsert(const StyledFeature& feature) {
  Remove(feature.id);
  FeatureState state;
  // Collect the cells the feature paints. Within one feature a later
  // plot of the same cell overwrites (outline over fill), matching the
  // full renderer's overdraw.
  std::map<size_t, char> painted;
  ascii_.PaintFeature(canvas_, feature,
                      [&](const PixelPoint& px, char glyph) {
                        if (!canvas_.InRaster(px)) return;
                        painted[static_cast<size_t>(px.y) *
                                    static_cast<size_t>(canvas_.width()) +
                                static_cast<size_t>(px.x)] = glyph;
                      });
  state.cells.assign(painted.begin(), painted.end());
  for (const auto& [cell, glyph] : state.cells) {
    cells_[cell][feature.id] = glyph;
  }
  svg_.AppendFeature(canvas_, feature, &state.svg_fragment);
  features_[feature.id] = std::move(state);
}

bool IncrementalView::Remove(geodb::ObjectId id) {
  const auto it = features_.find(id);
  if (it == features_.end()) return false;
  for (const auto& [cell, glyph] : it->second.cells) {
    cells_[cell].erase(id);
  }
  features_.erase(it);
  return true;
}

std::vector<geodb::ObjectId> IncrementalView::ids() const {
  std::vector<geodb::ObjectId> out;
  out.reserve(features_.size());
  for (const auto& [id, state] : features_) out.push_back(id);
  return out;
}

std::string IncrementalView::RenderFramedAscii() const {
  std::vector<std::string> rows(
      static_cast<size_t>(canvas_.height()),
      std::string(static_cast<size_t>(canvas_.width()), ' '));
  for (size_t cell = 0; cell < cells_.size(); ++cell) {
    const auto& painters = cells_[cell];
    if (painters.empty()) continue;
    // Highest id wins == last-painted wins under ascending paint order.
    rows[cell / static_cast<size_t>(canvas_.width())]
        [cell % static_cast<size_t>(canvas_.width())] =
            painters.rbegin()->second;
  }
  return AsciiRenderer::FrameRows(rows, canvas_.width());
}

std::string IncrementalView::RenderSvg() const {
  std::string out =
      SvgRenderer::DocumentHeader(canvas_.width(), canvas_.height());
  for (const auto& [id, state] : features_) {
    out += state.svg_fragment;
  }
  out += SvgRenderer::DocumentFooter();
  return out;
}

}  // namespace agis::carto
