#ifndef AGIS_CARTO_STYLE_H_
#define AGIS_CARTO_STYLE_H_

#include <map>
#include <string>
#include <vector>

#include "base/status.h"

namespace agis::carto {

/// Marker shape for point features.
enum class MarkerShape { kDot, kCross, kSquare, kCircle, kTriangle };

/// A named symbolization — what the customization language calls a
/// *presentation format* ("pointFormat" in Figure 6, line 5). Styles
/// carry both the ASCII glyph (text renderer) and the SVG attributes.
struct SymbolStyle {
  std::string name;
  MarkerShape marker = MarkerShape::kDot;
  char ascii_char = '*';
  std::string stroke_color = "#1f4e8c";
  double stroke_width = 1.0;
  bool fill = false;
  std::string fill_color = "#9ec3e6";
  double point_radius = 3.0;
  std::string doc;
};

/// Registry of presentation formats, the cartographic sibling of the
/// interface objects library. The customization compiler validates
/// `presentation as <format>` clauses against it.
class StyleRegistry {
 public:
  StyleRegistry() = default;

  StyleRegistry(const StyleRegistry&) = delete;
  StyleRegistry& operator=(const StyleRegistry&) = delete;

  agis::Status Register(SymbolStyle style, bool allow_replace = false);
  const SymbolStyle* Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) != nullptr; }
  std::vector<std::string> Names() const { return order_; }
  size_t NumStyles() const { return styles_.size(); }

  /// Registers the standard formats: "defaultFormat", "pointFormat"
  /// (dots), "crossFormat", "lineFormat", "fillFormat", "regionFormat"
  /// (outlined fill), "highlightFormat".
  agis::Status RegisterStandardFormats();

 private:
  std::map<std::string, SymbolStyle> styles_;
  std::vector<std::string> order_;
};

}  // namespace agis::carto

#endif  // AGIS_CARTO_STYLE_H_
