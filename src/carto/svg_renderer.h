#ifndef AGIS_CARTO_SVG_RENDERER_H_
#define AGIS_CARTO_SVG_RENDERER_H_

#include <string>

#include "carto/canvas.h"
#include "carto/style.h"

namespace agis::carto {

/// Renders a canvas to a standalone SVG document, one element per
/// feature (`data-oid` attributes carry the object ids so the output
/// remains inspectable). Styles map to stroke/fill attributes and
/// marker shapes.
class SvgRenderer {
 public:
  explicit SvgRenderer(const StyleRegistry* styles) : styles_(styles) {}

  std::string Render(const MapCanvas& canvas) const;

  /// The document's opening tag plus background rect, exactly as
  /// Render emits them (the incremental view concatenates cached
  /// per-feature fragments between header and footer, producing
  /// byte-identical documents).
  static std::string DocumentHeader(int width, int height);
  static const char* DocumentFooter() { return "</svg>\n"; }

  /// Appends the SVG fragment of one feature (the unit the
  /// incremental view caches). `canvas` supplies only the projection.
  void AppendFeature(const MapCanvas& canvas, const StyledFeature& feature,
                     std::string* out) const;

 private:
  const StyleRegistry* styles_;
};

}  // namespace agis::carto

#endif  // AGIS_CARTO_SVG_RENDERER_H_
