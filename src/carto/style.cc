#include "carto/style.h"

#include <algorithm>

#include "base/strutil.h"

namespace agis::carto {

agis::Status StyleRegistry::Register(SymbolStyle style, bool allow_replace) {
  if (style.name.empty()) {
    return agis::Status::InvalidArgument("style needs a name");
  }
  auto it = styles_.find(style.name);
  if (it != styles_.end()) {
    if (!allow_replace) {
      return agis::Status::AlreadyExists(
          agis::StrCat("style '", style.name, "'"));
    }
    it->second = std::move(style);
    return agis::Status::OK();
  }
  order_.push_back(style.name);
  styles_.emplace(style.name, std::move(style));
  return agis::Status::OK();
}

const SymbolStyle* StyleRegistry::Find(const std::string& name) const {
  auto it = styles_.find(name);
  return it == styles_.end() ? nullptr : &it->second;
}

agis::Status StyleRegistry::RegisterStandardFormats() {
  SymbolStyle def;
  def.name = "defaultFormat";
  def.marker = MarkerShape::kSquare;
  def.ascii_char = 'o';
  def.doc = "generic presentation used when no customization applies";
  AGIS_RETURN_IF_ERROR(Register(def));

  SymbolStyle point;
  point.name = "pointFormat";
  point.marker = MarkerShape::kDot;
  point.ascii_char = '*';
  point.point_radius = 2.0;
  point.doc = "point symbol (Figure 6, line 5)";
  AGIS_RETURN_IF_ERROR(Register(point));

  SymbolStyle cross;
  cross.name = "crossFormat";
  cross.marker = MarkerShape::kCross;
  cross.ascii_char = '+';
  cross.doc = "cross marker for survey points";
  AGIS_RETURN_IF_ERROR(Register(cross));

  SymbolStyle line;
  line.name = "lineFormat";
  line.ascii_char = '-';
  line.stroke_width = 1.5;
  line.stroke_color = "#8c1f1f";
  line.doc = "polyline rendering for network elements";
  AGIS_RETURN_IF_ERROR(Register(line));

  SymbolStyle fill;
  fill.name = "fillFormat";
  fill.ascii_char = '#';
  fill.fill = true;
  fill.doc = "filled areas";
  AGIS_RETURN_IF_ERROR(Register(fill));

  SymbolStyle region;
  region.name = "regionFormat";
  region.ascii_char = ':';
  region.fill = true;
  region.fill_color = "#e6f0d8";
  region.stroke_color = "#5a7a3a";
  region.doc = "administrative / service regions";
  AGIS_RETURN_IF_ERROR(Register(region));

  SymbolStyle highlight;
  highlight.name = "highlightFormat";
  highlight.marker = MarkerShape::kCircle;
  highlight.ascii_char = '@';
  highlight.stroke_color = "#cc3300";
  highlight.stroke_width = 2.0;
  highlight.point_radius = 4.0;
  highlight.doc = "selected feature emphasis";
  return Register(highlight);
}

}  // namespace agis::carto
