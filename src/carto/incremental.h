#ifndef AGIS_CARTO_INCREMENTAL_H_
#define AGIS_CARTO_INCREMENTAL_H_

#include <map>
#include <string>
#include <vector>

#include "carto/ascii_renderer.h"
#include "carto/canvas.h"
#include "carto/style.h"
#include "carto/svg_renderer.h"

namespace agis::carto {

/// Retained-mode map view: the incremental counterpart of rendering a
/// MapCanvas from scratch.
///
/// A full render is O(features) per refresh. This view keeps, per
/// feature, the raster cells it painted and its SVG fragment, plus a
/// per-cell stack of the features covering that cell — so replacing or
/// removing one feature touches only that feature's cells, and
/// re-assembling the output costs O(raster) for ASCII and a fragment
/// concatenation for SVG, independent of how many features changed.
/// This is what lets the view refresher patch a window per changefeed
/// delta instead of re-querying and re-painting the whole extent.
///
/// Output equivalence: class-set windows paint features in ascending
/// object-id order (GetClass result order), so "last feature painted
/// wins" equals "highest id wins" — which is how this view resolves a
/// contested cell. Under that ordering RenderFramedAscii and RenderSvg
/// are byte-identical to AsciiRenderer::RenderFramed /
/// SvgRenderer::Render over the same feature set. The viewport is
/// fixed at construction: a full rebuild may re-fit the viewport to
/// changed bounds, a patched view deliberately keeps its frame (the
/// map does not re-zoom under the user; the refresher falls back to a
/// rebuild when it wants re-fitting).
class IncrementalView {
 public:
  IncrementalView(const StyleRegistry* styles,
                  const geom::BoundingBox& viewport, int width, int height);

  /// Adds or replaces the feature keyed by `feature.id`: unpaints the
  /// previous cells (if any), repaints, and re-caches the fragment.
  void Upsert(const StyledFeature& feature);

  /// Unpaints and forgets the feature; false when unknown.
  bool Remove(geodb::ObjectId id);

  bool Has(geodb::ObjectId id) const {
    return features_.count(id) != 0;
  }
  size_t feature_count() const { return features_.size(); }

  /// Current feature ids, ascending.
  std::vector<geodb::ObjectId> ids() const;

  const geom::BoundingBox& viewport() const { return canvas_.viewport(); }
  int width() const { return canvas_.width(); }
  int height() const { return canvas_.height(); }

  /// Assembled outputs (see the equivalence note above).
  std::string RenderFramedAscii() const;
  std::string RenderSvg() const;

 private:
  struct FeatureState {
    /// (cell index, glyph) pairs this feature painted, deduplicated —
    /// within one feature, later plots (outline over fill) win.
    std::vector<std::pair<size_t, char>> cells;
    std::string svg_fragment;
  };

  MapCanvas canvas_;  // Projection only; its feature list stays empty.
  AsciiRenderer ascii_;
  SvgRenderer svg_;
  /// Ascending by id == paint order (see class comment).
  std::map<geodb::ObjectId, FeatureState> features_;
  /// Per raster cell: the features covering it, with their glyphs.
  /// Ascending key order means rbegin() is the painter that wins.
  std::vector<std::map<geodb::ObjectId, char>> cells_;
};

}  // namespace agis::carto

#endif  // AGIS_CARTO_INCREMENTAL_H_
