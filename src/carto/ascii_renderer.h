#ifndef AGIS_CARTO_ASCII_RENDERER_H_
#define AGIS_CARTO_ASCII_RENDERER_H_

#include <functional>
#include <string>
#include <vector>

#include "carto/canvas.h"
#include "carto/style.h"

namespace agis::carto {

/// Renders a canvas to a character raster. Points draw their style
/// glyph; lines are rasterized with Bresenham; polygons draw their
/// outline, plus an interior fill for filled styles. Later features
/// overdraw earlier ones (paint order = add order).
class AsciiRenderer {
 public:
  /// Receives every (pixel, glyph) a feature paints, in paint order
  /// (fill before outline); plots may repeat a pixel and may fall
  /// outside the raster — the consumer clips.
  using PlotFn = std::function<void(const PixelPoint&, char)>;

  explicit AsciiRenderer(const StyleRegistry* styles) : styles_(styles) {}

  /// One string per raster row, each exactly canvas.width() chars.
  std::vector<std::string> RenderRows(const MapCanvas& canvas) const;

  /// RenderRows joined with newlines, with a border frame.
  std::string RenderFramed(const MapCanvas& canvas) const;

  /// Frames pre-rendered rows exactly as RenderFramed does (the
  /// incremental view assembles rows itself and reuses the frame).
  static std::string FrameRows(const std::vector<std::string>& rows,
                               int width);

  /// Enumerates the cells one feature paints, without a grid. This is
  /// the single rasterization path: RenderRows plots into its grid
  /// through it, and the incremental view records the cells so it can
  /// unpaint the feature later. `canvas` supplies only the projection;
  /// its feature list is not consulted.
  void PaintFeature(const MapCanvas& canvas, const StyledFeature& feature,
                    const PlotFn& plot) const;

 private:
  void DrawFeature(const MapCanvas& canvas, const StyledFeature& feature,
                   std::vector<std::string>* grid) const;
  static void DrawSegment(const MapCanvas& canvas, const geom::Point& a,
                          const geom::Point& b, char glyph,
                          const PlotFn& plot);

  const StyleRegistry* styles_;
};

}  // namespace agis::carto

#endif  // AGIS_CARTO_ASCII_RENDERER_H_
