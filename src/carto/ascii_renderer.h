#ifndef AGIS_CARTO_ASCII_RENDERER_H_
#define AGIS_CARTO_ASCII_RENDERER_H_

#include <string>
#include <vector>

#include "carto/canvas.h"
#include "carto/style.h"

namespace agis::carto {

/// Renders a canvas to a character raster. Points draw their style
/// glyph; lines are rasterized with Bresenham; polygons draw their
/// outline, plus an interior fill for filled styles. Later features
/// overdraw earlier ones (paint order = add order).
class AsciiRenderer {
 public:
  explicit AsciiRenderer(const StyleRegistry* styles) : styles_(styles) {}

  /// One string per raster row, each exactly canvas.width() chars.
  std::vector<std::string> RenderRows(const MapCanvas& canvas) const;

  /// RenderRows joined with newlines, with a border frame.
  std::string RenderFramed(const MapCanvas& canvas) const;

 private:
  void DrawFeature(const MapCanvas& canvas, const StyledFeature& feature,
                   std::vector<std::string>* grid) const;
  void DrawSegment(const MapCanvas& canvas, const geom::Point& a,
                   const geom::Point& b, char glyph,
                   std::vector<std::string>* grid) const;
  void Plot(const PixelPoint& px, char glyph,
            std::vector<std::string>* grid) const;

  const StyleRegistry* styles_;
};

}  // namespace agis::carto

#endif  // AGIS_CARTO_ASCII_RENDERER_H_
