#ifndef AGIS_CARTO_CANVAS_H_
#define AGIS_CARTO_CANVAS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geodb/value.h"
#include "geom/bbox.h"
#include "geom/geometry.h"

namespace agis::carto {

/// One feature queued for rendering: geometry + presentation format +
/// provenance (object id, for hit testing in the presentation area).
struct StyledFeature {
  geodb::ObjectId id = 0;
  geom::Geometry geometry;
  std::string style = "defaultFormat";
  std::string label;
};

/// Pixel-space coordinate.
struct PixelPoint {
  int x = 0;
  int y = 0;
};

/// A map presentation surface: a viewport in map units projected onto
/// a raster of `width` x `height` cells (text columns/rows for the
/// ASCII renderer, logical pixels for SVG).
///
/// y grows *north* in map units and *down* in raster space; ToPixel
/// flips accordingly.
class MapCanvas {
 public:
  MapCanvas(const geom::BoundingBox& viewport, int width, int height);

  void AddFeature(StyledFeature feature);
  void Clear() { features_.clear(); }

  const std::vector<StyledFeature>& features() const { return features_; }
  const geom::BoundingBox& viewport() const { return viewport_; }
  int width() const { return width_; }
  int height() const { return height_; }

  /// Cartographic scale denominators per axis (map units per cell).
  double UnitsPerCellX() const;
  double UnitsPerCellY() const;

  PixelPoint ToPixel(const geom::Point& p) const;

  /// Inverse transform to the cell's center point in map units.
  geom::Point ToMap(const PixelPoint& px) const;

  /// True when the pixel is on the raster.
  bool InRaster(const PixelPoint& px) const {
    return px.x >= 0 && px.x < width_ && px.y >= 0 && px.y < height_;
  }

  /// The feature whose geometry is closest to map point `p` within
  /// `tolerance` map units; 0 when none (hit testing for instance
  /// selection in the presentation area).
  geodb::ObjectId HitTest(const geom::Point& p, double tolerance) const;

  /// Viewport covering all feature bounds inflated by `margin_frac`
  /// of the larger dimension (10% default framing).
  static geom::BoundingBox FitBounds(const std::vector<StyledFeature>& features,
                                     double margin_frac = 0.1);

 private:
  geom::BoundingBox viewport_;
  int width_;
  int height_;
  std::vector<StyledFeature> features_;
};

}  // namespace agis::carto

#endif  // AGIS_CARTO_CANVAS_H_
