#include "workload/phone_net.h"

#include <cmath>
#include <vector>

#include "base/rng.h"
#include "base/strutil.h"
#include "geom/geometry.h"

namespace agis::workload {

namespace {

using geodb::AttributeDef;
using geodb::ClassDef;
using geodb::Value;

agis::Status RegisterSchema(geodb::GeoDatabase* db) {
  {
    ClassDef supplier("Supplier", "pole/cable equipment vendor");
    AGIS_RETURN_IF_ERROR(supplier.AddAttribute([] {
      AttributeDef a = AttributeDef::String("supplier_name");
      a.required = true;
      return a;
    }()));
    AGIS_RETURN_IF_ERROR(
        supplier.AddAttribute(AttributeDef::String("supplier_city")));
    AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(supplier)));
  }
  {
    ClassDef region("ServiceRegion", "telephone service region");
    AGIS_RETURN_IF_ERROR(
        region.AddAttribute(AttributeDef::String("region_name")));
    AGIS_RETURN_IF_ERROR(
        region.AddAttribute(AttributeDef::Geometry("region_area")));
    AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(region)));
  }
  {
    ClassDef base("NetworkElement", "common network element state");
    AGIS_RETURN_IF_ERROR(base.AddAttribute(AttributeDef::String("status")));
    AGIS_RETURN_IF_ERROR(base.AddAttribute(AttributeDef::Int("install_year")));
    AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(base)));
  }
  {
    // Figure 5, verbatim structure.
    ClassDef pole("Pole", "aerial network support pole (Figure 5)");
    pole.set_parent("NetworkElement");
    AGIS_RETURN_IF_ERROR(pole.AddAttribute(AttributeDef::Int("pole_type")));
    AGIS_RETURN_IF_ERROR(pole.AddAttribute(AttributeDef::Tuple(
        "pole_composition", {AttributeDef::String("pole_material"),
                             AttributeDef::Double("pole_diameter"),
                             AttributeDef::Double("pole_height")})));
    AGIS_RETURN_IF_ERROR(
        pole.AddAttribute(AttributeDef::Ref("pole_supplier", "Supplier")));
    AGIS_RETURN_IF_ERROR(
        pole.AddAttribute(AttributeDef::Geometry("pole_location")));
    AGIS_RETURN_IF_ERROR(
        pole.AddAttribute(AttributeDef::Blob("pole_picture")));
    AGIS_RETURN_IF_ERROR(
        pole.AddAttribute(AttributeDef::Text("pole_historic")));
    AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(pole)));
  }
  {
    ClassDef duct("Duct", "underground duct");
    duct.set_parent("NetworkElement");
    AGIS_RETURN_IF_ERROR(duct.AddAttribute(AttributeDef::Double("duct_depth")));
    AGIS_RETURN_IF_ERROR(duct.AddAttribute(AttributeDef::Geometry("duct_path")));
    AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(duct)));
  }
  {
    ClassDef cable("Cable", "aerial cable strung between poles");
    cable.set_parent("NetworkElement");
    AGIS_RETURN_IF_ERROR(
        cable.AddAttribute(AttributeDef::Int("cable_pairs")));
    AGIS_RETURN_IF_ERROR(
        cable.AddAttribute(AttributeDef::Geometry("cable_path")));
    AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(cable)));
  }
  // Figure 5's method: get_supplier_name(Supplier) dereferences the
  // pole's supplier and returns its name.
  return db->RegisterMethod(
      "Pole",
      geodb::MethodDef{
          "get_supplier_name", "name of the pole's supplier",
          [](const geodb::GeoDatabase& db,
             const geodb::ObjectInstance& pole) -> agis::Result<Value> {
            const Value& ref = pole.Get("pole_supplier");
            if (ref.kind() != geodb::ValueKind::kRef) {
              return Value::String("<no supplier>");
            }
            const geodb::Snapshot snap = db.OpenSnapshot();
            const geodb::ObjectInstance* supplier =
                db.FindObjectAt(snap, ref.ref_value().id);
            if (supplier == nullptr) {
              return agis::Status::NotFound(
                  agis::StrCat("supplier ", ref.ref_value().id));
            }
            return supplier->Get("supplier_name");
          }});
}

}  // namespace

agis::Status BuildPhoneNetwork(geodb::GeoDatabase* db,
                               const PhoneNetConfig& config) {
  AGIS_RETURN_IF_ERROR(RegisterSchema(db));
  Rng rng(config.seed);
  const geom::BoundingBox& world = config.world;

  // Service regions: a near-regular grid of rectangles covering the
  // world (so every pole lies inside exactly one region).
  const size_t grid =
      std::max<size_t>(1, static_cast<size_t>(
                              std::ceil(std::sqrt(
                                  static_cast<double>(config.num_regions)))));
  std::vector<geodb::ObjectId> region_ids;
  size_t regions_made = 0;
  for (size_t gy = 0; gy < grid && regions_made < config.num_regions; ++gy) {
    for (size_t gx = 0; gx < grid && regions_made < config.num_regions;
         ++gx) {
      const double x0 = world.min_x + world.Width() * gx / grid;
      const double x1 = world.min_x + world.Width() * (gx + 1) / grid;
      const double y0 = world.min_y + world.Height() * gy / grid;
      const double y1 = world.min_y + world.Height() * (gy + 1) / grid;
      geom::Polygon poly;
      poly.outer = {{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}};
      auto id = db->Insert(
          "ServiceRegion",
          {{"region_name",
            Value::String(agis::StrCat("region_", gx, "_", gy))},
           {"region_area",
            Value::MakeGeometry(geom::Geometry::FromPolygon(poly))}});
      AGIS_RETURN_IF_ERROR(id.status());
      region_ids.push_back(id.value());
      ++regions_made;
    }
  }

  // Suppliers.
  static const char* kSupplierNames[] = {"WoodCo", "ConcretePlus", "SteelBr",
                                         "PoleTec", "LigMat", "TeleParts"};
  static const char* kCities[] = {"Campinas", "Tandil", "Sao Paulo",
                                  "Valinhos", "Sumare"};
  std::vector<geodb::ObjectId> supplier_ids;
  for (size_t i = 0; i < config.num_suppliers; ++i) {
    auto id = db->Insert(
        "Supplier",
        {{"supplier_name",
          Value::String(agis::StrCat(
              kSupplierNames[i % (sizeof(kSupplierNames) /
                                  sizeof(kSupplierNames[0]))],
              i < 6 ? "" : agis::StrCat("_", i)))},
         {"supplier_city",
          Value::String(kCities[i % (sizeof(kCities) / sizeof(kCities[0]))])}});
    AGIS_RETURN_IF_ERROR(id.status());
    supplier_ids.push_back(id.value());
  }

  // Poles: random positions, composed tuple, supplier ref, a tiny
  // synthetic bitmap, and a history note.
  static const char* kMaterials[] = {"wood", "concrete", "steel"};
  std::vector<geom::Point> pole_points;
  for (size_t i = 0; i < config.num_poles; ++i) {
    const geom::Point p{rng.UniformDouble(world.min_x, world.max_x),
                        rng.UniformDouble(world.min_y, world.max_y)};
    pole_points.push_back(p);
    geodb::Blob picture;
    picture.format = "pbm";
    picture.bytes = {'P', '1', ' ', '2', ' ', '2', ' ',
                     static_cast<uint8_t>('0' + (i % 2)), '1', '0', '1'};
    Value composition = Value::MakeTuple(
        {{"pole_material",
          Value::String(kMaterials[rng.Uniform(3)])},
         {"pole_diameter", Value::Double(0.2 + rng.UniformDouble() * 0.3)},
         {"pole_height", Value::Double(7.0 + rng.UniformDouble() * 5.0)}});
    auto id = db->Insert(
        "Pole",
        {{"pole_type", Value::Int(static_cast<int64_t>(rng.Uniform(4)))},
         {"pole_composition", std::move(composition)},
         {"pole_supplier",
          Value::Ref(supplier_ids[rng.Uniform(supplier_ids.size())],
                     "Supplier")},
         {"pole_location",
          Value::MakeGeometry(geom::Geometry::FromPoint(p))},
         {"pole_picture", Value::MakeBlob(std::move(picture))},
         {"pole_historic",
          Value::String(agis::StrCat("installed batch ", i / 10))},
         {"status", Value::String(rng.Bernoulli(0.9) ? "active" : "repair")},
         {"install_year",
          Value::Int(1970 + static_cast<int64_t>(rng.Uniform(27)))}});
    AGIS_RETURN_IF_ERROR(id.status());
  }

  // Ducts: jittered polylines crossing the world.
  for (size_t i = 0; i < config.num_ducts; ++i) {
    geom::LineString path;
    double x = rng.UniformDouble(world.min_x, world.max_x);
    double y = rng.UniformDouble(world.min_y, world.max_y);
    const size_t segments = 3 + rng.Uniform(4);
    path.points.push_back({x, y});
    for (size_t s = 0; s < segments; ++s) {
      x += rng.UniformDouble(-80, 80);
      y += rng.UniformDouble(-80, 80);
      x = std::min(std::max(x, world.min_x), world.max_x);
      y = std::min(std::max(y, world.min_y), world.max_y);
      path.points.push_back({x, y});
    }
    auto id = db->Insert(
        "Duct",
        {{"duct_depth", Value::Double(0.6 + rng.UniformDouble() * 1.2)},
         {"duct_path",
          Value::MakeGeometry(geom::Geometry::FromLineString(path))},
         {"status", Value::String("active")},
         {"install_year",
          Value::Int(1960 + static_cast<int64_t>(rng.Uniform(37)))}});
    AGIS_RETURN_IF_ERROR(id.status());
  }

  // Cables: straight spans between random pole pairs.
  for (size_t i = 0; i < config.num_cables && pole_points.size() >= 2; ++i) {
    const geom::Point& a = pole_points[rng.Uniform(pole_points.size())];
    const geom::Point& b = pole_points[rng.Uniform(pole_points.size())];
    if (a == b) continue;
    geom::LineString span;
    span.points = {a, b};
    auto id = db->Insert(
        "Cable",
        {{"cable_pairs", Value::Int(static_cast<int64_t>(10 + rng.Uniform(90)))},
         {"cable_path",
          Value::MakeGeometry(geom::Geometry::FromLineString(span))},
         {"status", Value::String("active")},
         {"install_year",
          Value::Int(1980 + static_cast<int64_t>(rng.Uniform(17)))}});
    AGIS_RETURN_IF_ERROR(id.status());
  }
  return agis::Status::OK();
}

std::string Fig6DirectiveSource() {
  return R"(# Figure 6: customization for the pole manager (Section 4)
For user juliano application pole_manager
schema phone_net display as Null
class Pole display
  control as poleWidget
  presentation as pointFormat
  instances
    display attribute pole_composition as composed_text
      from pole.material pole.diameter pole.height
      using composed_text.notify()
    display attribute pole_supplier as text
      from get_supplier_name(pole_supplier)
    display attribute pole_location as Null
)";
}

std::string PlannerDirectiveSource() {
  return R"(# Category-level customization for network planners
For category network_planner application pole_manager
schema phone_net display as hierarchy
class ServiceRegion display
  presentation as regionFormat
class Pole display
  presentation as crossFormat
)";
}

}  // namespace agis::workload
