#ifndef AGIS_WORKLOAD_ENVIRONMENTAL_H_
#define AGIS_WORKLOAD_ENVIRONMENTAL_H_

#include <cstdint>
#include <string>

#include "base/status.h"
#include "geodb/database.h"
#include "geom/bbox.h"

namespace agis::workload {

/// Environmental-control application (the paper's introduction names
/// environmental control as a canonical GIS domain): vegetation
/// patches, rivers, monitoring stations, protected areas.
struct EnvironmentalConfig {
  uint64_t seed = 7;
  size_t num_patches = 40;     // Vegetation polygons.
  size_t num_rivers = 6;       // Polylines.
  size_t num_stations = 25;    // Monitoring points.
  size_t num_protected = 5;    // Protected-area polygons.
  geom::BoundingBox world = geom::BoundingBox(0, 0, 2000, 2000);
};

/// Registers the eco_db schema (VegetationPatch, River,
/// MonitoringStation, ProtectedArea) and populates it.
agis::Status BuildEnvironmentalDb(
    geodb::GeoDatabase* db,
    const EnvironmentalConfig& config = EnvironmentalConfig());

/// Directive customizing the analyst view: hierarchy schema, rivers as
/// lines, stations as crosses, vegetation cover composed into one text
/// row.
std::string AnalystDirectiveSource();

}  // namespace agis::workload

#endif  // AGIS_WORKLOAD_ENVIRONMENTAL_H_
