#include "workload/synthetic.h"

#include "base/rng.h"
#include "base/strutil.h"
#include "geom/geometry.h"

namespace agis::workload {

using geodb::AttributeDef;
using geodb::ClassDef;
using geodb::Value;

agis::Status BuildSyntheticSchema(geodb::GeoDatabase* db,
                                  const SyntheticSchemaConfig& config) {
  for (size_t c = 0; c < config.num_classes; ++c) {
    ClassDef cls(agis::StrCat("class_", c), "synthetic sweep class");
    for (size_t a = 0; a < config.attrs_per_class; ++a) {
      const std::string name = agis::StrCat("attr_", a);
      switch (a % 4) {
        case 0:
          AGIS_RETURN_IF_ERROR(cls.AddAttribute(AttributeDef::Int(name)));
          break;
        case 1:
          AGIS_RETURN_IF_ERROR(cls.AddAttribute(AttributeDef::Double(name)));
          break;
        case 2:
          AGIS_RETURN_IF_ERROR(cls.AddAttribute(AttributeDef::String(name)));
          break;
        case 3:
          AGIS_RETURN_IF_ERROR(cls.AddAttribute(AttributeDef::Tuple(
              name, {AttributeDef::Double(agis::StrCat(name, "_x")),
                     AttributeDef::Double(agis::StrCat(name, "_y"))})));
          break;
      }
    }
    AGIS_RETURN_IF_ERROR(cls.AddAttribute(AttributeDef::Geometry("location")));
    AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(cls)));
  }
  for (size_t c = 0; c < config.num_classes; ++c) {
    AGIS_RETURN_IF_ERROR(AddSyntheticInstances(
        db, agis::StrCat("class_", c), config.instances_per_class,
        config.seed + c, config.world));
  }
  return agis::Status::OK();
}

agis::Status AddSyntheticInstances(geodb::GeoDatabase* db,
                                   const std::string& class_name,
                                   size_t count, uint64_t seed,
                                   const geom::BoundingBox& world) {
  Rng rng(seed);
  auto attrs = db->schema().AllAttributesOf(class_name);
  AGIS_RETURN_IF_ERROR(attrs.status());
  for (size_t i = 0; i < count; ++i) {
    std::vector<std::pair<std::string, Value>> values;
    for (const AttributeDef& attr : attrs.value()) {
      switch (attr.type) {
        case geodb::AttrType::kInt:
          values.emplace_back(
              attr.name, Value::Int(static_cast<int64_t>(rng.Uniform(1000))));
          break;
        case geodb::AttrType::kDouble:
          values.emplace_back(attr.name,
                              Value::Double(rng.UniformDouble() * 100));
          break;
        case geodb::AttrType::kString:
          values.emplace_back(
              attr.name,
              Value::String(agis::StrCat("v", rng.Uniform(100))));
          break;
        case geodb::AttrType::kTuple: {
          Value::Tuple fields;
          for (const AttributeDef& f : attr.tuple_fields) {
            fields.emplace_back(f.name,
                                Value::Double(rng.UniformDouble() * 10));
          }
          values.emplace_back(attr.name, Value::MakeTuple(std::move(fields)));
          break;
        }
        case geodb::AttrType::kGeometry:
          values.emplace_back(
              attr.name,
              Value::MakeGeometry(geom::Geometry::FromPoint(
                  {rng.UniformDouble(world.min_x, world.max_x),
                   rng.UniformDouble(world.min_y, world.max_y)})));
          break;
        default:
          break;
      }
    }
    AGIS_RETURN_IF_ERROR(db->Insert(class_name, std::move(values)).status());
  }
  return agis::Status::OK();
}

std::vector<UserContext> GenerateContexts(size_t num_users,
                                          size_t num_categories,
                                          size_t num_apps) {
  std::vector<UserContext> out;
  out.reserve(num_users);
  for (size_t i = 0; i < num_users; ++i) {
    UserContext ctx;
    ctx.user = agis::StrCat("user_", i);
    ctx.category =
        agis::StrCat("category_", num_categories == 0 ? 0 : i % num_categories);
    ctx.application = agis::StrCat("app_", num_apps == 0 ? 0 : i % num_apps);
    out.push_back(std::move(ctx));
  }
  return out;
}

std::vector<custlang::Directive> GenerateDirectives(
    const DirectiveSweepConfig& config) {
  std::vector<custlang::Directive> out;
  out.reserve(config.num_directives);
  const size_t user_bound =
      static_cast<size_t>(static_cast<double>(config.num_directives) *
                          config.user_frac);
  for (size_t i = 0; i < config.num_directives; ++i) {
    custlang::Directive d;
    if (i < user_bound) d.user = agis::StrCat("user_", i);
    d.category = agis::StrCat(
        "category_", config.num_categories == 0 ? 0 : i % config.num_categories);
    d.application =
        agis::StrCat("app_", config.num_apps == 0 ? 0 : i % config.num_apps);
    custlang::ClassClause cls;
    cls.class_name =
        agis::StrCat("class_", config.num_classes == 0 ? 0 : i % config.num_classes);
    cls.control = "class_control";
    cls.presentation = (i % 2 == 0) ? "pointFormat" : "crossFormat";
    custlang::InstanceAttrClause attr;
    attr.attribute = "attr_0";
    attr.widget = "text_field";
    cls.attributes.push_back(std::move(attr));
    d.classes.push_back(std::move(cls));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace agis::workload
