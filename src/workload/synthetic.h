#ifndef AGIS_WORKLOAD_SYNTHETIC_H_
#define AGIS_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/context.h"
#include "base/status.h"
#include "custlang/ast.h"
#include "geodb/database.h"

namespace agis::workload {

/// Schema-size sweep generator (bench F4/C1): `num_classes` classes
/// named class_<i>, each with `attrs_per_class` mixed-type attributes
/// plus one geometry attribute, and `instances_per_class` random point
/// instances.
struct SyntheticSchemaConfig {
  uint64_t seed = 11;
  size_t num_classes = 8;
  size_t attrs_per_class = 6;
  size_t instances_per_class = 50;
  geom::BoundingBox world = geom::BoundingBox(0, 0, 1000, 1000);
};

agis::Status BuildSyntheticSchema(geodb::GeoDatabase* db,
                                  const SyntheticSchemaConfig& config);

/// Populates an *already registered* synthetic class with extra point
/// instances (extent-size sweeps, bench C7).
agis::Status AddSyntheticInstances(geodb::GeoDatabase* db,
                                   const std::string& class_name,
                                   size_t count, uint64_t seed,
                                   const geom::BoundingBox& world);

/// Context-population generator (bench C2): `num_users` users spread
/// over `num_categories` categories and `num_apps` applications.
/// Deterministic naming: user_<i>, category_<i % c>, app_<i % a>.
std::vector<UserContext> GenerateContexts(size_t num_users,
                                          size_t num_categories,
                                          size_t num_apps);

/// Directive generator (benches F6/C2/C3): one directive per context
/// at the requested specificity mix — a fraction `user_frac` bind the
/// user, the rest bind only category/application. Directives target
/// round-robin classes of the synthetic schema with a control and
/// presentation clause each.
struct DirectiveSweepConfig {
  size_t num_directives = 100;
  size_t num_classes = 8;
  size_t num_categories = 4;
  size_t num_apps = 4;
  double user_frac = 0.5;
};

std::vector<custlang::Directive> GenerateDirectives(
    const DirectiveSweepConfig& config);

}  // namespace agis::workload

#endif  // AGIS_WORKLOAD_SYNTHETIC_H_
