#ifndef AGIS_WORKLOAD_PHONE_NET_H_
#define AGIS_WORKLOAD_PHONE_NET_H_

#include <cstdint>
#include <string>

#include "base/status.h"
#include "geodb/database.h"
#include "geom/bbox.h"

namespace agis::workload {

/// Parameters of the synthetic telephone utility network (the urban
/// planning application of Section 4). Deterministic under `seed`.
struct PhoneNetConfig {
  uint64_t seed = 42;
  size_t num_regions = 4;     // Service regions (polygons).
  size_t num_suppliers = 5;
  size_t num_poles = 120;     // Aerial network support points.
  size_t num_ducts = 24;      // Underground polylines.
  size_t num_cables = 60;     // Aerial cables strung between poles.
  geom::BoundingBox world = geom::BoundingBox(0, 0, 1000, 1000);
};

/// Registers the phone_net schema and populates it.
///
/// Classes: Supplier, ServiceRegion, NetworkElement (abstract base
/// with status/install_year), Pole : NetworkElement (the exact
/// Figure 5 class: pole_type, pole_composition tuple, pole_supplier
/// reference with the get_supplier_name method, pole_location
/// geometry, pole_picture bitmap, pole_historic text), Duct :
/// NetworkElement, Cable : NetworkElement.
agis::Status BuildPhoneNetwork(geodb::GeoDatabase* db,
                               const PhoneNetConfig& config = PhoneNetConfig());

/// The customization directive of Figure 6, verbatim in this
/// library's concrete syntax (context <juliano, pole_manager>).
std::string Fig6DirectiveSource();

/// A second directive for the planner category: hierarchy schema view
/// and region-focused presentation (used by tests/benches exercising
/// specificity between category- and user-level rules).
std::string PlannerDirectiveSource();

}  // namespace agis::workload

#endif  // AGIS_WORKLOAD_PHONE_NET_H_
