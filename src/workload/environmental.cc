#include "workload/environmental.h"

#include <cmath>

#include "base/rng.h"
#include "base/strutil.h"
#include "geom/geometry.h"

namespace agis::workload {

namespace {

using geodb::AttributeDef;
using geodb::ClassDef;
using geodb::Value;

/// Convex blob polygon around (cx, cy).
geom::Polygon MakeBlob(Rng* rng, double cx, double cy, double radius) {
  geom::Polygon poly;
  const size_t n = 6 + rng->Uniform(5);
  for (size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * static_cast<double>(i) / n;
    const double r = radius * (0.6 + 0.4 * rng->UniformDouble());
    poly.outer.push_back({cx + r * std::cos(angle), cy + r * std::sin(angle)});
  }
  return poly;
}

}  // namespace

agis::Status BuildEnvironmentalDb(geodb::GeoDatabase* db,
                                  const EnvironmentalConfig& config) {
  {
    ClassDef patch("VegetationPatch", "contiguous vegetation cover");
    AGIS_RETURN_IF_ERROR(
        patch.AddAttribute(AttributeDef::String("vegetation_type")));
    AGIS_RETURN_IF_ERROR(patch.AddAttribute(AttributeDef::Tuple(
        "cover", {AttributeDef::Double("cover_density"),
                  AttributeDef::Double("cover_height"),
                  AttributeDef::String("cover_season")})));
    AGIS_RETURN_IF_ERROR(
        patch.AddAttribute(AttributeDef::Geometry("patch_area")));
    AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(patch)));
  }
  {
    ClassDef river("River", "water course");
    AGIS_RETURN_IF_ERROR(river.AddAttribute(AttributeDef::String("river_name")));
    AGIS_RETURN_IF_ERROR(river.AddAttribute(AttributeDef::Double("flow_m3s")));
    AGIS_RETURN_IF_ERROR(river.AddAttribute(AttributeDef::Geometry("course")));
    AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(river)));
  }
  {
    ClassDef station("MonitoringStation", "field measurement station");
    AGIS_RETURN_IF_ERROR(
        station.AddAttribute(AttributeDef::String("station_code")));
    AGIS_RETURN_IF_ERROR(
        station.AddAttribute(AttributeDef::Double("last_reading")));
    AGIS_RETURN_IF_ERROR(
        station.AddAttribute(AttributeDef::Geometry("position")));
    AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(station)));
  }
  {
    ClassDef area("ProtectedArea", "legally protected zone");
    AGIS_RETURN_IF_ERROR(area.AddAttribute(AttributeDef::String("area_name")));
    AGIS_RETURN_IF_ERROR(area.AddAttribute(AttributeDef::Int("protection_level")));
    AGIS_RETURN_IF_ERROR(area.AddAttribute(AttributeDef::Geometry("zone")));
    AGIS_RETURN_IF_ERROR(db->RegisterClass(std::move(area)));
  }

  Rng rng(config.seed);
  const geom::BoundingBox& world = config.world;
  static const char* kVegTypes[] = {"cerrado", "mata_atlantica", "pasture",
                                    "riparian"};
  static const char* kSeasons[] = {"wet", "dry"};

  for (size_t i = 0; i < config.num_patches; ++i) {
    const double cx = rng.UniformDouble(world.min_x + 100, world.max_x - 100);
    const double cy = rng.UniformDouble(world.min_y + 100, world.max_y - 100);
    AGIS_RETURN_IF_ERROR(
        db->Insert(
              "VegetationPatch",
              {{"vegetation_type", Value::String(kVegTypes[rng.Uniform(4)])},
               {"cover",
                Value::MakeTuple(
                    {{"cover_density", Value::Double(rng.UniformDouble())},
                     {"cover_height",
                      Value::Double(1.0 + rng.UniformDouble() * 25.0)},
                     {"cover_season",
                      Value::String(kSeasons[rng.Uniform(2)])}})},
               {"patch_area",
                Value::MakeGeometry(geom::Geometry::FromPolygon(
                    MakeBlob(&rng, cx, cy, 40 + rng.UniformDouble() * 60)))}})
            .status());
  }

  for (size_t i = 0; i < config.num_rivers; ++i) {
    geom::LineString course;
    double x = world.min_x;
    double y = rng.UniformDouble(world.min_y, world.max_y);
    while (x < world.max_x) {
      course.points.push_back({x, y});
      x += 120 + rng.UniformDouble() * 120;
      y += rng.UniformDouble(-150, 150);
      y = std::min(std::max(y, world.min_y), world.max_y);
    }
    course.points.push_back({world.max_x, y});
    AGIS_RETURN_IF_ERROR(
        db->Insert("River",
                   {{"river_name",
                     Value::String(agis::StrCat("river_", i))},
                    {"flow_m3s",
                     Value::Double(5.0 + rng.UniformDouble() * 300.0)},
                    {"course", Value::MakeGeometry(
                                   geom::Geometry::FromLineString(course))}})
            .status());
  }

  for (size_t i = 0; i < config.num_stations; ++i) {
    AGIS_RETURN_IF_ERROR(
        db->Insert(
              "MonitoringStation",
              {{"station_code",
                Value::String(agis::StrCat("ST-", 100 + i))},
               {"last_reading", Value::Double(rng.UniformDouble() * 50.0)},
               {"position",
                Value::MakeGeometry(geom::Geometry::FromPoint(
                    {rng.UniformDouble(world.min_x, world.max_x),
                     rng.UniformDouble(world.min_y, world.max_y)}))}})
            .status());
  }

  for (size_t i = 0; i < config.num_protected; ++i) {
    const double cx = rng.UniformDouble(world.min_x + 200, world.max_x - 200);
    const double cy = rng.UniformDouble(world.min_y + 200, world.max_y - 200);
    AGIS_RETURN_IF_ERROR(
        db->Insert(
              "ProtectedArea",
              {{"area_name", Value::String(agis::StrCat("reserve_", i))},
               {"protection_level",
                Value::Int(static_cast<int64_t>(1 + rng.Uniform(3)))},
               {"zone",
                Value::MakeGeometry(geom::Geometry::FromPolygon(MakeBlob(
                    &rng, cx, cy, 120 + rng.UniformDouble() * 120)))}})
            .status());
  }
  return agis::Status::OK();
}

std::string AnalystDirectiveSource() {
  return R"(# Environmental analyst view
For category analyst application env_control
schema eco_db display as hierarchy
class River display
  presentation as lineFormat
class MonitoringStation display
  presentation as crossFormat
class VegetationPatch display
  presentation as fillFormat
  instances
    display attribute cover as composed_text
      from cover.density cover.height cover.season
    display attribute patch_area as Null
)";
}

}  // namespace agis::workload
