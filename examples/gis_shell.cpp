// An interactive (and pipeable) shell over the whole system: browse
// windows, run analysis queries, install customization directives,
// switch contexts, ask for explanations, and save/load the database.
// Drives every Figure 1 component from a terminal.
//
//   $ ./gis_shell            # starts with the phone_net demo data
//   agis> help
//   agis> schema
//   agis> open Pole
//   agis> query select Pole where pole_type >= 2
//   agis> context user=juliano application=pole_manager
//   agis> install-fig6
//   agis> open Pole
//   agis> explain Class set: Pole
//   agis> save /tmp/net.agisdb
//
// Reads commands from stdin, so scripted sessions work:
//   printf 'schema\nopen Pole\nquit\n' | ./gis_shell

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "base/strutil.h"
#include "core/active_interface_system.h"
#include "custlang/compiler.h"
#include "custlang/parser.h"
#include "geodb/persist.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace {

using agis::core::ActiveInterfaceSystem;

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  schema                       open the Schema window\n"
      "  open <Class>                 open a Class-set window\n"
      "  instance <id>                open an Instance window\n"
      "  query <select ...>           analysis query -> filtered window\n"
      "  context k=v [k=v ...]        set user/category/application/extras\n"
      "  install <directive...>       install a one-line customization\n"
      "  install-fig6                 install the paper's Figure 6 directive\n"
      "  rules                        list installed customization rules\n"
      "  windows                      list open windows\n"
      "  show <window name>           dump a window (tree + map)\n"
      "  explain <window name>        why does this window look like this?\n"
      "  log                          interaction log\n"
      "  save <path> | load <path>    persist / restore the database\n"
      "  stats                        engine + database statistics\n"
      "  help | quit\n");
}

void ShowWindow(const agis::uilib::InterfaceObject* window) {
  if (window == nullptr) {
    std::printf("no such window\n");
    return;
  }
  std::printf("%s", window->ToTreeString().c_str());
  const auto* area = window->FindDescendant("presentation");
  if (area != nullptr) {
    std::printf("%s", area->GetProperty(agis::uilib::kPropContent).c_str());
  }
  const auto* hierarchy = window->FindDescendant("hierarchy");
  if (hierarchy != nullptr) {
    std::printf("%s",
                hierarchy->GetProperty(agis::uilib::kPropValue).c_str());
  }
}

agis::UserContext ParseContext(const std::vector<std::string>& pairs) {
  agis::UserContext ctx;
  for (const std::string& pair : pairs) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    if (key == "user") {
      ctx.user = value;
    } else if (key == "category") {
      ctx.category = value;
    } else if (key == "application") {
      ctx.application = value;
    } else {
      ctx.extras[key] = value;
    }
  }
  return ctx;
}

}  // namespace

int main() {
  ActiveInterfaceSystem sys("phone_net");
  if (!agis::workload::BuildPhoneNetwork(&sys.db()).ok()) return 1;
  std::printf("ActiveGIS shell — phone_net demo loaded (%zu objects). "
              "'help' lists commands.\n",
              sys.db().NumObjects());

  std::string line;
  while (true) {
    std::printf("agis> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed = agis::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream stream(trimmed);
    std::string command;
    stream >> command;
    std::string rest;
    std::getline(stream, rest);
    rest = agis::Trim(rest);

    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
    } else if (command == "schema") {
      auto window = sys.dispatcher().OpenSchemaWindow();
      if (!window.ok()) {
        std::printf("error: %s\n", window.status().ToString().c_str());
        continue;
      }
      ShowWindow(window.value());
      for (const auto* w : sys.dispatcher().visible_windows()) {
        if (w != window.value()) {
          std::printf("(auto-opened: %s)\n", w->name().c_str());
        }
      }
    } else if (command == "open") {
      auto window = sys.dispatcher().OpenClassWindow(rest);
      if (!window.ok()) {
        std::printf("error: %s\n", window.status().ToString().c_str());
        continue;
      }
      ShowWindow(window.value());
    } else if (command == "instance") {
      char* end = nullptr;
      const unsigned long long id = std::strtoull(rest.c_str(), &end, 10);
      if (end == rest.c_str()) {
        std::printf("usage: instance <id>\n");
        continue;
      }
      auto window = sys.dispatcher().OpenInstanceWindow(id);
      if (!window.ok()) {
        std::printf("error: %s\n", window.status().ToString().c_str());
        continue;
      }
      ShowWindow(window.value());
    } else if (command == "query") {
      auto window = sys.dispatcher().OpenQueryWindow(rest);
      if (!window.ok()) {
        std::printf("error: %s\n", window.status().ToString().c_str());
        continue;
      }
      ShowWindow(window.value());
    } else if (command == "context") {
      sys.dispatcher().set_context(
          ParseContext(agis::SplitWhitespace(rest)));
      std::printf("context = %s\n",
                  sys.dispatcher().context().ToString().c_str());
    } else if (command == "install") {
      auto installed = sys.InstallCustomization(rest);
      if (!installed.ok()) {
        std::printf("error: %s\n", installed.status().ToString().c_str());
        continue;
      }
      std::printf("installed %zu rule(s)\n", installed.value().size());
    } else if (command == "install-fig6") {
      auto installed =
          sys.InstallCustomization(agis::workload::Fig6DirectiveSource());
      if (!installed.ok()) {
        std::printf("error: %s\n", installed.status().ToString().c_str());
        continue;
      }
      auto parsed = agis::custlang::ParseDirective(
          agis::workload::Fig6DirectiveSource());
      std::printf("%s",
                  agis::custlang::ExplainCompilation(parsed.value()).c_str());
    } else if (command == "rules") {
      std::printf("%zu rule(s) installed\n", sys.engine().NumRules());
      for (const auto& [name, source] : sys.StoredDirectives()) {
        std::printf("  directive %s\n", name.c_str());
      }
    } else if (command == "windows") {
      for (const auto* window : sys.dispatcher().windows()) {
        std::printf("  %s%s\n", window->name().c_str(),
                    window->GetProperty(agis::uilib::kPropHidden) == "true"
                        ? " (hidden)"
                        : "");
      }
    } else if (command == "show") {
      ShowWindow(sys.dispatcher().FindWindow(rest));
    } else if (command == "explain") {
      const auto* window = sys.dispatcher().FindWindow(rest);
      if (window == nullptr) {
        std::printf("no such window\n");
        continue;
      }
      std::printf("%s\n", sys.dispatcher().ExplainWindow(*window).c_str());
    } else if (command == "log") {
      for (const std::string& entry : sys.dispatcher().interaction_log()) {
        std::printf("  %s\n", entry.c_str());
      }
    } else if (command == "save") {
      const agis::Status status =
          agis::geodb::SaveDatabaseToFile(sys.db(), rest);
      std::printf("%s\n", status.ToString().c_str());
    } else if (command == "load") {
      auto loaded = agis::geodb::LoadDatabaseFromFile(rest);
      if (!loaded.ok()) {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
        continue;
      }
      std::printf("loaded %zu objects across %zu classes (inspect-only; "
                  "the session keeps its own database)\n",
                  loaded.value()->NumObjects(),
                  loaded.value()->schema().NumClasses());
    } else if (command == "stats") {
      const auto& engine_stats = sys.engine().stats();
      const auto& db_stats = sys.db().stats();
      std::printf(
          "events=%llu custom_fired=%llu conflicts=%llu | "
          "memo hits=%llu misses=%llu evictions=%llu size=%zu | "
          "get_class=%llu get_value=%llu inserts=%llu vetoed=%llu | "
          "buffer hit_ratio=%.2f\n",
          static_cast<unsigned long long>(engine_stats.events_processed),
          static_cast<unsigned long long>(
              engine_stats.customization_rules_fired),
          static_cast<unsigned long long>(engine_stats.conflicts_resolved),
          static_cast<unsigned long long>(engine_stats.cache_hits),
          static_cast<unsigned long long>(engine_stats.cache_misses),
          static_cast<unsigned long long>(engine_stats.cache_evictions),
          sys.engine().cache_size(),
          static_cast<unsigned long long>(db_stats.get_class_calls),
          static_cast<unsigned long long>(db_stats.get_value_calls),
          static_cast<unsigned long long>(db_stats.inserts),
          static_cast<unsigned long long>(db_stats.vetoed_writes),
          sys.db().buffer_pool().stats().HitRatio());
    } else {
      std::printf("unknown command '%s' — try 'help'\n", command.c_str());
    }
  }
  std::printf("\nbye\n");
  return 0;
}
