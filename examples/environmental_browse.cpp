// Environmental-control scenario: a second application domain on the
// same engine (the paper's introduction motivates GIS with
// environmental control). Shows the hierarchy schema mode, per-class
// presentation formats for mixed geometry kinds, and SVG export of a
// customized map.

#include <cstdio>
#include <fstream>

#include "core/active_interface_system.h"
#include "uilib/widget_props.h"
#include "workload/environmental.h"

int main() {
  agis::core::ActiveInterfaceSystem sys("eco_db");
  if (!agis::workload::BuildEnvironmentalDb(&sys.db()).ok()) return 1;

  auto installed = sys.InstallCustomization(
      agis::workload::AnalystDirectiveSource());
  if (!installed.ok()) {
    std::printf("install failed: %s\n",
                installed.status().ToString().c_str());
    return 1;
  }

  agis::UserContext analyst;
  analyst.user = "claudia";
  analyst.category = "analyst";
  analyst.application = "env_control";
  sys.dispatcher().set_context(analyst);

  std::printf("== Schema window (hierarchy mode for analysts) ==\n");
  auto schema_window = sys.dispatcher().OpenSchemaWindow();
  if (!schema_window.ok()) return 1;
  const auto* hierarchy = schema_window.value()->FindDescendant("hierarchy");
  std::printf("%s\n",
              hierarchy->GetProperty(agis::uilib::kPropValue).c_str());

  // Each class renders with its customized format.
  for (const char* cls : {"River", "MonitoringStation", "VegetationPatch"}) {
    auto window = sys.dispatcher().OpenClassWindow(cls);
    if (!window.ok()) {
      std::printf("open %s failed: %s\n", cls,
                  window.status().ToString().c_str());
      return 1;
    }
    const auto* area = window.value()->FindDescendant("presentation");
    std::printf("== %s (style %s, %s features) ==\n%s\n", cls,
                area->GetProperty(agis::uilib::kPropStyle).c_str(),
                area->GetProperty(agis::uilib::kPropFeatureCount).c_str(),
                area->GetProperty(agis::uilib::kPropContent).c_str());
  }

  // Instance window with the composed cover row (patch_area hidden).
  auto patches = sys.db().ScanExtent("VegetationPatch");
  auto instance = sys.dispatcher().OpenInstanceWindow(patches.value().front());
  if (!instance.ok()) return 1;
  std::printf("== VegetationPatch instance (cover composed, area hidden) ==\n");
  const auto* rows = instance.value()->FindChild("attributes");
  for (const auto& row : rows->children()) {
    const auto* value_field = row->FindChild("attr_value");
    std::printf("  %-18s %s\n",
                row->GetProperty(agis::uilib::kPropLabel).c_str(),
                (value_field != nullptr
                     ? value_field->GetProperty(agis::uilib::kPropValue)
                     : row->GetProperty(agis::uilib::kPropValue))
                    .c_str());
  }

  // Export one customized map as SVG next to the binary.
  auto river_window = sys.dispatcher().FindWindow("Class set: River");
  const std::string svg = river_window->FindDescendant("presentation")
                              ->GetProperty(agis::uilib::kPropSvg);
  std::ofstream out("eco_rivers.svg");
  out << svg;
  out.close();
  std::printf("\nwrote eco_rivers.svg (%zu bytes)\n", svg.size());
  return 0;
}
