// Quickstart: build a tiny geographic database, open the generic
// interface, install a one-line customization, and watch the same
// interaction produce a different window — the complete Figure 1 event
// flow in ~80 lines.

#include <cstdio>

#include "core/active_interface_system.h"
#include "geodb/schema.h"
#include "geom/geometry.h"
#include "uilib/widget_props.h"

using agis::geodb::AttributeDef;
using agis::geodb::ClassDef;
using agis::geodb::Value;

int main() {
  // 1. A database with one spatial class.
  agis::core::ActiveInterfaceSystem sys("city");
  ClassDef fountain("Fountain", "public drinking fountain");
  (void)fountain.AddAttribute(AttributeDef::String("fountain_name"));
  (void)fountain.AddAttribute(AttributeDef::Geometry("site"));
  if (!sys.db().RegisterClass(std::move(fountain)).ok()) return 1;
  for (int i = 0; i < 12; ++i) {
    auto inserted = sys.db().Insert(
        "Fountain",
        {{"fountain_name", Value::String("fountain_" + std::to_string(i))},
         {"site", Value::MakeGeometry(agis::geom::Geometry::FromPoint(
                      {10.0 * i + 5.0, 7.0 * ((i * 3) % 11) + 3.0}))}});
    if (!inserted.ok()) {
      std::printf("insert failed: %s\n",
                  inserted.status().ToString().c_str());
      return 1;
    }
  }

  // 2. Generic browsing: Schema window -> Class set window.
  agis::UserContext tourist;
  tourist.user = "tourist";
  tourist.application = "sightseeing";
  sys.dispatcher().set_context(tourist);
  auto schema_window = sys.dispatcher().OpenSchemaWindow();
  if (!schema_window.ok()) return 1;
  std::printf("== Generic Schema window ==\n%s\n",
              schema_window.value()->ToTreeString().c_str());

  auto class_window = sys.dispatcher().SelectClassInSchema(0);
  if (!class_window.ok()) {
    std::printf("select failed: %s\n",
                class_window.status().ToString().c_str());
    return 1;
  }
  const auto* area = class_window.value()->FindDescendant("presentation");
  std::printf("== Generic map (style %s) ==\n%s\n",
              area->GetProperty(agis::uilib::kPropStyle).c_str(),
              area->GetProperty(agis::uilib::kPropContent).c_str());

  // 3. Install a customization for the maintenance crew and rerun the
  //    exact same interaction under their context.
  auto installed = sys.InstallCustomization(R"(
      For category maintenance application waterworks
      class Fountain display
        presentation as crossFormat
  )");
  if (!installed.ok()) {
    std::printf("install failed: %s\n",
                installed.status().ToString().c_str());
    return 1;
  }
  agis::UserContext crew;
  crew.user = "ana";
  crew.category = "maintenance";
  crew.application = "waterworks";
  sys.dispatcher().set_context(crew);
  auto custom_window = sys.dispatcher().OpenClassWindow("Fountain");
  if (!custom_window.ok()) return 1;
  const auto* custom_area =
      custom_window.value()->FindDescendant("presentation");
  std::printf("== Customized map (style %s) ==\n%s\n",
              custom_area->GetProperty(agis::uilib::kPropStyle).c_str(),
              custom_area->GetProperty(agis::uilib::kPropContent).c_str());

  // 4. The dispatcher's log shows the interface/database event split.
  std::printf("== Interaction log ==\n");
  for (const std::string& line : sys.dispatcher().interaction_log()) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
