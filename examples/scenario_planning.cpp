// Simulation interaction mode: a network planner sketches a pole
// expansion as hypothetical edits, inspects a what-if map, pre-checks
// topology constraints, and commits — with the active rules still
// guarding the final writes.

#include <cstdio>

#include "core/active_interface_system.h"
#include "core/scenario.h"
#include "geom/geometry.h"
#include "workload/phone_net.h"

using agis::geodb::Value;

namespace {
Value PointValue(double x, double y) {
  return Value::MakeGeometry(agis::geom::Geometry::FromPoint({x, y}));
}
}  // namespace

int main() {
  agis::core::ActiveInterfaceSystem sys("phone_net");
  agis::workload::PhoneNetConfig config;
  config.num_poles = 12;
  config.num_cables = 0;
  config.num_ducts = 0;
  if (!agis::workload::BuildPhoneNetwork(&sys.db(), config).ok()) return 1;

  // Constraints guard both the committed data and the commit step.
  agis::active::TopologyConstraint inside;
  inside.name = "pole_inside_service_region";
  inside.subject_class = "Pole";
  inside.relation = agis::geom::TopoRelation::kInside;
  inside.object_class = "ServiceRegion";
  inside.quantifier =
      agis::active::TopologyConstraint::Quantifier::kExists;
  if (!sys.topology().AddConstraint(inside).ok()) return 1;

  agis::core::ScenarioSandbox scenario(&sys.db(), &sys.topology());

  std::printf("== Planner sketches three new poles ==\n");
  auto a = scenario.HypotheticalInsert(
      "Pole", {{"pole_location", PointValue(150, 820)},
               {"pole_type", Value::Int(2)}});
  auto b = scenario.HypotheticalInsert(
      "Pole", {{"pole_location", PointValue(420, 640)},
               {"pole_type", Value::Int(2)}});
  auto c = scenario.HypotheticalInsert(  // Deliberately out of range.
      "Pole", {{"pole_location", PointValue(4200, 6400)},
               {"pole_type", Value::Int(2)}});
  if (!a.ok() || !b.ok() || !c.ok()) return 1;
  std::printf("  3 hypothetical inserts recorded (base DB untouched: "
              "%zu poles)\n",
              sys.db().ExtentSize("Pole"));

  std::printf("\n== What-if map (hypotheses shown as @) ==\n");
  auto map = scenario.RenderWhatIf("Pole", sys.styles(), 60, 18);
  if (!map.ok()) return 1;
  std::printf("%s", map.value().c_str());

  std::printf("\n== Constraint pre-check ==\n");
  const auto violations = scenario.CheckConstraints();
  for (const auto& [id, status] : violations) {
    std::printf("  hypothesis %llu: %s\n",
                static_cast<unsigned long long>(id),
                status.ToString().c_str());
  }
  std::printf("  %zu of 3 hypotheses violate constraints\n",
              violations.size());

  std::printf("\n== Commit (rules still guard each write) ==\n");
  auto outcome = scenario.Commit();
  if (!outcome.ok()) return 1;
  std::printf("  applied: %zu, rejected: %zu\n", outcome->applied,
              outcome->rejected.size());
  for (const auto& [what, status] : outcome->rejected) {
    std::printf("  rejected %s -> %s\n", what.c_str(),
                status.ToString().c_str());
  }
  std::printf("  poles after commit: %zu\n", sys.db().ExtentSize("Pole"));
  return 0;
}
