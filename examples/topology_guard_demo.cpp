// The other rule family: maintaining binary topological integrity
// constraints through the same active mechanism (the Medeiros & Cilia
// prototype the paper cites as reference [11]). Field edits that
// violate constraints are vetoed before they reach the store; soft
// constraints warn and count.

#include <cstdio>

#include "core/active_interface_system.h"
#include "geom/geometry.h"
#include "workload/phone_net.h"

using agis::active::TopologyConstraint;
using agis::geodb::Value;

namespace {

Value PointValue(double x, double y) {
  return Value::MakeGeometry(agis::geom::Geometry::FromPoint({x, y}));
}

void Report(const char* what, const agis::Status& status) {
  std::printf("  %-46s -> %s\n", what, status.ToString().c_str());
}

}  // namespace

int main() {
  agis::core::ActiveInterfaceSystem sys("phone_net");
  agis::workload::PhoneNetConfig config;
  config.num_poles = 0;    // Field crew will place poles by hand.
  config.num_cables = 0;
  config.num_ducts = 0;
  if (!agis::workload::BuildPhoneNetwork(&sys.db(), config).ok()) return 1;

  std::printf("== Installing topological constraints as active rules ==\n");
  TopologyConstraint in_region;
  in_region.name = "pole_inside_service_region";
  in_region.subject_class = "Pole";
  in_region.relation = agis::geom::TopoRelation::kInside;
  in_region.object_class = "ServiceRegion";
  in_region.quantifier = TopologyConstraint::Quantifier::kExists;
  if (!sys.topology().AddConstraint(in_region).ok()) return 1;
  std::printf("  %s\n", in_region.ToString().c_str());

  TopologyConstraint spacing;
  spacing.name = "pole_clearance_25m";
  spacing.subject_class = "Pole";
  spacing.relation = agis::geom::TopoRelation::kDisjoint;
  spacing.object_class = "Pole";
  spacing.quantifier = TopologyConstraint::Quantifier::kForAll;
  spacing.min_distance = 25.0;
  if (!sys.topology().AddConstraint(spacing).ok()) return 1;
  std::printf("  %s\n", spacing.ToString().c_str());

  TopologyConstraint soft;
  soft.name = "pole_near_duct_advisory";
  soft.subject_class = "Pole";
  soft.relation = agis::geom::TopoRelation::kDisjoint;
  soft.object_class = "Duct";
  soft.min_distance = 2.0;
  soft.on_violation = TopologyConstraint::OnViolation::kWarn;
  if (!sys.topology().AddConstraint(soft).ok()) return 1;
  std::printf("  %s\n", soft.ToString().c_str());

  std::printf("\n== Field edits ==\n");
  auto& db = sys.db();
  auto p1 = db.Insert("Pole", {{"pole_location", PointValue(100, 100)}});
  Report("place pole at (100,100)", p1.status());
  Report("place pole at (110,100)  [violates 25m clearance]",
         db.Insert("Pole", {{"pole_location", PointValue(110, 100)}})
             .status());
  Report("place pole at (200,100)",
         db.Insert("Pole", {{"pole_location", PointValue(200, 100)}})
             .status());
  Report("place pole at (2000,2000) [outside every region]",
         db.Insert("Pole", {{"pole_location", PointValue(2000, 2000)}})
             .status());
  Report("move first pole to (205,100) [too close to 2nd]",
         db.Update(p1.value(), "pole_location", PointValue(205, 100)));
  Report("move first pole to (300,300)",
         db.Update(p1.value(), "pole_location", PointValue(300, 300)));

  std::printf("\n== Outcome ==\n");
  std::printf("  poles stored: %zu (2 rejected)\n", db.ExtentSize("Pole"));
  std::printf("  violations detected: %llu, warnings issued: %llu, "
              "writes vetoed: %llu\n",
              static_cast<unsigned long long>(
                  sys.topology().violations_detected()),
              static_cast<unsigned long long>(
                  sys.topology().warnings_issued()),
              static_cast<unsigned long long>(db.stats().vetoed_writes));

  const auto audit = sys.topology().CheckAll();
  std::printf("  full-database audit: %zu violation(s)\n", audit.size());
  for (const auto& violation : audit) {
    std::printf("    %s\n", violation.ToString().c_str());
  }
  return 0;
}
