// Section 4 of the paper, end to end: the telephone-utility pole
// manager. Reproduces Figure 4 (default Schema / Class-set / Instance
// windows), Figure 6 (the customization directive and the rules it
// compiles to), and Figure 7 (the customized windows) on the synthetic
// phone_net database.

#include <cstdio>
#include <string>

#include "core/active_interface_system.h"
#include "custlang/compiler.h"
#include "custlang/parser.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace {

void PrintHeader(const std::string& title) {
  std::printf("\n======== %s ========\n", title.c_str());
}

void PrintWindow(const agis::uilib::InterfaceObject* window) {
  std::printf("%s", window->ToTreeString().c_str());
  const auto* area = window->FindDescendant("presentation");
  if (area != nullptr) {
    std::printf("presentation area (style %s, %s features):\n%s",
                area->GetProperty(agis::uilib::kPropStyle).c_str(),
                area->GetProperty(agis::uilib::kPropFeatureCount).c_str(),
                area->GetProperty(agis::uilib::kPropContent).c_str());
  }
}

void PrintInstanceValues(const agis::uilib::InterfaceObject* window) {
  const auto* rows = window->FindChild("attributes");
  if (rows == nullptr) return;
  for (const auto& row : rows->children()) {
    const auto* value_field = row->FindChild("attr_value");
    const std::string value =
        value_field != nullptr
            ? value_field->GetProperty(agis::uilib::kPropValue)
            : row->GetProperty(agis::uilib::kPropValue);
    std::printf("  %-18s %s\n",
                row->GetProperty(agis::uilib::kPropLabel).c_str(),
                value.c_str());
  }
}

}  // namespace

int main() {
  agis::core::ActiveInterfaceSystem sys("phone_net");
  agis::workload::PhoneNetConfig config;
  config.num_poles = 60;
  if (!agis::workload::BuildPhoneNetwork(&sys.db(), config).ok()) return 1;

  PrintHeader("Database schema (Figure 5 environment)");
  std::printf("%s", sys.db().schema().ToString().c_str());

  // ---- Figure 4: the default behavior of the interface ----
  agis::UserContext browser;
  browser.user = "generic_user";
  browser.application = "browsing";
  sys.dispatcher().set_context(browser);

  PrintHeader("Figure 4 (left): default Schema window");
  auto schema_window = sys.dispatcher().OpenSchemaWindow();
  if (!schema_window.ok()) return 1;
  PrintWindow(schema_window.value());

  PrintHeader("Figure 4 (center): default Class set window for Pole");
  auto class_window = sys.dispatcher().OpenClassWindow("Pole");
  if (!class_window.ok()) return 1;
  PrintWindow(class_window.value());

  PrintHeader("Figure 4 (right): default Instance window");
  auto pole_ids = sys.db().ScanExtent("Pole");
  auto instance_window =
      sys.dispatcher().OpenInstanceWindow(pole_ids.value().front());
  if (!instance_window.ok()) return 1;
  PrintInstanceValues(instance_window.value());

  // ---- Figure 6: the customization directive and its rules ----
  PrintHeader("Figure 6: the customization directive");
  const std::string directive_source =
      agis::workload::Fig6DirectiveSource();
  std::printf("%s", directive_source.c_str());

  PrintHeader("Rules compiled from the directive (R1, R2, ...)");
  auto parsed = agis::custlang::ParseDirective(directive_source);
  if (!parsed.ok()) return 1;
  std::printf("%s", agis::custlang::ExplainCompilation(parsed.value()).c_str());

  auto installed = sys.InstallCustomization(directive_source);
  if (!installed.ok()) {
    std::printf("install failed: %s\n",
                installed.status().ToString().c_str());
    return 1;
  }
  std::printf("installed %zu rules into the active mechanism\n",
              installed.value().size());

  // ---- Figure 7: the same interaction, customized ----
  agis::UserContext juliano;
  juliano.user = "juliano";
  juliano.application = "pole_manager";
  sys.dispatcher().set_context(juliano);

  PrintHeader("Figure 7 (left): customized Class set window");
  auto fig7 = sys.dispatcher().OpenSchemaWindow();  // R1 auto-opens Pole.
  if (!fig7.ok()) return 1;
  std::printf("(Schema window hidden by `display as Null`; "
              "Get_Class(Pole) fired automatically)\n");
  const auto* customized_class = sys.dispatcher().FindWindow("Class set: Pole");
  if (customized_class == nullptr) return 1;
  PrintWindow(customized_class);

  PrintHeader("Figure 7 (right): customized Instance window");
  auto customized_instance =
      sys.dispatcher().OpenInstanceWindow(pole_ids.value().front());
  if (!customized_instance.ok()) return 1;
  PrintInstanceValues(customized_instance.value());
  std::printf("(pole_location hidden; pole_composition composed from "
              "material/diameter/height; supplier dereferenced via "
              "get_supplier_name)\n");

  PrintHeader("Explanation mode: why do these windows look like this?");
  std::printf("  %s\n",
              sys.dispatcher().ExplainWindow(*customized_class).c_str());
  std::printf("  %s\n",
              sys.dispatcher()
                  .ExplainWindow(*customized_instance.value())
                  .c_str());

  PrintHeader("Interaction log (interface event -> database event)");
  for (const std::string& line : sys.dispatcher().interaction_log()) {
    std::printf("  %s\n", line.c_str());
  }

  PrintHeader("Active mechanism statistics");
  const auto& stats = sys.engine().stats();
  std::printf("events processed: %llu\ncustomization rules fired: %llu\n"
              "conflicts resolved: %llu\n",
              static_cast<unsigned long long>(stats.events_processed),
              static_cast<unsigned long long>(stats.customization_rules_fired),
              static_cast<unsigned long long>(stats.conflicts_resolved));
  return 0;
}
