#include "carto/incremental.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "carto/ascii_renderer.h"
#include "carto/canvas.h"
#include "carto/style.h"
#include "carto/svg_renderer.h"
#include "geom/geometry.h"

namespace agis::carto {
namespace {

StyledFeature PointFeature(geodb::ObjectId id, double x, double y,
                           const std::string& style = "pointFormat") {
  StyledFeature f;
  f.id = id;
  f.geometry = geom::Geometry::FromPoint({x, y});
  f.style = style;
  return f;
}

StyledFeature LineFeature(geodb::ObjectId id,
                          std::vector<geom::Point> points,
                          const std::string& style = "lineFormat") {
  StyledFeature f;
  f.id = id;
  f.geometry = geom::Geometry::FromLineString(
      geom::LineString{std::move(points)});
  f.style = style;
  return f;
}

StyledFeature PolygonFeature(geodb::ObjectId id,
                             std::vector<geom::Point> ring,
                             const std::string& style = "regionFormat") {
  StyledFeature f;
  f.id = id;
  geom::Polygon poly;
  poly.outer = std::move(ring);
  f.geometry = geom::Geometry::FromPolygon(std::move(poly));
  f.style = style;
  return f;
}

class IncrementalViewTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(styles_.RegisterStandardFormats().ok()); }

  /// Full (non-incremental) render of `features` on the same viewport.
  std::string FullAscii(const geom::BoundingBox& viewport,
                        const std::vector<StyledFeature>& features,
                        int width, int height) {
    MapCanvas canvas(viewport, width, height);
    for (const StyledFeature& f : features) canvas.AddFeature(f);
    return AsciiRenderer(&styles_).RenderFramed(canvas);
  }

  std::string FullSvg(const geom::BoundingBox& viewport,
                      const std::vector<StyledFeature>& features, int width,
                      int height) {
    MapCanvas canvas(viewport, width, height);
    for (const StyledFeature& f : features) canvas.AddFeature(f);
    return SvgRenderer(&styles_).Render(canvas);
  }

  StyleRegistry styles_;
};

TEST_F(IncrementalViewTest, MatchesFullRenderOnMixedFeatures) {
  const std::vector<StyledFeature> features = {
      PointFeature(1, 10, 10),
      LineFeature(2, {{0, 0}, {40, 20}}),
      PolygonFeature(3, {{20, 2}, {38, 2}, {38, 12}, {20, 12}}),
  };
  const geom::BoundingBox viewport = MapCanvas::FitBounds(features);
  IncrementalView view(&styles_, viewport, 40, 16);
  for (const StyledFeature& f : features) view.Upsert(f);

  EXPECT_EQ(view.RenderFramedAscii(), FullAscii(viewport, features, 40, 16));
  EXPECT_EQ(view.RenderSvg(), FullSvg(viewport, features, 40, 16));
  EXPECT_EQ(view.feature_count(), 3u);
  EXPECT_EQ(view.ids(), (std::vector<geodb::ObjectId>{1, 2, 3}));
}

TEST_F(IncrementalViewTest, OverlappingFeaturesResolveLikePaintOrder) {
  // Two polygons covering the same cells: the full pipeline paints in
  // list order (ascending id here), so the later/higher id wins the
  // contested cells. The incremental view must agree — and must
  // restore the lower id's cells when the higher one goes away.
  const std::vector<StyledFeature> overlap = {
      PolygonFeature(1, {{0, 0}, {30, 0}, {30, 10}, {0, 10}}, "fillFormat"),
      PolygonFeature(2, {{10, 2}, {24, 2}, {24, 8}, {10, 8}}, "regionFormat"),
  };
  const geom::BoundingBox viewport = MapCanvas::FitBounds(overlap);
  IncrementalView view(&styles_, viewport, 36, 12);
  view.Upsert(overlap[0]);
  view.Upsert(overlap[1]);
  EXPECT_EQ(view.RenderFramedAscii(), FullAscii(viewport, overlap, 36, 12));

  // Insertion order must not matter — only ids do.
  IncrementalView reversed(&styles_, viewport, 36, 12);
  reversed.Upsert(overlap[1]);
  reversed.Upsert(overlap[0]);
  EXPECT_EQ(reversed.RenderFramedAscii(), view.RenderFramedAscii());
  EXPECT_EQ(reversed.RenderSvg(), view.RenderSvg());

  // Removing the occluding polygon re-exposes the one underneath.
  ASSERT_TRUE(view.Remove(2));
  EXPECT_EQ(view.RenderFramedAscii(),
            FullAscii(viewport, {overlap[0]}, 36, 12));
}

TEST_F(IncrementalViewTest, UpsertReplacesAndUnpaintsOldCells) {
  const StyledFeature before = PointFeature(5, 2, 2);
  const StyledFeature after = PointFeature(5, 8, 8);
  const geom::BoundingBox viewport(0, 0, 10, 10);
  IncrementalView view(&styles_, viewport, 20, 10);
  view.Upsert(before);
  view.Upsert(after);  // Same id: move, not duplicate.
  EXPECT_EQ(view.feature_count(), 1u);
  EXPECT_EQ(view.RenderFramedAscii(), FullAscii(viewport, {after}, 20, 10));
  EXPECT_EQ(view.RenderSvg(), FullSvg(viewport, {after}, 20, 10));
}

TEST_F(IncrementalViewTest, RemoveUnknownIsFalseAndIdempotent) {
  IncrementalView view(&styles_, geom::BoundingBox(0, 0, 10, 10), 10, 10);
  EXPECT_FALSE(view.Remove(42));
  view.Upsert(PointFeature(42, 5, 5));
  EXPECT_TRUE(view.Has(42));
  EXPECT_TRUE(view.Remove(42));
  EXPECT_FALSE(view.Remove(42));
  EXPECT_EQ(view.feature_count(), 0u);
  EXPECT_EQ(view.RenderFramedAscii(),
            FullAscii(geom::BoundingBox(0, 0, 10, 10), {}, 10, 10));
}

TEST_F(IncrementalViewTest, FeaturesOutsideViewportClipCleanly) {
  const geom::BoundingBox viewport(0, 0, 10, 10);
  IncrementalView view(&styles_, viewport, 12, 12);
  view.Upsert(PointFeature(1, 500, 500));  // Far off-raster.
  view.Upsert(LineFeature(2, {{-100, 5}, {100, 5}}));  // Crosses.
  const std::vector<StyledFeature> same = {PointFeature(1, 500, 500),
                                           LineFeature(2, {{-100, 5},
                                                           {100, 5}})};
  EXPECT_EQ(view.RenderFramedAscii(), FullAscii(viewport, same, 12, 12));
}

TEST_F(IncrementalViewTest, ManyRandomMutationsStayEquivalent) {
  const geom::BoundingBox viewport(0, 0, 64, 32);
  IncrementalView view(&styles_, viewport, 48, 20);
  std::map<geodb::ObjectId, StyledFeature> truth;
  // Deterministic pseudo-random walk of upserts and removes.
  uint64_t rng = 12345;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (int step = 0; step < 200; ++step) {
    const geodb::ObjectId id = 1 + next() % 12;
    if (next() % 4 == 0) {
      truth.erase(id);
      view.Remove(id);
    } else {
      const double x = static_cast<double>(next() % 64);
      const double y = static_cast<double>(next() % 32);
      StyledFeature f =
          (id % 2 == 0)
              ? PointFeature(id, x, y)
              : LineFeature(id, {{x, y}, {x + 10, y + 4}});
      truth[id] = f;
      view.Upsert(f);
    }
  }
  std::vector<StyledFeature> features;
  for (const auto& [id, f] : truth) features.push_back(f);  // Ascending id.
  EXPECT_EQ(view.RenderFramedAscii(), FullAscii(viewport, features, 48, 20));
  EXPECT_EQ(view.RenderSvg(), FullSvg(viewport, features, 48, 20));
  EXPECT_EQ(view.feature_count(), truth.size());
}

}  // namespace
}  // namespace agis::carto
