#include <gtest/gtest.h>

#include "base/strutil.h"
#include "carto/ascii_renderer.h"
#include "carto/canvas.h"
#include "carto/style.h"
#include "carto/svg_renderer.h"

namespace agis::carto {
namespace {

StyledFeature PointFeature(geodb::ObjectId id, double x, double y,
                           const std::string& style = "pointFormat") {
  StyledFeature f;
  f.id = id;
  f.geometry = geom::Geometry::FromPoint({x, y});
  f.style = style;
  return f;
}

class CartoTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(styles_.RegisterStandardFormats().ok()); }
  StyleRegistry styles_;
};

TEST_F(CartoTest, StandardFormatsRegistered) {
  for (const char* name :
       {"defaultFormat", "pointFormat", "crossFormat", "lineFormat",
        "fillFormat", "regionFormat", "highlightFormat"}) {
    EXPECT_TRUE(styles_.Has(name)) << name;
  }
  EXPECT_EQ(styles_.Find("pointFormat")->ascii_char, '*');
  EXPECT_TRUE(styles_.Find("regionFormat")->fill);
  EXPECT_FALSE(styles_.Has("nope"));
}

TEST_F(CartoTest, RegistryRejectsDuplicatesAndEmptyNames) {
  SymbolStyle s;
  s.name = "pointFormat";
  EXPECT_TRUE(styles_.Register(s).IsAlreadyExists());
  EXPECT_TRUE(styles_.Register(s, /*allow_replace=*/true).ok());
  s.name = "";
  EXPECT_TRUE(styles_.Register(s).IsInvalidArgument());
}

TEST_F(CartoTest, CanvasTransformRoundTrips) {
  MapCanvas canvas(geom::BoundingBox(0, 0, 100, 50), 100, 50);
  const PixelPoint px = canvas.ToPixel({50, 25});
  EXPECT_EQ(px.x, 50);
  EXPECT_EQ(px.y, 25);  // y flipped: middle stays middle.
  // Top-left of the map (min_x, max_y) is pixel (0, 0).
  const PixelPoint corner = canvas.ToPixel({0, 50});
  EXPECT_EQ(corner.x, 0);
  EXPECT_EQ(corner.y, 0);
  // ToMap returns the cell center.
  const geom::Point back = canvas.ToMap(px);
  EXPECT_NEAR(back.x, 50.5, 1e-9);
  EXPECT_NEAR(back.y, 24.5, 1e-9);
  EXPECT_DOUBLE_EQ(canvas.UnitsPerCellX(), 1.0);
}

TEST_F(CartoTest, FitBoundsAddsMargin) {
  std::vector<StyledFeature> features = {PointFeature(1, 0, 0),
                                         PointFeature(2, 10, 10)};
  const geom::BoundingBox fit = MapCanvas::FitBounds(features, 0.1);
  EXPECT_LT(fit.min_x, 0);
  EXPECT_GT(fit.max_x, 10);
  // Empty features: unit box fallback.
  EXPECT_EQ(MapCanvas::FitBounds({}, 0.1), geom::BoundingBox(0, 0, 1, 1));
  // Single point: non-degenerate box.
  const geom::BoundingBox single =
      MapCanvas::FitBounds({PointFeature(1, 5, 5)}, 0.1);
  EXPECT_GT(single.Width(), 0);
}

TEST_F(CartoTest, HitTestFindsNearestFeature) {
  MapCanvas canvas(geom::BoundingBox(0, 0, 100, 100), 50, 50);
  canvas.AddFeature(PointFeature(1, 10, 10));
  canvas.AddFeature(PointFeature(2, 90, 90));
  EXPECT_EQ(canvas.HitTest({12, 11}, 5.0), 1u);
  EXPECT_EQ(canvas.HitTest({88, 91}, 5.0), 2u);
  EXPECT_EQ(canvas.HitTest({50, 50}, 5.0), 0u);  // Nothing close.
}

TEST_F(CartoTest, HitTestInsidePolygonIsDistanceZero) {
  MapCanvas canvas(geom::BoundingBox(0, 0, 100, 100), 50, 50);
  StyledFeature region;
  region.id = 9;
  geom::Polygon square;
  square.outer = {{20, 20}, {60, 20}, {60, 60}, {20, 60}};
  region.geometry = geom::Geometry::FromPolygon(square);
  canvas.AddFeature(region);
  canvas.AddFeature(PointFeature(1, 40, 42));
  // A click inside the polygon but nearer the point picks whichever
  // has the smallest distance — the point is 2 units away, the
  // polygon 0, so the polygon wins.
  EXPECT_EQ(canvas.HitTest({40, 40}, 5.0), 9u);
  // Outside both, within tolerance of the polygon's edge only.
  EXPECT_EQ(canvas.HitTest({62, 40}, 3.0), 9u);
}

TEST_F(CartoTest, AsciiRendererPlotsPoints) {
  MapCanvas canvas(geom::BoundingBox(0, 0, 10, 10), 11, 11);
  canvas.AddFeature(PointFeature(1, 5, 5));
  canvas.AddFeature(PointFeature(2, 0, 0, "crossFormat"));
  const AsciiRenderer renderer(&styles_);
  const std::vector<std::string> rows = renderer.RenderRows(canvas);
  ASSERT_EQ(rows.size(), 11u);
  ASSERT_EQ(rows[0].size(), 11u);
  // (5,5) is mid-raster; (0,0) is bottom-left.
  EXPECT_EQ(rows[5][5], '*');
  EXPECT_EQ(rows[10][0], '+');
}

TEST_F(CartoTest, AsciiRendererDrawsLines) {
  MapCanvas canvas(geom::BoundingBox(0, 0, 10, 10), 11, 11);
  StyledFeature line;
  line.id = 1;
  line.style = "lineFormat";
  line.geometry = geom::Geometry::FromLineString(
      geom::LineString{{{0, 5}, {10, 5}}});
  canvas.AddFeature(line);
  const AsciiRenderer renderer(&styles_);
  const auto rows = renderer.RenderRows(canvas);
  // Horizontal line: the whole row is '-'.
  for (int x = 0; x < 11; ++x) {
    EXPECT_EQ(rows[5][static_cast<size_t>(x)], '-') << x;
  }
}

TEST_F(CartoTest, AsciiRendererFillsPolygons) {
  MapCanvas canvas(geom::BoundingBox(0, 0, 20, 20), 21, 21);
  StyledFeature poly;
  poly.id = 1;
  poly.style = "fillFormat";
  geom::Polygon square;
  square.outer = {{4, 4}, {16, 4}, {16, 16}, {4, 16}};
  poly.geometry = geom::Geometry::FromPolygon(square);
  canvas.AddFeature(poly);
  const AsciiRenderer renderer(&styles_);
  const auto rows = renderer.RenderRows(canvas);
  // Interior filled with '#', outline drawn with '%'.
  EXPECT_EQ(rows[10][10], '#');
  EXPECT_EQ(rows[4][4], '%');
  // Outside untouched.
  EXPECT_EQ(rows[0][0], ' ');
}

TEST_F(CartoTest, UnknownStyleFallsBack) {
  MapCanvas canvas(geom::BoundingBox(0, 0, 10, 10), 11, 11);
  canvas.AddFeature(PointFeature(1, 5, 5, "no_such_style"));
  const AsciiRenderer renderer(&styles_);
  const auto rows = renderer.RenderRows(canvas);
  EXPECT_EQ(rows[5][5], '*');  // Fallback style glyph.
}

TEST_F(CartoTest, RenderFramedHasBorder) {
  MapCanvas canvas(geom::BoundingBox(0, 0, 4, 4), 5, 3);
  const AsciiRenderer renderer(&styles_);
  const std::string framed = renderer.RenderFramed(canvas);
  const auto lines = agis::Split(framed, '\n');
  ASSERT_GE(lines.size(), 5u);
  EXPECT_EQ(lines[0][0], '+');
  EXPECT_EQ(lines[1][0], '|');
  EXPECT_EQ(lines[1].size(), 7u);  // 5 + 2 borders.
}

TEST_F(CartoTest, SvgRendererEmitsElements) {
  MapCanvas canvas(geom::BoundingBox(0, 0, 100, 100), 200, 200);
  canvas.AddFeature(PointFeature(7, 50, 50));
  StyledFeature line;
  line.id = 8;
  line.style = "lineFormat";
  line.geometry =
      geom::Geometry::FromLineString(geom::LineString{{{0, 0}, {100, 100}}});
  canvas.AddFeature(line);
  StyledFeature poly;
  poly.id = 9;
  poly.style = "regionFormat";
  geom::Polygon square;
  square.outer = {{10, 10}, {30, 10}, {30, 30}, {10, 30}};
  square.holes.push_back({{15, 15}, {20, 15}, {20, 20}});
  poly.geometry = geom::Geometry::FromPolygon(square);
  canvas.AddFeature(poly);

  const SvgRenderer renderer(&styles_);
  const std::string svg = renderer.Render(canvas);
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("data-oid=\"7\""), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("data-oid=\"8\""), std::string::npos);
  EXPECT_NE(svg.find("fill-rule=\"evenodd\""), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Region format carries its fill color.
  EXPECT_NE(svg.find("#e6f0d8"), std::string::npos);
}

TEST_F(CartoTest, SvgMarkersVaryByShape) {
  MapCanvas canvas(geom::BoundingBox(0, 0, 10, 10), 100, 100);
  canvas.AddFeature(PointFeature(1, 5, 5, "crossFormat"));
  canvas.AddFeature(PointFeature(2, 2, 2, "defaultFormat"));  // Square.
  canvas.AddFeature(PointFeature(3, 8, 8, "highlightFormat"));  // Circle.
  const SvgRenderer renderer(&styles_);
  const std::string svg = renderer.Render(canvas);
  EXPECT_NE(svg.find("<path d=\"M"), std::string::npos);   // Cross.
  EXPECT_NE(svg.find("<rect"), std::string::npos);          // Square.
  EXPECT_NE(svg.find("fill=\"none\""), std::string::npos);  // Circle outline.
}

}  // namespace
}  // namespace agis::carto
