#include "ui/view_refresher.h"

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace agis::ui {
namespace {

geodb::Value PointValue(double x, double y) {
  return geodb::Value::MakeGeometry(geom::Geometry::FromPoint({x, y}));
}

class ViewRefresherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<core::ActiveInterfaceSystem>("phone_net");
    ASSERT_TRUE(workload::BuildPhoneNetwork(&sys_->db()).ok());
    UserContext ctx;
    ctx.user = "viewer";
    sys_->dispatcher().set_context(ctx);
  }
  std::unique_ptr<core::ActiveInterfaceSystem> sys_;
};

TEST_F(ViewRefresherTest, MarkStaleFlagsOpenWindows) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());
  auto window = sys_->dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(window.ok());
  EXPECT_NE(window.value()->GetProperty("stale"), "true");

  ASSERT_TRUE(
      sys_->db().Insert("Pole", {{"pole_location", PointValue(1, 1)}}).ok());
  EXPECT_EQ(sys_->dispatcher()
                .FindWindow("Class set: Pole")
                ->GetProperty("stale"),
            "true");
  EXPECT_EQ(refresher.windows_marked_stale(), 1u);

  // Writes to classes without open windows do nothing.
  ASSERT_TRUE(sys_->db()
                  .Insert("Supplier", {{"supplier_name",
                                        geodb::Value::String("X")}})
                  .ok());
  EXPECT_EQ(refresher.windows_marked_stale(), 1u);
}

TEST_F(ViewRefresherTest, AutoRefreshRebuildsThePresentation) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kAutoRefresh);
  ASSERT_TRUE(refresher.Install().ok());
  auto window = sys_->dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(window.ok());
  const size_t before =
      std::stoul(window.value()
                     ->FindDescendant("presentation")
                     ->GetProperty(uilib::kPropFeatureCount));

  ASSERT_TRUE(
      sys_->db().Insert("Pole", {{"pole_location", PointValue(1, 1)}}).ok());
  const uilib::InterfaceObject* refreshed =
      sys_->dispatcher().FindWindow("Class set: Pole");
  ASSERT_NE(refreshed, nullptr);
  EXPECT_EQ(std::stoul(refreshed->FindDescendant("presentation")
                           ->GetProperty(uilib::kPropFeatureCount)),
            before + 1);
  EXPECT_EQ(refresher.windows_refreshed(), 1u);
}

TEST_F(ViewRefresherTest, UpdatesAndDeletesAlsoTrigger) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  const auto poles = sys_->db().ScanExtent("Pole");
  ASSERT_TRUE(
      sys_->db().Update(poles.value().front(), "pole_type",
                        geodb::Value::Int(3))
          .ok());
  EXPECT_EQ(refresher.windows_marked_stale(), 1u);
  ASSERT_TRUE(sys_->db().Delete(poles.value().front()).ok());
  EXPECT_EQ(refresher.windows_marked_stale(), 2u);
}

TEST_F(ViewRefresherTest, UninstallStopsTracking) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());
  EXPECT_EQ(refresher.Uninstall(), 3u);
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  ASSERT_TRUE(
      sys_->db().Insert("Pole", {{"pole_location", PointValue(1, 1)}}).ok());
  EXPECT_EQ(refresher.windows_marked_stale(), 0u);
  // Install is idempotent.
  ASSERT_TRUE(refresher.Install().ok());
  ASSERT_TRUE(refresher.Install().ok());
  EXPECT_EQ(refresher.Uninstall(), 3u);
}

// ---- Incremental maintenance through the changefeed ----------------------

struct AreaSnapshot {
  std::string ids;
  std::string feature_count;
  std::string content;
  std::string svg;
};

AreaSnapshot CaptureArea(const uilib::InterfaceObject* window) {
  const uilib::InterfaceObject* area = window->FindDescendant("presentation");
  AreaSnapshot snap;
  if (area == nullptr) return snap;
  snap.ids = area->GetProperty("ids");
  snap.feature_count = area->GetProperty(uilib::kPropFeatureCount);
  snap.content = area->GetProperty(uilib::kPropContent);
  snap.svg = area->GetProperty(uilib::kPropSvg);
  return snap;
}

TEST_F(ViewRefresherTest, PatchedRefreshMatchesFullRebuild) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());
  ASSERT_NE(sys_->changefeed(), nullptr);
  refresher.AttachChangefeed(sys_->changefeed(), &sys_->styles());
  ASSERT_TRUE(refresher.changefeed_attached());
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());

  // Interior mutations only, so the viewport fit stays stable and a
  // patched window is comparable byte-for-byte with a full rebuild.
  auto p1 = sys_->db().Insert(
      "Pole", {{"pole_location", PointValue(400, 400)}});
  auto p2 = sys_->db().Insert(
      "Pole", {{"pole_location", PointValue(410, 410)}});
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  auto patched = refresher.RefreshStale();
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(patched.value(), 1u);

  ASSERT_TRUE(sys_->db()
                  .Update(p1.value(), "pole_location", PointValue(450, 450))
                  .ok());
  ASSERT_TRUE(refresher.RefreshStale().ok());
  ASSERT_TRUE(
      sys_->db().Update(p1.value(), "pole_type", geodb::Value::Int(5)).ok());
  ASSERT_TRUE(refresher.RefreshStale().ok());
  ASSERT_TRUE(sys_->db().Delete(p2.value()).ok());
  ASSERT_TRUE(refresher.RefreshStale().ok());

  EXPECT_EQ(refresher.windows_patched(), 4u);
  EXPECT_EQ(refresher.full_rebuilds(), 0u);
  EXPECT_EQ(refresher.resyncs(), 0u);

  const uilib::InterfaceObject* window =
      sys_->dispatcher().FindWindow("Class set: Pole");
  ASSERT_NE(window, nullptr);
  EXPECT_NE(window->GetProperty("stale"), "true");
  const AreaSnapshot after_patch = CaptureArea(window);

  // Ground truth: rebuild the window from scratch.
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  const AreaSnapshot rebuilt =
      CaptureArea(sys_->dispatcher().FindWindow("Class set: Pole"));
  EXPECT_EQ(after_patch.ids, rebuilt.ids);
  EXPECT_EQ(after_patch.feature_count, rebuilt.feature_count);
  EXPECT_EQ(after_patch.content, rebuilt.content);
  EXPECT_EQ(after_patch.svg, rebuilt.svg);
}

TEST_F(ViewRefresherTest, RefreshWithNoStaleWindowsStillAcksTheFeed) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());
  refresher.AttachChangefeed(sys_->changefeed(), &sys_->styles());
  // Writes to a class with no open window: records pile up...
  ASSERT_TRUE(
      sys_->db().Insert("Pole", {{"pole_location", PointValue(1, 1)}}).ok());
  auto refreshed = refresher.RefreshStale();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed.value(), 0u);
  // ...but the idle pass consumed them, so lag stays bounded.
  ASSERT_TRUE(
      sys_->db().Insert("Pole", {{"pole_location", PointValue(2, 2)}}).ok());
  ASSERT_TRUE(refresher.RefreshStale().ok());
  EXPECT_EQ(refresher.windows_patched(), 0u);
}

TEST_F(ViewRefresherTest, ResyncFallsBackToFullRebuild) {
  core::SystemOptions options;
  options.changefeed_capacity = 4;  // Tiny ring: easy to overrun.
  auto sys = std::make_unique<core::ActiveInterfaceSystem>("phone_net",
                                                           options);
  ASSERT_TRUE(workload::BuildPhoneNetwork(&sys->db()).ok());
  ViewRefresher refresher(&sys->dispatcher(), &sys->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());
  refresher.AttachChangefeed(sys->changefeed(), &sys->styles());
  ASSERT_TRUE(sys->dispatcher().OpenClassWindow("Pole").ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        sys->db()
            .Insert("Pole", {{"pole_location", PointValue(4000 + i, 4000)}})
            .ok());
  }
  auto refreshed = refresher.RefreshStale();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed.value(), 1u);
  EXPECT_EQ(refresher.resyncs(), 1u);
  EXPECT_EQ(refresher.windows_patched(), 0u);
  EXPECT_EQ(refresher.full_rebuilds(), 1u);
  // The rebuilt window is current again.
  const uilib::InterfaceObject* window =
      sys->dispatcher().FindWindow("Class set: Pole");
  ASSERT_NE(window, nullptr);
  EXPECT_NE(window->GetProperty("stale"), "true");
  // Back in step: the next small batch patches incrementally.
  ASSERT_TRUE(
      sys->db()
          .Insert("Pole", {{"pole_location", PointValue(4500, 4500)}})
          .ok());
  ASSERT_TRUE(refresher.RefreshStale().ok());
  EXPECT_EQ(refresher.windows_patched(), 1u);
}

TEST_F(ViewRefresherTest, SchemaDeltaForcesRebuild) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());
  refresher.AttachChangefeed(sys_->changefeed(), &sys_->styles());
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());

  ASSERT_TRUE(
      sys_->db().Insert("Pole", {{"pole_location", PointValue(1, 1)}}).ok());
  geodb::ClassDef fresh("FreshClass", "");
  ASSERT_TRUE(sys_->db().RegisterClass(std::move(fresh)).ok());

  ASSERT_TRUE(refresher.RefreshStale().ok());
  EXPECT_EQ(refresher.windows_patched(), 0u);
  EXPECT_EQ(refresher.full_rebuilds(), 1u);
}

TEST_F(ViewRefresherTest, DetachRevertsToFullRebuilds) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());
  refresher.AttachChangefeed(sys_->changefeed(), &sys_->styles());
  refresher.DetachChangefeed();
  EXPECT_FALSE(refresher.changefeed_attached());
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  ASSERT_TRUE(
      sys_->db().Insert("Pole", {{"pole_location", PointValue(1, 1)}}).ok());
  auto refreshed = refresher.RefreshStale();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed.value(), 1u);
  EXPECT_EQ(refresher.windows_patched(), 0u);
  EXPECT_EQ(refresher.full_rebuilds(), 1u);
}

}  // namespace
}  // namespace agis::ui
