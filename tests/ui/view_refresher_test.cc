#include "ui/view_refresher.h"

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace agis::ui {
namespace {

geodb::Value PointValue(double x, double y) {
  return geodb::Value::MakeGeometry(geom::Geometry::FromPoint({x, y}));
}

class ViewRefresherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<core::ActiveInterfaceSystem>("phone_net");
    ASSERT_TRUE(workload::BuildPhoneNetwork(&sys_->db()).ok());
    UserContext ctx;
    ctx.user = "viewer";
    sys_->dispatcher().set_context(ctx);
  }
  std::unique_ptr<core::ActiveInterfaceSystem> sys_;
};

TEST_F(ViewRefresherTest, MarkStaleFlagsOpenWindows) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());
  auto window = sys_->dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(window.ok());
  EXPECT_NE(window.value()->GetProperty("stale"), "true");

  ASSERT_TRUE(
      sys_->db().Insert("Pole", {{"pole_location", PointValue(1, 1)}}).ok());
  EXPECT_EQ(sys_->dispatcher()
                .FindWindow("Class set: Pole")
                ->GetProperty("stale"),
            "true");
  EXPECT_EQ(refresher.windows_marked_stale(), 1u);

  // Writes to classes without open windows do nothing.
  ASSERT_TRUE(sys_->db()
                  .Insert("Supplier", {{"supplier_name",
                                        geodb::Value::String("X")}})
                  .ok());
  EXPECT_EQ(refresher.windows_marked_stale(), 1u);
}

TEST_F(ViewRefresherTest, AutoRefreshRebuildsThePresentation) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kAutoRefresh);
  ASSERT_TRUE(refresher.Install().ok());
  auto window = sys_->dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(window.ok());
  const size_t before =
      std::stoul(window.value()
                     ->FindDescendant("presentation")
                     ->GetProperty(uilib::kPropFeatureCount));

  ASSERT_TRUE(
      sys_->db().Insert("Pole", {{"pole_location", PointValue(1, 1)}}).ok());
  const uilib::InterfaceObject* refreshed =
      sys_->dispatcher().FindWindow("Class set: Pole");
  ASSERT_NE(refreshed, nullptr);
  EXPECT_EQ(std::stoul(refreshed->FindDescendant("presentation")
                           ->GetProperty(uilib::kPropFeatureCount)),
            before + 1);
  EXPECT_EQ(refresher.windows_refreshed(), 1u);
}

TEST_F(ViewRefresherTest, UpdatesAndDeletesAlsoTrigger) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  const auto poles = sys_->db().ScanExtent("Pole");
  ASSERT_TRUE(
      sys_->db().Update(poles.value().front(), "pole_type",
                        geodb::Value::Int(3))
          .ok());
  EXPECT_EQ(refresher.windows_marked_stale(), 1u);
  ASSERT_TRUE(sys_->db().Delete(poles.value().front()).ok());
  EXPECT_EQ(refresher.windows_marked_stale(), 2u);
}

TEST_F(ViewRefresherTest, UninstallStopsTracking) {
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());
  EXPECT_EQ(refresher.Uninstall(), 3u);
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  ASSERT_TRUE(
      sys_->db().Insert("Pole", {{"pole_location", PointValue(1, 1)}}).ok());
  EXPECT_EQ(refresher.windows_marked_stale(), 0u);
  // Install is idempotent.
  ASSERT_TRUE(refresher.Install().ok());
  ASSERT_TRUE(refresher.Install().ok());
  EXPECT_EQ(refresher.Uninstall(), 3u);
}

}  // namespace
}  // namespace agis::ui
