// Tests for batched multi-window dispatch: OpenClassWindows resolving
// its customizations through GetCustomizationBatch on the system's
// thread pool, and ViewRefresher::RefreshStale rebuilding flagged
// windows in one batch.

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "ui/view_refresher.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace agis::ui {
namespace {

class BatchDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<core::ActiveInterfaceSystem>("phone_net");
    ASSERT_TRUE(workload::BuildPhoneNetwork(&sys_->db()).ok());
    UserContext ctx;
    ctx.user = "juliano";
    ctx.application = "pole_manager";
    sys_->dispatcher().set_context(ctx);
  }

  std::unique_ptr<core::ActiveInterfaceSystem> sys_;
};

TEST_F(BatchDispatchTest, OpenClassWindowsOpensEveryWindow) {
  ASSERT_TRUE(sys_->dispatcher().thread_pool() != nullptr);
  ASSERT_TRUE(
      sys_->dispatcher().OpenClassWindows({"Pole", "Duct", "Cable"}).ok());
  EXPECT_EQ(sys_->dispatcher().windows().size(), 3u);
  for (const char* cls : {"Pole", "Duct", "Cable"}) {
    const uilib::InterfaceObject* window =
        sys_->dispatcher().FindWindow(std::string("Class set: ") + cls);
    ASSERT_NE(window, nullptr) << cls;
    EXPECT_NE(window->FindDescendant("presentation"), nullptr);
  }
}

TEST_F(BatchDispatchTest, BatchedWindowsMatchSequentialOnes) {
  // Install the Figure 6 customization so the batch path must carry
  // real payloads, not just defaults.
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::Fig6DirectiveSource()).ok());
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindows({"Pole", "Duct"}).ok());
  const uilib::InterfaceObject* batched =
      sys_->dispatcher().FindWindow("Class set: Pole");
  ASSERT_NE(batched, nullptr);
  const std::string batched_control =
      batched->FindDescendant("control_Pole")->GetProperty("prototype");
  const std::string batched_style =
      batched->FindDescendant("presentation")->GetProperty(uilib::kPropStyle);

  auto sequential = sys_->dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(
      (*sequential)->FindDescendant("control_Pole")->GetProperty("prototype"),
      batched_control);
  EXPECT_EQ((*sequential)
                ->FindDescendant("presentation")
                ->GetProperty(uilib::kPropStyle),
            batched_style);
}

TEST_F(BatchDispatchTest, OpenClassWindowsRejectsUnknownClass) {
  EXPECT_FALSE(
      sys_->dispatcher().OpenClassWindows({"Pole", "NoSuchClass"}).ok());
}

TEST_F(BatchDispatchTest, RefreshStaleRebuildsFlaggedWindowsInOneBatch) {
  ASSERT_TRUE(
      sys_->dispatcher().OpenClassWindows({"Pole", "Duct", "Cable"}).ok());
  ViewRefresher refresher(&sys_->dispatcher(), &sys_->engine(),
                          ViewRefresher::Mode::kMarkStale);
  ASSERT_TRUE(refresher.Install().ok());

  // Writes to two of the three classes flag their windows stale.
  ASSERT_TRUE(sys_->db()
                  .Insert("Pole", {{"pole_location",
                                    geodb::Value::MakeGeometry(
                                        geom::Geometry::FromPoint({1, 2}))}})
                  .ok());
  ASSERT_TRUE(sys_->db().Insert("Duct", {}).ok());

  size_t stale = 0;
  for (const uilib::InterfaceObject* window : sys_->dispatcher().windows()) {
    if (window->GetProperty("stale") == "true") ++stale;
  }
  EXPECT_EQ(stale, 2u);

  auto refreshed = refresher.RefreshStale();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(*refreshed, 2u);
  for (const uilib::InterfaceObject* window : sys_->dispatcher().windows()) {
    EXPECT_NE(window->GetProperty("stale"), "true") << window->name();
  }
  EXPECT_EQ(refresher.windows_refreshed(), 2u);

  // A second sweep is a no-op.
  auto again = refresher.RefreshStale();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

}  // namespace
}  // namespace agis::ui
