#include "ui/dispatcher.h"

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "ui/protocol.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace agis::ui {
namespace {

class DispatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<core::ActiveInterfaceSystem>("phone_net");
    ASSERT_TRUE(workload::BuildPhoneNetwork(&sys_->db()).ok());
    UserContext ctx;
    ctx.user = "browser";
    ctx.application = "explore";
    sys_->dispatcher().set_context(ctx);
  }

  std::unique_ptr<core::ActiveInterfaceSystem> sys_;
};

TEST_F(DispatcherTest, OpenSchemaThenSelectClassThenInstance) {
  auto schema = sys_->dispatcher().OpenSchemaWindow();
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(sys_->dispatcher().windows().size(), 1u);

  // Find Pole in the class list and select it.
  auto* list = schema.value()->FindDescendant("classes");
  const auto items = uilib::GetListItems(*list);
  const auto pole_it = std::find(items.begin(), items.end(), "Pole");
  ASSERT_NE(pole_it, items.end());
  auto class_window = sys_->dispatcher().SelectClassInSchema(
      static_cast<size_t>(pole_it - items.begin()));
  ASSERT_TRUE(class_window.ok()) << class_window.status();
  EXPECT_EQ(class_window.value()->GetProperty(uilib::kPropClass), "Pole");
  EXPECT_EQ(sys_->dispatcher().windows().size(), 2u);

  // Click the map near a known pole.
  auto pole_ids = sys_->db().ScanExtent("Pole");
  ASSERT_TRUE(pole_ids.ok());
  const geodb::Snapshot snap = sys_->db().OpenSnapshot();
  const geodb::ObjectInstance* pole =
      sys_->db().FindObjectAt(snap, pole_ids.value().front());
  const geom::Point site = pole->Get("pole_location").geometry_value().point();
  auto instance = sys_->dispatcher().SelectInstanceAt("Pole", site, 1.0);
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_EQ(instance.value()->GetProperty(uilib::kPropObject),
            std::to_string(pole->id()));
  EXPECT_EQ(sys_->dispatcher().windows().size(), 3u);

  // Log shows the full interaction chain.
  const auto& log = sys_->dispatcher().interaction_log();
  ASSERT_GE(log.size(), 4u);
  EXPECT_NE(log[0].find("Get_Schema"), std::string::npos);
  EXPECT_NE(log.back().find("Get_Value"), std::string::npos);
}

TEST_F(DispatcherTest, SelectClassWithoutSchemaWindowFails) {
  EXPECT_TRUE(sys_->dispatcher()
                  .SelectClassInSchema(0)
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(DispatcherTest, SelectInstanceWithoutClassWindowFails) {
  EXPECT_TRUE(sys_->dispatcher()
                  .SelectInstanceAt("Pole", {0, 0}, 5.0)
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(DispatcherTest, SelectInstanceMissesWhenNothingNear) {
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  EXPECT_TRUE(sys_->dispatcher()
                  .SelectInstanceAt("Pole", {-9999, -9999}, 0.5)
                  .status()
                  .IsNotFound());
}

TEST_F(DispatcherTest, ReopeningAWindowReplacesIt) {
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  EXPECT_EQ(sys_->dispatcher().windows().size(), 1u);
}

TEST_F(DispatcherTest, CloseWindow) {
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  EXPECT_TRUE(sys_->dispatcher().CloseWindow("Class set: Pole").ok());
  EXPECT_TRUE(sys_->dispatcher().CloseWindow("Class set: Pole").IsNotFound());
  EXPECT_TRUE(sys_->dispatcher().windows().empty());
}

TEST_F(DispatcherTest, OpenClassWindowIndexTracksPlainClassWindows) {
  EXPECT_FALSE(sys_->dispatcher().HasOpenClassWindow("Pole"));
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  EXPECT_TRUE(sys_->dispatcher().HasOpenClassWindow("Pole"));
  EXPECT_FALSE(sys_->dispatcher().HasOpenClassWindow("Duct"));

  // Query windows are moment-in-time answers: they do not register.
  ASSERT_TRUE(sys_->dispatcher().OpenQueryWindow("select Duct").ok());
  EXPECT_FALSE(sys_->dispatcher().HasOpenClassWindow("Duct"));

  // Reopening keeps the index stable; closing clears it.
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  EXPECT_TRUE(sys_->dispatcher().HasOpenClassWindow("Pole"));
  ASSERT_TRUE(sys_->dispatcher().CloseWindow("Class set: Pole").ok());
  EXPECT_FALSE(sys_->dispatcher().HasOpenClassWindow("Pole"));
}

TEST_F(DispatcherTest, VisibleWindowsSkipHiddenSchema) {
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::Fig6DirectiveSource()).ok());
  UserContext juliano;
  juliano.user = "juliano";
  juliano.application = "pole_manager";
  sys_->dispatcher().set_context(juliano);
  ASSERT_TRUE(sys_->dispatcher().OpenSchemaWindow().ok());
  // Two windows open (Schema hidden + Pole class), one visible.
  EXPECT_EQ(sys_->dispatcher().windows().size(), 2u);
  EXPECT_EQ(sys_->dispatcher().visible_windows().size(), 1u);
  EXPECT_EQ(sys_->dispatcher().visible_windows()[0]->name(),
            "Class set: Pole");
}

TEST_F(DispatcherTest, ContextSwitchChangesCustomization) {
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::PlannerDirectiveSource()).ok());
  // Planner category: crossFormat poles.
  UserContext planner;
  planner.user = "maria";
  planner.category = "network_planner";
  planner.application = "pole_manager";
  sys_->dispatcher().set_context(planner);
  auto planner_window = sys_->dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(planner_window.ok());
  EXPECT_EQ(planner_window.value()
                ->FindDescendant("presentation")
                ->GetProperty(uilib::kPropStyle),
            "crossFormat");
  // Plain browser: default style, same dispatcher, same code path.
  UserContext browser;
  browser.user = "bob";
  sys_->dispatcher().set_context(browser);
  auto plain_window = sys_->dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(plain_window.ok());
  EXPECT_EQ(plain_window.value()
                ->FindDescendant("presentation")
                ->GetProperty(uilib::kPropStyle),
            "default");
}

TEST_F(DispatcherTest, QueryWindowFiltersPresentation) {
  auto full = sys_->dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(full.ok());
  const size_t all = std::stoul(full.value()
                                    ->FindDescendant("presentation")
                                    ->GetProperty(uilib::kPropFeatureCount));

  auto query = sys_->dispatcher().OpenQueryWindow(
      "select Pole where pole_type >= 2");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query.value()->GetProperty("query"),
            "select Pole where pole_type >= 2");
  EXPECT_EQ(query.value()->GetProperty(uilib::kPropClass), "Pole");
  const size_t filtered =
      std::stoul(query.value()
                     ->FindDescendant("presentation")
                     ->GetProperty(uilib::kPropFeatureCount));
  EXPECT_LT(filtered, all);
  EXPECT_GT(filtered, 0u);
  // The query window coexists with the plain class window.
  EXPECT_NE(sys_->dispatcher().FindWindow("Class set: Pole"), nullptr);
  EXPECT_NE(sys_->dispatcher().FindWindow(
                "Query: select Pole where pole_type >= 2"),
            nullptr);
}

TEST_F(DispatcherTest, QueryWindowHonorsCustomization) {
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::Fig6DirectiveSource()).ok());
  UserContext juliano;
  juliano.user = "juliano";
  juliano.application = "pole_manager";
  sys_->dispatcher().set_context(juliano);
  auto query = sys_->dispatcher().OpenQueryWindow("select Pole limit 5");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query.value()
                ->FindDescendant("presentation")
                ->GetProperty(uilib::kPropStyle),
            "pointFormat");
  EXPECT_LE(std::stoul(query.value()
                           ->FindDescendant("presentation")
                           ->GetProperty(uilib::kPropFeatureCount)),
            5u);
}

TEST_F(DispatcherTest, QueryWindowRejectsBadQueries) {
  EXPECT_TRUE(sys_->dispatcher()
                  .OpenQueryWindow("select Nothing")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(sys_->dispatcher()
                  .OpenQueryWindow("garbled")
                  .status()
                  .IsParseError());
}

TEST_F(DispatcherTest, ProtocolServesAllThreeRequestKinds) {
  DbProtocol& protocol = sys_->protocol();
  DbRequest schema_req;
  schema_req.kind = DbRequest::Kind::kGetSchema;
  auto schema = protocol.Execute(schema_req);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->schema_name, "phone_net");
  EXPECT_EQ(schema->class_names.size(), 6u);

  DbRequest class_req;
  class_req.kind = DbRequest::Kind::kGetClass;
  class_req.class_name = "Pole";
  auto cls = protocol.Execute(class_req);
  ASSERT_TRUE(cls.ok());
  EXPECT_EQ(cls->class_result.ids.size(), sys_->db().ExtentSize("Pole"));

  DbRequest value_req;
  value_req.kind = DbRequest::Kind::kGetValue;
  value_req.object_id = cls->class_result.ids.front();
  auto value = protocol.Execute(value_req);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->instance_class, "Pole");
  // Converted to display strings in schema order.
  ASSERT_EQ(value->attribute_values.size(), 8u);
  EXPECT_EQ(value->attribute_values[0].first, "status");
  EXPECT_EQ(protocol.requests_served(), 3u);

  DbRequest bad;
  bad.kind = DbRequest::Kind::kGetValue;
  bad.object_id = 999999;
  EXPECT_TRUE(protocol.Execute(bad).status().IsNotFound());
}

}  // namespace
}  // namespace agis::ui
