// DurableStore tests: WAL capture of live writes, recovery (snapshot +
// WAL tail), fuzzy-checkpoint idempotence, generation pruning, directive
// logging, and the crash matrix — injected faults at WAL appends, the
// snapshot write, and the manifest swap must all recover with every
// synced write intact.

#include "storage/store.h"

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "geodb/database.h"
#include "geom/geometry.h"
#include "storage/io.h"

namespace agis::storage {
namespace {

using geodb::AttributeDef;
using geodb::ClassDef;
using geodb::GeoDatabase;
using geodb::ObjectId;
using geodb::Value;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "agis_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void RegisterPole(GeoDatabase* db) {
  ClassDef pole("Pole", "");
  ASSERT_TRUE(pole.AddAttribute(AttributeDef::Int("pole_type")).ok());
  ASSERT_TRUE(pole.AddAttribute(AttributeDef::Geometry("loc")).ok());
  ASSERT_TRUE(db->RegisterClass(std::move(pole)).ok());
}

ObjectId InsertPole(GeoDatabase* db, int64_t type) {
  auto id = db->Insert(
      "Pole", {{"pole_type", Value::Int(type)},
               {"loc", Value::MakeGeometry(geom::Geometry::FromPoint(
                           {static_cast<double>(type), 1.0}))}});
  EXPECT_TRUE(id.ok()) << id.status();
  return id.ok() ? id.value() : 0;
}

struct Opened {
  std::unique_ptr<GeoDatabase> db;
  std::unique_ptr<DurableStore> store;
};

Opened OpenStore(const std::string& dir, StoreOptions options = {}) {
  Opened out;
  out.db = std::make_unique<GeoDatabase>("store_schema");
  auto store = DurableStore::Open(dir, out.db.get(), options);
  EXPECT_TRUE(store.ok()) << store.status();
  if (store.ok()) out.store = std::move(store).value();
  return out;
}

TEST(DurableStore, WritesSurviveCloseAndReopen) {
  const std::string dir = FreshDir("basic");
  std::vector<ObjectId> ids;
  {
    Opened s = OpenStore(dir);
    ASSERT_NE(s.store, nullptr);
    EXPECT_FALSE(s.store->recovery().snapshot_loaded);
    EXPECT_EQ(s.store->recovery().wal_records_replayed, 0u);
    RegisterPole(s.db.get());
    for (int i = 0; i < 10; ++i) ids.push_back(InsertPole(s.db.get(), i));
    ASSERT_TRUE(s.store->Sync().ok());
    ASSERT_TRUE(s.store->Close().ok());
  }
  Opened s = OpenStore(dir);
  ASSERT_NE(s.store, nullptr);
  EXPECT_FALSE(s.store->recovery().snapshot_loaded);  // Never checkpointed.
  EXPECT_GE(s.store->recovery().wal_generations_replayed, 1u);
  EXPECT_FALSE(s.store->recovery().torn_tail);
  ASSERT_TRUE(s.db->schema().HasClass("Pole"));
  EXPECT_EQ(s.db->ExtentSize("Pole"), 10u);
  const geodb::Snapshot snap = s.db->OpenSnapshot();
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto* obj = s.db->FindObjectAt(snap, ids[i]);
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(obj->Get("pole_type"), Value::Int(static_cast<int64_t>(i)));
  }
}

TEST(DurableStore, ReplayConvergesToTheFinalState) {
  const std::string dir = FreshDir("updates");
  ObjectId kept = 0, updated = 0, deleted = 0;
  {
    Opened s = OpenStore(dir);
    RegisterPole(s.db.get());
    kept = InsertPole(s.db.get(), 1);
    updated = InsertPole(s.db.get(), 2);
    deleted = InsertPole(s.db.get(), 3);
    ASSERT_TRUE(
        s.db->Update(updated, "pole_type", Value::Int(99)).ok());
    ASSERT_TRUE(s.db->Delete(deleted).ok());
    ASSERT_TRUE(s.store->Sync().ok());
    ASSERT_TRUE(s.store->Close().ok());
  }
  Opened s = OpenStore(dir);
  EXPECT_EQ(s.db->ExtentSize("Pole"), 2u);
  const geodb::Snapshot snap = s.db->OpenSnapshot();
  EXPECT_EQ(s.db->FindObjectAt(snap, kept)->Get("pole_type"), Value::Int(1));
  EXPECT_EQ(s.db->FindObjectAt(snap, updated)->Get("pole_type"),
            Value::Int(99));
  EXPECT_EQ(s.db->FindObjectAt(snap, deleted), nullptr);
}

TEST(DurableStore, CheckpointLoadsFromSnapshotAndPrunes) {
  const std::string dir = FreshDir("checkpoint");
  {
    Opened s = OpenStore(dir);
    RegisterPole(s.db.get());
    for (int i = 0; i < 100; ++i) InsertPole(s.db.get(), i);
    auto info = s.store->Checkpoint();
    ASSERT_TRUE(info.ok()) << info.status();
    EXPECT_EQ(info->objects_written, 100u);
    // Writes continue in the new generation.
    for (int i = 100; i < 150; ++i) InsertPole(s.db.get(), i);
    ASSERT_TRUE(s.store->Sync().ok());
    const StorageStats stats = s.store->stats();
    EXPECT_EQ(stats.checkpoints, 1u);
    EXPECT_EQ(stats.generation, 1u);
    EXPECT_EQ(stats.last_snapshot_objects, 100u);
    ASSERT_TRUE(s.store->Close().ok());
    // Generation 0 was superseded and pruned.
    EXPECT_FALSE(FileExists(DurableStore::WalPath(dir, 0)));
    EXPECT_TRUE(FileExists(DurableStore::WalPath(dir, 1)));
    EXPECT_TRUE(FileExists(DurableStore::SnapshotPath(dir, 1)));
  }
  Opened s = OpenStore(dir);
  EXPECT_TRUE(s.store->recovery().snapshot_loaded);
  EXPECT_EQ(s.store->recovery().base_generation, 1u);
  EXPECT_EQ(s.store->recovery().snapshot_objects, 100u);
  EXPECT_EQ(s.db->ExtentSize("Pole"), 150u);
}

TEST(DurableStore, CheckpointWhileWritersRunIsConsistent) {
  // The fuzzy-checkpoint overlap: rotation happens before the pin, so
  // a write landing in between is in both the snapshot and the new
  // WAL. Replay must converge (idempotent redo), not double-apply.
  const std::string dir = FreshDir("fuzzy");
  {
    Opened s = OpenStore(dir);
    RegisterPole(s.db.get());
    for (int i = 0; i < 20; ++i) InsertPole(s.db.get(), i);
    ASSERT_TRUE(s.store->Checkpoint().status().ok());
    ASSERT_TRUE(s.store->Sync().ok());
    ASSERT_TRUE(s.store->Close().ok());
  }
  Opened s = OpenStore(dir);
  EXPECT_EQ(s.db->ExtentSize("Pole"), 20u);
  EXPECT_EQ(s.db->NumObjects(), 20u);
}

TEST(DurableStore, SnapshotWriteCrashFallsBackToWalChain) {
  const std::string dir = FreshDir("snapfault");
  {
    StoreOptions options;
    options.snapshot_fault_plan.fail_after_bytes = 256;
    Opened s = OpenStore(dir, options);
    RegisterPole(s.db.get());
    for (int i = 0; i < 50; ++i) InsertPole(s.db.get(), i);
    ASSERT_TRUE(s.store->Sync().ok());
    // The checkpoint dies mid-snapshot ("power cut"), after the WAL
    // already rotated.
    EXPECT_FALSE(s.store->Checkpoint().ok());
    // The store remains usable: the manifest still names the old base.
    for (int i = 50; i < 60; ++i) InsertPole(s.db.get(), i);
    ASSERT_TRUE(s.store->Sync().ok());
    ASSERT_TRUE(s.store->Close().ok());
  }
  Opened s = OpenStore(dir);
  EXPECT_FALSE(s.store->recovery().snapshot_loaded);
  EXPECT_GE(s.store->recovery().wal_generations_replayed, 2u);
  EXPECT_EQ(s.db->ExtentSize("Pole"), 60u);
}

TEST(DurableStore, ManifestSwapCrashKeepsTheOldBase) {
  const std::string dir = FreshDir("manifault");
  {
    StoreOptions options;
    options.manifest_fault_plan.fail_after_bytes = 4;
    Opened s = OpenStore(dir, options);
    RegisterPole(s.db.get());
    for (int i = 0; i < 30; ++i) InsertPole(s.db.get(), i);
    EXPECT_FALSE(s.store->Checkpoint().ok());  // Dies swinging the manifest.
    ASSERT_TRUE(s.store->Sync().ok());
    ASSERT_TRUE(s.store->Close().ok());
  }
  Opened s = OpenStore(dir);
  // Either base works — what matters is convergence.
  EXPECT_EQ(s.db->ExtentSize("Pole"), 30u);
  EXPECT_EQ(s.db->NumObjects(), 30u);
}

TEST(DurableStore, CrashMatrixEverySyncedWriteSurvives) {
  // Sweep the WAL crash point across a range of byte offsets. At each
  // point: write until the fault fires, remember which inserts were
  // acknowledged by a successful Sync, "crash", recover, and require
  // every acknowledged insert to be present. This is the durability
  // contract, tested at dozens of tear positions (including mid-frame
  // short writes).
  for (uint64_t crash_at = 300; crash_at <= 2300; crash_at += 400) {
    SCOPED_TRACE(crash_at);
    const std::string dir = FreshDir("matrix");
    std::vector<ObjectId> acknowledged;
    {
      StoreOptions options;
      options.wal.fault_plan.fail_after_bytes = crash_at;
      options.wal.fault_plan.short_write = true;
      Opened s = OpenStore(dir, options);
      ASSERT_NE(s.store, nullptr);
      RegisterPole(s.db.get());
      for (int i = 0; i < 200; ++i) {
        const ObjectId id = InsertPole(s.db.get(), i);
        if (s.store->Sync().ok()) {
          acknowledged.push_back(id);
        } else {
          break;  // Crashed.
        }
      }
      ASSERT_LT(acknowledged.size(), 200u) << "fault plan never fired";
      // A tripped store cannot quietly keep acknowledging.
      EXPECT_FALSE(s.store->Sync().ok());
      (void)s.store->Close();  // Errors; the "machine" is going down anyway.
    }
    Opened s = OpenStore(dir);
    ASSERT_NE(s.store, nullptr);
    const geodb::Snapshot snap = s.db->OpenSnapshot();
    for (size_t i = 0; i < acknowledged.size(); ++i) {
      const auto* obj = s.db->FindObjectAt(snap, acknowledged[i]);
      ASSERT_NE(obj, nullptr)
          << "synced insert #" << i << " lost at crash point " << crash_at;
      EXPECT_EQ(obj->Get("pole_type"), Value::Int(static_cast<int64_t>(i)));
    }
  }
}

TEST(DurableStore, DirectiveLogRecoversLastRegistrationPerName) {
  const std::string dir = FreshDir("directives");
  {
    Opened s = OpenStore(dir);
    RegisterPole(s.db.get());
    ASSERT_TRUE(s.store->LogDirective("u:juliano", "v1").ok());
    ASSERT_TRUE(s.store->LogDirective("c:planner", "w1").ok());
    ASSERT_TRUE(s.store->LogDirective("u:juliano", "v2").ok());
    ASSERT_TRUE(s.store->Sync().ok());
    ASSERT_TRUE(s.store->Close().ok());
  }
  {
    Opened s = OpenStore(dir);
    const auto& directives = s.store->recovery().directives;
    ASSERT_EQ(directives.size(), 2u);
    EXPECT_EQ(directives[0].first, "u:juliano");
    EXPECT_EQ(directives[0].second, "v2");  // Last registration wins.
    EXPECT_EQ(directives[1].first, "c:planner");
    // Checkpoint persists them into the snapshot's directive section.
    ASSERT_TRUE(s.store->Checkpoint({directives.begin(), directives.end()})
                    .ok());
    ASSERT_TRUE(s.store->Close().ok());
  }
  Opened s = OpenStore(dir);
  EXPECT_TRUE(s.store->recovery().snapshot_loaded);
  ASSERT_EQ(s.store->recovery().directives.size(), 2u);
  EXPECT_EQ(s.store->recovery().directives[0].second, "v2");
}

TEST(DurableStore, SchemaChangesAfterAttachAreLogged) {
  const std::string dir = FreshDir("schema");
  {
    Opened s = OpenStore(dir);
    RegisterPole(s.db.get());  // Registered after attach: via the hook.
    ClassDef note("Note", "");
    ASSERT_TRUE(note.AddAttribute(AttributeDef::Text("body")).ok());
    ASSERT_TRUE(s.db->RegisterClass(std::move(note)).ok());
    ASSERT_TRUE(s.store->Close().ok());
  }
  Opened s = OpenStore(dir);
  EXPECT_TRUE(s.db->schema().HasClass("Pole"));
  EXPECT_TRUE(s.db->schema().HasClass("Note"));
}

TEST(DurableStore, StatsExposeWalAndRecoveryCounters) {
  const std::string dir = FreshDir("stats");
  Opened s = OpenStore(dir);
  RegisterPole(s.db.get());
  for (int i = 0; i < 5; ++i) InsertPole(s.db.get(), i);
  ASSERT_TRUE(s.store->Sync().ok());
  const StorageStats stats = s.store->stats();
  EXPECT_GE(stats.wal_records_appended, 6u);  // 1 class + 5 inserts.
  EXPECT_GT(stats.wal_bytes_appended, 0u);
  EXPECT_GE(stats.wal_syncs, 1u);
  EXPECT_EQ(stats.generation, 0u);
  EXPECT_EQ(stats.checkpoints, 0u);
  ASSERT_TRUE(s.store->Close().ok());
  // Close is idempotent.
  EXPECT_TRUE(s.store->Close().ok());
}

}  // namespace
}  // namespace agis::storage
