// Binary snapshot tests: round trips (serial and parallel decode),
// point-in-time semantics under concurrent writes, and the corruption
// matrix — truncations, flipped bytes, version mismatches — which must
// error without crashing and without half-loading the database.

#include "storage/snapshot_file.h"

#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "geodb/database.h"
#include "geom/geometry.h"
#include "storage/format.h"
#include "storage/io.h"

namespace agis::storage {
namespace {

using geodb::AttributeDef;
using geodb::ClassDef;
using geodb::GeoDatabase;
using geodb::ObjectId;
using geodb::Value;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "agis_snap_" + name + ".agsnap";
}

void Dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::unique_ptr<GeoDatabase> MakeDb(size_t poles) {
  auto db = std::make_unique<GeoDatabase>("snap_schema");
  ClassDef pole("Pole", "");
  EXPECT_TRUE(pole.AddAttribute(AttributeDef::Int("pole_type")).ok());
  EXPECT_TRUE(pole.AddAttribute(AttributeDef::String("owner")).ok());
  EXPECT_TRUE(pole.AddAttribute(AttributeDef::Geometry("loc")).ok());
  EXPECT_TRUE(db->RegisterClass(std::move(pole)).ok());
  ClassDef note("Note", "");
  EXPECT_TRUE(note.AddAttribute(AttributeDef::Text("body")).ok());
  EXPECT_TRUE(db->RegisterClass(std::move(note)).ok());
  for (size_t i = 0; i < poles; ++i) {
    EXPECT_TRUE(
        db->Insert("Pole",
                   {{"pole_type", Value::Int(static_cast<int64_t>(i % 10))},
                    {"owner", Value::String(i % 3 == 0 ? "city" : "utility")},
                    {"loc", Value::MakeGeometry(geom::Geometry::FromPoint(
                                {static_cast<double>(i % 100),
                                 static_cast<double>(i / 100)}))}})
            .ok());
  }
  EXPECT_TRUE(db->Insert("Note", {{"body", Value::String("n\n\"x\"")}}).ok());
  return db;
}

void ExpectSameObjects(GeoDatabase& a, GeoDatabase& b) {
  ASSERT_EQ(a.NumObjects(), b.NumObjects());
  const geodb::Snapshot snap_a = a.OpenSnapshot();
  const geodb::Snapshot snap_b = b.OpenSnapshot();
  for (const std::string& cls : a.schema().ClassNames()) {
    auto ids = a.ScanExtentAt(snap_a, cls);
    ASSERT_TRUE(ids.ok());
    for (ObjectId id : ids.value()) {
      const auto* oa = a.FindObjectAt(snap_a, id);
      const auto* ob = b.FindObjectAt(snap_b, id);
      ASSERT_NE(ob, nullptr) << cls << " #" << id;
      EXPECT_EQ(oa->values().size(), ob->values().size());
      for (const auto& [attr, value] : oa->values()) {
        EXPECT_EQ(ob->Get(attr), value) << attr << " of " << cls << id;
      }
    }
  }
}

TEST(SnapshotFile, RoundTripsAcrossMultipleBlocks) {
  auto db = MakeDb(200);
  const std::string path = TestPath("roundtrip");
  geodb::Snapshot snap = db->OpenSnapshot();
  SnapshotWriteOptions options;
  options.records_per_block = 16;  // Forces many blocks.
  options.directives = {{"d1", "src1"}, {"d2", "src2"}};
  auto written = WriteSnapshotFile(*db, snap, path, options);
  ASSERT_TRUE(written.ok()) << written.status();
  EXPECT_EQ(written->objects_written, db->NumObjects());
  EXPECT_GT(written->blocks, 10u);
  snap.Release();

  auto loaded = LoadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value()->schema().name(), "snap_schema");
  ExpectSameObjects(*db, *loaded.value());

  // Restored ids never collide with fresh inserts (id counter kept).
  auto fresh = loaded.value()->Insert("Note", {{"body", Value::String("x")}});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(db->FindObjectAt(db->OpenSnapshot(), fresh.value()), nullptr);
}

TEST(SnapshotFile, ParallelDecodeMatchesSerial) {
  auto db = MakeDb(500);
  const std::string path = TestPath("parallel");
  geodb::Snapshot snap = db->OpenSnapshot();
  SnapshotWriteOptions options;
  options.records_per_block = 32;
  ASSERT_TRUE(WriteSnapshotFile(*db, snap, path, options).ok());
  snap.Release();

  agis::ThreadPool pool(4);
  GeoDatabase parallel("snap_schema");
  auto stats = LoadSnapshotFileInto(path, &parallel, &pool);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->objects_loaded, db->NumObjects());
  EXPECT_GT(stats->decode_workers, 1u);
  ExpectSameObjects(*db, parallel);
  // Bulk restore fed the STR builder, not per-object inserts.
  EXPECT_GT(parallel.stats().bulk_index_builds, 0u);
}

TEST(SnapshotFile, CapturesThePinnedStateNotLaterWrites) {
  auto db = MakeDb(20);
  const uint64_t pinned_count = db->NumObjects();
  geodb::Snapshot snap = db->OpenSnapshot();
  // Writers keep running while the checkpoint writes.
  ASSERT_TRUE(db->Insert("Note", {{"body", Value::String("late")}}).ok());
  const std::string path = TestPath("pinned");
  auto written = WriteSnapshotFile(*db, snap, path);
  ASSERT_TRUE(written.ok()) << written.status();
  snap.Release();
  EXPECT_EQ(written->objects_written, pinned_count);

  auto loaded = LoadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->NumObjects(), pinned_count);
}

TEST(SnapshotFile, DirectivesSectionRoundTrips) {
  auto db = MakeDb(3);
  const std::string path = TestPath("directives");
  geodb::Snapshot snap = db->OpenSnapshot();
  SnapshotWriteOptions options;
  options.directives = {{"u:juliano", "For user juliano ..."},
                        {"c:planner", "For category planner ..."}};
  ASSERT_TRUE(WriteSnapshotFile(*db, snap, path, options).ok());
  snap.Release();

  GeoDatabase fresh("snap_schema");
  auto stats = LoadSnapshotFileInto(path, &fresh);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->directives.size(), 2u);
  EXPECT_EQ(stats->directives[0].first, "u:juliano");
  EXPECT_EQ(stats->directives[1].second, "For category planner ...");
}

TEST(SnapshotFile, EveryTruncationErrorsWithoutTouchingTheDb) {
  auto db = MakeDb(30);
  const std::string path = TestPath("truncate");
  geodb::Snapshot snap = db->OpenSnapshot();
  SnapshotWriteOptions options;
  options.records_per_block = 8;
  ASSERT_TRUE(WriteSnapshotFile(*db, snap, path, options).ok());
  snap.Release();
  auto intact = ReadFileToString(path);
  ASSERT_TRUE(intact.ok());

  for (size_t cut = 0; cut < intact.value().size();
       cut += 13) {  // Stride keeps the matrix fast; 0 hits "empty file".
    Dump(path, intact.value().substr(0, cut));
    GeoDatabase fresh("snap_schema");
    auto loaded = LoadSnapshotFileInto(path, &fresh);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << cut << " bytes loaded";
    // Validation completes before any restore: the db stays empty.
    EXPECT_EQ(fresh.NumObjects(), 0u) << "cut at " << cut;
    EXPECT_TRUE(fresh.schema().ClassNames().empty()) << "cut at " << cut;
  }
}

TEST(SnapshotFile, FlippedByteFailsTheCrcNotTheProcess) {
  auto db = MakeDb(50);
  const std::string path = TestPath("crc");
  geodb::Snapshot snap = db->OpenSnapshot();
  ASSERT_TRUE(WriteSnapshotFile(*db, snap, path).ok());
  snap.Release();
  auto intact = ReadFileToString(path);
  ASSERT_TRUE(intact.ok());

  // Flip one byte at a spread of positions past the magic. Every
  // variant must error (CRC/frame validation), never crash or load.
  for (size_t pos = 8; pos < intact.value().size();
       pos += intact.value().size() / 23 + 1) {
    std::string bytes = intact.value();
    bytes[pos] ^= 0x20;
    Dump(path, bytes);
    GeoDatabase fresh("snap_schema");
    EXPECT_FALSE(LoadSnapshotFileInto(path, &fresh).ok())
        << "flip at " << pos << " accepted";
    EXPECT_EQ(fresh.NumObjects(), 0u);
  }
}

TEST(SnapshotFile, VersionAndMagicMismatchesAreErrors) {
  auto db = MakeDb(5);
  const std::string path = TestPath("version");
  geodb::Snapshot snap = db->OpenSnapshot();
  ASSERT_TRUE(WriteSnapshotFile(*db, snap, path).ok());
  snap.Release();
  auto intact = ReadFileToString(path);
  ASSERT_TRUE(intact.ok());

  std::string future = intact.value();
  future[7] = '2';  // "AGISNAP1" -> "AGISNAP2": a future format version.
  Dump(path, future);
  GeoDatabase fresh("snap_schema");
  auto loaded = LoadSnapshotFileInto(path, &fresh);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsParseError());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status();

  Dump(path, "this is a text file, not a snapshot\n");
  GeoDatabase fresh2("snap_schema");
  EXPECT_FALSE(LoadSnapshotFileInto(path, &fresh2).ok());

  EXPECT_TRUE(
      LoadSnapshotFile(TestPath("missing")).status().IsNotFound());
}

std::vector<ObjectId> QueryIds(GeoDatabase& db, const std::string& cls,
                               std::vector<geodb::AttrPredicate> predicates) {
  geodb::GetClassOptions q;
  q.use_buffer_pool = false;
  q.predicates = std::move(predicates);
  auto result = db.GetClass(cls, q);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return {};
  return result->ids;
}

TEST(SnapshotFile, AttrIndexSectionsRestorePrebuiltAndServeQueries) {
  auto db = MakeDb(300);
  const std::string path = TestPath("attridx");
  geodb::Snapshot snap = db->OpenSnapshot();
  auto written = WriteSnapshotFile(*db, snap, path);
  ASSERT_TRUE(written.ok()) << written.status();
  snap.Release();
  // Pole indexes at least pole_type and owner.
  EXPECT_GE(written->attr_indexes, 2u);

  GeoDatabase fresh("snap_schema");
  auto stats = LoadSnapshotFileInto(path, &fresh);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->attr_indexes_loaded, written->attr_indexes);
  ExpectSameObjects(*db, fresh);

  using geodb::AttrPredicate;
  using geodb::CompareOp;
  const std::vector<std::vector<AttrPredicate>> probes = {
      {{"pole_type", CompareOp::kEq, Value::Int(3)}},
      {{"pole_type", CompareOp::kGe, Value::Int(7)}},
      {{"pole_type", CompareOp::kNe, Value::Int(0)}},
      {{"owner", CompareOp::kEq, Value::String("city")}},
      {{"owner", CompareOp::kLt, Value::String("d")},
       {"pole_type", CompareOp::kLe, Value::Int(5)}},
  };
  for (size_t p = 0; p < probes.size(); ++p) {
    SCOPED_TRACE(p);
    EXPECT_EQ(QueryIds(*db, "Pole", probes[p]),
              QueryIds(fresh, "Pole", probes[p]));
  }
}

TEST(SnapshotFile, InstalledIndexesStayCorrectAcrossLaterWrites) {
  auto db = MakeDb(120);
  const std::string path = TestPath("attridx_writes");
  geodb::Snapshot snap = db->OpenSnapshot();
  ASSERT_TRUE(WriteSnapshotFile(*db, snap, path).ok());
  snap.Release();
  GeoDatabase fresh("snap_schema");
  auto stats = LoadSnapshotFileInto(path, &fresh);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_GT(stats->attr_indexes_loaded, 0u);

  // Mutate both databases identically: the restored one maintains its
  // installed (pre-built) indexes through the normal write path.
  auto pole_ids = db->ScanExtentAt(db->OpenSnapshot(), "Pole");
  ASSERT_TRUE(pole_ids.ok());
  for (size_t i = 0; i < pole_ids.value().size(); i += 7) {
    const ObjectId id = pole_ids.value()[i];
    for (GeoDatabase* target : {db.get(), &fresh}) {
      if (i % 3 == 0) {
        ASSERT_TRUE(target->Delete(id).ok());
      } else {
        ASSERT_TRUE(
            target->Update(id, "pole_type", Value::Int(42)).ok());
        ASSERT_TRUE(
            target->Update(id, "owner", Value::String("coop")).ok());
      }
    }
  }
  for (GeoDatabase* target : {db.get(), &fresh}) {
    ASSERT_TRUE(target
                    ->Insert("Pole",
                             {{"pole_type", Value::Int(42)},
                              {"owner", Value::String("coop")}})
                    .ok());
  }

  using geodb::AttrPredicate;
  using geodb::CompareOp;
  const std::vector<std::vector<AttrPredicate>> probes = {
      {{"pole_type", CompareOp::kEq, Value::Int(42)}},
      {{"pole_type", CompareOp::kGt, Value::Int(8)}},
      {{"owner", CompareOp::kEq, Value::String("coop")}},
      {{"owner", CompareOp::kNe, Value::String("city")}},
  };
  for (size_t p = 0; p < probes.size(); ++p) {
    SCOPED_TRACE(p);
    EXPECT_EQ(QueryIds(*db, "Pole", probes[p]),
              QueryIds(fresh, "Pole", probes[p]));
  }
}

TEST(SnapshotFile, AttrIndexSectionsAreOptionalOnWrite) {
  auto db = MakeDb(40);
  const std::string path = TestPath("attridx_off");
  geodb::Snapshot snap = db->OpenSnapshot();
  SnapshotWriteOptions options;
  options.include_attr_indexes = false;
  auto written = WriteSnapshotFile(*db, snap, path, options);
  ASSERT_TRUE(written.ok()) << written.status();
  snap.Release();
  EXPECT_EQ(written->attr_indexes, 0u);

  GeoDatabase fresh("snap_schema");
  auto stats = LoadSnapshotFileInto(path, &fresh);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->attr_indexes_loaded, 0u);
  // The finish pass rebuilt the indexes instead; queries still match.
  using geodb::AttrPredicate;
  using geodb::CompareOp;
  EXPECT_EQ(
      QueryIds(*db, "Pole", {{"pole_type", CompareOp::kEq, Value::Int(1)}}),
      QueryIds(fresh, "Pole", {{"pole_type", CompareOp::kEq, Value::Int(1)}}));
}

/// Flips one payload byte of the first section of `kind` and patches
/// the frame CRC back to valid, so only semantic validation can
/// object. Returns false when no such section exists.
bool ForgeSectionPayload(std::string* bytes, uint8_t kind,
                         size_t byte_in_payload) {
  size_t pos = 8;  // Past the magic.
  while (pos + 9 <= bytes->size()) {
    const uint8_t k = static_cast<uint8_t>((*bytes)[pos]);
    uint32_t len;
    std::memcpy(&len, bytes->data() + pos + 1, 4);
    if (k == kind && len > 0) {
      (*bytes)[pos + 9 + (byte_in_payload % len)] ^= 0x01;
      const uint32_t crc =
          Crc32(std::string_view(bytes->data() + pos + 9, len));
      std::memcpy(bytes->data() + pos + 5, &crc, 4);
      return true;
    }
    pos += 9 + static_cast<size_t>(len);
  }
  return false;
}

TEST(SnapshotFile, CorruptAttrIndexSectionFailsBeforeAnyRestore) {
  auto db = MakeDb(60);
  const std::string path = TestPath("attridx_corrupt");
  geodb::Snapshot snap = db->OpenSnapshot();
  ASSERT_TRUE(WriteSnapshotFile(*db, snap, path).ok());
  snap.Release();
  auto intact = ReadFileToString(path);
  ASSERT_TRUE(intact.ok());

  // Corrupt the class name inside an index section (payload byte 4 is
  // its first character) and forge the CRC: the loader must reject it
  // on semantic grounds — unknown class — with the database untouched.
  std::string forged = intact.value();
  ASSERT_TRUE(ForgeSectionPayload(&forged, /*kind=*/6, /*byte=*/4));
  Dump(path, forged);
  GeoDatabase fresh("snap_schema");
  auto loaded = LoadSnapshotFileInto(path, &fresh);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsParseError());
  EXPECT_EQ(fresh.NumObjects(), 0u);
}

TEST(SnapshotFile, WriteFaultInjectionSurfacesTheError) {
  auto db = MakeDb(100);
  const std::string path = TestPath("wfault");
  geodb::Snapshot snap = db->OpenSnapshot();
  SnapshotWriteOptions options;
  options.fault_plan.fail_after_bytes = 512;
  auto written = WriteSnapshotFile(*db, snap, path, options);
  snap.Release();
  ASSERT_FALSE(written.ok()) << "fault plan never fired";
  // The torn file must not load.
  GeoDatabase fresh("snap_schema");
  EXPECT_FALSE(LoadSnapshotFileInto(path, &fresh).ok());
  EXPECT_EQ(fresh.NumObjects(), 0u);
}

}  // namespace
}  // namespace agis::storage
