// Binary codec tests: CRC vectors, encoder/decoder round trips, and —
// most importantly — that corrupt lengths and truncations error out
// instead of over-reading or over-allocating.

#include "storage/format.h"

#include <gtest/gtest.h>

#include "geodb/object.h"
#include "geodb/schema.h"
#include "geodb/value.h"
#include "geom/geometry.h"

namespace agis::storage {
namespace {

using geodb::AttributeDef;
using geodb::ClassDef;
using geodb::ObjectInstance;
using geodb::Value;

TEST(Crc32, MatchesKnownVectors) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Chaining equals one-shot.
  const uint32_t part = Crc32(std::string_view("12345"));
  EXPECT_EQ(Crc32(std::string_view("6789"), part), Crc32("123456789"));
}

TEST(EncoderDecoder, ScalarsRoundTripLittleEndian) {
  Encoder enc;
  enc.U8(0xAB);
  enc.U32(0xDEADBEEF);
  enc.U64(0x0123456789ABCDEFull);
  enc.F64(0.1 + 0.2);
  enc.Str("hello");
  const std::string bytes = enc.Take();
  // Fixed-width little-endian: u32 low byte first.
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0xEF);

  Decoder dec(bytes);
  EXPECT_EQ(dec.U8("a").value(), 0xAB);
  EXPECT_EQ(dec.U32("b").value(), 0xDEADBEEFu);
  EXPECT_EQ(dec.U64("c").value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.F64("d").value(), 0.1 + 0.2);
  EXPECT_EQ(dec.Str("e").value(), "hello");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(EncoderDecoder, TruncationErrorsWithBytePosition) {
  Encoder enc;
  enc.U32(7);
  const std::string bytes = enc.Take().substr(0, 2);
  Decoder dec(bytes);
  const auto got = dec.U32("field");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsParseError()) << got.status();
  EXPECT_NE(got.status().message().find("at byte"), std::string::npos)
      << got.status();
}

TEST(EncoderDecoder, CorruptStringLengthIsErrorNotOverRead) {
  Encoder enc;
  enc.U32(0xFFFFFFFF);  // Claims a 4 GiB string follows.
  enc.Raw("xy");
  Decoder dec(enc.buffer());
  EXPECT_FALSE(dec.Str("s").ok());
}

TEST(EncoderDecoder, CountGuardsAgainstAbsurdElementCounts) {
  Encoder enc;
  enc.U32(1000000);  // Claims a million 12-byte elements in 4 bytes.
  enc.U32(0);
  Decoder dec(enc.buffer());
  EXPECT_FALSE(dec.Count("elements", 12).ok());

  Encoder ok;
  ok.U32(2);
  ok.Raw("1234567812345678");  // 2 × 8 bytes really present.
  Decoder dec2(ok.buffer());
  EXPECT_EQ(dec2.Count("elements", 8).value(), 2u);
}

Value SampleTuple() {
  return Value::MakeTuple(
      {{"s", Value::String("x")}, {"v", Value::Double(2.5)}});
}

TEST(ValueCodec, AllKindsRoundTrip) {
  geodb::Blob blob;
  blob.format = "bin";
  blob.bytes = {0x00, 0xff, 0x42, 0x0a};
  geom::Polygon poly;
  poly.outer = {{0, 0}, {3.25, 0}, {3.25, 7.125}};
  const Value values[] = {
      Value(),  // null
      Value::Bool(true),
      Value::Int(-123456789),
      Value::Double(0.1 + 0.2),
      Value::String("line1\nline2\t\"quoted\" \\slash"),
      Value::MakeBlob(blob),
      Value::MakeGeometry(geom::Geometry::FromPolygon(poly)),
      Value::MakeList({Value::Int(1), Value::Int(2)}),
      SampleTuple(),
      Value::Ref(42, "Pole"),
  };
  for (const Value& v : values) {
    Encoder enc;
    EncodeValue(v, &enc);
    Decoder dec(enc.buffer());
    auto back = DecodeValue(&dec);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back.value(), v);
    EXPECT_TRUE(dec.AtEnd());
  }
}

TEST(ValueCodec, TruncatedValueErrorsForEveryPrefixLength) {
  Encoder enc;
  EncodeValue(SampleTuple(), &enc);
  const std::string bytes = enc.Take();
  for (size_t len = 0; len < bytes.size(); ++len) {
    Decoder dec(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(DecodeValue(&dec).ok()) << "prefix length " << len;
  }
}

TEST(ObjectRecordCodec, RoundTripsIdAndValues) {
  ObjectInstance obj(77, "Pole");
  obj.Set("pole_type", Value::Int(3));
  obj.Set("owner", Value::String("city"));
  Encoder enc;
  EncodeObjectRecord(obj, &enc);
  Decoder dec(enc.buffer());
  auto back = DecodeObjectRecord(&dec, "Pole");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value().id(), 77u);
  EXPECT_EQ(back.value().class_name(), "Pole");
  EXPECT_EQ(back.value().Get("pole_type"), Value::Int(3));
  EXPECT_EQ(back.value().Get("owner"), Value::String("city"));
}

TEST(ClassDefCodec, RoundTripsSchemaShape) {
  ClassDef cls("Pole", "aerial support");
  cls.set_parent("NetworkElement");
  ASSERT_TRUE(cls.AddAttribute([] {
                   AttributeDef a = AttributeDef::String("name");
                   a.required = true;
                   return a;
                 }())
                  .ok());
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Geometry("loc")).ok());
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Ref("supplier", "Supplier"))
                  .ok());
  ASSERT_TRUE(
      cls.AddAttribute(AttributeDef::Tuple(
                           "composition", {AttributeDef::String("material"),
                                           AttributeDef::Double("height")}))
          .ok());

  Encoder enc;
  EncodeClassDef(cls, &enc);
  Decoder dec(enc.buffer());
  auto back = DecodeClassDef(&dec);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.value().name(), "Pole");
  EXPECT_EQ(back.value().doc(), "aerial support");
  EXPECT_EQ(back.value().parent(), "NetworkElement");
  ASSERT_EQ(back.value().attributes().size(), cls.attributes().size());
  for (size_t i = 0; i < cls.attributes().size(); ++i) {
    EXPECT_EQ(back.value().attributes()[i].name, cls.attributes()[i].name);
    EXPECT_EQ(back.value().attributes()[i].type, cls.attributes()[i].type);
    EXPECT_EQ(back.value().attributes()[i].required,
              cls.attributes()[i].required);
  }
}

}  // namespace
}  // namespace agis::storage
