#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/changefeed.h"

namespace agis::storage {
namespace {

ChangeRecord Record(geodb::ObjectId id) {
  ChangeRecord r;
  r.kind = ChangeKind::kUpdate;
  r.class_name = "Pole";
  r.object_id = id;
  return r;
}

// Writers publish while consumers poll/ack and churn subscriptions;
// run under TSan via `ctest -L concurrency`.
TEST(ChangefeedConcurrency, ConcurrentPublishPollAckUnsubscribe) {
  constexpr int kWriters = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerWriter = 2000;
  Changefeed feed(256);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&feed, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        feed.Publish(Record(static_cast<geodb::ObjectId>(w * kPerWriter + i)));
      }
    });
  }
  std::atomic<uint64_t> consumed{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&feed, &stop, &consumed] {
      const Changefeed::SubscriberId sub = feed.Subscribe();
      uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const ChangefeedPoll poll = feed.Poll(sub, 64);
        if (!poll.resync) {
          // Sequences arrive in order with no duplicates between acks.
          for (const ChangeRecord& r : poll.records) {
            EXPECT_GT(r.seq, last);
            last = r.seq;
          }
          consumed.fetch_add(poll.records.size(), std::memory_order_relaxed);
        } else {
          last = poll.next_seq;
        }
        if (poll.next_seq != 0) {
          ASSERT_TRUE(feed.Ack(sub, poll.next_seq).ok());
        }
        std::this_thread::yield();
      }
      feed.Unsubscribe(sub);
    });
  }
  // Subscription churn: subscribe/unsubscribe while publishes run.
  threads.emplace_back([&feed, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const Changefeed::SubscriberId sub = feed.SubscribeFrom(0);
      (void)feed.Poll(sub, 8);
      (void)feed.Lag(sub);
      feed.Unsubscribe(sub);
      std::this_thread::yield();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(feed.head_seq(), static_cast<uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(feed.stats().published, static_cast<uint64_t>(kWriters * kPerWriter));
}

// A subscriber that never polls must not slow or block writers: the
// ring drops its tail instead of waiting (bounded memory, bounded
// publish cost). The subscriber then recovers via resync.
TEST(ChangefeedConcurrency, NonPollingSubscriberNeverBlocksWriters) {
  Changefeed feed(64);
  const Changefeed::SubscriberId idle = feed.Subscribe();

  constexpr int kWrites = 20000;
  std::thread writer([&feed] {
    for (int i = 0; i < kWrites; ++i) {
      feed.Publish(Record(static_cast<geodb::ObjectId>(i + 1)));
    }
  });
  writer.join();

  EXPECT_EQ(feed.head_seq(), static_cast<uint64_t>(kWrites));
  EXPECT_EQ(feed.stats().dropped, static_cast<uint64_t>(kWrites - 64));
  EXPECT_EQ(feed.Lag(idle), static_cast<uint64_t>(kWrites));

  const ChangefeedPoll poll = feed.Poll(idle);
  EXPECT_TRUE(poll.resync);
  EXPECT_EQ(poll.next_seq, static_cast<uint64_t>(kWrites));
  EXPECT_EQ(feed.Lag(idle), 0u);
}

}  // namespace
}  // namespace agis::storage
