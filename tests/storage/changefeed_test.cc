#include "storage/changefeed.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "geodb/database.h"
#include "geom/geometry.h"

namespace agis::storage {
namespace {

ChangeRecord Record(ChangeKind kind, const std::string& class_name,
                    geodb::ObjectId id) {
  ChangeRecord r;
  r.kind = kind;
  r.class_name = class_name;
  r.object_id = id;
  return r;
}

TEST(Changefeed, PublishAssignsContiguousSequences) {
  Changefeed feed(8);
  EXPECT_EQ(feed.head_seq(), 0u);
  EXPECT_EQ(feed.Publish(Record(ChangeKind::kInsert, "Pole", 1)), 1u);
  EXPECT_EQ(feed.Publish(Record(ChangeKind::kUpdate, "Pole", 1)), 2u);
  EXPECT_EQ(feed.Publish(Record(ChangeKind::kDelete, "Pole", 1)), 3u);
  EXPECT_EQ(feed.head_seq(), 3u);
  EXPECT_EQ(feed.stats().published, 3u);
  EXPECT_EQ(feed.stats().tail_seq, 1u);
}

TEST(Changefeed, SubscribeSeesOnlyLaterRecords) {
  Changefeed feed(8);
  feed.Publish(Record(ChangeKind::kInsert, "Pole", 1));
  const Changefeed::SubscriberId sub = feed.Subscribe();
  EXPECT_EQ(feed.Poll(sub).records.size(), 0u);

  feed.Publish(Record(ChangeKind::kInsert, "Pole", 2));
  feed.Publish(Record(ChangeKind::kUpdate, "Pole", 2));
  ChangefeedPoll poll = feed.Poll(sub);
  ASSERT_EQ(poll.records.size(), 2u);
  EXPECT_FALSE(poll.resync);
  EXPECT_EQ(poll.records[0].seq, 2u);
  EXPECT_EQ(poll.records[0].object_id, 2u);
  EXPECT_EQ(poll.records[1].seq, 3u);
  EXPECT_EQ(poll.next_seq, 3u);
}

TEST(Changefeed, PollIsRepeatableUntilAck) {
  Changefeed feed(8);
  const Changefeed::SubscriberId sub = feed.Subscribe();
  feed.Publish(Record(ChangeKind::kInsert, "Pole", 1));
  feed.Publish(Record(ChangeKind::kInsert, "Pole", 2));

  // At-least-once: the cursor only moves on Ack.
  EXPECT_EQ(feed.Poll(sub).records.size(), 2u);
  EXPECT_EQ(feed.Poll(sub).records.size(), 2u);
  EXPECT_EQ(feed.Lag(sub), 2u);

  ASSERT_TRUE(feed.Ack(sub, 1).ok());
  ChangefeedPoll poll = feed.Poll(sub);
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].seq, 2u);
  ASSERT_TRUE(feed.Ack(sub, poll.next_seq).ok());
  EXPECT_EQ(feed.Poll(sub).records.size(), 0u);
  EXPECT_EQ(feed.Lag(sub), 0u);
}

TEST(Changefeed, MaxRecordsBoundsTheBatch) {
  Changefeed feed(16);
  const Changefeed::SubscriberId sub = feed.Subscribe();
  for (int i = 0; i < 5; ++i) {
    feed.Publish(Record(ChangeKind::kInsert, "Pole", i + 1));
  }
  ChangefeedPoll poll = feed.Poll(sub, 2);
  ASSERT_EQ(poll.records.size(), 2u);
  EXPECT_EQ(poll.next_seq, 2u);
  ASSERT_TRUE(feed.Ack(sub, poll.next_seq).ok());
  EXPECT_EQ(feed.Poll(sub).records.size(), 3u);
}

TEST(Changefeed, ReplayFromSequence) {
  Changefeed feed(16);
  for (int i = 0; i < 6; ++i) {
    feed.Publish(Record(ChangeKind::kInsert, "Pole", i + 1));
  }
  const Changefeed::SubscriberId sub = feed.SubscribeFrom(3);
  ChangefeedPoll poll = feed.Poll(sub);
  ASSERT_EQ(poll.records.size(), 3u);
  EXPECT_FALSE(poll.resync);
  EXPECT_EQ(poll.records.front().seq, 4u);
  EXPECT_EQ(poll.records.back().seq, 6u);
}

TEST(Changefeed, RingBoundDropsOldestAndForcesResync) {
  Changefeed feed(4);
  const Changefeed::SubscriberId lagging = feed.Subscribe();
  for (int i = 0; i < 10; ++i) {
    feed.Publish(Record(ChangeKind::kInsert, "Pole", i + 1));
  }
  EXPECT_EQ(feed.stats().dropped, 6u);
  EXPECT_EQ(feed.stats().tail_seq, 7u);
  EXPECT_EQ(feed.Lag(lagging), 10u);

  // The subscriber's next records (1..6) are gone: drop to resync.
  ChangefeedPoll poll = feed.Poll(lagging);
  EXPECT_TRUE(poll.resync);
  EXPECT_TRUE(poll.records.empty());
  EXPECT_EQ(poll.next_seq, 10u);
  EXPECT_EQ(feed.stats().resyncs, 1u);
  // The resync jumped the cursor to the head: lag is gone and
  // subsequent polls deliver deltas again.
  EXPECT_EQ(feed.Lag(lagging), 0u);
  feed.Publish(Record(ChangeKind::kInsert, "Pole", 11));
  poll = feed.Poll(lagging);
  EXPECT_FALSE(poll.resync);
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].seq, 11u);
}

TEST(Changefeed, SubscribeFromBeforeTailResyncs) {
  Changefeed feed(2);
  for (int i = 0; i < 6; ++i) {
    feed.Publish(Record(ChangeKind::kInsert, "Pole", i + 1));
  }
  const Changefeed::SubscriberId sub = feed.SubscribeFrom(1);
  ChangefeedPoll poll = feed.Poll(sub);
  EXPECT_TRUE(poll.resync);
  EXPECT_EQ(poll.next_seq, 6u);
}

TEST(Changefeed, PartiallyLaggedSubscriberStillReplaysRetainedTail) {
  Changefeed feed(4);
  const Changefeed::SubscriberId sub = feed.Subscribe();
  for (int i = 0; i < 4; ++i) {
    feed.Publish(Record(ChangeKind::kInsert, "Pole", i + 1));
  }
  ASSERT_TRUE(feed.Ack(sub, 2).ok());
  // Two more pushes drop records 1 and 2 — both already acked, so the
  // subscriber's next record (3) is still retained. No resync.
  feed.Publish(Record(ChangeKind::kInsert, "Pole", 5));
  feed.Publish(Record(ChangeKind::kInsert, "Pole", 6));
  ChangefeedPoll poll = feed.Poll(sub);
  EXPECT_FALSE(poll.resync);
  ASSERT_EQ(poll.records.size(), 4u);
  EXPECT_EQ(poll.records.front().seq, 3u);
}

TEST(Changefeed, UnsubscribeForgetsTheCursor) {
  Changefeed feed(8);
  const Changefeed::SubscriberId sub = feed.Subscribe();
  EXPECT_EQ(feed.stats().subscribers, 1u);
  EXPECT_TRUE(feed.Unsubscribe(sub));
  EXPECT_FALSE(feed.Unsubscribe(sub));
  EXPECT_EQ(feed.stats().subscribers, 0u);
  EXPECT_TRUE(feed.Poll(sub).records.empty());
  EXPECT_TRUE(feed.Ack(sub, 1).IsNotFound());
  EXPECT_EQ(feed.Lag(sub), 0u);
}

TEST(Changefeed, AckClampsAndNeverRewinds) {
  Changefeed feed(8);
  const Changefeed::SubscriberId sub = feed.Subscribe();
  feed.Publish(Record(ChangeKind::kInsert, "Pole", 1));
  feed.Publish(Record(ChangeKind::kInsert, "Pole", 2));
  ASSERT_TRUE(feed.Ack(sub, 2).ok());
  // Acking backwards is a no-op, not a rewind.
  ASSERT_TRUE(feed.Ack(sub, 1).ok());
  EXPECT_EQ(feed.Lag(sub), 0u);
  // Acking past the head clamps to the head.
  ASSERT_TRUE(feed.Ack(sub, 99).ok());
  feed.Publish(Record(ChangeKind::kInsert, "Pole", 3));
  ChangefeedPoll poll = feed.Poll(sub);
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].seq, 3u);
}

TEST(Changefeed, ToStringNamesTheDelta) {
  ChangeRecord r = Record(ChangeKind::kUpdate, "Pole", 7);
  r.seq = 12;
  r.write_epoch = 34;
  r.changed_attributes = {"pole_type"};
  const std::string s = r.ToString();
  EXPECT_NE(s.find("update"), std::string::npos);
  EXPECT_NE(s.find("Pole"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("pole_type"), std::string::npos);
}

// ---- DbEventSink integration: fed from a live GeoDatabase ----------------

class ChangefeedDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<geodb::GeoDatabase>("test_schema");
    feed_ = std::make_unique<Changefeed>(64);
    db_->AddEventSink(feed_.get());
    geodb::ClassDef pole("Pole", "");
    ASSERT_TRUE(
        pole.AddAttribute(geodb::AttributeDef::Int("pole_type")).ok());
    ASSERT_TRUE(
        pole.AddAttribute(geodb::AttributeDef::Geometry("pole_location"))
            .ok());
    ASSERT_TRUE(db_->RegisterClass(std::move(pole)).ok());
  }

  void TearDown() override { db_->RemoveEventSink(feed_.get()); }

  std::unique_ptr<geodb::GeoDatabase> db_;
  std::unique_ptr<Changefeed> feed_;
};

TEST_F(ChangefeedDbTest, WritesBecomeRecordsWithEpochAndAttributes) {
  // Subscribe after RegisterClass so the first record is the insert.
  const Changefeed::SubscriberId sub = feed_->Subscribe();
  auto id = db_->Insert(
      "Pole", {{"pole_type", geodb::Value::Int(2)},
               {"pole_location", geodb::Value::MakeGeometry(
                                     geom::Geometry::FromPoint({1, 2}))}});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(
      db_->Update(id.value(), "pole_type", geodb::Value::Int(3)).ok());
  ASSERT_TRUE(db_->Delete(id.value()).ok());

  ChangefeedPoll poll = feed_->Poll(sub);
  ASSERT_EQ(poll.records.size(), 3u);

  const ChangeRecord& insert = poll.records[0];
  EXPECT_EQ(insert.kind, ChangeKind::kInsert);
  EXPECT_EQ(insert.class_name, "Pole");
  EXPECT_EQ(insert.object_id, id.value());
  EXPECT_GT(insert.write_epoch, 0u);
  ASSERT_EQ(insert.changed_attributes.size(), 2u);
  EXPECT_NE(std::find(insert.changed_attributes.begin(),
                      insert.changed_attributes.end(), "pole_type"),
            insert.changed_attributes.end());
  EXPECT_NE(std::find(insert.changed_attributes.begin(),
                      insert.changed_attributes.end(), "pole_location"),
            insert.changed_attributes.end());

  const ChangeRecord& update = poll.records[1];
  EXPECT_EQ(update.kind, ChangeKind::kUpdate);
  EXPECT_EQ(update.changed_attributes,
            std::vector<std::string>{"pole_type"});
  EXPECT_GT(update.write_epoch, insert.write_epoch);

  const ChangeRecord& del = poll.records[2];
  EXPECT_EQ(del.kind, ChangeKind::kDelete);
  EXPECT_EQ(del.object_id, id.value());
  EXPECT_TRUE(del.changed_attributes.empty());

  // Write epochs are the WAL's total order: strictly increasing.
  EXPECT_GT(del.write_epoch, update.write_epoch);
}

TEST_F(ChangefeedDbTest, RegisterClassEmitsSchemaRecord) {
  const Changefeed::SubscriberId sub = feed_->Subscribe();
  geodb::ClassDef duct("Duct", "");
  ASSERT_TRUE(db_->RegisterClass(std::move(duct)).ok());
  ChangefeedPoll poll = feed_->Poll(sub);
  ASSERT_EQ(poll.records.size(), 1u);
  EXPECT_EQ(poll.records[0].kind, ChangeKind::kSchema);
  EXPECT_EQ(poll.records[0].class_name, "Duct");
  EXPECT_EQ(poll.records[0].object_id, 0u);
}

TEST_F(ChangefeedDbTest, ReadsPublishNothing) {
  const Changefeed::SubscriberId sub = feed_->Subscribe();
  auto id = db_->Insert("Pole", {{"pole_type", geodb::Value::Int(1)}});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(db_->GetClass("Pole").ok());
  ASSERT_TRUE(db_->ScanExtent("Pole").ok());
  ChangefeedPoll poll = feed_->Poll(sub);
  ASSERT_EQ(poll.records.size(), 1u);  // Just the insert.
  EXPECT_EQ(poll.records[0].kind, ChangeKind::kInsert);
}

}  // namespace
}  // namespace agis::storage
