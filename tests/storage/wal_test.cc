// Write-ahead-log tests: framing round trips, group-commit buffering,
// torn-tail tolerance, header validation, and injected write faults.

#include "storage/wal.h"

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "storage/io.h"

namespace agis::storage {
namespace {

using geodb::ObjectInstance;
using geodb::Value;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "agis_wal_" + name + ".log";
}

WalRecord InsertRecord(uint64_t id, int64_t type) {
  WalRecord r;
  r.kind = WalRecordKind::kInsert;
  r.object = ObjectInstance(id, "Pole");
  r.object.Set("pole_type", Value::Int(type));
  return r;
}

std::string Slurp(const std::string& path) {
  auto contents = ReadFileToString(path);
  EXPECT_TRUE(contents.ok()) << contents.status();
  return contents.ok() ? contents.value() : std::string();
}

void Dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

TEST(Wal, AppendSyncReadRoundTripsEveryRecordKind) {
  const std::string path = TestPath("roundtrip");
  auto wal = WalWriter::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status();

  ASSERT_TRUE(wal->Append(InsertRecord(1, 7)).ok());
  WalRecord update;
  update.kind = WalRecordKind::kUpdate;
  update.id = 1;
  update.attribute = "pole_type";
  update.value = Value::Int(9);
  ASSERT_TRUE(wal->Append(update).ok());
  WalRecord del;
  del.kind = WalRecordKind::kDelete;
  del.id = 1;
  ASSERT_TRUE(wal->Append(del).ok());
  WalRecord directive;
  directive.kind = WalRecordKind::kDirective;
  directive.directive_name = "u:juliano/a:pole_manager";
  directive.directive_source = "For user juliano ...";
  ASSERT_TRUE(wal->Append(directive).ok());
  WalRecord reg;
  reg.kind = WalRecordKind::kRegisterClass;
  reg.class_def = geodb::ClassDef("Pole", "doc");
  ASSERT_TRUE(
      reg.class_def.AddAttribute(geodb::AttributeDef::Int("pole_type")).ok());
  ASSERT_TRUE(wal->Append(reg).ok());
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(wal->Close().ok());

  auto read = ReadWalFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 5u);
  EXPECT_EQ(read->records[0].kind, WalRecordKind::kInsert);
  EXPECT_EQ(read->records[0].object.id(), 1u);
  EXPECT_EQ(read->records[0].object.Get("pole_type"), Value::Int(7));
  EXPECT_EQ(read->records[1].kind, WalRecordKind::kUpdate);
  EXPECT_EQ(read->records[1].attribute, "pole_type");
  EXPECT_EQ(read->records[1].value, Value::Int(9));
  EXPECT_EQ(read->records[2].kind, WalRecordKind::kDelete);
  EXPECT_EQ(read->records[2].id, 1u);
  EXPECT_EQ(read->records[3].kind, WalRecordKind::kDirective);
  EXPECT_EQ(read->records[3].directive_name, "u:juliano/a:pole_manager");
  EXPECT_EQ(read->records[4].kind, WalRecordKind::kRegisterClass);
  EXPECT_EQ(read->records[4].class_def.name(), "Pole");
}

TEST(Wal, GroupCommitBuffersUntilSync) {
  const std::string path = TestPath("groupcommit");
  WalWriterOptions options;
  options.group_commit_bytes = 1 << 20;  // Nothing flushes on its own.
  auto wal = WalWriter::Open(path, options);
  ASSERT_TRUE(wal.ok()) << wal.status();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal->Append(InsertRecord(static_cast<uint64_t>(i + 1), i))
                    .ok());
  }
  // Before the sync, only the header is on disk.
  auto before = ReadWalFile(path);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_TRUE(before->records.empty());
  EXPECT_FALSE(before->torn_tail);

  ASSERT_TRUE(wal->Sync().ok());
  auto after = ReadWalFile(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->records.size(), 10u);
  EXPECT_EQ(wal->records_appended(), 10u);
  EXPECT_GE(wal->syncs(), 1u);
  ASSERT_TRUE(wal->Close().ok());
}

TEST(Wal, SyncEveryRecordMakesEachAppendDurable) {
  const std::string path = TestPath("synceach");
  WalWriterOptions options;
  options.sync_every_records = 1;
  auto wal = WalWriter::Open(path, options);
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_TRUE(wal->Append(InsertRecord(1, 1)).ok());
  ASSERT_TRUE(wal->Append(InsertRecord(2, 2)).ok());
  auto read = ReadWalFile(path);  // No explicit Sync needed.
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 2u);
  ASSERT_TRUE(wal->Close().ok());
}

TEST(Wal, TornTailReturnsIntactPrefix) {
  const std::string path = TestPath("torn");
  auto wal = WalWriter::Open(path);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(wal->Append(InsertRecord(static_cast<uint64_t>(i + 1), i))
                    .ok());
  }
  ASSERT_TRUE(wal->Close().ok());
  const std::string intact = Slurp(path);

  // Chop the file at every byte position past the header: the reader
  // must return an intact prefix of the appended records — never an
  // error, never a fabricated or reordered record.
  const size_t header_size = 8;  // "AGISWAL1"
  for (size_t cut = header_size; cut < intact.size(); ++cut) {
    Dump(path, intact.substr(0, cut));
    auto read = ReadWalFile(path);
    ASSERT_TRUE(read.ok()) << "cut at " << cut << ": " << read.status();
    EXPECT_LE(read->bytes_consumed, cut);
    EXPECT_LE(read->records.size(), 5u);
    for (size_t r = 0; r < read->records.size(); ++r) {
      EXPECT_EQ(read->records[r].object.id(), r + 1) << "cut at " << cut;
    }
  }
  // A cut strictly inside the final frame is flagged as a torn tail.
  Dump(path, intact.substr(0, intact.size() - 1));
  auto torn = ReadWalFile(path);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE(torn->torn_tail);
  EXPECT_EQ(torn->records.size(), 4u);
}

TEST(Wal, FlippedPayloadByteEndsTheIntactPrefix) {
  const std::string path = TestPath("crcflip");
  auto wal = WalWriter::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(InsertRecord(1, 1)).ok());
  ASSERT_TRUE(wal->Append(InsertRecord(2, 2)).ok());
  ASSERT_TRUE(wal->Close().ok());

  std::string bytes = Slurp(path);
  bytes[bytes.size() - 3] ^= 0x40;  // Corrupt the last record's payload.
  Dump(path, bytes);

  auto read = ReadWalFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].object.id(), 1u);
}

TEST(Wal, ForeignOrFutureVersionHeaderIsAnError) {
  const std::string path = TestPath("version");
  auto wal = WalWriter::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(InsertRecord(1, 1)).ok());
  ASSERT_TRUE(wal->Close().ok());
  std::string bytes = Slurp(path);

  std::string future = bytes;
  future[7] = '9';  // "AGISWAL1" -> "AGISWAL9".
  Dump(path, future);
  EXPECT_FALSE(ReadWalFile(path).ok());

  std::string foreign = bytes;
  foreign[0] = 'X';
  Dump(path, foreign);
  EXPECT_FALSE(ReadWalFile(path).ok());

  Dump(path, "");  // Too short for any header.
  EXPECT_FALSE(ReadWalFile(path).ok());

  EXPECT_TRUE(ReadWalFile(TestPath("never_written")).status().IsNotFound());
}

TEST(Wal, InjectedWriteFaultTripsPermanentlyAndLeavesIntactPrefix) {
  const std::string path = TestPath("fault");
  WalWriterOptions options;
  options.sync_every_records = 1;
  options.fault_plan.fail_after_bytes = 150;
  options.fault_plan.short_write = true;
  auto wal = WalWriter::Open(path, options);
  ASSERT_TRUE(wal.ok()) << wal.status();

  size_t acknowledged = 0;
  bool failed = false;
  for (int i = 0; i < 50; ++i) {
    const agis::Status status =
        wal->Append(InsertRecord(static_cast<uint64_t>(i + 1), i));
    if (status.ok()) {
      ++acknowledged;
    } else {
      failed = true;
      // Tripped: every later operation fails too.
      EXPECT_FALSE(wal->Append(InsertRecord(99, 0)).ok());
      EXPECT_FALSE(wal->Sync().ok());
      break;
    }
  }
  ASSERT_TRUE(failed) << "fault plan never fired";

  // The on-disk file has a torn tail; every acknowledged (synced)
  // record is intact.
  auto read = ReadWalFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_GE(read->records.size(), acknowledged);
  for (size_t r = 0; r < acknowledged; ++r) {
    EXPECT_EQ(read->records[r].object.id(), r + 1);
  }
}

}  // namespace
}  // namespace agis::storage
