#include "spatial/spatial_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "spatial/grid_index.h"
#include "spatial/rtree.h"

namespace agis::spatial {
namespace {

using geom::BoundingBox;
using geom::Point;

std::vector<EntryId> Sorted(std::vector<EntryId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

BoundingBox RandomBox(agis::Rng* rng, double world, double max_size) {
  const double x = rng->UniformDouble(0, world);
  const double y = rng->UniformDouble(0, world);
  const double w = rng->UniformDouble(0, max_size);
  const double h = rng->UniformDouble(0, max_size);
  return BoundingBox(x, y, x + w, y + h);
}

TEST(LinearScanIndex, BasicInsertQueryRemove) {
  LinearScanIndex index;
  index.Insert(1, BoundingBox(0, 0, 1, 1));
  index.Insert(2, BoundingBox(5, 5, 6, 6));
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(Sorted(index.Query(BoundingBox(0, 0, 10, 10))),
            (std::vector<EntryId>{1, 2}));
  EXPECT_EQ(index.Query(BoundingBox(4, 4, 7, 7)),
            (std::vector<EntryId>{2}));
  EXPECT_TRUE(index.Remove(1));
  EXPECT_FALSE(index.Remove(1));
  EXPECT_EQ(index.size(), 1u);
}

TEST(LinearScanIndex, QueryPointAndNearest) {
  LinearScanIndex index;
  index.Insert(1, BoundingBox(0, 0, 2, 2));
  index.Insert(2, BoundingBox(1, 1, 3, 3));
  index.Insert(3, BoundingBox(10, 10, 11, 11));
  EXPECT_EQ(Sorted(index.QueryPoint({1.5, 1.5})),
            (std::vector<EntryId>{1, 2}));
  EXPECT_EQ(index.Nearest({0, 0}, 2), (std::vector<EntryId>{1, 2}));
  EXPECT_EQ(index.Nearest({20, 20}, 1), (std::vector<EntryId>{3}));
}

TEST(BoxDistance, ZeroInsidePositiveOutside) {
  const BoundingBox box(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(BoxDistance({1, 1}, box), 0.0);
  EXPECT_DOUBLE_EQ(BoxDistance({5, 1}, box), 3.0);
  EXPECT_DOUBLE_EQ(BoxDistance({5, 6}, box), 5.0);
}

TEST(RTree, SplitsAndStaysValid) {
  RTree tree(4);
  for (EntryId id = 1; id <= 100; ++id) {
    const double x = static_cast<double>(id % 10);
    const double y = static_cast<double>(id / 10);
    tree.Insert(id, BoundingBox(x, y, x + 0.5, y + 0.5));
    ASSERT_TRUE(tree.CheckInvariants().ok())
        << "after insert " << id << ": " << tree.CheckInvariants();
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.Height(), 1u);
  EXPECT_EQ(tree.Query(BoundingBox(0, 0, 10, 10)).size(), 100u);
}

TEST(RTree, RemoveCondensesAndStaysValid) {
  RTree tree(4);
  for (EntryId id = 1; id <= 60; ++id) {
    const double x = static_cast<double>(id);
    tree.Insert(id, BoundingBox(x, 0, x + 1, 1));
  }
  for (EntryId id = 1; id <= 60; id += 2) {
    ASSERT_TRUE(tree.Remove(id));
    ASSERT_TRUE(tree.CheckInvariants().ok())
        << "after remove " << id << ": " << tree.CheckInvariants();
  }
  EXPECT_EQ(tree.size(), 30u);
  EXPECT_FALSE(tree.Remove(1));  // Already gone.
  // Remaining even ids still findable.
  EXPECT_EQ(tree.Query(BoundingBox(1.5, 0, 2.5, 1)),
            (std::vector<EntryId>{2}));
}

TEST(RTree, RemoveToEmptyAndReuse) {
  RTree tree(4);
  for (EntryId id = 1; id <= 20; ++id) {
    tree.Insert(id, BoundingBox(id, id, id + 1, id + 1));
  }
  for (EntryId id = 1; id <= 20; ++id) {
    ASSERT_TRUE(tree.Remove(id));
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Query(BoundingBox(0, 0, 100, 100)).empty());
  tree.Insert(99, BoundingBox(1, 1, 2, 2));
  EXPECT_EQ(tree.Query(BoundingBox(0, 0, 3, 3)),
            (std::vector<EntryId>{99}));
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(GridIndex, ClampsOutOfWorldBoxes) {
  GridIndex grid(BoundingBox(0, 0, 100, 100), 10);
  grid.Insert(1, BoundingBox(-50, -50, -40, -40));  // Entirely outside.
  grid.Insert(2, BoundingBox(95, 95, 150, 150));    // Partially outside.
  EXPECT_EQ(grid.Query(BoundingBox(-60, -60, -30, -30)),
            (std::vector<EntryId>{1}));
  EXPECT_EQ(grid.Query(BoundingBox(140, 140, 160, 160)),
            (std::vector<EntryId>{2}));
}

TEST(GridIndex, NoDuplicatesForSpanningEntries) {
  GridIndex grid(BoundingBox(0, 0, 100, 100), 10);
  grid.Insert(7, BoundingBox(5, 5, 95, 95));  // Spans many cells.
  EXPECT_EQ(grid.Query(BoundingBox(0, 0, 100, 100)),
            (std::vector<EntryId>{7}));
}

// Property: every index returns exactly the linear scan's results
// under random insert/remove/query workloads.
struct IndexParam {
  std::string name;
  uint64_t seed;
};

class IndexEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexEquivalence, MatchesLinearScanUnderChurn) {
  agis::Rng rng(GetParam());
  LinearScanIndex reference;
  RTree rtree(8);
  GridIndex grid(BoundingBox(0, 0, 1000, 1000), 32);
  std::vector<EntryId> live;
  EntryId next_id = 1;

  for (int step = 0; step < 600; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 6 || live.empty()) {
      const BoundingBox box = RandomBox(&rng, 950, 50);
      const EntryId id = next_id++;
      reference.Insert(id, box);
      rtree.Insert(id, box);
      grid.Insert(id, box);
      live.push_back(id);
    } else if (action < 8) {
      const size_t pick = rng.Uniform(live.size());
      const EntryId id = live[pick];
      EXPECT_TRUE(reference.Remove(id));
      EXPECT_TRUE(rtree.Remove(id));
      EXPECT_TRUE(grid.Remove(id));
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      const BoundingBox probe = RandomBox(&rng, 900, 150);
      const auto expected = Sorted(reference.Query(probe));
      EXPECT_EQ(Sorted(rtree.Query(probe)), expected);
      EXPECT_EQ(Sorted(grid.Query(probe)), expected);
      const Point p{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)};
      const auto expected_pt = Sorted(reference.QueryPoint(p));
      EXPECT_EQ(Sorted(rtree.QueryPoint(p)), expected_pt);
      EXPECT_EQ(Sorted(grid.QueryPoint(p)), expected_pt);
    }
  }
  EXPECT_EQ(rtree.size(), reference.size());
  EXPECT_EQ(grid.size(), reference.size());
  EXPECT_TRUE(rtree.CheckInvariants().ok()) << rtree.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalence,
                         ::testing::Range<uint64_t>(1, 9));

// Property: Nearest returns the same distance profile as the scan
// (ids may differ on ties, distances must not).
class NearestEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NearestEquivalence, DistanceProfilesMatch) {
  agis::Rng rng(GetParam());
  LinearScanIndex reference;
  RTree rtree(8);
  std::vector<std::pair<EntryId, BoundingBox>> entries;
  for (EntryId id = 1; id <= 200; ++id) {
    const BoundingBox box = RandomBox(&rng, 950, 20);
    reference.Insert(id, box);
    rtree.Insert(id, box);
    entries.emplace_back(id, box);
  }
  auto box_of = [&entries](EntryId id) {
    for (const auto& [eid, box] : entries) {
      if (eid == id) return box;
    }
    return BoundingBox();
  };
  for (int probe = 0; probe < 20; ++probe) {
    const Point p{rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)};
    const auto expected = reference.Nearest(p, 10);
    const auto actual = rtree.Nearest(p, 10);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(BoxDistance(p, box_of(actual[i])),
                  BoxDistance(p, box_of(expected[i])), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NearestEquivalence,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace agis::spatial
