#include <algorithm>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "spatial/grid_index.h"
#include "spatial/rtree.h"
#include "spatial/spatial_index.h"

namespace agis::spatial {
namespace {

using geom::BoundingBox;

std::vector<EntryId> Sorted(std::vector<EntryId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<IndexEntry> RandomEntries(size_t n, uint64_t seed) {
  agis::Rng rng(seed);
  std::vector<IndexEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(0, 1000);
    const double y = rng.UniformDouble(0, 1000);
    const double w = rng.UniformDouble(0, 5);
    const double h = rng.UniformDouble(0, 5);
    entries.push_back(
        {static_cast<EntryId>(i + 1), BoundingBox(x, y, x + w, y + h)});
  }
  return entries;
}

TEST(StrBulkLoad, InvariantsHoldAcrossSizesAndFanouts) {
  for (const size_t fanout : {size_t{4}, size_t{8}, size_t{16}}) {
    // Cover empty, single node, exact boundaries, boundary +/- 1, and
    // sizes that force a short tail node at both leaf and inner levels.
    const std::vector<size_t> sizes = {
        0, 1, fanout, fanout + 1, fanout * fanout, fanout * fanout + 1,
        337, 1000};
    for (const size_t n : sizes) {
      SCOPED_TRACE("fanout=" + std::to_string(fanout) +
                   " n=" + std::to_string(n));
      RTree tree(fanout);
      tree.BulkLoad(RandomEntries(n, /*seed=*/n * 31 + fanout));
      EXPECT_EQ(tree.size(), n);
      const auto status = tree.CheckInvariants();
      EXPECT_TRUE(status.ok()) << status;
    }
  }
}

TEST(StrBulkLoad, QueriesMatchLinearScan) {
  const auto entries = RandomEntries(500, /*seed=*/42);
  RTree tree(8);
  tree.BulkLoad(entries);
  LinearScanIndex reference;
  reference.BulkLoad(entries);  // Default BulkLoad: per-entry Insert.

  agis::Rng rng(7);
  for (int q = 0; q < 100; ++q) {
    const double x = rng.UniformDouble(0, 1000);
    const double y = rng.UniformDouble(0, 1000);
    const double size = rng.UniformDouble(1, 120);
    const BoundingBox window(x, y, x + size, y + size);
    EXPECT_EQ(Sorted(tree.Query(window)), Sorted(reference.Query(window)));
  }
  EXPECT_EQ(Sorted(tree.Query(BoundingBox(0, 0, 1000, 1000))).size(), 500u);
}

TEST(StrBulkLoad, TreeSupportsUpdatesAfterwards) {
  RTree tree(8);
  tree.BulkLoad(RandomEntries(200, /*seed=*/3));
  EXPECT_TRUE(tree.Remove(5));
  EXPECT_FALSE(tree.Remove(5));
  tree.Insert(1000, BoundingBox(1, 1, 2, 2));
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  EXPECT_EQ(tree.Query(BoundingBox(0.5, 0.5, 2.5, 2.5)).size(),
            Sorted(tree.Query(BoundingBox(0.5, 0.5, 2.5, 2.5))).size());
}

TEST(StrBulkLoad, PacksTighterThanIncrementalInserts) {
  const auto entries = RandomEntries(2000, /*seed=*/11);
  RTree packed(8);
  packed.BulkLoad(entries);
  RTree incremental(8);
  for (const IndexEntry& e : entries) incremental.Insert(e.id, e.box);

  const IndexQuality pq = packed.Quality();
  const IndexQuality iq = incremental.Quality();
  // STR fills nodes to capacity (modulo one short tail per level);
  // quadratic-split insertion leaves nodes roughly half full.
  EXPECT_GT(pq.avg_fill, 0.85);
  EXPECT_GT(pq.avg_fill, iq.avg_fill);
  EXPECT_LE(pq.height, iq.height);
  EXPECT_LT(pq.nodes, iq.nodes);
  EXPECT_GE(pq.height, 1u);
  EXPECT_GE(pq.nodes, 1u);
}

TEST(StrBulkLoad, NonEmptyTreeFallsBackToInserts) {
  RTree tree(4);
  tree.Insert(999, BoundingBox(0, 0, 1, 1));
  tree.BulkLoad(RandomEntries(100, /*seed=*/5));
  EXPECT_EQ(tree.size(), 101u);
  EXPECT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants();
  EXPECT_EQ(tree.Query(BoundingBox(-1, -1, 1001, 1001)).size(), 101u);
}

TEST(StrBulkLoad, GridIndexUsesDefaultBulkLoad) {
  GridIndex grid(BoundingBox(0, 0, 1000, 1000), 16);
  const auto entries = RandomEntries(300, /*seed=*/9);
  grid.BulkLoad(entries);
  EXPECT_EQ(grid.size(), 300u);
  LinearScanIndex reference;
  reference.BulkLoad(entries);
  const BoundingBox window(100, 100, 400, 400);
  EXPECT_EQ(Sorted(grid.Query(window)), Sorted(reference.Query(window)));
}

TEST(StrBulkLoad, QualityOfTrivialTrees) {
  RTree empty(8);
  const IndexQuality q = empty.Quality();
  EXPECT_EQ(q.height, 1u);
  EXPECT_EQ(q.nodes, 1u);

  RTree one(8);
  one.BulkLoad({{1, BoundingBox(0, 0, 1, 1)}});
  EXPECT_EQ(one.Quality().height, 1u);
  EXPECT_EQ(one.size(), 1u);
}

}  // namespace
}  // namespace agis::spatial
