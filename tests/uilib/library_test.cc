#include "uilib/library.h"

#include <gtest/gtest.h>

#include "uilib/widget_props.h"

namespace agis::uilib {
namespace {

TEST(Library, RegisterAndInstantiate) {
  InterfaceObjectLibrary library;
  ASSERT_TRUE(library
                  .RegisterPrototype(MakeWidget(WidgetKind::kButton, "ok"),
                                     "an ok button")
                  .ok());
  EXPECT_TRUE(library.Has("ok"));
  EXPECT_EQ(library.DocOf("ok"), "an ok button");
  auto instance = library.Instantiate("ok");
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance.value()->kind(), WidgetKind::kButton);
  EXPECT_TRUE(library.Instantiate("missing").status().IsNotFound());
}

TEST(Library, DuplicateNamesRejectedUnlessReplace) {
  InterfaceObjectLibrary library;
  ASSERT_TRUE(
      library.RegisterPrototype(MakeWidget(WidgetKind::kButton, "b")).ok());
  EXPECT_TRUE(library.RegisterPrototype(MakeWidget(WidgetKind::kList, "b"))
                  .IsAlreadyExists());
  EXPECT_TRUE(library
                  .RegisterPrototype(MakeWidget(WidgetKind::kList, "b"), "",
                                     /*allow_replace=*/true)
                  .ok());
  EXPECT_EQ(library.Peek("b")->kind(), WidgetKind::kList);
  EXPECT_EQ(library.NumPrototypes(), 1u);
}

TEST(Library, RejectsInvalidPrototypes) {
  InterfaceObjectLibrary library;
  EXPECT_TRUE(library.RegisterPrototype(nullptr).IsInvalidArgument());
  EXPECT_TRUE(library.RegisterPrototype(MakeWidget(WidgetKind::kButton, ""))
                  .IsInvalidArgument());
  auto bad_menu = MakeWidget(WidgetKind::kMenu, "m");
  bad_menu->AddChild(MakeWidget(WidgetKind::kButton, "x"));
  EXPECT_TRUE(library.RegisterPrototype(std::move(bad_menu))
                  .IsFailedPrecondition());
}

TEST(Library, InstancesAreIndependentOfPrototype) {
  InterfaceObjectLibrary library;
  auto proto = MakeWidget(WidgetKind::kPanel, "panel");
  proto->SetProperty("color", "blue");
  ASSERT_TRUE(library.RegisterPrototype(std::move(proto)).ok());
  auto a = library.Instantiate("panel").value();
  a->SetProperty("color", "red");
  auto b = library.Instantiate("panel").value();
  EXPECT_EQ(b->GetProperty("color"), "blue");
}

TEST(Library, SpecializeClonesAndMutates) {
  InterfaceObjectLibrary library;
  ASSERT_TRUE(library.RegisterKernelPrototypes().ok());
  ASSERT_TRUE(library
                  .Specialize("panel", "toolbox",
                              [](InterfaceObject& w) {
                                w.SetProperty("orientation", "horizontal");
                                w.AddChild(
                                    MakeWidget(WidgetKind::kButton, "tool1"));
                              },
                              "horizontal tool panel")
                  .ok());
  auto toolbox = library.Instantiate("toolbox");
  ASSERT_TRUE(toolbox.ok());
  EXPECT_EQ(toolbox.value()->name(), "toolbox");
  EXPECT_EQ(toolbox.value()->GetProperty("orientation"), "horizontal");
  EXPECT_NE(toolbox.value()->FindChild("tool1"), nullptr);
  // Base prototype untouched.
  EXPECT_TRUE(library.Peek("panel")->children().empty());
  // Specializing a missing base fails.
  EXPECT_TRUE(
      library.Specialize("missing", "x", nullptr).IsNotFound());
}

TEST(Library, RemovePrototype) {
  InterfaceObjectLibrary library;
  ASSERT_TRUE(
      library.RegisterPrototype(MakeWidget(WidgetKind::kButton, "b")).ok());
  EXPECT_TRUE(library.RemovePrototype("b").ok());
  EXPECT_FALSE(library.Has("b"));
  EXPECT_TRUE(library.RemovePrototype("b").IsNotFound());
  EXPECT_TRUE(library.Names().empty());
}

TEST(Library, KernelPrototypesMatchFigure2) {
  InterfaceObjectLibrary library;
  ASSERT_TRUE(library.RegisterKernelPrototypes().ok());
  // The eight kernel classes of Figure 2.
  for (const char* name : {"window", "panel", "text_field", "drawing_area",
                           "list", "button", "menu", "menu_item"}) {
    EXPECT_TRUE(library.Has(name)) << name;
  }
  EXPECT_EQ(library.NumPrototypes(), 8u);
  // Registering twice collides.
  EXPECT_TRUE(library.RegisterKernelPrototypes().IsAlreadyExists());
}

TEST(Library, StandardGisPrototypes) {
  InterfaceObjectLibrary library;
  ASSERT_TRUE(library.RegisterKernelPrototypes().ok());
  ASSERT_TRUE(RegisterStandardGisPrototypes(&library).ok());
  EXPECT_TRUE(library.Has("poleWidget"));
  EXPECT_TRUE(library.Has("composed_text"));
  EXPECT_TRUE(library.Has("map_selection_panel"));
  EXPECT_TRUE(library.Has("class_control"));
  EXPECT_TRUE(library.Has("attribute_row"));

  // poleWidget is the slider-style panel of Figure 6 line 4.
  auto pole = library.Instantiate("poleWidget").value();
  EXPECT_EQ(pole->kind(), WidgetKind::kPanel);
  EXPECT_EQ(pole->GetProperty("style"), "slider");
  EXPECT_NE(pole->FindDescendant("pole_density_slider"), nullptr);

  // composed_text carries its notify() callback.
  auto composed = library.Instantiate("composed_text").value();
  EXPECT_EQ(composed->BoundCallbacks(kUiChange),
            (std::vector<std::string>{"composed_text.notify"}));
  UiEvent change;
  change.name = kUiChange;
  composed->Fire(change);
  EXPECT_EQ(composed->GetProperty("notified"), "true");

  // map_selection_panel composes lists, a text field and buttons
  // (the Section 3.2 reuse example).
  auto map_sel = library.Instantiate("map_selection_panel").value();
  EXPECT_NE(map_sel->FindDescendant("available_maps"), nullptr);
  EXPECT_NE(map_sel->FindDescendant("region_name"), nullptr);
  EXPECT_NE(map_sel->FindDescendant("open"), nullptr);
}

TEST(Library, ComplexPrototypeReuseInsideAnotherPanel) {
  // "this panel can be incorporated by the interface library as a new
  // complex object and thereafter used as a component of another
  // panel" (Section 3.2).
  InterfaceObjectLibrary library;
  ASSERT_TRUE(library.RegisterKernelPrototypes().ok());
  ASSERT_TRUE(RegisterStandardGisPrototypes(&library).ok());
  auto composite = MakeWidget(WidgetKind::kPanel, "browse_and_pick");
  composite->AddChild(library.Instantiate("map_selection_panel").value());
  composite->AddChild(library.Instantiate("class_control").value());
  ASSERT_TRUE(library.RegisterPrototype(std::move(composite)).ok());
  auto instance = library.Instantiate("browse_and_pick").value();
  EXPECT_NE(instance->FindDescendant("available_maps"), nullptr);
  EXPECT_NE(instance->FindDescendant("visible_toggle"), nullptr);
}

}  // namespace
}  // namespace agis::uilib
