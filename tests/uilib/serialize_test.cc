#include "uilib/serialize.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/strutil.h"
#include "uilib/library.h"
#include "uilib/widget_props.h"

namespace agis::uilib {
namespace {

TEST(Serialize, EscapingRoundTrips) {
  EXPECT_EQ(EscapeDefinitionString("plain"), "plain");
  EXPECT_EQ(EscapeDefinitionString("a\"b\\c\nd\te"),
            "a\\\"b\\\\c\\nd\\te");
}

TEST(Serialize, SimpleTreeFormat) {
  auto window = MakeWidget(WidgetKind::kWindow, "w");
  window->SetProperty("title", "Hello");
  auto* button = window->AddChild(MakeWidget(WidgetKind::kButton, "ok"));
  button->SetProperty("label", "OK");
  const std::string text = SerializeDefinition(*window);
  EXPECT_NE(text.find("Window \"w\" {"), std::string::npos);
  EXPECT_NE(text.find("@title \"Hello\""), std::string::npos);
  EXPECT_NE(text.find("Button \"ok\" {"), std::string::npos);
}

TEST(Serialize, ParseRebuildsTree) {
  auto parsed = ParseDefinition(R"(
    Window "Class set: Pole" {
      @window_type "ClassSet"
      Panel "control" {
        Button "show" { @label "Show" !click "toggle" }
        List "classes" { @items "Pole\nDuct" }
      }
    }
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const InterfaceObject& root = *parsed.value();
  EXPECT_EQ(root.kind(), WidgetKind::kWindow);
  EXPECT_EQ(root.GetProperty(kPropWindowType), "ClassSet");
  const InterfaceObject* button = root.FindDescendant("show");
  ASSERT_NE(button, nullptr);
  EXPECT_EQ(button->GetProperty("label"), "Show");
  // The binding arrived as a named placeholder that fires observably.
  EXPECT_EQ(button->BoundCallbacks(kUiClick),
            (std::vector<std::string>{"toggle"}));
  const InterfaceObject* list = root.FindDescendant("classes");
  EXPECT_EQ(GetListItems(*list), (std::vector<std::string>{"Pole", "Duct"}));
}

TEST(Serialize, PlaceholderCallbackFires) {
  auto parsed = ParseDefinition(
      R"(Button "b" { !click "do_thing" })");
  ASSERT_TRUE(parsed.ok());
  UiEvent click;
  click.name = kUiClick;
  parsed.value()->Fire(click);
  EXPECT_EQ(parsed.value()->GetProperty("fired_do_thing"), "true");
}

TEST(Serialize, ParseErrors) {
  EXPECT_TRUE(ParseDefinition("").status().IsParseError());
  EXPECT_TRUE(ParseDefinition("Gadget \"x\" {}").status().IsParseError());
  EXPECT_TRUE(ParseDefinition("Window \"w\" {").status().IsParseError());
  EXPECT_TRUE(
      ParseDefinition("Window \"w\" {} extra").status().IsParseError());
  EXPECT_TRUE(ParseDefinition("Window \"unterminated {}")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseDefinition(R"(Window "w" { @k "bad \q escape" })")
                  .status()
                  .IsParseError());
  // Atomic widget with a child.
  EXPECT_TRUE(ParseDefinition(R"(Button "b" { Button "c" {} })")
                  .status()
                  .IsParseError());
}

TEST(Serialize, CommentsIgnored) {
  auto parsed = ParseDefinition(R"(
    # a window definition
    Window "w" {  # inline comment
      @k "v"
    }
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value()->GetProperty("k"), "v");
}

// Property: serialize(parse(serialize(t))) is stable for random trees,
// and the parsed tree matches the original structurally.
class SerializeRoundTrip : public ::testing::TestWithParam<uint64_t> {};

void ExpectStructurallyEqual(const InterfaceObject& a,
                             const InterfaceObject& b) {
  EXPECT_EQ(a.kind(), b.kind());
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.properties(), b.properties());
  EXPECT_EQ(a.AllBindings(), b.AllBindings());
  ASSERT_EQ(a.children().size(), b.children().size());
  for (size_t i = 0; i < a.children().size(); ++i) {
    ExpectStructurallyEqual(*a.children()[i], *b.children()[i]);
  }
}

std::unique_ptr<InterfaceObject> RandomTree(agis::Rng* rng, int depth) {
  const bool leaf = depth <= 0 || rng->Bernoulli(0.4);
  const WidgetKind kind =
      leaf ? (rng->Bernoulli(0.5) ? WidgetKind::kButton
                                  : WidgetKind::kTextField)
           : WidgetKind::kPanel;
  auto node = MakeWidget(
      kind, agis::StrCat("node_", rng->Uniform(1000)));
  const size_t props = rng->Uniform(3);
  for (size_t i = 0; i < props; ++i) {
    node->SetProperty(agis::StrCat("p", i),
                      agis::StrCat("value \"", rng->Uniform(10), "\"\nline2"));
  }
  if (rng->Bernoulli(0.3)) {
    node->Bind(kUiClick, agis::StrCat("cb_", rng->Uniform(10)),
               [](InterfaceObject&, const UiEvent&) {});
  }
  if (!leaf) {
    const size_t kids = 1 + rng->Uniform(3);
    for (size_t i = 0; i < kids; ++i) {
      auto child = RandomTree(rng, depth - 1);
      child->set_name(agis::StrCat(child->name(), "_", i));
      node->AddChild(std::move(child));
    }
  }
  return node;
}

TEST_P(SerializeRoundTrip, RandomTreesSurvive) {
  agis::Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    auto tree = RandomTree(&rng, 4);
    const std::string text = SerializeDefinition(*tree);
    auto parsed = ParseDefinition(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    ExpectStructurallyEqual(*tree, *parsed.value());
    EXPECT_EQ(SerializeDefinition(*parsed.value()), text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundTrip,
                         ::testing::Values(3, 5, 7, 9));

}  // namespace
}  // namespace agis::uilib
