#include "uilib/interface_object.h"

#include <gtest/gtest.h>

#include "uilib/widget_props.h"

namespace agis::uilib {
namespace {

TEST(InterfaceObject, PropertiesDefaultEmpty) {
  InterfaceObject button(WidgetKind::kButton, "ok");
  EXPECT_EQ(button.GetProperty("label"), "");
  EXPECT_FALSE(button.HasProperty("label"));
  button.SetProperty("label", "OK");
  EXPECT_EQ(button.GetProperty("label"), "OK");
  EXPECT_TRUE(button.HasProperty("label"));
}

TEST(InterfaceObject, CompositionAndLookup) {
  InterfaceObject window(WidgetKind::kWindow, "w");
  auto* panel = window.AddChild(MakeWidget(WidgetKind::kPanel, "p"));
  auto* inner = panel->AddChild(MakeWidget(WidgetKind::kPanel, "inner"));
  inner->AddChild(MakeWidget(WidgetKind::kButton, "deep_button"));
  EXPECT_EQ(window.SubtreeSize(), 4u);
  EXPECT_EQ(window.SubtreeDepth(), 4u);
  EXPECT_EQ(window.FindChild("p"), panel);
  EXPECT_EQ(window.FindChild("inner"), nullptr);  // Not direct.
  EXPECT_NE(window.FindDescendant("deep_button"), nullptr);
  EXPECT_EQ(window.FindDescendant("deep_button")->parent(), inner);
  EXPECT_EQ(window.FindDescendant("missing"), nullptr);
}

TEST(InterfaceObject, RecursivePanelComposition) {
  // The Figure 2 recursive relationship: panels nest arbitrarily.
  auto root = MakeWidget(WidgetKind::kPanel, "level0");
  InterfaceObject* current = root.get();
  for (int i = 1; i <= 10; ++i) {
    current = current->AddChild(
        MakeWidget(WidgetKind::kPanel, "level" + std::to_string(i)));
  }
  EXPECT_EQ(root->SubtreeDepth(), 11u);
  EXPECT_TRUE(root->Validate().ok());
}

TEST(InterfaceObject, AtomicKindsRejectChildrenInValidate) {
  InterfaceObject button(WidgetKind::kButton, "b");
  EXPECT_FALSE(button.CanContainChildren());
  EXPECT_TRUE(button.Validate().ok());
}

TEST(InterfaceObject, MenuStructureValidation) {
  InterfaceObject menu(WidgetKind::kMenu, "m");
  menu.AddChild(MakeWidget(WidgetKind::kMenuItem, "open"));
  EXPECT_TRUE(menu.Validate().ok());
  menu.AddChild(MakeWidget(WidgetKind::kMenu, "submenu"));
  EXPECT_TRUE(menu.Validate().ok());  // Nested menus allowed.

  InterfaceObject bad_menu(WidgetKind::kMenu, "bad");
  bad_menu.AddChild(MakeWidget(WidgetKind::kButton, "not_an_item"));
  EXPECT_TRUE(bad_menu.Validate().IsFailedPrecondition());

  InterfaceObject panel(WidgetKind::kPanel, "p");
  panel.AddChild(MakeWidget(WidgetKind::kMenuItem, "stray"));
  EXPECT_TRUE(panel.Validate().IsFailedPrecondition());
}

TEST(InterfaceObject, RemoveChild) {
  InterfaceObject window(WidgetKind::kWindow, "w");
  window.AddChild(MakeWidget(WidgetKind::kButton, "a"));
  window.AddChild(MakeWidget(WidgetKind::kButton, "b"));
  EXPECT_TRUE(window.RemoveChild("a").ok());
  EXPECT_TRUE(window.RemoveChild("a").IsNotFound());
  EXPECT_EQ(window.children().size(), 1u);
}

TEST(InterfaceObject, CallbackBindingAndFiring) {
  InterfaceObject button(WidgetKind::kButton, "b");
  int clicks = 0;
  button.Bind(kUiClick, "count",
              [&clicks](InterfaceObject&, const UiEvent&) { ++clicks; });
  UiEvent click;
  click.name = kUiClick;
  EXPECT_EQ(button.Fire(click), 1u);
  EXPECT_EQ(clicks, 1);
  UiEvent other;
  other.name = kUiChange;
  EXPECT_EQ(button.Fire(other), 0u);
  EXPECT_EQ(clicks, 1);
}

TEST(InterfaceObject, RebindReplacesCallback) {
  InterfaceObject field(WidgetKind::kTextField, "f");
  std::string result;
  field.Bind(kUiChange, "handler",
             [&result](InterfaceObject&, const UiEvent&) { result = "old"; });
  field.Bind(kUiChange, "handler",
             [&result](InterfaceObject&, const UiEvent&) { result = "new"; });
  UiEvent change;
  change.name = kUiChange;
  EXPECT_EQ(field.Fire(change), 1u);
  EXPECT_EQ(result, "new");
  EXPECT_EQ(field.BoundCallbacks(kUiChange),
            (std::vector<std::string>{"handler"}));
}

TEST(InterfaceObject, UnbindRemovesCallback) {
  InterfaceObject field(WidgetKind::kTextField, "f");
  field.Bind(kUiChange, "h", [](InterfaceObject&, const UiEvent&) {});
  EXPECT_TRUE(field.Unbind(kUiChange, "h"));
  EXPECT_FALSE(field.Unbind(kUiChange, "h"));
  UiEvent change;
  change.name = kUiChange;
  EXPECT_EQ(field.Fire(change), 0u);
}

TEST(InterfaceObject, CloneIsDeepAndIndependent) {
  InterfaceObject window(WidgetKind::kWindow, "w");
  window.SetProperty("title", "original");
  auto* panel = window.AddChild(MakeWidget(WidgetKind::kPanel, "p"));
  auto* button = panel->AddChild(MakeWidget(WidgetKind::kButton, "b"));
  int fires = 0;
  button->Bind(kUiClick, "cb",
               [&fires](InterfaceObject&, const UiEvent&) { ++fires; });

  auto clone = window.Clone();
  EXPECT_EQ(clone->SubtreeSize(), 3u);
  EXPECT_EQ(clone->GetProperty("title"), "original");
  clone->SetProperty("title", "copy");
  EXPECT_EQ(window.GetProperty("title"), "original");

  // Cloned callbacks fire independently but share the captured state.
  UiEvent click;
  click.name = kUiClick;
  clone->FindDescendant("b")->Fire(click);
  EXPECT_EQ(fires, 1);
  clone->FindDescendant("b")->Unbind(kUiClick, "cb");
  button->Fire(click);
  EXPECT_EQ(fires, 2);  // Original binding untouched.
}

TEST(InterfaceObject, ToTreeStringShowsStructure) {
  InterfaceObject window(WidgetKind::kWindow, "Class set: Pole");
  auto* control = window.AddChild(MakeWidget(WidgetKind::kPanel, "control"));
  control->AddChild(MakeWidget(WidgetKind::kButton, "show"))
      ->SetProperty("label", "Show");
  const std::string tree = window.ToTreeString();
  EXPECT_NE(tree.find("Window \"Class set: Pole\""), std::string::npos);
  EXPECT_NE(tree.find("  Panel \"control\""), std::string::npos);
  EXPECT_NE(tree.find("    Button \"show\" [Show]"), std::string::npos);
}

TEST(WidgetProps, ListItemsRoundTrip) {
  auto list = MakeWidget(WidgetKind::kList, "l");
  SetListItems(list.get(), {"Pole", "Duct", "Cable"});
  EXPECT_EQ(GetListItems(*list),
            (std::vector<std::string>{"Pole", "Duct", "Cable"}));
  EXPECT_EQ(list->GetProperty("item_count"), "3");
  SetListItems(list.get(), {});
  EXPECT_TRUE(GetListItems(*list).empty());
}

TEST(WidgetProps, NewlinesInItemsSanitized) {
  auto list = MakeWidget(WidgetKind::kList, "l");
  SetListItems(list.get(), {"two\nlines"});
  EXPECT_EQ(GetListItems(*list), (std::vector<std::string>{"two lines"}));
}

TEST(WidgetProps, SelectionFiresEvent) {
  auto list = MakeWidget(WidgetKind::kList, "l");
  SetListItems(list.get(), {"a", "b", "c"});
  std::string selected_item;
  list->Bind(kUiSelect, "track",
             [&selected_item](InterfaceObject&, const UiEvent& e) {
               selected_item = e.Arg("item");
             });
  SelectListItem(list.get(), 1);
  EXPECT_EQ(selected_item, "b");
  EXPECT_EQ(SelectedListItem(*list), "b");
  // Out-of-range clamps to the last item.
  SelectListItem(list.get(), 99);
  EXPECT_EQ(SelectedListItem(*list), "c");
  // Empty list: no selection, no crash.
  auto empty = MakeWidget(WidgetKind::kList, "e");
  SelectListItem(empty.get(), 0);
  EXPECT_EQ(SelectedListItem(*empty), "");
}

}  // namespace
}  // namespace agis::uilib
