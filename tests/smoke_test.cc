// End-to-end smoke test: the Section 4 flow from directive
// installation to customized windows.

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace agis {
namespace {

TEST(Smoke, Section4FlowProducesCustomizedWindows) {
  core::ActiveInterfaceSystem sys("phone_net");
  ASSERT_TRUE(workload::BuildPhoneNetwork(&sys.db()).ok());

  auto installed =
      sys.InstallCustomization(workload::Fig6DirectiveSource());
  ASSERT_TRUE(installed.ok()) << installed.status();
  EXPECT_EQ(installed.value().size(), 3u);  // R1 + R2 + instance rule.

  UserContext ctx;
  ctx.user = "juliano";
  ctx.application = "pole_manager";
  sys.dispatcher().set_context(ctx);

  auto schema_window = sys.dispatcher().OpenSchemaWindow();
  ASSERT_TRUE(schema_window.ok()) << schema_window.status();
  // Schema window built but hidden; Pole class auto-opened (R1).
  EXPECT_EQ(schema_window.value()->GetProperty(uilib::kPropHidden), "true");
  const uilib::InterfaceObject* class_window =
      sys.dispatcher().FindWindow("Class set: Pole");
  ASSERT_NE(class_window, nullptr);

  // R2: customized control widget + pointFormat presentation.
  const uilib::InterfaceObject* control =
      class_window->FindDescendant("control_Pole");
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->GetProperty("prototype"), "poleWidget");
  const uilib::InterfaceObject* area =
      class_window->FindDescendant("presentation");
  ASSERT_NE(area, nullptr);
  EXPECT_EQ(area->GetProperty(uilib::kPropStyle), "pointFormat");
  EXPECT_GT(std::stoi(area->GetProperty(uilib::kPropFeatureCount)), 0);

  // Select a pole instance: composed_text + hidden location.
  auto ids = sys.db().ScanExtent("Pole");
  ASSERT_TRUE(ids.ok());
  ASSERT_FALSE(ids.value().empty());
  auto instance_window = sys.dispatcher().OpenInstanceWindow(ids.value()[0]);
  ASSERT_TRUE(instance_window.ok()) << instance_window.status();
  const uilib::InterfaceObject* composed =
      instance_window.value()->FindDescendant("attr_pole_composition");
  ASSERT_NE(composed, nullptr);
  EXPECT_EQ(composed->GetProperty("prototype"), "composed_text");
  EXPECT_FALSE(composed->GetProperty(uilib::kPropValue).empty());
  EXPECT_EQ(instance_window.value()->FindDescendant("attr_pole_location"),
            nullptr);
}

TEST(Smoke, DefaultContextGetsGenericInterface) {
  core::ActiveInterfaceSystem sys("phone_net");
  ASSERT_TRUE(workload::BuildPhoneNetwork(&sys.db()).ok());
  ASSERT_TRUE(
      sys.InstallCustomization(workload::Fig6DirectiveSource()).ok());

  UserContext ctx;
  ctx.user = "someone_else";
  ctx.application = "browsing";
  sys.dispatcher().set_context(ctx);

  auto schema_window = sys.dispatcher().OpenSchemaWindow();
  ASSERT_TRUE(schema_window.ok()) << schema_window.status();
  EXPECT_NE(schema_window.value()->GetProperty(uilib::kPropHidden), "true");
  auto* list = schema_window.value()->FindDescendant("classes");
  ASSERT_NE(list, nullptr);
  // All six user classes; the persisted-directive system class is
  // hidden from Schema windows.
  EXPECT_EQ(uilib::GetListItems(*list).size(), 6u);
}

}  // namespace
}  // namespace agis
