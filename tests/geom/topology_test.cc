#include "geom/topology.h"

#include <gtest/gtest.h>

#include "geom/predicates.h"

namespace agis::geom {
namespace {

Geometry Pt(double x, double y) { return Geometry::FromPoint({x, y}); }

Geometry Rect(double x0, double y0, double x1, double y1) {
  Polygon poly;
  poly.outer = {{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}};
  return Geometry::FromPolygon(poly);
}

Geometry Line(std::vector<Point> pts) {
  return Geometry::FromLineString(LineString{std::move(pts)});
}

TEST(Relate, ClassifiesBasicPairs) {
  EXPECT_EQ(Relate(Pt(0, 0), Pt(5, 5)), TopoRelation::kDisjoint);
  EXPECT_EQ(Relate(Pt(1, 1), Pt(1, 1)), TopoRelation::kEquals);
  EXPECT_EQ(Relate(Rect(0, 0, 4, 4), Pt(2, 2)), TopoRelation::kContains);
  EXPECT_EQ(Relate(Pt(2, 2), Rect(0, 0, 4, 4)), TopoRelation::kInside);
  EXPECT_EQ(Relate(Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)),
            TopoRelation::kTouches);
  EXPECT_EQ(Relate(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)),
            TopoRelation::kOverlaps);
  EXPECT_EQ(Relate(Line({{-1, 1}, {5, 1}}), Rect(0, 0, 4, 4)),
            TopoRelation::kCrosses);
  EXPECT_EQ(Relate(Rect(0, 0, 4, 4), Rect(0, 0, 4, 4)),
            TopoRelation::kEquals);
}

TEST(Relate, PointOnBoundaryIsTouches) {
  EXPECT_EQ(Relate(Pt(0, 2), Rect(0, 0, 4, 4)), TopoRelation::kTouches);
}

TEST(Satisfies, MatchesRelateForSpecificRelations) {
  const Geometry a = Rect(0, 0, 2, 2);
  const Geometry b = Rect(1, 1, 3, 3);
  EXPECT_TRUE(Satisfies(a, b, TopoRelation::kOverlaps));
  EXPECT_TRUE(Satisfies(a, b, TopoRelation::kIntersects));
  EXPECT_FALSE(Satisfies(a, b, TopoRelation::kDisjoint));
  EXPECT_FALSE(Satisfies(a, b, TopoRelation::kTouches));
}

TEST(Satisfies, IntersectsIsGeneric) {
  EXPECT_TRUE(Satisfies(Pt(2, 2), Rect(0, 0, 4, 4),
                        TopoRelation::kIntersects));
  EXPECT_TRUE(Satisfies(Rect(0, 0, 2, 2), Rect(2, 0, 4, 2),
                        TopoRelation::kIntersects));
}

TEST(ParseTopoRelation, NamesAndAliases) {
  EXPECT_EQ(ParseTopoRelation("disjoint").value(), TopoRelation::kDisjoint);
  EXPECT_EQ(ParseTopoRelation("TOUCHES").value(), TopoRelation::kTouches);
  EXPECT_EQ(ParseTopoRelation("meets").value(), TopoRelation::kTouches);
  EXPECT_EQ(ParseTopoRelation("within").value(), TopoRelation::kInside);
  EXPECT_EQ(ParseTopoRelation(" equals ").value(), TopoRelation::kEquals);
  EXPECT_TRUE(ParseTopoRelation("adjacent").status().IsParseError());
}

TEST(TopoRelationName, RoundTripsThroughParse) {
  for (TopoRelation r :
       {TopoRelation::kDisjoint, TopoRelation::kTouches,
        TopoRelation::kOverlaps, TopoRelation::kCrosses,
        TopoRelation::kContains, TopoRelation::kInside, TopoRelation::kEquals,
        TopoRelation::kIntersects}) {
    EXPECT_EQ(ParseTopoRelation(TopoRelationName(r)).value(), r);
  }
}

TEST(Relate, ResultIsConsistentWithPredicates) {
  const Geometry shapes[] = {
      Pt(1, 1),
      Pt(10, 10),
      Line({{0, 0}, {3, 3}}),
      Line({{0, 3}, {3, 0}}),
      Rect(0, 0, 4, 4),
      Rect(2, 2, 6, 6),
      Rect(5, 5, 7, 7),
  };
  for (const Geometry& a : shapes) {
    for (const Geometry& b : shapes) {
      const TopoRelation r = Relate(a, b);
      EXPECT_TRUE(Satisfies(a, b, r))
          << "Relate said " << TopoRelationName(r)
          << " but Satisfies disagrees";
      if (r == TopoRelation::kDisjoint) {
        EXPECT_FALSE(Intersects(a, b));
      } else {
        EXPECT_TRUE(Intersects(a, b));
      }
    }
  }
}

}  // namespace
}  // namespace agis::geom
